#!/bin/sh
# Tier-1 verification: formatting, build, full test suite, the race detector
# over every parallel path (CP flush fan-out, experiment arms, mount walks),
# and an end-to-end observability smoke test of the bench binary.
# The race run uses -short to skip the slowest experiment reproductions;
# every concurrency-bearing code path still executes under the detector.
set -eux

fmt=$(gofmt -l cmd internal)
if [ -n "$fmt" ]; then
    echo "gofmt needed on: $fmt" >&2
    exit 1
fi

go build ./...
go vet ./...
go test ./...
go test -race -short ./...

# Fuzz smoke: a few seconds per TopAA decoder, enough to execute the seed
# corpus plus fresh mutations under the fuzzer's instrumentation.
go test -run '^$' -fuzz '^FuzzLoadRAIDAware$' -fuzztime 5s ./internal/topaa
go test -run '^$' -fuzz '^FuzzLoadAgnostic$' -fuzztime 5s ./internal/topaa
# Sharded-HBPS op-sequence fuzzer: random stage/pop/free/flush interleavings
# must preserve the tracked-set and no-duplicate-pick invariants.
go test -run '^$' -fuzz '^FuzzShardedOps$' -fuzztime 5s ./internal/hbps
# SLO-spec parser fuzzer: any accepted spec string must round-trip through
# its canonical formatting to an identical portfolio.
go test -run '^$' -fuzz '^FuzzParseSLOSpec$' -fuzztime 5s ./internal/obs/slo
# Optrace trace-ID / config-spec parser fuzzer: anything accepted must
# round-trip through its canonical formatting.
go test -run '^$' -fuzz '^FuzzParseOptrace$' -fuzztime 5s ./internal/obs/optrace
# Control-policy parser fuzzer: any accepted clause string must round-trip
# through its canonical formatting to an identical portfolio.
go test -run '^$' -fuzz '^FuzzParseControlPolicy$' -fuzztime 5s ./internal/control

# Observability smoke test: a small bench run must serve /metrics (the bench
# self-checks the endpoint and exits nonzero if it cannot fetch it) and
# produce non-empty CSV and trace files. The default SLO portfolio rides
# along: the clean figure run must fire no warn or page (-slo-expect none
# exits nonzero otherwise). The closed-loop controller rides along too and
# must keep its hands off a healthy run (-control-expect none).
tmpdir=$(mktemp -d)
live_pid=""
cleanup() {
    status=$?
    if [ "$status" -ne 0 ]; then
        echo "=== verify.sh failed (exit $status) ===" >&2
        for f in live.out snap.out; do
            if [ -f "$tmpdir/$f" ]; then
                echo "--- $f ---" >&2
                cat "$tmpdir/$f" >&2
            fi
        done
    fi
    if [ -n "$live_pid" ]; then
        kill "$live_pid" 2>/dev/null || true
        wait "$live_pid" 2>/dev/null || true
    fi
    rm -rf "$tmpdir"
}
trap cleanup EXIT
go build -o "$tmpdir/waflbench" ./cmd/waflbench
"$tmpdir/waflbench" -exp fig9 -scale 0.05 \
    -metrics-addr 127.0.0.1:0 \
    -csv-out "$tmpdir/bench.csv" \
    -trace-out "$tmpdir/bench.jsonl" \
    -slo default -slo-expect none \
    -control default -control-expect none >/dev/null
test -s "$tmpdir/bench.csv"
test -s "$tmpdir/bench.jsonl"

# Allocator pick-path smoke: the striped arm's modeled pick wall-clock at
# 8 workers must beat the shared arm's, or the bench exits nonzero. Also
# exercises -trace-collapse end to end.
"$tmpdir/waflbench" -pickbench -scale 0.1 \
    -trace-collapse "$tmpdir/pick.folded" >/dev/null
test -s "$tmpdir/pick.folded"

# Benchmark-artifact smoke test: a tiny-scale artifact must collect, and
# benchdiff comparing it against itself must report zero drift (exit 0) —
# the regression gate's own sanity check. The committed baseline is
# auto-selected (highest-numbered BENCH_<n>.json) and must self-compare
# clean too, proving the gate can read what the repo ships.
go build -o "$tmpdir/benchdiff" ./cmd/benchdiff
"$tmpdir/waflbench" -bench-json "$tmpdir/BENCH_smoke.json" -pipeline -control default -scale 0.05 >/dev/null
test -s "$tmpdir/BENCH_smoke.json"
"$tmpdir/benchdiff" "$tmpdir/BENCH_smoke.json" "$tmpdir/BENCH_smoke.json"
latest=$("$tmpdir/benchdiff" -print-latest)
test -s "$latest"
"$tmpdir/benchdiff" "$latest" "$latest"

# Crash-recovery gate: crash at every CP phase × media fault at tiny scale;
# the bench exits nonzero if any recovered AA cache silently disagrees with
# the bitmap metafiles (see internal/faultinject and the mount-time scrub).
# The SLO portfolio must see the damage: -slo-expect alerts exits nonzero
# unless at least one crash cell pages the recovery SLI. The controller must
# act on it: -control-expect actuations exits nonzero unless the recovery
# page actually kicked a scrub somewhere in the matrix.
"$tmpdir/waflbench" -faults matrix -scale 0.05 \
    -slo default -slo-expect alerts \
    -control default -control-expect actuations >/dev/null

# Pipelined-CP gate both ways: the clean overlap benchmark must clear its
# 1.3x floor with byte-identical final states and fire no SLO alert, and a
# crash in the overlap window (alloc of generation n+1 racing the flush of
# generation n) must recover without silent divergence while paging the
# recovery SLI.
"$tmpdir/waflbench" -pipeline -scale 0.05 \
    -slo default -slo-expect none >/dev/null
"$tmpdir/waflbench" -faults pipeline -scale 0.05 \
    -slo default -slo-expect alerts >/dev/null

# Live-introspection smoke test: hold the live endpoints after a small run
# (with the SLO engine, op tracer, and closed-loop controller armed) and
# point wafltop -snapshot at them; it exits nonzero unless the embedded
# time-series store serves nonzero per-CP series, and also if any SLO
# instance is paging or any controller policy is mid-flap. The snapshot must
# include the SLO, slowest-ops, and control-plane panels, /debug/slo and
# /debug/control must serve populated status documents, and /debug/optrace
# must serve a sampled trace that can be fetched back individually by its ID
# (the "explain this exemplar" path).
go build -o "$tmpdir/wafltop" ./cmd/wafltop
"$tmpdir/waflbench" -exp fig9 -scale 0.05 \
    -metrics-addr 127.0.0.1:0 -slo default -optrace rate=2 \
    -control default -hold 60s >"$tmpdir/live.out" 2>&1 &
live_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#^serving live endpoints at http://\([^ ]*\).*#\1#p' "$tmpdir/live.out")
    if [ -n "$addr" ] && grep -q "completed in" "$tmpdir/live.out"; then
        break
    fi
    sleep 0.2
done
test -n "$addr"
fetch() {
    curl -fsS "$1" 2>/dev/null || wget -qO - "$1"
}
"$tmpdir/wafltop" -addr "$addr" -snapshot >"$tmpdir/snap.out"
grep -q "SLO portfolio" "$tmpdir/snap.out"
grep -q "slowest sampled ops" "$tmpdir/snap.out"
grep -q "control plane" "$tmpdir/snap.out"
"$tmpdir/wafltop" -addr "$addr" -json >"$tmpdir/top.json"
grep -q '"optrace"' "$tmpdir/top.json"
grep -q '"control"' "$tmpdir/top.json"
fetch "http://$addr/debug/slo" >"$tmpdir/slo.json"
grep -q '"evaluations"' "$tmpdir/slo.json"
fetch "http://$addr/debug/control" >"$tmpdir/control.json"
grep -q '"actuations"' "$tmpdir/control.json"
grep -q '"knobs"' "$tmpdir/control.json"
fetch "http://$addr/debug/optrace?limit=3" >"$tmpdir/optrace.json"
grep -q '"sampled"' "$tmpdir/optrace.json"
# Newest surviving trace ID in the document (trace arrays follow the
# exemplar lists, so the last "id" belongs to a live ring entry)...
tid=$(sed -n 's/^ *"id": \([0-9][0-9]*\),*$/\1/p' "$tmpdir/optrace.json" | tail -n 1)
test -n "$tid"
# ...must be fetchable on its own, the way an SLO exemplar is chased down.
fetch "http://$addr/debug/optrace?id=$tid" >"$tmpdir/trace.json"
grep -q "\"id\": $tid" "$tmpdir/trace.json"
kill "$live_pid" 2>/dev/null || true
wait "$live_pid" 2>/dev/null || true
live_pid=""
