package waflfs

import (
	"io"

	"waflfs/internal/aa"
	"waflfs/internal/bitmap"
	"waflfs/internal/block"
	"waflfs/internal/device"
	"waflfs/internal/experiments"
	"waflfs/internal/hbps"
	"waflfs/internal/heapcache"
	"waflfs/internal/raid"
	"waflfs/internal/sim"
	"waflfs/internal/topaa"
	"waflfs/internal/wafl"
	"waflfs/internal/workload"
)

// Core file-system types (see internal/wafl).
type (
	// System is the client-facing file system: LUN reads/writes buffered
	// into consistency points over an aggregate of RAID groups.
	System = wafl.System
	// Aggregate is the shared physical storage pool hosting FlexVols.
	Aggregate = wafl.Aggregate
	// FlexVol is one virtualized volume with its own virtual VBN space.
	FlexVol = wafl.FlexVol
	// LUN is a block device exported from a FlexVol.
	LUN = wafl.LUN
	// Group is one RAID group runtime (geometry + AA cache + devices).
	Group = wafl.Group
	// GroupSpec configures a RAID group.
	GroupSpec = wafl.GroupSpec
	// VolSpec configures a FlexVol.
	VolSpec = wafl.VolSpec
	// Tunables holds allocator policy switches and CPU cost constants.
	Tunables = wafl.Tunables
	// Counters are the cumulative measurement counters of a System.
	Counters = wafl.Counters
	// CPStats summarizes one consistency point.
	CPStats = wafl.CPStats
	// MountStats records the cache-rebuild work of a remount.
	MountStats = wafl.MountStats
	// CleanStats summarizes a segment-cleaning pass.
	CleanStats = wafl.CleanStats
	// Snapshot is a point-in-time image of one LUN.
	Snapshot = wafl.Snapshot
	// Pool is an object-store capacity tier (FabricPool).
	Pool = wafl.Pool
	// PoolSpec configures an object-store pool.
	PoolSpec = wafl.PoolSpec
	// PoolStats is the pool's lifetime accounting.
	PoolStats = wafl.PoolStats
)

// NewSystem builds a System over a fresh aggregate; seed fixes all
// randomized decisions for reproducibility.
func NewSystem(specs []GroupSpec, vols []VolSpec, tun Tunables, seed int64) *System {
	return wafl.NewSystem(specs, vols, tun, seed)
}

// DefaultTunables returns the standard configuration with both AA caches
// enabled.
func DefaultTunables() Tunables { return wafl.DefaultTunables() }

// Media types for GroupSpec (AA sizing and device models, §3.2).
type Media = aa.Media

// Media values.
const (
	MediaHDD = aa.MediaHDD
	MediaSSD = aa.MediaSSD
	MediaSMR = aa.MediaSMR
)

// Block-layer types and constants (see internal/block).
type (
	// VBN is a volume block number.
	VBN = block.VBN
	// Range is a half-open VBN interval.
	Range = block.Range
)

// Block-layer constants.
const (
	// BlockSize is the WAFL block size (4KiB).
	BlockSize = block.BlockSize
	// RAIDAgnosticAABlocks is the default RAID-agnostic AA size (32k
	// blocks, one bitmap-metafile block).
	RAIDAgnosticAABlocks = aa.RAIDAgnosticBlocks
	// DefaultHDDStripes is the historical HDD AA size in stripes.
	DefaultHDDStripes = aa.DefaultHDDStripes
	// InvalidVBN is the "no block" sentinel.
	InvalidVBN = block.InvalidVBN
)

// Data-structure types, exported for direct library use.
type (
	// HBPS is the paper's histogram-based partial sort (§3.3.2).
	HBPS = hbps.HBPS
	// HBPSConfig parameterizes an HBPS instance.
	HBPSConfig = hbps.Config
	// HeapCache is the RAID-aware AA cache: an indexed max-heap (§3.3.1).
	HeapCache = heapcache.Cache
	// HeapEntry pairs an AA with its score.
	HeapEntry = heapcache.Entry
	// Bitmap is a WAFL-style bitmap metafile.
	Bitmap = bitmap.Bitmap
	// RAIDGeometry describes one RAID group's layout.
	RAIDGeometry = raid.Geometry
	// TopAAStore simulates the persistent TopAA metafile (§3.4).
	TopAAStore = topaa.Store
	// AAID names an allocation area within one VBN space.
	AAID = aa.ID
)

// NewHBPS creates an HBPS with the given geometry.
func NewHBPS(cfg HBPSConfig) *HBPS { return hbps.New(cfg) }

// DefaultHBPSConfig returns the RAID-agnostic AA-cache geometry: 32 bins of
// 1k over scores up to 32k, with a 1000-entry list — exactly two 4KiB pages.
func DefaultHBPSConfig() HBPSConfig { return hbps.DefaultConfig() }

// NewHeapCache creates an empty RAID-aware AA cache for numAAs areas.
func NewHeapCache(numAAs int) *HeapCache { return heapcache.New(numAAs) }

// NewHeapCacheFromScores heapifies a full score table in O(n).
func NewHeapCacheFromScores(scores []uint64) *HeapCache {
	return heapcache.NewFromScores(scores)
}

// NewBitmap creates a bitmap metafile tracking n blocks, all free.
func NewBitmap(n uint64) *Bitmap { return bitmap.New(n) }

// Device models (see internal/device).
type (
	// SSD is the flash device model (FTL + timing).
	SSD = device.SSD
	// SSDConfig configures an SSD model.
	SSDConfig = device.SSDConfig
	// HDD is the hard-drive cost model.
	HDD = device.HDD
	// SMR is the drive-managed shingled-drive model.
	SMR = device.SMR
	// HybridFTL is the log+merge flash translation layer.
	HybridFTL = device.HybridFTL
	// PageFTL is the fully page-mapped flash translation layer.
	PageFTL = device.FTL
)

// NewSSD builds an SSD model.
func NewSSD(cfg SSDConfig) *SSD { return device.NewSSD(cfg) }

// DefaultSSDConfig models an enterprise SSD of the given logical capacity.
func DefaultSSDConfig(logicalBlocks uint64) SSDConfig {
	return device.DefaultSSDConfig(logicalBlocks)
}

// NewSMR builds an SMR drive model.
func NewSMR(blocks, zoneBlocks uint64) *SMR { return device.NewSMR(blocks, zoneBlocks) }

// DefaultHDD models a 7.2k-RPM SAS drive.
func DefaultHDD() *HDD { return device.DefaultHDD() }

// Workloads (see internal/workload).
type (
	// OLTP is the random read/write database-style mix of §4.2.
	OLTP = workload.OLTP
	// HotCold is a skewed overwrite generator (80/20 by default).
	HotCold = workload.HotCold
)

// DefaultHotCold returns the classic 80/20 skewed overwrite mix.
func DefaultHotCold() HotCold { return workload.DefaultHotCold() }

// Workload helpers re-exported for examples and downstream users.
var (
	// RandomOverwrite issues random LUN overwrites (worst-case COW
	// fragmentation).
	RandomOverwrite = workload.RandomOverwrite
	// SequentialFill writes a LUN start to end.
	SequentialFill = workload.SequentialFill
	// Age fills and fragments a file system ahead of measurement.
	Age = workload.Age
	// FreeRandomFraction punches random holes in a LUN.
	FreeRandomFraction = workload.FreeRandomFraction
)

// DefaultOLTP returns a 2:1 read/write 4KiB mix.
func DefaultOLTP() OLTP { return workload.DefaultOLTP() }

// Queueing model (see internal/sim).
type (
	// QueueCenter is one service center of the closed queueing network.
	QueueCenter = sim.Center
	// QueueResult is the MVA solution for one client population.
	QueueResult = sim.Result
)

// SolveQueue runs exact MVA for the centers, think time, and client count.
var SolveQueue = sim.Solve

// Discrete-event simulation of the same closed network (per-op latency
// distributions; cross-validates the MVA means).
type (
	// DESConfig configures one discrete-event simulation run.
	DESConfig = sim.DESConfig
	// DESResult summarizes a run (throughput, mean, P50/P95).
	DESResult = sim.DESResult
)

// SimulateQueue runs the closed-loop discrete-event model.
var SimulateQueue = sim.Simulate

// Experiments: the paper's evaluation harness (see internal/experiments).
type (
	// ExperimentConfig controls experiment scale and the client model.
	ExperimentConfig = experiments.Config
	// Experiment is one runnable reproduction target.
	Experiment = experiments.Experiment
)

// DefaultExperimentConfig returns the full-scale experiment configuration.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// Experiments returns every figure-reproduction driver, in paper order.
func Experiments() []Experiment { return experiments.All() }

// LookupExperiment finds an experiment by name ("fig6" .. "fig10").
func LookupExperiment(name string) (Experiment, error) { return experiments.Lookup(name) }

// RunAllExperiments runs every figure in order, writing results to w.
func RunAllExperiments(cfg ExperimentConfig, w io.Writer) {
	for _, e := range experiments.All() {
		e.Run(cfg, w)
	}
}
