module waflfs

go 1.22
