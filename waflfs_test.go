package waflfs

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// The root package is the public surface; these tests exercise the
// re-exported API end to end the way the examples do.

func testSpec() GroupSpec {
	return GroupSpec{DataDevices: 4, ParityDevices: 1, BlocksPerDevice: 1 << 15, Media: MediaHDD, StripesPerAA: 512}
}

func TestPublicLifecycle(t *testing.T) {
	sys := NewSystem([]GroupSpec{testSpec(), testSpec()},
		[]VolSpec{{Name: "v", Blocks: 4 * RAIDAgnosticAABlocks}}, DefaultTunables(), 1)
	vol := sys.Agg.Vols()[0]
	lun := vol.CreateLUN("l", 10000)

	SequentialFill(sys, lun, 4)
	sys.CP()
	if sys.Agg.Bitmap().Used() != 10000 {
		t.Fatalf("used = %d", sys.Agg.Bitmap().Used())
	}

	// Snapshot + overwrite + delete via the public API.
	sys.CreateSnapshot(lun, "s")
	rng := rand.New(rand.NewSource(2))
	RandomOverwrite(sys, []*LUN{lun}, rng, 3000, 1)
	sys.CP()
	if n, err := sys.DeleteSnapshot(lun, "s"); err != nil || n == 0 {
		t.Fatalf("snapshot delete freed %d, err %v", n, err)
	}
	sys.CP()

	// Remount through TopAA.
	ms := sys.Agg.Remount(true)
	if ms.Fallbacks != 0 || ms.TopAABlockReads == 0 {
		t.Fatalf("mount stats = %+v", ms)
	}
	if err := vol.CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicDataStructures(t *testing.T) {
	// HBPS via the re-export.
	h := NewHBPS(DefaultHBPSConfig())
	h.Track(AAID(1), 32768)
	h.Track(AAID(2), 100)
	if id, ok := h.PeekBest(); !ok || id != 1 {
		t.Fatalf("PeekBest = %d,%v", id, ok)
	}
	if len(h.Marshal()) != 2*BlockSize {
		t.Fatal("HBPS not two pages")
	}
	// Heap cache.
	c := NewHeapCacheFromScores([]uint64{5, 9, 3})
	if best, _ := c.Best(); best.Score != 9 {
		t.Fatalf("heap best = %+v", best)
	}
	// Bitmap.
	bm := NewBitmap(1000)
	bm.Set(VBN(7))
	if bm.CountFree(Range{Start: 0, End: 1000}) != 999 {
		t.Fatal("bitmap count wrong")
	}
	// Devices.
	ssd := NewSSD(DefaultSSDConfig(4096))
	ssd.WriteChain(0, 64)
	if ssd.WriteAmplification() != 1.0 {
		t.Fatal("fresh SSD WA != 1")
	}
	smr := NewSMR(1<<16, 1<<12)
	if smr.Zones() != 16 {
		t.Fatalf("zones = %d", smr.Zones())
	}
	hdd := DefaultHDD()
	if hdd.WriteChain(0, 10) <= 0 {
		t.Fatal("HDD chain cost zero")
	}
}

func TestPublicQueueModel(t *testing.T) {
	r := SolveQueue([]QueueCenter{{Name: "c", Demand: time.Millisecond}}, time.Millisecond, 4)
	if r.Throughput <= 0 || r.Latency <= 0 {
		t.Fatalf("result = %+v", r)
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	if len(Experiments()) != 8 {
		t.Fatalf("experiments = %d", len(Experiments()))
	}
	if _, err := LookupExperiment("fig10"); err != nil {
		t.Fatal(err)
	}
	if _, err := LookupExperiment("bogus"); err == nil {
		t.Fatal("bogus experiment resolved")
	}
	// Run the cheapest experiment through the public entry point.
	cfg := DefaultExperimentConfig()
	cfg.Scale = 0.1
	e, _ := LookupExperiment("fig10")
	var buf bytes.Buffer
	e.Run(cfg, &buf)
	if !strings.Contains(buf.String(), "TopAA") {
		t.Fatalf("fig10 output:\n%s", buf.String())
	}
}

func TestPublicPoolAndTiering(t *testing.T) {
	sys := NewSystem([]GroupSpec{testSpec()},
		[]VolSpec{{Name: "v", Blocks: 4 * RAIDAgnosticAABlocks}}, DefaultTunables(), 3)
	pool := sys.Agg.AddObjectPool(PoolSpec{Blocks: 2 * RAIDAgnosticAABlocks})
	lun := sys.Agg.Vols()[0].CreateLUN("l", 20000)
	SequentialFill(sys, lun, 1)
	sys.CP()
	moved := sys.TierOut(lun, func(lba uint64) bool { return lba < 5000 })
	sys.CP()
	if moved != 5000 || pool.Stats().BlocksTiered != 5000 {
		t.Fatalf("tiered %d, stats %+v", moved, pool.Stats())
	}
}
