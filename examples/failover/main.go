// failover demonstrates the TopAA metafile (§3.4): after a crash, the
// partner node must mount the aggregate and its FlexVols and cannot begin
// write allocation until the AA caches are operational. With TopAA the
// caches are seeded from a few metafile blocks; without it (or when the
// metafile is damaged), a linear walk of the bitmap metafiles is needed.
package main

import (
	"fmt"
	"math/rand"

	"waflfs"
)

func main() {
	spec := waflfs.GroupSpec{
		DataDevices: 6, ParityDevices: 1,
		BlocksPerDevice: 1 << 17, Media: waflfs.MediaHDD,
	}
	var vols []waflfs.VolSpec
	for i := 0; i < 10; i++ {
		vols = append(vols, waflfs.VolSpec{
			Name:   fmt.Sprintf("vol%d", i),
			Blocks: 8 * waflfs.RAIDAgnosticAABlocks,
		})
	}
	sys := waflfs.NewSystem([]waflfs.GroupSpec{spec, spec}, vols, waflfs.DefaultTunables(), 3)

	// Run some traffic so the file system has real state, ending on a CP
	// (which persists the TopAA metafiles).
	lun := sys.Agg.Vols()[0].CreateLUN("lun0", 150_000)
	rng := rand.New(rand.NewSource(3))
	waflfs.Age(sys, []*waflfs.LUN{lun}, rng, 0.4)

	// Crash + takeover: remount reading the TopAA metafiles.
	ms := sys.Agg.Remount(true)
	fmt.Println("mount with TopAA metafiles:")
	fmt.Printf("  metafile blocks read: %d (1 per RAID group + 2 per volume)\n", ms.TopAABlockReads)
	fmt.Printf("  bitmap pages walked:  %d\n", ms.BitmapPagesRead)
	fmt.Printf("  cache inserts:        %d (seeded with the 512 best AAs per group)\n", ms.CacheInserts)

	// Client operations are served on the seed while background work
	// rebuilds the full heaps.
	for i := 0; i < 5_000; i++ {
		sys.Write(lun, uint64(rng.Intn(150_000)), 1)
	}
	sys.CP()
	inserted := sys.Agg.CompleteBackgroundFill()
	fmt.Printf("  background fill inserted %d remaining AAs after service resumed\n\n", inserted)

	// Same crash, but without TopAA: the mount must walk every bitmap.
	ms = sys.Agg.Remount(false)
	fmt.Println("mount without TopAA metafiles (full bitmap walk):")
	fmt.Printf("  bitmap pages walked:  %d — grows linearly with file-system size\n", ms.BitmapPagesRead)

	// Damage one volume's TopAA metafile: mount falls back to the walk for
	// that volume only (the recomputation WAFL Iron performs online).
	sys.CP() // re-persist metafiles
	if err := sys.Agg.Store().Corrupt("vol3", 5); err != nil {
		panic(err)
	}
	ms = sys.Agg.Remount(true)
	fmt.Println("\nmount with one damaged TopAA metafile:")
	fmt.Printf("  fallbacks: %d (only vol3 walked its bitmap: %d pages)\n",
		ms.Fallbacks, ms.BitmapPagesRead)
}
