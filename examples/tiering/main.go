// tiering demonstrates the RAID-agnostic allocation path for natively
// redundant storage (§3.3.2): an all-SSD performance tier plus an object
// store (FabricPool). Cold blocks are tiered out through HBPS-guided,
// colocated pool allocation; snapshots pin shared blocks correctly across
// the move.
package main

import (
	"fmt"
	"math/rand"

	"waflfs"
)

func main() {
	spec := waflfs.GroupSpec{
		DataDevices: 6, ParityDevices: 1,
		BlocksPerDevice: 1 << 16, Media: waflfs.MediaSSD,
	}
	sys := waflfs.NewSystem([]waflfs.GroupSpec{spec},
		[]waflfs.VolSpec{{Name: "vol0", Blocks: 1 << 20}}, waflfs.DefaultTunables(), 13)
	pool := sys.Agg.AddObjectPool(waflfs.PoolSpec{Blocks: 8 * waflfs.RAIDAgnosticAABlocks})

	lun := sys.Agg.Vols()[0].CreateLUN("archive", 300_000)
	rng := rand.New(rand.NewSource(13))

	// Write a data set and keep a snapshot of it.
	for lba := uint64(0); lba < 250_000; lba++ {
		sys.Write(lun, lba, 1)
	}
	sys.CP()
	sys.CreateSnapshot(lun, "backup")
	fmt.Printf("performance tier used: %.1f%%\n", 100*sys.Agg.UsedFraction())

	// Recent activity touches only the last fifth; everything older is
	// cold. Tier the cold range out to the object store.
	for i := 0; i < 30_000; i++ {
		sys.Write(lun, 200_000+uint64(rng.Intn(100_000)), 1)
	}
	sys.CP()
	moved := sys.TierOut(lun, func(lba uint64) bool { return lba < 200_000 })
	sys.CP()

	st := pool.Stats()
	fmt.Printf("\ntiered out %d cold blocks:\n", moved)
	fmt.Printf("  object PUTs: %d (4MiB objects — blocks buffered per CP)\n", st.Puts)
	fmt.Printf("  pool range:  %v\n", pool.Range())
	fmt.Printf("  lba 0 now at %v (pool), lba 249999 at %v (SSD tier)\n",
		lun.Phys(0), lun.Phys(249_999))

	// The snapshot's pointers moved with the data — no duplicate copies.
	sn := lun.Snapshot("backup")
	fmt.Printf("  snapshot %q still references %d blocks, shared with the live image\n",
		sn.Name, sn.Blocks())

	// Reads from the cold tier pay object-store GETs.
	before := sys.Counters().DeviceBusy
	sys.Read(lun, 0, 1)
	cold := sys.Counters().DeviceBusy - before
	before = sys.Counters().DeviceBusy
	sys.Read(lun, 249_999, 1)
	hot := sys.Counters().DeviceBusy - before
	fmt.Printf("\nread latency: cold (object GET) %v vs hot (SSD) %v\n", cold, hot)

	// Overwriting cold data brings it back to the performance tier and
	// frees the pool block.
	sys.Write(lun, 0, 1)
	sys.CP()
	fmt.Printf("after overwriting lba 0 it lives at %v (back on the SSD tier)\n", lun.Phys(0))
}
