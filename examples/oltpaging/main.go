// oltpaging reproduces §4.2 in miniature: an aggregate whose RAID groups
// have aged differently serves an OLTP workload, and the write allocator —
// guided by per-group AA caches and the fragmentation bias — directs more
// blocks to the fresher groups while keeping equally aged disks balanced.
package main

import (
	"fmt"
	"math/rand"

	"waflfs"
)

func main() {
	tun := waflfs.DefaultTunables()
	tun.MinAAScoreFraction = 0.05 // skip groups whose best AA is badly fragmented

	spec := waflfs.GroupSpec{
		DataDevices: 6, ParityDevices: 1,
		BlocksPerDevice: 1 << 16, Media: waflfs.MediaHDD,
	}
	specs := []waflfs.GroupSpec{spec, spec, spec, spec}
	aggBlocks := uint64(4*6) << 16
	lunBlocks := uint64(float64(aggBlocks) * 0.85)

	sys := waflfs.NewSystem(specs,
		[]waflfs.VolSpec{{Name: "db", Blocks: lunBlocks * 2}}, tun, 11)
	lun := sys.Agg.Vols()[0].CreateLUN("tables", lunBlocks)
	rng := rand.New(rand.NewSource(11))

	// Age the whole aggregate, then empty RG2/RG3 (recently added storage)
	// and thin RG0/RG1 to a fragmented ~50%.
	waflfs.Age(sys, []*waflfs.LUN{lun}, rng, 0.4)
	young0 := sys.Agg.Groups()[2].Geometry().VBNRange()
	young1 := sys.Agg.Groups()[3].Geometry().VBNRange()
	sys.PunchHoles(lun, func(lba uint64) bool {
		p := lun.Phys(lba)
		if young0.Contains(p) || young1.Contains(p) {
			return true
		}
		return rng.Float64() < 0.45
	})
	sys.CP()

	// Snapshot, run OLTP, report per-group write rates.
	type snap struct{ blocks, tetrises uint64 }
	pre := make([]snap, 4)
	for i, g := range sys.Agg.Groups() {
		st := g.RAIDStats()
		pre[i] = snap{st.BlocksWritten, st.Tetrises}
	}
	waflfs.DefaultOLTP().Run(sys, []*waflfs.LUN{lun}, rng, 200_000)
	sys.CP()

	fmt.Println("OLTP on an aggregate with imbalanced aging:")
	fmt.Printf("%-5s %-6s %-10s %-10s %s\n", "group", "aged", "blocks", "tetrises", "blocks/tetris")
	for i, g := range sys.Agg.Groups() {
		st := g.RAIDStats()
		blocks := st.BlocksWritten - pre[i].blocks
		tets := st.Tetrises - pre[i].tetrises
		aged := "yes"
		if i >= 2 {
			aged = "no"
		}
		bpt := 0.0
		if tets > 0 {
			bpt = float64(blocks) / float64(tets)
		}
		fmt.Printf("RG%-3d %-6s %-10d %-10d %.1f\n", i, aged, blocks, tets, bpt)
	}
	fmt.Println("\nFresh groups absorb more blocks; aged groups fit fewer blocks per")
	fmt.Println("tetris because their free space is fragmented (§4.2, Fig. 7).")
}
