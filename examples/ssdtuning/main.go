// ssdtuning shows why allocation-area size must match the SSD erase unit
// (§3.2.2 of the paper): the same aged random-write workload is run with
// the historical HDD AA size (half an erase unit) and with an AA sized at a
// multiple of the erase unit, and the drives' write amplification and
// device time are compared.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"waflfs"
)

func run(stripesPerAA uint64, label string) {
	perDevice := uint64(1 << 17)
	eraseUnit := uint64(2048) // 8MiB erase unit
	spec := waflfs.GroupSpec{
		DataDevices:      6,
		ParityDevices:    1,
		BlocksPerDevice:  perDevice,
		Media:            waflfs.MediaSSD,
		EraseBlockBlocks: eraseUnit,
		StripesPerAA:     stripesPerAA, // 0 = derived from media (4x erase unit)
		Overprovision:    0.10,
	}
	lunBlocks := uint64(float64(6*perDevice) * 0.85)
	sys := waflfs.NewSystem([]waflfs.GroupSpec{spec},
		[]waflfs.VolSpec{{Name: "v", Blocks: lunBlocks * 2}}, waflfs.DefaultTunables(), 7)
	lun := sys.Agg.Vols()[0].CreateLUN("l", lunBlocks)
	rng := rand.New(rand.NewSource(7))

	// Age to 85% full, then churn.
	waflfs.Age(sys, []*waflfs.LUN{lun}, rng, 0.6)

	// Measure a random-overwrite window.
	before := sys.Counters()
	waflfs.RandomOverwrite(sys, []*waflfs.LUN{lun}, rng, 100_000, 1)
	sys.CP()
	d := sys.Counters().Sub(before)

	g := sys.Agg.Groups()[0]
	fmt.Printf("%-22s stripes/AA=%-6d AAs=%-4d WA=%.2f device-time/op=%v\n",
		label, g.Topology().StripesPerAA(), g.Topology().NumAAs(),
		sys.WriteAmplification(),
		(d.DeviceBusy / time.Duration(d.Ops)).Round(time.Microsecond))
}

func main() {
	fmt.Println("SSD AA sizing on an aged (85% full) all-flash aggregate:")
	run(1024, "HDD-sized AA")     // half an erase unit: partial-EB merges
	run(0, "erase-unit-sized AA") // 4x erase unit: switch merges
	fmt.Println("\nLarger, erase-aligned AAs reduce FTL merge copying (write amplification),")
	fmt.Println("which extends drive lifetime and lowers device time per operation (§4.3).")
}
