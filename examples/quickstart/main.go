// Quickstart: build an aggregate of two RAID groups hosting one FlexVol,
// write a LUN through consistency points, and watch the copy-on-write
// allocator and the AA caches at work.
package main

import (
	"fmt"

	"waflfs"
)

func main() {
	// Two RAID groups of (6 data + 1 parity) HDDs, 512MiB per device.
	spec := waflfs.GroupSpec{
		DataDevices:     6,
		ParityDevices:   1,
		BlocksPerDevice: 1 << 17,
		Media:           waflfs.MediaHDD,
	}
	vols := []waflfs.VolSpec{{Name: "vol0", Blocks: 1 << 20}}
	sys := waflfs.NewSystem([]waflfs.GroupSpec{spec, spec}, vols, waflfs.DefaultTunables(), 42)

	vol := sys.Agg.Vols()[0]
	lun := vol.CreateLUN("lun0", 200_000)

	// Write the first 50k blocks sequentially; WAFL buffers the dirty
	// blocks and allocates their dual VBNs (virtual + physical) when the
	// consistency point commits.
	for lba := uint64(0); lba < 50_000; lba++ {
		sys.Write(lun, lba, 1)
	}
	sys.CP()

	fmt.Printf("after sequential fill:\n")
	fmt.Printf("  aggregate used: %.1f%%   volume used: %.1f%%\n",
		100*sys.Agg.UsedFraction(), 100*vol.UsedFraction())
	fmt.Printf("  lba 0 -> virtual %v, physical %v\n", lun.Virt(0), lun.Phys(0))

	// Overwrite the same range: copy-on-write allocates fresh blocks and
	// frees the old ones.
	oldPhys := lun.Phys(0)
	for lba := uint64(0); lba < 50_000; lba++ {
		sys.Write(lun, lba, 1)
	}
	sys.CP()
	fmt.Printf("\nafter overwriting the same range (COW):\n")
	fmt.Printf("  lba 0 physical moved: %v -> %v\n", oldPhys, lun.Phys(0))
	c := sys.Counters()
	fmt.Printf("  blocks written: %d, blocks freed: %d, CPs: %d\n",
		c.BlocksWritten, c.BlocksFreed, c.CPs)

	// The RAID-aware AA cache always knows the emptiest region of each
	// group; the FlexVol's two-page HBPS does the same for virtual VBNs.
	for _, g := range sys.Agg.Groups() {
		if best, ok := g.Cache().Best(); ok {
			fmt.Printf("  group %d best AA: %d (score %d free blocks)\n",
				g.Index, best.ID, best.Score)
		}
	}
	fmt.Printf("  full-stripe fraction: %.3f (sequential writes into empty AAs)\n",
		sys.Agg.Groups()[0].RAIDStats().FullStripeFraction())
}
