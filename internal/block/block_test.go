package block

import (
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	if BlockSize != 4096 {
		t.Fatalf("BlockSize = %d, want 4096", BlockSize)
	}
	if BitsPerBitmapBlock != 32*1024 {
		t.Fatalf("BitsPerBitmapBlock = %d, want 32768", BitsPerBitmapBlock)
	}
	if AZCSRegionBlocks != 64 {
		t.Fatalf("AZCSRegionBlocks = %d, want 64", AZCSRegionBlocks)
	}
	if BlockSize/ChecksumSize != AZCSRegionBlocks {
		t.Fatalf("one block must hold exactly %d identifiers", AZCSRegionBlocks)
	}
}

func TestVBNBitmapCoordinates(t *testing.T) {
	cases := []struct {
		v     VBN
		block uint64
		bit   uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{BitsPerBitmapBlock - 1, 0, BitsPerBitmapBlock - 1},
		{BitsPerBitmapBlock, 1, 0},
		{3*BitsPerBitmapBlock + 17, 3, 17},
	}
	for _, c := range cases {
		if got := c.v.BitmapBlock(); got != c.block {
			t.Errorf("%v.BitmapBlock() = %d, want %d", c.v, got, c.block)
		}
		if got := c.v.BitmapBit(); got != c.bit {
			t.Errorf("%v.BitmapBit() = %d, want %d", c.v, got, c.bit)
		}
	}
}

func TestVBNString(t *testing.T) {
	if got := VBN(42).String(); got != "vbn(42)" {
		t.Errorf("String() = %q", got)
	}
	if got := InvalidVBN.String(); got != "vbn(invalid)" {
		t.Errorf("invalid String() = %q", got)
	}
}

func TestBytesBlocksRoundTrip(t *testing.T) {
	if got := BytesToBlocks(0); got != 0 {
		t.Errorf("BytesToBlocks(0) = %d", got)
	}
	if got := BytesToBlocks(BlockSize - 1); got != 0 {
		t.Errorf("BytesToBlocks(4095) = %d, want 0 (round down)", got)
	}
	if got := BytesToBlocks(16 * TiB); got != 4*1024*1024*1024 {
		t.Errorf("BytesToBlocks(16TiB) = %d, want 4Gi blocks", got)
	}
	if got := BlocksToBytes(3); got != 3*BlockSize {
		t.Errorf("BlocksToBytes(3) = %d", got)
	}
}

func TestBytesToBlocksPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative byte count")
		}
	}()
	BytesToBlocks(-1)
}

func TestRangeBasics(t *testing.T) {
	r := Range{Start: 10, End: 20}
	if r.Len() != 10 {
		t.Errorf("Len = %d", r.Len())
	}
	if !r.Contains(10) || !r.Contains(19) {
		t.Error("Contains endpoints wrong")
	}
	if r.Contains(9) || r.Contains(20) {
		t.Error("Contains exterior wrong")
	}
	empty := Range{Start: 5, End: 5}
	if empty.Len() != 0 {
		t.Errorf("empty Len = %d", empty.Len())
	}
	inverted := Range{Start: 9, End: 3}
	if inverted.Len() != 0 {
		t.Errorf("inverted Len = %d", inverted.Len())
	}
	if r.String() != "[10,20)" {
		t.Errorf("String = %q", r.String())
	}
}

func TestRangeOverlapsIntersect(t *testing.T) {
	a := Range{0, 10}
	b := Range{5, 15}
	c := Range{10, 20}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a/b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("half-open ranges touching at 10 must not overlap")
	}
	got := a.Intersect(b)
	if got != (Range{5, 10}) {
		t.Errorf("Intersect = %v", got)
	}
	if a.Intersect(c).Len() != 0 {
		t.Errorf("disjoint Intersect non-empty: %v", a.Intersect(c))
	}
}

// Property: intersection is symmetric, contained in both operands, and
// overlap is equivalent to a non-empty intersection.
func TestRangeIntersectProperties(t *testing.T) {
	f := func(a0, a1, b0, b1 uint32) bool {
		a := Range{VBN(a0), VBN(a1)}
		b := Range{VBN(b0), VBN(b1)}
		i1, i2 := a.Intersect(b), b.Intersect(a)
		if i1.Len() != i2.Len() {
			return false
		}
		if i1.Len() > 0 {
			if !a.Contains(i1.Start) || !b.Contains(i1.Start) {
				return false
			}
			if !a.Contains(i1.End-1) || !b.Contains(i1.End-1) {
				return false
			}
		}
		// Overlaps iff intersection non-empty, for well-formed ranges.
		if a.Start <= a.End && b.Start <= b.End {
			if a.Overlaps(b) != (i1.Len() > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: bitmap block/bit coordinates invert back to the VBN.
func TestVBNCoordinateRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		v := VBN(raw % (1 << 50))
		return VBN(v.BitmapBlock()*BitsPerBitmapBlock+v.BitmapBit()) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
