// Package block defines the fundamental units of the WAFL block layer:
// volume block numbers (VBNs), block and page sizes, and the conversion
// helpers shared by every other subsystem.
//
// WAFL addresses storage in 4KiB blocks. A block in the aggregate is named
// by its physical VBN; a block inside a FlexVol volume is additionally named
// by a virtual VBN giving its offset within the volume. Both number spaces
// are flat [0, N) ranges and both are tracked by bitmap metafiles whose i-th
// bit records the state of the i-th block.
package block

import "fmt"

// Size constants for the WAFL block layer.
const (
	// BlockSize is the size of one WAFL block in bytes. WAFL addresses all
	// storage in 4KiB units (§2 of the paper).
	BlockSize = 4096

	// BitsPerBitmapBlock is the number of VBN state bits held by a single
	// 4KiB bitmap-metafile block: 4096 bytes * 8 = 32k bits (§3.2.1).
	BitsPerBitmapBlock = BlockSize * 8

	// ChecksumSize is the per-block identifier WAFL persists to protect
	// against media errors and lost or misdirected writes (§3.2.4).
	ChecksumSize = 64

	// AZCSRegionDataBlocks is the number of consecutive data blocks that
	// share one checksum block under advanced zone checksums: 63 data
	// blocks use the 64th block as their checksum block, since
	// 4096/64 = 64 identifiers fit in one block (§3.2.4).
	AZCSRegionDataBlocks = 63

	// AZCSRegionBlocks is the total span of one AZCS region including the
	// checksum block itself.
	AZCSRegionBlocks = AZCSRegionDataBlocks + 1

	// StripesPerTetris is the number of consecutive stripes in a tetris,
	// the unit of write I/O sent from WAFL to a RAID group (§4.2).
	StripesPerTetris = 64

	// ChunkSize is the sector-level protection unit within a 4KiB block:
	// metafile blocks carry a checksum per 512-byte chunk plus one XOR
	// parity chunk, so a single damaged or unreadable chunk can be
	// RAID-reconstructed before falling back to recomputation (§3.2.4 and
	// the repair path of §3.4).
	ChunkSize = 512

	// ChunksPerBlock is the number of protection chunks in one 4KiB block.
	ChunksPerBlock = BlockSize / ChunkSize
)

// Common capacity units, in bytes.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
	TiB = 1 << 40
)

// VBN is a volume block number: the index of a 4KiB block within a flat
// block-number space. The same type names blocks in the physical space of an
// aggregate ("physical VBN") and in the virtual space of a FlexVol volume
// ("virtual VBN"); which space a VBN belongs to is a property of the
// structure holding it, exactly as in WAFL.
type VBN uint64

// InvalidVBN is a sentinel for "no block". It is the maximum VBN value and
// is never a valid block address in any space built by this library.
const InvalidVBN = VBN(^uint64(0))

// String implements fmt.Stringer.
func (v VBN) String() string {
	if v == InvalidVBN {
		return "vbn(invalid)"
	}
	return fmt.Sprintf("vbn(%d)", uint64(v))
}

// BitmapBlock returns the index of the 4KiB bitmap-metafile block that holds
// this VBN's state bit. Consecutive runs of 32k VBNs share one metafile
// block, which is why RAID-agnostic allocation areas are sized at 32k blocks
// (§3.2.1): consuming an entire AA dirties only a single metafile block.
func (v VBN) BitmapBlock() uint64 { return uint64(v) / BitsPerBitmapBlock }

// BitmapBit returns the bit offset of this VBN within its bitmap block.
func (v VBN) BitmapBit() uint64 { return uint64(v) % BitsPerBitmapBlock }

// BytesToBlocks converts a byte count to a number of 4KiB blocks, rounding
// down. It panics if n is negative.
func BytesToBlocks(n int64) uint64 {
	if n < 0 {
		panic("block: negative byte count")
	}
	return uint64(n) / BlockSize
}

// BlocksToBytes converts a block count to bytes.
func BlocksToBytes(n uint64) int64 { return int64(n) * BlockSize }

// Range is a half-open interval [Start, End) of VBNs within one number
// space. It is the unit in which allocation areas, RAID device segments, and
// bitmap scans describe themselves.
type Range struct {
	Start VBN // first VBN in the range
	End   VBN // one past the last VBN in the range
}

// R constructs a Range. It is a convenience for the many call sites that
// build literal ranges.
func R(start, end VBN) Range { return Range{Start: start, End: end} }

// Len returns the number of VBNs in the range.
func (r Range) Len() uint64 {
	if r.End <= r.Start {
		return 0
	}
	return uint64(r.End - r.Start)
}

// Contains reports whether v lies within the range.
func (r Range) Contains(v VBN) bool { return v >= r.Start && v < r.End }

// Overlaps reports whether r and o share at least one VBN.
func (r Range) Overlaps(o Range) bool {
	return r.Start < o.End && o.Start < r.End
}

// Intersect returns the overlap of r and o, which may be empty.
func (r Range) Intersect(o Range) Range {
	out := Range{Start: maxVBN(r.Start, o.Start), End: minVBN(r.End, o.End)}
	if out.End < out.Start {
		out.End = out.Start
	}
	return out
}

// String implements fmt.Stringer.
func (r Range) String() string {
	return fmt.Sprintf("[%d,%d)", uint64(r.Start), uint64(r.End))
}

func maxVBN(a, b VBN) VBN {
	if a > b {
		return a
	}
	return b
}

func minVBN(a, b VBN) VBN {
	if a < b {
		return a
	}
	return b
}
