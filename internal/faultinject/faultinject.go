// Package faultinject provides the deterministic fault-injection harness
// behind the crash-consistency work: seeded, schedule-driven fault plans
// that crash a consistency point at a named phase, tear or drop TopAA
// metafile writes, rot or unplug individual protection chunks, and inject
// device-level read errors.
//
// The crash model matches the simulator's persistence semantics. Bitmap
// metafiles are shadow-paged and commit atomically with the CP, so the
// in-memory bitmap is always the post-CP ground truth; what a dirty
// failover can lose is the TopAA metafile writes issued during the crashed
// CP. A plan therefore arms a crash at one of the named CP phases: every
// metafile save issued after the crash point is dropped (stale generation on
// the next mount), and under a torn-write plan the first save at the crash
// point lands partially (mixed generations). Media-fault kinds additionally
// damage persisted blocks after the crash, exercising the RAID
// chunk-reconstruction path and the Iron-style bitmap-recompute fallback.
//
// Everything is driven by a seeded *rand.Rand owned by the Injector, so a
// (plan, workload) pair replays bit-identically at any worker width.
package faultinject

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Named CP phases, in execution order. System.CP and Aggregate.CommitCP
// call Injector.EnterPhase with each in turn; a plan's CrashPhase names one
// of them.
const (
	PhaseAlloc       = "alloc"        // phase 1: write allocation + COW frees
	PhaseDelayedFree = "delayed_free" // phase 1.5: delayed-free reclaim
	PhaseFlush       = "flush"        // per-group tetris flush + delta fold
	PhaseTopAAGroups = "topaa_groups" // RAID-aware TopAA block saves
	PhasePool        = "pool"         // object-pool flush + TopAA save
	PhaseBitmapAgg   = "bitmap_agg"   // aggregate bitmap-metafile write-back
	PhaseVolFold     = "vol_fold"     // per-volume delta fold + bitmap flush
	PhaseTopAAVols   = "topaa_vols"   // per-volume HBPS TopAA saves
	PhaseCommit      = "commit"       // CP superblock commit (crash = clean CP)
)

// Pipelined-CP phases (Tunables.Pipeline). Under overlapped checkpoints a
// boundary allocates the open generation while the sealed one flushes, so
// the overlap window has its own crash points: a crash during overlap_alloc
// fires before the in-flight generation commits, one during overlap_flush
// fires mid-commit of the sealed banks. Kept out of CPPhases so the classic
// crash matrix — and its pinned reference bands — are unchanged.
const (
	PhaseOverlapAlloc = "overlap_alloc" // open-gen allocation, sealed gen in flight
	PhaseOverlapFlush = "overlap_flush" // sealed-gen flush, overlapping the alloc
)

// OverlapPhases returns the pipelined-CP crash points — the rows of the
// pipeline crash-matrix experiment.
func OverlapPhases() []string {
	return []string{PhaseOverlapAlloc, PhaseOverlapFlush}
}

// CPPhases returns the named crash points in execution order — the rows of
// the crash-matrix experiment.
func CPPhases() []string {
	return []string{
		PhaseAlloc, PhaseDelayedFree, PhaseFlush, PhaseTopAAGroups,
		PhasePool, PhaseBitmapAgg, PhaseVolFold, PhaseTopAAVols, PhaseCommit,
	}
}

// Kind selects the media fault a plan applies on top of the crash.
type Kind int

const (
	// FaultNone is a pure crash: saves after the crash point are dropped,
	// leaving stale-generation metafiles, but nothing is damaged.
	FaultNone Kind = iota
	// FaultTorn makes the first save at the crash point land partially:
	// some chunks carry the new generation, the rest keep the old image.
	FaultTorn
	// FaultBitRot flips a byte in one chunk of a persisted metafile block.
	// Exactly one chunk is bad and the parity chunk is intact, so the load
	// path RAID-reconstructs it.
	FaultBitRot
	// FaultBitRotMulti rots two chunks of the same block — beyond what one
	// parity chunk can rebuild, forcing the bitmap-walk fallback.
	FaultBitRotMulti
	// FaultReadErr marks one chunk unreadable (a reported media error).
	// Reconstructable, like FaultBitRot.
	FaultReadErr
	// FaultReadErrHard marks a chunk and its block's parity chunk
	// unreadable, so reconstruction is impossible and mount falls back.
	FaultReadErrHard
)

// Kinds returns every fault kind — the columns of the crash matrix.
func Kinds() []Kind {
	return []Kind{FaultNone, FaultTorn, FaultBitRot, FaultBitRotMulti, FaultReadErr, FaultReadErrHard}
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultTorn:
		return "torn"
	case FaultBitRot:
		return "bitrot"
	case FaultBitRotMulti:
		return "bitrot-multi"
	case FaultReadErr:
		return "readerr"
	case FaultReadErrHard:
		return "readerr-hard"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return FaultNone, fmt.Errorf("faultinject: unknown fault kind %q", s)
}

// Plan is one deterministic fault schedule.
type Plan struct {
	// Seed drives every random choice the injector makes (torn-chunk
	// counts, damage placement).
	Seed int64
	// CrashPhase names the CP phase at which the crash fires; "" disables
	// the crash entirely.
	CrashPhase string
	// CrashCP selects which CP crashes, counted from 1; 0 crashes the
	// first CP that reaches CrashPhase.
	CrashCP int
	// Fault is the media fault applied with the crash.
	Fault Kind
	// Target names the metafile key damaged by the media-fault kinds; ""
	// lets the injector pick one (seeded) from the keys offered to
	// ApplyDamage.
	Target string
	// DeviceReadErrEvery injects a recoverable media error on every Nth
	// read I/O of each data device (0 = off). Each error charges
	// DeviceReadPenalty of extra busy time — the cost of RAID rebuilding
	// the sector from the surviving devices.
	DeviceReadErrEvery uint64
	// DeviceReadPenalty overrides the per-error reconstruction penalty
	// (0 = the device package default).
	DeviceReadPenalty time.Duration
}

// ParsePlan parses the waflbench -faults spec: comma-separated key=value
// pairs, e.g. "phase=topaa_groups,fault=torn,cp=2,seed=7,target=rg0,
// devreaderr=100". Every key is optional.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	if spec == "" {
		return p, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return p, fmt.Errorf("faultinject: bad plan element %q (want key=value)", part)
		}
		key, val := kv[0], kv[1]
		var err error
		switch key {
		case "phase":
			found := false
			for _, ph := range append(CPPhases(), OverlapPhases()...) {
				if ph == val {
					found = true
					break
				}
			}
			if !found {
				return p, fmt.Errorf("faultinject: unknown phase %q (have %v and %v)",
					val, CPPhases(), OverlapPhases())
			}
			p.CrashPhase = val
		case "fault":
			p.Fault, err = ParseKind(val)
		case "cp":
			p.CrashCP, err = strconv.Atoi(val)
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "target":
			p.Target = val
		case "devreaderr":
			p.DeviceReadErrEvery, err = strconv.ParseUint(val, 10, 64)
		default:
			return p, fmt.Errorf("faultinject: unknown plan key %q", key)
		}
		if err != nil {
			return p, fmt.Errorf("faultinject: plan %s=%s: %v", key, val, err)
		}
	}
	return p, nil
}

// SaveDecision is the injector's verdict on one metafile save.
type SaveDecision struct {
	// Drop means the write never reached media (issued after the crash).
	Drop bool
	// TornChunks, when > 0, means only the first TornChunks protection
	// chunks of the write landed; the rest keep the previous image.
	TornChunks int
}

// Injector executes a Plan against a running system. All methods are safe
// on a nil receiver (no faults) and under concurrent use; the CP pipeline
// calls EnterPhase/OnSave serially, but mount rebuilds run on the work
// pool.
type Injector struct {
	mu       sync.Mutex
	plan     Plan
	rng      *rand.Rand
	cp       int
	crashed  bool
	tornUsed bool
	crashes  uint64
}

// New builds an injector for the plan.
func New(plan Plan) *Injector {
	return &Injector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Plan returns the schedule the injector executes.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// BeginCP advances the CP ordinal; System.CP calls it once per CP.
func (in *Injector) BeginCP() {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.cp++
	in.mu.Unlock()
}

// EnterPhase marks the CP pipeline reaching a named phase; if the plan's
// crash point matches (phase and CP ordinal), the crash fires: every
// subsequent save is dropped (or torn, for the first one under FaultTorn)
// until Recover.
func (in *Injector) EnterPhase(name string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed || in.plan.CrashPhase != name {
		return
	}
	if in.plan.CrashCP != 0 && in.cp != in.plan.CrashCP {
		return
	}
	in.crashed = true
	in.crashes++
}

// Crashed reports whether the simulated controller is down.
func (in *Injector) Crashed() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Crashes returns how many times the plan's crash has fired.
func (in *Injector) Crashes() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashes
}

// Recover clears the crashed state — the reboot that precedes a Remount.
// The plan stays armed for its CP ordinal, so a recovered system does not
// re-crash unless CrashCP is 0 (crash every time the phase is reached).
func (in *Injector) Recover() {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.crashed = false
	in.mu.Unlock()
}

// OnSave decides the fate of one metafile save of totalChunks protection
// chunks. Before the crash fires every save lands whole; after it, the
// first save is torn under FaultTorn and everything else is dropped.
func (in *Injector) OnSave(key string, totalChunks int) SaveDecision {
	if in == nil {
		return SaveDecision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	_ = key
	if !in.crashed {
		return SaveDecision{}
	}
	if in.plan.Fault == FaultTorn && !in.tornUsed && totalChunks > 1 {
		in.tornUsed = true
		return SaveDecision{TornChunks: 1 + in.rng.Intn(totalChunks-1)}
	}
	return SaveDecision{Drop: true}
}

// DamageSurface is the store-side interface ApplyDamage drives; topaa.Store
// implements it. Chunk coordinates are (4KiB block index, chunk index
// within the block).
type DamageSurface interface {
	// BlockCount returns the number of 4KiB blocks persisted under name
	// (0 when the metafile does not exist).
	BlockCount(name string) int
	// CorruptChunk flips a byte within one data chunk, leaving parity
	// intact (RAID-reconstructable).
	CorruptChunk(name string, blk, chunk int) error
	// MarkChunkUnreadable makes one data chunk return a media error.
	MarkChunkUnreadable(name string, blk, chunk int) error
	// MarkParityUnreadable makes a block's parity chunk return a media
	// error, defeating reconstruction of any other damage in the block.
	MarkParityUnreadable(name string, blk int) error
}

// DamageReport describes the media damage ApplyDamage placed.
type DamageReport struct {
	Kind   Kind
	Target string
	Block  int
	Chunks []int // damaged data-chunk indexes
	Parity bool  // parity chunk also taken out
}

// String implements fmt.Stringer.
func (r DamageReport) String() string {
	if r.Target == "" {
		return "no damage"
	}
	return fmt.Sprintf("%s on %q block %d chunks %v parity-lost=%v",
		r.Kind, r.Target, r.Block, r.Chunks, r.Parity)
}

// ApplyDamage places the plan's media fault on the store: the crash-only
// kinds do nothing; the rot/read-error kinds damage one deterministic
// (seeded) location in the target metafile. keys must be the candidate
// metafile names in a deterministic order; the plan's Target, when set,
// overrides the seeded pick.
func (in *Injector) ApplyDamage(s DamageSurface, keys []string, chunksPerBlock int) (DamageReport, error) {
	if in == nil {
		return DamageReport{}, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	rep := DamageReport{Kind: in.plan.Fault}
	switch in.plan.Fault {
	case FaultBitRot, FaultBitRotMulti, FaultReadErr, FaultReadErrHard:
	default:
		return rep, nil
	}
	if len(keys) == 0 {
		return rep, fmt.Errorf("faultinject: no metafile keys to damage")
	}
	target := in.plan.Target
	if target == "" {
		target = keys[in.rng.Intn(len(keys))]
	}
	nblocks := s.BlockCount(target)
	if nblocks == 0 {
		return rep, fmt.Errorf("faultinject: damage target %q has no metafile", target)
	}
	blk := in.rng.Intn(nblocks)
	chunk := in.rng.Intn(chunksPerBlock)
	rep.Target, rep.Block = target, blk

	fail := func(err error) (DamageReport, error) { return rep, err }
	switch in.plan.Fault {
	case FaultBitRot:
		rep.Chunks = []int{chunk}
		if err := s.CorruptChunk(target, blk, chunk); err != nil {
			return fail(err)
		}
	case FaultBitRotMulti:
		second := (chunk + 1 + in.rng.Intn(chunksPerBlock-1)) % chunksPerBlock
		rep.Chunks = []int{chunk, second}
		if err := s.CorruptChunk(target, blk, chunk); err != nil {
			return fail(err)
		}
		if err := s.CorruptChunk(target, blk, second); err != nil {
			return fail(err)
		}
	case FaultReadErr:
		rep.Chunks = []int{chunk}
		if err := s.MarkChunkUnreadable(target, blk, chunk); err != nil {
			return fail(err)
		}
	case FaultReadErrHard:
		rep.Chunks = []int{chunk}
		rep.Parity = true
		if err := s.MarkChunkUnreadable(target, blk, chunk); err != nil {
			return fail(err)
		}
		if err := s.MarkParityUnreadable(target, blk); err != nil {
			return fail(err)
		}
	}
	return rep, nil
}
