package faultinject

import (
	"reflect"
	"testing"
	"time"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("phase=topaa_groups,fault=torn,cp=2,seed=7,target=rg0,devreaderr=100")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	want := Plan{
		Seed:               7,
		CrashPhase:         PhaseTopAAGroups,
		CrashCP:            2,
		Fault:              FaultTorn,
		Target:             "rg0",
		DeviceReadErrEvery: 100,
	}
	if p != want {
		t.Fatalf("ParsePlan = %+v, want %+v", p, want)
	}
	if _, err := ParsePlan("phase=bogus"); err == nil {
		t.Fatal("unknown phase accepted")
	}
	if _, err := ParsePlan("fault=bogus"); err == nil {
		t.Fatal("unknown fault accepted")
	}
	if _, err := ParsePlan("nonsense"); err == nil {
		t.Fatal("malformed element accepted")
	}
	if _, err := ParsePlan("color=red"); err == nil {
		t.Fatal("unknown key accepted")
	}
	empty, err := ParsePlan("")
	if err != nil || empty != (Plan{}) {
		t.Fatalf("empty spec = %+v, %v", empty, err)
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	in.BeginCP()
	in.EnterPhase(PhaseFlush)
	if in.Crashed() || in.Crashes() != 0 {
		t.Fatal("nil injector crashed")
	}
	if d := in.OnSave("x", 8); d != (SaveDecision{}) {
		t.Fatalf("nil OnSave = %+v", d)
	}
	rep, err := in.ApplyDamage(nil, nil, 8)
	if err != nil || rep.Target != "" {
		t.Fatalf("nil ApplyDamage = %+v, %v", rep, err)
	}
	in.Recover()
	if in.Plan() != (Plan{}) {
		t.Fatal("nil Plan not zero")
	}
}

func TestCrashFiresAtPhaseAndCP(t *testing.T) {
	in := New(Plan{CrashPhase: PhaseTopAAGroups, CrashCP: 2, Fault: FaultNone})

	in.BeginCP() // CP 1
	in.EnterPhase(PhaseTopAAGroups)
	if in.Crashed() {
		t.Fatal("crashed on wrong CP")
	}
	if d := in.OnSave("rg0", 8); d.Drop || d.TornChunks != 0 {
		t.Fatalf("pre-crash save affected: %+v", d)
	}

	in.BeginCP() // CP 2
	in.EnterPhase(PhaseFlush)
	if in.Crashed() {
		t.Fatal("crashed on wrong phase")
	}
	in.EnterPhase(PhaseTopAAGroups)
	if !in.Crashed() {
		t.Fatal("did not crash at armed phase/CP")
	}
	if d := in.OnSave("rg0", 8); !d.Drop {
		t.Fatalf("post-crash save not dropped: %+v", d)
	}

	in.Recover()
	if in.Crashed() {
		t.Fatal("still crashed after Recover")
	}
	in.BeginCP() // CP 3
	in.EnterPhase(PhaseTopAAGroups)
	if in.Crashed() {
		t.Fatal("re-crashed after Recover with CrashCP pinned")
	}
	if in.Crashes() != 1 {
		t.Fatalf("Crashes = %d, want 1", in.Crashes())
	}
}

func TestTornFirstSaveThenDrop(t *testing.T) {
	in := New(Plan{Seed: 3, CrashPhase: PhaseFlush, CrashCP: 1, Fault: FaultTorn})
	in.BeginCP()
	in.EnterPhase(PhaseFlush)
	d := in.OnSave("rg0", 8)
	if d.Drop || d.TornChunks < 1 || d.TornChunks > 7 {
		t.Fatalf("first post-crash save = %+v, want torn in [1,7]", d)
	}
	if d2 := in.OnSave("rg1", 8); !d2.Drop {
		t.Fatalf("second post-crash save = %+v, want drop", d2)
	}
	// A single-chunk write cannot tear: it drops instead.
	in2 := New(Plan{Seed: 3, CrashPhase: PhaseFlush, CrashCP: 1, Fault: FaultTorn})
	in2.BeginCP()
	in2.EnterPhase(PhaseFlush)
	if d := in2.OnSave("tiny", 1); !d.Drop {
		t.Fatalf("single-chunk torn save = %+v, want drop", d)
	}
}

// fakeSurface records damage calls for ApplyDamage tests.
type fakeSurface struct {
	blocks  map[string]int
	corrupt [][3]interface{}
	unread  [][3]interface{}
	parity  []string
}

func (f *fakeSurface) BlockCount(name string) int { return f.blocks[name] }
func (f *fakeSurface) CorruptChunk(name string, blk, chunk int) error {
	f.corrupt = append(f.corrupt, [3]interface{}{name, blk, chunk})
	return nil
}
func (f *fakeSurface) MarkChunkUnreadable(name string, blk, chunk int) error {
	f.unread = append(f.unread, [3]interface{}{name, blk, chunk})
	return nil
}
func (f *fakeSurface) MarkParityUnreadable(name string, blk int) error {
	f.parity = append(f.parity, name)
	return nil
}

func TestApplyDamageKinds(t *testing.T) {
	keys := []string{"rg0", "rg1", "v"}
	mk := func(kind Kind) (*fakeSurface, DamageReport) {
		fs := &fakeSurface{blocks: map[string]int{"rg0": 1, "rg1": 1, "v": 3}}
		in := New(Plan{Seed: 11, Fault: kind})
		rep, err := in.ApplyDamage(fs, keys, 8)
		if err != nil {
			t.Fatalf("%v: ApplyDamage: %v", kind, err)
		}
		return fs, rep
	}

	if fs, rep := mk(FaultNone); rep.Target != "" || len(fs.corrupt)+len(fs.unread) != 0 {
		t.Fatalf("FaultNone damaged: %+v", rep)
	}
	if fs, rep := mk(FaultBitRot); len(fs.corrupt) != 1 || len(rep.Chunks) != 1 {
		t.Fatalf("FaultBitRot: %+v / %+v", fs.corrupt, rep)
	}
	fs, rep := mk(FaultBitRotMulti)
	if len(fs.corrupt) != 2 || len(rep.Chunks) != 2 || rep.Chunks[0] == rep.Chunks[1] {
		t.Fatalf("FaultBitRotMulti: %+v / %+v", fs.corrupt, rep)
	}
	if fs, rep := mk(FaultReadErr); len(fs.unread) != 1 || rep.Parity {
		t.Fatalf("FaultReadErr: %+v / %+v", fs.unread, rep)
	}
	if fs, rep := mk(FaultReadErrHard); len(fs.unread) != 1 || len(fs.parity) != 1 || !rep.Parity {
		t.Fatalf("FaultReadErrHard: %+v / %+v", fs, rep)
	}
}

func TestApplyDamageDeterministic(t *testing.T) {
	keys := []string{"rg0", "rg1", "v"}
	run := func() DamageReport {
		fs := &fakeSurface{blocks: map[string]int{"rg0": 2, "rg1": 2, "v": 4}}
		in := New(Plan{Seed: 99, Fault: FaultBitRot})
		rep, err := in.ApplyDamage(fs, keys, 8)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-deterministic damage: %+v vs %+v", a, b)
	}
}

func TestApplyDamageTargetOverride(t *testing.T) {
	fs := &fakeSurface{blocks: map[string]int{"rg0": 1, "v": 2}}
	in := New(Plan{Seed: 1, Fault: FaultBitRot, Target: "v"})
	rep, err := in.ApplyDamage(fs, []string{"rg0", "v"}, 8)
	if err != nil || rep.Target != "v" {
		t.Fatalf("target override: %+v, %v", rep, err)
	}
	// Missing target errors instead of damaging something else.
	in2 := New(Plan{Seed: 1, Fault: FaultBitRot, Target: "ghost"})
	if _, err := in2.ApplyDamage(fs, []string{"rg0"}, 8); err == nil {
		t.Fatal("missing damage target accepted")
	}
}

func TestPlanDevicePenaltyField(t *testing.T) {
	p := Plan{DeviceReadErrEvery: 10, DeviceReadPenalty: 3 * time.Millisecond}
	in := New(p)
	if in.Plan() != p {
		t.Fatalf("Plan() = %+v, want %+v", in.Plan(), p)
	}
}
