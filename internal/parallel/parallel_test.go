package parallel

import (
	"context"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 33} {
		const n = 1000
		counts := make([]int32, n)
		ForEach(workers, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestMapIsOrderedAndWorkerCountInvariant(t *testing.T) {
	fn := func(i int) int { return i * i }
	serial := Map(1, 200, fn)
	for _, workers := range []int{2, 8} {
		got := Map(workers, 200, fn)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d: results differ from serial", workers)
		}
	}
	for i, v := range serial {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for empty input")
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
	auto := Workers(0)
	if auto < 1 || auto > maxAutoWorkers {
		t.Fatalf("Workers(0) = %d", auto)
	}
	if auto > runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d exceeds GOMAXPROCS", auto)
	}
}

// A canceled fan-out must drain: in-flight items complete, unstarted items
// are skipped, no goroutines leak, and the error reports the cancellation.
// This is the shutdown path of a canceled experiment run.
func TestForEachCtxCancelDrainsWithoutLeaks(t *testing.T) {
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var started, finished atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- ForEachCtx(ctx, 4, 100, func(i int) {
			started.Add(1)
			<-release
			finished.Add(1)
		})
	}()
	// Wait for the workers to pick up their first items, then cancel.
	for started.Load() < 4 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	err := <-done
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Every started item finished (drained, not abandoned)...
	if started.Load() != finished.Load() {
		t.Fatalf("started %d != finished %d", started.Load(), finished.Load())
	}
	// ...and most of the 100 items never started.
	if started.Load() > 20 {
		t.Fatalf("%d items started after early cancel", started.Load())
	}
	waitForGoroutines(t, base)
}

func TestForEachCtxPreCanceledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int32{}
	if err := ForEachCtx(ctx, 4, 50, func(int) { ran.Add(1) }); err == nil {
		t.Fatal("no error from pre-canceled context")
	}
	if ran.Load() != 0 {
		t.Fatalf("%d items ran under a pre-canceled context", ran.Load())
	}
}

func TestForEachNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for r := 0; r < 50; r++ {
		ForEach(8, 64, func(int) {})
	}
	waitForGoroutines(t, base)
}

// waitForGoroutines polls until the goroutine count returns to (at most)
// the baseline, allowing exiting workers a moment to unwind.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v", r)
		}
	}()
	ForEach(4, 100, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
	t.Fatal("panic did not propagate")
}

func TestMakespan(t *testing.T) {
	ms := func(xs ...int) []time.Duration {
		out := make([]time.Duration, len(xs))
		for i, x := range xs {
			out[i] = time.Duration(x)
		}
		return out
	}
	cases := []struct {
		tasks   []time.Duration
		workers int
		want    time.Duration
	}{
		{ms(), 4, 0},
		{ms(5), 1, 5},
		{ms(1, 2, 3, 4), 1, 10}, // serial: sum
		{ms(1, 2, 3, 4), 4, 4},  // fully parallel: max
		{ms(1, 2, 3, 4), 8, 4},  // extra workers idle
		{ms(3, 1, 1, 1), 2, 3},  // w0: 3, w1: 1+1+1
		{ms(4, 4, 4, 4, 4, 4, 4, 4), 8, 4},
		{ms(4, 4, 4, 4, 4, 4, 4, 4), 2, 16},
	}
	for _, c := range cases {
		if got := Makespan(c.tasks, c.workers); got != c.want {
			t.Errorf("Makespan(%v, %d) = %d, want %d", c.tasks, c.workers, got, c.want)
		}
	}
	// The modeled wall-clock never beats max(task) and never exceeds the sum.
	tasks := ms(7, 2, 9, 1, 5, 5, 3)
	for w := 1; w <= 10; w++ {
		got := Makespan(tasks, w)
		if got < 9 || got > 32 {
			t.Errorf("workers=%d: makespan %d outside [max, sum]", w, got)
		}
	}
}

func TestSplitSeedAndRandsDeterministic(t *testing.T) {
	seen := make(map[int64]bool)
	for shard := 0; shard < 100; shard++ {
		s := SplitSeed(42, shard)
		if s != SplitSeed(42, shard) {
			t.Fatal("SplitSeed not deterministic")
		}
		if seen[s] {
			t.Fatalf("duplicate child seed at shard %d", shard)
		}
		seen[s] = true
	}
	a, b := Rands(7, 4), Rands(7, 4)
	for i := range a {
		for k := 0; k < 16; k++ {
			if a[i].Uint64() != b[i].Uint64() {
				t.Fatalf("shard %d stream diverged", i)
			}
		}
	}
}
