// Package parallel is the repo's single deterministic work-pool: every
// concurrent fan-out — CP flushes across RAID groups, experiment arms,
// MVA sweep points, mount-time bitmap walks — runs on these primitives
// rather than ad-hoc goroutines.
//
// The pool's contract is determinism: callers hand it n independent work
// items addressed by index, workers claim indexes from a shared counter,
// and every result lands in the slot its index owns. Because no item reads
// another item's output and merges happen in index order after the
// barrier, the observable result is bit-identical for every worker count,
// including 1. Randomized work keeps that property by giving each shard
// its own rand.Rand derived from a root seed (SplitSeed/Rands) instead of
// sharing one stream whose interleaving would depend on scheduling.
package parallel

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// maxAutoWorkers caps the automatic worker count; fan-outs here are
// popcount- and accounting-bound, and past 8 workers coordination overhead
// outweighs the spread.
const maxAutoWorkers = 8

// Workers resolves a worker-count knob to a concrete count: w itself when
// positive, otherwise min(GOMAXPROCS, 8).
func Workers(w int) int {
	if w > 0 {
		return w
	}
	if n := runtime.GOMAXPROCS(0); n < maxAutoWorkers {
		return n
	}
	return maxAutoWorkers
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines (workers <= 0 selects the automatic count) and returns when
// all items are done. Items are claimed in index order from a shared
// counter, so short items load-balance; fn must only write state owned by
// its index. A panic in any item is re-raised on the caller's goroutine
// after the pool drains.
func ForEach(workers, n int, fn func(i int)) {
	if err := forEach(context.Background(), workers, n, fn); err != nil {
		panic(err) // unreachable: background context never cancels
	}
}

// ForEachCtx is ForEach with cancellation: once ctx is done, workers stop
// claiming new indexes, in-flight items run to completion, and the drained
// pool returns ctx.Err(). Items that never started are simply skipped, so
// the caller must treat a non-nil error as "results incomplete".
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	return forEach(ctx, workers, n, fn)
}

func forEach(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, r)
				}
			}()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
	return ctx.Err()
}

// Map runs fn for every index and returns the results in index order —
// the fan-out/ordered-collect shape of experiment arms and sweep points.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// Makespan models the wall-clock of executing tasks with the given
// durations on `workers` parallel workers: tasks are assigned in order to
// the worker that frees earliest (ties to the lowest worker). With one
// worker this is the serial sum; with workers >= len(tasks) it is the max.
// The CP engine uses it to report flush wall-clock as max-over-groups plus
// merge rather than sum-over-groups, without making any measured counter
// depend on the worker count.
func Makespan(tasks []time.Duration, workers int) time.Duration {
	workers = Workers(workers)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 0 {
		return 0
	}
	free := make([]time.Duration, workers)
	for _, d := range tasks {
		earliest := 0
		for w := 1; w < workers; w++ {
			if free[w] < free[earliest] {
				earliest = w
			}
		}
		free[earliest] += d
	}
	var span time.Duration
	for _, f := range free {
		if f > span {
			span = f
		}
	}
	return span
}

// SplitSeed derives a statistically independent child seed for one shard
// of a fan-out from a root seed (splitmix64 finalizer). Equal inputs give
// equal outputs, so sharded randomness is reproducible and identical for
// every worker count.
func SplitSeed(root int64, shard int) int64 {
	z := uint64(root) + (uint64(shard)+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Rands returns n generators, shard i seeded with SplitSeed(root, i) —
// one private stream per work item, so randomized shards stay bit-identical
// to a serial run regardless of scheduling.
func Rands(root int64, n int) []*rand.Rand {
	out := make([]*rand.Rand, n)
	for i := range out {
		out[i] = rand.New(rand.NewSource(SplitSeed(root, i)))
	}
	return out
}
