package parallel

import "waflfs/internal/obs"

// Obs carries the pool instruments a caller wants fan-outs recorded into.
// All fields may be nil (obs instruments are nil-safe), and a nil *Obs is a
// valid no-op, so instrumented call sites need no enablement checks.
type Obs struct {
	// Fanouts counts ForEachObs invocations.
	Fanouts *obs.Counter
	// Items counts the work items dispatched across all fan-outs — the
	// queue depth fed to the pool.
	Items *obs.Counter
	// Width is the distribution of fan-out widths (items per invocation).
	Width *obs.Histogram
	// Occupancy sums the resolved worker counts actually used per fan-out
	// (min(workers, n)). It depends on the configured worker count, so
	// register it volatile: it is expected to differ across worker counts.
	Occupancy *obs.Counter
}

func (o *Obs) record(workers, n int) {
	if o == nil || n <= 0 {
		return
	}
	o.Fanouts.Inc()
	o.Items.Add(uint64(n))
	o.Width.Observe(uint64(n))
	eff := Workers(workers)
	if eff > n {
		eff = n
	}
	o.Occupancy.Add(uint64(eff))
}

// ForEachObs is ForEach with pool telemetry recorded into o (which may be
// nil). The recording happens before dispatch on the caller's goroutine, so
// it adds nothing to item execution and is identical for every worker count.
func ForEachObs(workers, n int, o *Obs, fn func(i int)) {
	o.record(workers, n)
	ForEach(workers, n, fn)
}
