package raid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"waflfs/internal/block"
)

func testGeo() Geometry {
	return Geometry{DataDevices: 6, ParityDevices: 1, BlocksPerDevice: 1 << 16, StartVBN: 1000}
}

func TestValidate(t *testing.T) {
	if err := testGeo().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Geometry{
		{DataDevices: 0, ParityDevices: 1, BlocksPerDevice: 10},
		{DataDevices: 4, ParityDevices: -1, BlocksPerDevice: 10},
		{DataDevices: 4, ParityDevices: 1, BlocksPerDevice: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad geometry %d validated", i)
		}
	}
}

func TestLocateVBNOfRoundTrip(t *testing.T) {
	g := testGeo()
	r := g.VBNRange()
	if r.Len() != g.Blocks() {
		t.Fatalf("VBNRange len = %d, Blocks = %d", r.Len(), g.Blocks())
	}
	// Spot checks.
	d, dbn := g.Locate(g.StartVBN)
	if d != 0 || dbn != 0 {
		t.Fatalf("Locate(start) = (%d,%d)", d, dbn)
	}
	d, dbn = g.Locate(g.StartVBN + block.VBN(g.BlocksPerDevice))
	if d != 1 || dbn != 0 {
		t.Fatalf("Locate(device 1 start) = (%d,%d)", d, dbn)
	}
	// Property: round trip over random VBNs in range.
	f := func(off uint32) bool {
		v := r.Start + block.VBN(uint64(off)%r.Len())
		d, dbn := g.Locate(v)
		return g.VBNOf(d, dbn) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestLocatePanicsOutside(t *testing.T) {
	g := testGeo()
	for _, v := range []block.VBN{0, g.StartVBN - 1, g.VBNRange().End} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Locate(%v) did not panic", v)
				}
			}()
			g.Locate(v)
		}()
	}
}

func TestStripeVBNs(t *testing.T) {
	g := testGeo()
	vbns := g.StripeVBNs(5)
	if len(vbns) != g.DataDevices {
		t.Fatalf("stripe has %d blocks", len(vbns))
	}
	for d, v := range vbns {
		dd, dbn := g.Locate(v)
		if dd != d || dbn != 5 {
			t.Errorf("stripe block %d locates to (%d,%d)", d, dd, dbn)
		}
	}
	// Every block of a stripe shares a stripe number.
	for _, v := range vbns {
		if g.StripeOf(v) != 5 {
			t.Errorf("StripeOf(%v) != 5", v)
		}
	}
}

func TestDeviceRangesPartitionGroup(t *testing.T) {
	g := testGeo()
	var total uint64
	prevEnd := g.StartVBN
	for d := 0; d < g.DataDevices; d++ {
		r := g.DeviceRange(d)
		if r.Start != prevEnd {
			t.Fatalf("device %d range %v not contiguous with previous end %v", d, r, prevEnd)
		}
		total += r.Len()
		prevEnd = r.End
	}
	if total != g.Blocks() || prevEnd != g.VBNRange().End {
		t.Fatalf("device ranges do not partition group: total=%d end=%v", total, prevEnd)
	}
}

func TestDeviceSegment(t *testing.T) {
	g := testGeo()
	seg := g.DeviceSegment(2, 100, 200)
	if seg.Len() != 100 {
		t.Fatalf("segment len = %d", seg.Len())
	}
	d, dbn := g.Locate(seg.Start)
	if d != 2 || dbn != 100 {
		t.Fatalf("segment start locates to (%d,%d)", d, dbn)
	}
	// Clamped to device end.
	seg = g.DeviceSegment(0, g.BlocksPerDevice-10, g.BlocksPerDevice+10)
	if seg.Len() != 10 {
		t.Fatalf("clamped segment len = %d", seg.Len())
	}
}

func TestBuildTetrisesFullStripe(t *testing.T) {
	g := Geometry{DataDevices: 3, ParityDevices: 1, BlocksPerDevice: 256, StartVBN: 0}
	// Write all blocks of stripes 0..63 → one tetris, all full stripes.
	var vbns []block.VBN
	for s := uint64(0); s < 64; s++ {
		vbns = append(vbns, g.StripeVBNs(s)...)
	}
	ts := BuildTetrises(g, vbns)
	if len(ts) != 1 {
		t.Fatalf("tetris count = %d", len(ts))
	}
	io := ts[0]
	if io.Tetris != 0 || io.BlocksWritten != 192 || io.FullStripes != 64 || io.PartialStripes != 0 {
		t.Fatalf("tetris = %+v", io)
	}
	if io.ParityReadBlocks != 0 {
		t.Fatalf("full stripes should need no parity reads, got %d", io.ParityReadBlocks)
	}
	if io.ParityWriteBlocks != 64 {
		t.Fatalf("parity writes = %d", io.ParityWriteBlocks)
	}
	// Each device written as one 64-block chain.
	if io.WriteIOs() != 3 {
		t.Fatalf("write IOs = %d, chains = %v", io.WriteIOs(), io.Chains)
	}
	for _, c := range io.Chains {
		if c.Len != 64 || c.Start != 0 {
			t.Errorf("chain = %+v", c)
		}
	}
}

func TestBuildTetrisesPartialStripes(t *testing.T) {
	g := Geometry{DataDevices: 6, ParityDevices: 1, BlocksPerDevice: 256, StartVBN: 0}
	// Write 1 block in stripe 0 (subtractive parity: 1 data + 1 parity = 2
	// reads; additive: 5 reads → choose 2) and 5 blocks in stripe 1
	// (subtractive: 6, additive: 1 → choose 1).
	vbns := []block.VBN{g.VBNOf(0, 0)}
	for d := 0; d < 5; d++ {
		vbns = append(vbns, g.VBNOf(d, 1))
	}
	ts := BuildTetrises(g, vbns)
	if len(ts) != 1 {
		t.Fatalf("tetris count = %d", len(ts))
	}
	io := ts[0]
	if io.FullStripes != 0 || io.PartialStripes != 2 {
		t.Fatalf("stripes = %+v", io)
	}
	if io.ParityReadBlocks != 3 {
		t.Fatalf("parity reads = %d, want 2+1=3", io.ParityReadBlocks)
	}
}

func TestBuildTetrisesBoundaries(t *testing.T) {
	g := Geometry{DataDevices: 2, ParityDevices: 1, BlocksPerDevice: 256, StartVBN: 0}
	// Stripes 63 and 64 land in different tetrises.
	vbns := []block.VBN{g.VBNOf(0, 63), g.VBNOf(0, 64)}
	ts := BuildTetrises(g, vbns)
	if len(ts) != 2 || ts[0].Tetris != 0 || ts[1].Tetris != 1 {
		t.Fatalf("tetrises = %+v", ts)
	}
	// Chains do not merge across the tetris boundary even though DBNs are
	// consecutive.
	if ts[0].WriteIOs() != 1 || ts[1].WriteIOs() != 1 {
		t.Fatalf("chains merged across tetris boundary")
	}
}

func TestBuildTetrisesChains(t *testing.T) {
	g := Geometry{DataDevices: 2, ParityDevices: 1, BlocksPerDevice: 256, StartVBN: 0}
	// Device 0: DBNs 0,1,2 and 10 → two chains. Device 1: DBN 1 → one chain.
	vbns := []block.VBN{
		g.VBNOf(0, 0), g.VBNOf(0, 1), g.VBNOf(0, 2), g.VBNOf(0, 10), g.VBNOf(1, 1),
	}
	ts := BuildTetrises(g, vbns)
	if len(ts) != 1 {
		t.Fatalf("tetris count = %d", len(ts))
	}
	io := ts[0]
	want := []Chain{{0, 0, 3}, {0, 10, 1}, {1, 1, 1}}
	if len(io.Chains) != len(want) {
		t.Fatalf("chains = %+v", io.Chains)
	}
	for i := range want {
		if io.Chains[i] != want[i] {
			t.Errorf("chain[%d] = %+v, want %+v", i, io.Chains[i], want[i])
		}
	}
}

func TestBuildTetrisesDuplicatePanics(t *testing.T) {
	g := Geometry{DataDevices: 2, ParityDevices: 1, BlocksPerDevice: 256, StartVBN: 0}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate VBN did not panic")
		}
	}()
	BuildTetrises(g, []block.VBN{3, 3})
}

func TestBuildTetrisesEmpty(t *testing.T) {
	if ts := BuildTetrises(testGeo(), nil); ts != nil {
		t.Fatalf("empty build = %+v", ts)
	}
}

// Property: conservation laws over random write sets.
func TestTetrisConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Geometry{
			DataDevices:     2 + rng.Intn(8),
			ParityDevices:   1 + rng.Intn(2),
			BlocksPerDevice: 512,
			StartVBN:        block.VBN(rng.Intn(1000)),
		}
		n := 1 + rng.Intn(400)
		seen := map[block.VBN]bool{}
		var vbns []block.VBN
		for len(vbns) < n {
			v := g.StartVBN + block.VBN(rng.Intn(int(g.Blocks())))
			if !seen[v] {
				seen[v] = true
				vbns = append(vbns, v)
			}
		}
		stats := NewStats(g)
		var chainBlocks uint64
		ts := BuildTetrises(g, vbns)
		for i := range ts {
			stats.Add(&ts[i])
			if ts[i].FullStripes+ts[i].PartialStripes != ts[i].StripesTouched {
				return false
			}
			for _, c := range ts[i].Chains {
				chainBlocks += c.Len
			}
		}
		if stats.BlocksWritten != uint64(len(vbns)) || chainBlocks != uint64(len(vbns)) {
			return false
		}
		var perDev uint64
		for _, n := range stats.PerDeviceBlocks {
			perDev += n
		}
		return perDev == uint64(len(vbns))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsFullStripeFraction(t *testing.T) {
	s := &Stats{FullStripes: 3, PartialStripes: 1}
	if got := s.FullStripeFraction(); got != 0.75 {
		t.Fatalf("fraction = %v", got)
	}
	if got := (&Stats{}).FullStripeFraction(); got != 0 {
		t.Fatalf("empty fraction = %v", got)
	}
}

func BenchmarkBuildTetrises(b *testing.B) {
	g := Geometry{DataDevices: 14, ParityDevices: 2, BlocksPerDevice: 1 << 20, StartVBN: 0}
	rng := rand.New(rand.NewSource(3))
	seen := map[block.VBN]bool{}
	var vbns []block.VBN
	for len(vbns) < 4096 {
		v := block.VBN(rng.Intn(int(g.Blocks())))
		if !seen[v] {
			seen[v] = true
			vbns = append(vbns, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildTetrises(g, vbns)
	}
}
