// Package raid models the RAID-group geometry beneath a WAFL aggregate.
//
// ONTAP arranges HDDs and SSDs into RAID groups (RAID 4 / RAID-DP style:
// dedicated parity devices) to protect against device failure (§2.1 of the
// paper). WAFL maintains the mapping of physical VBN ranges to storage
// devices based on their RAID topology (§3.1): each data device owns a
// contiguous run of physical VBNs, and stripe s is the set of blocks at
// device-block-number (DBN) s across all data devices, sharing the parity
// block(s) at DBN s on the parity device(s).
//
// The package also implements the tetris — the unit of write I/O WAFL sends
// to a RAID group, composed of 64 consecutive stripes (§4.2) — and the
// full/partial-stripe accounting that drives the paper's cost analysis: a
// full stripe write lets RAID compute parity with no extra reads, whereas a
// partial stripe write forces RAID to read blocks from the stripe first
// (§2.3).
package raid

import (
	"fmt"
	"sort"

	"waflfs/internal/block"
)

// Geometry describes one RAID group.
type Geometry struct {
	// DataDevices is the number of devices that hold file-system blocks.
	DataDevices int
	// ParityDevices is the number of dedicated parity devices (1 for
	// RAID 4, 2 for RAID-DP, 3 for RAID-TP).
	ParityDevices int
	// BlocksPerDevice is the number of 4KiB blocks (DBNs) on each device;
	// it is also the number of stripes in the group.
	BlocksPerDevice uint64
	// StartVBN is the first physical VBN of this group within the
	// aggregate's block-number space.
	StartVBN block.VBN
}

// Validate checks the geometry for internal consistency.
func (g Geometry) Validate() error {
	if g.DataDevices <= 0 {
		return fmt.Errorf("raid: DataDevices = %d, need > 0", g.DataDevices)
	}
	if g.ParityDevices < 0 {
		return fmt.Errorf("raid: ParityDevices = %d, need >= 0", g.ParityDevices)
	}
	if g.BlocksPerDevice == 0 {
		return fmt.Errorf("raid: BlocksPerDevice = 0")
	}
	return nil
}

// Blocks returns the number of data blocks (physical VBNs) in the group.
func (g Geometry) Blocks() uint64 { return uint64(g.DataDevices) * g.BlocksPerDevice }

// Stripes returns the number of stripes in the group.
func (g Geometry) Stripes() uint64 { return g.BlocksPerDevice }

// VBNRange returns the physical VBN range owned by this group.
func (g Geometry) VBNRange() block.Range {
	return block.R(g.StartVBN, g.StartVBN+block.VBN(g.Blocks()))
}

// Locate maps a physical VBN to its (data device index, DBN) coordinates.
// It panics if v is outside the group.
func (g Geometry) Locate(v block.VBN) (device int, dbn uint64) {
	if !g.VBNRange().Contains(v) {
		panic(fmt.Sprintf("raid: VBN %d outside group range %v", uint64(v), g.VBNRange()))
	}
	off := uint64(v - g.StartVBN)
	return int(off / g.BlocksPerDevice), off % g.BlocksPerDevice
}

// VBNOf is the inverse of Locate.
func (g Geometry) VBNOf(device int, dbn uint64) block.VBN {
	if device < 0 || device >= g.DataDevices || dbn >= g.BlocksPerDevice {
		panic(fmt.Sprintf("raid: coordinates (%d,%d) outside geometry", device, dbn))
	}
	return g.StartVBN + block.VBN(uint64(device)*g.BlocksPerDevice+dbn)
}

// StripeOf returns the stripe number (== DBN) of a physical VBN.
func (g Geometry) StripeOf(v block.VBN) uint64 {
	_, dbn := g.Locate(v)
	return dbn
}

// DeviceRange returns the VBN range owned by one data device.
func (g Geometry) DeviceRange(device int) block.Range {
	if device < 0 || device >= g.DataDevices {
		panic(fmt.Sprintf("raid: device %d outside geometry", device))
	}
	start := g.StartVBN + block.VBN(uint64(device)*g.BlocksPerDevice)
	return block.R(start, start+block.VBN(g.BlocksPerDevice))
}

// DeviceSegment returns, for one data device, the VBN range covering the
// half-open stripe interval [fromStripe, toStripe). Allocation areas use
// this to describe themselves as one contiguous DBN run per device.
func (g Geometry) DeviceSegment(device int, fromStripe, toStripe uint64) block.Range {
	if toStripe > g.BlocksPerDevice {
		toStripe = g.BlocksPerDevice
	}
	if fromStripe > toStripe {
		fromStripe = toStripe
	}
	return block.R(g.VBNOf(device, fromStripe), g.DeviceRange(device).Start+block.VBN(toStripe))
}

// StripeVBNs returns the physical VBNs composing stripe s, one per data
// device, in device order.
func (g Geometry) StripeVBNs(s uint64) []block.VBN {
	if s >= g.BlocksPerDevice {
		panic(fmt.Sprintf("raid: stripe %d outside geometry", s))
	}
	out := make([]block.VBN, g.DataDevices)
	for d := 0; d < g.DataDevices; d++ {
		out[d] = g.VBNOf(d, s)
	}
	return out
}

// Chain is a run of consecutive DBNs written to one device in a single
// write I/O — a write chain in the paper's terminology (§2.4).
type Chain struct {
	Device int
	Start  uint64 // first DBN in the chain
	Len    uint64 // number of blocks
}

// TetrisIO describes one tetris (64 consecutive stripes) worth of writes to
// a RAID group, fully classified for the cost model:
//
//   - how many of its stripes are full vs. partial;
//   - the extra reads RAID needs to compute parity on partial stripes;
//   - the per-device write chains (each chain is one device write I/O).
type TetrisIO struct {
	Tetris         uint64 // tetris index within the group (stripe/64)
	BlocksWritten  int    // data blocks written
	StripesTouched int    // stripes with at least one block written
	FullStripes    int    // stripes with every data block written
	PartialStripes int    // StripesTouched - FullStripes
	// ParityReadBlocks is the number of blocks RAID must read to compute
	// parity for the partial stripes. For each partial stripe with k of D
	// data blocks written, RAID reads min(k+P, (D-k)+... ) — we model the
	// cheaper of additive (read the D-k unwritten data blocks) and
	// subtractive (read the k old data blocks plus P old parity blocks)
	// parity computation, as production RAID implementations do.
	ParityReadBlocks int
	// ParityWriteBlocks is StripesTouched * ParityDevices: parity is
	// rewritten for every touched stripe.
	ParityWriteBlocks int
	// Chains lists the per-device write chains, ordered by device then DBN.
	Chains []Chain
}

// WriteIOs returns the number of device write I/Os needed for the tetris'
// data blocks: one per chain. (Parity writes are accounted separately since
// parity devices are written in stripe-contiguous runs.)
func (t *TetrisIO) WriteIOs() int { return len(t.Chains) }

// BuildTetrises classifies a CP's writes to one RAID group. vbns is the set
// of physical VBNs being written (in any order, duplicates not allowed); the
// result is ordered by tetris index. The tetris boundary is
// block.StripesPerTetris consecutive stripes.
func BuildTetrises(g Geometry, vbns []block.VBN) []TetrisIO {
	if len(vbns) == 0 {
		return nil
	}
	sorted := append([]block.VBN(nil), vbns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	// Group blocks by tetris.
	type coord struct {
		device int
		dbn    uint64
	}
	byTetris := make(map[uint64][]coord)
	for i, v := range sorted {
		if i > 0 && v == sorted[i-1] {
			panic(fmt.Sprintf("raid: duplicate VBN %d in tetris build", uint64(v)))
		}
		d, dbn := g.Locate(v)
		byTetris[dbn/block.StripesPerTetris] = append(byTetris[dbn/block.StripesPerTetris], coord{d, dbn})
	}

	tetrisIDs := make([]uint64, 0, len(byTetris))
	for id := range byTetris {
		tetrisIDs = append(tetrisIDs, id)
	}
	sort.Slice(tetrisIDs, func(i, j int) bool { return tetrisIDs[i] < tetrisIDs[j] })

	out := make([]TetrisIO, 0, len(tetrisIDs))
	for _, id := range tetrisIDs {
		coords := byTetris[id]
		io := TetrisIO{Tetris: id, BlocksWritten: len(coords)}

		// Stripe fill counts.
		stripeFill := make(map[uint64]int)
		for _, c := range coords {
			stripeFill[c.dbn]++
		}
		io.StripesTouched = len(stripeFill)
		for _, k := range stripeFill {
			if k == g.DataDevices {
				io.FullStripes++
			} else {
				// Cheaper of subtractive (k old data + P old parity) and
				// additive (D-k untouched data) parity computation.
				sub := k + g.ParityDevices
				add := g.DataDevices - k
				if add < sub {
					io.ParityReadBlocks += add
				} else {
					io.ParityReadBlocks += sub
				}
			}
		}
		io.PartialStripes = io.StripesTouched - io.FullStripes
		io.ParityWriteBlocks = io.StripesTouched * g.ParityDevices

		// Per-device chains: sort by (device, dbn) and split runs.
		sort.Slice(coords, func(i, j int) bool {
			if coords[i].device != coords[j].device {
				return coords[i].device < coords[j].device
			}
			return coords[i].dbn < coords[j].dbn
		})
		for i := 0; i < len(coords); {
			j := i + 1
			for j < len(coords) && coords[j].device == coords[i].device &&
				coords[j].dbn == coords[j-1].dbn+1 {
				j++
			}
			io.Chains = append(io.Chains, Chain{
				Device: coords[i].device,
				Start:  coords[i].dbn,
				Len:    uint64(j - i),
			})
			i = j
		}
		out = append(out, io)
	}
	return out
}

// XORParity computes the byte-wise XOR parity of equal-length chunks — the
// RAID 4 parity rule at sub-block granularity. Metafile blocks persist one
// parity chunk per 4KiB block so that a single damaged or unreadable chunk
// can be rebuilt without falling back to recomputing the caches from the
// bitmaps. It panics on no chunks or mismatched lengths (a programming
// error, like Geometry misuse).
func XORParity(chunks ...[]byte) []byte {
	if len(chunks) == 0 {
		panic("raid: XOR parity of zero chunks")
	}
	out := append([]byte(nil), chunks[0]...)
	for _, c := range chunks[1:] {
		if len(c) != len(out) {
			panic(fmt.Sprintf("raid: XOR parity chunk length %d != %d", len(c), len(out)))
		}
		for i, b := range c {
			out[i] ^= b
		}
	}
	return out
}

// XORReconstruct rebuilds one missing chunk from the parity chunk and the
// surviving chunks: parity XOR survivors. It is XORParity with the parity
// standing in for the lost member.
func XORReconstruct(parity []byte, survivors ...[]byte) []byte {
	return XORParity(append([][]byte{parity}, survivors...)...)
}

// Stats accumulates tetris accounting across consistency points; the Fig. 7
// experiment reports blocks/s and tetrises/s per RAID group from it.
type Stats struct {
	Tetrises          uint64
	BlocksWritten     uint64
	FullStripes       uint64
	PartialStripes    uint64
	ParityReadBlocks  uint64
	ParityWriteBlocks uint64
	WriteIOs          uint64 // data-device write I/Os (chains)
	// PerDeviceBlocks counts data blocks written to each device.
	PerDeviceBlocks []uint64
}

// NewStats returns a Stats sized for geometry g.
func NewStats(g Geometry) *Stats {
	return &Stats{PerDeviceBlocks: make([]uint64, g.DataDevices)}
}

// Add folds one tetris into the statistics.
func (s *Stats) Add(t *TetrisIO) {
	s.Tetrises++
	s.BlocksWritten += uint64(t.BlocksWritten)
	s.FullStripes += uint64(t.FullStripes)
	s.PartialStripes += uint64(t.PartialStripes)
	s.ParityReadBlocks += uint64(t.ParityReadBlocks)
	s.ParityWriteBlocks += uint64(t.ParityWriteBlocks)
	s.WriteIOs += uint64(t.WriteIOs())
	for _, c := range t.Chains {
		if c.Device < len(s.PerDeviceBlocks) {
			s.PerDeviceBlocks[c.Device] += c.Len
		}
	}
}

// FullStripeFraction returns the fraction of touched stripes written full.
func (s *Stats) FullStripeFraction() float64 {
	tot := s.FullStripes + s.PartialStripes
	if tot == 0 {
		return 0
	}
	return float64(s.FullStripes) / float64(tot)
}
