package topaa

import (
	"testing"

	"waflfs/internal/aa"
	"waflfs/internal/block"
	"waflfs/internal/hbps"
)

// FuzzLoadRAIDAware asserts the RAID-aware decoder never panics: arbitrary
// bytes either error or decode to densely packed, descending, duplicate-free
// entries — the properties mount relies on before seeding the heap.
func FuzzLoadRAIDAware(f *testing.F) {
	good, err := MarshalRAIDAware(fullCache(300, 20).TopK(RAIDAwareEntries))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	empty, _ := MarshalRAIDAware(nil)
	f.Add(empty)
	f.Add([]byte{})
	f.Add(make([]byte, block.BlockSize))
	f.Add(make([]byte, block.BlockSize-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := LoadRAIDAware(data)
		if err != nil {
			return
		}
		seen := make(map[aa.ID]bool, len(entries))
		for i, e := range entries {
			if seen[e.ID] {
				t.Fatalf("decoded duplicate AA %d", e.ID)
			}
			seen[e.ID] = true
			if e.Score > uint64(^uint32(0)) {
				t.Fatalf("decoded score %d exceeds uint32", e.Score)
			}
			if i > 0 && entries[i-1].Score < e.Score {
				t.Fatalf("decoded scores not descending at %d", i)
			}
		}
	})
}

// FuzzLoadAgnostic asserts the RAID-agnostic (HBPS page) decoder never
// panics and only yields structures whose invariants hold.
func FuzzLoadAgnostic(f *testing.F) {
	h := hbps.New(hbps.DefaultConfig())
	for i := 0; i < 500; i++ {
		h.Track(aa.ID(i), uint32(i%32769))
	}
	f.Add(h.Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, 2*hbps.PageSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := hbps.Load(data)
		if err != nil {
			return
		}
		if err := got.CheckInvariants(); err != nil {
			t.Fatalf("decoded HBPS violates invariants: %v", err)
		}
	})
}
