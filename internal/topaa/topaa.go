// Package topaa implements the TopAA metafile (§3.4 of the paper): the
// persistent form of the allocation-area caches, read at mount time so
// write allocation can begin without a linear walk of the bitmap metafiles.
//
// Two encodings exist, matching the two cache types:
//
//   - RAID-aware: one 4KiB block per RAID group holding the 512 best AAs
//     and their scores. This seeds the max-heap with high-quality AAs;
//     client operations and CPs run on the seed while a background walk
//     rebuilds the full heap.
//
//   - RAID-agnostic: two 4KiB blocks per FlexVol (or non-RAID store) into
//     which the HBPS structure is embedded verbatim — the same pages stay
//     pinned in the buffer cache, so almost no I/O or CPU is needed at
//     mount.
//
// The Store type simulates the metafile itself: a set of named block runs
// with read/write accounting (for the Fig. 10 experiment) and a full
// failure model. Every 4KiB block is protected at 512-byte chunk
// granularity — a checksum and generation stamp per chunk plus one XOR
// parity chunk — so loads distinguish four failure classes:
//
//   - missing: the metafile was never written (or a failed save degraded
//     to "no metafile");
//   - stale: all chunks carry an older generation than the store — the CP
//     that should have rewritten them crashed before the save landed;
//   - torn: chunks within one metafile carry mixed generations — the
//     crash interrupted the save itself;
//   - damaged: a chunk fails its checksum or reports a media error. One
//     bad chunk per block is RAID-reconstructed from the parity chunk and
//     repaired in place; anything beyond that is unrecoverable.
//
// Missing, stale, torn, and unrecoverable damage all make the caller fall
// back to recomputing the caches from the bitmaps — the job WAFL Iron
// performs online. Reconstruction and every failure class are counted so
// recovery behaviour can be asserted and exported.
package topaa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"waflfs/internal/aa"
	"waflfs/internal/block"
	"waflfs/internal/faultinject"
	"waflfs/internal/hbps"
	"waflfs/internal/heapcache"
	"waflfs/internal/raid"
)

// RAIDAwareEntries is the number of (AA, score) pairs one 4KiB TopAA block
// holds for a RAID-aware cache: 512 entries of 8 bytes.
const RAIDAwareEntries = block.BlockSize / 8

// invalidID marks unused entry slots.
const invalidID = ^uint32(0)

// Failure classes reported by Store loads. Callers test with errors.Is and
// fall back to a bitmap walk on any of them; the classes only differ in
// how the fallback is counted.
var (
	// ErrMissing: no metafile exists under the name.
	ErrMissing = errors.New("topaa: metafile missing")
	// ErrStale: the metafile is intact but was written by an earlier CP
	// generation — its scores predate mutations the bitmap already holds.
	ErrStale = errors.New("topaa: metafile stale")
	// ErrTorn: chunks carry mixed generations — the save was interrupted.
	ErrTorn = errors.New("topaa: metafile torn")
	// ErrDamaged: media damage beyond what RAID can reconstruct, or a
	// structurally invalid decode.
	ErrDamaged = errors.New("topaa: metafile damaged")
)

// LoadOutcome classifies a successful or failed metafile load.
type LoadOutcome int

const (
	// LoadFailed: the load returned an error; the caller must fall back.
	LoadFailed LoadOutcome = iota
	// LoadClean: every chunk verified on the first read.
	LoadClean
	// LoadReconstructed: at least one chunk was rebuilt from parity and
	// repaired in place before the decode succeeded.
	LoadReconstructed
)

// String implements fmt.Stringer.
func (o LoadOutcome) String() string {
	switch o {
	case LoadFailed:
		return "failed"
	case LoadClean:
		return "clean"
	case LoadReconstructed:
		return "reconstructed"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// MarshalRAIDAware encodes up to RAIDAwareEntries of the best AAs (as
// produced by heapcache.Cache.TopK, descending score order) into one 4KiB
// block. It returns an error if any entry does not fit the 32-bit on-disk
// fields — e.g. an AA configured larger than 2^32-1 blocks — so the CP
// persist path can degrade to "no metafile" instead of crashing.
func MarshalRAIDAware(entries []heapcache.Entry) ([]byte, error) {
	if len(entries) > RAIDAwareEntries {
		entries = entries[:RAIDAwareEntries]
	}
	buf := make([]byte, block.BlockSize)
	le := binary.LittleEndian
	for i := range buf[:] {
		buf[i] = 0xff // invalid-fill: empty slots read back as invalidID
	}
	for i, e := range entries {
		if uint64(e.ID) >= uint64(invalidID) || e.Score > uint64(^uint32(0)) {
			return nil, fmt.Errorf("topaa: entry (%d,%d) does not fit 32-bit encoding", e.ID, e.Score)
		}
		le.PutUint32(buf[8*i:], uint32(e.ID))
		le.PutUint32(buf[8*i+4:], uint32(e.Score))
	}
	return buf, nil
}

// LoadRAIDAware decodes a RAID-aware TopAA block. It validates that entries
// are densely packed and in descending score order (the order TopK writes),
// returning an error on any inconsistency so mount can fall back to a
// bitmap walk.
func LoadRAIDAware(buf []byte) ([]heapcache.Entry, error) {
	if len(buf) != block.BlockSize {
		return nil, fmt.Errorf("topaa: RAID-aware block is %d bytes, want %d", len(buf), block.BlockSize)
	}
	le := binary.LittleEndian
	var out []heapcache.Entry
	seen := make(map[aa.ID]bool)
	ended := false
	for i := 0; i < RAIDAwareEntries; i++ {
		id := le.Uint32(buf[8*i:])
		score := le.Uint32(buf[8*i+4:])
		if id == invalidID {
			ended = true
			continue
		}
		if ended {
			return nil, errors.New("topaa: entry after terminator")
		}
		e := heapcache.Entry{ID: aa.ID(id), Score: uint64(score)}
		if seen[e.ID] {
			return nil, fmt.Errorf("topaa: duplicate AA %d", e.ID)
		}
		seen[e.ID] = true
		if n := len(out); n > 0 && out[n-1].Score < e.Score {
			return nil, errors.New("topaa: scores not descending")
		}
		out = append(out, e)
	}
	return out, nil
}

// protBlock is the chunk-granularity protection for one 4KiB metafile
// block: a CRC and generation stamp per 512-byte chunk, plus an XOR parity
// chunk that can rebuild any single lost chunk.
type protBlock struct {
	crcs             [block.ChunksPerBlock]uint32
	gens             [block.ChunksPerBlock]uint64
	unreadable       [block.ChunksPerBlock]bool
	parity           []byte
	parityCRC        uint32
	parityUnreadable bool
}

// metafile is one named block run plus its protection.
type metafile struct {
	data []byte
	prot []protBlock
}

func (m *metafile) nblocks() int { return len(m.data) / block.BlockSize }

// protectBlock computes fresh protection for one 4KiB block at gen.
func protectBlock(blk []byte, gen uint64) protBlock {
	var pb protBlock
	chunks := make([][]byte, block.ChunksPerBlock)
	for c := 0; c < block.ChunksPerBlock; c++ {
		ch := blk[c*block.ChunkSize : (c+1)*block.ChunkSize]
		chunks[c] = ch
		pb.crcs[c] = crc32.ChecksumIEEE(ch)
		pb.gens[c] = gen
	}
	pb.parity = raid.XORParity(chunks...)
	pb.parityCRC = crc32.ChecksumIEEE(pb.parity)
	return pb
}

// newMetafile builds a fully protected metafile for data at gen.
func newMetafile(data []byte, gen uint64) *metafile {
	m := &metafile{data: append([]byte(nil), data...)}
	m.prot = make([]protBlock, m.nblocks())
	for b := range m.prot {
		m.prot[b] = protectBlock(m.data[b*block.BlockSize:(b+1)*block.BlockSize], gen)
	}
	return m
}

// RecoveryStats counts the failure and recovery events the store has seen.
type RecoveryStats struct {
	Reconstructions uint64 // chunks rebuilt from parity and repaired in place
	SaveErrors      uint64 // saves that degraded to "no metafile"
	StaleLoads      uint64 // loads rejected as ErrStale
	TornLoads       uint64 // loads rejected as ErrTorn
	DamagedLoads    uint64 // loads rejected as ErrDamaged
}

// Store simulates the TopAA metafile's blocks, keyed by file-system
// instance name (one aggregate or FlexVol per key). It counts block reads
// and writes so experiments can charge mount-time I/O, stamps every save
// with the store's CP generation, and routes saves through an optional
// fault injector. All methods are safe for concurrent use: parallel mount
// rebuilds load every space's metafile from worker shards, and each key is
// owned by exactly one space.
type Store struct {
	mu     sync.Mutex
	blocks map[string]*metafile
	gen    uint64

	reads  uint64 // blocks read (failed probes charge one)
	writes uint64 // blocks written

	rec RecoveryStats

	inj *faultinject.Injector // nil = no faults
}

// NewStore creates an empty metafile store.
func NewStore() *Store {
	return &Store{blocks: make(map[string]*metafile)}
}

// SetInjector routes subsequent saves and damage through inj. A nil
// injector disables fault injection.
func (s *Store) SetInjector(inj *faultinject.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inj = inj
}

// BeginGeneration advances the store's CP generation; CommitCP calls it
// once per CP before any TopAA save, so a crash that drops this CP's saves
// leaves the previous generation detectably stale.
func (s *Store) BeginGeneration() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
}

// Generation returns the current CP generation.
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// save persists data (a multiple of the block size) under name, applying
// the injector's verdict: dropped saves never reach the map, torn saves
// land only their first k chunks over the previous image.
func (s *Store) save(name string, data []byte) {
	nblocks := len(data) / block.BlockSize
	s.mu.Lock()
	inj := s.inj
	s.mu.Unlock()
	// The injector has its own lock and ApplyDamage calls back into the
	// store, so consult it without holding s.mu.
	dec := inj.OnSave(name, nblocks*block.ChunksPerBlock)

	s.mu.Lock()
	defer s.mu.Unlock()
	if dec.Drop {
		return
	}
	if dec.TornChunks > 0 {
		s.tornWriteLocked(name, data, dec.TornChunks)
		s.writes += uint64(nblocks)
		return
	}
	s.blocks[name] = newMetafile(data, s.gen)
	s.writes += uint64(nblocks)
}

// tornWriteLocked lands only the first k chunks of data over the previous
// image (zeros at generation 0 if the metafile is new or resized), leaving
// the parity chunks untouched — exactly the mixed-generation state a crash
// mid-write produces.
func (s *Store) tornWriteLocked(name string, data []byte, k int) {
	old := s.blocks[name]
	if old == nil || len(old.data) != len(data) {
		old = newMetafile(make([]byte, len(data)), 0)
	}
	for c := 0; c < k; c++ {
		b, ch := c/block.ChunksPerBlock, c%block.ChunksPerBlock
		off := b*block.BlockSize + ch*block.ChunkSize
		chunk := data[off : off+block.ChunkSize]
		copy(old.data[off:], chunk)
		old.prot[b].crcs[ch] = crc32.ChecksumIEEE(chunk)
		old.prot[b].gens[ch] = s.gen
	}
	s.blocks[name] = old
}

// load reads the named metafile, verifying every chunk. A single bad chunk
// per block is rebuilt from parity and repaired in place; anything worse —
// or mixed/stale generations — fails with the matching sentinel error. The
// failed probe of a missing metafile charges one block read; a present
// metafile charges one read per block.
func (s *Store) load(name string) ([]byte, LoadOutcome, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.blocks[name]
	if !ok {
		s.reads++ // the probe that discovers the miss is a real I/O
		return nil, LoadFailed, fmt.Errorf("%w: no metafile for %q", ErrMissing, name)
	}
	nblocks := m.nblocks()
	s.reads += uint64(nblocks)

	reconstructed := false
	for b := 0; b < nblocks; b++ {
		pb := &m.prot[b]
		blk := m.data[b*block.BlockSize : (b+1)*block.BlockSize]
		var bad []int
		for c := 0; c < block.ChunksPerBlock; c++ {
			ch := blk[c*block.ChunkSize : (c+1)*block.ChunkSize]
			if pb.unreadable[c] || crc32.ChecksumIEEE(ch) != pb.crcs[c] {
				bad = append(bad, c)
			}
		}
		if len(bad) == 0 {
			continue
		}
		if len(bad) > 1 || pb.parityUnreadable || crc32.ChecksumIEEE(pb.parity) != pb.parityCRC {
			s.rec.DamagedLoads++
			return nil, LoadFailed, fmt.Errorf("%w: %q block %d: %d bad chunks, parity lost=%v",
				ErrDamaged, name, b, len(bad), pb.parityUnreadable)
		}
		c := bad[0]
		survivors := make([][]byte, 0, block.ChunksPerBlock-1)
		for o := 0; o < block.ChunksPerBlock; o++ {
			if o != c {
				survivors = append(survivors, blk[o*block.ChunkSize:(o+1)*block.ChunkSize])
			}
		}
		rebuilt := raid.XORReconstruct(pb.parity, survivors...)
		if crc32.ChecksumIEEE(rebuilt) != pb.crcs[c] {
			s.rec.DamagedLoads++
			return nil, LoadFailed, fmt.Errorf("%w: %q block %d chunk %d failed checksum after reconstruction",
				ErrDamaged, name, b, c)
		}
		copy(blk[c*block.ChunkSize:], rebuilt)
		pb.unreadable[c] = false
		s.rec.Reconstructions++
		reconstructed = true
	}

	// Generation check: every chunk must carry one generation, and it must
	// be the store's current one. Mixed = the save tore; old = the save
	// was dropped by a crash.
	g0 := m.prot[0].gens[0]
	for b := range m.prot {
		for _, g := range m.prot[b].gens {
			if g != g0 {
				s.rec.TornLoads++
				return nil, LoadFailed, fmt.Errorf("%w: %q has chunks at generations %d and %d", ErrTorn, name, g0, g)
			}
		}
	}
	if g0 != s.gen {
		s.rec.StaleLoads++
		return nil, LoadFailed, fmt.Errorf("%w: %q at generation %d, store at %d", ErrStale, name, g0, s.gen)
	}

	out := LoadClean
	if reconstructed {
		out = LoadReconstructed
	}
	return append([]byte(nil), m.data...), out, nil
}

// SaveRAIDAware persists the cache's 512 best AAs under name. This runs at
// each CP boundary in WAFL; it costs one block write. If the cache cannot
// be encoded, the save degrades to "no metafile" — the stale previous
// image is removed so the next mount detectably falls back to a bitmap
// walk — and the error is returned for accounting.
func (s *Store) SaveRAIDAware(name string, c *heapcache.Cache) error {
	buf, err := MarshalRAIDAware(c.TopK(RAIDAwareEntries))
	if err != nil {
		s.mu.Lock()
		s.rec.SaveErrors++
		delete(s.blocks, name)
		s.mu.Unlock()
		return err
	}
	s.save(name, buf)
	return nil
}

// LoadRAIDAware reads the named block and decodes the seed entries,
// charging one block read (or one for the failed probe).
func (s *Store) LoadRAIDAware(name string) ([]heapcache.Entry, LoadOutcome, error) {
	buf, outcome, err := s.load(name)
	if err != nil {
		return nil, LoadFailed, err
	}
	entries, err := LoadRAIDAware(buf)
	if err != nil {
		s.mu.Lock()
		s.rec.DamagedLoads++
		s.mu.Unlock()
		return nil, LoadFailed, fmt.Errorf("%w: %v", ErrDamaged, err)
	}
	return entries, outcome, nil
}

// SaveAgnostic persists an HBPS verbatim (two or more blocks) under name.
func (s *Store) SaveAgnostic(name string, h *hbps.HBPS) {
	s.save(name, h.Marshal())
}

// LoadAgnostic reads and reconstructs the named HBPS, charging one read per
// block (or one for the failed probe).
func (s *Store) LoadAgnostic(name string) (*hbps.HBPS, LoadOutcome, error) {
	buf, outcome, err := s.load(name)
	if err != nil {
		return nil, LoadFailed, err
	}
	h, err := hbps.Load(buf)
	if err != nil {
		s.mu.Lock()
		s.rec.DamagedLoads++
		s.mu.Unlock()
		return nil, LoadFailed, fmt.Errorf("%w: %v", ErrDamaged, err)
	}
	return h, outcome, nil
}

// Has reports whether a metafile exists for name.
func (s *Store) Has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.blocks[name]
	return ok
}

// Keys returns the names of all persisted metafiles, sorted — the
// deterministic candidate list fault plans pick damage targets from.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.blocks))
	for k := range s.blocks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Corrupt flips a byte in the named metafile and a byte of the containing
// block's parity chunk, simulating media damage that RAID cannot
// reconstruct; used to exercise the repair/fallback path. The offset must
// lie within the metafile.
func (s *Store) Corrupt(name string, offset int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.blocks[name]
	if !ok {
		return fmt.Errorf("topaa: no metafile for %q", name)
	}
	if offset < 0 || offset >= len(m.data) {
		return fmt.Errorf("topaa: corrupt offset %d out of range [0,%d) for %q", offset, len(m.data), name)
	}
	m.data[offset] ^= 0xa5
	m.prot[offset/block.BlockSize].parity[offset%block.ChunkSize] ^= 0xa5
	return nil
}

// Drop removes the named metafile (e.g. a fresh file system that has never
// completed a CP).
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blocks, name)
}

// Stats reports lifetime I/O to the store.
func (s *Store) Stats() (reads, writes uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads, s.writes
}

// Recovery reports lifetime failure and recovery events.
func (s *Store) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec
}

// The Store is the faultinject.DamageSurface fault plans damage.
var _ faultinject.DamageSurface = (*Store)(nil)

func (s *Store) chunkTarget(name string, blk, chunk int) (*metafile, error) {
	m, ok := s.blocks[name]
	if !ok {
		return nil, fmt.Errorf("topaa: no metafile for %q", name)
	}
	if blk < 0 || blk >= m.nblocks() {
		return nil, fmt.Errorf("topaa: block %d out of range [0,%d) for %q", blk, m.nblocks(), name)
	}
	if chunk < 0 || chunk >= block.ChunksPerBlock {
		return nil, fmt.Errorf("topaa: chunk %d out of range [0,%d)", chunk, block.ChunksPerBlock)
	}
	return m, nil
}

// BlockCount implements faultinject.DamageSurface.
func (s *Store) BlockCount(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.blocks[name]
	if !ok {
		return 0
	}
	return m.nblocks()
}

// CorruptChunk implements faultinject.DamageSurface: it flips one byte in
// a single data chunk, leaving parity intact so the load path can
// reconstruct it.
func (s *Store) CorruptChunk(name string, blk, chunk int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := s.chunkTarget(name, blk, chunk)
	if err != nil {
		return err
	}
	m.data[blk*block.BlockSize+chunk*block.ChunkSize] ^= 0xa5
	return nil
}

// MarkChunkUnreadable implements faultinject.DamageSurface.
func (s *Store) MarkChunkUnreadable(name string, blk, chunk int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := s.chunkTarget(name, blk, chunk)
	if err != nil {
		return err
	}
	m.prot[blk].unreadable[chunk] = true
	return nil
}

// MarkParityUnreadable implements faultinject.DamageSurface.
func (s *Store) MarkParityUnreadable(name string, blk int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := s.chunkTarget(name, blk, 0)
	if err != nil {
		return err
	}
	m.prot[blk].parityUnreadable = true
	return nil
}
