// Package topaa implements the TopAA metafile (§3.4 of the paper): the
// persistent form of the allocation-area caches, read at mount time so
// write allocation can begin without a linear walk of the bitmap metafiles.
//
// Two encodings exist, matching the two cache types:
//
//   - RAID-aware: one 4KiB block per RAID group holding the 512 best AAs
//     and their scores. This seeds the max-heap with high-quality AAs;
//     client operations and CPs run on the seed while a background walk
//     rebuilds the full heap.
//
//   - RAID-agnostic: two 4KiB blocks per FlexVol (or non-RAID store) into
//     which the HBPS structure is embedded verbatim — the same pages stay
//     pinned in the buffer cache, so almost no I/O or CPU is needed at
//     mount.
//
// The Store type simulates the metafile itself: a set of named block runs
// with read/write accounting (for the Fig. 10 experiment) and fault
// injection (for the repair path: if a TopAA metafile is damaged and RAID
// cannot reconstruct it, WAFL falls back to recomputing the caches from
// the bitmaps, the job WAFL Iron performs online).
package topaa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"waflfs/internal/aa"
	"waflfs/internal/block"
	"waflfs/internal/hbps"
	"waflfs/internal/heapcache"
)

// RAIDAwareEntries is the number of (AA, score) pairs one 4KiB TopAA block
// holds for a RAID-aware cache: 512 entries of 8 bytes.
const RAIDAwareEntries = block.BlockSize / 8

// invalidID marks unused entry slots.
const invalidID = ^uint32(0)

// MarshalRAIDAware encodes up to RAIDAwareEntries of the best AAs (as
// produced by heapcache.Cache.TopK, descending score order) into one 4KiB
// block.
func MarshalRAIDAware(entries []heapcache.Entry) []byte {
	if len(entries) > RAIDAwareEntries {
		entries = entries[:RAIDAwareEntries]
	}
	buf := make([]byte, block.BlockSize)
	le := binary.LittleEndian
	for i := range buf[:] {
		buf[i] = 0xff // invalid-fill: empty slots read back as invalidID
	}
	for i, e := range entries {
		if uint64(e.ID) >= uint64(invalidID) || e.Score > uint64(^uint32(0)) {
			panic(fmt.Sprintf("topaa: entry (%d,%d) unencodable", e.ID, e.Score))
		}
		le.PutUint32(buf[8*i:], uint32(e.ID))
		le.PutUint32(buf[8*i+4:], uint32(e.Score))
	}
	return buf
}

// LoadRAIDAware decodes a RAID-aware TopAA block. It validates that entries
// are densely packed and in descending score order (the order TopK writes),
// returning an error on any inconsistency so mount can fall back to a
// bitmap walk.
func LoadRAIDAware(buf []byte) ([]heapcache.Entry, error) {
	if len(buf) != block.BlockSize {
		return nil, fmt.Errorf("topaa: RAID-aware block is %d bytes, want %d", len(buf), block.BlockSize)
	}
	le := binary.LittleEndian
	var out []heapcache.Entry
	seen := make(map[aa.ID]bool)
	ended := false
	for i := 0; i < RAIDAwareEntries; i++ {
		id := le.Uint32(buf[8*i:])
		score := le.Uint32(buf[8*i+4:])
		if id == invalidID {
			ended = true
			continue
		}
		if ended {
			return nil, errors.New("topaa: entry after terminator")
		}
		e := heapcache.Entry{ID: aa.ID(id), Score: uint64(score)}
		if seen[e.ID] {
			return nil, fmt.Errorf("topaa: duplicate AA %d", e.ID)
		}
		seen[e.ID] = true
		if n := len(out); n > 0 && out[n-1].Score < e.Score {
			return nil, errors.New("topaa: scores not descending")
		}
		out = append(out, e)
	}
	return out, nil
}

// Store simulates the TopAA metafile's blocks, keyed by file-system
// instance name (one aggregate or FlexVol per key). It counts block reads
// and writes so experiments can charge mount-time I/O. All methods are
// safe for concurrent use: parallel mount rebuilds load every space's
// metafile from worker shards, and each key is owned by exactly one space.
type Store struct {
	mu     sync.Mutex
	blocks map[string][]byte

	reads  uint64 // blocks read
	writes uint64 // blocks written
}

// NewStore creates an empty metafile store.
func NewStore() *Store {
	return &Store{blocks: make(map[string][]byte)}
}

// SaveRAIDAware persists the cache's 512 best AAs under name. This runs at
// each CP boundary in WAFL; it costs one block write.
func (s *Store) SaveRAIDAware(name string, c *heapcache.Cache) {
	buf := MarshalRAIDAware(c.TopK(RAIDAwareEntries))
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blocks[name] = buf
	s.writes++
}

// LoadRAIDAware reads the named block and decodes the seed entries,
// charging one block read.
func (s *Store) LoadRAIDAware(name string) ([]heapcache.Entry, error) {
	s.mu.Lock()
	buf, ok := s.blocks[name]
	if ok {
		s.reads++
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("topaa: no metafile block for %q", name)
	}
	return LoadRAIDAware(buf)
}

// SaveAgnostic persists an HBPS verbatim (two or more blocks) under name.
func (s *Store) SaveAgnostic(name string, h *hbps.HBPS) {
	data := h.Marshal()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blocks[name] = data
	s.writes += uint64(len(data) / block.BlockSize)
}

// LoadAgnostic reads and reconstructs the named HBPS, charging one read per
// block.
func (s *Store) LoadAgnostic(name string) (*hbps.HBPS, error) {
	s.mu.Lock()
	buf, ok := s.blocks[name]
	if ok {
		s.reads += uint64(len(buf) / block.BlockSize)
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("topaa: no metafile blocks for %q", name)
	}
	return hbps.Load(buf)
}

// Has reports whether a metafile exists for name.
func (s *Store) Has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.blocks[name]
	return ok
}

// Corrupt flips a byte in the named metafile, simulating media damage that
// RAID could not reconstruct; used to exercise the repair/fallback path.
func (s *Store) Corrupt(name string, offset int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, ok := s.blocks[name]
	if !ok {
		return fmt.Errorf("topaa: no metafile for %q", name)
	}
	buf[offset%len(buf)] ^= 0xa5
	return nil
}

// Drop removes the named metafile (e.g. a fresh file system that has never
// completed a CP).
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blocks, name)
}

// Stats reports lifetime I/O to the store.
func (s *Store) Stats() (reads, writes uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads, s.writes
}
