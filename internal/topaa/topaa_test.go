package topaa

import (
	"math/rand"
	"testing"

	"waflfs/internal/aa"
	"waflfs/internal/block"
	"waflfs/internal/hbps"
	"waflfs/internal/heapcache"
)

func fullCache(n int, seed int64) *heapcache.Cache {
	rng := rand.New(rand.NewSource(seed))
	scores := make([]uint64, n)
	for i := range scores {
		scores[i] = uint64(rng.Intn(57345))
	}
	return heapcache.NewFromScores(scores)
}

func TestRAIDAwareRoundTrip(t *testing.T) {
	c := fullCache(10000, 1)
	top := c.TopK(RAIDAwareEntries)
	buf := MarshalRAIDAware(top)
	if len(buf) != block.BlockSize {
		t.Fatalf("block size = %d", len(buf))
	}
	got, err := LoadRAIDAware(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != RAIDAwareEntries {
		t.Fatalf("entries = %d", len(got))
	}
	for i := range top {
		if got[i] != top[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], top[i])
		}
	}
}

func TestRAIDAwarePartialBlock(t *testing.T) {
	// Fewer AAs than 512: block is partially filled.
	c := fullCache(17, 2)
	buf := MarshalRAIDAware(c.TopK(RAIDAwareEntries))
	got, err := LoadRAIDAware(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 17 {
		t.Fatalf("entries = %d", len(got))
	}
	// Empty marshal loads as empty.
	got, err = LoadRAIDAware(MarshalRAIDAware(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: %v %v", got, err)
	}
}

func TestRAIDAwareOverlongTruncates(t *testing.T) {
	entries := make([]heapcache.Entry, 600)
	for i := range entries {
		entries[i] = heapcache.Entry{ID: aa.ID(i), Score: uint64(1000 - i)}
	}
	got, err := LoadRAIDAware(MarshalRAIDAware(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != RAIDAwareEntries {
		t.Fatalf("entries = %d", len(got))
	}
}

func TestRAIDAwareLoadRejectsCorruption(t *testing.T) {
	c := fullCache(10000, 3)
	good := MarshalRAIDAware(c.TopK(RAIDAwareEntries))

	// Wrong size.
	if _, err := LoadRAIDAware(good[:100]); err == nil {
		t.Error("short block accepted")
	}
	// Ascending scores (corrupt order).
	bad := append([]byte(nil), good...)
	copy(bad[4:8], []byte{0, 0, 0, 0}) // first score -> 0, below second
	if _, err := LoadRAIDAware(bad); err == nil {
		t.Error("non-descending scores accepted")
	}
	// Duplicate IDs.
	bad = append([]byte(nil), good...)
	copy(bad[8:12], bad[0:4])
	if _, err := LoadRAIDAware(bad); err == nil {
		t.Error("duplicate id accepted")
	}
	// Entry after terminator.
	short := MarshalRAIDAware(c.TopK(5))
	bad = append([]byte(nil), short...)
	copy(bad[8*7:8*7+8], good[:8]) // resurrect slot 7 after slot 5 ended
	if _, err := LoadRAIDAware(bad); err == nil {
		t.Error("entry after terminator accepted")
	}
}

func TestStoreRAIDAware(t *testing.T) {
	s := NewStore()
	c := fullCache(5000, 4)
	if s.Has("rg0") {
		t.Fatal("fresh store has rg0")
	}
	s.SaveRAIDAware("rg0", c)
	if !s.Has("rg0") {
		t.Fatal("save did not persist")
	}
	seed, err := s.LoadRAIDAware("rg0")
	if err != nil {
		t.Fatal(err)
	}
	if len(seed) != RAIDAwareEntries {
		t.Fatalf("seed = %d", len(seed))
	}
	best, _ := c.Best()
	if seed[0].ID != best.ID || seed[0].Score != best.Score {
		t.Fatalf("seed[0] = %+v, cache best %+v", seed[0], best)
	}
	r, w := s.Stats()
	if r != 1 || w != 1 {
		t.Fatalf("stats = %d,%d", r, w)
	}
	if _, err := s.LoadRAIDAware("missing"); err == nil {
		t.Fatal("missing metafile loaded")
	}
}

func TestStoreAgnostic(t *testing.T) {
	s := NewStore()
	h := hbps.New(hbps.DefaultConfig())
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		h.Track(aa.ID(i), uint32(rng.Intn(32769)))
	}
	s.SaveAgnostic("vol1", h)
	got, err := s.LoadAgnostic("vol1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() != h.Total() || got.ListLen() != h.ListLen() {
		t.Fatal("agnostic round trip mismatch")
	}
	// Two blocks written (histogram + list), two read.
	r, w := s.Stats()
	if w != 2 || r != 2 {
		t.Fatalf("stats = %d,%d", r, w)
	}
}

func TestStoreCorruptionFallback(t *testing.T) {
	s := NewStore()
	h := hbps.New(hbps.DefaultConfig())
	for i := 0; i < 100; i++ {
		h.Track(aa.ID(i), 32768)
	}
	s.SaveAgnostic("vol1", h)
	if err := s.Corrupt("vol1", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadAgnostic("vol1"); err == nil {
		t.Fatal("corrupt HBPS pages loaded without error")
	}
	// RAID-aware corruption likewise surfaces as an error, not a panic.
	c := fullCache(1000, 6)
	s.SaveRAIDAware("rg0", c)
	// Flip a score byte high in the list to break descending order.
	if err := s.Corrupt("rg0", 8*100+4+3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadRAIDAware("rg0"); err == nil {
		t.Fatal("corrupt RAID-aware block loaded without error")
	}
	if err := s.Corrupt("missing", 0); err == nil {
		t.Fatal("corrupting missing metafile succeeded")
	}
}

func TestStoreDrop(t *testing.T) {
	s := NewStore()
	s.SaveRAIDAware("rg0", fullCache(10, 7))
	s.Drop("rg0")
	if s.Has("rg0") {
		t.Fatal("drop did not remove")
	}
}

// Seeding workflow: a heap seeded from the TopAA block serves Best() with
// exactly the pre-crash best AAs while the rest are inserted in background.
func TestSeedThenBackgroundFill(t *testing.T) {
	full := fullCache(100000, 8)
	s := NewStore()
	s.SaveRAIDAware("rg0", full)

	seedEntries, err := s.LoadRAIDAware("rg0")
	if err != nil {
		t.Fatal(err)
	}
	seeded := heapcache.New(100000)
	for _, e := range seedEntries {
		seeded.Insert(e.ID, e.Score)
	}
	fullBest, _ := full.Best()
	seedBest, _ := seeded.Best()
	if fullBest.Score != seedBest.Score {
		t.Fatalf("seeded best %d != full best %d", seedBest.Score, fullBest.Score)
	}
	// Background fill: insert everything else; heap converges to the full
	// cache's content.
	for id := 0; id < 100000; id++ {
		if !seeded.Tracked(aa.ID(id)) {
			seeded.Insert(aa.ID(id), full.Score(aa.ID(id)))
		}
	}
	if seeded.Len() != full.Len() {
		t.Fatalf("len %d != %d", seeded.Len(), full.Len())
	}
	if err := seeded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
