package topaa

import (
	"errors"
	"math/rand"
	"testing"

	"waflfs/internal/aa"
	"waflfs/internal/block"
	"waflfs/internal/faultinject"
	"waflfs/internal/hbps"
	"waflfs/internal/heapcache"
)

func fullCache(n int, seed int64) *heapcache.Cache {
	rng := rand.New(rand.NewSource(seed))
	scores := make([]uint64, n)
	for i := range scores {
		scores[i] = uint64(rng.Intn(57345))
	}
	return heapcache.NewFromScores(scores)
}

func mustMarshal(t *testing.T, entries []heapcache.Entry) []byte {
	t.Helper()
	buf, err := MarshalRAIDAware(entries)
	if err != nil {
		t.Fatalf("MarshalRAIDAware: %v", err)
	}
	return buf
}

func TestRAIDAwareRoundTrip(t *testing.T) {
	c := fullCache(10000, 1)
	top := c.TopK(RAIDAwareEntries)
	buf := mustMarshal(t, top)
	if len(buf) != block.BlockSize {
		t.Fatalf("block size = %d", len(buf))
	}
	got, err := LoadRAIDAware(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != RAIDAwareEntries {
		t.Fatalf("entries = %d", len(got))
	}
	for i := range top {
		if got[i] != top[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], top[i])
		}
	}
}

func TestRAIDAwarePartialBlock(t *testing.T) {
	// Fewer AAs than 512: block is partially filled.
	c := fullCache(17, 2)
	buf := mustMarshal(t, c.TopK(RAIDAwareEntries))
	got, err := LoadRAIDAware(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 17 {
		t.Fatalf("entries = %d", len(got))
	}
	// Empty marshal loads as empty.
	got, err = LoadRAIDAware(mustMarshal(t, nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: %v %v", got, err)
	}
}

func TestRAIDAwareOverlongTruncates(t *testing.T) {
	entries := make([]heapcache.Entry, 600)
	for i := range entries {
		entries[i] = heapcache.Entry{ID: aa.ID(i), Score: uint64(1000 - i)}
	}
	got, err := LoadRAIDAware(mustMarshal(t, entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != RAIDAwareEntries {
		t.Fatalf("entries = %d", len(got))
	}
}

// MarshalRAIDAware must reject entries that do not fit the 32-bit on-disk
// fields instead of panicking — a large-AA config must degrade, not crash
// the CP.
func TestRAIDAwareMarshalUnencodable(t *testing.T) {
	if _, err := MarshalRAIDAware([]heapcache.Entry{{ID: 0, Score: 1 << 33}}); err == nil {
		t.Error("oversized score accepted")
	}
	if _, err := MarshalRAIDAware([]heapcache.Entry{{ID: aa.ID(^uint32(0)), Score: 1}}); err == nil {
		t.Error("invalid-sentinel ID accepted")
	}
}

func TestRAIDAwareLoadRejectsCorruption(t *testing.T) {
	c := fullCache(10000, 3)
	good := mustMarshal(t, c.TopK(RAIDAwareEntries))

	// Wrong size.
	if _, err := LoadRAIDAware(good[:100]); err == nil {
		t.Error("short block accepted")
	}
	// Ascending scores (corrupt order).
	bad := append([]byte(nil), good...)
	copy(bad[4:8], []byte{0, 0, 0, 0}) // first score -> 0, below second
	if _, err := LoadRAIDAware(bad); err == nil {
		t.Error("non-descending scores accepted")
	}
	// Duplicate IDs.
	bad = append([]byte(nil), good...)
	copy(bad[8:12], bad[0:4])
	if _, err := LoadRAIDAware(bad); err == nil {
		t.Error("duplicate id accepted")
	}
	// Entry after terminator.
	short := mustMarshal(t, c.TopK(5))
	bad = append([]byte(nil), short...)
	copy(bad[8*7:8*7+8], good[:8]) // resurrect slot 7 after slot 5 ended
	if _, err := LoadRAIDAware(bad); err == nil {
		t.Error("entry after terminator accepted")
	}
}

func TestStoreRAIDAware(t *testing.T) {
	s := NewStore()
	c := fullCache(5000, 4)
	if s.Has("rg0") {
		t.Fatal("fresh store has rg0")
	}
	if err := s.SaveRAIDAware("rg0", c); err != nil {
		t.Fatal(err)
	}
	if !s.Has("rg0") {
		t.Fatal("save did not persist")
	}
	seed, outcome, err := s.LoadRAIDAware("rg0")
	if err != nil {
		t.Fatal(err)
	}
	if outcome != LoadClean {
		t.Fatalf("outcome = %v", outcome)
	}
	if len(seed) != RAIDAwareEntries {
		t.Fatalf("seed = %d", len(seed))
	}
	best, _ := c.Best()
	if seed[0].ID != best.ID || seed[0].Score != best.Score {
		t.Fatalf("seed[0] = %+v, cache best %+v", seed[0], best)
	}
	r, w := s.Stats()
	if r != 1 || w != 1 {
		t.Fatalf("stats = %d,%d", r, w)
	}
	if _, _, err := s.LoadRAIDAware("missing"); !errors.Is(err, ErrMissing) {
		t.Fatalf("missing metafile: %v", err)
	}
}

// The probe that discovers a missing metafile is a real I/O; the Fig. 10
// mount accounting must charge it.
func TestStoreChargesFailedProbes(t *testing.T) {
	s := NewStore()
	if _, _, err := s.LoadRAIDAware("nope"); !errors.Is(err, ErrMissing) {
		t.Fatalf("want ErrMissing, got %v", err)
	}
	if r, _ := s.Stats(); r != 1 {
		t.Fatalf("failed RAID-aware probe charged %d reads, want 1", r)
	}
	if _, _, err := s.LoadAgnostic("nope"); !errors.Is(err, ErrMissing) {
		t.Fatalf("want ErrMissing, got %v", err)
	}
	if r, _ := s.Stats(); r != 2 {
		t.Fatalf("failed agnostic probe charged %d total reads, want 2", r)
	}
}

func TestStoreAgnostic(t *testing.T) {
	s := NewStore()
	h := hbps.New(hbps.DefaultConfig())
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		h.Track(aa.ID(i), uint32(rng.Intn(32769)))
	}
	s.SaveAgnostic("vol1", h)
	got, outcome, err := s.LoadAgnostic("vol1")
	if err != nil {
		t.Fatal(err)
	}
	if outcome != LoadClean {
		t.Fatalf("outcome = %v", outcome)
	}
	if got.Total() != h.Total() || got.ListLen() != h.ListLen() {
		t.Fatal("agnostic round trip mismatch")
	}
	// Two blocks written (histogram + list), two read.
	r, w := s.Stats()
	if w != 2 || r != 2 {
		t.Fatalf("stats = %d,%d", r, w)
	}
}

func TestStoreCorruptionFallback(t *testing.T) {
	s := NewStore()
	h := hbps.New(hbps.DefaultConfig())
	for i := 0; i < 100; i++ {
		h.Track(aa.ID(i), 32768)
	}
	s.SaveAgnostic("vol1", h)
	if err := s.Corrupt("vol1", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadAgnostic("vol1"); !errors.Is(err, ErrDamaged) {
		t.Fatalf("corrupt HBPS pages: %v", err)
	}
	// RAID-aware corruption likewise surfaces as an error, not a panic.
	c := fullCache(1000, 6)
	if err := s.SaveRAIDAware("rg0", c); err != nil {
		t.Fatal(err)
	}
	// Flip a score byte high in the list to break descending order.
	if err := s.Corrupt("rg0", 8*100+4+3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadRAIDAware("rg0"); !errors.Is(err, ErrDamaged) {
		t.Fatalf("corrupt RAID-aware block: %v", err)
	}
	if err := s.Corrupt("missing", 0); err == nil {
		t.Fatal("corrupting missing metafile succeeded")
	}
	rec := s.Recovery()
	if rec.DamagedLoads != 2 {
		t.Fatalf("DamagedLoads = %d, want 2", rec.DamagedLoads)
	}
}

// Corrupt must reject out-of-range offsets with an error, not an
// index-out-of-range panic.
func TestStoreCorruptValidatesOffset(t *testing.T) {
	s := NewStore()
	if err := s.SaveRAIDAware("rg0", fullCache(100, 9)); err != nil {
		t.Fatal(err)
	}
	if err := s.Corrupt("rg0", -1); err == nil {
		t.Error("negative offset accepted")
	}
	if err := s.Corrupt("rg0", block.BlockSize); err == nil {
		t.Error("offset one past the end accepted")
	}
	if err := s.Corrupt("rg0", block.BlockSize-1); err != nil {
		t.Errorf("last valid offset rejected: %v", err)
	}
}

// A single rotted chunk is rebuilt from the XOR parity chunk and repaired
// in place; two rotted chunks in one block exceed what parity can rebuild.
func TestStoreReconstructsSingleChunk(t *testing.T) {
	s := NewStore()
	c := fullCache(5000, 10)
	if err := s.SaveRAIDAware("rg0", c); err != nil {
		t.Fatal(err)
	}
	if err := s.CorruptChunk("rg0", 0, 3); err != nil {
		t.Fatal(err)
	}
	seed, outcome, err := s.LoadRAIDAware("rg0")
	if err != nil {
		t.Fatal(err)
	}
	if outcome != LoadReconstructed {
		t.Fatalf("outcome = %v, want reconstructed", outcome)
	}
	best, _ := c.Best()
	if seed[0].ID != best.ID {
		t.Fatal("reconstructed seed does not match cache")
	}
	if rec := s.Recovery(); rec.Reconstructions != 1 {
		t.Fatalf("Reconstructions = %d", rec.Reconstructions)
	}
	// The repair was written back: the next load is clean.
	if _, outcome, err = s.LoadRAIDAware("rg0"); err != nil || outcome != LoadClean {
		t.Fatalf("post-repair load: %v, %v", outcome, err)
	}

	// Two bad chunks in the same block cannot be rebuilt.
	if err := s.CorruptChunk("rg0", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.CorruptChunk("rg0", 0, 5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadRAIDAware("rg0"); !errors.Is(err, ErrDamaged) {
		t.Fatalf("double rot: %v", err)
	}
}

// An unreadable chunk reconstructs like rot; losing the parity chunk too
// defeats reconstruction.
func TestStoreUnreadableChunks(t *testing.T) {
	s := NewStore()
	if err := s.SaveRAIDAware("rg0", fullCache(5000, 11)); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkChunkUnreadable("rg0", 0, 7); err != nil {
		t.Fatal(err)
	}
	if _, outcome, err := s.LoadRAIDAware("rg0"); err != nil || outcome != LoadReconstructed {
		t.Fatalf("unreadable chunk: %v, %v", outcome, err)
	}

	if err := s.MarkChunkUnreadable("rg0", 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkParityUnreadable("rg0", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadRAIDAware("rg0"); !errors.Is(err, ErrDamaged) {
		t.Fatalf("chunk+parity loss: %v", err)
	}

	// Damage-surface calls validate their coordinates.
	if err := s.CorruptChunk("rg0", 5, 0); err == nil {
		t.Error("out-of-range block accepted")
	}
	if err := s.CorruptChunk("rg0", 0, 99); err == nil {
		t.Error("out-of-range chunk accepted")
	}
	if err := s.MarkParityUnreadable("ghost", 0); err == nil {
		t.Error("missing metafile accepted")
	}
}

// A save issued by an older CP generation is detected as stale; a torn
// save (mixed generations) is detected as torn.
func TestStoreGenerations(t *testing.T) {
	s := NewStore()
	if err := s.SaveRAIDAware("rg0", fullCache(1000, 12)); err != nil {
		t.Fatal(err)
	}
	s.BeginGeneration()
	if _, _, err := s.LoadRAIDAware("rg0"); !errors.Is(err, ErrStale) {
		t.Fatalf("stale metafile: %v", err)
	}
	// Re-saving at the current generation clears the staleness.
	if err := s.SaveRAIDAware("rg0", fullCache(1000, 12)); err != nil {
		t.Fatal(err)
	}
	if _, outcome, err := s.LoadRAIDAware("rg0"); err != nil || outcome != LoadClean {
		t.Fatalf("re-saved: %v, %v", outcome, err)
	}
	rec := s.Recovery()
	if rec.StaleLoads != 1 {
		t.Fatalf("StaleLoads = %d", rec.StaleLoads)
	}
}

// A torn save lands only its first chunks; the load detects the mixed
// generations and rejects the metafile.
func TestStoreTornWrite(t *testing.T) {
	s := NewStore()
	inj := faultinject.New(faultinject.Plan{
		Seed: 1, CrashPhase: faultinject.PhaseTopAAGroups, CrashCP: 1, Fault: faultinject.FaultTorn,
	})
	s.SetInjector(inj)
	inj.BeginCP()

	// Pre-crash: saves land whole.
	s.BeginGeneration()
	if err := s.SaveRAIDAware("rg0", fullCache(1000, 13)); err != nil {
		t.Fatal(err)
	}
	if _, outcome, err := s.LoadRAIDAware("rg0"); err != nil || outcome != LoadClean {
		t.Fatalf("pre-crash: %v, %v", outcome, err)
	}

	// Crash, then the next CP's save tears.
	inj.EnterPhase(faultinject.PhaseTopAAGroups)
	s.BeginGeneration()
	if err := s.SaveRAIDAware("rg0", fullCache(1000, 14)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadRAIDAware("rg0"); !errors.Is(err, ErrTorn) {
		t.Fatalf("torn save: %v", err)
	}
	// Subsequent saves are dropped entirely: the old image stays, stale.
	if err := s.SaveRAIDAware("rg1", fullCache(1000, 15)); err != nil {
		t.Fatal(err)
	}
	if s.Has("rg1") {
		t.Fatal("dropped save persisted")
	}
	if rec := s.Recovery(); rec.TornLoads != 1 {
		t.Fatalf("TornLoads = %d", rec.TornLoads)
	}
}

func TestStoreKeys(t *testing.T) {
	s := NewStore()
	for _, k := range []string{"vb", "rg1", "rg0"} {
		if err := s.SaveRAIDAware(k, fullCache(10, 16)); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "rg0" || keys[1] != "rg1" || keys[2] != "vb" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestStoreDrop(t *testing.T) {
	s := NewStore()
	if err := s.SaveRAIDAware("rg0", fullCache(10, 7)); err != nil {
		t.Fatal(err)
	}
	s.Drop("rg0")
	if s.Has("rg0") {
		t.Fatal("drop did not remove")
	}
}

// Seeding workflow: a heap seeded from the TopAA block serves Best() with
// exactly the pre-crash best AAs while the rest are inserted in background.
func TestSeedThenBackgroundFill(t *testing.T) {
	full := fullCache(100000, 8)
	s := NewStore()
	if err := s.SaveRAIDAware("rg0", full); err != nil {
		t.Fatal(err)
	}

	seedEntries, _, err := s.LoadRAIDAware("rg0")
	if err != nil {
		t.Fatal(err)
	}
	seeded := heapcache.New(100000)
	for _, e := range seedEntries {
		seeded.Insert(e.ID, e.Score)
	}
	fullBest, _ := full.Best()
	seedBest, _ := seeded.Best()
	if fullBest.Score != seedBest.Score {
		t.Fatalf("seeded best %d != full best %d", seedBest.Score, fullBest.Score)
	}
	// Background fill: insert everything else; heap converges to the full
	// cache's content.
	for id := 0; id < 100000; id++ {
		if !seeded.Tracked(aa.ID(id)) {
			seeded.Insert(aa.ID(id), full.Score(aa.ID(id)))
		}
	}
	if seeded.Len() != full.Len() {
		t.Fatalf("len %d != %d", seeded.Len(), full.Len())
	}
	if err := seeded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
