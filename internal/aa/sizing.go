package aa

import "waflfs/internal/block"

// Media identifies the storage media beneath a RAID group for AA sizing
// (§3.2). RAID-agnostic spaces (FlexVols, object stores) always use
// RAIDAgnosticBlocks and do not consult this.
type Media int

// Media types with distinct AA-sizing rules.
const (
	// MediaHDD is a conventional (non-shingled) hard drive.
	MediaHDD Media = iota
	// MediaSSD is a flash drive with an FTL.
	MediaSSD
	// MediaSMR is a drive-managed shingled magnetic recording drive.
	MediaSMR
)

// String implements fmt.Stringer.
func (m Media) String() string {
	switch m {
	case MediaHDD:
		return "HDD"
	case MediaSSD:
		return "SSD"
	case MediaSMR:
		return "SMR"
	}
	return "unknown"
}

// SizingParams carries the device attributes AA sizing depends on.
type SizingParams struct {
	Media Media
	// EraseBlockBlocks is the SSD erase-unit size in 4KiB blocks (the
	// effective unit may be a multi-die superblock, much larger than a
	// single NAND erase block).
	EraseBlockBlocks uint64
	// ZoneBlocks is the SMR shingle-zone size in 4KiB blocks.
	ZoneBlocks uint64
	// AZCS is true when the device uses advanced zone checksums, in which
	// case the AA size is aligned to a multiple of the AZCS region size so
	// that checksum blocks are written sequentially (§3.2.4, Fig. 4 C).
	// Because AA sizes count data blocks while AZCS regions occupy 64
	// on-disk blocks for 63 data blocks, alignment means a multiple of 63
	// data blocks: that way every AA's on-disk span starts and ends on a
	// region boundary.
	AZCS bool
}

// StripesPerAA returns the AA size, in stripes, for a RAID group with the
// given device attributes. Because an AA of k stripes is a k-block
// contiguous run on each data device, the per-device run length is what the
// sizing rules constrain:
//
//   - HDD: the historical default of 4k stripes (§3.2.1).
//   - SSD: several erase blocks, so that picking the emptiest AA and
//     writing it fully consumes whole erase units and minimizes FTL
//     relocation (§3.2.2, Fig. 4 B). We use 4 erase units.
//   - SMR: much larger than the shingle zone, so AA switches rarely land
//     mid-zone (§3.2.3); we use 2 zones, optionally rounded up to a
//     multiple of the AZCS region size (§3.2.4, Fig. 4 C).
func StripesPerAA(p SizingParams) uint64 {
	switch p.Media {
	case MediaSSD:
		if p.EraseBlockBlocks == 0 {
			return DefaultHDDStripes
		}
		n := 4 * p.EraseBlockBlocks
		if p.AZCS {
			n = roundUpMultiple(n, block.AZCSRegionDataBlocks)
		}
		return n
	case MediaSMR:
		if p.ZoneBlocks == 0 {
			return DefaultHDDStripes
		}
		n := 2 * p.ZoneBlocks
		if p.AZCS {
			n = roundUpMultiple(n, block.AZCSRegionDataBlocks)
		}
		return n
	default:
		n := uint64(DefaultHDDStripes)
		if p.AZCS {
			n = roundUpMultiple(n, block.AZCSRegionDataBlocks)
		}
		return n
	}
}

func roundUpMultiple(n, m uint64) uint64 {
	if m == 0 {
		return n
	}
	return (n + m - 1) / m * m
}
