// Package aa defines allocation areas (AAs): the fixed-size regions of a
// block-number space whose free space WAFL tracks to guide the write
// allocator (§3.1 of the paper).
//
// Two topologies exist:
//
//   - RAID-aware: for storage arranged into a RAID group, an AA is a set of
//     consecutive stripes, i.e. one contiguous DBN run on every data device
//     (Figs. 2 and 3). Writing an entire AA yields full stripe writes and
//     long per-device write chains.
//
//   - RAID-agnostic: for FlexVol virtual VBN spaces and storage with native
//     redundancy (object stores), an AA is simply a run of consecutive VBNs.
//     The default size of 32k blocks matches one 4KiB bitmap-metafile block,
//     so consuming one AA dirties a single metafile block (§3.2.1).
//
// An AA's score is its number of free blocks, computed from the bitmap
// metafiles; package aa provides the scoring helpers shared by both AA
// cache implementations.
package aa

import (
	"fmt"

	"waflfs/internal/bitmap"
	"waflfs/internal/block"
	"waflfs/internal/raid"
)

// ID names an allocation area within one VBN space, in ascending VBN order.
type ID uint32

// RAIDAgnosticBlocks is the default RAID-agnostic AA size: 32k consecutive
// VBNs, matching the alignment of bitmap metafiles (§3.2.1). It is also the
// best possible AA score for such spaces.
const RAIDAgnosticBlocks = block.BitsPerBitmapBlock

// DefaultHDDStripes is the historical default AA size for HDD RAID groups:
// 4k stripes (§3.2.1, Fig. 3).
const DefaultHDDStripes = 4096

// Topology describes how a VBN space is carved into allocation areas.
type Topology interface {
	// NumAAs returns the number of allocation areas in the space.
	NumAAs() int
	// AAOf returns the AA containing VBN v; v must lie in Space().
	AAOf(v block.VBN) ID
	// Segments returns the VBN ranges composing AA id, in ascending order.
	// A RAID-agnostic AA has one segment; a RAID-aware AA has one segment
	// per data device.
	Segments(id ID) []block.Range
	// BlocksPerAA returns the number of blocks in a (non-truncated) AA —
	// the maximum possible score.
	BlocksPerAA() uint64
	// Space returns the full VBN range covered by the topology.
	Space() block.Range
}

// Score computes the AA score — the number of free blocks in the AA — by
// consulting the bitmap (§3.3).
func Score(t Topology, bm *bitmap.Bitmap, id ID) uint64 {
	var s uint64
	for _, seg := range t.Segments(id) {
		s += bm.CountFree(seg)
	}
	return s
}

// Capacity returns the true block capacity of AA id — the sum of its
// segment lengths, which is smaller than BlocksPerAA() for a truncated
// final AA. Free-fraction analytics divide scores by this, not by the
// nominal AA size.
func Capacity(t Topology, id ID) uint64 {
	var n uint64
	for _, seg := range t.Segments(id) {
		n += seg.Len()
	}
	return n
}

// ScoreAll computes the score of every AA in the topology, charging the
// bitmap scan; this is the linear walk a cache rebuild performs when no
// TopAA metafile is available (§3.4).
func ScoreAll(t Topology, bm *bitmap.Bitmap) []uint64 {
	scores := make([]uint64, t.NumAAs())
	for id := 0; id < t.NumAAs(); id++ {
		for _, seg := range t.Segments(ID(id)) {
			bm.ChargeScan(seg)
			scores[id] += bm.CountFree(seg)
		}
	}
	return scores
}

// Linear is the RAID-agnostic topology: consecutive runs of BlocksPer VBNs
// over a flat space. The final AA may be truncated if the space size is not
// a multiple of BlocksPer.
type Linear struct {
	space     block.Range
	blocksPer uint64
}

// NewLinear builds a RAID-agnostic topology over space with the given AA
// size in blocks.
func NewLinear(space block.Range, blocksPer uint64) *Linear {
	if blocksPer == 0 {
		panic("aa: zero AA size")
	}
	if space.Len() == 0 {
		panic("aa: empty space")
	}
	return &Linear{space: space, blocksPer: blocksPer}
}

// NewLinearDefault builds a RAID-agnostic topology with the default 32k-block
// AA size.
func NewLinearDefault(space block.Range) *Linear {
	return NewLinear(space, RAIDAgnosticBlocks)
}

// NumAAs implements Topology.
func (l *Linear) NumAAs() int {
	return int((l.space.Len() + l.blocksPer - 1) / l.blocksPer)
}

// AAOf implements Topology.
func (l *Linear) AAOf(v block.VBN) ID {
	if !l.space.Contains(v) {
		panic(fmt.Sprintf("aa: VBN %v outside space %v", v, l.space))
	}
	return ID(uint64(v-l.space.Start) / l.blocksPer)
}

// Segments implements Topology.
func (l *Linear) Segments(id ID) []block.Range {
	if int(id) >= l.NumAAs() {
		panic(fmt.Sprintf("aa: AA %d outside topology (%d AAs)", id, l.NumAAs()))
	}
	start := l.space.Start + block.VBN(uint64(id)*l.blocksPer)
	end := start + block.VBN(l.blocksPer)
	if end > l.space.End {
		end = l.space.End
	}
	return []block.Range{block.R(start, end)}
}

// BlocksPerAA implements Topology.
func (l *Linear) BlocksPerAA() uint64 { return l.blocksPer }

// Space implements Topology.
func (l *Linear) Space() block.Range { return l.space }

// Striped is the RAID-aware topology: each AA is StripesPer consecutive
// stripes of a RAID group, i.e. one contiguous segment per data device
// (Fig. 3). The final AA may cover fewer stripes.
type Striped struct {
	geo        raid.Geometry
	stripesPer uint64
}

// NewStriped builds a RAID-aware topology over geometry geo with the given
// AA size in stripes.
func NewStriped(geo raid.Geometry, stripesPer uint64) *Striped {
	if stripesPer == 0 {
		panic("aa: zero AA stripe count")
	}
	if err := geo.Validate(); err != nil {
		panic(err)
	}
	return &Striped{geo: geo, stripesPer: stripesPer}
}

// Geometry returns the underlying RAID geometry.
func (s *Striped) Geometry() raid.Geometry { return s.geo }

// StripesPerAA returns the AA size in stripes.
func (s *Striped) StripesPerAA() uint64 { return s.stripesPer }

// NumAAs implements Topology.
func (s *Striped) NumAAs() int {
	return int((s.geo.Stripes() + s.stripesPer - 1) / s.stripesPer)
}

// AAOf implements Topology.
func (s *Striped) AAOf(v block.VBN) ID {
	return ID(s.geo.StripeOf(v) / s.stripesPer)
}

// StripeRange returns the half-open stripe interval of AA id.
func (s *Striped) StripeRange(id ID) (from, to uint64) {
	if int(id) >= s.NumAAs() {
		panic(fmt.Sprintf("aa: AA %d outside topology (%d AAs)", id, s.NumAAs()))
	}
	from = uint64(id) * s.stripesPer
	to = from + s.stripesPer
	if to > s.geo.Stripes() {
		to = s.geo.Stripes()
	}
	return from, to
}

// Segments implements Topology.
func (s *Striped) Segments(id ID) []block.Range {
	from, to := s.StripeRange(id)
	out := make([]block.Range, s.geo.DataDevices)
	for d := 0; d < s.geo.DataDevices; d++ {
		out[d] = s.geo.DeviceSegment(d, from, to)
	}
	return out
}

// BlocksPerAA implements Topology.
func (s *Striped) BlocksPerAA() uint64 {
	return s.stripesPer * uint64(s.geo.DataDevices)
}

// Space implements Topology.
func (s *Striped) Space() block.Range { return s.geo.VBNRange() }

// Scores computes every AA's score without charging any metafile reads,
// sharding the popcount work across the deterministic work pool (one AA
// per item, results keyed by AA id). The bitmap must not be mutated
// concurrently; scores are pure reads of the bit words. Callers charge
// scan I/O themselves, so the accounting never depends on the shard count.
func Scores(t Topology, bm *bitmap.Bitmap, workers int) []uint64 {
	return ScoresObs(t, bm, workers, nil, nil)
}

// ScoreAllParallel computes every AA's score like ScoreAll, fanning the
// popcount work across the work pool. The metafile-scan charge covers the
// whole space exactly once — each bitmap page is read once no matter how
// many shards scan it — so mount-time I/O accounting is identical for
// every worker count, including 1. Rebuilding the caches of a large file
// system after a failover is exactly the bulk, embarrassingly parallel
// work a storage controller spreads across cores.
func ScoreAllParallel(t Topology, bm *bitmap.Bitmap, workers int) []uint64 {
	bm.ChargeScan(t.Space())
	return Scores(t, bm, workers)
}
