package aa

import (
	"waflfs/internal/bitmap"
	"waflfs/internal/obs"
	"waflfs/internal/parallel"
)

// ScoresObs is Scores with observability: po records the fan-out in the
// caller's work-pool instruments and scored ticks once per AA scored. Both
// may be nil (the instruments are nil-safe), so Scores simply delegates
// here. The recording happens outside the sharded loop, so it is identical
// for every worker count.
func ScoresObs(t Topology, bm *bitmap.Bitmap, workers int, po *parallel.Obs, scored *obs.Counter) []uint64 {
	scores := make([]uint64, t.NumAAs())
	parallel.ForEachObs(workers, len(scores), po, func(id int) {
		var s uint64
		for _, seg := range t.Segments(ID(id)) {
			s += bm.CountFree(seg)
		}
		scores[id] = s
	})
	scored.Add(uint64(len(scores)))
	return scores
}

// ScoreAllParallelObs is ScoreAllParallel with the same observability hooks
// as ScoresObs.
func ScoreAllParallelObs(t Topology, bm *bitmap.Bitmap, workers int, po *parallel.Obs, scored *obs.Counter) []uint64 {
	bm.ChargeScan(t.Space())
	return ScoresObs(t, bm, workers, po, scored)
}
