package aa

import (
	"testing"
	"testing/quick"

	"waflfs/internal/bitmap"
	"waflfs/internal/block"
	"waflfs/internal/raid"
)

func TestLinearTopology(t *testing.T) {
	space := block.R(1000, 1000+10*RAIDAgnosticBlocks)
	l := NewLinearDefault(space)
	if l.NumAAs() != 10 {
		t.Fatalf("NumAAs = %d", l.NumAAs())
	}
	if l.BlocksPerAA() != RAIDAgnosticBlocks {
		t.Fatalf("BlocksPerAA = %d", l.BlocksPerAA())
	}
	if l.AAOf(1000) != 0 || l.AAOf(1000+RAIDAgnosticBlocks) != 1 {
		t.Fatal("AAOf boundaries wrong")
	}
	segs := l.Segments(3)
	if len(segs) != 1 {
		t.Fatalf("linear AA has %d segments", len(segs))
	}
	if segs[0].Len() != RAIDAgnosticBlocks {
		t.Fatalf("segment len = %d", segs[0].Len())
	}
	if segs[0].Start != 1000+3*RAIDAgnosticBlocks {
		t.Fatalf("segment start = %v", segs[0].Start)
	}
}

func TestLinearTruncatedTail(t *testing.T) {
	l := NewLinear(block.R(0, 100), 40)
	if l.NumAAs() != 3 {
		t.Fatalf("NumAAs = %d", l.NumAAs())
	}
	segs := l.Segments(2)
	if segs[0].Len() != 20 {
		t.Fatalf("tail segment len = %d", segs[0].Len())
	}
	if l.AAOf(99) != 2 {
		t.Fatalf("AAOf(99) = %d", l.AAOf(99))
	}
}

func TestLinearPanics(t *testing.T) {
	l := NewLinear(block.R(0, 100), 40)
	for name, f := range map[string]func(){
		"AAOf outside":     func() { l.AAOf(100) },
		"Segments outside": func() { l.Segments(3) },
		"zero size":        func() { NewLinear(block.R(0, 10), 0) },
		"empty space":      func() { NewLinear(block.R(5, 5), 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func stripedFixture() (*Striped, raid.Geometry) {
	geo := raid.Geometry{DataDevices: 3, ParityDevices: 1, BlocksPerDevice: 1 << 14, StartVBN: 500}
	return NewStriped(geo, 1024), geo
}

func TestStripedTopology(t *testing.T) {
	s, geo := stripedFixture()
	if s.NumAAs() != 16 {
		t.Fatalf("NumAAs = %d", s.NumAAs())
	}
	if s.BlocksPerAA() != 3*1024 {
		t.Fatalf("BlocksPerAA = %d", s.BlocksPerAA())
	}
	segs := s.Segments(1)
	if len(segs) != geo.DataDevices {
		t.Fatalf("segments = %d", len(segs))
	}
	for d, seg := range segs {
		if seg.Len() != 1024 {
			t.Fatalf("segment %d len = %d", d, seg.Len())
		}
		dd, dbn := geo.Locate(seg.Start)
		if dd != d || dbn != 1024 {
			t.Fatalf("segment %d starts at (%d,%d)", d, dd, dbn)
		}
	}
	// Every VBN of a stripe belongs to the same AA.
	for _, v := range geo.StripeVBNs(2048) {
		if s.AAOf(v) != 2 {
			t.Errorf("AAOf(%v) = %d, want 2", v, s.AAOf(v))
		}
	}
}

// Property: AAOf is consistent with Segments — every VBN in an AA's
// segments maps back to that AA, and segment lengths sum to BlocksPerAA.
func TestStripedSegmentsConsistent(t *testing.T) {
	s, _ := stripedFixture()
	for id := 0; id < s.NumAAs(); id++ {
		var total uint64
		for _, seg := range s.Segments(ID(id)) {
			total += seg.Len()
			for _, v := range []block.VBN{seg.Start, seg.End - 1} {
				if got := s.AAOf(v); got != ID(id) {
					t.Fatalf("AAOf(%v) = %d, want %d", v, got, id)
				}
			}
		}
		if total != s.BlocksPerAA() {
			t.Fatalf("AA %d total blocks = %d", id, total)
		}
	}
}

func TestLinearAAOfSegmentsRoundTrip(t *testing.T) {
	l := NewLinearDefault(block.R(0, 50*RAIDAgnosticBlocks))
	f := func(raw uint32) bool {
		v := block.VBN(uint64(raw) % l.Space().Len())
		id := l.AAOf(v)
		return l.Segments(id)[0].Contains(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestScore(t *testing.T) {
	l := NewLinear(block.R(0, 1000), 100)
	bm := bitmap.New(1000)
	bm.SetRange(block.R(0, 30))    // AA 0 loses 30
	bm.SetRange(block.R(250, 300)) // AA 2 loses 50
	if got := Score(l, bm, 0); got != 70 {
		t.Fatalf("Score(0) = %d", got)
	}
	if got := Score(l, bm, 1); got != 100 {
		t.Fatalf("Score(1) = %d", got)
	}
	if got := Score(l, bm, 2); got != 50 {
		t.Fatalf("Score(2) = %d", got)
	}
}

func TestScoreStriped(t *testing.T) {
	s, geo := stripedFixture()
	bm := bitmap.New(uint64(geo.VBNRange().End))
	// Allocate all of stripe 0 (one block per device in AA 0).
	for _, v := range geo.StripeVBNs(0) {
		bm.Set(v)
	}
	if got := Score(s, bm, 0); got != s.BlocksPerAA()-3 {
		t.Fatalf("Score = %d, want %d", got, s.BlocksPerAA()-3)
	}
}

func TestScoreAllChargesScan(t *testing.T) {
	l := NewLinearDefault(block.R(0, 4*RAIDAgnosticBlocks))
	bm := bitmap.New(4 * RAIDAgnosticBlocks)
	scores := ScoreAll(l, bm)
	if len(scores) != 4 {
		t.Fatalf("scores = %v", scores)
	}
	for _, s := range scores {
		if s != RAIDAgnosticBlocks {
			t.Fatalf("fresh AA score = %d", s)
		}
	}
	if bm.Stats().PageReads == 0 {
		t.Fatal("ScoreAll did not charge the bitmap walk")
	}
}

func TestSizing(t *testing.T) {
	if got := StripesPerAA(SizingParams{Media: MediaHDD}); got != DefaultHDDStripes {
		t.Fatalf("HDD stripes = %d", got)
	}
	// SSD: 4× erase unit.
	if got := StripesPerAA(SizingParams{Media: MediaSSD, EraseBlockBlocks: 2048}); got != 8192 {
		t.Fatalf("SSD stripes = %d", got)
	}
	// SSD without erase-block info falls back to HDD default.
	if got := StripesPerAA(SizingParams{Media: MediaSSD}); got != DefaultHDDStripes {
		t.Fatalf("SSD fallback = %d", got)
	}
	// SMR: 2× zone.
	if got := StripesPerAA(SizingParams{Media: MediaSMR, ZoneBlocks: 16384}); got != 32768 {
		t.Fatalf("SMR stripes = %d", got)
	}
	// SMR with AZCS: rounded up to a multiple of 63 data blocks, so the
	// on-disk AA span starts and ends on AZCS region boundaries.
	got := StripesPerAA(SizingParams{Media: MediaSMR, ZoneBlocks: 10000, AZCS: true})
	if got%block.AZCSRegionDataBlocks != 0 || got < 20000 {
		t.Fatalf("SMR+AZCS stripes = %d", got)
	}
	// HDD media with AZCS also aligns.
	got = StripesPerAA(SizingParams{Media: MediaHDD, AZCS: true})
	if got%block.AZCSRegionDataBlocks != 0 {
		t.Fatalf("HDD+AZCS stripes = %d", got)
	}
	for m, s := range map[Media]string{MediaHDD: "HDD", MediaSSD: "SSD", MediaSMR: "SMR", Media(9): "unknown"} {
		if m.String() != s {
			t.Errorf("Media(%d).String() = %q", m, m.String())
		}
	}
}

// ScoreAllParallel must agree exactly with the sequential walk.
func TestScoreAllParallelMatchesSequential(t *testing.T) {
	geo := raid.Geometry{DataDevices: 5, ParityDevices: 1, BlocksPerDevice: 1 << 15, StartVBN: 100}
	s := NewStriped(geo, 256)
	bm := bitmap.New(uint64(geo.VBNRange().End))
	// Pseudo-random allocation pattern.
	r := uint64(12345)
	for i := 0; i < 60000; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		bm.Set(geo.VBNRange().Start + block.VBN(r%geo.Blocks()))
	}
	want := ScoreAll(s, bm)
	for _, workers := range []int{1, 2, 4, 7} {
		got := ScoreAllParallel(s, bm, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: len %d", workers, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d AA %d: %d != %d", workers, i, got[i], want[i])
			}
		}
	}
	// Linear topology too.
	lt := NewLinearDefault(block.R(0, 8*RAIDAgnosticBlocks))
	lbm := bitmap.New(8 * RAIDAgnosticBlocks)
	lbm.SetRange(block.R(0, 40000))
	seq := ScoreAll(lt, lbm)
	par := ScoreAllParallel(lt, lbm, 4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("linear AA %d: %d != %d", i, seq[i], par[i])
		}
	}
}
