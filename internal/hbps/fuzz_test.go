package hbps

import (
	"testing"

	"waflfs/internal/aa"
)

// FuzzOperations drives the HBPS with an arbitrary operation tape against a
// naive model, asserting the structural invariants and histogram accuracy
// after every step. The seed corpus covers each opcode; `go test` runs the
// corpus, and `go test -fuzz FuzzOperations` explores further.
func FuzzOperations(f *testing.F) {
	f.Add([]byte{0, 10, 1, 5, 2, 0, 3, 0, 0, 63, 4})
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 3, 3, 3, 3, 3, 2, 1, 2, 2})
	f.Add([]byte{0, 63, 1, 62, 4, 0, 1, 2, 63})
	f.Fuzz(func(t *testing.T, tape []byte) {
		h := New(Config{MaxScore: 64, BinWidth: 8, ListCap: 6})
		model := map[aa.ID]uint32{}
		nextID := aa.ID(0)
		pos := 0
		next := func() byte {
			if pos >= len(tape) {
				return 0
			}
			b := tape[pos]
			pos++
			return b
		}
		for pos < len(tape) {
			switch next() % 5 {
			case 0: // track
				s := uint32(next()) % 65
				h.Track(nextID, s)
				model[nextID] = s
				nextID++
			case 1: // update the lowest tracked id
				for id := aa.ID(0); id < nextID; id++ {
					if old, ok := model[id]; ok {
						ns := uint32(next()) % 65
						h.Update(id, old, ns)
						model[id] = ns
						break
					}
				}
			case 2: // untrack the lowest tracked id
				for id := aa.ID(0); id < nextID; id++ {
					if old, ok := model[id]; ok {
						h.Untrack(id, old)
						delete(model, id)
						break
					}
				}
			case 3: // pop
				if id, ok := h.PopBest(); ok {
					if _, tracked := model[id]; !tracked {
						t.Fatalf("popped untracked id %d", id)
					}
				}
			case 4: // replenish
				h.Replenish(func(yield func(aa.ID, uint32)) {
					for id, s := range model {
						yield(id, s)
					}
				})
			}
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
			if h.Total() != uint64(len(model)) {
				t.Fatalf("total %d != model %d", h.Total(), len(model))
			}
		}
		// Histogram counts must match the model's census exactly.
		census := make([]uint32, h.NumBins())
		for _, s := range model {
			census[h.Bin(s)]++
		}
		for b := range census {
			if h.BinCount(b) != census[b] {
				t.Fatalf("bin %d: %d != %d", b, h.BinCount(b), census[b])
			}
		}
		// Serialization survives arbitrary states.
		got, err := Load(h.Marshal())
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if got.Total() != h.Total() || got.ListLen() != h.ListLen() {
			t.Fatal("round trip state mismatch")
		}
	})
}

// FuzzLoad asserts that arbitrary bytes never panic the page decoder: they
// either load cleanly or return an error (the mount fallback path).
func FuzzLoad(f *testing.F) {
	h := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		h.Track(aa.ID(i), uint32(i*327)%32769)
	}
	good := h.Marshal()
	f.Add(good)
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	f.Add(bad)
	f.Add(make([]byte, 2*PageSize))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(data)
		if err == nil {
			if err := got.CheckInvariants(); err != nil {
				t.Fatalf("accepted pages violate invariants: %v", err)
			}
		}
	})
}
