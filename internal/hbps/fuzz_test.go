package hbps

import (
	"testing"

	"waflfs/internal/aa"
)

// FuzzOperations drives the HBPS with an arbitrary operation tape against a
// naive model, asserting the structural invariants and histogram accuracy
// after every step. The seed corpus covers each opcode; `go test` runs the
// corpus, and `go test -fuzz FuzzOperations` explores further.
func FuzzOperations(f *testing.F) {
	f.Add([]byte{0, 10, 1, 5, 2, 0, 3, 0, 0, 63, 4})
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 3, 3, 3, 3, 3, 2, 1, 2, 2})
	f.Add([]byte{0, 63, 1, 62, 4, 0, 1, 2, 63})
	f.Fuzz(func(t *testing.T, tape []byte) {
		h := New(Config{MaxScore: 64, BinWidth: 8, ListCap: 6})
		model := map[aa.ID]uint32{}
		nextID := aa.ID(0)
		pos := 0
		next := func() byte {
			if pos >= len(tape) {
				return 0
			}
			b := tape[pos]
			pos++
			return b
		}
		for pos < len(tape) {
			switch next() % 5 {
			case 0: // track
				s := uint32(next()) % 65
				h.Track(nextID, s)
				model[nextID] = s
				nextID++
			case 1: // update the lowest tracked id
				for id := aa.ID(0); id < nextID; id++ {
					if old, ok := model[id]; ok {
						ns := uint32(next()) % 65
						h.Update(id, old, ns)
						model[id] = ns
						break
					}
				}
			case 2: // untrack the lowest tracked id
				for id := aa.ID(0); id < nextID; id++ {
					if old, ok := model[id]; ok {
						h.Untrack(id, old)
						delete(model, id)
						break
					}
				}
			case 3: // pop
				if id, ok := h.PopBest(); ok {
					if _, tracked := model[id]; !tracked {
						t.Fatalf("popped untracked id %d", id)
					}
				}
			case 4: // replenish
				h.Replenish(func(yield func(aa.ID, uint32)) {
					for id, s := range model {
						yield(id, s)
					}
				})
			}
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
			if h.Total() != uint64(len(model)) {
				t.Fatalf("total %d != model %d", h.Total(), len(model))
			}
		}
		// Histogram counts must match the model's census exactly.
		census := make([]uint32, h.NumBins())
		for _, s := range model {
			census[h.Bin(s)]++
		}
		for b := range census {
			if h.BinCount(b) != census[b] {
				t.Fatalf("bin %d: %d != %d", b, h.BinCount(b), census[b])
			}
		}
		// Serialization survives arbitrary states.
		got, err := Load(h.Marshal())
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if got.Total() != h.Total() || got.ListLen() != h.ListLen() {
			t.Fatal("round trip state mismatch")
		}
	})
}

// FuzzShardedOps drives an arbitrary op tape over an HBPS wrapped by a
// Sharded striper, covering the mutation paths the striped refill adds:
// PopBest↔Stage interleavings, re-listing of held IDs by bin-migrating
// updates, dup-skip on stage, and standby-batch swaps. A model of tracked
// scores keeps mutations well-formed (HBPS requires true old scores); the
// combined invariants are checked after every op.
func FuzzShardedOps(f *testing.F) {
	f.Add([]byte{0, 10, 0, 20, 0, 30, 4, 0, 4, 1, 1, 5, 5, 0, 3, 0})
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 3, 4, 0, 4, 1, 4, 2, 5, 2, 2, 1})
	f.Add([]byte{0, 63, 1, 62, 4, 0, 6, 0, 1, 2, 5, 1, 4, 2})
	f.Fuzz(func(t *testing.T, tape []byte) {
		const numIDs, shards, batch = 32, 3, 4
		h := New(Config{MaxScore: 64, BinWidth: 8, ListCap: 12})
		sh := NewSharded(h, shards, batch)
		model := map[aa.ID]uint32{}
		for i := 0; i+1 < len(tape); i += 2 {
			op, arg := tape[i]%7, tape[i+1]
			id := aa.ID(arg % numIDs)
			switch op {
			case 0: // track a new ID
				if _, ok := model[id]; ok {
					continue
				}
				s := uint32(arg) % 65
				h.Track(id, s)
				model[id] = s
			case 1: // update a tracked ID (held or not — the CP fold does both)
				old, ok := model[id]
				if !ok {
					continue
				}
				ns := (old + uint32(arg)*7) % 65
				h.Update(id, old, ns)
				model[id] = ns
			case 2: // untrack (never a held ID — the wafl layer never does)
				old, ok := model[id]
				if !ok || sh.Holds(id) {
					continue
				}
				h.Untrack(id, old)
				delete(model, id)
			case 3: // classic pop off the shared list
				if got, ok := h.PopBest(); ok {
					if _, tracked := model[got]; !tracked {
						t.Fatalf("popped untracked id %d", got)
					}
				}
			case 4: // shard-local pick, with a stall refill when dry
				shard := int(arg) % shards
				if _, ok := sh.Pop(shard); !ok {
					sh.Stage(shard, nil)
					if got, ok := sh.Pop(shard); ok {
						if _, tracked := model[got]; !tracked {
							t.Fatalf("shard pick of untracked id %d", got)
						}
					}
				}
			case 5: // pipelined refill
				shard := int(arg) % shards
				if sh.Low(shard) {
					sh.Stage(shard, nil)
				}
			case 6: // refill with a skip predicate (the cursor AA)
				shard := int(arg) % shards
				sh.Stage(shard, func(x aa.ID) bool { return x == id })
			}
			sh.CheckInvariants()
			if h.Total() != uint64(len(model)) {
				t.Fatalf("total %d != model %d", h.Total(), len(model))
			}
		}
		census := make([]uint32, h.NumBins())
		for _, s := range model {
			census[h.Bin(s)]++
		}
		for b := range census {
			if h.BinCount(b) != census[b] {
				t.Fatalf("bin %d: %d != %d", b, h.BinCount(b), census[b])
			}
		}
	})
}

// FuzzLoad asserts that arbitrary bytes never panic the page decoder: they
// either load cleanly or return an error (the mount fallback path).
func FuzzLoad(f *testing.F) {
	h := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		h.Track(aa.ID(i), uint32(i*327)%32769)
	}
	good := h.Marshal()
	f.Add(good)
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	f.Add(bad)
	f.Add(make([]byte, 2*PageSize))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(data)
		if err == nil {
			if err := got.CheckInvariants(); err != nil {
				t.Fatalf("accepted pages violate invariants: %v", err)
			}
		}
	})
}
