package hbps_test

import (
	"fmt"

	"waflfs/internal/aa"
	"waflfs/internal/hbps"
)

// Example shows the HBPS lifecycle the paper describes: track AAs, let the
// write allocator pop the best, batch score updates at the CP boundary, and
// persist the structure as exactly two 4KiB pages.
func Example() {
	h := hbps.New(hbps.DefaultConfig())

	// Track three AAs: an empty one, a half-full one, and a full one.
	h.Track(aa.ID(0), 32768)
	h.Track(aa.ID(1), 16000)
	h.Track(aa.ID(2), 0)

	// The write allocator always takes the first AA in the list — from the
	// best populated score range.
	best, _ := h.PopBest()
	fmt.Println("allocator picked AA", best)

	// Consuming it drops its score; the update is batched at the CP.
	h.Update(aa.ID(0), 32768, 4000)

	// Persistence: the histogram page plus the list page, verbatim.
	pages := h.Marshal()
	fmt.Println("serialized bytes:", len(pages))

	restored, err := hbps.Load(pages)
	if err != nil {
		panic(err)
	}
	next, _ := restored.PopBest()
	fmt.Println("after reload the best AA is", next)

	// Output:
	// allocator picked AA 0
	// serialized bytes: 8192
	// after reload the best AA is 1
}
