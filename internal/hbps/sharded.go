package hbps

import "waflfs/internal/aa"

// Sharded stripes an HBPS's partial-sorted list into per-shard pick queues
// so steady-state virtual-space picks touch only shard-local state. Each
// shard owns a bounded FIFO queue of AA IDs staged off the shared list in
// near-best batches, plus one standby batch a refill pipeline fills ahead
// of exhaustion: when the queue drains, the standby batch swaps in without
// touching the shared list on the pick path.
//
// Held IDs are popped off the shared list (PopBest keeps them
// histogram-tracked, exactly like a classic pick), so the HBPS histogram
// invariants are untouched. The CP-boundary fold may re-list a held ID via
// a bin migration; Stage skips already-held IDs so nothing is ever queued
// twice — the skip itself unlists the duplicate, which is the same
// consume-on-pop semantics a classic pick applies.
//
// The staged near-best window widens from one bin (the paper's §3.3.2
// bound for a single popper) to roughly shards×batch list positions; the
// queues are short and refilled from the best listed bins, so picks stay
// near-best in the same sense while becoming contention-free.
//
// Sharded is deterministic and, like HBPS, not safe for concurrent use:
// callers drive it from one goroutine with a fixed pick→shard assignment.
type Sharded struct {
	shared *HBPS
	shards int
	batch  int
	low    int

	queues [][]aa.ID
	staged [][]aa.ID
	held   map[aa.ID]bool

	// gen is the current CP generation; queueGen/stagedGen record the
	// generation each shard's batch was staged under. Pipelined CPs advance
	// gen at each seal so the watchdog can assert held batches never carry
	// a stamp ahead of the current generation.
	gen       uint64
	queueGen  []uint64
	stagedGen []uint64

	m ShardedMetrics
}

// ShardedMetrics counts shard-queue traffic since construction.
type ShardedMetrics struct {
	// LocalPops counts picks served from a shard queue.
	LocalPops uint64
	// Staged counts IDs moved shared→standby by Stage.
	Staged uint64
	// StageCalls counts Stage invocations.
	StageCalls uint64
	// Swaps counts standby batches swapped in when a queue drained.
	Swaps uint64
	// DupSkips counts already-held IDs Stage popped and discarded (the
	// CP fold re-listed them while a shard still held them).
	DupSkips uint64
	// Flushes counts IDs dropped back to the tracked-but-unlisted state by
	// FlushAll (a rebalance when one shard ran dry while others hoarded).
	Flushes uint64
}

// NewSharded wraps shared with n per-shard queues of at most batch IDs each
// and stages every shard's initial batch immediately. Construction-time
// staging is setup cost; callers charge only the staging they invoke.
func NewSharded(shared *HBPS, n, batch int) *Sharded {
	if n < 1 {
		n = 1
	}
	if batch < 1 {
		batch = 1
	}
	s := &Sharded{
		shared:    shared,
		shards:    n,
		batch:     batch,
		low:       batch / 2,
		queues:    make([][]aa.ID, n),
		staged:    make([][]aa.ID, n),
		held:      make(map[aa.ID]bool),
		queueGen:  make([]uint64, n),
		stagedGen: make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		for len(s.queues[i]) < batch {
			id, ok := s.popFresh(nil)
			if !ok {
				break
			}
			s.queues[i] = append(s.queues[i], id)
		}
	}
	return s
}

// popFresh pops the shared list until it yields an ID no shard holds,
// discarding (and counting) duplicates the CP fold re-listed. skip lets the
// caller exclude further IDs (e.g. the space's in-flight cursor AA).
func (s *Sharded) popFresh(skip func(aa.ID) bool) (aa.ID, bool) {
	for {
		id, ok := s.shared.PopBest()
		if !ok {
			return 0, false
		}
		if s.held[id] || (skip != nil && skip(id)) {
			s.m.DupSkips++
			continue
		}
		s.held[id] = true
		return id, true
	}
}

// Shards returns the stripe width.
func (s *Sharded) Shards() int { return s.shards }

// Metrics returns a copy of the traffic counters.
func (s *Sharded) Metrics() ShardedMetrics { return s.m }

// Pop removes and returns the shard's next held ID, swapping the standby
// batch in when the queue has drained. Reports false only when both are
// empty, signalling the caller to refill synchronously (a stall).
func (s *Sharded) Pop(shard int) (aa.ID, bool) {
	if len(s.queues[shard]) == 0 && len(s.staged[shard]) > 0 {
		s.queues[shard], s.staged[shard] = s.staged[shard], nil
		s.queueGen[shard] = s.stagedGen[shard]
		s.m.Swaps++
	}
	q := s.queues[shard]
	if len(q) == 0 {
		return 0, false
	}
	id := q[0]
	s.queues[shard] = q[1:]
	delete(s.held, id)
	s.m.LocalPops++
	return id, true
}

// Low reports whether the shard should be refilled ahead of exhaustion: no
// standby batch and the queue at or below half a batch.
func (s *Sharded) Low(shard int) bool {
	return len(s.staged[shard]) == 0 && len(s.queues[shard]) <= s.low
}

// Stage tops the shard's standby batch up to batch IDs off the shared
// list, skipping held duplicates and any ID skip rejects. Returns the
// number of IDs staged.
func (s *Sharded) Stage(shard int, skip func(aa.ID) bool) int {
	n := 0
	for len(s.staged[shard]) < s.batch {
		id, ok := s.popFresh(skip)
		if !ok {
			break
		}
		s.staged[shard] = append(s.staged[shard], id)
		n++
	}
	if n > 0 {
		s.stagedGen[shard] = s.gen
	}
	s.m.StageCalls++
	s.m.Staged += uint64(n)
	return n
}

// AdvanceGen bumps the generation stamp pipelined CPs seal under.
func (s *Sharded) AdvanceGen() { s.gen++ }

// Gen returns the current staging generation.
func (s *Sharded) Gen() uint64 { return s.gen }

// HeldGens visits the generation stamp of every non-empty held batch in
// shard order, queue before standby.
func (s *Sharded) HeldGens(yield func(shard int, gen uint64)) {
	for i := 0; i < s.shards; i++ {
		if len(s.queues[i]) > 0 {
			yield(i, s.queueGen[i])
		}
		if len(s.staged[i]) > 0 {
			yield(i, s.stagedGen[i])
		}
	}
}

// TamperHeldGen is a fault-injection hook for watchdog tests: it stamps the
// first non-empty held batch with a generation ahead of the current one and
// reports whether a batch was found. Production code never calls it.
func (s *Sharded) TamperHeldGen() bool {
	for i := 0; i < s.shards; i++ {
		if len(s.queues[i]) > 0 {
			s.queueGen[i] = s.gen + 1
			return true
		}
		if len(s.staged[i]) > 0 {
			s.stagedGen[i] = s.gen + 1
			return true
		}
	}
	return false
}

// FlushAll empties every queue and the held set, returning each held ID to
// the tracked-but-unlisted state — the same state a consumed pop leaves, so
// the histogram census is untouched and the next replenish re-lists them.
// Used to rebalance when one shard runs dry while others hoard IDs (shards
// × batch can exceed the space's AA count). Returns IDs dropped.
func (s *Sharded) FlushAll() int {
	n := 0
	for i := range s.queues {
		n += len(s.queues[i]) + len(s.staged[i])
		s.queues[i], s.staged[i] = nil, nil
	}
	for id := range s.held {
		delete(s.held, id)
	}
	s.m.Flushes += uint64(n)
	return n
}

// Len returns the number of IDs the shard holds (queue + standby).
func (s *Sharded) Len(shard int) int {
	return len(s.queues[shard]) + len(s.staged[shard])
}

// HeldCount returns the total IDs held across all shards.
func (s *Sharded) HeldCount() int { return len(s.held) }

// Holds reports whether any shard holds id.
func (s *Sharded) Holds(id aa.ID) bool { return s.held[id] }

// Each visits every held ID in shard order, queue before standby.
func (s *Sharded) Each(yield func(shard int, id aa.ID)) {
	for i := 0; i < s.shards; i++ {
		for _, id := range s.queues[i] {
			yield(i, id)
		}
		for _, id := range s.staged[i] {
			yield(i, id)
		}
	}
}

// CheckInvariants validates the shard structures against the shared HBPS:
// the held map matches the queues exactly, no ID is held twice, batch
// bounds hold, and the shared HBPS's own invariants pass. (A held ID MAY be
// re-listed by a CP-fold bin migration — Stage dup-skips it later.) Panics
// on violation (test use).
func (s *Sharded) CheckInvariants() {
	seen := make(map[aa.ID]bool)
	s.Each(func(_ int, id aa.ID) {
		if seen[id] {
			panic("hbps: sharded: ID held twice")
		}
		seen[id] = true
		if !s.held[id] {
			panic("hbps: sharded: queued ID missing from held map")
		}
	})
	if len(seen) != len(s.held) {
		panic("hbps: sharded: held map out of sync with queues")
	}
	for i := 0; i < s.shards; i++ {
		if len(s.queues[i]) > s.batch || len(s.staged[i]) > s.batch {
			panic("hbps: sharded: batch bound exceeded")
		}
	}
	if err := s.shared.CheckInvariants(); err != nil {
		panic("hbps: sharded: shared invariants: " + err.Error())
	}
}
