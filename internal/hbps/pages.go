package hbps

import (
	"encoding/binary"
	"errors"
	"fmt"

	"waflfs/internal/aa"
	"waflfs/internal/block"
)

// On-disk layout. The HBPS serializes to (1 + listPages) 4KiB pages: the
// histogram page followed by the list page(s). These are the exact bytes
// the RAID-agnostic TopAA metafile pins in the buffer cache (§3.4), so
// mounting a FlexVol needs only a two-block read and an O(list) index
// rebuild.
const (
	// PageSize is the metafile block size.
	PageSize = block.BlockSize
	// IDsPerListPage is how many 4-byte AA IDs fit in one list page.
	IDsPerListPage = PageSize / 4

	magic   = 0x53504248 // "HBPS" little-endian
	version = 1

	offMagic    = 0
	offVersion  = 4
	offBinCount = 6
	offBinWidth = 8
	offMaxScore = 12
	offTotal    = 16
	offListLen  = 24
	offListCap  = 28
	offBins     = 64
	binStride   = 12 // count u32, listed u32, index i32
)

// MaxBins is the largest bin count one histogram page can describe.
const MaxBins = (PageSize - offBins) / binStride

// ListPages returns the number of list pages needed for the configured
// capacity.
func (c Config) ListPages() int {
	return (c.ListCap + IDsPerListPage - 1) / IDsPerListPage
}

// MarshaledSize returns the serialized size in bytes.
func (c Config) MarshaledSize() int { return (1 + c.ListPages()) * PageSize }

// Marshal serializes the structure into its page representation.
func (h *HBPS) Marshal() []byte {
	if h.numBins > MaxBins {
		panic(fmt.Sprintf("hbps: %d bins exceed one histogram page (max %d)", h.numBins, MaxBins))
	}
	buf := make([]byte, h.cfg.MarshaledSize())
	le := binary.LittleEndian
	le.PutUint32(buf[offMagic:], magic)
	le.PutUint16(buf[offVersion:], version)
	le.PutUint16(buf[offBinCount:], uint16(h.numBins))
	le.PutUint32(buf[offBinWidth:], h.cfg.BinWidth)
	le.PutUint32(buf[offMaxScore:], h.cfg.MaxScore)
	le.PutUint64(buf[offTotal:], h.total)
	le.PutUint32(buf[offListLen:], uint32(len(h.list)))
	le.PutUint32(buf[offListCap:], uint32(h.cfg.ListCap))
	for b := 0; b < h.numBins; b++ {
		o := offBins + b*binStride
		le.PutUint32(buf[o:], h.counts[b])
		le.PutUint32(buf[o+4:], h.listed[b])
		le.PutUint32(buf[o+8:], uint32(h.index[b]))
	}
	for i, id := range h.list {
		le.PutUint32(buf[PageSize+4*i:], uint32(id))
	}
	return buf
}

// Load reconstructs an HBPS from its page representation, rebuilding the
// in-memory position index. It returns an error (never panics) on corrupt
// input, so callers can fall back to a full bitmap walk, as WAFL does when
// a TopAA metafile is damaged.
func Load(buf []byte) (*HBPS, error) {
	if len(buf) < 2*PageSize {
		return nil, fmt.Errorf("hbps: %d bytes, need at least two pages", len(buf))
	}
	le := binary.LittleEndian
	if le.Uint32(buf[offMagic:]) != magic {
		return nil, errors.New("hbps: bad magic")
	}
	if v := le.Uint16(buf[offVersion:]); v != version {
		return nil, fmt.Errorf("hbps: unsupported version %d", v)
	}
	nb := int(le.Uint16(buf[offBinCount:]))
	bw := le.Uint32(buf[offBinWidth:])
	ms := le.Uint32(buf[offMaxScore:])
	if nb == 0 || nb > MaxBins || bw == 0 || ms != bw*uint32(nb) {
		return nil, fmt.Errorf("hbps: inconsistent geometry bins=%d width=%d max=%d", nb, bw, ms)
	}
	listCap := int(le.Uint32(buf[offListCap:]))
	listLen := int(le.Uint32(buf[offListLen:]))
	cfg := Config{MaxScore: ms, BinWidth: bw, ListCap: listCap}
	if listCap <= 0 || len(buf) < cfg.MarshaledSize() {
		return nil, fmt.Errorf("hbps: buffer %d bytes too small for capacity %d", len(buf), listCap)
	}
	if listLen > listCap {
		return nil, fmt.Errorf("hbps: list length %d exceeds capacity %d", listLen, listCap)
	}
	h := New(cfg)
	h.total = le.Uint64(buf[offTotal:])
	for b := 0; b < nb; b++ {
		o := offBins + b*binStride
		h.counts[b] = le.Uint32(buf[o:])
		h.listed[b] = le.Uint32(buf[o+4:])
		h.index[b] = int32(le.Uint32(buf[o+8:]))
	}
	h.list = h.list[:0]
	for i := 0; i < listLen; i++ {
		id := aa.ID(le.Uint32(buf[PageSize+4*i:]))
		h.list = append(h.list, id)
		h.pos[id] = int32(i)
	}
	if err := h.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("hbps: corrupt pages: %w", err)
	}
	return h, nil
}
