package hbps

import (
	"testing"

	"waflfs/internal/aa"
)

func newShardedHBPS(t *testing.T, n int, shards, batch int) (*HBPS, *Sharded) {
	t.Helper()
	h := New(Config{MaxScore: 1024, BinWidth: 64, ListCap: 256})
	for i := 0; i < n; i++ {
		h.Track(aa.ID(i), uint32(1000-i))
	}
	s := NewSharded(h, shards, batch)
	s.CheckInvariants()
	return h, s
}

func TestShardedHBPSInitialStaging(t *testing.T) {
	h, s := newShardedHBPS(t, 64, 4, 8)
	if got := s.HeldCount(); got != 32 {
		t.Fatalf("held %d after construction, want 32", got)
	}
	if got := h.ListLen(); got != 32 {
		t.Fatalf("shared list has %d, want 32", got)
	}
	// Held IDs stay histogram-tracked but unlisted.
	s.Each(func(_ int, id aa.ID) {
		if h.Listed(id) {
			t.Fatalf("held AA %d still listed", id)
		}
	})
	if h.Total() != 64 {
		t.Fatalf("histogram total %d, want 64 (pops keep tracking)", h.Total())
	}
}

func TestShardedHBPSPopSwapStall(t *testing.T) {
	_, s := newShardedHBPS(t, 64, 2, 4)
	if s.Low(0) {
		t.Fatal("full queue reported low")
	}
	s.Pop(0)
	s.Pop(0)
	if !s.Low(0) {
		t.Fatal("half-drained queue not reported low")
	}
	if n := s.Stage(0, nil); n != 4 {
		t.Fatalf("staged %d, want 4", n)
	}
	s.Pop(0)
	s.Pop(0)
	before := s.Metrics().Swaps
	if _, ok := s.Pop(0); !ok {
		t.Fatal("pop after drain failed despite standby batch")
	}
	if s.Metrics().Swaps != before+1 {
		t.Fatalf("swaps %d, want %d", s.Metrics().Swaps, before+1)
	}
	// Exhaust shard 1 completely: stall.
	for {
		if _, ok := s.Pop(1); !ok {
			break
		}
	}
	if _, ok := s.Pop(1); ok {
		t.Fatal("pop succeeded on exhausted shard")
	}
	s.CheckInvariants()
}

// A CP-boundary fold can re-list an ID a shard still holds (bin migration
// re-lists unlisted IDs). Stage must discard the duplicate rather than
// queue it twice.
func TestShardedHBPSStageSkipsHeldDuplicates(t *testing.T) {
	// batch 16 swallows the whole space into the queue, so the shared list
	// is empty and every ID is held.
	h, s := newShardedHBPS(t, 16, 1, 16)
	if h.ListLen() != 0 {
		t.Fatalf("setup: list still has %d", h.ListLen())
	}
	s.Pop(0) // consume the front so the queue is mid-CP realistic
	// Re-list a still-held ID via a bin-migrating Update, as the CP fold
	// would do after frees raised its score into another bin.
	heldID := aa.ID(5)
	if !s.Holds(heldID) {
		t.Fatal("setup: AA 5 not held")
	}
	old := uint32(1000 - int(heldID))
	h.Update(heldID, old, old-200) // crosses bins → tryList re-lists it
	if !h.Listed(heldID) {
		t.Fatalf("setup: AA %d not re-listed by Update", heldID)
	}
	before := s.Metrics().DupSkips
	if n := s.Stage(0, nil); n != 0 {
		t.Fatalf("staged %d IDs, want 0 — only the duplicate was listed", n)
	}
	if s.Metrics().DupSkips != before+1 {
		t.Fatalf("dup skips %d, want %d", s.Metrics().DupSkips, before+1)
	}
	if h.Listed(heldID) {
		t.Fatal("duplicate still listed after skip")
	}
	s.CheckInvariants()
}

func TestShardedHBPSStageSkipPredicate(t *testing.T) {
	h, s := newShardedHBPS(t, 8, 1, 8)
	// Everything is held after construction; re-list two IDs, one of which
	// the predicate (modelling the in-flight cursor AA) excludes.
	for _, id := range []aa.ID{6, 7} {
		old := uint32(1000 - int(id))
		// Pop them out of held first so they are legitimate restage fodder.
		for {
			got, ok := s.Pop(0)
			if !ok {
				break
			}
			_ = got
		}
		h.Update(id, old, old-300)
	}
	if h.ListLen() == 0 {
		t.Fatal("setup: nothing listed")
	}
	cursor := aa.ID(6)
	s.Stage(0, func(id aa.ID) bool { return id == cursor })
	if s.Holds(cursor) {
		t.Fatal("skip predicate ignored: cursor AA staged")
	}
	s.CheckInvariants()
}
