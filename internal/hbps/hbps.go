// Package hbps implements the paper's novel histogram-based partial sort
// (HBPS) data structure (§3.3.2, Fig. 5), used as the RAID-agnostic
// allocation-area cache for FlexVol volumes and natively redundant storage,
// and elsewhere in WAFL where millions of items must be kept in
// close-to-optimal order within a bounded memory budget.
//
// The structure uses at least two 4KiB pages:
//
//   - The histogram page counts the number of AAs in each score-range bin.
//     For RAID-agnostic AAs the best score is 32k (an empty AA) and bins
//     cover ranges of 1k, so there are 32 bins; the first covers scores in
//     (31k, 32k], the second (30k, 31k], and so on. Each bin also holds an
//     index pointing at the first element of its segment in the list.
//
//   - The list page(s) store the IDs of all the AAs from the best bins,
//     contiguously, segment by segment in bin order. AAs within a bin are
//     deliberately left unsorted — the benefit of sorting within a 3.125%
//     score range was found to be negligible (hence "partial sort") — which
//     is what makes updates cheap: inserting or removing an element moves
//     at most one element per bin.
//
// The write allocator always picks the first AA in the list, which is
// guaranteed to have a score within one bin width (1k/32k = 3.125%) of the
// best tracked score. Counts remain accurate for every bin even when a
// bin's AAs do not qualify for the list; a background replenish scan refills
// the list from the bitmap when the allocator drains it.
//
// The two pages serialize verbatim into the RAID-agnostic TopAA metafile
// (§3.4): see Marshal and Load.
package hbps

import (
	"fmt"

	"waflfs/internal/aa"
)

// Default geometry for RAID-agnostic AA caches.
const (
	// DefaultMaxScore is the best possible RAID-agnostic AA score: 32k free
	// blocks in an empty AA.
	DefaultMaxScore = 32768
	// DefaultBinWidth is the score range covered by one histogram bin.
	DefaultBinWidth = 1024
	// DefaultListCap is the number of AA IDs stored in the single default
	// list page ("this second page stores 1,000 AAs").
	DefaultListCap = 1000
)

// Config parameterizes an HBPS instance.
type Config struct {
	// MaxScore is the best possible item score (inclusive).
	MaxScore uint32
	// BinWidth is the score range per histogram bin; MaxScore must be a
	// multiple of BinWidth.
	BinWidth uint32
	// ListCap is the maximum number of items held in the list component.
	// It must fit in the configured number of list pages when the
	// structure is serialized (1024 IDs per 4KiB page).
	ListCap int
}

// DefaultConfig returns the RAID-agnostic AA cache geometry from the paper.
func DefaultConfig() Config {
	return Config{MaxScore: DefaultMaxScore, BinWidth: DefaultBinWidth, ListCap: DefaultListCap}
}

// HBPS is the histogram-based partial sort. It is not safe for concurrent
// use; WAFL applies updates in batches at the consistency-point boundary.
type HBPS struct {
	cfg     Config
	numBins int

	// counts[b] is the number of tracked items whose score falls in bin b.
	// It is accurate for ALL tracked items, listed or not.
	counts []uint32
	// listed[b] is the number of items of bin b currently in the list.
	listed []uint32
	// index[b] is the list offset of bin b's first element, -1 if none.
	index []int32
	// list holds item IDs, segment by segment in bin order, compactly.
	list []aa.ID
	// pos maps a listed ID to its list offset. This in-memory acceleration
	// is rebuilt on load and does not count against the two-page budget.
	pos map[aa.ID]int32

	total uint64 // tracked items across all bins

	m Metrics
}

// Metrics counts the structural work the HBPS has done since construction.
// BinMigrations is the number of Update calls that moved an item between
// histogram bins — the rebalance cost the paper's batched-update design
// bounds to one moved element per bin; Evictions counts list evictions in
// favor of a better-binned item. The observability layer exposes these per
// FlexVol.
type Metrics struct {
	Tracks        uint64
	Untracks      uint64
	Updates       uint64
	BinMigrations uint64
	Pops          uint64
	Evictions     uint64
	Replenishes   uint64
}

// Metrics returns the instance's operation counters.
func (h *HBPS) Metrics() Metrics { return h.m }

// New creates an empty HBPS.
func New(cfg Config) *HBPS {
	if cfg.MaxScore == 0 || cfg.BinWidth == 0 || cfg.MaxScore%cfg.BinWidth != 0 {
		panic(fmt.Sprintf("hbps: invalid geometry max=%d width=%d", cfg.MaxScore, cfg.BinWidth))
	}
	if cfg.ListCap <= 0 {
		panic("hbps: non-positive list capacity")
	}
	nb := int(cfg.MaxScore / cfg.BinWidth)
	h := &HBPS{
		cfg:     cfg,
		numBins: nb,
		counts:  make([]uint32, nb),
		listed:  make([]uint32, nb),
		index:   make([]int32, nb),
		list:    make([]aa.ID, 0, cfg.ListCap),
		pos:     make(map[aa.ID]int32, cfg.ListCap),
	}
	for b := range h.index {
		h.index[b] = -1
	}
	return h
}

// Config returns the instance geometry.
func (h *HBPS) Config() Config { return h.cfg }

// NumBins returns the number of histogram bins.
func (h *HBPS) NumBins() int { return h.numBins }

// Bin returns the bin index for a score: bin 0 is the best range
// (MaxScore-BinWidth, MaxScore]; the worst bin additionally includes score 0.
func (h *HBPS) Bin(score uint32) int {
	if score > h.cfg.MaxScore {
		panic(fmt.Sprintf("hbps: score %d exceeds max %d", score, h.cfg.MaxScore))
	}
	b := int((h.cfg.MaxScore - score) / h.cfg.BinWidth)
	if b == h.numBins { // score == 0
		b = h.numBins - 1
	}
	return b
}

// BinFloor returns the smallest score that maps into bin b (0 for the worst
// bin).
func (h *HBPS) BinFloor(b int) uint32 {
	if b == h.numBins-1 {
		return 0
	}
	return h.cfg.MaxScore - uint32(b+1)*h.cfg.BinWidth + 1
}

// Total returns the number of tracked items.
func (h *HBPS) Total() uint64 { return h.total }

// ListLen returns the number of items currently in the list component.
func (h *HBPS) ListLen() int { return len(h.list) }

// BinCount returns the histogram count of bin b.
func (h *HBPS) BinCount(b int) uint32 { return h.counts[b] }

// BinListed returns how many of bin b's items are in the list.
func (h *HBPS) BinListed(b int) uint32 { return h.listed[b] }

// BinSnapshot returns a copy of the histogram page: every bin's tracked-item
// count in bin order (bin 0 = best). This is the cheap scan hook the
// fragscan analyzer uses to contrast the cache's coarse score view with the
// bitmap-truth distribution.
func (h *HBPS) BinSnapshot() []uint32 {
	return append([]uint32(nil), h.counts...)
}

// EachListed visits every listed item with the bin it is filed under, in
// list order (best bins first). The bin comes from the segment structure,
// not the item's score, so a scrub can cross-check the metafile's own
// claim against bitmap ground truth.
func (h *HBPS) EachListed(yield func(id aa.ID, bin int)) {
	for b := 0; b < h.numBins; b++ {
		if h.listed[b] == 0 {
			continue
		}
		first := h.index[b]
		for i := int32(0); i < int32(h.listed[b]); i++ {
			yield(h.list[first+i], b)
		}
	}
}

// Listed reports whether item id is currently in the list.
func (h *HBPS) Listed(id aa.ID) bool {
	_, ok := h.pos[id]
	return ok
}

// Track starts tracking a new item with the given score, inserting it into
// the list if it qualifies. The caller must not Track an id twice without an
// intervening Untrack.
func (h *HBPS) Track(id aa.ID, score uint32) {
	h.m.Tracks++
	b := h.Bin(score)
	h.counts[b]++
	h.total++
	h.tryList(id, b)
}

// Untrack removes an item entirely; score must be the last score the
// structure was told about (HBPS stores no per-item scores, by design).
func (h *HBPS) Untrack(id aa.ID, score uint32) {
	h.m.Untracks++
	b := h.Bin(score)
	if h.counts[b] == 0 {
		panic(fmt.Sprintf("hbps: untrack underflow in bin %d", b))
	}
	h.counts[b]--
	h.total--
	if h.Listed(id) {
		h.removeListed(id)
	}
}

// Update moves an item from oldScore to newScore. Updates are batched by
// the caller at the CP boundary; each call is O(bins). An item whose score
// rises into one of the top ranges is inserted into the list (§3.3.2).
func (h *HBPS) Update(id aa.ID, oldScore, newScore uint32) {
	bo, bn := h.Bin(oldScore), h.Bin(newScore)
	h.m.Updates++
	if bo != bn {
		h.m.BinMigrations++
		if h.counts[bo] == 0 {
			panic(fmt.Sprintf("hbps: update underflow in bin %d", bo))
		}
		h.counts[bo]--
		h.counts[bn]++
	}
	if h.Listed(id) {
		if bo == bn {
			return
		}
		h.removeListed(id)
		h.tryList(id, bn)
		return
	}
	if bo != bn {
		h.tryList(id, bn)
	}
}

// PeekBest returns the first AA in the list — an item from the highest
// populated range present in the list — without removing it.
func (h *HBPS) PeekBest() (aa.ID, bool) {
	if len(h.list) == 0 {
		return 0, false
	}
	return h.list[0], true
}

// PeekBestBin returns the first listed AA together with its histogram bin,
// without removing it — the provenance layer's runner-up probe after a pop
// (BinFloor of the bin is a lower bound on the runner-up's score).
func (h *HBPS) PeekBestBin() (aa.ID, int, bool) {
	if len(h.list) == 0 {
		return 0, 0, false
	}
	return h.list[0], h.binOfListPos(0), true
}

// BestTrackedBin returns the lowest-index (best-score) bin with any tracked
// items, listed or not, or -1 when nothing is tracked. The pick-quality
// watchdog checks popped scores against this near-best bound.
func (h *HBPS) BestTrackedBin() int {
	for b := 0; b < h.numBins; b++ {
		if h.counts[b] > 0 {
			return b
		}
	}
	return -1
}

// ListedAt returns the AA at list offset p (0 ≤ p < ListLen) and its
// histogram bin — the rotating-sample accessor the online watchdogs use to
// spot-check listed placement against bitmap-derived scores.
func (h *HBPS) ListedAt(p int) (aa.ID, int) {
	return h.list[p], h.binOfListPos(int32(p))
}

// PopBest removes and returns the first AA in the list. The item remains
// tracked in the histogram; the caller reports its consumption through
// Update (or Untrack) later, as WAFL does at the CP boundary.
func (h *HBPS) PopBest() (aa.ID, bool) {
	if len(h.list) == 0 {
		return 0, false
	}
	id := h.list[0]
	h.m.Pops++
	h.removeListed(id)
	return id, true
}

// worstListedBin returns the highest-index bin with a list segment, or -1.
func (h *HBPS) worstListedBin() int {
	for b := h.numBins - 1; b >= 0; b-- {
		if h.listed[b] > 0 {
			return b
		}
	}
	return -1
}

// tryList inserts id (whose score falls in bin b) into the list if it
// qualifies: there is spare capacity, or b is strictly better than the worst
// listed bin (in which case the last element is evicted).
func (h *HBPS) tryList(id aa.ID, b int) bool {
	if len(h.list) >= h.cfg.ListCap {
		w := h.worstListedBin()
		if w < 0 || b >= w {
			return false
		}
		h.evictLast(w)
	}
	// Open a slot at the end of segment b by moving one element per listed
	// bin after b: each bin's first element becomes its last, shifting the
	// vacancy left ("only one AA needs to be moved down from each bin").
	h.list = append(h.list, 0)
	for c := h.numBins - 1; c > b; c-- {
		if h.listed[c] == 0 {
			continue
		}
		first := h.index[c]
		dest := first + int32(h.listed[c])
		moved := h.list[first]
		h.list[dest] = moved
		h.pos[moved] = dest
		h.index[c] = first + 1
	}
	// The vacancy now sits at the end of segment b: the prefix sum of
	// listed counts through b.
	var slot int32
	for c := 0; c <= b; c++ {
		slot += int32(h.listed[c])
	}
	h.list[slot] = id
	h.pos[id] = slot
	if h.listed[b] == 0 {
		h.index[b] = slot
	}
	h.listed[b]++
	return true
}

// evictLast drops the final list element, which belongs to worst listed bin w.
func (h *HBPS) evictLast(w int) {
	h.m.Evictions++
	last := len(h.list) - 1
	delete(h.pos, h.list[last])
	h.list = h.list[:last]
	h.listed[w]--
	if h.listed[w] == 0 {
		h.index[w] = -1
	}
}

// binOfListPos finds the bin whose segment contains list offset p.
func (h *HBPS) binOfListPos(p int32) int {
	for b := 0; b < h.numBins; b++ {
		if h.listed[b] == 0 {
			continue
		}
		if p >= h.index[b] && p < h.index[b]+int32(h.listed[b]) {
			return b
		}
	}
	panic(fmt.Sprintf("hbps: list position %d not in any segment", p))
}

// removeListed removes id from the list, closing the gap by moving one
// element per bin.
func (h *HBPS) removeListed(id aa.ID) {
	p, ok := h.pos[id]
	if !ok {
		panic(fmt.Sprintf("hbps: item %d not listed", id))
	}
	b := h.binOfListPos(p)
	// Replace p with the last element of its own segment.
	segLast := h.index[b] + int32(h.listed[b]) - 1
	if p != segLast {
		moved := h.list[segLast]
		h.list[p] = moved
		h.pos[moved] = p
	}
	h.listed[b]--
	if h.listed[b] == 0 {
		h.index[b] = -1
	}
	// The gap is at segLast; slide one element up from each later segment.
	gap := segLast
	for c := b + 1; c < h.numBins; c++ {
		if h.listed[c] == 0 {
			continue
		}
		last := h.index[c] + int32(h.listed[c]) - 1
		moved := h.list[last]
		h.list[gap] = moved
		h.pos[moved] = gap
		h.index[c]--
		gap = last
	}
	h.list = h.list[:len(h.list)-1]
	delete(h.pos, id)
}

// NeedsReplenish reports whether the list has run dry while the histogram
// still tracks items — the rare case where the allocator consumes AAs
// faster than frees insert them, requiring a background bitmap walk
// (§3.3.2).
func (h *HBPS) NeedsReplenish() bool {
	return len(h.list) == 0 && h.total > 0
}

// Replenish rebuilds the list (and recomputes the histogram) from an
// authoritative enumeration of every tracked item, as the background scan
// of the bitmap metafiles does. The iterator must yield each tracked item
// exactly once.
func (h *HBPS) Replenish(items func(yield func(id aa.ID, score uint32))) {
	h.m.Replenishes++
	for b := range h.counts {
		h.counts[b] = 0
		h.listed[b] = 0
		h.index[b] = -1
	}
	h.list = h.list[:0]
	h.pos = make(map[aa.ID]int32, h.cfg.ListCap)
	h.total = 0

	// Bucket IDs by bin, keeping at most ListCap of the best.
	buckets := make([][]aa.ID, h.numBins)
	items(func(id aa.ID, score uint32) {
		b := h.Bin(score)
		h.counts[b]++
		h.total++
		buckets[b] = append(buckets[b], id)
	})
	for b := 0; b < h.numBins && len(h.list) < h.cfg.ListCap; b++ {
		for _, id := range buckets[b] {
			if len(h.list) >= h.cfg.ListCap {
				break
			}
			if h.listed[b] == 0 {
				h.index[b] = int32(len(h.list))
			}
			h.list = append(h.list, id)
			h.pos[id] = int32(len(h.list) - 1)
			h.listed[b]++
		}
	}
}

// CheckInvariants verifies internal consistency; tests call it after every
// mutation sequence.
func (h *HBPS) CheckInvariants() error {
	var sumListed, sumCounts uint64
	running := int32(0)
	for b := 0; b < h.numBins; b++ {
		sumCounts += uint64(h.counts[b])
		sumListed += uint64(h.listed[b])
		if h.listed[b] > h.counts[b] {
			return fmt.Errorf("bin %d: listed %d > count %d", b, h.listed[b], h.counts[b])
		}
		if h.listed[b] == 0 {
			if h.index[b] != -1 {
				return fmt.Errorf("bin %d: empty but index %d", b, h.index[b])
			}
			continue
		}
		if h.index[b] != running {
			return fmt.Errorf("bin %d: index %d, want %d (segments not compact)", b, h.index[b], running)
		}
		running += int32(h.listed[b])
	}
	if sumCounts != h.total {
		return fmt.Errorf("counts sum %d != total %d", sumCounts, h.total)
	}
	if int(sumListed) != len(h.list) {
		return fmt.Errorf("listed sum %d != list len %d", sumListed, len(h.list))
	}
	if len(h.list) > h.cfg.ListCap {
		return fmt.Errorf("list len %d exceeds cap %d", len(h.list), h.cfg.ListCap)
	}
	if len(h.pos) != len(h.list) {
		return fmt.Errorf("pos map size %d != list len %d", len(h.pos), len(h.list))
	}
	for i, id := range h.list {
		if p, ok := h.pos[id]; !ok || p != int32(i) {
			return fmt.Errorf("pos[%d] = %d,%v; want %d", id, p, ok, i)
		}
	}
	return nil
}
