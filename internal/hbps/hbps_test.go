package hbps

import (
	"math/rand"
	"testing"

	"waflfs/internal/aa"
)

func small() *HBPS {
	// 8 bins of width 8, max score 64, list capacity 10: small enough to
	// exercise every structural edge.
	return New(Config{MaxScore: 64, BinWidth: 8, ListCap: 10})
}

func TestBinMapping(t *testing.T) {
	h := small()
	cases := []struct {
		score uint32
		bin   int
	}{
		{64, 0}, {57, 0}, {56, 1}, {49, 1}, {9, 6}, {8, 7}, {1, 7}, {0, 7},
	}
	for _, c := range cases {
		if got := h.Bin(c.score); got != c.bin {
			t.Errorf("Bin(%d) = %d, want %d", c.score, got, c.bin)
		}
	}
	if h.BinFloor(0) != 57 || h.BinFloor(6) != 9 || h.BinFloor(7) != 0 {
		t.Errorf("BinFloor wrong: %d %d %d", h.BinFloor(0), h.BinFloor(6), h.BinFloor(7))
	}
	defer func() {
		if recover() == nil {
			t.Error("Bin(65) did not panic")
		}
	}()
	h.Bin(65)
}

func TestDefaultGeometry(t *testing.T) {
	h := New(DefaultConfig())
	if h.NumBins() != 32 {
		t.Fatalf("default bins = %d", h.NumBins())
	}
	// Paper: first bin is 31K-32K, second 30K-31K.
	if h.Bin(32768) != 0 || h.Bin(31745) != 0 || h.Bin(31744) != 1 || h.Bin(30721) != 1 {
		t.Fatal("paper bin boundaries wrong")
	}
	// Error margin: one bin is 1k/32k = 3.125% of the score space.
	if got := float64(DefaultBinWidth) / float64(DefaultMaxScore); got != 0.03125 {
		t.Fatalf("error margin = %v", got)
	}
}

func TestTrackAndPeek(t *testing.T) {
	h := small()
	h.Track(1, 10) // bin 6
	h.Track(2, 60) // bin 0
	h.Track(3, 30) // bin 4
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.Total() != 3 || h.ListLen() != 3 {
		t.Fatalf("total=%d list=%d", h.Total(), h.ListLen())
	}
	id, ok := h.PeekBest()
	if !ok || id != 2 {
		t.Fatalf("PeekBest = %d,%v", id, ok)
	}
	if !h.Listed(2) || h.Listed(9) {
		t.Fatal("Listed wrong")
	}
}

func TestPopOrderRespectsBins(t *testing.T) {
	h := small()
	// Track in scrambled order across bins.
	h.Track(10, 5)  // bin 7
	h.Track(11, 62) // bin 0
	h.Track(12, 33) // bin 3
	h.Track(13, 61) // bin 0
	h.Track(14, 40) // bin 3
	var bins []int
	for {
		id, ok := h.PopBest()
		if !ok {
			break
		}
		score := map[aa.ID]uint32{10: 5, 11: 62, 12: 33, 13: 61, 14: 40}[id]
		bins = append(bins, h.Bin(score))
		if err := h.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if len(bins) != 5 {
		t.Fatalf("popped %d", len(bins))
	}
	for i := 1; i < len(bins); i++ {
		if bins[i] < bins[i-1] {
			t.Fatalf("pop bins out of order: %v", bins)
		}
	}
	// Pops drain the list but items remain tracked in the histogram.
	if h.Total() != 5 || h.ListLen() != 0 {
		t.Fatalf("after drain: total=%d list=%d", h.Total(), h.ListLen())
	}
	if !h.NeedsReplenish() {
		t.Fatal("drained structure must need replenish")
	}
}

func TestEvictionOnOverflow(t *testing.T) {
	h := small() // cap 10
	// Fill the list with bin-4 items.
	for i := 0; i < 10; i++ {
		h.Track(aa.ID(i), 30)
	}
	if h.ListLen() != 10 {
		t.Fatalf("list = %d", h.ListLen())
	}
	// A better item must evict a bin-4 item.
	h.Track(100, 60)
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.ListLen() != 10 || !h.Listed(100) {
		t.Fatal("better item not listed after eviction")
	}
	if h.BinListed(4) != 9 || h.BinCount(4) != 10 {
		t.Fatalf("bin4 listed=%d count=%d", h.BinListed(4), h.BinCount(4))
	}
	// A same-or-worse item must NOT be listed (counts still track it).
	h.Track(101, 30)
	h.Track(102, 3)
	if h.Listed(101) || h.Listed(102) {
		t.Fatal("non-qualifying items were listed")
	}
	if h.BinCount(4) != 11 || h.BinCount(7) != 1 {
		t.Fatal("counts must remain accurate for unlisted items")
	}
	if id, _ := h.PeekBest(); id != 100 {
		t.Fatalf("best = %d", id)
	}
}

func TestUpdateMovesBetweenBins(t *testing.T) {
	h := small()
	h.Track(1, 30) // bin 4
	h.Track(2, 20) // bin 5
	h.Update(1, 30, 60)
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.BinCount(4) != 0 || h.BinCount(0) != 1 {
		t.Fatal("counts not moved")
	}
	if id, _ := h.PeekBest(); id != 1 {
		t.Fatal("updated item not first")
	}
	// Within-bin update is a no-op structurally.
	h.Update(2, 20, 17)
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.BinCount(5) != 1 {
		t.Fatal("within-bin update changed counts")
	}
}

func TestUpdateListsRisingUnlistedItem(t *testing.T) {
	h := small()
	for i := 0; i < 10; i++ {
		h.Track(aa.ID(i), 30) // fill list from bin 4
	}
	h.Track(50, 3) // bin 7, not listed
	if h.Listed(50) {
		t.Fatal("worst item listed")
	}
	// Frees raise its score into the top interval: it must enter the list.
	h.Update(50, 3, 64)
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !h.Listed(50) {
		t.Fatal("risen item not inserted into list")
	}
	if id, _ := h.PeekBest(); id != 50 {
		t.Fatal("risen item not best")
	}
}

func TestUpdateDropsListedItem(t *testing.T) {
	h := small()
	h.Track(1, 60)
	h.Track(2, 30)
	h.Update(1, 60, 2) // falls to bin 7; list has room so it stays listed
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if id, _ := h.PeekBest(); id != 2 {
		t.Fatal("fallen item still first")
	}
	// With a full list of better items, a falling item leaves the list.
	h2 := small()
	for i := 0; i < 10; i++ {
		h2.Track(aa.ID(i), 60)
	}
	h2.Track(20, 55) // bin 1; cap full, bin 1 worse than... all bin 0
	if h2.Listed(20) {
		t.Fatal("bin-1 item listed into full bin-0 list")
	}
	h2.Update(0, 60, 5) // a listed bin-0 item falls to bin 7
	if err := h2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// It re-enters at bin 7 only if space; list had 10, removal made room,
	// so it is re-listed at the tail.
	if !h2.Listed(0) {
		t.Fatal("fallen item should re-list into spare capacity")
	}
	if id, _ := h2.PeekBest(); id == 0 {
		t.Fatal("fallen item must not be first")
	}
}

func TestUntrack(t *testing.T) {
	h := small()
	h.Track(1, 60)
	h.Track(2, 30)
	h.Untrack(1, 60)
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.Total() != 1 || h.Listed(1) {
		t.Fatal("untrack incomplete")
	}
	// Untracking an unlisted item only fixes counts.
	for i := 10; i < 20; i++ {
		h.Track(aa.ID(i), 60)
	}
	h.Track(99, 2)
	if h.Listed(99) {
		t.Fatal("setup: 99 should be unlisted")
	}
	h.Untrack(99, 2)
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplenish(t *testing.T) {
	h := small()
	scores := map[aa.ID]uint32{}
	for i := 0; i < 40; i++ {
		s := uint32((i * 13) % 65)
		scores[aa.ID(i)] = s
		h.Track(aa.ID(i), s)
	}
	// Drain the list.
	for {
		if _, ok := h.PopBest(); !ok {
			break
		}
	}
	if !h.NeedsReplenish() {
		t.Fatal("list should be dry")
	}
	h.Replenish(func(yield func(aa.ID, uint32)) {
		for id, s := range scores {
			yield(id, s)
		}
	})
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.ListLen() != 10 || h.Total() != 40 {
		t.Fatalf("after replenish: list=%d total=%d", h.ListLen(), h.Total())
	}
	// The first listed item must come from the best populated bin.
	id, _ := h.PeekBest()
	bestBin := 0
	for b := 0; b < h.NumBins(); b++ {
		if h.BinCount(b) > 0 {
			bestBin = b
			break
		}
	}
	if h.Bin(scores[id]) != bestBin {
		t.Fatalf("best item from bin %d, best populated %d", h.Bin(scores[id]), bestBin)
	}
}

// The paper's guarantee: the cache always provides an AA whose score is
// within one bin width (3.125% of max) of the true best, as long as the
// list is populated.
func TestErrorMarginGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := New(DefaultConfig())
	scores := map[aa.ID]uint32{}
	for i := 0; i < 5000; i++ {
		s := uint32(rng.Intn(32769))
		scores[aa.ID(i)] = s
		h.Track(aa.ID(i), s)
	}
	for round := 0; round < 2000; round++ {
		// Random score churn.
		id := aa.ID(rng.Intn(5000))
		ns := uint32(rng.Intn(32769))
		h.Update(id, scores[id], ns)
		scores[id] = ns

		if round%100 == 0 {
			got, ok := h.PeekBest()
			if !ok {
				t.Fatal("list dry under churn")
			}
			var max uint32
			for _, s := range scores {
				if s > max {
					max = s
				}
			}
			if scores[got]+DefaultBinWidth < max {
				t.Fatalf("round %d: provided score %d, best %d (margin exceeded)",
					round, scores[got], max)
			}
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Model-based test: compare against a naive reference under random
// interleavings of every operation.
func TestRandomizedAgainstModel(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := New(Config{MaxScore: 64, BinWidth: 8, ListCap: 6})
		model := map[aa.ID]uint32{} // tracked id -> score
		nextID := aa.ID(0)
		for op := 0; op < 3000; op++ {
			switch rng.Intn(5) {
			case 0: // track
				s := uint32(rng.Intn(65))
				h.Track(nextID, s)
				model[nextID] = s
				nextID++
			case 1: // update
				for id, s := range model {
					ns := uint32(rng.Intn(65))
					h.Update(id, s, ns)
					model[id] = ns
					break
				}
			case 2: // untrack
				for id, s := range model {
					h.Untrack(id, s)
					delete(model, id)
					break
				}
			case 3: // pop: must come from best populated *listed* bin
				if id, ok := h.PopBest(); ok {
					if _, tracked := model[id]; !tracked {
						t.Fatalf("seed %d: popped untracked id %d", seed, id)
					}
				}
			case 4: // occasionally replenish
				if rng.Intn(20) == 0 {
					h.Replenish(func(yield func(aa.ID, uint32)) {
						for id, s := range model {
							yield(id, s)
						}
					})
				}
			}
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
			if h.Total() != uint64(len(model)) {
				t.Fatalf("seed %d op %d: total %d, model %d", seed, op, h.Total(), len(model))
			}
		}
		// Histogram counts must exactly match the model's bin census.
		census := make([]uint32, h.NumBins())
		for _, s := range model {
			census[h.Bin(s)]++
		}
		for b := range census {
			if h.BinCount(b) != census[b] {
				t.Fatalf("seed %d: bin %d count %d, model %d", seed, b, h.BinCount(b), census[b])
			}
		}
	}
}

func TestUnderflowPanics(t *testing.T) {
	h := small()
	for name, f := range map[string]func(){
		"Untrack empty bin": func() { h.Untrack(1, 60) },
		"Update empty bin":  func() { h.Update(1, 60, 3) },
		"bad geometry":      func() { New(Config{MaxScore: 100, BinWidth: 33, ListCap: 5}) },
		"zero cap":          func() { New(Config{MaxScore: 64, BinWidth: 8, ListCap: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	h := New(DefaultConfig())
	scores := make([]uint32, 1<<20)
	for i := range scores {
		scores[i] = uint32(rng.Intn(32769))
		h.Track(aa.ID(i), scores[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := i & (1<<20 - 1)
		ns := uint32((scores[id] + 4096) % 32769)
		h.Update(aa.ID(id), scores[id], ns)
		scores[id] = ns
	}
}

func BenchmarkPopTrackCycle(b *testing.B) {
	h := New(DefaultConfig())
	for i := 0; i < 1000; i++ {
		h.Track(aa.ID(i), 32768)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, ok := h.PopBest()
		if !ok {
			b.Fatal("dry")
		}
		h.Update(id, 32768, 100)
		h.Update(id, 100, 32768)
	}
}

// The introspection accessors: ListedAt must agree with EachListed,
// PeekBestBin with the list front, and BestTrackedBin with the histogram —
// the contracts the online watchdogs and pick provenance build on.
func TestIntrospectionAccessors(t *testing.T) {
	h := New(Config{MaxScore: 64, BinWidth: 8, ListCap: 16})
	if h.BestTrackedBin() != -1 {
		t.Fatal("empty HBPS reported a best tracked bin")
	}
	if _, _, ok := h.PeekBestBin(); ok {
		t.Fatal("empty HBPS reported a best listed item")
	}
	scores := map[aa.ID]uint32{1: 60, 2: 44, 3: 44, 4: 9, 5: 1}
	for id, sc := range scores {
		h.Track(id, sc)
	}
	// Cross-check ListedAt against EachListed, position by position.
	type slot struct {
		id  aa.ID
		bin int
	}
	var want []slot
	h.EachListed(func(id aa.ID, bin int) { want = append(want, slot{id, bin}) })
	if len(want) != h.ListLen() {
		t.Fatalf("EachListed visited %d, ListLen %d", len(want), h.ListLen())
	}
	for p, w := range want {
		id, bin := h.ListedAt(p)
		if id != w.id || bin != w.bin {
			t.Errorf("ListedAt(%d) = (%d,%d), EachListed saw (%d,%d)", p, id, bin, w.id, w.bin)
		}
	}
	// Best tracked bin: score 60 lands in the best-score bin for this
	// geometry; it must match Bin(60). Front of the list agrees.
	if got, want := h.BestTrackedBin(), h.Bin(60); got != want {
		t.Fatalf("BestTrackedBin = %d, want %d", got, want)
	}
	id, bin, ok := h.PeekBestBin()
	if !ok || bin != h.Bin(60) {
		t.Fatalf("PeekBestBin = (%d,%d,%v), want bin %d", id, bin, ok, h.Bin(60))
	}
	if front, _ := h.PeekBest(); front != id {
		t.Fatalf("PeekBestBin id %d disagrees with PeekBest %d", id, front)
	}
	// Untracking the best item moves the best tracked bin down.
	if _, ok := h.PopBest(); !ok {
		t.Fatal("PopBest failed")
	}
	h.Untrack(1, 60)
	if got, want := h.BestTrackedBin(), h.Bin(44); got != want {
		t.Fatalf("after untrack, BestTrackedBin = %d, want %d", got, want)
	}
}
