package hbps

import (
	"bytes"
	"math/rand"
	"testing"

	"waflfs/internal/aa"
)

func populated(seed int64, n int) (*HBPS, map[aa.ID]uint32) {
	rng := rand.New(rand.NewSource(seed))
	h := New(DefaultConfig())
	scores := map[aa.ID]uint32{}
	for i := 0; i < n; i++ {
		s := uint32(rng.Intn(32769))
		scores[aa.ID(i)] = s
		h.Track(aa.ID(i), s)
	}
	return h, scores
}

func TestMarshaledSize(t *testing.T) {
	cfg := DefaultConfig()
	// Default: one histogram page + one list page = exactly two 4KiB
	// blocks, the paper's memory bound.
	if cfg.ListPages() != 1 {
		t.Fatalf("list pages = %d", cfg.ListPages())
	}
	if cfg.MarshaledSize() != 2*PageSize {
		t.Fatalf("size = %d", cfg.MarshaledSize())
	}
	big := Config{MaxScore: 32768, BinWidth: 1024, ListCap: 3000}
	if big.ListPages() != 3 || big.MarshaledSize() != 4*PageSize {
		t.Fatalf("big: pages=%d size=%d", big.ListPages(), big.MarshaledSize())
	}
}

func TestRoundTripEmpty(t *testing.T) {
	h := New(DefaultConfig())
	got, err := Load(h.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() != 0 || got.ListLen() != 0 {
		t.Fatal("empty round trip not empty")
	}
}

func TestRoundTripPopulated(t *testing.T) {
	h, scores := populated(3, 5000)
	// Churn a little so listed/counts diverge.
	for i := 0; i < 500; i++ {
		id := aa.ID(i)
		h.Update(id, scores[id], scores[id]/2)
		scores[id] /= 2
	}
	for i := 0; i < 100; i++ {
		h.PopBest()
	}
	data := h.Marshal()
	got, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got.Total() != h.Total() || got.ListLen() != h.ListLen() {
		t.Fatalf("total %d/%d list %d/%d", got.Total(), h.Total(), got.ListLen(), h.ListLen())
	}
	for b := 0; b < h.NumBins(); b++ {
		if got.BinCount(b) != h.BinCount(b) || got.BinListed(b) != h.BinListed(b) {
			t.Fatalf("bin %d mismatch", b)
		}
	}
	// Serialization is deterministic: marshal(load(marshal(x))) == marshal(x).
	if !bytes.Equal(got.Marshal(), data) {
		t.Fatal("re-marshal differs")
	}
	// Behavioural equivalence: both pop the same sequence.
	for i := 0; i < 50; i++ {
		a, aok := h.PopBest()
		b, bok := got.PopBest()
		if a != b || aok != bok {
			t.Fatalf("pop %d: %d,%v vs %d,%v", i, a, aok, b, bok)
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	h, _ := populated(4, 2000)
	good := h.Marshal()

	corrupt := func(mutate func([]byte)) error {
		buf := append([]byte(nil), good...)
		mutate(buf)
		_, err := Load(buf)
		return err
	}

	cases := map[string]func([]byte){
		"magic":           func(b []byte) { b[0] ^= 0xff },
		"version":         func(b []byte) { b[offVersion] = 99 },
		"bin count zero":  func(b []byte) { b[offBinCount] = 0; b[offBinCount+1] = 0 },
		"geometry":        func(b []byte) { b[offBinWidth] ^= 0x01 },
		"list len > cap":  func(b []byte) { b[offListLen] = 0xff; b[offListLen+1] = 0xff },
		"broken index":    func(b []byte) { b[offBins+8] ^= 0x3f },
		"count underflow": func(b []byte) { b[offBins] = 0; b[offBins+1] = 0; b[offBins+2] = 0; b[offBins+3] = 0 },
	}
	for name, m := range cases {
		if err := corrupt(m); err == nil {
			t.Errorf("%s corruption not detected", name)
		}
	}
	if _, err := Load(good[:PageSize]); err == nil {
		t.Error("truncated buffer accepted")
	}
	// The pristine buffer still loads.
	if _, err := Load(good); err != nil {
		t.Fatalf("pristine buffer rejected: %v", err)
	}
}

func TestLoadDetectsDuplicateListEntries(t *testing.T) {
	h := New(DefaultConfig())
	h.Track(1, 32768)
	h.Track(2, 32768)
	buf := h.Marshal()
	// Make both list entries the same ID.
	copy(buf[PageSize+4:PageSize+8], buf[PageSize:PageSize+4])
	if _, err := Load(buf); err == nil {
		t.Fatal("duplicate list entries accepted")
	}
}

func BenchmarkMarshal(b *testing.B) {
	h, _ := populated(5, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Marshal()
	}
}

func BenchmarkLoad(b *testing.B) {
	h, _ := populated(6, 100000)
	data := h.Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(data); err != nil {
			b.Fatal(err)
		}
	}
}
