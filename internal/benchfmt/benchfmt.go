// Package benchfmt defines the schema-versioned benchmark artifact the
// repo's perf trajectory is recorded in (BENCH_<n>.json), and the
// tolerance-banded comparison cmd/benchdiff gates regressions with.
//
// An artifact is a flat, name-sorted list of scalar metrics plus
// provenance: schema version, seed, scale, worker width, and git revision.
// Flat and sorted keeps the on-disk form diffable, the field order stable
// under re-encoding, and comparison trivial. Each metric may carry its own
// relative tolerance band; the baseline (old) artifact's band wins during
// comparison so tolerances travel with the committed trajectory point.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion is the artifact schema this package reads and writes.
const SchemaVersion = 1

// DefaultTolerance is the relative drift band applied to metrics that do
// not carry their own: |new-old|/|old| beyond this is a violation.
const DefaultTolerance = 0.25

// absEpsilon: old values this close to zero switch the band to absolute
// drift, since relative drift against ~0 is meaningless.
const absEpsilon = 1e-9

// Metric is one scalar measurement.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
	// Tol is this metric's relative tolerance band; 0 means
	// DefaultTolerance.
	Tol float64 `json:"tol,omitempty"`
}

// Artifact is one benchmark run: provenance plus metrics sorted by name.
type Artifact struct {
	Schema  int      `json:"schema"`
	Name    string   `json:"name"`
	GitRev  string   `json:"git_rev"`
	Seed    int64    `json:"seed"`
	Scale   float64  `json:"scale"`
	Workers int      `json:"workers"`
	Metrics []Metric `json:"metrics"`
}

// Add appends a metric.
func (a *Artifact) Add(name string, value float64, unit string, tol float64) {
	a.Metrics = append(a.Metrics, Metric{Name: name, Value: value, Unit: unit, Tol: tol})
}

// Sort orders metrics by name — the canonical on-disk order.
func (a *Artifact) Sort() {
	sort.Slice(a.Metrics, func(i, j int) bool { return a.Metrics[i].Name < a.Metrics[j].Name })
}

// Get returns the named metric.
func (a *Artifact) Get(name string) (Metric, bool) {
	for _, m := range a.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Validate checks schema version and metric-name uniqueness.
func (a *Artifact) Validate() error {
	if a.Schema != SchemaVersion {
		return fmt.Errorf("benchfmt: schema %d, this tool speaks %d", a.Schema, SchemaVersion)
	}
	seen := make(map[string]bool, len(a.Metrics))
	for _, m := range a.Metrics {
		if seen[m.Name] {
			return fmt.Errorf("benchfmt: duplicate metric %q", m.Name)
		}
		seen[m.Name] = true
	}
	return nil
}

// Write serializes the artifact: metrics sorted, indented JSON, trailing
// newline. Two encodes of the same artifact are byte-identical.
func Write(w io.Writer, a Artifact) error {
	a.Metrics = append([]Metric(nil), a.Metrics...)
	(&a).Sort()
	if err := (&a).Validate(); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(buf, '\n'))
	return err
}

// Read decodes and validates an artifact, re-sorting its metrics.
func Read(r io.Reader) (Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return a, err
	}
	a.Sort()
	return a, a.Validate()
}

// WriteFile writes the artifact to path.
func WriteFile(path string, a Artifact) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, a); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads the artifact at path.
func ReadFile(path string) (Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return Artifact{}, err
	}
	defer f.Close()
	a, err := Read(f)
	if err != nil {
		return a, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// Comparison statuses.
const (
	StatusOK      = "ok"      // within band
	StatusDrift   = "DRIFT"   // outside band — a violation
	StatusMissing = "MISSING" // metric in old but not new — a violation
	StatusNew     = "new"     // metric in new but not old — informational
)

// Diff is one metric's comparison.
type Diff struct {
	Name   string
	Old    float64
	New    float64
	Rel    float64 // relative drift |new-old|/|old| (absolute when old ~ 0)
	Tol    float64
	Status string
}

// CompareResult is the outcome of comparing two artifacts.
type CompareResult struct {
	Diffs      []Diff
	Violations int
}

// CheckComparable rejects comparisons that would be apples-to-oranges:
// different schema, scale, or seed. Worker width is deliberately not
// checked — artifact content is worker-invariant by the determinism
// contract, and comparing across widths is exactly how that is audited.
func CheckComparable(old, new Artifact) error {
	if old.Schema != new.Schema {
		return fmt.Errorf("schema mismatch: %d vs %d", old.Schema, new.Schema)
	}
	if old.Scale != new.Scale {
		return fmt.Errorf("scale mismatch: %g vs %g", old.Scale, new.Scale)
	}
	if old.Seed != new.Seed {
		return fmt.Errorf("seed mismatch: %d vs %d", old.Seed, new.Seed)
	}
	return nil
}

// Compare diffs new against the old baseline. Per metric, the tolerance is
// the old artifact's band (falling back to DefaultTolerance): baselines own
// their tolerances. A metric missing from new is a violation; a metric new
// to the suite is informational only. Diffs are returned in name order.
func Compare(old, new Artifact) CompareResult {
	var res CompareResult
	newByName := make(map[string]Metric, len(new.Metrics))
	for _, m := range new.Metrics {
		newByName[m.Name] = m
	}
	oldNames := make(map[string]bool, len(old.Metrics))
	for _, om := range old.Metrics {
		oldNames[om.Name] = true
		tol := om.Tol
		if tol == 0 {
			tol = DefaultTolerance
		}
		nm, ok := newByName[om.Name]
		if !ok {
			res.Diffs = append(res.Diffs, Diff{Name: om.Name, Old: om.Value, Tol: tol, Status: StatusMissing})
			res.Violations++
			continue
		}
		var rel float64
		if math.Abs(om.Value) > absEpsilon {
			rel = math.Abs(nm.Value-om.Value) / math.Abs(om.Value)
		} else {
			rel = math.Abs(nm.Value - om.Value)
		}
		d := Diff{Name: om.Name, Old: om.Value, New: nm.Value, Rel: rel, Tol: tol, Status: StatusOK}
		if rel > tol {
			d.Status = StatusDrift
			res.Violations++
		}
		res.Diffs = append(res.Diffs, d)
	}
	for _, nm := range new.Metrics {
		if !oldNames[nm.Name] {
			res.Diffs = append(res.Diffs, Diff{Name: nm.Name, New: nm.Value, Status: StatusNew})
		}
	}
	sort.Slice(res.Diffs, func(i, j int) bool { return res.Diffs[i].Name < res.Diffs[j].Name })
	return res
}

// FindLatest returns the BENCH_<n>.json with the highest n in dir,
// excluding the named path (so a new artifact is never compared with
// itself when it already sits in dir).
func FindLatest(dir, exclude string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	excludeAbs, _ := filepath.Abs(exclude)
	best, bestN := "", -1
	for _, m := range matches {
		if abs, _ := filepath.Abs(m); exclude != "" && abs == excludeAbs {
			continue
		}
		base := filepath.Base(m)
		numStr := strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json")
		n, err := strconv.Atoi(numStr)
		if err != nil {
			continue
		}
		if n > bestN {
			best, bestN = m, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_<n>.json artifacts in %s", dir)
	}
	return best, nil
}

// NextPath returns the path of the next unused artifact number in dir:
// BENCH_<max+1>.json, or BENCH_1.json when dir holds no artifacts yet.
func NextPath(dir string) (string, error) {
	latest, err := FindLatest(dir, "")
	if err != nil {
		return filepath.Join(dir, "BENCH_1.json"), nil
	}
	numStr := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(latest), "BENCH_"), ".json")
	n, err := strconv.Atoi(numStr)
	if err != nil {
		return "", fmt.Errorf("unparsable artifact name %q", latest)
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n+1)), nil
}
