package benchfmt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// The golden artifact decodes, validates, and survives a decode→encode
// round trip byte-for-byte: field order and metric order are canonical, so
// committed BENCH_<n>.json files never churn under re-encoding.
func TestGoldenRoundTrip(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema != SchemaVersion || a.Name != "BENCH_golden" || a.GitRev != "abc1234" {
		t.Fatalf("provenance: %+v", a)
	}
	if a.Seed != 42 || a.Scale != 0.35 || a.Workers != 8 {
		t.Fatalf("provenance: %+v", a)
	}
	if len(a.Metrics) != 5 {
		t.Fatalf("%d metrics", len(a.Metrics))
	}
	if m, ok := a.Get("fig6.wa_off"); !ok || m.Value != 1.8 || m.Unit != "x" || m.Tol != 0.15 {
		t.Fatalf("fig6.wa_off = %+v, %v", m, ok)
	}
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatalf("round trip not byte-stable:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), raw)
	}
}

// Write sorts metrics into name order and two encodes are identical even
// when the in-memory order differs.
func TestWriteStableOrdering(t *testing.T) {
	a := Artifact{Schema: SchemaVersion, Name: "t", GitRev: "r", Seed: 1, Scale: 1, Workers: 1}
	a.Add("zeta", 3, "", 0)
	a.Add("alpha", 1, "", 0)
	a.Add("mid", 2, "", 0)

	var first bytes.Buffer
	if err := Write(&first, a); err != nil {
		t.Fatal(err)
	}
	// Writing must not have mutated the caller's slice ordering guarantee;
	// scramble again and re-encode.
	a.Metrics[0], a.Metrics[2] = a.Metrics[2], a.Metrics[0]
	var second bytes.Buffer
	if err := Write(&second, a); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("encodes of permuted metric slices differ")
	}
	got, err := Read(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"alpha", "mid", "zeta"} {
		if got.Metrics[i].Name != want {
			t.Fatalf("metric %d = %q, want %q", i, got.Metrics[i].Name, want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	a := Artifact{Schema: SchemaVersion + 1}
	if err := a.Validate(); err == nil {
		t.Error("wrong schema accepted")
	}
	b := Artifact{Schema: SchemaVersion}
	b.Add("dup", 1, "", 0)
	b.Add("dup", 2, "", 0)
	if err := b.Validate(); err == nil {
		t.Error("duplicate metric accepted")
	}
}

func TestCompareSelfIsClean(t *testing.T) {
	a, err := ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	res := Compare(a, a)
	if res.Violations != 0 {
		t.Fatalf("self-compare: %d violations: %+v", res.Violations, res.Diffs)
	}
	if len(res.Diffs) != len(a.Metrics) {
		t.Fatalf("%d diffs for %d metrics", len(res.Diffs), len(a.Metrics))
	}
	for _, d := range res.Diffs {
		if d.Status != StatusOK || d.Rel != 0 {
			t.Fatalf("self diff %+v", d)
		}
	}
}

// Drift beyond the baseline's band is a violation; the baseline's Tol wins
// over the candidate's.
func TestCompareDetectsDrift(t *testing.T) {
	old := Artifact{Schema: SchemaVersion}
	old.Add("tight", 100, "", 0.05)
	old.Add("loose", 100, "", 0.5)
	old.Add("deflt", 100, "", 0) // DefaultTolerance = 0.25
	old.Add("gone", 7, "", 0)

	new := Artifact{Schema: SchemaVersion}
	new.Add("tight", 110, "", 0.9) // +10% vs 5% band: DRIFT despite own loose band
	new.Add("loose", 140, "", 0)   // +40% vs 50% band: ok
	new.Add("deflt", 130, "", 0)   // +30% vs default 25%: DRIFT
	new.Add("fresh", 1, "", 0)     // new metric: informational

	res := Compare(old, new)
	if res.Violations != 3 {
		t.Fatalf("violations = %d, want 3 (tight, deflt, gone): %+v", res.Violations, res.Diffs)
	}
	status := map[string]string{}
	for _, d := range res.Diffs {
		status[d.Name] = d.Status
	}
	want := map[string]string{
		"tight": StatusDrift, "loose": StatusOK, "deflt": StatusDrift,
		"gone": StatusMissing, "fresh": StatusNew,
	}
	for name, w := range want {
		if status[name] != w {
			t.Errorf("%s: status %q, want %q", name, status[name], w)
		}
	}
}

// Near-zero baselines switch to absolute drift so relative bands don't
// divide by ~0.
func TestCompareZeroBaseline(t *testing.T) {
	old := Artifact{Schema: SchemaVersion}
	old.Add("z", 0, "", 0.25)
	new := Artifact{Schema: SchemaVersion}
	new.Add("z", 0.1, "", 0)
	if res := Compare(old, new); res.Violations != 0 {
		t.Fatalf("|0.1-0| <= 0.25 absolute should pass: %+v", res.Diffs)
	}
	new.Metrics[0].Value = 0.5
	if res := Compare(old, new); res.Violations != 1 {
		t.Fatalf("|0.5-0| > 0.25 absolute should fail: %+v", res.Diffs)
	}
}

func TestCheckComparable(t *testing.T) {
	base := Artifact{Schema: SchemaVersion, Scale: 0.35, Seed: 42, Workers: 1}
	same := base
	same.Workers = 8 // worker width deliberately not checked
	if err := CheckComparable(base, same); err != nil {
		t.Errorf("cross-width comparison rejected: %v", err)
	}
	for _, mut := range []func(*Artifact){
		func(a *Artifact) { a.Schema++ },
		func(a *Artifact) { a.Scale = 1.0 },
		func(a *Artifact) { a.Seed = 7 },
	} {
		bad := base
		mut(&bad)
		if err := CheckComparable(base, bad); err == nil {
			t.Errorf("mismatched artifact accepted: %+v", bad)
		}
	}
}

func TestFindLatest(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_1.json", "BENCH_3.json", "BENCH_12.json", "BENCH_x.json", "other.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := FindLatest(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_12.json" {
		t.Fatalf("latest = %s", got)
	}
	// Excluding the newest falls back to the next one.
	got, err = FindLatest(dir, filepath.Join(dir, "BENCH_12.json"))
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_3.json" {
		t.Fatalf("latest excluding 12 = %s", got)
	}
	if _, err := FindLatest(t.TempDir(), ""); err == nil {
		t.Error("empty dir should error")
	}
}

func TestNextPath(t *testing.T) {
	dir := t.TempDir()
	got, err := NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_1.json" {
		t.Fatalf("empty dir next = %s, want BENCH_1.json", got)
	}
	for _, name := range []string{"BENCH_2.json", "BENCH_7.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err = NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_8.json" {
		t.Fatalf("next = %s, want BENCH_8.json", got)
	}
}
