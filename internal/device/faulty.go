package device

import (
	"time"

	"waflfs/internal/obs"
)

// DefaultReadErrorPenalty is the extra service time one injected read error
// costs when the wrapper's Penalty is zero: the drive retries, reports the
// sector lost, and RAID reconstructs it from the surviving devices of the
// group — a positioning-dominated detour on every peer.
const DefaultReadErrorPenalty = 12 * time.Millisecond

// FaultyDisk wraps a device model and injects a recoverable media error on
// every Nth read I/O. The error does not lose data — RAID rebuilds the
// sector — but it charges Penalty of extra busy time and is counted in
// DiskStats.ReadErrors, so experiments can see recovery cost in the same
// accounting as regular service time. The schedule is a per-device I/O
// counter, so a given workload hits the same errors at any worker width.
type FaultyDisk struct {
	// Inner is the wrapped device model.
	Inner interface {
		WriteChain(start, n uint64) time.Duration
		Read(n uint64) time.Duration
		Stats() DiskStats
	}
	// Every injects an error on each Every-th read I/O; 0 disables.
	Every uint64
	// Penalty is the extra busy time per error (0 = DefaultReadErrorPenalty).
	Penalty time.Duration

	reads uint64
	errs  uint64
	extra time.Duration
}

// WriteChain forwards to the wrapped device.
func (f *FaultyDisk) WriteChain(start, n uint64) time.Duration {
	return f.Inner.WriteChain(start, n)
}

// Read forwards to the wrapped device, injecting the scheduled errors.
func (f *FaultyDisk) Read(n uint64) time.Duration {
	d := f.Inner.Read(n)
	f.reads++
	if f.Every > 0 && f.reads%f.Every == 0 {
		p := f.Penalty
		if p == 0 {
			p = DefaultReadErrorPenalty
		}
		f.errs++
		f.extra += p
		d += p
	}
	return d
}

// Trim forwards a deallocation when the wrapped device supports it.
func (f *FaultyDisk) Trim(start, n uint64) {
	if t, ok := f.Inner.(interface{ Trim(start, n uint64) }); ok {
		t.Trim(start, n)
	}
}

// SetBusyHist forwards the histogram when the wrapped device supports it.
func (f *FaultyDisk) SetBusyHist(hist *obs.Histogram) {
	if h, ok := f.Inner.(interface{ SetBusyHist(*obs.Histogram) }); ok {
		h.SetBusyHist(hist)
	}
}

// Stats returns the wrapped device's accounting plus the injected errors
// and their reconstruction time.
func (f *FaultyDisk) Stats() DiskStats {
	st := f.Inner.Stats()
	st.ReadErrors += f.errs
	st.BusyTime += f.extra
	return st
}
