package device

import (
	"math/rand"
	"testing"
)

func smallHybrid() *HybridFTL {
	return NewHybridFTL(HybridFTLConfig{LogicalBlocks: 4096, PagesPerEraseBlock: 64, Overprovision: 0.1})
}

func TestHybridSequentialFillIsSwitchMerges(t *testing.T) {
	h := smallHybrid()
	for lpn := uint64(0); lpn < h.LogicalBlocks(); lpn++ {
		h.Write(lpn)
	}
	if wa := h.WriteAmplification(); wa != 1.0 {
		t.Fatalf("sequential fill WA = %v", wa)
	}
	total, switches := h.Merges()
	if total == 0 || switches != total {
		t.Fatalf("merges=%d switches=%d; sequential fill must switch-merge only", total, switches)
	}
}

func TestHybridRandomOverwriteAmplifies(t *testing.T) {
	h := smallHybrid()
	for lpn := uint64(0); lpn < h.LogicalBlocks(); lpn++ {
		h.Write(lpn)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4*4096; i++ {
		h.Write(uint64(rng.Intn(4096)))
	}
	wa := h.WriteAmplification()
	if wa < 2 {
		t.Fatalf("random overwrite WA = %v, expected heavy merge copying", wa)
	}
}

// The Fig. 8 mechanism: rewriting whole erase-block-aligned regions yields
// far lower WA than rewriting the same volume of half-erase-block regions,
// because the former produces switch merges.
func TestHybridEraseBlockAlignedRewriteBeatsPartial(t *testing.T) {
	run := func(chunk uint64) float64 {
		h := NewHybridFTL(HybridFTLConfig{LogicalBlocks: 1 << 14, PagesPerEraseBlock: 256, Overprovision: 0.08})
		n := h.LogicalBlocks()
		for lpn := uint64(0); lpn < n; lpn++ {
			h.Write(lpn)
		}
		rng := rand.New(rand.NewSource(3))
		// Rewrite 64 chunk-aligned regions of the given size.
		for i := 0; i < 64; i++ {
			base := uint64(rng.Intn(int(n/chunk))) * chunk
			for o := uint64(0); o < chunk; o++ {
				h.Write(base + o)
			}
		}
		return h.WriteAmplification()
	}
	aligned, partial := run(256), run(128)
	if aligned >= partial {
		t.Fatalf("aligned WA %v >= partial WA %v", aligned, partial)
	}
	if partial/aligned < 1.15 {
		t.Fatalf("partial/aligned WA ratio %v too small", partial/aligned)
	}
}

func TestHybridTrim(t *testing.T) {
	h := smallHybrid()
	h.Write(10)
	h.Trim(10)
	if h.Stats().Trims != 1 {
		t.Fatal("trim not counted")
	}
	// Trimmed pages are not copied by merges: fill one EB, trim it, then
	// force merges elsewhere; a merge of the trimmed EB copies nothing.
	h2 := smallHybrid()
	for lpn := uint64(0); lpn < 64; lpn++ {
		h2.Write(lpn)
	}
	// Force its merge by filling the log from elsewhere.
	for lpn := uint64(64); h2.LogUsed() > 0 && lpn < h2.LogicalBlocks(); lpn++ {
		h2.Write(lpn)
	}
	for lpn := uint64(0); lpn < 64; lpn++ {
		h2.Trim(lpn)
	}
	pre := h2.Stats().Relocated
	// Dirty one page of the trimmed EB and merge it via log pressure.
	h2.Write(0)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		h2.Write(2048 + uint64(rng.Intn(1024)))
	}
	_ = pre // relocation totals vary; the real assertions are the panics below
	if h2.WriteAmplification() <= 0 {
		t.Fatal("WA not tracked")
	}
}

func TestHybridOutOfRangePanics(t *testing.T) {
	h := smallHybrid()
	for name, f := range map[string]func(){
		"Write": func() { h.Write(4096) },
		"Trim":  func() { h.Trim(4096) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHybridConservation(t *testing.T) {
	h := smallHybrid()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50000; i++ {
		lpn := uint64(rng.Intn(4096))
		if rng.Intn(12) == 0 {
			h.Trim(lpn)
		} else {
			h.Write(lpn)
		}
		if h.LogUsed() > h.logCap {
			t.Fatalf("op %d: log %d exceeds cap %d", i, h.LogUsed(), h.logCap)
		}
	}
	st := h.Stats()
	if st.NANDWrites < st.HostWrites {
		t.Fatal("NAND writes below host writes")
	}
	if st.NANDWrites != st.HostWrites+st.Relocated {
		t.Fatalf("nand %d != host %d + relocated %d", st.NANDWrites, st.HostWrites, st.Relocated)
	}
}

func TestHybridConfigDefaultsAndPanics(t *testing.T) {
	h := NewHybridFTL(HybridFTLConfig{LogicalBlocks: 100, PagesPerEraseBlock: 64})
	// Log capacity floors at one erase block.
	if h.logCap < 64 {
		t.Fatalf("logCap = %d", h.logCap)
	}
	for _, cfg := range []HybridFTLConfig{
		{LogicalBlocks: 0, PagesPerEraseBlock: 64},
		{LogicalBlocks: 64, PagesPerEraseBlock: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad config did not panic")
				}
			}()
			NewHybridFTL(cfg)
		}()
	}
}

func TestSSDMappingSelection(t *testing.T) {
	cfg := DefaultSSDConfig(1024)
	hybrid := NewSSD(cfg)
	if _, ok := hybrid.FTL.(*HybridFTL); !ok {
		t.Fatalf("default mapping = %T, want *HybridFTL", hybrid.FTL)
	}
	cfg.Mapping = MappingPage
	page := NewSSD(cfg)
	if _, ok := page.FTL.(*FTL); !ok {
		t.Fatalf("page mapping = %T, want *FTL", page.FTL)
	}
}

func BenchmarkHybridRandomWrite(b *testing.B) {
	h := NewHybridFTL(HybridFTLConfig{LogicalBlocks: 1 << 18, PagesPerEraseBlock: 512, Overprovision: 0.1})
	for lpn := uint64(0); lpn < h.LogicalBlocks(); lpn++ {
		h.Write(lpn)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Write(uint64(rng.Intn(1 << 18)))
	}
}
