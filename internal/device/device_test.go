package device

import (
	"testing"
	"time"

	"waflfs/internal/block"
)

func TestHDDChainCost(t *testing.T) {
	h := &HDD{Position: time.Millisecond, TransferPerBlock: 10 * time.Microsecond}
	one := h.WriteChain(0, 1)
	long := h.WriteChain(1, 100)
	if one != time.Millisecond+10*time.Microsecond {
		t.Fatalf("one-block chain = %v", one)
	}
	if long != time.Millisecond+time.Millisecond {
		t.Fatalf("100-block chain = %v", long)
	}
	// A long chain must be far cheaper than the same blocks as singles.
	if long >= 100*one {
		t.Fatal("chain not cheaper than scattered writes")
	}
	st := h.Stats()
	if st.WriteIOs != 2 || st.BlocksWritten != 101 {
		t.Fatalf("stats = %+v", st)
	}
	rd := h.Read(4)
	if rd != time.Millisecond+40*time.Microsecond {
		t.Fatalf("read = %v", rd)
	}
	if h.Stats().ReadIOs != 1 || h.Stats().BlocksRead != 4 {
		t.Fatalf("read stats = %+v", h.Stats())
	}
}

func TestSSDWriteChainChargesGC(t *testing.T) {
	cfg := DefaultSSDConfig(1 << 12)
	cfg.FTL.PagesPerEraseBlock = 64
	s := NewSSD(cfg)
	// Fill once sequentially: no GC, so each chain costs overhead + n*program.
	var before time.Duration
	for lpn := uint64(0); lpn < 1<<12; lpn += 64 {
		before = s.WriteChain(lpn, 64)
	}
	want := cfg.CommandOverhead + 64*cfg.ProgramPerBlock
	if before != want {
		t.Fatalf("no-GC chain = %v, want %v", before, want)
	}
	if s.WriteAmplification() != 1.0 {
		t.Fatalf("WA after sequential fill = %v", s.WriteAmplification())
	}
	st := s.Stats()
	if st.BlocksWritten != 1<<12 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSSDTrimReducesGCWork(t *testing.T) {
	mk := func() *SSD {
		cfg := DefaultSSDConfig(1 << 12)
		cfg.FTL.PagesPerEraseBlock = 64
		cfg.FTL.Overprovision = 0.08
		return NewSSD(cfg)
	}
	churn := func(s *SSD, trim bool) float64 {
		for lpn := uint64(0); lpn < 1<<12; lpn++ {
			s.WriteChain(lpn, 1)
		}
		// Overwrite random single blocks; optionally trim a region first.
		if trim {
			s.Trim(0, 1<<11)
		}
		r := uint64(12345)
		for i := 0; i < 1<<13; i++ {
			r = r*6364136223846793005 + 1442695040888963407
			s.WriteChain(r%(1<<12), 1)
		}
		return s.WriteAmplification()
	}
	with, without := churn(mk(), true), churn(mk(), false)
	if with >= without {
		t.Fatalf("WA with trim %v >= without %v", with, without)
	}
}

func TestSSDRead(t *testing.T) {
	s := NewSSD(DefaultSSDConfig(1024))
	d := s.Read(8)
	want := s.CommandOverhead + 8*s.ReadPerBlock
	if d != want {
		t.Fatalf("read = %v, want %v", d, want)
	}
}

func TestSMRSequentialAppend(t *testing.T) {
	s := NewSMR(1<<16, 1<<12)
	d1 := s.WriteChain(0, 100)
	if s.Interventions() != 0 {
		t.Fatal("sequential append intervened")
	}
	if s.WritePointer(0) != 100 {
		t.Fatalf("wp = %d", s.WritePointer(0))
	}
	// Continue at the write pointer: still clean.
	s.WriteChain(100, 100)
	if s.Interventions() != 0 {
		t.Fatal("continued append intervened")
	}
	// Forward gap: allowed, no intervention.
	s.WriteChain(1000, 10)
	if s.Interventions() != 0 {
		t.Fatal("forward-gap write intervened")
	}
	if s.WritePointer(0) != 1010 {
		t.Fatalf("wp after gap = %d", s.WritePointer(0))
	}
	_ = d1
}

func TestSMRRewriteIntervenes(t *testing.T) {
	s := NewSMR(1<<16, 1<<12)
	s.WriteChain(0, 1000)
	clean := s.WriteChain(1000, 100)
	// A small below-WP write is absorbed by the media cache...
	cached := s.WriteChain(500, 10)
	if s.Interventions() != 0 || s.MediaCacheWrites() != 1 {
		t.Fatalf("small rewrite: interventions=%d mediaCache=%d", s.Interventions(), s.MediaCacheWrites())
	}
	if cached <= s.Position {
		t.Fatalf("media-cache write %v unrealistically cheap", cached)
	}
	// ...but a large below-WP write forces a full intervention.
	dirty := s.WriteChain(100, 200)
	if s.Interventions() != 1 {
		t.Fatalf("interventions = %d", s.Interventions())
	}
	if dirty <= clean {
		t.Fatalf("intervened write %v not slower than clean %v", dirty, clean)
	}
}

func TestSMRZoneBoundaries(t *testing.T) {
	s := NewSMR(1<<16, 1<<12)
	// A chain spanning two zones advances both write pointers.
	s.WriteChain(1<<12-10, 20)
	if s.WritePointer(0) != 1<<12 || s.WritePointer(1) != 10 {
		t.Fatalf("wp0=%d wp1=%d", s.WritePointer(0), s.WritePointer(1))
	}
	if s.Interventions() != 0 {
		t.Fatal("boundary-spanning append intervened")
	}
	// Reset zone 1 and rewrite from its start: clean again.
	s.ResetZone(1)
	s.WriteChain(1<<12, 5)
	if s.Interventions() != 0 {
		t.Fatal("write after zone reset intervened")
	}
	if s.Stats().BlocksWritten != 25 {
		t.Fatalf("blocks written = %d", s.Stats().BlocksWritten)
	}
}

func TestSMRWriteOutOfRangePanics(t *testing.T) {
	s := NewSMR(100, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range SMR write did not panic")
		}
	}()
	s.WriteChain(95, 10)
}

func TestAZCSWritesAligned(t *testing.T) {
	// A chain covering exactly two whole regions: both checksum blocks
	// sequential.
	seq, rnd := AZCSWrites(0, 2*block.AZCSRegionBlocks)
	if seq != 2 || rnd != 0 {
		t.Fatalf("aligned: seq=%d rnd=%d", seq, rnd)
	}
}

func TestAZCSWritesUnaligned(t *testing.T) {
	// A chain ending mid-region forces a random checksum write for the
	// straddled region.
	seq, rnd := AZCSWrites(0, block.AZCSRegionBlocks+10)
	if seq != 1 || rnd != 1 {
		t.Fatalf("tail-straddle: seq=%d rnd=%d", seq, rnd)
	}
	// A chain starting mid-region: leading region is partial too.
	seq, rnd = AZCSWrites(10, 2*block.AZCSRegionBlocks-10)
	if seq != 1 || rnd != 1 {
		t.Fatalf("head-straddle: seq=%d rnd=%d", seq, rnd)
	}
	// Entirely inside one region.
	seq, rnd = AZCSWrites(5, 10)
	if seq != 0 || rnd != 1 {
		t.Fatalf("interior: seq=%d rnd=%d", seq, rnd)
	}
	// Empty chain.
	seq, rnd = AZCSWrites(5, 0)
	if seq != 0 || rnd != 0 {
		t.Fatalf("empty: seq=%d rnd=%d", seq, rnd)
	}
}

func TestAZCSDataDiskConversion(t *testing.T) {
	// Data indices skip checksum blocks: index 62 is the last data block of
	// region 0 (disk DBN 62); index 63 jumps to disk DBN 64.
	cases := []struct{ data, disk uint64 }{
		{0, 0}, {62, 62}, {63, 64}, {125, 126}, {126, 128},
	}
	for _, c := range cases {
		if got := DataToDiskDBN(c.data); got != c.disk {
			t.Errorf("DataToDiskDBN(%d) = %d, want %d", c.data, got, c.disk)
		}
		back, ok := DiskToDataDBN(c.disk)
		if !ok || back != c.data {
			t.Errorf("DiskToDataDBN(%d) = %d,%v, want %d", c.disk, back, ok, c.data)
		}
	}
	if _, ok := DiskToDataDBN(63); ok {
		t.Error("DBN 63 is a checksum block, conversion must fail")
	}
	if AZCSUsableFraction <= 0.98 || AZCSUsableFraction >= 1 {
		t.Errorf("usable fraction = %v", AZCSUsableFraction)
	}
}

func TestSMRRandomWriteIsWriteChain(t *testing.T) {
	a := NewSMR(1<<14, 1<<12)
	b := NewSMR(1<<14, 1<<12)
	d1 := a.WriteChain(100, 8)
	d2 := b.RandomWrite(100, 8)
	if d1 != d2 {
		t.Fatalf("RandomWrite %v != WriteChain %v", d2, d1)
	}
}
