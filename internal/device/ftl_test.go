package device

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallFTL() *FTL {
	return NewFTL(FTLConfig{LogicalBlocks: 4096, PagesPerEraseBlock: 64, Overprovision: 0.15})
}

func TestFTLBasicMapping(t *testing.T) {
	f := smallFTL()
	f.Write(10)
	if f.MappedPages() != 1 || f.LivePages() != 1 {
		t.Fatalf("mapped=%d live=%d", f.MappedPages(), f.LivePages())
	}
	f.Write(10) // overwrite invalidates old page
	if f.MappedPages() != 1 || f.LivePages() != 1 {
		t.Fatalf("after overwrite: mapped=%d live=%d", f.MappedPages(), f.LivePages())
	}
	st := f.Stats()
	if st.HostWrites != 2 || st.NANDWrites != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if wa := f.WriteAmplification(); wa != 1.0 {
		t.Fatalf("WA before GC = %v", wa)
	}
}

func TestFTLTrim(t *testing.T) {
	f := smallFTL()
	f.Write(5)
	f.Trim(5)
	if f.LivePages() != 0 || f.MappedPages() != 0 {
		t.Fatal("trim did not invalidate")
	}
	f.Trim(5) // idempotent
	if f.Stats().Trims != 2 {
		t.Fatal("trim count wrong")
	}
}

func TestFTLOutOfRangePanics(t *testing.T) {
	f := smallFTL()
	for name, fn := range map[string]func(){
		"Write": func() { f.Write(4096) },
		"Trim":  func() { f.Trim(4096) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFTLSequentialFillNoAmplification(t *testing.T) {
	f := smallFTL()
	// Fill the logical space once: no overwrites, so no GC work is needed
	// even though erase blocks seal.
	for lpn := uint64(0); lpn < f.LogicalBlocks(); lpn++ {
		f.Write(lpn)
	}
	if wa := f.WriteAmplification(); wa != 1.0 {
		t.Fatalf("sequential fill WA = %v, want 1.0", wa)
	}
	if f.LivePages() != f.LogicalBlocks() {
		t.Fatalf("live = %d", f.LivePages())
	}
}

func TestFTLSequentialOverwriteLowWA(t *testing.T) {
	f := smallFTL()
	// Fill, then overwrite sequentially several times. Sequential
	// overwrites invalidate whole erase blocks together, so greedy GC
	// finds empty victims and WA stays ~1.
	for round := 0; round < 4; round++ {
		for lpn := uint64(0); lpn < f.LogicalBlocks(); lpn++ {
			f.Write(lpn)
		}
	}
	if wa := f.WriteAmplification(); wa > 1.05 {
		t.Fatalf("sequential overwrite WA = %v, want ~1.0", wa)
	}
}

func TestFTLRandomOverwriteAmplifies(t *testing.T) {
	f := smallFTL()
	for lpn := uint64(0); lpn < f.LogicalBlocks(); lpn++ {
		f.Write(lpn)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 8*4096; i++ {
		f.Write(uint64(rng.Intn(4096)))
	}
	wa := f.WriteAmplification()
	if wa <= 1.2 {
		t.Fatalf("random overwrite WA = %v, expected substantial amplification", wa)
	}
	if wa > 10 {
		t.Fatalf("random overwrite WA = %v, implausibly high", wa)
	}
}

// The core claim behind SSD AA sizing (§3.2.2): writes directed at
// erase-block-sized-and-aligned regions whose contents were invalidated
// together produce much lower WA than scattered writes of the same volume.
func TestFTLClusteredInvalidationBeatsScattered(t *testing.T) {
	run := func(clustered bool) float64 {
		f := NewFTL(FTLConfig{LogicalBlocks: 1 << 14, PagesPerEraseBlock: 256, Overprovision: 0.1})
		n := f.LogicalBlocks()
		for lpn := uint64(0); lpn < n; lpn++ {
			f.Write(lpn)
		}
		rng := rand.New(rand.NewSource(7))
		if clustered {
			// Rewrite whole aligned 256-page regions, chosen at random.
			for i := 0; i < 256; i++ {
				base := uint64(rng.Intn(int(n/256))) * 256
				for o := uint64(0); o < 256; o++ {
					f.Write(base + o)
				}
			}
		} else {
			for i := 0; i < 256*256; i++ {
				f.Write(uint64(rng.Intn(int(n))))
			}
		}
		return f.WriteAmplification()
	}
	cl, sc := run(true), run(false)
	if cl >= sc {
		t.Fatalf("clustered WA %v >= scattered WA %v", cl, sc)
	}
	if cl > 1.1 {
		t.Fatalf("clustered WA %v, want near 1", cl)
	}
}

// Property: conservation — live pages always equal mapped pages, and never
// exceed the logical space; NAND writes ≥ host writes.
func TestFTLConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ftl := NewFTL(FTLConfig{LogicalBlocks: 2048, PagesPerEraseBlock: 64, Overprovision: 0.12})
		for i := 0; i < 20000; i++ {
			lpn := uint64(rng.Intn(2048))
			if rng.Intn(10) == 0 {
				ftl.Trim(lpn)
			} else {
				ftl.Write(lpn)
			}
			if i%1000 == 0 {
				if ftl.LivePages() != ftl.MappedPages() {
					return false
				}
			}
		}
		st := ftl.Stats()
		return ftl.LivePages() == ftl.MappedPages() &&
			ftl.LivePages() <= ftl.LogicalBlocks() &&
			st.NANDWrites >= st.HostWrites &&
			st.NANDWrites == st.HostWrites+st.Relocated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestFTLConfigValidation(t *testing.T) {
	bad := []FTLConfig{
		{LogicalBlocks: 0, PagesPerEraseBlock: 64},
		{LogicalBlocks: 64, PagesPerEraseBlock: 0},
		{LogicalBlocks: 64, PagesPerEraseBlock: 64, Overprovision: -0.1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			NewFTL(cfg)
		}()
	}
}

func BenchmarkFTLRandomWrite(b *testing.B) {
	f := NewFTL(FTLConfig{LogicalBlocks: 1 << 18, PagesPerEraseBlock: 512, Overprovision: 0.1})
	for lpn := uint64(0); lpn < f.LogicalBlocks(); lpn++ {
		f.Write(lpn)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Write(uint64(rng.Intn(1 << 18)))
	}
}
