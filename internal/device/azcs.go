package device

import "waflfs/internal/block"

// AZCS (advanced zone checksums) is the layout ONTAP uses when a device's
// sector size aligns exactly to 4KiB and per-block checksums cannot ride in
// 520-byte sectors: 63 consecutive data blocks use the 64th block as their
// shared checksum block (§3.2.4).
//
// The performance question the paper raises is whether checksum blocks are
// written as part of the sequential stream (the chain covers the whole
// region through its checksum block) or as separate random writes (the
// chain ends mid-region, so the corresponding checksum block must be
// updated with a nonsequential I/O — very harmful on SMR drives).

// AZCSWrites classifies the checksum-block updates implied by writing the
// DBN chain [start, start+n). It returns the number of checksum blocks that
// can be written sequentially with the chain (their whole data region is
// covered) and the number requiring a separate random write (region only
// partially covered).
//
// DBNs here address the full on-disk layout: region r occupies DBNs
// [r*64, r*64+64), with the last DBN of each region being its checksum
// block. Callers allocating only data blocks should convert with
// DataToDiskDBN first.
func AZCSWrites(start, n uint64) (sequential, random int) {
	if n == 0 {
		return 0, 0
	}
	end := start + n
	firstRegion := start / block.AZCSRegionBlocks
	lastRegion := (end - 1) / block.AZCSRegionBlocks
	for r := firstRegion; r <= lastRegion; r++ {
		rStart := r * block.AZCSRegionBlocks
		rDataEnd := rStart + block.AZCSRegionDataBlocks
		covered := overlap(start, end, rStart, rDataEnd)
		if covered == 0 {
			// Chain touches only the checksum block itself (rare edge);
			// treat as a sequential continuation.
			sequential++
			continue
		}
		if start <= rStart && end >= rDataEnd {
			sequential++
		} else {
			random++
		}
	}
	return sequential, random
}

func overlap(a0, a1, b0, b1 uint64) uint64 {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// DataToDiskDBN converts a data-block index (counting only data blocks) to
// its on-disk DBN in an AZCS layout, skipping over the interleaved checksum
// blocks.
func DataToDiskDBN(dataIdx uint64) uint64 {
	return dataIdx/block.AZCSRegionDataBlocks*block.AZCSRegionBlocks +
		dataIdx%block.AZCSRegionDataBlocks
}

// DiskToDataDBN converts an on-disk DBN back to a data-block index. It
// returns false if the DBN addresses a checksum block.
func DiskToDataDBN(dbn uint64) (uint64, bool) {
	region, off := dbn/block.AZCSRegionBlocks, dbn%block.AZCSRegionBlocks
	if off == block.AZCSRegionDataBlocks {
		return 0, false
	}
	return region*block.AZCSRegionDataBlocks + off, true
}

// AZCSUsableFraction is the fraction of raw capacity available for data
// under AZCS: 63 of every 64 blocks.
const AZCSUsableFraction = float64(block.AZCSRegionDataBlocks) / float64(block.AZCSRegionBlocks)
