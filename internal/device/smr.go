package device

import (
	"fmt"
	"time"

	"waflfs/internal/obs"
)

// SMR models a drive-managed shingled magnetic recording drive (§3.2.3).
//
// Tracks within a shingle zone overlap, so the drive can only append at each
// zone's write pointer without extra work. A write below the write pointer
// (into already-shingled tracks) would corrupt subsequent tracks, so the
// drive must intervene: read and rewrite the rest of the zone in place, or
// remap the write out of place and garbage-collect later. Either way the
// host observes a large penalty; we charge InterventionPenalty and count the
// event. A write at or past the write pointer is a cheap sequential append.
type SMR struct {
	// ZoneBlocks is the shingle-zone size in 4KiB blocks. The size of a
	// shingle zone is unrelated to (and different from) an SSD erase block
	// (§3.2.4); 64MiB zones (16384 blocks) are representative.
	ZoneBlocks uint64
	// Position and TransferPerBlock are as for HDD.
	Position         time.Duration
	TransferPerBlock time.Duration
	// InterventionPenalty is charged whenever a large write lands below a
	// zone's write pointer and the drive must preserve the shingled data
	// (read-modify-write or out-of-place remap plus eventual GC).
	InterventionPenalty time.Duration
	// MediaCacheMaxBlocks is the largest below-write-pointer write the
	// drive absorbs in its persistent media cache instead of intervening
	// immediately; drive-managed SMR drives stage small random writes this
	// way. MediaCachePenalty is the extra cost of such a staged write.
	MediaCacheMaxBlocks uint64
	MediaCachePenalty   time.Duration

	blocks uint64
	wp     []uint64 // per-zone write pointer (offset within zone)

	stats            DiskStats
	hist             *obs.Histogram
	interventions    uint64
	mediaCacheWrites uint64
}

// SetBusyHist attaches a per-I/O service-time histogram (nil detaches).
func (s *SMR) SetBusyHist(hist *obs.Histogram) { s.hist = hist }

// NewSMR builds an SMR model over a DBN space of the given size.
func NewSMR(blocks, zoneBlocks uint64) *SMR {
	if zoneBlocks == 0 || blocks == 0 {
		panic("device: SMR requires non-zero size and zone size")
	}
	zones := (blocks + zoneBlocks - 1) / zoneBlocks
	return &SMR{
		ZoneBlocks:          zoneBlocks,
		Position:            8 * time.Millisecond,
		TransferPerBlock:    22 * time.Microsecond,
		InterventionPenalty: 60 * time.Millisecond,
		MediaCacheMaxBlocks: 64,
		MediaCachePenalty:   3 * time.Millisecond,
		blocks:              blocks,
		wp:                  make([]uint64, zones),
	}
}

// Zones returns the number of shingle zones.
func (s *SMR) Zones() int { return len(s.wp) }

// WriteChain writes n consecutive blocks starting at DBN start, returning
// the service time. The chain is split at zone boundaries; each zone segment
// is classified against that zone's write pointer.
func (s *SMR) WriteChain(start, n uint64) time.Duration {
	if start+n > s.blocks {
		panic(fmt.Sprintf("device: SMR write [%d,%d) outside %d blocks", start, start+n, s.blocks))
	}
	total := n
	var d time.Duration
	d += s.Position
	for n > 0 {
		zone := start / s.ZoneBlocks
		off := start % s.ZoneBlocks
		seg := s.ZoneBlocks - off
		if seg > n {
			seg = n
		}
		if off < s.wp[zone] {
			if total <= s.MediaCacheMaxBlocks {
				// Small random update: staged in the drive's persistent
				// media cache and folded into the shingle later.
				s.mediaCacheWrites++
				d += s.MediaCachePenalty
			} else {
				// Writing into already-shingled tracks: drive intervention.
				s.interventions++
				d += s.InterventionPenalty
			}
			// The write pointer does not advance past its high-water mark
			// unless this segment extends beyond it.
			if off+seg > s.wp[zone] {
				s.wp[zone] = off + seg
			}
		} else {
			// Sequential append (a gap between wp and off is allowed:
			// drive-managed drives pad or remap silently and cheaply when
			// writing forward).
			s.wp[zone] = off + seg
		}
		d += time.Duration(seg) * s.TransferPerBlock
		start += seg
		n -= seg
	}
	s.stats.WriteIOs++
	s.stats.BlocksWritten += total
	s.stats.BusyTime += d
	s.hist.ObserveDuration(d)
	return d
}

// RandomWrite writes n blocks at start as an isolated random I/O (used for
// out-of-band checksum-block updates); it pays positioning plus the same
// zone classification as WriteChain.
func (s *SMR) RandomWrite(start, n uint64) time.Duration {
	return s.WriteChain(start, n)
}

// Read returns the service time for one read I/O of n consecutive blocks.
func (s *SMR) Read(n uint64) time.Duration {
	d := s.Position + time.Duration(n)*s.TransferPerBlock
	s.stats.ReadIOs++
	s.stats.BlocksRead += n
	s.stats.BusyTime += d
	s.hist.ObserveDuration(d)
	return d
}

// ResetZone rewinds a zone's write pointer (the analogue of the host
// freeing and reusing an entire zone-aligned region).
func (s *SMR) ResetZone(zone int) {
	s.wp[zone] = 0
}

// WritePointer returns zone's current write pointer offset.
func (s *SMR) WritePointer(zone int) uint64 { return s.wp[zone] }

// Interventions returns how many writes required drive intervention.
func (s *SMR) Interventions() uint64 { return s.interventions }

// MediaCacheWrites returns how many small below-write-pointer writes the
// drive staged in its media cache.
func (s *SMR) MediaCacheWrites() uint64 { return s.mediaCacheWrites }

// Stats returns the drive's lifetime I/O accounting.
func (s *SMR) Stats() DiskStats { return s.stats }
