// Package device models the storage media beneath a RAID group: HDDs
// (seek + transfer cost), SSDs with a page-mapped flash translation layer
// (erase blocks, greedy garbage collection, overprovisioning, and
// write-amplification accounting), and drive-managed SMR drives (shingle
// zones and zone-intervention cost), plus the AZCS checksum-region layout.
//
// The paper's media-aware AA sizing results (Figs. 6, 8, 9) are all about
// how the allocator's choice of region interacts with these device
// mechanisms, so the models here are stateful simulations, not constants:
// the SSD's write amplification emerges from the FTL's garbage collection
// under the actual write stream the allocator produces.
package device

import "fmt"

// FTL is a page-mapped flash translation layer (§3.2.2 of the paper).
//
// The exported logical space has LogicalBlocks pages; the physical media has
// more, the extra fraction being the drive's overprovisioning (OP). Writes
// append to the active erase block. When the pool of empty erase blocks runs
// low, greedy garbage collection picks the erase block with the fewest valid
// pages, relocates those pages, and erases it. The ratio of pages actually
// programmed to pages written by the host is the write amplification.
//
// A page becomes invalid when its logical block is overwritten or trimmed;
// exactly as with a real drive, a block the file system has freed but not
// rewritten or trimmed still looks valid to the FTL and must be relocated by
// GC. This is why directing writes at the emptiest erase-block-aligned
// regions reduces relocation: invalidations cluster into whole erase blocks.
type FTL struct {
	logicalBlocks uint64
	ebPages       uint64 // pages per erase block
	numEB         int

	// l2p maps logical page -> physical page index, or -1 if unmapped.
	l2p []int64
	// p2l maps physical page -> logical page, or -1 if the slot is invalid
	// or erased.
	p2l []int64
	// valid counts valid pages per erase block.
	valid []uint32
	// state per erase block.
	sealed []bool // fully written, candidate for GC

	freeEBs   []int // fully erased erase blocks
	activeEB  int   // erase block currently being filled
	activePos uint64

	// gcReserve is the number of empty erase blocks GC maintains; writing
	// stalls into GC when the free pool drops to this level.
	gcReserve int

	hostWrites uint64 // pages written by the host
	nandWrites uint64 // pages programmed on media (host + relocation)
	relocated  uint64 // pages moved by GC
	erases     uint64 // erase-block erasures
	trims      uint64
}

// FTLConfig configures an FTL simulation.
type FTLConfig struct {
	// LogicalBlocks is the size of the exported LBA space in 4KiB pages.
	LogicalBlocks uint64
	// PagesPerEraseBlock is the erase-block size in pages. Real SSD erase
	// blocks are a few MiB; 512 pages = 2MiB is a representative default.
	PagesPerEraseBlock uint64
	// Overprovision is the hidden capacity fraction (e.g. 0.10 = 10%).
	// Enterprise drives hide up to 30% (§3.2.2).
	Overprovision float64
	// GCReserve is the number of empty erase blocks below which writes
	// trigger garbage collection. Defaults to 2.
	GCReserve int
}

// NewFTL builds an FTL with the given configuration.
func NewFTL(cfg FTLConfig) *FTL {
	if cfg.LogicalBlocks == 0 || cfg.PagesPerEraseBlock == 0 {
		panic("device: FTL requires non-zero logical size and erase-block size")
	}
	if cfg.Overprovision < 0 {
		panic("device: negative overprovisioning")
	}
	if cfg.GCReserve <= 0 {
		cfg.GCReserve = 2
	}
	physPages := uint64(float64(cfg.LogicalBlocks)*(1+cfg.Overprovision)) + cfg.PagesPerEraseBlock
	numEB := int((physPages + cfg.PagesPerEraseBlock - 1) / cfg.PagesPerEraseBlock)
	if numEB < cfg.GCReserve+2 {
		numEB = cfg.GCReserve + 2
	}
	f := &FTL{
		logicalBlocks: cfg.LogicalBlocks,
		ebPages:       cfg.PagesPerEraseBlock,
		numEB:         numEB,
		l2p:           make([]int64, cfg.LogicalBlocks),
		p2l:           make([]int64, uint64(numEB)*cfg.PagesPerEraseBlock),
		valid:         make([]uint32, numEB),
		sealed:        make([]bool, numEB),
		gcReserve:     cfg.GCReserve,
	}
	for i := range f.l2p {
		f.l2p[i] = -1
	}
	for i := range f.p2l {
		f.p2l[i] = -1
	}
	for eb := numEB - 1; eb >= 1; eb-- {
		f.freeEBs = append(f.freeEBs, eb)
	}
	f.activeEB = 0
	return f
}

// LogicalBlocks returns the exported LBA-space size in pages.
func (f *FTL) LogicalBlocks() uint64 { return f.logicalBlocks }

// EraseBlockPages returns the erase-block size in pages.
func (f *FTL) EraseBlockPages() uint64 { return f.ebPages }

func (f *FTL) invalidate(lpn uint64) {
	old := f.l2p[lpn]
	if old < 0 {
		return
	}
	eb := uint64(old) / f.ebPages
	f.p2l[old] = -1
	f.valid[eb]--
	f.l2p[lpn] = -1
}

// program places lpn at the active write position, advancing it and sealing
// the erase block when full. It returns having charged one NAND write.
func (f *FTL) program(lpn uint64) {
	if f.activePos == f.ebPages {
		f.sealed[f.activeEB] = true
		f.activeEB = f.takeFreeEB()
		f.activePos = 0
	}
	ppn := uint64(f.activeEB)*f.ebPages + f.activePos
	f.activePos++
	f.p2l[ppn] = int64(lpn)
	f.l2p[lpn] = int64(ppn)
	f.valid[f.activeEB]++
	f.nandWrites++
}

func (f *FTL) takeFreeEB() int {
	if len(f.freeEBs) == 0 {
		panic("device: FTL out of erase blocks (GC failed to reclaim)")
	}
	eb := f.freeEBs[len(f.freeEBs)-1]
	f.freeEBs = f.freeEBs[:len(f.freeEBs)-1]
	f.sealed[eb] = false
	return eb
}

// Write records a host write of logical page lpn. It returns the number of
// pages garbage collection relocated as a consequence of this write (0 when
// no GC ran).
func (f *FTL) Write(lpn uint64) (relocated uint64) {
	if lpn >= f.logicalBlocks {
		panic(fmt.Sprintf("device: LPN %d outside logical space %d", lpn, f.logicalBlocks))
	}
	f.hostWrites++
	f.invalidate(lpn)
	f.program(lpn)
	return f.gc()
}

// Trim tells the FTL that logical page lpn no longer holds live data (e.g.
// an UNMAP/deallocate from the host). The page's physical slot becomes
// invalid immediately, so GC will not relocate it.
func (f *FTL) Trim(lpn uint64) {
	if lpn >= f.logicalBlocks {
		panic(fmt.Sprintf("device: LPN %d outside logical space %d", lpn, f.logicalBlocks))
	}
	f.trims++
	f.invalidate(lpn)
}

// gc reclaims erase blocks until the free pool is above the reserve,
// returning the number of relocated pages.
func (f *FTL) gc() (relocated uint64) {
	for len(f.freeEBs) < f.gcReserve {
		victim := f.pickVictim()
		if victim < 0 {
			return relocated
		}
		base := uint64(victim) * f.ebPages
		for p := base; p < base+f.ebPages; p++ {
			if lpn := f.p2l[p]; lpn >= 0 {
				// Relocate the still-valid page.
				f.p2l[p] = -1
				f.valid[victim]--
				f.l2p[lpn] = -1
				f.program(uint64(lpn))
				relocated++
			}
		}
		f.sealed[victim] = false
		f.freeEBs = append(f.freeEBs, victim)
		f.erases++
	}
	f.relocated += relocated
	return relocated
}

// pickVictim selects the sealed erase block with the fewest valid pages
// (greedy GC). Returns -1 if no sealed block exists.
func (f *FTL) pickVictim() int {
	best, bestValid := -1, uint32(0)
	for eb := 0; eb < f.numEB; eb++ {
		if !f.sealed[eb] {
			continue
		}
		if best < 0 || f.valid[eb] < bestValid {
			best, bestValid = eb, f.valid[eb]
		}
	}
	if best >= 0 && uint64(bestValid) == f.ebPages {
		// Every sealed block is fully valid: relocating would make no
		// progress. Leave GC to a later write once invalidations arrive.
		return -1
	}
	return best
}

// FTLStats is a snapshot of the FTL's lifetime accounting.
type FTLStats struct {
	HostWrites uint64 // pages written by the host
	NANDWrites uint64 // pages programmed on media
	Relocated  uint64 // pages relocated by GC
	Erases     uint64 // erase operations
	Trims      uint64
}

// Stats returns the FTL counters.
func (f *FTL) Stats() FTLStats {
	return FTLStats{
		HostWrites: f.hostWrites,
		NANDWrites: f.nandWrites,
		Relocated:  f.relocated,
		Erases:     f.erases,
		Trims:      f.trims,
	}
}

// WriteAmplification returns NAND writes / host writes; 1.0 is ideal
// (§3.2.2). Returns 0 before any host write.
func (f *FTL) WriteAmplification() float64 {
	if f.hostWrites == 0 {
		return 0
	}
	return float64(f.nandWrites) / float64(f.hostWrites)
}

// LivePages returns the number of currently valid (mapped) pages; used by
// tests to verify conservation.
func (f *FTL) LivePages() uint64 {
	var n uint64
	for _, v := range f.valid {
		n += uint64(v)
	}
	return n
}

// MappedPages returns the number of logical pages with a current mapping.
func (f *FTL) MappedPages() uint64 {
	var n uint64
	for _, p := range f.l2p {
		if p >= 0 {
			n++
		}
	}
	return n
}
