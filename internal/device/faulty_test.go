package device

import (
	"testing"
	"time"
)

func TestFaultyDiskInjectsEveryNth(t *testing.T) {
	inner := &HDD{Position: time.Millisecond, TransferPerBlock: time.Microsecond}
	f := &FaultyDisk{Inner: inner, Every: 3, Penalty: 10 * time.Millisecond}

	clean := inner.Position + time.Microsecond
	var total time.Duration
	for i := 1; i <= 9; i++ {
		d := f.Read(1)
		total += d
		want := clean
		if i%3 == 0 {
			want += 10 * time.Millisecond
		}
		if d != want {
			t.Fatalf("read %d: d = %v, want %v", i, d, want)
		}
	}
	st := f.Stats()
	if st.ReadErrors != 3 {
		t.Fatalf("ReadErrors = %d, want 3", st.ReadErrors)
	}
	if st.ReadIOs != 9 {
		t.Fatalf("ReadIOs = %d, want 9", st.ReadIOs)
	}
	if st.BusyTime != total {
		t.Fatalf("BusyTime = %v, want %v (penalties included)", st.BusyTime, total)
	}
	// Writes pass through untouched.
	if d := f.WriteChain(0, 4); d != inner.Position+4*time.Microsecond {
		t.Fatalf("WriteChain = %v", d)
	}
}

func TestFaultyDiskDisabledAndDefaults(t *testing.T) {
	inner := DefaultHDD()
	f := &FaultyDisk{Inner: inner} // Every == 0: inert
	for i := 0; i < 10; i++ {
		f.Read(1)
	}
	if st := f.Stats(); st.ReadErrors != 0 || st.BusyTime != inner.Stats().BusyTime {
		t.Fatalf("disabled wrapper injected: %+v", st)
	}

	f2 := &FaultyDisk{Inner: DefaultHDD(), Every: 1} // default penalty
	clean := f2.Inner.(*HDD).Position + f2.Inner.(*HDD).TransferPerBlock
	if d := f2.Read(1); d != clean+DefaultReadErrorPenalty {
		t.Fatalf("default penalty: %v", d)
	}
}

func TestFaultyDiskForwardsTrim(t *testing.T) {
	ssd := NewSSD(DefaultSSDConfig(1 << 12))
	f := &FaultyDisk{Inner: ssd, Every: 2}
	f.WriteChain(0, 8)
	f.Trim(0, 8) // must reach the FTL without panicking
	// An HDD has no Trim; forwarding must be a no-op.
	f2 := &FaultyDisk{Inner: DefaultHDD()}
	f2.Trim(0, 8)
}
