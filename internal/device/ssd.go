package device

import (
	"time"

	"waflfs/internal/obs"
)

// SSD couples the FTL simulation with a timing model. Host writes cost the
// flash program time; pages the FTL's garbage collection relocates as a
// consequence cost an additional read + program each, which is how write
// amplification turns into latency and lost throughput (§3.2.2, §4.3).
type SSD struct {
	FTL Translator
	// CommandOverhead is the fixed per-I/O cost (interface + firmware).
	CommandOverhead time.Duration
	// ProgramPerBlock is the NAND program time per 4KiB page.
	ProgramPerBlock time.Duration
	// ReadPerBlock is the NAND read time per 4KiB page.
	ReadPerBlock time.Duration

	stats DiskStats
	hist  *obs.Histogram
}

// SetBusyHist attaches a per-I/O service-time histogram (nil detaches).
func (s *SSD) SetBusyHist(hist *obs.Histogram) { s.hist = hist }

// Mapping selects the FTL model an SSD uses.
type Mapping int

const (
	// MappingHybrid is the log-plus-merge hybrid FTL (HybridFTL), the
	// default: it exhibits the erase-block merge economics §3.2.2 relies
	// on, and matches the write-amplification behaviour the paper measures.
	MappingHybrid Mapping = iota
	// MappingPage is the fully page-mapped FTL with greedy GC.
	MappingPage
)

// SSDConfig configures an SSD model.
type SSDConfig struct {
	FTL             FTLConfig
	Mapping         Mapping
	CommandOverhead time.Duration
	ProgramPerBlock time.Duration
	ReadPerBlock    time.Duration
}

// DefaultSSDConfig returns a model of an enterprise SATA/SAS SSD with the
// given logical capacity in 4KiB blocks: 2MiB erase blocks, 10%
// overprovisioning, ~100µs program and ~60µs read per page, 20µs command
// overhead.
func DefaultSSDConfig(logicalBlocks uint64) SSDConfig {
	return SSDConfig{
		FTL: FTLConfig{
			LogicalBlocks:      logicalBlocks,
			PagesPerEraseBlock: 512,
			Overprovision:      0.10,
		},
		CommandOverhead: 20 * time.Microsecond,
		ProgramPerBlock: 100 * time.Microsecond,
		ReadPerBlock:    60 * time.Microsecond,
	}
}

// NewSSD builds an SSD from cfg.
func NewSSD(cfg SSDConfig) *SSD {
	var tr Translator
	switch cfg.Mapping {
	case MappingPage:
		tr = NewFTL(cfg.FTL)
	default:
		tr = NewHybridFTL(HybridFTLConfig{
			LogicalBlocks:      cfg.FTL.LogicalBlocks,
			PagesPerEraseBlock: cfg.FTL.PagesPerEraseBlock,
			Overprovision:      cfg.FTL.Overprovision,
		})
	}
	return &SSD{
		FTL:             tr,
		CommandOverhead: cfg.CommandOverhead,
		ProgramPerBlock: cfg.ProgramPerBlock,
		ReadPerBlock:    cfg.ReadPerBlock,
	}
}

// WriteChain writes n consecutive logical blocks starting at start and
// returns the service time, including any garbage-collection work the
// writes triggered inside the drive.
func (s *SSD) WriteChain(start, n uint64) time.Duration {
	var relocated uint64
	for lpn := start; lpn < start+n; lpn++ {
		relocated += s.FTL.Write(lpn)
	}
	d := s.CommandOverhead +
		time.Duration(n)*s.ProgramPerBlock +
		time.Duration(relocated)*(s.ReadPerBlock+s.ProgramPerBlock)
	s.stats.WriteIOs++
	s.stats.BlocksWritten += n
	s.stats.BusyTime += d
	s.hist.ObserveDuration(d)
	return d
}

// Read returns the service time for one read I/O of n blocks.
func (s *SSD) Read(n uint64) time.Duration {
	d := s.CommandOverhead + time.Duration(n)*s.ReadPerBlock
	s.stats.ReadIOs++
	s.stats.BlocksRead += n
	s.stats.BusyTime += d
	s.hist.ObserveDuration(d)
	return d
}

// Trim forwards a deallocation for n blocks starting at start to the FTL.
func (s *SSD) Trim(start, n uint64) {
	for lpn := start; lpn < start+n; lpn++ {
		s.FTL.Trim(lpn)
	}
}

// WriteAmplification reports the drive's current write amplification.
func (s *SSD) WriteAmplification() float64 { return s.FTL.WriteAmplification() }

// Stats returns the drive's lifetime I/O accounting.
func (s *SSD) Stats() DiskStats { return s.stats }
