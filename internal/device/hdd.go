package device

import (
	"time"

	"waflfs/internal/obs"
)

// HDD is an analytic cost model of a hard drive. A write or read I/O pays a
// positioning cost (seek + rotational latency) once and then a per-block
// sequential transfer cost — which is exactly why long write chains (§2.4)
// matter: a chain of n consecutive blocks costs one position plus n
// transfers, whereas n scattered blocks cost n positions.
type HDD struct {
	// Position is the average positioning time per I/O.
	Position time.Duration
	// TransferPerBlock is the sequential transfer time for one 4KiB block.
	TransferPerBlock time.Duration

	stats DiskStats
	hist  *obs.Histogram
}

// SetBusyHist attaches a per-I/O service-time histogram (nil detaches).
func (h *HDD) SetBusyHist(hist *obs.Histogram) { h.hist = hist }

// DiskStats records the I/O a disk model has served.
type DiskStats struct {
	WriteIOs      uint64
	BlocksWritten uint64
	ReadIOs       uint64
	BlocksRead    uint64
	BusyTime      time.Duration
	// ReadErrors counts read I/Os that hit an injected media error and
	// paid the RAID-reconstruction penalty (FaultyDisk wrapping).
	ReadErrors uint64
}

// DefaultHDD returns a model of a 7.2k-RPM SAS drive: ~8ms average
// positioning, ~150MiB/s sequential transfer (≈26µs per 4KiB block).
func DefaultHDD() *HDD {
	return &HDD{Position: 8 * time.Millisecond, TransferPerBlock: 26 * time.Microsecond}
}

// WriteChain returns the service time for one write I/O of n consecutive
// blocks starting at DBN start, and records it. The model charges average
// positioning per I/O, so start does not affect the cost; it is accepted so
// all device models share one signature.
func (h *HDD) WriteChain(start, n uint64) time.Duration {
	_ = start
	d := h.Position + time.Duration(n)*h.TransferPerBlock
	h.stats.WriteIOs++
	h.stats.BlocksWritten += n
	h.stats.BusyTime += d
	h.hist.ObserveDuration(d)
	return d
}

// Read returns the service time for one read I/O of n consecutive blocks.
func (h *HDD) Read(n uint64) time.Duration {
	d := h.Position + time.Duration(n)*h.TransferPerBlock
	h.stats.ReadIOs++
	h.stats.BlocksRead += n
	h.stats.BusyTime += d
	h.hist.ObserveDuration(d)
	return d
}

// Stats returns the drive's lifetime I/O accounting.
func (h *HDD) Stats() DiskStats { return h.stats }
