package device

import "waflfs/internal/obs"

// BusyObserver is implemented by device models that can stream per-I/O
// service times into an observability histogram. The histogram pointer may
// stay nil (the default): obs instruments are nil-safe, so an unattached
// model pays one branch per I/O.
type BusyObserver interface {
	SetBusyHist(h *obs.Histogram)
}
