package device

import "fmt"

// Translator is the interface both FTL models implement; SSD composes one.
type Translator interface {
	// Write records a host write of logical page lpn, returning the number
	// of pages the FTL had to relocate/copy as a consequence.
	Write(lpn uint64) (relocated uint64)
	// Trim invalidates logical page lpn.
	Trim(lpn uint64)
	// Stats returns lifetime accounting.
	Stats() FTLStats
	// WriteAmplification returns NAND/host writes (0 before any write).
	WriteAmplification() float64
	// LogicalBlocks returns the exported LBA-space size in pages.
	LogicalBlocks() uint64
}

var (
	_ Translator = (*FTL)(nil)
	_ Translator = (*HybridFTL)(nil)
)

// HybridFTL models a log-structured hybrid-mapped flash translation layer
// (FAST/BAST family): the drive keeps a small page-mapped log area
// (overprovisioned space) and data blocks mapped at erase-block
// granularity. Host writes append to the log; when the log fills, the FTL
// merges a victim logical erase block: the log's pages for that block plus
// every still-valid page of its home erase block are rewritten into a fresh
// erase block.
//
// This is the FTL behaviour §3.2.2 (Fig. 4 A) describes — "the FTL must
// first relocate all active data in the erase block elsewhere on the drive
// and then erase the entire block before writing new data there" — and it
// is what makes AA sizing matter: writing all free pages of an
// erase-block-multiple region dirties whole erase blocks, so merges copy
// little (a "switch merge" copies nothing), whereas writes scattered at
// sub-erase-block granularity force merges that copy most of the block.
type HybridFTL struct {
	logicalBlocks uint64
	ebPages       uint64
	numLEB        int

	// Per logical page state, packed as bitsets indexed by lpn.
	live  []uint64 // page's current data lives in its home erase block
	dirty []uint64 // page's current data lives in the log

	// Per logical erase block occupancy.
	dirtyCount []uint32 // pages currently dirty (latest version in log)
	logPages   []uint32 // log pages consumed (including superseded ones)

	logUsed uint64
	logCap  uint64

	hostWrites uint64
	nandWrites uint64
	relocated  uint64
	erases     uint64
	trims      uint64
	merges     uint64
	switchMrgs uint64
}

// HybridFTLConfig configures a HybridFTL.
type HybridFTLConfig struct {
	// LogicalBlocks is the exported LBA space in pages.
	LogicalBlocks uint64
	// PagesPerEraseBlock is the erase-block (merge) granularity.
	PagesPerEraseBlock uint64
	// Overprovision sizes the log area as a fraction of the logical space.
	Overprovision float64
}

// NewHybridFTL builds the model.
func NewHybridFTL(cfg HybridFTLConfig) *HybridFTL {
	if cfg.LogicalBlocks == 0 || cfg.PagesPerEraseBlock == 0 {
		panic("device: hybrid FTL requires non-zero sizes")
	}
	if cfg.Overprovision <= 0 {
		cfg.Overprovision = 0.07
	}
	numLEB := int((cfg.LogicalBlocks + cfg.PagesPerEraseBlock - 1) / cfg.PagesPerEraseBlock)
	logCap := uint64(float64(cfg.LogicalBlocks) * cfg.Overprovision)
	if logCap < cfg.PagesPerEraseBlock {
		logCap = cfg.PagesPerEraseBlock
	}
	words := (cfg.LogicalBlocks + 63) / 64
	return &HybridFTL{
		logicalBlocks: cfg.LogicalBlocks,
		ebPages:       cfg.PagesPerEraseBlock,
		numLEB:        numLEB,
		live:          make([]uint64, words),
		dirty:         make([]uint64, words),
		dirtyCount:    make([]uint32, numLEB),
		logPages:      make([]uint32, numLEB),
		logCap:        logCap,
	}
}

// LogicalBlocks implements Translator.
func (h *HybridFTL) LogicalBlocks() uint64 { return h.logicalBlocks }

// EraseBlockPages returns the merge granularity in pages.
func (h *HybridFTL) EraseBlockPages() uint64 { return h.ebPages }

func getBit(bs []uint64, i uint64) bool { return bs[i/64]&(1<<(i%64)) != 0 }
func setBit(bs []uint64, i uint64)      { bs[i/64] |= 1 << (i % 64) }
func clearBit(bs []uint64, i uint64)    { bs[i/64] &^= 1 << (i % 64) }

// Write implements Translator.
func (h *HybridFTL) Write(lpn uint64) (relocated uint64) {
	if lpn >= h.logicalBlocks {
		panic(fmt.Sprintf("device: LPN %d outside logical space %d", lpn, h.logicalBlocks))
	}
	h.hostWrites++
	h.nandWrites++ // program into the log
	leb := lpn / h.ebPages
	if !getBit(h.dirty, lpn) {
		setBit(h.dirty, lpn)
		h.dirtyCount[leb]++
	}
	h.logPages[leb]++
	h.logUsed++
	for h.logUsed > h.logCap {
		relocated += h.merge(h.pickVictim())
	}
	return relocated
}

// pickVictim selects the logical erase block occupying the most log pages.
func (h *HybridFTL) pickVictim() int {
	best, bestN := -1, uint32(0)
	for i, n := range h.logPages {
		if n > bestN {
			best, bestN = i, n
		}
	}
	if best < 0 {
		panic("device: hybrid FTL log full with no occupants")
	}
	return best
}

// merge folds logical erase block leb's log pages into a fresh home erase
// block, copying every live page that is not superseded by the log.
func (h *HybridFTL) merge(leb int) (copied uint64) {
	base := uint64(leb) * h.ebPages
	end := base + h.ebPages
	if end > h.logicalBlocks {
		end = h.logicalBlocks
	}
	for lpn := base; lpn < end; lpn++ {
		switch {
		case getBit(h.dirty, lpn):
			// Latest version comes from the log: it is rewritten into the
			// new home block. (The program is charged, matching a real
			// merge; a pure switch merge has no such pages copied from
			// home, only log pages adopted — modeled below.)
			clearBit(h.dirty, lpn)
			setBit(h.live, lpn)
		case getBit(h.live, lpn):
			// Valid page only in the old home block: copy it.
			copied++
		}
	}
	if copied == 0 {
		// Switch merge: the log block(s) become the home block; no data
		// moves and no extra programs happen.
		h.switchMrgs++
	} else {
		h.nandWrites += copied
		h.relocated += copied
	}
	h.merges++
	h.erases++
	h.logUsed -= uint64(h.logPages[leb])
	h.logPages[leb] = 0
	h.dirtyCount[leb] = 0
	return copied
}

// Trim implements Translator.
func (h *HybridFTL) Trim(lpn uint64) {
	if lpn >= h.logicalBlocks {
		panic(fmt.Sprintf("device: LPN %d outside logical space %d", lpn, h.logicalBlocks))
	}
	h.trims++
	leb := lpn / h.ebPages
	if getBit(h.dirty, lpn) {
		clearBit(h.dirty, lpn)
		h.dirtyCount[leb]--
	}
	clearBit(h.live, lpn)
}

// Stats implements Translator.
func (h *HybridFTL) Stats() FTLStats {
	return FTLStats{
		HostWrites: h.hostWrites,
		NANDWrites: h.nandWrites,
		Relocated:  h.relocated,
		Erases:     h.erases,
		Trims:      h.trims,
	}
}

// Merges returns (total merges, switch merges).
func (h *HybridFTL) Merges() (total, switches uint64) { return h.merges, h.switchMrgs }

// WriteAmplification implements Translator.
func (h *HybridFTL) WriteAmplification() float64 {
	if h.hostWrites == 0 {
		return 0
	}
	return float64(h.nandWrites) / float64(h.hostWrites)
}

// LogUsed returns the current log occupancy in pages (for tests).
func (h *HybridFTL) LogUsed() uint64 { return h.logUsed }
