package workload

import (
	"math/rand"
	"testing"

	"waflfs/internal/aa"
	"waflfs/internal/wafl"
)

func newTestSystem(t *testing.T) (*wafl.System, *wafl.LUN) {
	t.Helper()
	tun := wafl.DefaultTunables()
	tun.CPEveryOps = 256
	specs := []wafl.GroupSpec{
		{DataDevices: 3, ParityDevices: 1, BlocksPerDevice: 1 << 15, Media: aa.MediaHDD, StripesPerAA: 256},
	}
	s := wafl.NewSystem(specs, []wafl.VolSpec{{Name: "v", Blocks: 2 * aa.RAIDAgnosticBlocks}}, tun, 1)
	lun := s.Agg.Vols()[0].CreateLUN("l", 40000)
	return s, lun
}

func TestSequentialFill(t *testing.T) {
	s, lun := newTestSystem(t)
	SequentialFill(s, lun, 1)
	s.CP()
	for lba := uint64(0); lba < lun.Blocks(); lba++ {
		if !lun.Written(lba) {
			t.Fatalf("lba %d unwritten after fill", lba)
		}
	}
	if s.Agg.Bitmap().Used() != lun.Blocks() {
		t.Fatalf("used = %d", s.Agg.Bitmap().Used())
	}
}

func TestSequentialFillMultiBlock(t *testing.T) {
	s, lun := newTestSystem(t)
	SequentialFill(s, lun, 8)
	s.CP()
	// 40000 is divisible by 8, so everything is written.
	if s.Agg.Bitmap().Used() != lun.Blocks() {
		t.Fatalf("used = %d, want %d", s.Agg.Bitmap().Used(), lun.Blocks())
	}
}

func TestRandomOverwriteFrees(t *testing.T) {
	s, lun := newTestSystem(t)
	SequentialFill(s, lun, 1)
	s.CP()
	rng := rand.New(rand.NewSource(2))
	RandomOverwrite(s, []*wafl.LUN{lun}, rng, 5000, 1)
	s.CP()
	c := s.Counters()
	// Every overwrite of a written block frees the old copy.
	if c.BlocksFreed < 4500 {
		t.Fatalf("freed = %d, want ~5000 (COW overwrites)", c.BlocksFreed)
	}
	// Usage unchanged: same logical content.
	if s.Agg.Bitmap().Used() != lun.Blocks() {
		t.Fatalf("used = %d after overwrites", s.Agg.Bitmap().Used())
	}
}

func TestOLTPMix(t *testing.T) {
	s, lun := newTestSystem(t)
	SequentialFill(s, lun, 1)
	s.CP()
	before := s.Counters()
	rng := rand.New(rand.NewSource(3))
	DefaultOLTP().Run(s, []*wafl.LUN{lun}, rng, 10000)
	s.CP()
	d := s.Counters().Sub(before)
	if d.Ops != 10000+1 && d.Ops != 10000 { // +1 tolerates CP-op accounting
		t.Fatalf("ops = %d", d.Ops)
	}
	// Roughly 1/3 of ops are writes.
	if d.ModOps < 2500 || d.ModOps > 4200 {
		t.Fatalf("modifying ops = %d of 10000", d.ModOps)
	}
	// Reads charged device time beyond the flush cost of writes.
	if d.DeviceBusy == 0 {
		t.Fatal("no device time charged")
	}
}

func TestAgeFragmentsFreeSpace(t *testing.T) {
	s, lun := newTestSystem(t)
	rng := rand.New(rand.NewSource(4))
	Age(s, []*wafl.LUN{lun}, rng, 0.5)
	// After aging, free space must be fragmented: the longest free run in
	// the aggregate is far below the total free count.
	bm := s.Agg.Bitmap()
	g := s.Agg.Groups()[0]
	free := bm.CountFree(g.Geometry().VBNRange())
	longest := bm.LongestFreeRun(g.Geometry().DeviceRange(0))
	if free == 0 {
		t.Fatal("no free space after aging")
	}
	if longest*4 > free {
		t.Fatalf("free space not fragmented: longest run %d of %d free", longest, free)
	}
}

func TestFreeRandomFraction(t *testing.T) {
	s, lun := newTestSystem(t)
	SequentialFill(s, lun, 1)
	s.CP()
	rng := rand.New(rand.NewSource(5))
	freed := FreeRandomFraction(s, lun, rng, 0.5)
	if freed < 18000 || freed > 22000 {
		t.Fatalf("freed = %d of 40000 at fraction 0.5", freed)
	}
	if got := s.Agg.Bitmap().Used(); got != lun.Blocks()-uint64(freed) {
		t.Fatalf("used = %d", got)
	}
	// Freed blocks read as unwritten.
	var unwritten int
	for lba := uint64(0); lba < lun.Blocks(); lba++ {
		if !lun.Written(lba) {
			unwritten++
		}
	}
	if unwritten != freed {
		t.Fatalf("unwritten %d != freed %d", unwritten, freed)
	}
}

func TestHotColdSkew(t *testing.T) {
	s, lun := newTestSystem(t)
	SequentialFill(s, lun, 1)
	s.CP()
	rng := rand.New(rand.NewSource(9))
	hc := DefaultHotCold()
	before := s.Counters()
	hc.Run(s, []*wafl.LUN{lun}, rng, 20000)
	s.CP()
	if d := s.Counters().Sub(before); d.ModOps != 20000 {
		t.Fatalf("ops = %d", d.ModOps)
	}

	// The generator's LBA histogram must be heavily skewed toward the hot
	// prefix of the address space.
	hits := make([]int, 10)
	for i := 0; i < 100000; i++ {
		span := lun.Blocks() - 1
		hotSpan := uint64(float64(span) * hc.HotFraction)
		var lba uint64
		if rng.Float64() < hc.HotWeight {
			lba = uint64(rng.Int63n(int64(hotSpan)))
		} else {
			lba = uint64(rng.Int63n(int64(span + 1)))
		}
		hits[lba*10/lun.Blocks()]++
	}
	if hits[0] < 4*hits[9] {
		t.Fatalf("no skew: first decile %d, last %d", hits[0], hits[9])
	}
}
