// Package workload implements the client workloads of the paper's
// evaluation (§4): random LUN overwrites over Fibre Channel (worst-case
// COW fragmentation), an OLTP-style random read/write mix, sequential
// writes, and the aging procedures that fill and fragment a file system
// before measurement.
package workload

import (
	"fmt"
	"math/rand"

	"waflfs/internal/wafl"
)

// RandomOverwrite issues ops random overwrites, each of opBlocks logical
// blocks, uniformly across the given LUNs. Random overwrites create
// worst-case fragmentation in a COW file system because every overwrite
// frees the previously used block (§4.1).
func RandomOverwrite(s *wafl.System, luns []*wafl.LUN, rng *rand.Rand, ops, opBlocks int) {
	for i := 0; i < ops; i++ {
		l := luns[rng.Intn(len(luns))]
		maxStart := l.Blocks() - uint64(opBlocks)
		s.Write(l, uint64(rng.Int63n(int64(maxStart+1))), opBlocks)
	}
}

// OLTP models the internal OLTP benchmark of §4.2: predominantly random
// read and write I/O typical of database query and update traffic.
type OLTP struct {
	// ReadFraction is the fraction of operations that are reads.
	ReadFraction float64
	// OpBlocks is the I/O size in 4KiB blocks.
	OpBlocks int
}

// DefaultOLTP returns a 2:1 read-to-write mix of 4KiB operations.
func DefaultOLTP() OLTP { return OLTP{ReadFraction: 0.67, OpBlocks: 1} }

// Run issues ops operations of the mix across the LUNs.
func (o OLTP) Run(s *wafl.System, luns []*wafl.LUN, rng *rand.Rand, ops int) {
	nb := o.OpBlocks
	if nb <= 0 {
		nb = 1
	}
	for i := 0; i < ops; i++ {
		l := luns[rng.Intn(len(luns))]
		lba := uint64(rng.Int63n(int64(l.Blocks() - uint64(nb) + 1)))
		if rng.Float64() < o.ReadFraction {
			s.Read(l, lba, nb)
		} else {
			s.Write(l, lba, nb)
		}
	}
}

// SequentialFill writes every block of the LUN once, in order — the initial
// layout of an unaged file system (§2.2).
func SequentialFill(s *wafl.System, l *wafl.LUN, opBlocks int) {
	if opBlocks <= 0 {
		opBlocks = 1
	}
	for lba := uint64(0); lba+uint64(opBlocks) <= l.Blocks(); lba += uint64(opBlocks) {
		s.Write(l, lba, opBlocks)
	}
}

// Age fills the LUNs sequentially and then applies churnFactor times their
// total capacity in random single-block overwrites, thoroughly fragmenting
// free space ("the aggregate was filled up to 55% and was thoroughly
// fragmented by applying heavy random write traffic", §4.1). It ends at a
// CP boundary.
func Age(s *wafl.System, luns []*wafl.LUN, rng *rand.Rand, churnFactor float64) {
	var total uint64
	for _, l := range luns {
		SequentialFill(s, l, 1)
		total += l.Blocks()
	}
	churn := int(churnFactor * float64(total))
	RandomOverwrite(s, luns, rng, churn, 1)
	s.CP()
}

// FreeRandomFraction frees the given fraction of each LUN's written blocks,
// chosen randomly — used to construct imbalanced aging across RAID groups
// (§4.2: disks "aged by overwriting and freeing its blocks several times
// until a random 50% of its blocks were used"). It must be called at a CP
// boundary and ends at one.
func FreeRandomFraction(s *wafl.System, l *wafl.LUN, rng *rand.Rand, fraction float64) int {
	freed, err := s.PunchHoles(l, func(lba uint64) bool { return rng.Float64() < fraction })
	if err != nil {
		panic(fmt.Sprintf("workload: FreeRandomFraction off a CP boundary: %v", err))
	}
	s.CP()
	return freed
}

// HotCold issues overwrites with a skewed access pattern: a fraction of the
// LBA space (the hot set) receives most of the writes. Real client traffic
// is rarely uniform; the skew concentrates frees in the hot regions, which
// is part of why free-space fragmentation is nonuniform — the nonuniformity
// the AA caches exploit (§4.1.1).
type HotCold struct {
	// HotFraction of the LBA space is hot (e.g. 0.2).
	HotFraction float64
	// HotWeight of the operations hit the hot set (e.g. 0.8).
	HotWeight float64
	// OpBlocks is the write size in blocks.
	OpBlocks int
}

// DefaultHotCold returns the classic 80/20 skew.
func DefaultHotCold() HotCold {
	return HotCold{HotFraction: 0.2, HotWeight: 0.8, OpBlocks: 1}
}

// Run issues ops skewed overwrites across the LUNs.
func (h HotCold) Run(s *wafl.System, luns []*wafl.LUN, rng *rand.Rand, ops int) {
	nb := h.OpBlocks
	if nb <= 0 {
		nb = 1
	}
	for i := 0; i < ops; i++ {
		l := luns[rng.Intn(len(luns))]
		span := l.Blocks() - uint64(nb)
		hotSpan := uint64(float64(span) * h.HotFraction)
		var lba uint64
		if hotSpan > 0 && rng.Float64() < h.HotWeight {
			lba = uint64(rng.Int63n(int64(hotSpan)))
		} else {
			lba = uint64(rng.Int63n(int64(span + 1)))
		}
		s.Write(l, lba, nb)
	}
}
