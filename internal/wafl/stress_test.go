package wafl

import (
	"fmt"
	"math/rand"
	"testing"

	"waflfs/internal/aa"
)

// A long randomized soak across every feature at once: multiple volumes and
// LUNs, snapshots, hole punching, remounts, background fill, segment
// cleaning, and growth — asserting the global invariants after every phase.
func TestMultiVolumeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tun := DefaultTunables()
	tun.CPEveryOps = 512
	tun.MinAAScoreFraction = 0.05
	s := NewSystem(testSpecs(), []VolSpec{
		{Name: "vol0", Blocks: 8 * aa.RAIDAgnosticBlocks},
		{Name: "vol1", Blocks: 8 * aa.RAIDAgnosticBlocks},
		{Name: "vol2", Blocks: 16 * aa.RAIDAgnosticBlocks},
	}, tun, 77)

	rng := rand.New(rand.NewSource(77))
	var luns []*LUN
	for vi, v := range s.Agg.Vols() {
		for li := 0; li < 2; li++ {
			luns = append(luns, v.CreateLUN(fmt.Sprintf("lun%d-%d", vi, li), 40000))
		}
	}
	checkAll := func(phase string) {
		t.Helper()
		var virtUsed uint64
		for _, v := range s.Agg.Vols() {
			if err := v.CheckRefcounts(); err != nil {
				t.Fatalf("%s: %v", phase, err)
			}
			virtUsed += v.Bitmap().Used()
		}
		if s.Agg.Bitmap().Used() != virtUsed {
			t.Fatalf("%s: aggregate used %d != virtual used %d",
				phase, s.Agg.Bitmap().Used(), virtUsed)
		}
	}

	// Phase 1: interleaved traffic across all LUNs.
	for i := 0; i < 120000; i++ {
		l := luns[rng.Intn(len(luns))]
		s.Write(l, uint64(rng.Intn(39997)), 1+rng.Intn(3))
	}
	s.CP()
	checkAll("initial churn")

	// Phase 2: snapshots on half the LUNs, then more churn.
	for i := 0; i < len(luns); i += 2 {
		s.CreateSnapshot(luns[i], "soak")
	}
	for i := 0; i < 60000; i++ {
		l := luns[rng.Intn(len(luns))]
		s.Write(l, uint64(rng.Intn(40000)), 1)
	}
	s.CP()
	checkAll("post-snapshot churn")

	// Phase 3: punch holes, delete snapshots.
	for i, l := range luns {
		s.PunchHoles(l, func(lba uint64) bool { return rng.Float64() < 0.2 })
		if i%2 == 0 {
			s.DeleteSnapshot(l, "soak")
		}
	}
	s.CP()
	checkAll("punch + snapshot delete")

	// Phase 4: crash, seeded remount, serve, background fill.
	s.Agg.Remount(true)
	for i := 0; i < 20000; i++ {
		l := luns[rng.Intn(len(luns))]
		s.Write(l, uint64(rng.Intn(40000)), 1)
	}
	s.CP()
	s.Agg.CompleteBackgroundFill()
	s.CP()
	checkAll("post-remount")
	checkConsistency(t, s) // full cache-vs-bitmap agreement

	// Phase 5: clean the best AAs of each group, grow the aggregate, and
	// keep writing.
	for _, g := range s.Agg.Groups() {
		s.CleanBestAAs(g, 4)
	}
	s.CP()
	s.Agg.AddGroup(testSpecs()[0])
	s.CP()
	for i := 0; i < 40000; i++ {
		l := luns[rng.Intn(len(luns))]
		s.Write(l, uint64(rng.Intn(40000)), 1)
	}
	s.CP()
	checkAll("post-clean + growth")
	checkConsistency(t, s)

	// Global conservation.
	c := s.Counters()
	if c.BlocksWritten-c.BlocksFreed != s.Agg.Bitmap().Used() {
		t.Fatalf("conservation: written %d - freed %d != used %d",
			c.BlocksWritten, c.BlocksFreed, s.Agg.Bitmap().Used())
	}
	if c.CPs == 0 || c.MetafilePages == 0 || c.TopAABlocks == 0 {
		t.Fatalf("counters incomplete: %+v", c)
	}
}
