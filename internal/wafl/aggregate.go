package wafl

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"waflfs/internal/aa"
	"waflfs/internal/bitmap"
	"waflfs/internal/block"
	"waflfs/internal/control"
	"waflfs/internal/faultinject"
	"waflfs/internal/heapcache"
	"waflfs/internal/obs"
	"waflfs/internal/obs/optrace"
	"waflfs/internal/obs/picks"
	"waflfs/internal/obs/slo"
	"waflfs/internal/parallel"
	"waflfs/internal/topaa"
)

// Aggregate is the shared pool of physical storage hosting FlexVol volumes
// (§2.1): a flat physical VBN space carved into RAID groups, each with its
// own RAID-aware AA cache, plus the TopAA metafile store.
type Aggregate struct {
	bm     *bitmap.Bitmap
	groups []*Group
	vols   []*FlexVol
	pool   *Pool
	store  *topaa.Store
	tun    Tunables
	rng    *rand.Rand
	faults *faultinject.Injector // nil-safe; set when Tunables.Faults is armed

	nextRR int // round-robin start position over groups

	// Observability (see obs.go). reg always exists; st is nil unless a
	// tracer was configured.
	reg       *obs.Registry
	st        *obs.SysTracer
	obsOpts   ObsOptions
	pobs      *parallel.Obs
	scoredAAs *obs.Counter
	cpTot     cpTotals
	mountTot  mountTotals
	scrubTot  scrubTotals
	// fragMarks tracks per-space picked-quality baselines between
	// allocation-quality scans (see fragscan.go).
	fragMarks map[string]fragMark
	// cpOrd is the ordinal of the CP currently being built (CPs committed
	// + 1 while System.CP runs); pick-provenance records carry it.
	cpOrd uint64
	// pickRings collects every provenance ring this aggregate's spaces
	// record into, in registration order, for the picks.* metric views.
	pickRings []*picks.Ring
	// otRings likewise collects every op-trace ring (one per volume) for
	// the optrace.* metric views.
	otRings []*optrace.Ring
	// wd is the online-watchdog state (watchdog.go). The counters always
	// exist; the monitors run only when ObsOptions.Watchdogs is set.
	wd watchdogState
	// sloEng evaluates the configured SLO portfolio against the tsdb
	// series at every CP boundary (nil unless both ObsOptions.SLO and
	// ObsOptions.TSDB are armed; all uses are nil-safe).
	sloEng *slo.Engine
	// ctl is the closed-loop controller, evaluated right after sloEng in
	// the CP tail (nil unless both ObsOptions.Control and ObsOptions.TSDB
	// are armed; all uses are nil-safe). Armed from NewSystem — the knob
	// surface it actuates belongs to the System.
	ctl *control.Engine
}

// NewAggregate builds an aggregate from RAID-group specs. The seed makes
// every run reproducible.
func NewAggregate(specs []GroupSpec, tun Tunables, seed int64) *Aggregate {
	if len(specs) == 0 {
		panic("wafl: aggregate needs at least one RAID group")
	}
	tun = tun.Defaults()
	rng := rand.New(rand.NewSource(seed))
	ag := &Aggregate{store: topaa.NewStore(), tun: tun, rng: rng}
	if tun.Faults != nil {
		ag.faults = faultinject.New(*tun.Faults)
		ag.store.SetInjector(ag.faults)
	}
	var next block.VBN
	for i, spec := range specs {
		g := buildGroup(i, spec, next, tun, rng)
		ag.groups = append(ag.groups, g)
		next = g.geo.VBNRange().End
	}
	ag.bm = bitmap.New(uint64(next))
	ag.initObs()
	for _, g := range ag.groups {
		ag.registerGroupObs(g)
	}
	return ag
}

// Tunables returns the active configuration.
func (ag *Aggregate) Tunables() Tunables { return ag.tun }

// Groups returns the RAID groups.
func (ag *Aggregate) Groups() []*Group { return ag.groups }

// Vols returns the hosted FlexVol volumes.
func (ag *Aggregate) Vols() []*FlexVol { return ag.vols }

// Bitmap exposes the aggregate's physical bitmap metafile.
func (ag *Aggregate) Bitmap() *bitmap.Bitmap { return ag.bm }

// Store exposes the TopAA metafile store.
func (ag *Aggregate) Store() *topaa.Store { return ag.store }

// Injector exposes the fault injector (nil when no plan is armed). Nil is
// safe to call: every Injector method is a no-op on a nil receiver.
func (ag *Aggregate) Injector() *faultinject.Injector { return ag.faults }

// ApplyPlannedDamage places the armed plan's media fault on the TopAA
// metafile store — the damage a dirty failover leaves behind — and returns
// what was damaged. A plan without a media-fault kind (or no plan at all)
// does nothing.
func (ag *Aggregate) ApplyPlannedDamage() (faultinject.DamageReport, error) {
	if ag.faults == nil {
		return faultinject.DamageReport{}, nil
	}
	return ag.faults.ApplyDamage(ag.store, ag.store.Keys(), block.ChunksPerBlock)
}

// Blocks returns the physical VBN space size.
func (ag *Aggregate) Blocks() uint64 { return ag.bm.Size() }

// UsedFraction returns the fraction of physical blocks allocated.
func (ag *Aggregate) UsedFraction() float64 {
	return float64(ag.bm.Used()) / float64(ag.bm.Size())
}

// AddGroup grows the aggregate by one RAID group at the top of the physical
// VBN space — how customers add capacity over time (§4.2). The new group's
// AA cache starts fully populated (every AA empty), so the write allocator
// immediately prefers its pristine regions.
func (ag *Aggregate) AddGroup(spec GroupSpec) *Group {
	if ag.pool != nil {
		panic("wafl: add RAID groups before attaching the object pool")
	}
	start := block.VBN(ag.bm.Size())
	g := buildGroup(len(ag.groups), spec, start, ag.tun, ag.rng)
	ag.groups = append(ag.groups, g)
	ag.bm.Grow(uint64(g.geo.VBNRange().End))
	ag.registerGroupObs(g)
	return g
}

// AddVolume creates and hosts a FlexVol. Thin provisioning applies: the sum
// of volume sizes may exceed physical capacity (§3.3.2).
func (ag *Aggregate) AddVolume(spec VolSpec) *FlexVol {
	for _, v := range ag.vols {
		if v.Name == spec.Name {
			panic(fmt.Sprintf("wafl: duplicate volume %q", spec.Name))
		}
	}
	v := newFlexVol(spec, ag.tun, ag.rng)
	ag.vols = append(ag.vols, v)
	ag.registerSpaceObs(v.space, "vol."+v.Name+".", len(ag.vols)-1)
	return v
}

// groupOf returns the RAID group owning physical VBN v.
func (ag *Aggregate) groupOf(v block.VBN) *Group {
	for _, g := range ag.groups {
		if g.geo.VBNRange().Contains(v) {
			return g
		}
	}
	panic(fmt.Sprintf("wafl: physical %v outside aggregate", v))
}

// AllocatePhysical assigns n free physical VBNs. Allocation proceeds in
// tetris-sized turns round-robin over the eligible RAID groups, so that
// writes reach all groups (maximizing bandwidth, §3.3.1) while groups whose
// best AA is heavily fragmented contribute fewer blocks per turn — the
// write bias of §4.2. It returns fewer than n only when the aggregate is
// out of space.
func (ag *Aggregate) AllocatePhysical(n int) []block.VBN {
	out := make([]block.VBN, 0, n)
	useThreshold := true
	for len(out) < n {
		// A round may legitimately yield zero blocks (a heavily fragmented
		// AA can have tetrises with no free blocks at all); the aggregate
		// is only exhausted when every group reports it cannot proceed.
		anyAlive := false
		skipped := false
		for i := range ag.groups {
			g := ag.groups[(ag.nextRR+i)%len(ag.groups)]
			if useThreshold && !g.eligible(ag.tun.MinAAScoreFraction) {
				skipped = true
				continue
			}
			vbns, more := g.allocateTetris(ag.bm, n-len(out))
			out = append(out, vbns...)
			if more {
				anyAlive = true
			}
			if len(out) >= n {
				break
			}
		}
		ag.nextRR = (ag.nextRR + 1) % len(ag.groups)
		if !anyAlive {
			if useThreshold && skipped {
				// Every eligible group is dry; ignore the fragmentation
				// bias rather than stall.
				useThreshold = false
				continue
			}
			break // aggregate genuinely out of space
		}
	}
	return out
}

// FreePhysical returns a physical VBN to its group's — or the object
// pool's — free space.
func (ag *Aggregate) FreePhysical(v block.VBN) {
	if ag.pool != nil && ag.pool.Contains(v) {
		ag.pool.space.free(v)
		return
	}
	ag.groupOf(v).free(ag.bm, v, ag.tun.TrimOnFree)
}

// CPStats summarizes one consistency point.
type CPStats struct {
	// MetafilePagesAggregate is the number of dirty physical-bitmap pages
	// written back.
	MetafilePagesAggregate int
	// MetafilePagesVols is the total dirty virtual-bitmap pages across
	// volumes.
	MetafilePagesVols int
	// DeviceBusy is the device time consumed flushing data and parity,
	// summed over groups — a worker-count-invariant total that feeds the
	// measured Counters and MVA demands.
	DeviceBusy time.Duration
	// FlushWall is the modeled wall-clock of the flush phase: the makespan
	// of the per-group (and pool) flush times over Tunables.Workers. With
	// one worker it equals DeviceBusy; with enough workers it approaches
	// max-over-groups, the payoff of flushing RAID groups concurrently.
	FlushWall time.Duration
	// TopAABlocks is the number of TopAA metafile blocks persisted.
	TopAABlocks int
}

// CommitCP ends the current consistency point: it flushes each group's
// writes as tetrises (charging the device models), applies the batched AA
// score updates to every cache, writes back dirty bitmap-metafile pages,
// and persists the TopAA metafiles (§3.3, §3.4).
//
// The per-group flush + delta fold fans out over the work pool: each
// group's devices, tetris stats, cache, and delta map are group-local, so
// the items are independent and every counter merges to the same total at
// any worker count. The aggregate-wide steps — TopAA saves, the shared
// physical-bitmap write-back — run serially after the barrier, in group
// order. Per-volume CP work (delta fold + virtual-bitmap write-back) fans
// out the same way, since each volume owns its bitmap and HBPS.
func (ag *Aggregate) CommitCP() CPStats {
	var st CPStats
	workers := ag.workers()

	// Every TopAA save below stamps this CP's generation, so a crash that
	// drops the saves leaves the previous images detectably stale.
	ag.store.BeginGeneration()

	ag.faults.EnterPhase(faultinject.PhaseFlush)
	busy := make([]time.Duration, len(ag.groups))
	parallel.ForEachObs(workers, len(ag.groups), ag.pobs, func(i int) {
		g := ag.groups[i]
		busy[i] = g.flushCP()
		ag.st.Emit("cp.flush", i, "group", busy[i], 0)
		g.applyCPDeltas()
	})
	ag.faults.EnterPhase(faultinject.PhaseTopAAGroups)
	for i, g := range ag.groups {
		st.DeviceBusy += busy[i]
		if err := ag.store.SaveRAIDAware(topaaGroupKey(g.Index), g.cache); err != nil {
			// Unencodable cache: the save degraded to "no metafile"; the
			// next mount walks the bitmap instead of crashing the CP here.
			ag.st.Emit("cp.topaa", g.Index, "save_error", 0, 0)
			continue
		}
		st.TopAABlocks++
		ag.st.Emit("cp.topaa", g.Index, "group", 0, 1)
	}
	if ag.pool != nil {
		ag.faults.EnterPhase(faultinject.PhasePool)
		poolBusy := ag.pool.flushCP()
		st.DeviceBusy += poolBusy
		busy = append(busy, poolBusy) // the object store flushes alongside the groups
		ag.st.Emit("cp.flush", poolShard, "pool", poolBusy, 0)
		ag.pool.space.applyCPDeltas()
		ag.store.SaveAgnostic(poolTopAAKey, ag.pool.space.cache)
		st.TopAABlocks += 2
		ag.st.Emit("cp.topaa", poolShard, "pool", 0, 2)
	}
	st.FlushWall = parallel.Makespan(busy, workers)
	ag.faults.EnterPhase(faultinject.PhaseBitmapAgg)
	st.MetafilePagesAggregate = ag.bm.Flush()
	ag.st.Emit("cp.metafile", -1, "aggregate", 0, int64(st.MetafilePagesAggregate))

	ag.faults.EnterPhase(faultinject.PhaseVolFold)
	volPages := make([]int, len(ag.vols))
	parallel.ForEachObs(workers, len(ag.vols), ag.pobs, func(i int) {
		v := ag.vols[i]
		v.space.applyCPDeltas()
		volPages[i] = v.bm.Flush()
	})
	ag.faults.EnterPhase(faultinject.PhaseTopAAVols)
	for i, v := range ag.vols {
		ag.store.SaveAgnostic(v.Name, v.space.cache)
		st.TopAABlocks += 2
		st.MetafilePagesVols += volPages[i]
		ag.st.Emit("cp.metafile", i, "volume", 0, int64(volPages[i]))
		ag.st.Emit("cp.topaa", i, "volume", 0, 2)
	}
	ag.faults.EnterPhase(faultinject.PhaseCommit)
	ag.cpTot.add(st)
	return st
}

// CommitPipelinedCP commits the SEALED generation of a pipelined CP: the
// flush banks sealCP captured one generation ago are flushed and folded
// with exactly the classic phase structure (so the crash matrix's phase
// hooks cover the pipelined path too), while the open generation's deltas,
// writes, and queues stay untouched and the allocator keeps running.
func (ag *Aggregate) CommitPipelinedCP() CPStats {
	var st CPStats
	workers := ag.workers()

	ag.store.BeginGeneration()

	ag.faults.EnterPhase(faultinject.PhaseFlush)
	busy := make([]time.Duration, len(ag.groups))
	parallel.ForEachObs(workers, len(ag.groups), ag.pobs, func(i int) {
		g := ag.groups[i]
		busy[i] = g.flushSealedCP()
		ag.st.Emit("cp.flush", i, "group", busy[i], 0)
		g.applyFlushDeltas()
	})
	ag.faults.EnterPhase(faultinject.PhaseTopAAGroups)
	for i, g := range ag.groups {
		st.DeviceBusy += busy[i]
		if err := ag.store.SaveRAIDAware(topaaGroupKey(g.Index), g.cache); err != nil {
			ag.st.Emit("cp.topaa", g.Index, "save_error", 0, 0)
			continue
		}
		st.TopAABlocks++
		ag.st.Emit("cp.topaa", g.Index, "group", 0, 1)
	}
	if ag.pool != nil {
		ag.faults.EnterPhase(faultinject.PhasePool)
		poolBusy := ag.pool.flushSealedCP()
		st.DeviceBusy += poolBusy
		busy = append(busy, poolBusy)
		ag.st.Emit("cp.flush", poolShard, "pool", poolBusy, 0)
		ag.pool.space.applyFlushDeltas()
		ag.store.SaveAgnostic(poolTopAAKey, ag.pool.space.cache)
		st.TopAABlocks += 2
		ag.st.Emit("cp.topaa", poolShard, "pool", 0, 2)
	}
	st.FlushWall = parallel.Makespan(busy, workers)
	ag.faults.EnterPhase(faultinject.PhaseBitmapAgg)
	st.MetafilePagesAggregate = ag.bm.Flush()
	ag.st.Emit("cp.metafile", -1, "aggregate", 0, int64(st.MetafilePagesAggregate))

	ag.faults.EnterPhase(faultinject.PhaseVolFold)
	volPages := make([]int, len(ag.vols))
	parallel.ForEachObs(workers, len(ag.vols), ag.pobs, func(i int) {
		v := ag.vols[i]
		v.space.applyFlushDeltas()
		volPages[i] = v.bm.Flush()
	})
	ag.faults.EnterPhase(faultinject.PhaseTopAAVols)
	for i, v := range ag.vols {
		ag.store.SaveAgnostic(v.Name, v.space.cache)
		st.TopAABlocks += 2
		st.MetafilePagesVols += volPages[i]
		ag.st.Emit("cp.metafile", i, "volume", 0, int64(volPages[i]))
		ag.st.Emit("cp.topaa", i, "volume", 0, 2)
	}
	ag.faults.EnterPhase(faultinject.PhaseCommit)
	ag.cpTot.add(st)
	return st
}

func topaaGroupKey(index int) string { return fmt.Sprintf("rg%d", index) }

// MountOutcome classifies how one space's AA cache came back at mount.
type MountOutcome int

const (
	// MountCleanLoad: the TopAA metafile verified and decoded cleanly.
	MountCleanLoad MountOutcome = iota
	// MountReconstructed: RAID rebuilt at least one damaged chunk from
	// parity before the decode succeeded.
	MountReconstructed
	// MountMissingFallback: no metafile existed; bitmap walk.
	MountMissingFallback
	// MountStaleFallback: the metafile predates the last CP generation (its
	// saves were dropped by a crash); bitmap walk.
	MountStaleFallback
	// MountTornFallback: the metafile carries mixed generations (the crash
	// interrupted the save itself); bitmap walk.
	MountTornFallback
	// MountDamageFallback: damage beyond RAID reconstruction, or a decode
	// that failed validation; bitmap walk.
	MountDamageFallback
	// MountBitmapWalk: the caller asked for a walk (Remount(false)).
	MountBitmapWalk
)

// String implements fmt.Stringer; the values name trace events and scrub
// rows.
func (o MountOutcome) String() string {
	switch o {
	case MountCleanLoad:
		return "clean_load"
	case MountReconstructed:
		return "reconstructed"
	case MountMissingFallback:
		return "missing_fallback"
	case MountStaleFallback:
		return "stale_fallback"
	case MountTornFallback:
		return "torn_fallback"
	case MountDamageFallback:
		return "damage_fallback"
	case MountBitmapWalk:
		return "bitmap_walk"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// IsFallback reports whether the outcome forced a bitmap walk the caller
// did not ask for.
func (o MountOutcome) IsFallback() bool {
	switch o {
	case MountMissingFallback, MountStaleFallback, MountTornFallback, MountDamageFallback:
		return true
	}
	return false
}

// classifyLoadError maps a TopAA store load error to its mount outcome.
func classifyLoadError(err error) MountOutcome {
	switch {
	case errors.Is(err, topaa.ErrMissing):
		return MountMissingFallback
	case errors.Is(err, topaa.ErrStale):
		return MountStaleFallback
	case errors.Is(err, topaa.ErrTorn):
		return MountTornFallback
	default:
		return MountDamageFallback
	}
}

// MountStats records the work needed to make the AA caches operational
// after a remount — the quantity Fig. 10 plots, since the first CP cannot
// complete before write allocation can begin (§3.4).
type MountStats struct {
	// TopAABlockReads counts TopAA metafile blocks read (failed probes of
	// missing metafiles charge one).
	TopAABlockReads uint64
	// BitmapPagesRead counts bitmap-metafile pages read by cache-rebuild
	// walks (zero when every TopAA metafile is intact).
	BitmapPagesRead uint64
	// CacheInserts counts AA-cache insert operations performed before the
	// caches were declared operational.
	CacheInserts uint64
	// Fallbacks counts spaces whose TopAA metafile was missing, stale,
	// torn, or damaged, forcing a bitmap walk (the WAFL-Iron-recomputation
	// path). It equals MissingFallbacks + StaleFallbacks + TornFallbacks +
	// DamageFallbacks.
	Fallbacks int
	// Reconstructed counts spaces whose metafile needed a RAID chunk
	// rebuild but then loaded successfully.
	Reconstructed int
	// MissingFallbacks/StaleFallbacks/TornFallbacks/DamageFallbacks break
	// Fallbacks down by failure class (see MountOutcome).
	MissingFallbacks int
	StaleFallbacks   int
	TornFallbacks    int
	DamageFallbacks  int
}

// note records one space's outcome into the stats.
func (ms *MountStats) note(o MountOutcome) {
	switch o {
	case MountReconstructed:
		ms.Reconstructed++
	case MountMissingFallback:
		ms.MissingFallbacks++
	case MountStaleFallback:
		ms.StaleFallbacks++
	case MountTornFallback:
		ms.TornFallbacks++
	case MountDamageFallback:
		ms.DamageFallbacks++
	}
	if o.IsFallback() {
		ms.Fallbacks++
	}
}

// Remount simulates a failover/reboot: all in-memory allocator state is
// dropped, then the AA caches are rebuilt — from the TopAA metafiles when
// useTopAA is true (falling back per space on damage), or by walking the
// bitmap metafiles otherwise.
//
// Both rebuild passes fan out over the work pool: every group and every
// agnostic space owns its cache, cursor, and delta map, the TopAA store is
// thread-safe, and bitmap scans only read bit words while charging an
// atomic counter. Fallback walks additionally shard their own popcount
// work (aa.ScoreAllParallel), so a single damaged space still spreads its
// full-bitmap walk across workers. Per-item stats land in index-owned
// slots and merge in order, keeping MountStats identical at any worker
// count.
func (ag *Aggregate) Remount(useTopAA bool) MountStats {
	var ms MountStats
	// A remount is the reboot after the crash (if any): the controller is
	// back up, so the injector stops dropping saves.
	ag.faults.Recover()
	preReads, _ := ag.store.Stats()
	preBM := ag.bm.Stats().PageReads
	preVolBM := make([]uint64, len(ag.vols))
	for i, v := range ag.vols {
		preVolBM[i] = v.bm.Stats().PageReads
	}

	workers := ag.workers()
	type rebuildStats struct {
		inserts uint64
		outcome MountOutcome
	}

	groupStats := make([]rebuildStats, len(ag.groups))
	parallel.ForEachObs(workers, len(ag.groups), ag.pobs, func(i int) {
		g := ag.groups[i]
		g.curValid = false
		g.cpWrites = g.cpWrites[:0]
		g.deltas = make(map[aa.ID]int64)
		g.flushDeltas = nil
		g.flushWrites = nil
		g.flushCS = nil
		outcome := MountBitmapWalk
		rebuilt := false
		if useTopAA {
			entries, loadOutcome, err := ag.store.LoadRAIDAware(topaaGroupKey(g.Index))
			if err == nil {
				// The block's structural checks cannot know this group's AA
				// count; validate against the topology here and treat
				// out-of-range ids or impossible scores as damage.
				valid := true
				for _, e := range entries {
					if int(e.ID) >= g.topo.NumAAs() || e.Score > aaBlockCount(g.topo, e.ID) {
						valid = false
						break
					}
				}
				if valid {
					cache := heapcache.New(g.topo.NumAAs())
					for _, e := range entries {
						cache.Insert(e.ID, e.Score)
						groupStats[i].inserts++
					}
					g.cache = cache
					g.seedOnly = true
					rebuilt = true
					outcome = MountCleanLoad
					if loadOutcome == topaa.LoadReconstructed {
						outcome = MountReconstructed
					}
				} else {
					outcome = MountDamageFallback
				}
			} else {
				outcome = classifyLoadError(err)
			}
		}
		if !rebuilt {
			scores := aa.ScoreAllParallelObs(g.topo, ag.bm, workers, ag.pobs, ag.scoredAAs)
			g.cache = heapcache.NewFromScores(scores)
			g.seedOnly = false
			groupStats[i].inserts += uint64(len(scores))
		}
		// The cache object was replaced (or rebuilt): the shard queues hold
		// pointers into the old one and all pre-crash ledger state is gone.
		g.resetShardCache()
		groupStats[i].outcome = outcome
		ag.st.Emit("mount.group", i, outcome.String(), 0, int64(groupStats[i].inserts))
	})
	for _, st := range groupStats {
		ms.CacheInserts += st.inserts
		ms.note(st.outcome)
	}

	spaces := make([]*agnosticSpace, 0, len(ag.vols)+1)
	names := make([]string, 0, len(ag.vols)+1)
	for _, v := range ag.vols {
		spaces = append(spaces, v.space)
		names = append(names, v.Name)
	}
	if ag.pool != nil {
		spaces = append(spaces, ag.pool.space)
		names = append(names, poolTopAAKey)
	}
	spaceStats := make([]rebuildStats, len(spaces))
	parallel.ForEachObs(workers, len(spaces), ag.pobs, func(i int) {
		sp := spaces[i]
		sp.curValid = false
		sp.deltas = make(map[aa.ID]int64)
		sp.flushDeltas = nil
		outcome := MountBitmapWalk
		rebuilt := false
		if useTopAA {
			h, loadOutcome, err := ag.store.LoadAgnostic(names[i])
			if err == nil {
				sp.cache = h
				rebuilt = true
				outcome = MountCleanLoad
				if loadOutcome == topaa.LoadReconstructed {
					outcome = MountReconstructed
				}
			} else {
				outcome = classifyLoadError(err)
			}
		}
		if !rebuilt {
			sp.replenish()
			spaceStats[i].inserts += uint64(sp.topo.NumAAs())
		}
		sp.resetShardCache()
		spaceStats[i].outcome = outcome
		ag.st.Emit("mount.space", sp.shard, outcome.String(), 0, int64(spaceStats[i].inserts))
	})
	for _, st := range spaceStats {
		ms.CacheInserts += st.inserts
		ms.note(st.outcome)
	}

	postReads, _ := ag.store.Stats()
	ms.TopAABlockReads = postReads - preReads
	ms.BitmapPagesRead = ag.bm.Stats().PageReads - preBM
	for i, v := range ag.vols {
		ms.BitmapPagesRead += v.bm.Stats().PageReads - preVolBM[i]
	}
	ag.mountTot.add(ms)
	return ms
}

// workers resolves the aggregate's parallelism knob (Tunables.Workers).
func (ag *Aggregate) workers() int { return parallel.Workers(ag.tun.Workers) }

// CompleteBackgroundFill finishes the post-mount background work for
// seed-only RAID-aware caches: every AA absent from the seed is scored from
// the bitmap (in parallel, as a controller spreads this walk across cores)
// and inserted (§3.4). Returns the number of AAs inserted.
func (ag *Aggregate) CompleteBackgroundFill() uint64 {
	var inserted uint64
	for _, g := range ag.groups {
		if !g.seedOnly {
			continue
		}
		scores := aa.ScoreAllParallelObs(g.topo, ag.bm, ag.workers(), ag.pobs, ag.scoredAAs)
		for id := 0; id < g.topo.NumAAs(); id++ {
			if g.curValid && aa.ID(id) == g.curAA {
				continue // held by the allocator; reinserted at finishAA
			}
			if g.sh != nil && g.sh.Holds(aa.ID(id)) {
				continue // staged in a shard queue at its frozen seed score
			}
			if !g.cache.Tracked(aa.ID(id)) {
				g.cache.Insert(aa.ID(id), scores[id])
				// The bitmap score already reflects any deltas that were
				// pending while the AA was untracked.
				delete(g.deltas, aa.ID(id))
				inserted++
			}
		}
		g.seedOnly = false
	}
	return inserted
}

// RepairTopAA recomputes every TopAA metafile from the authoritative bitmap
// metafiles and rewrites it — the recovery WAFL Iron performs online when a
// metafile is damaged beyond RAID reconstruction (§3.4). It returns the
// number of metafile entries rewritten. The in-memory caches are rebuilt
// too, so a subsequent Remount(true) succeeds with no fallbacks.
func (ag *Aggregate) RepairTopAA() int {
	repaired := 0
	for _, g := range ag.groups {
		g.finishAA(ag.bm)
		scores := aa.ScoreAllParallelObs(g.topo, ag.bm, ag.workers(), ag.pobs, ag.scoredAAs)
		g.cache = heapcache.NewFromScores(scores)
		g.seedOnly = false
		g.deltas = make(map[aa.ID]int64)
		g.flushDeltas = nil
		err := ag.store.SaveRAIDAware(topaaGroupKey(g.Index), g.cache)
		// Rebuild the shard queues around the repaired cache after the save,
		// so the metafile holds the complete score set.
		g.resetShardCache()
		if err != nil {
			// Bitmap-derived scores always fit the encoding; an error here
			// would mean the topology itself is unencodable, which the
			// builders reject. Keep going: the space stays on bitmap walks.
			continue
		}
		repaired++
	}
	spaces := make([]*agnosticSpace, 0, len(ag.vols)+1)
	names := make([]string, 0, len(ag.vols)+1)
	for _, v := range ag.vols {
		spaces = append(spaces, v.space)
		names = append(names, v.Name)
	}
	if ag.pool != nil {
		spaces = append(spaces, ag.pool.space)
		names = append(names, poolTopAAKey)
	}
	for i, sp := range spaces {
		sp.replenish()
		ag.store.SaveAgnostic(names[i], sp.cache)
		sp.resetShardCache()
		repaired++
	}
	return repaired
}
