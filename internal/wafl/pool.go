package wafl

import (
	"time"

	"waflfs/internal/block"
)

// Object-store pool (FabricPool, §2.1): physical storage with native
// resiliency and redundancy — an on-premises or cloud object store — that
// ONTAP does not arrange into RAID. Its physical VBN range uses
// RAID-agnostic allocation areas ("this is also true for writing to an
// object store that provides native redundancy", §3.3.2): consecutive
// 32k-block AAs tracked by an HBPS cache, with allocation aimed purely at
// colocating block numbers.
//
// Cold data moves to the pool through TierOut; the pool's cost model
// charges object PUTs (blocks are buffered into fixed-size objects at each
// CP) and GETs for reads. Object compaction/defragmentation is out of
// scope; frees simply return VBNs to the pool's free space.

// PoolSpec configures an object-store pool.
type PoolSpec struct {
	// Blocks is the pool's physical VBN-space size.
	Blocks uint64
	// ObjectBlocks is the object size in 4KiB blocks (default 1024 = 4MiB).
	ObjectBlocks uint64
	// PutLatency and GetLatency are per-request object-store round trips
	// (defaults 30ms and 15ms).
	PutLatency, GetLatency time.Duration
	// PerBlock is the transfer time per 4KiB block (default 8µs ≈ 4Gbit/s).
	PerBlock time.Duration
}

func (p PoolSpec) defaults() PoolSpec {
	if p.ObjectBlocks == 0 {
		p.ObjectBlocks = 1024
	}
	if p.PutLatency == 0 {
		p.PutLatency = 30 * time.Millisecond
	}
	if p.GetLatency == 0 {
		p.GetLatency = 15 * time.Millisecond
	}
	if p.PerBlock == 0 {
		p.PerBlock = 8 * time.Microsecond
	}
	return p
}

// Pool is the runtime state of an object-store tier.
type Pool struct {
	spec  PoolSpec
	space *agnosticSpace

	cpBlocks int // blocks written (tiered out) since the last CP
	// flushBlocks is the sealed generation's bank under pipelined CPs:
	// sealCP swaps cpBlocks here and flushSealedCP ships it while the open
	// generation keeps accumulating.
	flushBlocks int

	puts, gets    uint64
	blocksTiered  uint64
	blocksFetched uint64
	busy          time.Duration
}

// poolTopAAKey names the pool's TopAA metafile entry.
const poolTopAAKey = "objectpool"

// AddObjectPool attaches an object-store tier at the top of the aggregate's
// physical VBN space. At most one pool is supported (matching FabricPool's
// one-capacity-tier model).
func (ag *Aggregate) AddObjectPool(spec PoolSpec) *Pool {
	if ag.pool != nil {
		panic("wafl: aggregate already has an object pool")
	}
	spec = spec.defaults()
	if spec.Blocks == 0 {
		panic("wafl: zero-size object pool")
	}
	start := block.VBN(ag.bm.Size())
	ag.bm.Grow(uint64(start) + spec.Blocks)
	p := &Pool{spec: spec}
	p.space = newAgnosticSpace(poolTopAAKey, block.R(start, start+block.VBN(spec.Blocks)),
		ag.bm, ag.tun, ag.tun.AggregateCacheEnabled, ag.rng)
	ag.pool = p
	ag.registerSpaceObs(p.space, "pool.", poolShard)
	ag.reg.CounterFunc("pool.puts", func() uint64 { return p.puts })
	ag.reg.CounterFunc("pool.gets", func() uint64 { return p.gets })
	ag.reg.CounterFunc("pool.blocks_tiered", func() uint64 { return p.blocksTiered })
	ag.reg.CounterFunc("pool.blocks_fetched", func() uint64 { return p.blocksFetched })
	ag.reg.CounterFunc("pool.busy_ns", func() uint64 { return uint64(p.busy) })
	return p
}

// Pool returns the aggregate's object pool, or nil.
func (ag *Aggregate) Pool() *Pool { return ag.pool }

// Range returns the pool's physical VBN range.
func (p *Pool) Range() block.Range { return p.space.topo.Space() }

// Contains reports whether v lies in the pool.
func (p *Pool) Contains(v block.VBN) bool { return p.Range().Contains(v) }

// Busy returns the cumulative object-store service time.
func (p *Pool) Busy() time.Duration { return p.busy }

// PoolStats is the pool's lifetime accounting.
type PoolStats struct {
	Puts, Gets    uint64
	BlocksTiered  uint64
	BlocksFetched uint64
}

// Stats returns the pool's counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{Puts: p.puts, Gets: p.gets, BlocksTiered: p.blocksTiered, BlocksFetched: p.blocksFetched}
}

// read charges one block fetch.
func (p *Pool) read(n uint64) time.Duration {
	d := p.spec.GetLatency + time.Duration(n)*p.spec.PerBlock
	p.gets++
	p.blocksFetched += n
	p.busy += d
	return d
}

// flushCP ships the CP's tiered blocks as objects.
func (p *Pool) flushCP() time.Duration {
	if p.cpBlocks == 0 {
		return 0
	}
	objects := (uint64(p.cpBlocks) + p.spec.ObjectBlocks - 1) / p.spec.ObjectBlocks
	d := time.Duration(objects)*p.spec.PutLatency + time.Duration(p.cpBlocks)*p.spec.PerBlock
	p.puts += objects
	p.blocksTiered += uint64(p.cpBlocks)
	p.cpBlocks = 0
	p.busy += d
	return d
}

// sealCP moves the open generation's tiered blocks into the flush bank.
func (p *Pool) sealCP() {
	p.flushBlocks += p.cpBlocks
	p.cpBlocks = 0
}

// flushSealedCP ships the sealed generation's tiered blocks as objects.
func (p *Pool) flushSealedCP() time.Duration {
	if p.flushBlocks == 0 {
		return 0
	}
	objects := (uint64(p.flushBlocks) + p.spec.ObjectBlocks - 1) / p.spec.ObjectBlocks
	d := time.Duration(objects)*p.spec.PutLatency + time.Duration(p.flushBlocks)*p.spec.PerBlock
	p.puts += objects
	p.blocksTiered += uint64(p.flushBlocks)
	p.flushBlocks = 0
	p.busy += d
	return d
}

// TierOut moves every written LUN block selected by the predicate to the
// object pool: pool VBNs are allocated (HBPS-guided, colocated in the
// pool's number space), the RAID-group copies are read and freed, and all
// referents (active image and snapshots) are repointed. Must run at a CP
// boundary; the object PUTs are charged when that CP commits. Returns the
// number of blocks tiered.
func (s *System) TierOut(l *LUN, select_ func(lba uint64) bool) int {
	pool := s.Agg.pool
	if pool == nil {
		panic("wafl: TierOut without an object pool")
	}
	if s.pendingBlocks > 0 || s.pipe.inFlight {
		panic("wafl: TierOut must run at a CP boundary")
	}
	// Collect distinct physical blocks to move (a snapshot-shared block
	// appears once).
	reverse := s.buildReverseMap()
	var move []block.VBN
	seen := make(map[block.VBN]bool)
	for lba := range l.blocks {
		p := l.blocks[lba].phys
		if p == block.InvalidVBN || pool.Contains(p) || !select_(uint64(lba)) {
			continue
		}
		if !seen[p] {
			seen[p] = true
			move = append(move, p)
		}
	}
	if len(move) == 0 {
		return 0
	}
	newVBNs := pool.space.allocate(len(move))
	if len(newVBNs) < len(move) {
		panic("wafl: object pool out of space during tiering")
	}
	for i, old := range move {
		// Read the hot copy from its RAID group.
		g := s.Agg.groupOf(old)
		d, dbn := g.geo.Locate(old)
		_ = dbn
		s.c.DeviceBusy += g.devices[d].Read(1)
		// Repoint every referent, then free the group copy.
		for _, slot := range reverse[old] {
			slot.phys = newVBNs[i]
		}
		s.Agg.FreePhysical(old)
	}
	pool.cpBlocks += len(move)
	return len(move)
}
