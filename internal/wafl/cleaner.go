package wafl

import (
	"fmt"

	"waflfs/internal/aa"
	"waflfs/internal/block"
)

// CleanStats summarizes one segment-cleaning pass.
type CleanStats struct {
	// AAsCleaned is the number of allocation areas fully emptied.
	AAsCleaned int
	// BlocksRelocated is the number of in-use blocks moved elsewhere.
	BlocksRelocated int
	// AlreadyEmpty counts AAs popped that needed no work.
	AlreadyEmpty int
}

// CleanBestAAs performs WAFL-style segment cleaning on group g (§3.3.1):
// the content of all in-use blocks in each AA near the top of the max-heap
// is relocated elsewhere so the AA becomes completely empty. Cleaning the
// best-scoring AAs relocates the fewest blocks, which is why just-in-time
// cleaning of cache-provided AAs yields the best return on investment.
//
// Cleaning is physical-only: relocated blocks keep their virtual VBNs, as
// block virtualization within a FlexVol permits. The pass must run between
// consistency points (no writes buffered), and requires the RAID-aware
// cache to be enabled. Relocation writes are charged at the next CP like
// any other allocation; relocation reads are charged immediately.
func (s *System) CleanBestAAs(g *Group, maxAAs int) CleanStats {
	if !g.cacheEnabled {
		panic("wafl: segment cleaning requires the RAID-aware AA cache")
	}
	if s.pendingBlocks > 0 {
		panic("wafl: segment cleaning must run at a CP boundary")
	}
	var st CleanStats
	if maxAAs <= 0 {
		return st
	}
	reverse := s.buildReverseMap()

	// Make sure the group's held AA doesn't shadow the heap's view.
	g.finishAA(s.Agg.bm)
	// Likewise entries staged in shard queues: flush them back so the heap
	// pops the true best AAs for cleaning; the queues restage at the end.
	if g.sh != nil {
		g.sh.FlushAll()
	}

	cleaned := make([]aa.ID, 0, maxAAs)
	for len(cleaned) < maxAAs {
		e, ok := g.cache.PopBest()
		if !ok {
			break
		}
		cleaned = append(cleaned, e.ID)
		used := s.usedVBNs(g, e.ID)
		if len(used) == 0 {
			st.AlreadyEmpty++
			continue
		}
		// Read the live data (charged per contiguous run), then rewrite it
		// through the normal allocator, which now cannot pick this AA.
		s.chargeRelocationReads(g, e.ID)
		newPhys := s.Agg.AllocatePhysical(len(used))
		if len(newPhys) < len(used) {
			panic("wafl: aggregate out of space during segment cleaning")
		}
		for i, old := range used {
			refs, ok := reverse[old]
			if !ok || len(refs) == 0 {
				panic(fmt.Sprintf("wafl: cleaner found orphan physical %v", old))
			}
			// Repoint every referent — the active image and any snapshots
			// share the same physical block and move together.
			for _, slot := range refs {
				slot.phys = newPhys[i]
			}
			delete(reverse, old)
			reverse[newPhys[i]] = refs
			s.Agg.FreePhysical(old)
		}
		st.BlocksRelocated += len(used)
		st.AAsCleaned++
	}
	// Return every popped AA to the heap with its post-cleaning score.
	for _, id := range cleaned {
		g.cache.Insert(id, aa.Score(g.topo, s.Agg.bm, id))
		g.as.clearPending(id, g.deltas)
	}
	if g.sh != nil {
		g.restageShards()
	}
	return st
}

// buildReverseMap scans every LUN image — active and snapshot — mapping
// each physical VBN to the pointer slots referencing it. The slots stay
// valid for the duration of the pass (no slice grows during cleaning).
func (s *System) buildReverseMap() map[block.VBN][]*blockPtr {
	m := make(map[block.VBN][]*blockPtr)
	add := func(blocks []blockPtr) {
		for i := range blocks {
			if p := blocks[i].phys; p != block.InvalidVBN {
				m[p] = append(m[p], &blocks[i])
			}
		}
	}
	for _, v := range s.Agg.vols {
		for _, l := range v.luns {
			add(l.blocks)
			for _, sn := range l.snaps {
				add(sn.blocks)
			}
		}
	}
	return m
}

// usedVBNs lists the allocated physical VBNs within AA id of group g.
func (s *System) usedVBNs(g *Group, id aa.ID) []block.VBN {
	var out []block.VBN
	for _, seg := range g.topo.Segments(id) {
		pos := seg.Start
		for {
			v, ok := s.Agg.bm.NextUsed(pos, seg)
			if !ok {
				break
			}
			out = append(out, v)
			pos = v + 1
		}
	}
	return out
}

// chargeRelocationReads costs reading the live runs of an AA being cleaned.
func (s *System) chargeRelocationReads(g *Group, id aa.ID) {
	for d, seg := range g.topo.Segments(id) {
		for _, freeRun := range invertRuns(s.Agg.bm.FreeRuns(seg), seg) {
			s.c.DeviceBusy += g.devices[d].Read(freeRun.Len())
		}
	}
}

// invertRuns converts free runs within space into used runs.
func invertRuns(free []block.Range, space block.Range) []block.Range {
	var used []block.Range
	pos := space.Start
	for _, f := range free {
		if f.Start > pos {
			used = append(used, block.R(pos, f.Start))
		}
		pos = f.End
	}
	if pos < space.End {
		used = append(used, block.R(pos, space.End))
	}
	return used
}
