package wafl

import (
	"math/rand"
	"testing"

	"waflfs/internal/aa"
)

func TestAddGroupGrowsAggregate(t *testing.T) {
	tun := DefaultTunables()
	tun.CPEveryOps = 256
	s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 16 * aa.RAIDAgnosticBlocks}}, tun, 1)
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 200000)

	// Age the original two groups hard.
	rng := rand.New(rand.NewSource(2))
	for lba := uint64(0); lba < 150000; lba++ {
		s.Write(lun, lba, 1)
	}
	for i := 0; i < 100000; i++ {
		s.Write(lun, uint64(rng.Intn(150000)), 1)
	}
	s.CP()
	oldBlocks := s.Agg.Blocks()
	pre0 := s.Agg.groups[0].raidStats.BlocksWritten
	pre1 := s.Agg.groups[1].raidStats.BlocksWritten

	// Grow: one pristine RAID group appears at the top of the VBN space.
	g := s.Agg.AddGroup(testSpecs()[0])
	if g.Index != 2 || s.Agg.Blocks() != oldBlocks+g.Geometry().Blocks() {
		t.Fatalf("growth wrong: index=%d blocks=%d", g.Index, s.Agg.Blocks())
	}
	if best, ok := g.cache.Best(); !ok || best.Score != aaBlockCount(g.topo, best.ID) {
		t.Fatalf("new group best = %+v, want a fully empty AA", best)
	}
	s.CP() // persists the new group's TopAA block and grown bitmap pages

	// New writes flow disproportionately to the pristine group.
	for i := 0; i < 30000; i++ {
		s.Write(lun, uint64(rng.Intn(200000)), 1)
	}
	s.CP()
	d0 := s.Agg.groups[0].raidStats.BlocksWritten - pre0
	d1 := s.Agg.groups[1].raidStats.BlocksWritten - pre1
	d2 := s.Agg.groups[2].raidStats.BlocksWritten
	if d2 <= d0 || d2 <= d1 {
		t.Fatalf("new group got %d blocks vs aged %d/%d", d2, d0, d1)
	}
	checkConsistency(t, s)

	// Remount across growth keeps all groups operational.
	ms := s.Agg.Remount(true)
	if ms.Fallbacks != 0 {
		t.Fatalf("fallbacks after growth = %d", ms.Fallbacks)
	}
	for i := 0; i < 5000; i++ {
		s.Write(lun, uint64(rng.Intn(200000)), 1)
	}
	s.CP()
	s.Agg.CompleteBackgroundFill()
	s.CP()
	checkConsistency(t, s)
}
