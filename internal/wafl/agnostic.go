package wafl

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"waflfs/internal/aa"
	"waflfs/internal/bitmap"
	"waflfs/internal/block"
	"waflfs/internal/hbps"
	"waflfs/internal/obs"
	"waflfs/internal/obs/optrace"
	"waflfs/internal/obs/picks"
	"waflfs/internal/parallel"
)

// agnosticSpace is the allocation machinery shared by every RAID-agnostic
// VBN space: the virtual space of each FlexVol volume and physical ranges
// backed by natively redundant storage (object stores). AAs are consecutive
// 32k-block runs and the AA cache is an HBPS (§3.3.2).
type agnosticSpace struct {
	name string
	topo *aa.Linear
	bm   *bitmap.Bitmap

	cache        *hbps.HBPS
	cacheEnabled bool
	workers      int // fan-out knob for replenish walks (Tunables.Workers)

	// Striped allocator hot path (AllocShards > 1, see allocctx.go): sh
	// stripes the HBPS list into per-shard pick queues; as holds the shard
	// ledgers and the modeled busy vectors. sh is nil on the classic path.
	sh *hbps.Sharded
	as *allocState

	// Allocation cursor within the current AA.
	curAA    aa.ID
	curValid bool
	cursor   block.VBN

	deltas map[aa.ID]int64
	rng    *rand.Rand

	// flushDeltas is the sealed generation's delta bank when CPs are
	// pipelined: sealCPDeltas swaps the open map here, new writes keep
	// accumulating into a fresh deltas map, and applyFlushDeltas folds the
	// sealed bank into the HBPS when the in-flight generation commits. Nil
	// or empty on the classic path.
	flushDeltas map[aa.ID]int64

	// delayed, when non-nil, queues frees per AA with HBPS-tracked scores
	// instead of applying them immediately; see delayedfree.go. Under
	// pipelined CPs delayedSealed holds the previous generation's queue:
	// frees landing mid-flush go to delayed (the open generation) while the
	// in-flight flush reclaims only from delayedSealed, crediting each free
	// to the CP it logically belongs to.
	delayed       *delayedFrees
	delayedSealed *delayedFrees

	// Measurement counters.
	pickedScoreSum float64
	pickedCount    uint64
	cacheOps       uint64
	replenishes    uint64
	// scannedBlocks counts bitmap positions the allocation cursor swept
	// (allocated blocks plus skipped-over used blocks). Consuming a fuller
	// AA sweeps more positions per allocated block — the §2.5 cost of not
	// colocating virtual VBNs, which the CPU model charges per unit.
	scannedBlocks   uint64
	allocatedBlocks uint64

	// Observability handles (nil-safe; set by Aggregate.registerSpaceObs).
	st     *obs.SysTracer
	shard  int // trace shard: volume index, or poolShard for the pool
	pobs   *parallel.Obs
	scored *obs.Counter
	// lat is the per-volume modeled op-latency histogram feeding the SLO
	// latency SLI (vol.<name>.lat_ns; nil for the pool). Reads observe
	// their modeled device+CPU cost per op; writes observe their share of
	// the CP's modeled cost at commit (see System.CP).
	lat *obs.Histogram

	// Allocation-decision provenance and watchdog hooks (nil when off;
	// set by Aggregate.registerSpaceObs). cpNow points at the aggregate's
	// current CP ordinal; wdCursor rotates the watchdog's listed-AA sample
	// window across the HBPS list.
	pr       *picks.Ring
	cpNow    *uint64
	wd       *watchdogState
	wdCursor int

	// Op tracing (nil/zero when off; set by Aggregate.registerSpaceObs).
	// tr is the volume's optrace ring; curTID is the trace ID of the
	// sampled op currently allocating (0 otherwise), stamped into pick
	// provenance records; lastPick snapshots the most recent pick decision
	// for the trace's alloc annotation span; attr accumulates per-stage
	// attributed nanoseconds that reconcile exactly with lat's total.
	tr       *optrace.Ring
	curTID   uint64
	lastPick pickNote
	attr     [optrace.NumStages]uint64
}

// pickNote is the last pick decision, kept for optrace span annotation.
type pickNote struct {
	aa     uint32
	score  int64
	runner int64
	reason picks.Reason
}

func newAgnosticSpace(name string, space block.Range, bm *bitmap.Bitmap, tun Tunables, enabled bool, rng *rand.Rand) *agnosticSpace {
	s := &agnosticSpace{
		name:         name,
		topo:         aa.NewLinearDefault(space),
		bm:           bm,
		cacheEnabled: enabled,
		workers:      tun.Workers,
		as:           newAllocState(tun),
		deltas:       make(map[aa.ID]int64),
		rng:          rng,
	}
	s.cache = hbps.New(hbps.DefaultConfig())
	// Fresh space: every AA is empty, so every AA scores its full size.
	for id := 0; id < s.topo.NumAAs(); id++ {
		s.cache.Track(aa.ID(id), s.aaScore(aa.ID(id)))
	}
	s.resetShardCache()
	return s
}

// resetShardCache (re)builds the shard queues around the current HBPS
// object and drops all ledger state. Called wherever the cache is replaced
// or rebuilt wholesale (fresh build, remount, repair).
func (s *agnosticSpace) resetShardCache() {
	s.as.clearLedgers()
	if s.as.sharded() && s.cacheEnabled {
		s.sh = hbps.NewSharded(s.cache, s.as.shards, s.as.batch)
	} else {
		s.sh = nil
	}
}

// pendingDelta is the total pending score delta for id: the shared map
// plus every shard ledger plus the sealed flush bank (the quantity the
// scrub invariant subtracts). Including the sealed bank keeps the scrub
// and watchdog invariants valid mid-pipeline: a sealed delta is still a
// bitmap mutation the cache has not yet seen.
func (s *agnosticSpace) pendingDelta(id aa.ID) int64 {
	return s.as.pending(id, s.deltas) + s.flushDeltas[id]
}

func (s *agnosticSpace) aaScore(id aa.ID) uint32 {
	return uint32(aa.Score(s.topo, s.bm, id))
}

// pick selects the next AA: HBPS pop when enabled (replenishing from a
// bitmap walk if the list has run dry), uniformly random otherwise.
func (s *agnosticSpace) pick() bool {
	if s.sh != nil {
		return s.pickSharded()
	}
	var id aa.ID
	if s.cacheEnabled {
		reason := picks.HBPSBin
		wdOn := s.wd != nil && s.wd.enabled
		frontBin := -1
		if wdOn { // capture the claimed bin before the pop unlists the item
			if _, b, ok := s.cache.PeekBestBin(); ok {
				frontBin = b
			}
		}
		got, ok := s.cache.PopBest()
		if !ok {
			s.st.Emit("alloc.virt", s.shard, "list_dry", 0, 0)
			s.replenish()
			reason = picks.Refill
			if wdOn {
				frontBin = -1
				if _, b, peeked := s.cache.PeekBestBin(); peeked {
					frontBin = b
				}
			}
			if got, ok = s.cache.PopBest(); !ok {
				return false
			}
		}
		s.cacheOps++
		s.as.picks++
		s.as.pickBusy[0] += s.as.opCost // shared critical section: one vector
		id = got
		if s.st != nil { // score recomputation is pure popcount; skip when off
			s.st.Emit("alloc.virt", s.shard, "hbps_pop", 0, int64(s.aaScore(id)))
		}
		if wdOn {
			s.wd.pickCheckSpace(s, id, frontBin)
		}
		if s.pr != nil || s.tr != nil {
			runner := int64(-1)
			if _, bin, ok := s.cache.PeekBestBin(); ok {
				// HBPS has no runner-up score; record the next listed AA's
				// bin floor as the guaranteed lower bound.
				runner = int64(s.cache.BinFloor(bin))
			}
			score := int64(s.aaScore(id))
			s.lastPick = pickNote{aa: uint32(id), score: score, runner: runner, reason: reason}
			if s.pr != nil {
				s.pr.Record(*s.cpNow, uint32(id), score, runner, s.cache.ListLen(), reason, s.curTID)
			}
		}
	} else {
		n := s.topo.NumAAs()
		found := false
		for try := 0; try < 16 && !found; try++ {
			id = aa.ID(s.rng.Intn(n))
			found = s.aaScore(id) > 0
		}
		if !found {
			start := s.rng.Intn(n)
			for off := 0; off < n; off++ {
				id = aa.ID((start + off) % n)
				if s.aaScore(id) > 0 {
					found = true
					break
				}
			}
		}
		if !found {
			return false
		}
		if s.st != nil {
			s.st.Emit("alloc.virt", s.shard, "random_pick", 0, int64(s.aaScore(id)))
		}
		if s.pr != nil || s.tr != nil {
			score := int64(s.aaScore(id))
			s.lastPick = pickNote{aa: uint32(id), score: score, runner: -1, reason: picks.BitmapFallback}
			if s.pr != nil {
				s.pr.Record(*s.cpNow, uint32(id), score, -1, 0, picks.BitmapFallback, s.curTID)
			}
		}
	}
	s.curAA = id
	s.curValid = true
	seg := s.topo.Segments(id)[0]
	s.cursor = seg.Start
	s.pickedScoreSum += float64(s.aaScore(id)) / float64(seg.Len())
	s.pickedCount++
	return true
}

// pickSharded is the striped pick path: pop the fixed shard's queue front,
// staging ahead of exhaustion so refills — including the background bitmap
// rescan when the shared list runs dry — hide behind ongoing picks. The
// shard assignment is seq%shards, worker-independent, so the pick stream
// is bit-identical at any worker width.
func (s *agnosticSpace) pickSharded() bool {
	as := s.as
	shard := as.nextShard()
	reason := picks.ShardLocal
	id, ok := s.sh.Pop(shard)
	if !ok {
		// Stall: queue and standby batch are both dry. Refill synchronously;
		// this cost serializes, unlike pipelined staging.
		reason = picks.Refill
		as.stalls++
		n := s.stageShard(shard)
		as.stallBusy += time.Duration(n+1) * as.opCost
		if id, ok = s.sh.Pop(shard); !ok {
			// The shared list is dry, but other shards may still hoard IDs
			// (shards × batch can exceed the space's AA count). Rebalance:
			// drop every held ID back to tracked-but-unlisted and restage —
			// the replenish inside stageShard re-lists them.
			if s.sh.HeldCount() > 0 {
				n = s.sh.FlushAll()
				n += s.stageShard(shard)
				as.stallBusy += time.Duration(n) * as.opCost
				id, ok = s.sh.Pop(shard)
			}
			if !ok {
				return false
			}
		}
	}
	s.cacheOps++
	as.picks++
	if reason == picks.ShardLocal {
		as.localPicks++
	}
	as.pickBusy[shard] += as.opCost
	if s.st != nil { // score recomputation is pure popcount; skip when off
		s.st.Emit("alloc.virt", s.shard, "shard_pop", 0, int64(s.aaScore(id)))
	}
	if s.wd != nil && s.wd.enabled {
		// The staged near-best window spans shards×batch list positions, so
		// there is no single claimed bin to verify; the non-negative-score
		// floor still holds (claimed < 0 skips the bin comparison).
		s.wd.pickCheckSpace(s, id, -1)
	}
	if s.pr != nil || s.tr != nil {
		score := int64(s.aaScore(id))
		s.lastPick = pickNote{aa: uint32(id), score: score, runner: -1, reason: reason}
		if s.pr != nil {
			s.pr.Record(*s.cpNow, uint32(id), score, -1, s.sh.Len(shard)+s.cache.ListLen(), reason, s.curTID)
		}
	}
	// Pipelined refill: stage the next batch while the current one still
	// serves picks, so the eventual drain swaps in without stalling.
	if s.sh.Low(shard) {
		n := s.sh.Stage(shard, s.stageSkip)
		s.cacheOps += uint64(n)
		as.staged += uint64(n)
		as.refillBusy += time.Duration(n) * as.opCost
	}
	as.curShard = shard
	s.curAA = id
	s.curValid = true
	seg := s.topo.Segments(id)[0]
	s.cursor = seg.Start
	s.pickedScoreSum += float64(s.aaScore(id)) / float64(seg.Len())
	s.pickedCount++
	return true
}

// stageSkip keeps the in-flight cursor AA out of the shard queues: the CP
// fold or a replenish may re-list it mid-consumption, and queueing it would
// double-pick it.
func (s *agnosticSpace) stageSkip(id aa.ID) bool {
	return s.curValid && id == s.curAA
}

// stageShard refills the shard's standby batch off the shared list, running
// the background bitmap rescan first when the list itself has run dry — the
// rescan is part of the staged refill, so on the pipelined path its latency
// hides behind ongoing picks too. Returns entries staged.
func (s *agnosticSpace) stageShard(shard int) int {
	if s.cache.NeedsReplenish() {
		s.st.Emit("alloc.virt", s.shard, "list_dry", 0, 0)
		s.replenish()
	}
	n := s.sh.Stage(shard, s.stageSkip)
	s.cacheOps += uint64(n)
	return n
}

// replenish rebuilds the HBPS from a full bitmap walk — the background scan
// of §3.3.2 — charging the metafile reads and discarding pending deltas
// (the recomputed scores already include them). The popcount work shards
// across the work pool; the scan is charged whole-space once up front, so
// accounting does not depend on the shard count, and the scores feed the
// HBPS in AA order regardless of which worker computed them.
func (s *agnosticSpace) replenish() {
	s.replenishes++
	s.bm.ChargeScan(s.topo.Space())
	for id := range s.deltas {
		delete(s.deltas, id)
	}
	for id := range s.flushDeltas {
		delete(s.flushDeltas, id)
	}
	s.as.clearLedgers()
	scores := aa.ScoresObs(s.topo, s.bm, s.workers, s.pobs, s.scored)
	s.cache.Replenish(func(yield func(aa.ID, uint32)) {
		for id, sc := range scores {
			yield(aa.ID(id), uint32(sc))
		}
	})
	s.cacheOps += uint64(s.topo.NumAAs())
}

// allocate assigns up to n free VBNs, consuming the current AA sequentially
// and moving to the next best AA as each drains ("the write allocator picks
// an AA and then assigns all free VBNs from the AA in sequential order",
// §3.1). It returns fewer than n only when the space is out of free blocks.
func (s *agnosticSpace) allocate(n int) []block.VBN {
	out := make([]block.VBN, 0, n)
	for len(out) < n {
		if !s.curValid {
			if s.bm.CountFree(s.topo.Space()) == 0 {
				return out
			}
			if !s.pick() {
				return out
			}
		}
		seg := s.topo.Segments(s.curAA)[0]
		v, ok := s.bm.NextFree(s.cursor, seg)
		if !ok {
			s.scannedBlocks += uint64(seg.End - s.cursor)
			s.curValid = false
			continue
		}
		s.bm.Set(v)
		s.as.noteAlloc(s.curAA, s.deltas)
		s.scannedBlocks += uint64(v-s.cursor) + 1
		s.allocatedBlocks++
		s.cursor = v + 1
		out = append(out, v)
	}
	return out
}

// free returns a VBN to the space — immediately, or via the delayed-free
// queue when enabled.
func (s *agnosticSpace) free(v block.VBN) {
	if !s.bm.Test(v) {
		panic(fmt.Sprintf("wafl: double free of %v in %s", v, s.name))
	}
	if s.delayed != nil {
		s.delayed.add(s.topo.AAOf(v), v)
		return
	}
	s.bm.Clear(v)
	s.as.noteFree(s.topo.AAOf(v), s.deltas)
}

// applyCPDeltas flushes the batched score updates into the HBPS at the CP
// boundary. HBPS stores no per-AA scores, so the previous score is derived
// from the authoritative bitmap count minus the pending delta. Updates are
// applied in AA order: the HBPS pop order breaks score ties by insertion
// sequence, so folding the deltas in map-iteration order would make
// allocation decisions vary run to run.
func (s *agnosticSpace) applyCPDeltas() {
	// Fold the shard ledgers into the shared delta map first (shard-index
	// order, IDs sorted within each shard) so the HBPS updates below see
	// totals identical at any worker width.
	s.as.fold(s.deltas)
	if !s.cacheEnabled {
		for id := range s.deltas {
			delete(s.deltas, id)
		}
		return
	}
	var folds int64
	for _, id := range sortedIDs(s.deltas) {
		d := s.deltas[id]
		if d == 0 {
			delete(s.deltas, id)
			continue
		}
		newScore := s.aaScore(id)
		old := int64(newScore) - d
		if old < 0 {
			panic(fmt.Sprintf("wafl: %s AA %d delta %d implies negative old score", s.name, id, d))
		}
		s.cache.Update(id, uint32(old), newScore)
		s.cacheOps++
		folds++
		delete(s.deltas, id)
	}
	s.st.Emit("cp.fold.virt", s.shard, "hbps_updates", 0, folds)
}

// sealCPDeltas closes the open generation's ledger for a pipelined CP:
// shard ledgers fold into the shared map (same deterministic order as the
// classic fold), then the whole map swaps into the flush bank and a fresh
// open map takes its place. New writes accumulate into the fresh map while
// the sealed bank waits for applyFlushDeltas at the generation's commit.
func (s *agnosticSpace) sealCPDeltas() {
	s.as.fold(s.deltas)
	s.flushDeltas = s.deltas
	s.deltas = make(map[aa.ID]int64)
}

// applyFlushDeltas folds the sealed generation's delta bank into the HBPS
// when its flush commits. The HBPS stores no per-AA scores, so the current
// listed score is derived from the authoritative bitmap count minus every
// delta the cache has not seen (open ledgers + open map); subtracting the
// sealed delta from that gives the score the entry was listed at. Both are
// provably non-negative — a violation means ledger corruption.
func (s *agnosticSpace) applyFlushDeltas() {
	if len(s.flushDeltas) == 0 {
		return
	}
	if !s.cacheEnabled {
		for id := range s.flushDeltas {
			delete(s.flushDeltas, id)
		}
		return
	}
	var folds int64
	for _, id := range sortedIDs(s.flushDeltas) {
		d := s.flushDeltas[id]
		delete(s.flushDeltas, id)
		if d == 0 {
			continue
		}
		open := s.as.pending(id, s.deltas)
		cur := int64(s.aaScore(id)) - open
		old := cur - d
		if cur < 0 || old < 0 {
			panic(fmt.Sprintf("wafl: %s AA %d sealed delta %d implies negative score (cur %d)", s.name, id, d, cur))
		}
		s.cache.Update(id, uint32(old), uint32(cur))
		s.cacheOps++
		folds++
	}
	s.st.Emit("cp.fold.virt", s.shard, "hbps_updates", 0, folds)
}

// sortedIDs returns the map's keys in ascending AA order, so cache updates
// derived from delta maps are applied deterministically.
func sortedIDs[V any](m map[aa.ID]V) []aa.ID {
	ids := make([]aa.ID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// SpaceMetrics mirrors GroupMetrics for RAID-agnostic spaces.
type SpaceMetrics struct {
	PickedScoreFraction float64
	CacheOps            uint64
	Replenishes         uint64
	// ScannedBlocks is the allocation cursor's cumulative sweep length;
	// divided by blocks allocated it is the inverse of the mean free
	// fraction actually consumed.
	ScannedBlocks uint64
	// AllocatedBlocks counts blocks assigned since the last reset.
	AllocatedBlocks uint64
}

func (s *agnosticSpace) metrics() SpaceMetrics {
	m := SpaceMetrics{CacheOps: s.cacheOps, Replenishes: s.replenishes,
		ScannedBlocks: s.scannedBlocks, AllocatedBlocks: s.allocatedBlocks}
	if s.pickedCount > 0 {
		m.PickedScoreFraction = s.pickedScoreSum / float64(s.pickedCount)
	}
	return m
}

func (s *agnosticSpace) resetMetrics() {
	s.pickedScoreSum, s.pickedCount = 0, 0
	s.cacheOps, s.replenishes = 0, 0
	s.as.resetCounters()
	// Note: reset only between CPs (System.CP snapshots scannedBlocks at
	// CP start, and sweeps happen only inside CP).
	s.scannedBlocks, s.allocatedBlocks = 0, 0
}
