package wafl

import (
	"fmt"

	"waflfs/internal/aa"
	"waflfs/internal/block"
	"waflfs/internal/hbps"
)

// Delayed frees. Freeing a block is not just a bitmap update: the metafile
// page must be read, modified, and written back, so WAFL batches frees and
// processes them sorted by location [17, 18]. The paper notes (§3.3.2) that
// the HBPS data structure "is used to track delayed-free scores": each AA's
// score is its count of pending frees, and the reclamation scan processes
// the AAs with the most pending frees first — the most metafile-efficient
// order, since all frees within an AA share one bitmap-metafile block.
//
// When Tunables.DelayedVirtFrees is enabled, virtual-VBN frees are queued
// per AA instead of applied immediately; each CP reclaims up to
// DelayedFreeBudgetPerCP blocks in HBPS (most-pending-first) order. Queued
// blocks stay allocated in the bitmap, so the allocator never hands them
// out before the reclaim applies.

// delayedFrees is the per-space queue plus the HBPS tracking its scores.
type delayedFrees struct {
	pending map[aa.ID][]block.VBN
	count   int
	cache   *hbps.HBPS
}

func newDelayedFrees() *delayedFrees {
	return &delayedFrees{
		pending: make(map[aa.ID][]block.VBN),
		cache:   hbps.New(hbps.DefaultConfig()),
	}
}

// add queues one free and bumps the AA's delayed-free score.
func (d *delayedFrees) add(id aa.ID, v block.VBN) {
	old := len(d.pending[id])
	d.pending[id] = append(d.pending[id], v)
	d.count++
	if old == 0 {
		d.cache.Track(id, 1)
	} else {
		d.cache.Update(id, uint32(old), uint32(old+1))
	}
}

// pop removes and returns the AA with the most pending frees (within the
// HBPS error margin) and its queued blocks.
func (d *delayedFrees) pop() (aa.ID, []block.VBN, bool) {
	for {
		id, ok := d.cache.PopBest()
		if !ok {
			if d.count > 0 {
				// The list ran dry while counts remain: replenish from the
				// authoritative queue (the background scan of §3.3.2).
				// Yield in AA order: the HBPS breaks score ties by
				// insertion sequence, so map order would leak run-to-run
				// nondeterminism into the reclamation order.
				d.cache.Replenish(func(yield func(aa.ID, uint32)) {
					for _, id := range sortedIDs(d.pending) {
						yield(id, uint32(len(d.pending[id])))
					}
				})
				continue
			}
			return 0, nil, false
		}
		vs := d.pending[id]
		if len(vs) == 0 {
			// Stale list entry (shouldn't happen, but stay robust).
			continue
		}
		delete(d.pending, id)
		d.count -= len(vs)
		d.cache.Untrack(id, uint32(len(vs)))
		return id, vs, true
	}
}

// absorb moves every queued free from o into d, in AA order so HBPS
// insertion sequence — and hence reclamation order — stays deterministic.
// Used at pipelined generation handoff: the sealed queue absorbs whatever
// the previous sealed generation's budget left behind (the carryover), and
// scores stay HBPS-consistent because each AA updates by its whole bulk.
func (d *delayedFrees) absorb(o *delayedFrees) {
	for _, id := range sortedIDs(o.pending) {
		vs := o.pending[id]
		old := len(d.pending[id])
		d.pending[id] = append(d.pending[id], vs...)
		d.count += len(vs)
		if old == 0 {
			d.cache.Track(id, uint32(len(vs)))
		} else {
			d.cache.Update(id, uint32(old), uint32(old+len(vs)))
		}
		delete(o.pending, id)
		o.cache.Untrack(id, uint32(len(vs)))
	}
	o.count = 0
}

// PendingFrees returns the number of queued (not yet applied) virtual-VBN
// frees in the volume, across both the open and (pipelined) sealed
// generations.
func (v *FlexVol) PendingFrees() int {
	n := 0
	if v.space.delayed != nil {
		n += v.space.delayed.count
	}
	if v.space.delayedSealed != nil {
		n += v.space.delayedSealed.count
	}
	return n
}

// reclaimSealedFrees applies queued frees from the SEALED generation's
// queue, best-AA-first, until the budget is exhausted (budget <= 0 means
// unlimited). Unlike reclaimDelayedFrees it credits the score drops to the
// sealed flushDeltas bank — the frees belong to the committing CP, not the
// open one — so the flush-time cache fold settles them with the rest of the
// generation. Whatever the budget leaves behind stays in the sealed queue
// and is carried into the next generation at the following seal (absorb).
func (s *agnosticSpace) reclaimSealedFrees(budget int) (freed, aas int) {
	if s.delayedSealed == nil {
		return 0, 0
	}
	for s.delayedSealed.count > 0 && (budget <= 0 || freed < budget) {
		id, vs, ok := s.delayedSealed.pop()
		if !ok {
			break
		}
		for _, v := range vs {
			if !s.bm.Clear(v) {
				panic(fmt.Sprintf("wafl: delayed free of unallocated %v in %s", v, s.name))
			}
			s.flushDeltas[id]++
			freed++
		}
		aas++
	}
	return freed, aas
}

// reclaimDelayedFrees applies queued frees, best-AA-first, until the budget
// is exhausted (budget <= 0 means unlimited). Whole AAs are processed at a
// time; it returns blocks freed and AAs processed.
func (s *agnosticSpace) reclaimDelayedFrees(budget int) (freed, aas int) {
	if s.delayed == nil {
		return 0, 0
	}
	for s.delayed.count > 0 && (budget <= 0 || freed < budget) {
		id, vs, ok := s.delayed.pop()
		if !ok {
			break
		}
		for _, v := range vs {
			if !s.bm.Clear(v) {
				panic(fmt.Sprintf("wafl: delayed free of unallocated %v in %s", v, s.name))
			}
			s.as.noteFree(id, s.deltas)
			freed++
		}
		aas++
	}
	return freed, aas
}
