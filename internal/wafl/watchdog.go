package wafl

import (
	"fmt"

	"waflfs/internal/aa"
	"waflfs/internal/bitmap"
	"waflfs/internal/heapcache"
	"waflfs/internal/obs"
)

// Online invariant watchdogs: cheap per-CP monitors that keep the
// mount-time scrub's guarantees live between explicit Scrub() calls.
// Three invariant classes are watched:
//
//   - Free-block conservation across delayed frees: per volume, the
//     virtual bitmap's used count must equal the refcounted written blocks
//     plus the delayed-free queue (delayed frees keep the bit set while
//     the refcount entry is already gone).
//
//   - Cached-score-vs-bitmap spot checks on a rotating AA sample: the
//     scrub invariant (bitmapScore == cachedScore + pendingDelta for heap
//     caches; listed bin == Bin(bitmapScore - delta) for HBPS) verified
//     over a small window that rotates each CP, so full coverage accrues
//     over time at O(sample) popcounts per CP instead of O(space).
//
//   - Pick-quality floor at pick time: a heap pick's cached score must
//     equal the bitmap-derived score minus the pending delta exactly; an
//     HBPS pick must fall within one bin of the best tracked bin — the
//     paper's §3.3.2 near-best bound.
//
//   - Shard-ledger consistency (AllocShards > 1): every entry held in a
//     shard queue mid-CP satisfies frozenScore == bitmapScore − pending
//     (pending spans the shared delta map plus every shard ledger), and
//     after the CP-boundary fold every ledger is empty — a stale merge
//     leaves residue or a score mismatch, and this class catches both.
//
//   - Generation states (Pipeline): the double-buffered flush banks must
//     be empty whenever no generation is in flight (a leftover sealed
//     delta or write set means a generation was dropped mid-commit), an
//     in-flight generation's sealed write set must still be allocated in
//     the bitmap, and no shard queue may hold a batch stamped with a
//     generation newer than the current one.
//
//   - Delayed-free generations (Pipeline + DelayedVirtFrees): each queue
//     (open gen n+1 and sealed gen n) must self-agree — its count equals
//     its per-AA lists and its HBPS tracks exactly its AAs — so scores
//     stay consistent across the seal-time handoff, and the conservation
//     check above extends to bitmap used = refcounts + delayed(gen n) +
//     delayed(gen n+1).
//
// Violations bump watchdog.* counters (always registered, so metric
// streams keep their shape whether or not the monitors run) and append to
// a bounded description log; StrictWatchdogs promotes them to panics so
// tests fail hard. All checks are purely observational — no modeled cost —
// and are serial and deterministic, so enabling them preserves the
// Workers=1 vs N equivalence contract.

// watchdogLogBound caps the retained violation descriptions.
const watchdogLogBound = 16

type watchdogState struct {
	enabled bool
	strict  bool
	sample  int

	checks     *obs.Counter
	violations *obs.Counter
	consChecks *obs.Counter
	consViol   *obs.Counter
	scoreCheck *obs.Counter
	scoreViol  *obs.Counter
	pickChecks *obs.Counter
	pickViol   *obs.Counter
	ledgerChk  *obs.Counter
	ledgerViol *obs.Counter
	genChk     *obs.Counter
	genViol    *obs.Counter
	dfgenChk   *obs.Counter
	dfgenViol  *obs.Counter

	log []string
}

// initWatchdogs registers the watchdog.* counters (unconditionally — the
// metric shape must not depend on whether the monitors run) and arms the
// monitors when requested. Called from initObs.
func (ag *Aggregate) initWatchdogs(o ObsOptions) {
	ag.wd = watchdogState{
		enabled:    o.Watchdogs,
		strict:     o.StrictWatchdogs,
		sample:     o.WatchdogSample,
		checks:     ag.reg.Counter("watchdog.checks"),
		violations: ag.reg.Counter("watchdog.violations"),
		consChecks: ag.reg.Counter("watchdog.conservation_checks"),
		consViol:   ag.reg.Counter("watchdog.conservation_violations"),
		scoreCheck: ag.reg.Counter("watchdog.score_checks"),
		scoreViol:  ag.reg.Counter("watchdog.score_violations"),
		pickChecks: ag.reg.Counter("watchdog.pick_checks"),
		pickViol:   ag.reg.Counter("watchdog.pick_violations"),
		ledgerChk:  ag.reg.Counter("watchdog.ledger_checks"),
		ledgerViol: ag.reg.Counter("watchdog.ledger_violations"),
		genChk:     ag.reg.Counter("watchdog.gen_checks"),
		genViol:    ag.reg.Counter("watchdog.gen_violations"),
		dfgenChk:   ag.reg.Counter("watchdog.dfgen_checks"),
		dfgenViol:  ag.reg.Counter("watchdog.dfgen_violations"),
	}
	if ag.wd.sample <= 0 {
		ag.wd.sample = 8
	}
}

// WatchdogViolations returns the retained violation descriptions (at most
// watchdogLogBound; the watchdog.violations counter has the full count).
func (ag *Aggregate) WatchdogViolations() []string {
	return append([]string(nil), ag.wd.log...)
}

func (w *watchdogState) violate(class *obs.Counter, format string, args ...interface{}) {
	w.violations.Inc()
	class.Inc()
	msg := fmt.Sprintf(format, args...)
	if len(w.log) < watchdogLogBound {
		w.log = append(w.log, msg)
	}
	if w.strict {
		panic("wafl: watchdog: " + msg)
	}
}

// pickCheckGroup is the RAID-aware pick-quality floor: the popped entry's
// cached score must equal the bitmap truth minus the pending delta.
func (w *watchdogState) pickCheckGroup(g *Group, bm *bitmap.Bitmap, id aa.ID, score uint64) {
	w.checks.Inc()
	w.pickChecks.Inc()
	want := int64(aa.Score(g.topo, bm, id)) - g.pendingDelta(id)
	if int64(score) != want {
		w.violate(w.pickViol, "rg%d pick: AA %d cached score %d, bitmap-derived %d",
			g.Index, id, score, want)
	}
}

// pickCheckSpace is the HBPS pick-quality floor (§3.3.2). The list pops
// from its best listed bin, so the near-best guarantee reduces to the
// popped AA actually belonging in the bin it was listed under: its
// bitmap-derived score (net of pending deltas) must bin exactly to
// claimed, the bin PeekBestBin reported just before the pop. A comparison
// against BestTrackedBin would be unsound mid-CP — AAs popped earlier in
// the same CP stay histogram-tracked at their stale pop-time scores until
// the boundary fold.
func (w *watchdogState) pickCheckSpace(sp *agnosticSpace, id aa.ID, claimed int) {
	w.checks.Inc()
	w.pickChecks.Inc()
	want := int64(sp.aaScore(id)) - sp.pendingDelta(id)
	if want < 0 {
		w.violate(w.pickViol, "%s pick: AA %d bitmap-derived score %d is negative",
			sp.name, id, want)
		return
	}
	if claimed < 0 {
		return
	}
	if got := sp.cache.Bin(uint32(want)); got != claimed {
		w.violate(w.pickViol, "%s pick: AA %d listed in bin %d, bitmap-derived bin %d — pick floor broken",
			sp.name, id, claimed, got)
	}
}

// sampleGroup spot-checks a rotating window of the heap cache against the
// bitmap, using the scrub formula. Seed-only caches hold a subset, so only
// tracked membership is checked; the cursor-held AA is skipped (its score
// folds back at finishAA).
func (w *watchdogState) sampleGroup(ag *Aggregate, g *Group) {
	if !g.cacheEnabled {
		return
	}
	n := g.topo.NumAAs()
	if n == 0 {
		return
	}
	k := w.sample
	if k > n {
		k = n
	}
	for i := 0; i < k; i++ {
		id := aa.ID((g.wdCursor + i) % n)
		if !g.cache.Tracked(id) || (g.curValid && id == g.curAA) {
			continue
		}
		w.checks.Inc()
		w.scoreCheck.Inc()
		want := int64(aa.Score(g.topo, ag.bm, id)) - g.pendingDelta(id)
		if got := g.cache.Score(id); int64(got) != want {
			w.violate(w.scoreViol, "rg%d: AA %d cached score %d, bitmap-derived %d",
				g.Index, id, got, want)
		}
	}
	g.wdCursor = (g.wdCursor + k) % n
}

// sampleSpace spot-checks an HBPS: the histogram must track every AA, and
// a rotating window of listed AAs must each sit in the bin of its
// bitmap-derived score (the scrub's listed-placement invariant).
func (w *watchdogState) sampleSpace(sp *agnosticSpace) {
	if !sp.cacheEnabled {
		return
	}
	w.checks.Inc()
	w.scoreCheck.Inc()
	if got, n := sp.cache.Total(), sp.topo.NumAAs(); got != uint64(n) {
		w.violate(w.scoreViol, "%s: HBPS tracks %d AAs, want %d", sp.name, got, n)
		return
	}
	l := sp.cache.ListLen()
	if l == 0 {
		return
	}
	k := w.sample
	if k > l {
		k = l
	}
	for i := 0; i < k; i++ {
		id, bin := sp.cache.ListedAt((sp.wdCursor + i) % l)
		w.checks.Inc()
		w.scoreCheck.Inc()
		want := int64(sp.aaScore(id)) - sp.pendingDelta(id)
		if want < 0 {
			w.violate(w.scoreViol, "%s: listed AA %d bitmap-derived score %d is negative",
				sp.name, id, want)
			continue
		}
		if wb := sp.cache.Bin(uint32(want)); wb != bin {
			w.violate(w.scoreViol, "%s: listed AA %d in bin %d, bitmap-derived bin %d",
				sp.name, id, bin, wb)
		}
	}
	sp.wdCursor = (sp.wdCursor + k) % l
}

// sampleShardsGroup verifies the striped allocator's mid-CP state for one
// RAID group: every entry held in a shard queue must satisfy the frozen-
// score invariant against the bitmap, and — since runWatchdogs executes
// after the CP fold — every shard ledger must be empty. The held set is
// bounded by 2×batch×shards, so the full scan stays O(held) per CP.
func (w *watchdogState) sampleShardsGroup(ag *Aggregate, g *Group) {
	if g.sh == nil {
		return
	}
	g.sh.Each(func(shard int, e heapcache.Entry) {
		w.checks.Inc()
		w.ledgerChk.Inc()
		want := int64(aa.Score(g.topo, ag.bm, e.ID)) - g.pendingDelta(e.ID)
		if int64(e.Score) != want {
			w.violate(w.ledgerViol,
				"rg%d shard %d: staged AA %d frozen score %d, bitmap-derived %d — stale merge",
				g.Index, shard, e.ID, e.Score, want)
		}
	})
	w.checks.Inc()
	w.ledgerChk.Inc()
	if shard, id, d, ok := g.as.residue(); ok {
		w.violate(w.ledgerViol,
			"rg%d shard %d: ledger still holds %+d for AA %d after the CP fold",
			g.Index, shard, d, id)
	}
}

// sampleShardsSpace is the HBPS counterpart: held IDs carry no frozen
// scores (the histogram stays authoritative), so the check is the pick
// floor — bitmap-derived score net of pending deltas must be non-negative —
// plus the post-fold empty-ledger requirement.
func (w *watchdogState) sampleShardsSpace(sp *agnosticSpace) {
	if sp.sh == nil {
		return
	}
	sp.sh.Each(func(shard int, id aa.ID) {
		w.checks.Inc()
		w.ledgerChk.Inc()
		if want := int64(sp.aaScore(id)) - sp.pendingDelta(id); want < 0 {
			w.violate(w.ledgerViol,
				"%s shard %d: staged AA %d bitmap-derived score %d is negative — stale merge",
				sp.name, shard, id, want)
		}
	})
	w.checks.Inc()
	w.ledgerChk.Inc()
	if shard, id, d, ok := sp.as.residue(); ok {
		w.violate(w.ledgerViol,
			"%s shard %d: ledger still holds %+d for AA %d after the CP fold",
			sp.name, shard, d, id)
	}
}

// checkGenStates verifies the pipelined double-buffer invariants. With no
// generation in flight every sealed bank must be empty (residue means a
// generation was dropped mid-commit); with one in flight, a spot sample of
// its sealed write set must still be allocated in the aggregate bitmap. In
// both states no shard queue may hold a batch stamped with a generation
// newer than the current one.
func (w *watchdogState) checkGenStates(s *System) {
	ag := s.Agg
	inFlight := s.pipe.inFlight
	heldCheck := func(name string, shard int, gen, cur uint64) {
		w.checks.Inc()
		w.genChk.Inc()
		if gen > cur {
			w.violate(w.genViol, "%s shard %d: held batch stamped gen %d, current gen %d — staging from the future",
				name, shard, gen, cur)
		}
	}
	for _, g := range ag.groups {
		w.checks.Inc()
		w.genChk.Inc()
		if !inFlight && (len(g.flushDeltas) > 0 || len(g.flushWrites) > 0 || len(g.flushCS) > 0) {
			w.violate(w.genViol,
				"rg%d: sealed bank not empty with no generation in flight (%d deltas, %d writes, %d checksums)",
				g.Index, len(g.flushDeltas), len(g.flushWrites), len(g.flushCS))
		}
		if inFlight && len(g.flushWrites) > 0 {
			stride := len(g.flushWrites) / w.sample
			if stride < 1 {
				stride = 1
			}
			for i := 0; i < len(g.flushWrites); i += stride {
				w.checks.Inc()
				w.genChk.Inc()
				if v := g.flushWrites[i]; !ag.bm.Test(v) {
					w.violate(w.genViol, "rg%d: in-flight sealed write %v not allocated in bitmap", g.Index, v)
				}
			}
		}
		if g.sh != nil {
			name := fmt.Sprintf("rg%d", g.Index)
			cur := g.sh.Gen()
			g.sh.HeldGens(func(shard int, gen uint64) { heldCheck(name, shard, gen, cur) })
		}
	}
	spaces := make([]*agnosticSpace, 0, len(ag.vols)+1)
	for _, v := range ag.vols {
		spaces = append(spaces, v.space)
	}
	if ag.pool != nil {
		spaces = append(spaces, ag.pool.space)
	}
	for _, sp := range spaces {
		w.checks.Inc()
		w.genChk.Inc()
		if !inFlight && len(sp.flushDeltas) > 0 {
			w.violate(w.genViol, "%s: %d sealed deltas with no generation in flight", sp.name, len(sp.flushDeltas))
		}
		if sp.sh != nil {
			cur := sp.sh.Gen()
			sp.sh.HeldGens(func(shard int, gen uint64) { heldCheck(sp.name, shard, gen, cur) })
		}
	}
}

// checkDFQueue verifies one delayed-free queue's self-consistency across
// the generation handoff: its count must equal its queued blocks and its
// HBPS must track exactly its AAs — absorb() moving whole per-AA bulks
// preserves both, and any drift here means reclamation order (and hence
// the budget's spending) has decoupled from the queue's truth.
func (w *watchdogState) checkDFQueue(vol, gen string, d *delayedFrees) {
	if d == nil {
		return
	}
	w.checks.Inc()
	w.dfgenChk.Inc()
	queued := 0
	for _, vs := range d.pending {
		queued += len(vs)
	}
	if queued != d.count {
		w.violate(w.dfgenViol, "volume %q delayed(%s): count %d, queued blocks %d", vol, gen, d.count, queued)
	}
	w.checks.Inc()
	w.dfgenChk.Inc()
	if got := d.cache.Total(); got != uint64(len(d.pending)) {
		w.violate(w.dfgenViol, "volume %q delayed(%s): HBPS tracks %d AAs, queue holds %d", vol, gen, got, len(d.pending))
	}
}

// runWatchdogs executes the per-CP monitors. Called at the end of
// System.CP, after CommitCP has folded the pending deltas, so cached
// scores are fresh except for the cursor-held AAs the checks skip.
func (s *System) runWatchdogs() {
	w := &s.Agg.wd
	if !w.enabled {
		return
	}
	ag := s.Agg
	for _, v := range ag.vols {
		w.checks.Inc()
		w.consChecks.Inc()
		want := uint64(len(v.rc))
		delayed := uint64(0)
		if v.space.delayed != nil {
			delayed = uint64(v.space.delayed.count)
		}
		if v.space.delayedSealed != nil {
			// Pipelined: frees queued in the sealed (flushing) generation
			// also hold their bits — bitmap used = refcounts + delayed(n) +
			// delayed(n+1).
			delayed += uint64(v.space.delayedSealed.count)
		}
		want += delayed
		if got := v.bm.Used(); got != want {
			w.violate(w.consViol,
				"volume %q: bitmap used %d, refcounted %d + delayed %d — free blocks not conserved",
				v.Name, got, len(v.rc), delayed)
		}
	}
	for _, g := range ag.groups {
		w.sampleGroup(ag, g)
		w.sampleShardsGroup(ag, g)
	}
	for _, v := range ag.vols {
		w.sampleSpace(v.space)
		w.sampleShardsSpace(v.space)
	}
	if ag.pool != nil {
		w.sampleSpace(ag.pool.space)
		w.sampleShardsSpace(ag.pool.space)
	}
	// The generation monitors run only under pipelining so the classic
	// path's watchdog.* streams keep their exact pre-pipeline shape.
	if s.tun.Pipeline {
		w.checkGenStates(s)
		for _, v := range ag.vols {
			w.checkDFQueue(v.Name, "open", v.space.delayed)
			w.checkDFQueue(v.Name, "sealed", v.space.delayedSealed)
		}
	}
}
