package wafl

import (
	"waflfs/internal/control"
)

// Actuator is the bounded knob surface the closed-loop controller may
// touch. wafl re-exports the control-package contract so callers can wire
// a System's actuator without importing internal/control directly.
type Actuator = control.Actuator

// KnobSpec re-exports the per-knob metadata type.
type KnobSpec = control.KnobSpec

// Hard per-knob clamps. Policies may narrow these but never widen them;
// MaxStep bounds how far one actuation can move a knob regardless of the
// policy's step.
var knobSpecs = []KnobSpec{
	{Name: control.KnobAllocBatch, Min: 1, Max: 1024, MaxStep: 64},
	{Name: control.KnobDelayedBudget, Min: 0, Max: 1 << 20, MaxStep: 1 << 16},
	{Name: control.KnobFragEvery, Min: 1, Max: 1024, MaxStep: 16},
	{Name: control.KnobScrubKick, Min: 0, Max: 1 << 20, MaxStep: 1},
}

// sysActuator implements Actuator over a System's runtime knobs. All
// methods run on the CP thread (the controller evaluates in the CP tail),
// so the plain field mutations are race-free; HTTP-facing status reads go
// through the engine's knob cache, never this object.
type sysActuator struct {
	s *System
	// kicks counts scrub impulses applied so far — the scrub_kick knob's
	// "value", so each +1 step runs exactly one on-demand Scrub.
	kicks uint64
}

// Actuator returns the system's knob surface for the closed-loop
// controller. The same surface is handed to the control engine when
// ObsOptions.Control is armed; it is exposed publicly so tests and
// embedders can drive knobs directly.
func (s *System) Actuator() Actuator { return &s.act }

func (a *sysActuator) Knobs() []KnobSpec {
	return append([]KnobSpec(nil), knobSpecs...)
}

func (a *sysActuator) Knob(name string) (float64, bool) {
	s := a.s
	switch name {
	case control.KnobDelayedBudget:
		return float64(s.tun.DelayedFreeBudgetPerCP), true
	case control.KnobAllocBatch:
		b := s.tun.AllocBatch
		if b <= 0 {
			b = defaultAllocBatch
		}
		return float64(b), true
	case control.KnobFragEvery:
		fe := s.Agg.obsOpts.FragEvery
		if fe < 1 {
			fe = 1
		}
		return float64(fe), true
	case control.KnobScrubKick:
		return float64(a.kicks), true
	}
	return 0, false
}

func (a *sysActuator) SetKnob(name string, v float64) (float64, bool) {
	s := a.s
	switch name {
	case control.KnobDelayedBudget:
		b := int(v)
		if b < 0 {
			return 0, false
		}
		// Both reclaim sites (classic CP phase 1.5 and the pipelined
		// sealed-queue drain) read s.tun; the aggregate copy is kept
		// coherent for anything constructed later from it.
		s.tun.DelayedFreeBudgetPerCP = b
		s.Agg.tun.DelayedFreeBudgetPerCP = b
		return float64(b), true
	case control.KnobAllocBatch:
		b := int(v)
		if b < 1 {
			return 0, false
		}
		s.tun.AllocBatch = b
		s.Agg.tun.AllocBatch = b
		for _, g := range s.Agg.groups {
			g.as.batch = b
		}
		for _, vol := range s.Agg.vols {
			vol.space.as.batch = b
		}
		if s.Agg.pool != nil {
			s.Agg.pool.space.as.batch = b
		}
		return float64(b), true
	case control.KnobFragEvery:
		fe := int(v)
		if fe < 1 {
			return 0, false
		}
		s.Agg.obsOpts.FragEvery = fe
		return float64(fe), true
	case control.KnobScrubKick:
		k := uint64(v)
		if k <= a.kicks {
			return float64(a.kicks), false
		}
		// One scrub per impulse; the report folds into scrub.* counters
		// like any on-demand Scrub.
		for a.kicks < k {
			s.Agg.Scrub()
			a.kicks++
		}
		return float64(a.kicks), true
	}
	return 0, false
}
