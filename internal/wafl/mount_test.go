package wafl

import (
	"math/rand"
	"testing"

	"waflfs/internal/aa"
)

// agedSystem builds, fills, and churns a system, ending at a CP boundary.
func agedSystem(t *testing.T, tun Tunables, seed int64) (*System, *LUN) {
	t.Helper()
	tun.CPEveryOps = 512
	s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 16 * aa.RAIDAgnosticBlocks}}, tun, seed)
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 120000)
	for lba := uint64(0); lba < 120000; lba++ {
		s.Write(lun, lba, 1)
	}
	rng := rand.New(rand.NewSource(seed + 100))
	for i := 0; i < 60000; i++ {
		s.Write(lun, uint64(rng.Intn(120000)), 1)
	}
	s.CP()
	return s, lun
}

func TestRemountWithTopAAIsCheap(t *testing.T) {
	s, _ := agedSystem(t, DefaultTunables(), 1)
	bestBefore := make([]uint64, len(s.Agg.groups))
	for i, g := range s.Agg.groups {
		e, _ := g.cache.Best()
		bestBefore[i] = e.Score
	}

	ms := s.Agg.Remount(true)
	// TopAA path: 1 block per group + 2 per volume, no bitmap walk.
	wantReads := uint64(len(s.Agg.groups)) + 2*uint64(len(s.Agg.vols))
	if ms.TopAABlockReads != wantReads {
		t.Fatalf("TopAA reads = %d, want %d", ms.TopAABlockReads, wantReads)
	}
	if ms.BitmapPagesRead != 0 {
		t.Fatalf("TopAA mount read %d bitmap pages", ms.BitmapPagesRead)
	}
	if ms.Fallbacks != 0 {
		t.Fatalf("fallbacks = %d", ms.Fallbacks)
	}
	// The seeded heaps serve the same best AA as before the crash.
	for i, g := range s.Agg.groups {
		e, ok := g.cache.Best()
		if !ok || e.Score != bestBefore[i] {
			t.Fatalf("group %d best after mount %v, want score %d", i, e, bestBefore[i])
		}
		if g.cache.Len() > 512 {
			t.Fatalf("seed cache has %d entries", g.cache.Len())
		}
	}
}

func TestRemountWithoutTopAAWalksBitmaps(t *testing.T) {
	s, _ := agedSystem(t, DefaultTunables(), 2)
	ms := s.Agg.Remount(false)
	if ms.TopAABlockReads != 0 {
		t.Fatalf("no-TopAA mount read %d TopAA blocks", ms.TopAABlockReads)
	}
	// The walk must touch every bitmap page of aggregate + volumes.
	wantPages := s.Agg.bm.Pages()
	for _, v := range s.Agg.vols {
		wantPages += v.bm.Pages()
	}
	if ms.BitmapPagesRead < wantPages {
		t.Fatalf("bitmap pages read %d < %d", ms.BitmapPagesRead, wantPages)
	}
	// Full rebuild: every AA tracked with its bitmap score.
	for _, g := range s.Agg.groups {
		if g.cache.Len() != g.topo.NumAAs() {
			t.Fatalf("group %d cache len %d", g.Index, g.cache.Len())
		}
	}
}

func TestRemountFallsBackOnCorruption(t *testing.T) {
	s, _ := agedSystem(t, DefaultTunables(), 3)
	// Damage one group's TopAA block and one volume's HBPS pages.
	if err := s.Agg.store.Corrupt(topaaGroupKey(0), 12); err != nil {
		t.Fatal(err)
	}
	if err := s.Agg.store.Corrupt("v", 0); err != nil {
		t.Fatal(err)
	}
	ms := s.Agg.Remount(true)
	if ms.Fallbacks != 2 {
		t.Fatalf("fallbacks = %d, want 2", ms.Fallbacks)
	}
	// Fallback spaces rebuilt from bitmaps; others seeded.
	if ms.BitmapPagesRead == 0 {
		t.Fatal("fallback did not walk bitmaps")
	}
	if s.Agg.groups[0].cache.Len() != s.Agg.groups[0].topo.NumAAs() {
		t.Fatal("corrupt group not fully rebuilt")
	}
	if s.Agg.groups[1].cache.Len() > 512 {
		t.Fatal("intact group not seeded")
	}
}

func TestOperationContinuesAfterSeededMount(t *testing.T) {
	s, lun := agedSystem(t, DefaultTunables(), 4)
	s.Agg.Remount(true)
	// Writes proceed on the seed alone.
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 5000; i++ {
		s.Write(lun, uint64(rng.Intn(120000)), 1)
	}
	s.CP()
	// Background fill then restores the full-cache invariants.
	inserted := s.Agg.CompleteBackgroundFill()
	if inserted == 0 {
		t.Fatal("background fill inserted nothing")
	}
	s.CP()
	checkConsistency(t, s)
}

func TestRemountWithoutTopAAThenChurn(t *testing.T) {
	s, lun := agedSystem(t, DefaultTunables(), 5)
	s.Agg.Remount(false)
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 5000; i++ {
		s.Write(lun, uint64(rng.Intn(120000)), 1)
	}
	s.CP()
	checkConsistency(t, s)
}

func TestMountScalesWithVolumeCountOnlyWithoutTopAA(t *testing.T) {
	// The Fig. 10 mechanism in miniature: TopAA reads grow with volume
	// count (cheap, fixed per volume), while the no-TopAA walk grows with
	// total volume *size*.
	build := func(nvols int, volBlocks uint64) *System {
		tun := DefaultTunables()
		tun.CPEveryOps = 1024
		var vols []VolSpec
		for i := 0; i < nvols; i++ {
			vols = append(vols, VolSpec{Name: string(rune('a' + i)), Blocks: volBlocks})
		}
		s := NewSystem(testSpecs(), vols, tun, 6)
		lun := s.Agg.Vols()[0].CreateLUN("l", 5000)
		for lba := uint64(0); lba < 5000; lba++ {
			s.Write(lun, lba, 1)
		}
		s.CP()
		return s
	}
	small := build(2, 4*aa.RAIDAgnosticBlocks)
	large := build(2, 32*aa.RAIDAgnosticBlocks)

	msSmallTop := small.Agg.Remount(true)
	msLargeTop := large.Agg.Remount(true)
	if msSmallTop.TopAABlockReads != msLargeTop.TopAABlockReads {
		t.Fatalf("TopAA reads scale with volume size: %d vs %d",
			msSmallTop.TopAABlockReads, msLargeTop.TopAABlockReads)
	}
	msSmallWalk := small.Agg.Remount(false)
	msLargeWalk := large.Agg.Remount(false)
	if msLargeWalk.BitmapPagesRead <= msSmallWalk.BitmapPagesRead {
		t.Fatalf("bitmap walk does not grow with volume size: %d vs %d",
			msSmallWalk.BitmapPagesRead, msLargeWalk.BitmapPagesRead)
	}
}

func TestRepairTopAARecoversFromCorruption(t *testing.T) {
	s, lun := agedSystem(t, DefaultTunables(), 6)
	// Damage every metafile.
	for i := range s.Agg.groups {
		if err := s.Agg.store.Corrupt(topaaGroupKey(i), 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Agg.store.Corrupt("v", 1); err != nil {
		t.Fatal(err)
	}
	// Without repair, mounting falls back everywhere.
	ms := s.Agg.Remount(true)
	if ms.Fallbacks != len(s.Agg.groups)+1 {
		t.Fatalf("fallbacks = %d", ms.Fallbacks)
	}
	// Repair recomputes and rewrites everything from the bitmaps.
	repaired := s.Agg.RepairTopAA()
	if repaired != len(s.Agg.groups)+1 {
		t.Fatalf("repaired = %d", repaired)
	}
	ms = s.Agg.Remount(true)
	if ms.Fallbacks != 0 || ms.BitmapPagesRead != 0 {
		t.Fatalf("post-repair mount stats = %+v", ms)
	}
	// The system is fully operational afterwards.
	rng := rand.New(rand.NewSource(66))
	for i := 0; i < 5000; i++ {
		s.Write(lun, uint64(rng.Intn(120000)), 1)
	}
	s.CP()
	s.Agg.CompleteBackgroundFill()
	s.CP()
	checkConsistency(t, s)
}
