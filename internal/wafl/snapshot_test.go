package wafl

import (
	"errors"
	"math/rand"
	"testing"

	"waflfs/internal/block"
)

func snapFixture(t *testing.T) (*System, *LUN) {
	t.Helper()
	s := testSystem(t, DefaultTunables())
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 20000)
	for lba := uint64(0); lba < 5000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	return s, lun
}

func TestSnapshotPinsBlocks(t *testing.T) {
	s, lun := snapFixture(t)
	vol := s.Agg.Vols()[0]
	usedBefore := s.Agg.bm.Used()

	sn, err := s.CreateSnapshot(lun, "snap1")
	if err != nil {
		t.Fatal(err)
	}
	if sn.Blocks() != 5000 {
		t.Fatalf("snapshot holds %d blocks", sn.Blocks())
	}
	// Snapshot creation allocates nothing.
	if s.Agg.bm.Used() != usedBefore {
		t.Fatal("snapshot creation moved data")
	}
	// Overwrite everything: COW must NOT free the snapshot's blocks.
	oldPhys := lun.Phys(0)
	for lba := uint64(0); lba < 5000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	if !s.Agg.bm.Test(oldPhys) {
		t.Fatal("snapshot-held physical block was freed by overwrite")
	}
	if s.Agg.bm.Used() != 2*5000 {
		t.Fatalf("used = %d, want 10000 (live + snapshot)", s.Agg.bm.Used())
	}
	if err := vol.CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
	checkConsistencyWithSnapshots(t, s)
}

func TestSnapshotDeleteFreesBulk(t *testing.T) {
	s, lun := snapFixture(t)
	s.CreateSnapshot(lun, "snap1")
	for lba := uint64(0); lba < 5000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	freed, err := s.DeleteSnapshot(lun, "snap1")
	if err != nil {
		t.Fatal(err)
	}
	if freed != 5000 {
		t.Fatalf("delete freed %d, want 5000", freed)
	}
	s.CP()
	if s.Agg.bm.Used() != 5000 {
		t.Fatalf("used = %d after delete", s.Agg.bm.Used())
	}
	if err := s.Agg.Vols()[0].CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
	checkConsistency(t, s) // no snapshots remain; strict check applies
}

func TestSnapshotDeleteRespectsSharedBlocks(t *testing.T) {
	s, lun := snapFixture(t)
	s.CreateSnapshot(lun, "snap1")
	// Overwrite only half; the other half stays shared between the active
	// image and the snapshot.
	for lba := uint64(0); lba < 2500; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	freed, err := s.DeleteSnapshot(lun, "snap1")
	if err != nil {
		t.Fatal(err)
	}
	if freed != 2500 {
		t.Fatalf("delete freed %d, want 2500 (only the diverged half)", freed)
	}
	// Shared blocks remain readable through the active image.
	if !s.Agg.bm.Test(lun.Phys(4000)) {
		t.Fatal("shared block freed by snapshot delete")
	}
	if err := s.Agg.Vols()[0].CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleSnapshotsRefcounting(t *testing.T) {
	s, lun := snapFixture(t)
	s.CreateSnapshot(lun, "a")
	for lba := uint64(0); lba < 1000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	s.CreateSnapshot(lun, "b")
	for lba := uint64(1000); lba < 2000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	if got := lun.SnapshotNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("snapshots = %v", got)
	}
	if err := s.Agg.Vols()[0].CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
	// Deleting a frees only blocks unique to a (LBAs 0..1000 old copies).
	freedA, err := s.DeleteSnapshot(lun, "a")
	if err != nil {
		t.Fatal(err)
	}
	if freedA != 1000 {
		t.Fatalf("delete a freed %d, want 1000", freedA)
	}
	freedB, err := s.DeleteSnapshot(lun, "b")
	if err != nil {
		t.Fatal(err)
	}
	if freedB != 1000 {
		t.Fatalf("delete b freed %d, want 1000", freedB)
	}
	if s.Agg.bm.Used() != 5000 {
		t.Fatalf("used = %d after all deletes", s.Agg.bm.Used())
	}
	if err := s.Agg.Vols()[0].CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreSnapshot(t *testing.T) {
	s, lun := snapFixture(t)
	origPhys := lun.Phys(100)
	s.CreateSnapshot(lun, "before")
	for lba := uint64(0); lba < 5000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	if lun.Phys(100) == origPhys {
		t.Fatal("overwrite did not move the block")
	}
	s.RestoreSnapshot(lun, "before")
	if lun.Phys(100) != origPhys {
		t.Fatalf("restore did not roll back: %v != %v", lun.Phys(100), origPhys)
	}
	// The post-snapshot writes' blocks were freed by the restore.
	s.CP()
	if s.Agg.bm.Used() != 5000 {
		t.Fatalf("used = %d after restore", s.Agg.bm.Used())
	}
	if err := s.Agg.Vols()[0].CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
	// Snapshot still exists and can be deleted; shared blocks survive.
	s.DeleteSnapshot(lun, "before")
	if !s.Agg.bm.Test(lun.Phys(100)) {
		t.Fatal("active block freed by post-restore snapshot delete")
	}
	if err := s.Agg.Vols()[0].CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotPanics(t *testing.T) {
	s, lun := snapFixture(t)
	s.CreateSnapshot(lun, "x")
	for name, f := range map[string]func(){
		"duplicate":       func() { s.CreateSnapshot(lun, "x") },
		"delete missing":  func() { s.DeleteSnapshot(lun, "nope") },
		"restore missing": func() { s.RestoreSnapshot(lun, "nope") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
	// Mid-CP operations return the typed boundary error, not a panic.
	s.Write(lun, 0, 1)
	for name, f := range map[string]func() error{
		"create mid-CP": func() error { _, err := s.CreateSnapshot(lun, "y"); return err },
		"delete mid-CP": func() error { _, err := s.DeleteSnapshot(lun, "x"); return err },
		"restore mid-CP": func() error {
			return s.RestoreSnapshot(lun, "x")
		},
		"punch mid-CP": func() error {
			_, err := s.PunchHoles(lun, func(uint64) bool { return true })
			return err
		},
	} {
		if err := f(); !errors.Is(err, ErrCPInProgress) {
			t.Errorf("%s: err = %v, want ErrCPInProgress", name, err)
		}
	}
	// The errors are recoverable: after a CP the operations proceed.
	s.CP()
	if _, err := s.CreateSnapshot(lun, "y"); err != nil {
		t.Fatalf("create after CP: %v", err)
	}
}

// TestSnapshotMidFlightRejected pins the pipelined half of the boundary
// gate: with a sealed generation in flight (writes already allocated but
// not yet committed), snapshot ops return ErrCPInProgress until Drain.
func TestSnapshotMidFlightRejected(t *testing.T) {
	tun := DefaultTunables()
	tun.Pipeline = true
	s := testSystem(t, tun)
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 20000)
	for lba := uint64(0); lba < 2000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP() // seals gen 1; it stays in flight
	if !s.InFlight() {
		t.Fatal("no generation in flight after pipelined CP")
	}
	if _, err := s.CreateSnapshot(lun, "x"); !errors.Is(err, ErrCPInProgress) {
		t.Fatalf("create in flight: err = %v, want ErrCPInProgress", err)
	}
	s.Drain()
	if s.InFlight() {
		t.Fatal("still in flight after Drain")
	}
	if _, err := s.CreateSnapshot(lun, "x"); err != nil {
		t.Fatalf("create after Drain: %v", err)
	}
	if _, err := s.DeleteSnapshot(lun, "x"); err != nil {
		t.Fatalf("delete after Drain: %v", err)
	}
}

func TestCleanerRelocatesSnapshotBlocks(t *testing.T) {
	s, lun := snapFixture(t)
	s.CreateSnapshot(lun, "pinned")
	// Diverge, then fragment to give the cleaner work.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 8000; i++ {
		s.Write(lun, uint64(rng.Intn(20000)), 1)
	}
	s.CP()
	st := s.CleanBestAAs(s.Agg.groups[0], 6)
	s.CP()
	_ = st
	// Snapshot pointers must have followed any relocations: every snapshot
	// physical block is still allocated.
	sn := lun.Snapshot("pinned")
	for _, p := range sn.blocks {
		if p.phys != block.InvalidVBN && !s.Agg.bm.Test(p.phys) {
			t.Fatalf("snapshot references freed physical %v", p.phys)
		}
	}
	if err := s.Agg.Vols()[0].CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
	// Deleting the snapshot after cleaning stays consistent.
	s.DeleteSnapshot(lun, "pinned")
	s.CP()
	checkConsistency(t, s)
}

// Snapshot deletion creates the nonuniform free space the paper mentions
// (§4.1.1): after deleting a snapshot, AA scores diverge and the cache's
// best pick improves.
func TestSnapshotDeleteImprovesBestAA(t *testing.T) {
	s, lun := snapFixture(t)
	// Fill most of the aggregate so scores are meaningful.
	for lba := uint64(5000); lba < 20000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	s.CreateSnapshot(lun, "big")
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 20000; i++ {
		s.Write(lun, uint64(rng.Intn(20000)), 1)
	}
	s.CP()
	bestBefore, _ := s.Agg.groups[0].cache.Best()
	s.DeleteSnapshot(lun, "big")
	s.CP()
	bestAfter, _ := s.Agg.groups[0].cache.Best()
	if bestAfter.Score < bestBefore.Score {
		t.Fatalf("best AA score fell after snapshot delete: %d -> %d",
			bestBefore.Score, bestAfter.Score)
	}
	if err := s.Agg.Vols()[0].CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
}

// checkConsistencyWithSnapshots relaxes checkConsistency's "aggregate used
// equals active LUN blocks" to include snapshot references.
func checkConsistencyWithSnapshots(t *testing.T, s *System) {
	t.Helper()
	var refs uint64
	for _, v := range s.Agg.vols {
		if err := v.CheckRefcounts(); err != nil {
			t.Fatal(err)
		}
		refs += v.bm.Used()
	}
	if s.Agg.bm.Used() != refs {
		t.Fatalf("aggregate used %d != virtual used %d", s.Agg.bm.Used(), refs)
	}
}
