package wafl

import (
	"errors"
	"fmt"
	"sort"

	"waflfs/internal/block"
)

// ErrCPInProgress reports that a boundary-only operation (snapshot create/
// delete/restore, hole punch, tier-out) was attempted while dirty writes are
// pending or — under pipelined CPs — while a sealed generation is still in
// flight. Callers should CP() (and Drain(), when pipelining) and retry.
// Before pipelining these mid-CP states were programming errors and panicked;
// with overlapped CPs an in-flight generation is a normal steady state, so
// the condition is a typed, recoverable error.
var ErrCPInProgress = errors.New("wafl: operation requires a CP boundary")

// Snapshots. WAFL's copy-on-write design makes snapshot creation cheap — a
// snapshot is just a pinned copy of the block pointers (§1) — and snapshot
// deletion frees large batches of blocks at once, which is one of the
// internal activities that "further adds to the nonuniformity" of free
// space the AA caches exploit (§4.1.1).
//
// Reference counting: every written LUN block (a virtual+physical VBN pair)
// carries a count of referents — the active LUN image plus any snapshots.
// A COW overwrite or hole punch drops the active reference; the pair's
// storage is freed only when the last reference goes.

// refcounts lives in the FlexVol, keyed by virtual VBN (each pair is
// uniquely identified by its virtual address within the volume).
func (v *FlexVol) refs() map[block.VBN]int32 {
	if v.rc == nil {
		v.rc = make(map[block.VBN]int32)
	}
	return v.rc
}

// refNew registers a freshly allocated pair with one reference.
func (v *FlexVol) refNew(virt block.VBN) {
	rc := v.refs()
	if _, dup := rc[virt]; dup {
		panic(fmt.Sprintf("wafl: virtual %v already referenced", virt))
	}
	rc[virt] = 1
}

// ref adds a reference to an existing pair.
func (v *FlexVol) ref(virt block.VBN) {
	rc := v.refs()
	n, ok := rc[virt]
	if !ok {
		panic(fmt.Sprintf("wafl: ref of unknown virtual %v", virt))
	}
	rc[virt] = n + 1
}

// unref drops one reference; when the last goes, both VBNs are freed and
// the function reports true.
func (s *System) unref(v *FlexVol, p blockPtr) bool {
	rc := v.refs()
	n, ok := rc[p.virt]
	if !ok {
		panic(fmt.Sprintf("wafl: unref of unknown virtual %v", p.virt))
	}
	if n > 1 {
		rc[p.virt] = n - 1
		return false
	}
	delete(rc, p.virt)
	v.space.free(p.virt)
	s.Agg.FreePhysical(p.phys)
	s.c.BlocksFreed++
	return true
}

// Snapshot is a point-in-time image of one LUN.
type Snapshot struct {
	Name   string
	blocks []blockPtr
}

// Blocks returns how many written blocks the snapshot references.
func (sn *Snapshot) Blocks() int {
	n := 0
	for _, p := range sn.blocks {
		if p.virt != block.InvalidVBN {
			n++
		}
	}
	return n
}

// CreateSnapshot captures the LUN's current image under name. It must run
// at a CP boundary (in WAFL a snapshot is a CP that is preserved): with
// writes pending or a pipelined generation in flight it returns
// ErrCPInProgress. The operation copies only pointers; no data blocks move.
func (s *System) CreateSnapshot(l *LUN, name string) (*Snapshot, error) {
	if s.pendingBlocks > 0 || s.pipe.inFlight {
		return nil, ErrCPInProgress
	}
	if l.snaps == nil {
		l.snaps = make(map[string]*Snapshot)
	}
	if _, dup := l.snaps[name]; dup {
		panic(fmt.Sprintf("wafl: duplicate snapshot %q on LUN %q", name, l.Name))
	}
	sn := &Snapshot{Name: name, blocks: append([]blockPtr(nil), l.blocks...)}
	for _, p := range sn.blocks {
		if p.virt != block.InvalidVBN {
			l.vol.ref(p.virt)
		}
	}
	l.snaps[name] = sn
	return sn, nil
}

// Snapshot returns the named snapshot, or nil.
func (l *LUN) Snapshot(name string) *Snapshot { return l.snaps[name] }

// SnapshotNames lists the LUN's snapshots in sorted order.
func (l *LUN) SnapshotNames() []string {
	out := make([]string, 0, len(l.snaps))
	for n := range l.snaps {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DeleteSnapshot removes a snapshot, freeing every block whose last
// reference it held — the bulk-free behaviour whose batched AA score
// updates the caches absorb at the next CP. Returns the number of blocks
// actually freed. Must run at a CP boundary; returns ErrCPInProgress with
// writes pending or a pipelined generation in flight.
func (s *System) DeleteSnapshot(l *LUN, name string) (int, error) {
	if s.pendingBlocks > 0 || s.pipe.inFlight {
		return 0, ErrCPInProgress
	}
	sn, ok := l.snaps[name]
	if !ok {
		panic(fmt.Sprintf("wafl: no snapshot %q on LUN %q", name, l.Name))
	}
	freed := 0
	for _, p := range sn.blocks {
		if p.virt != block.InvalidVBN && s.unref(l.vol, p) {
			freed++
		}
	}
	delete(l.snaps, name)
	return freed, nil
}

// RestoreSnapshot rolls the LUN's active image back to the snapshot
// (SnapRestore): the current image's references are dropped and the
// snapshot's pointers become the active ones. The snapshot itself remains.
// Must run at a CP boundary; returns ErrCPInProgress with writes pending or
// a pipelined generation in flight.
func (s *System) RestoreSnapshot(l *LUN, name string) error {
	if s.pendingBlocks > 0 || s.pipe.inFlight {
		return ErrCPInProgress
	}
	sn, ok := l.snaps[name]
	if !ok {
		panic(fmt.Sprintf("wafl: no snapshot %q on LUN %q", name, l.Name))
	}
	// Take the new references first so blocks shared between the current
	// image and the snapshot never transit through zero.
	for _, p := range sn.blocks {
		if p.virt != block.InvalidVBN {
			l.vol.ref(p.virt)
		}
	}
	for _, p := range l.blocks {
		if p.virt != block.InvalidVBN {
			s.unref(l.vol, p)
		}
	}
	copy(l.blocks, sn.blocks)
	return nil
}

// CheckRefcounts verifies the volume-wide refcount invariant: every
// allocated virtual VBN is referenced by exactly rc holders among the
// active LUN images and snapshots, and every reference points at an
// allocated pair. Tests call this after snapshot workloads.
func (v *FlexVol) CheckRefcounts() error {
	census := make(map[block.VBN]int32)
	for _, l := range v.luns {
		for _, p := range l.blocks {
			if p.virt != block.InvalidVBN {
				census[p.virt]++
			}
		}
		for _, sn := range l.snaps {
			for _, p := range sn.blocks {
				if p.virt != block.InvalidVBN {
					census[p.virt]++
				}
			}
		}
	}
	rc := v.refs()
	if len(census) != len(rc) {
		return fmt.Errorf("refcount census %d entries, rc map %d", len(census), len(rc))
	}
	for virt, n := range census {
		if rc[virt] != n {
			return fmt.Errorf("virtual %v: rc %d, census %d", virt, rc[virt], n)
		}
		if !v.bm.Test(virt) {
			return fmt.Errorf("virtual %v referenced but not allocated", virt)
		}
	}
	// Blocks queued for delayed free are still allocated in the bitmap but
	// referenced by nobody.
	if uint64(len(census)+v.PendingFrees()) != v.bm.Used() {
		return fmt.Errorf("census %d + pending %d blocks, bitmap used %d",
			len(census), v.PendingFrees(), v.bm.Used())
	}
	return nil
}
