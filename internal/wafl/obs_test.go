package wafl

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"waflfs/internal/aa"
	"waflfs/internal/control"
	"waflfs/internal/obs"
	"waflfs/internal/obs/fragscan"
	"waflfs/internal/obs/optrace"
	"waflfs/internal/obs/picks"
	"waflfs/internal/obs/slo"
	"waflfs/internal/obs/tsdb"
)

// obsRun drives a moderate workload — fill, churn, CPs, delayed frees, a
// seeded remount, and a fallback remount — with every observability sink
// enabled, and returns the system plus the sinks.
func obsRun(t *testing.T, workers int) (*System, *obs.Registry, *obs.Tracer, *strings.Builder, *fragscan.Recorder, []CPStats) {
	return obsRunMode(t, workers, false)
}

func obsRunMode(t *testing.T, workers int, pipeline bool) (*System, *obs.Registry, *obs.Tracer, *strings.Builder, *fragscan.Recorder, []CPStats) {
	t.Helper()
	export := obs.NewRegistry()
	tracer := obs.NewTracer()
	frag := fragscan.NewRecorder()
	var csv strings.Builder
	rec := obs.NewCSVRecorder(&csv)
	tun := DefaultTunables()
	tun.Workers = workers
	tun.CPEveryOps = 1 << 30 // CP only when the test says so, so all CPStats are captured
	tun.DelayedVirtFrees = true
	tun.Pipeline = pipeline
	// A harness portfolio that is guaranteed to actuate mid-run: cp.count
	// breaches from CP 4 on (stepping fragscan sampling until its max
	// clamps, so the stream holds both fired and suppressed decisions), and
	// the per-volume pick counters breach once warm (stepping the allocator
	// batch, exercising the wildcard expansion and exemplar join).
	ctlPols, err := control.ParsePolicies(
		"name=scan_backoff,signal=cp.count,op=>,value=3,hold=2,action=frag_every,step=+1,max=4;" +
			"name=vol_batch,signal=vol.*.alloc.picks,op=>,value=1000,hold=3,action=alloc_batch,step=+8,max=32")
	if err != nil {
		t.Fatalf("control policies: %v", err)
	}
	tun.Obs = &ObsOptions{
		Name:      "arm",
		Export:    export,
		Tracer:    tracer,
		CSV:       rec,
		Frag:      frag,
		TSDB:      tsdb.NewStore(tsdb.Config{Capacity: 512, HistBuckets: tsdb.SuffixFilter(".lat_ns")}),
		Picks:     picks.NewRecorder(picks.DefaultConfig()),
		Watchdogs: true,
		SLO:       slo.NewSet(slo.DefaultSpecs()),
		OpTrace:   optrace.NewRecorder(optrace.Config{Rate: 4, Capacity: 128, Seed: 11}),
		Control:   control.NewSet(ctlPols),
	}
	s := NewSystem(testSpecs(),
		[]VolSpec{
			{Name: "va", Blocks: 16 * aa.RAIDAgnosticBlocks},
			{Name: "vb", Blocks: 16 * aa.RAIDAgnosticBlocks},
		}, tun, 11)
	lunA := s.Agg.Vols()[0].CreateLUN("lunA", 60000)
	lunB := s.Agg.Vols()[1].CreateLUN("lunB", 60000)

	var cps []CPStats
	record := func() { cps = append(cps, s.CP()) }
	for lba := uint64(0); lba < 60000; lba++ {
		s.Write(lunA, lba, 1)
		s.Write(lunB, lba, 1)
		if s.pendingBlocks >= 8192 {
			record()
		}
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		s.Write(lunA, uint64(rng.Intn(60000)), 1)
		s.Write(lunB, uint64(rng.Intn(60000)), 1)
		if s.pendingBlocks >= 8192 {
			record()
		}
	}
	record()
	s.Drain() // no-op classic; commits the in-flight generation pipelined
	s.Agg.Remount(true)
	for i := 0; i < 3000; i++ {
		s.Write(lunA, uint64(rng.Intn(60000)), 1)
	}
	for i := 0; i < 500; i++ { // exercise the read-side latency SLI
		s.Read(lunA, uint64(rng.Intn(59000)), 4)
	}
	record()
	s.Drain()
	s.Agg.Remount(false)
	if err := rec.Flush(); err != nil {
		t.Fatalf("csv flush: %v", err)
	}
	return s, export, tracer, &csv, frag, cps
}

// The derived-view contract: the registry never stores a second copy of any
// counter, so reconstructing Counters and the summed CPStats from a snapshot
// must reproduce the struct-returning APIs exactly.
func TestRegistryDerivedViewEquivalence(t *testing.T) {
	s, _, _, _, _, cps := obsRun(t, 0)

	got := CountersFromSnapshot(s.Registry().Snapshot())
	if got != s.Counters() {
		t.Errorf("CountersFromSnapshot mismatch:\nsnapshot: %+v\nstruct:   %+v", got, s.Counters())
	}

	var want CPStats
	for _, st := range cps {
		want.MetafilePagesAggregate += st.MetafilePagesAggregate
		want.MetafilePagesVols += st.MetafilePagesVols
		want.DeviceBusy += st.DeviceBusy
		want.FlushWall += st.FlushWall
		want.TopAABlocks += st.TopAABlocks
	}
	if gotCP := CPStatsFromRegistry(s.Registry()); gotCP != want {
		t.Errorf("CPStatsFromRegistry mismatch:\nregistry: %+v\nsummed:   %+v", gotCP, want)
	}
	if n, ok := s.Registry().Value("cp.count"); !ok || n != uint64(len(cps)) {
		t.Errorf("cp.count = %d,%v, want %d", n, ok, len(cps))
	}
	if n, ok := s.Registry().Value("wafl.cps"); !ok || n != uint64(len(cps)) {
		t.Errorf("wafl.cps = %d,%v, want %d", n, ok, len(cps))
	}
}

// The determinism contract with every sink enabled: stable metric snapshots,
// canonical trace-event sequences, and CSV output are all bit-identical for
// Workers=1 and Workers=8.
func TestObsSerialEquivalence(t *testing.T) {
	s1, _, tr1, csv1, frag1, cps1 := obsRun(t, 1)
	s8, _, tr8, csv8, frag8, cps8 := obsRun(t, 8)

	// FlushWall is the one field the Workers knob is supposed to change;
	// every other CPStats field must match.
	if len(cps1) != len(cps8) {
		t.Fatalf("CP counts diverged: %d vs %d", len(cps1), len(cps8))
	}
	for i := range cps1 {
		a, b := cps1[i], cps8[i]
		a.FlushWall, b.FlushWall = 0, 0
		if a != b {
			t.Fatalf("CP %d stats diverged: %+v vs %+v", i, a, b)
		}
	}
	snap1 := s1.Registry().StableSnapshot()
	snap8 := s8.Registry().StableSnapshot()
	if !reflect.DeepEqual(snap1, snap8) {
		for i := range snap1.Metrics {
			if i < len(snap8.Metrics) && !reflect.DeepEqual(snap1.Metrics[i], snap8.Metrics[i]) {
				t.Errorf("metric %q: workers=1 %+v, workers=8 %+v",
					snap1.Metrics[i].Name, snap1.Metrics[i], snap8.Metrics[i])
			}
		}
		t.Fatalf("stable snapshots diverged (%d vs %d metrics)", len(snap1.Metrics), len(snap8.Metrics))
	}

	ev1, ev8 := tr1.Events(), tr8.Events()
	if len(ev1) == 0 {
		t.Fatal("tracer recorded no events")
	}
	if !reflect.DeepEqual(ev1, ev8) {
		n := len(ev1)
		if len(ev8) < n {
			n = len(ev8)
		}
		for i := 0; i < n; i++ {
			if ev1[i] != ev8[i] {
				t.Fatalf("event %d diverged:\nworkers=1: %+v\nworkers=8: %+v", i, ev1[i], ev8[i])
			}
		}
		t.Fatalf("event counts diverged: %d vs %d", len(ev1), len(ev8))
	}

	if csv1.String() != csv8.String() {
		t.Fatal("per-CP CSV output diverged across worker counts")
	}
	if !strings.HasPrefix(csv1.String(), obs.CSVHeader) {
		t.Fatal("CSV output missing header")
	}

	// Fragmentation analytics obey the same contract: report streams and
	// their CSV serialization are identical at any worker width.
	rep1, rep8 := frag1.Reports(), frag8.Reports()
	if len(rep1) == 0 {
		t.Fatal("fragscan recorded no reports")
	}
	if !reflect.DeepEqual(rep1, rep8) {
		n := len(rep1)
		if len(rep8) < n {
			n = len(rep8)
		}
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(rep1[i], rep8[i]) {
				t.Fatalf("fragscan report %d diverged:\nworkers=1: %+v\nworkers=8: %+v", i, rep1[i], rep8[i])
			}
		}
		t.Fatalf("fragscan report counts diverged: %d vs %d", len(rep1), len(rep8))
	}
	var fcsv1, fcsv8 strings.Builder
	if err := frag1.WriteCSV(&fcsv1); err != nil {
		t.Fatal(err)
	}
	if err := frag8.WriteCSV(&fcsv8); err != nil {
		t.Fatal(err)
	}
	if fcsv1.String() != fcsv8.String() {
		t.Fatal("fragscan CSV diverged across worker counts")
	}
	// One report stream per RAID group and per volume (this system has no
	// object pool).
	spaces := map[string]bool{}
	for _, r := range rep1 {
		spaces[r.Space] = true
	}
	for _, want := range []string{"arm.rg0", "arm.rg1", "arm.vol.va", "arm.vol.vb"} {
		if !spaces[want] {
			t.Errorf("no fragscan reports for space %q (have %v)", want, spaces)
		}
	}

	// The time-series store obeys the contract too: modeled-clock timestamps
	// and non-volatile samples only, so serialized stores are byte-identical.
	ts1, ts8 := s1.Agg.obsOpts.TSDB, s8.Agg.obsOpts.TSDB
	if ts1.NumSeries() == 0 {
		t.Fatal("tsdb recorded no series")
	}
	var tj1, tj8 strings.Builder
	if err := ts1.WriteJSON(&tj1); err != nil {
		t.Fatal(err)
	}
	if err := ts8.WriteJSON(&tj8); err != nil {
		t.Fatal(err)
	}
	if tj1.String() != tj8.String() {
		names1, names8 := ts1.SeriesNames(), ts8.SeriesNames()
		if !reflect.DeepEqual(names1, names8) {
			t.Fatalf("tsdb series names diverged: %d vs %d", len(names1), len(names8))
		}
		for _, n := range names1 {
			if !reflect.DeepEqual(ts1.Points(n), ts8.Points(n)) {
				t.Errorf("tsdb series %q diverged across worker counts", n)
			}
		}
		t.Fatal("tsdb JSON diverged across worker counts")
	}

	// SLO evaluation streams are part of the contract: instance states,
	// burn rates, budget accounting, and transition logs are byte-identical
	// at any worker width. (The per-CP burn-rate and state series the
	// engine writes back into the store ride the tsdb comparison above.)
	slo1, slo8 := s1.Agg.obsOpts.SLO, s8.Agg.obsOpts.SLO
	if slo1.Totals().Evaluations == 0 {
		t.Fatal("slo engine never evaluated")
	}
	if slo1.Totals().Instances == 0 {
		t.Fatal("slo engine resolved no instances")
	}
	var sj1, sj8 strings.Builder
	if err := slo1.WriteJSON(&sj1); err != nil {
		t.Fatal(err)
	}
	if err := slo8.WriteJSON(&sj8); err != nil {
		t.Fatal(err)
	}
	if sj1.String() != sj8.String() {
		t.Fatalf("slo status diverged across worker counts:\n%s\nvs\n%s", sj1.String(), sj8.String())
	}

	// The closed-loop actuation stream is part of the contract: the harness
	// portfolio fires (and clamps) mid-run, so knob trajectories, instance
	// states, decision records with exemplar joins, and transition logs must
	// all be byte-identical at any worker width. (The per-CP control.*.state
	// and control.knob.* series ride the tsdb comparison above.)
	c1, c8 := s1.Agg.obsOpts.Control, s8.Agg.obsOpts.Control
	ctot := c1.Totals()
	if ctot.Evaluations == 0 {
		t.Fatal("controller never evaluated")
	}
	if ctot.Actuations == 0 {
		t.Fatal("harness portfolio never actuated — the test is not exercising the loop")
	}
	if ctot.Suppressed == 0 {
		t.Fatal("harness portfolio never clamped — the suppression path is untested")
	}
	var cj1, cj8 strings.Builder
	if err := c1.WriteJSON(&cj1); err != nil {
		t.Fatal(err)
	}
	if err := c8.WriteJSON(&cj8); err != nil {
		t.Fatal(err)
	}
	if cj1.String() != cj8.String() {
		t.Fatalf("control status diverged across worker counts:\n%s\nvs\n%s", cj1.String(), cj8.String())
	}
	// The knob trajectory actually landed on the live surface and the clamp
	// held: frag_every walked 1→4 and stopped at the policy max.
	for i, s := range []*System{s1, s8} {
		if v, ok := s.Actuator().Knob(control.KnobFragEvery); !ok || v != 4 {
			t.Errorf("system %d: frag_every knob = %v,%v, want 4", i, v, ok)
		}
	}

	// Pick-provenance streams replay in canonical order at any worker width.
	p1, p8 := s1.Agg.obsOpts.Picks, s8.Agg.obsOpts.Picks
	if p1.TotalRecorded() == 0 {
		t.Fatal("no pick records")
	}
	if !reflect.DeepEqual(p1.All(), p8.All()) {
		t.Fatal("pick streams diverged across worker counts")
	}
	var pj1, pj8 strings.Builder
	if err := p1.WriteJSON(&pj1); err != nil {
		t.Fatal(err)
	}
	if err := p8.WriteJSON(&pj8); err != nil {
		t.Fatal(err)
	}
	if pj1.String() != pj8.String() {
		t.Fatal("pick JSON diverged across worker counts")
	}

	// The op-trace stream is part of the contract: sampling decisions, trace
	// IDs, span trees (including pick annotations and device leaf spans),
	// and exemplars are byte-identical at any worker width.
	ot1, ot8 := s1.Agg.obsOpts.OpTrace, s8.Agg.obsOpts.OpTrace
	if ot1.TotalSampled() == 0 {
		t.Fatal("optrace sampled no ops")
	}
	var oj1, oj8 strings.Builder
	if err := ot1.WriteJSON(&oj1, optrace.Filter{}); err != nil {
		t.Fatal(err)
	}
	if err := ot8.WriteJSON(&oj8, optrace.Filter{}); err != nil {
		t.Fatal(err)
	}
	if oj1.String() != oj8.String() {
		t.Fatal("optrace JSON diverged across worker counts")
	}
	// Sampled write traces stamp their IDs into the volume's pick records,
	// cross-referencing the two provenance streams.
	sawTID := false
	for _, r := range p1.All() {
		if r.TraceID != 0 {
			sawTID = true
			if _, ok := ot1.Find(r.TraceID); !ok {
				// The trace ring may have evicted it; the ID itself must
				// still be well-formed (nonzero is the only invariant).
				continue
			}
		}
	}
	if !sawTID {
		t.Error("no pick record carries a sampled trace ID")
	}

	// The watchdogs checked real invariants on every CP and found nothing.
	for i, s := range []*System{s1, s8} {
		reg := s.Registry()
		if n, _ := reg.Value("watchdog.checks"); n == 0 {
			t.Errorf("system %d: watchdog.checks = 0 with watchdogs enabled", i)
		}
		if n, _ := reg.Value("watchdog.pick_checks"); n == 0 {
			t.Errorf("system %d: watchdog.pick_checks = 0", i)
		}
		if n, _ := reg.Value("watchdog.violations"); n != 0 {
			t.Errorf("system %d: watchdog.violations = %d: %v", i, n, s.Agg.WatchdogViolations())
		}
	}
}

// The attribution contract: for every volume, the per-stage attributed
// nanoseconds sum to the lat_ns histogram's observed total exactly — not
// within tolerance, to the nanosecond — on both the read path (base +
// device) and the write path (the CP stage split, where the device stage
// absorbs the integer rounding remainder).
func TestAttributionReconciles(t *testing.T) {
	s, _, _, _, _, _ := obsRun(t, 0)
	for _, v := range s.Agg.Vols() {
		sp := v.space
		var attrSum uint64
		for _, stage := range optrace.Stages() {
			attrSum += sp.attr[stage]
		}
		hist := sp.lat.Value()
		if hist.Count == 0 {
			t.Fatalf("vol %s: latency histogram is empty", v.Name)
		}
		if attrSum != hist.Sum {
			t.Errorf("vol %s: attributed %d ns != histogram-observed %d ns (diff %d)",
				v.Name, attrSum, hist.Sum, int64(attrSum)-int64(hist.Sum))
		}
	}
	// The same totals surface as vol.<name>.attr.<stage>_ns metrics.
	snap := s.Registry().StableSnapshot()
	var attrVA, histVA uint64
	for _, m := range snap.Metrics {
		if strings.HasPrefix(m.Name, "vol.va.attr.") && strings.HasSuffix(m.Name, "_ns") {
			attrVA += m.Value
		}
		if m.Name == "vol.va.lat_ns" && m.Hist != nil {
			histVA = m.Hist.Sum
		}
	}
	if attrVA == 0 || attrVA != histVA {
		t.Errorf("registry attr sum %d != histogram sum %d", attrVA, histVA)
	}
}

// Sampled traces decompose into the documented span stages, and every
// recorded write trace's top-level stage durations sum to its latency.
func TestTraceSpansSumToLatency(t *testing.T) {
	s, _, _, _, _, _ := obsRun(t, 0)
	rec := s.Agg.obsOpts.OpTrace
	checked := 0
	for _, space := range rec.Spaces() {
		for _, tr := range rec.Traces(space) {
			var sum uint64
			for _, sp := range tr.Spans {
				sum += sp.DurNS
			}
			if sum != tr.LatNS {
				t.Errorf("trace %#x (%s %s seq %d): span sum %d != latency %d",
					tr.ID, tr.Space, tr.Kind, tr.Seq, sum, tr.LatNS)
			}
			if tr.ID == 0 {
				t.Errorf("trace with zero ID in %s", space)
			}
			if len(tr.CriticalPath()) == 0 && tr.LatNS > 0 {
				t.Errorf("trace %#x: empty critical path", tr.ID)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no traces recorded")
	}
	if rec.TotalSampled() == 0 {
		t.Fatal("TotalSampled = 0")
	}
}

// The export mirror shares instruments: two systems with distinct names in
// one export registry, prefixed and live.
func TestExportMirrorPrefixes(t *testing.T) {
	export := obs.NewRegistry()
	mk := func(name string) *System {
		tun := DefaultTunables()
		tun.CPEveryOps = 1 << 30
		tun.Obs = &ObsOptions{Name: name, Export: export}
		return NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 16 * aa.RAIDAgnosticBlocks}}, tun, 3)
	}
	sa, sb := mk("armA"), mk("armB")
	lun := sa.Agg.Vols()[0].CreateLUN("l", 4096)
	for lba := uint64(0); lba < 4096; lba++ {
		sa.Write(lun, lba, 1)
	}
	sa.CP()

	if n, ok := export.Value("armA.wafl.cps"); !ok || n != 1 {
		t.Errorf("armA.wafl.cps = %d,%v, want 1", n, ok)
	}
	if n, ok := export.Value("armB.wafl.cps"); !ok || n != 0 {
		t.Errorf("armB.wafl.cps = %d,%v, want 0", n, ok)
	}
	if got := CountersFromSnapshot(sb.Registry().Snapshot()); got != sb.Counters() {
		t.Errorf("armB derived view broken: %+v vs %+v", got, sb.Counters())
	}
}

// With no ObsOptions the registry still serves derived views, no trace is
// recorded, and the workload runs exactly as before.
func TestObsDisabledByDefault(t *testing.T) {
	tun := DefaultTunables()
	tun.CPEveryOps = 1 << 30
	s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 16 * aa.RAIDAgnosticBlocks}}, tun, 3)
	lun := s.Agg.Vols()[0].CreateLUN("l", 4096)
	for lba := uint64(0); lba < 4096; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	if s.Agg.st != nil {
		t.Fatal("tracer handle should be nil with Obs unset")
	}
	if got := CountersFromSnapshot(s.Registry().Snapshot()); got != s.Counters() {
		t.Errorf("derived view broken with obs off: %+v vs %+v", got, s.Counters())
	}
	if n, ok := s.Registry().Value("rg0.picks"); !ok || n == 0 {
		t.Errorf("rg0.picks = %d,%v, want > 0", n, ok)
	}
}

// Mount totals surface through the registry, matching the MountStats the
// calls returned.
func TestMountMetrics(t *testing.T) {
	s, _, tracer, _, _, _ := obsRun(t, 0)
	reg := s.Registry()
	if n, _ := reg.Value("mount.count"); n != 2 {
		t.Errorf("mount.count = %d, want 2", n)
	}
	// Remount(false) is a deliberate walk, not a TopAA fallback, and the
	// seeded remount found intact metafiles.
	if n, _ := reg.Value("mount.fallbacks"); n != 0 {
		t.Errorf("mount.fallbacks = %d, want 0", n)
	}
	if n, _ := reg.Value("mount.bitmap_pages_read"); n == 0 {
		t.Error("mount.bitmap_pages_read = 0, want > 0")
	}
	var sawGroup, sawSpace bool
	for _, ev := range tracer.Events() {
		switch ev.Phase {
		case "mount.group":
			sawGroup = true
		case "mount.space":
			sawSpace = true
		}
	}
	if !sawGroup || !sawSpace {
		t.Errorf("missing mount trace events: group=%v space=%v", sawGroup, sawSpace)
	}
}
