package wafl

import (
	"math/rand"
	"testing"

	"waflfs/internal/aa"
	"waflfs/internal/device"
)

// SMR + AZCS behaviour at the wafl layer (the Fig. 9 mechanism, unit-sized).
func TestSMRAZCSBoundaryChecksumWrites(t *testing.T) {
	build := func(stripesPerAA uint64) *System {
		tun := DefaultTunables()
		tun.CPEveryOps = 512
		spec := GroupSpec{
			DataDevices: 3, ParityDevices: 1, BlocksPerDevice: 1 << 16,
			Media: aa.MediaSMR, ZoneBlocks: 4096, AZCS: true,
			StripesPerAA: stripesPerAA,
		}
		s := NewSystem([]GroupSpec{spec},
			[]VolSpec{{Name: "v", Blocks: 8 * aa.RAIDAgnosticBlocks}}, tun, 23)
		lun := s.Agg.Vols()[0].CreateLUN("l", 60000)
		for lba := uint64(0); lba+16 <= 60000; lba += 16 {
			s.Write(lun, lba, 16)
		}
		s.CP()
		return s
	}

	// Unaligned: 1024 stripes per AA is not a multiple of 63 data blocks,
	// so every consumed AA ends mid-region and forces random checksum
	// writes on each device.
	unaligned := build(1024)
	mU := unaligned.Agg.Groups()[0].Metrics()
	if mU.AZCSRandom == 0 {
		t.Fatal("unaligned AAs produced no random checksum writes")
	}
	if mU.AZCSSequential == 0 {
		t.Fatal("no interior checksum blocks swept")
	}

	// Aligned: media-derived sizing rounds to a multiple of 63, so AA
	// boundaries coincide with region boundaries.
	aligned := build(0)
	g := aligned.Agg.Groups()[0]
	if g.Topology().StripesPerAA()%63 != 0 {
		t.Fatalf("derived AA size %d not 63-aligned", g.Topology().StripesPerAA())
	}
	mA := g.Metrics()
	if mA.AZCSRandom >= mU.AZCSRandom {
		t.Fatalf("aligned random CS writes %d >= unaligned %d", mA.AZCSRandom, mU.AZCSRandom)
	}
	// SMR drives saw (almost) no interventions under sequential writes.
	for _, d := range g.Devices() {
		if smr, ok := d.(*device.SMR); ok && smr.Interventions() > 2 {
			t.Fatalf("aligned config intervened %d times", smr.Interventions())
		}
	}
}

// TrimOnFree forwards frees to the SSD FTL, reducing merge copying.
func TestTrimOnFreeReachesFTL(t *testing.T) {
	tun := DefaultTunables()
	tun.TrimOnFree = true
	tun.CPEveryOps = 512
	spec := GroupSpec{
		DataDevices: 3, ParityDevices: 1, BlocksPerDevice: 1 << 15,
		Media: aa.MediaSSD, EraseBlockBlocks: 512,
	}
	s := NewSystem([]GroupSpec{spec},
		[]VolSpec{{Name: "v", Blocks: 4 * aa.RAIDAgnosticBlocks}}, tun, 24)
	lun := s.Agg.Vols()[0].CreateLUN("l", 40000)
	rng := rand.New(rand.NewSource(24))
	for lba := uint64(0); lba < 40000; lba++ {
		s.Write(lun, lba, 1)
	}
	for i := 0; i < 20000; i++ {
		s.Write(lun, uint64(rng.Intn(40000)), 1)
	}
	s.CP()
	ftl := s.FTLTotals()
	if ftl.Trims == 0 {
		t.Fatal("no trims reached the FTL despite TrimOnFree")
	}
	if ftl.Trims < 15000 {
		t.Fatalf("trims = %d, expected roughly one per COW free", ftl.Trims)
	}
	checkConsistency(t, s)
}

// Cleaning on a nearly full system actually relocates blocks (the aged
// fixtures elsewhere leave fully empty AAs at the heap top).
func TestCleanerRelocatesOnFullSystem(t *testing.T) {
	tun := DefaultTunables()
	tun.CPEveryOps = 512
	s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 16 * aa.RAIDAgnosticBlocks}}, tun, 25)
	lun := s.Agg.Vols()[0].CreateLUN("l", 300000)
	for lba := uint64(0); lba < 300000; lba++ {
		s.Write(lun, lba, 1)
	}
	rng := rand.New(rand.NewSource(25))
	for i := 0; i < 100000; i++ {
		s.Write(lun, uint64(rng.Intn(300000)), 1)
	}
	s.CP()
	// ~76% full: the best AAs are partially used.
	busyBefore := s.Counters().DeviceBusy
	st := s.CleanBestAAs(s.Agg.Groups()[0], 4)
	if st.BlocksRelocated == 0 {
		t.Fatalf("cleaner relocated nothing: %+v", st)
	}
	// Relocation reads were charged.
	if s.Counters().DeviceBusy <= busyBefore {
		t.Fatal("no device time charged for relocation reads")
	}
	s.CP()
	checkConsistency(t, s)
	// The cleaned AAs are now completely empty and sit atop the heap.
	best, _ := s.Agg.Groups()[0].Cache().Best()
	if best.Score != aaBlockCount(s.Agg.Groups()[0].Topology(), best.ID) {
		t.Fatalf("best AA after cleaning scores %d (not empty)", best.Score)
	}
}

// Volume metrics accessors behave through the public surface.
func TestVolMetricsAccessors(t *testing.T) {
	s := testSystem(t, DefaultTunables())
	vol := s.Agg.Vols()[0]
	lun := vol.CreateLUN("l", 5000)
	for lba := uint64(0); lba < 5000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	m := vol.Metrics()
	if m.AllocatedBlocks != 5000 || m.ScannedBlocks < 5000 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.PickedScoreFraction <= 0 {
		t.Fatal("no pick recorded")
	}
	if vol.Blocks() == 0 || vol.UsedFraction() <= 0 || vol.Bitmap().Used() != 5000 {
		t.Fatal("accessors wrong")
	}
	if vol.LUN("l") != lun || vol.LUN("missing") != nil {
		t.Fatal("LUN lookup wrong")
	}
	vol.ResetMetrics()
	if vol.Metrics().AllocatedBlocks != 0 {
		t.Fatal("reset did not clear")
	}
	// Aggregate accessors.
	if s.Agg.Tunables().CPEveryOps == 0 || s.Agg.UsedFraction() <= 0 {
		t.Fatal("aggregate accessors wrong")
	}
	if s.Agg.Bitmap() == nil || s.Agg.Store() == nil {
		t.Fatal("nil accessors")
	}
}

// §2.4's read-side claim: data written as long chains reads back with few
// I/Os, while fragmented data costs one I/O per block.
func TestSequentialReadCoalescing(t *testing.T) {
	s := testSystem(t, DefaultTunables())
	lun := s.Agg.Vols()[0].CreateLUN("l", 40000)
	// Sequentially written data lands physically contiguous.
	for lba := uint64(0); lba < 8192; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	g := s.Agg.Groups()[0]
	readIOs := func() uint64 {
		var n uint64
		for _, d := range g.Devices() {
			if st, ok := d.(interface{ Stats() device.DiskStats }); ok {
				n += st.Stats().ReadIOs
			}
		}
		return n
	}
	before := readIOs()
	s.Read(lun, 0, 256)
	seqIOs := readIOs() - before
	// 256 logically+physically sequential blocks: a handful of chained
	// reads (device-range splits only), not 256.
	if seqIOs > 8 {
		t.Fatalf("sequential read used %d I/Os for 256 blocks", seqIOs)
	}

	// Now fragment: random overwrites scatter the physical layout.
	rng := rand.New(rand.NewSource(27))
	for i := 0; i < 40000; i++ {
		s.Write(lun, uint64(rng.Intn(8192)), 1)
	}
	s.CP()
	before = readIOs()
	allBefore := s.Counters().DeviceBusy
	s.Read(lun, 0, 256)
	fragIOs := readIOs() - before
	_ = allBefore
	if fragIOs < 10*seqIOs {
		t.Fatalf("fragmented read used %d I/Os vs sequential %d — no contrast", fragIOs, seqIOs)
	}
}
