package wafl

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"waflfs/internal/aa"
	"waflfs/internal/obs"
	"waflfs/internal/obs/picks"
	"waflfs/internal/obs/tsdb"
)

// The live-endpoint contract: /metrics (published snapshots), the
// time-series dump, and the pick-provenance dump can all be scraped while
// consistency points are in flight. Under -race this audits the whole
// serving path — the CP thread snapshots its own registry and publishes;
// scrapers only touch mutex- or atomically-guarded state.
func TestLiveEndpointsScrapedDuringCPs(t *testing.T) {
	live := obs.NewLatest()
	store := tsdb.NewStore(tsdb.Config{Capacity: 64})
	rec := picks.NewRecorder(picks.DefaultConfig())
	tun := DefaultTunables()
	tun.CPEveryOps = 1 << 30
	tun.Obs = &ObsOptions{
		Name:      "live",
		Live:      live,
		TSDB:      store,
		Picks:     rec,
		Watchdogs: true,
	}
	s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 16 * aa.RAIDAgnosticBlocks}}, tun, 9)
	lun := s.Agg.Vols()[0].CreateLUN("l", 30000)

	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.LatestHandler(live))
	mux.HandleFunc("/debug/timeseries", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = store.WriteJSON(w)
	})
	mux.HandleFunc("/debug/picks", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = rec.WriteJSON(w)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var scrapes atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/debug/timeseries", "/debug/picks"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Errorf("read %s: %v", path, err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: status %d", path, resp.StatusCode)
					return
				}
				scrapes.Add(1)
			}
		}(path)
	}

	rng := rand.New(rand.NewSource(2))
	for cp := 0; cp < 12; cp++ {
		for i := 0; i < 2500; i++ {
			s.Write(lun, uint64(rng.Intn(30000)), 1)
		}
		s.CP()
	}
	close(stop)
	wg.Wait()

	if scrapes.Load() == 0 {
		t.Fatal("no scrapes completed while CPs ran")
	}

	// The published /metrics view carries the final CP's state under the
	// system-name prefix, in valid Prometheus text.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "live_wafl_cps 12") {
		t.Errorf("published metrics missing final CP count:\n%.400s", text)
	}
	if !strings.Contains(text, "live_watchdog_checks") {
		t.Error("published metrics missing watchdog counters")
	}

	// The time-series endpoint serves a JSON document with nonzero per-CP
	// series for this system.
	resp, err = http.Get(srv.URL + "/debug/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Capacity int `json:"capacity"`
		Series   []struct {
			Name   string `json:"name"`
			Points []struct {
				CPLast uint64  `json:"cp_last"`
				Sum    float64 `json:"sum"`
			} `json:"points"`
		} `json:"series"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if doc.Capacity != 64 || len(doc.Series) == 0 {
		t.Fatalf("timeseries doc: capacity %d, %d series", doc.Capacity, len(doc.Series))
	}
	nonzero := false
	for _, se := range doc.Series {
		for _, p := range se.Points {
			if p.Sum != 0 {
				nonzero = true
			}
		}
	}
	if !nonzero {
		t.Error("every time series is zero")
	}

	// The picks endpoint serves the per-space provenance rings.
	resp, err = http.Get(srv.URL + "/debug/picks")
	if err != nil {
		t.Fatal(err)
	}
	var picksDoc struct {
		Spaces []struct {
			Space    string `json:"space"`
			Recorded uint64 `json:"recorded"`
		} `json:"spaces"`
	}
	err = json.NewDecoder(resp.Body).Decode(&picksDoc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var recorded uint64
	for _, sp := range picksDoc.Spaces {
		recorded += sp.Recorded
	}
	if recorded == 0 {
		t.Fatalf("picks endpoint recorded nothing: %+v", picksDoc)
	}
}
