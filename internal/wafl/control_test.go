package wafl

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"waflfs/internal/aa"
	"waflfs/internal/control"
	"waflfs/internal/obs"
	"waflfs/internal/obs/optrace"
	"waflfs/internal/obs/slo"
	"waflfs/internal/obs/tsdb"
)

// controlEquivRun drives one clean (fault-free) workload with the SLO
// portfolio armed, optionally with the stock control portfolio on top.
func controlEquivRun(t *testing.T, armed bool) (*System, *tsdb.Store, *slo.Set) {
	t.Helper()
	tun := DefaultTunables()
	tun.CPEveryOps = 1 << 30
	tun.DelayedVirtFrees = true
	store := tsdb.NewStore(tsdb.Config{Capacity: 256, HistBuckets: tsdb.SuffixFilter(".lat_ns")})
	sloSet := slo.NewSet(slo.DefaultSpecs())
	o := &ObsOptions{
		Name:    "arm",
		TSDB:    store,
		SLO:     sloSet,
		OpTrace: optrace.NewRecorder(optrace.Config{Rate: 4, Capacity: 128, Seed: 11}),
	}
	if armed {
		o.Control = control.NewSet(control.DefaultPolicies())
	}
	tun.Obs = o
	s := NewSystem(testSpecs(), []VolSpec{{Name: "va", Blocks: 16 * aa.RAIDAgnosticBlocks}}, tun, 11)
	lun := s.Agg.Vols()[0].CreateLUN("lun", 40000)
	for lba := uint64(0); lba < 40000; lba++ {
		s.Write(lun, lba, 1)
		if s.pendingBlocks >= 8192 {
			s.CP()
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8000; i++ {
		s.Write(lun, uint64(rng.Intn(40000)), 1)
		if s.pendingBlocks >= 8192 {
			s.CP()
		}
	}
	s.CP()
	return s, store, sloSet
}

// The do-no-harm contract: on a clean run the stock portfolio never
// actuates, and an armed-but-idle controller leaves every other artifact —
// counters, stable metrics, SLO status, tsdb contents — byte-identical to
// Control=nil. Only the control.* namespaces themselves may differ.
func TestControlOffEquivalence(t *testing.T) {
	sOn, tsOn, sloOn := controlEquivRun(t, true)
	sOff, tsOff, sloOff := controlEquivRun(t, false)

	ctl := sOn.Agg.obsOpts.Control
	tot := ctl.Totals()
	if tot.Evaluations == 0 {
		t.Fatal("armed controller never evaluated (no instances resolved?)")
	}
	if tot.Actuations != 0 || tot.Suppressed != 0 {
		var b strings.Builder
		_ = ctl.WriteJSON(&b)
		t.Fatalf("stock portfolio acted on a clean run: %+v\n%s", tot, b.String())
	}
	if sOff.Agg.ctl != nil {
		t.Fatal("Control=nil armed an engine")
	}

	if sOn.Counters() != sOff.Counters() {
		t.Fatalf("counters diverged:\narmed: %+v\noff:   %+v", sOn.Counters(), sOff.Counters())
	}

	// Stable snapshots match outside the control.* scalar family (which is
	// registered unconditionally and reads 0 when off).
	strip := func(snap obs.Snapshot) []obs.Metric {
		out := make([]obs.Metric, 0, len(snap.Metrics))
		for _, m := range snap.Metrics {
			if strings.HasPrefix(m.Name, "control.") {
				continue
			}
			out = append(out, m)
		}
		return out
	}
	mOn, mOff := strip(sOn.Registry().StableSnapshot()), strip(sOff.Registry().StableSnapshot())
	if !reflect.DeepEqual(mOn, mOff) {
		for i := range mOn {
			if i < len(mOff) && !reflect.DeepEqual(mOn[i], mOff[i]) {
				t.Errorf("metric %q: armed %+v, off %+v", mOn[i].Name, mOn[i], mOff[i])
			}
		}
		t.Fatalf("stable snapshots diverged outside control.* (%d vs %d metrics)", len(mOn), len(mOff))
	}

	// SLO evaluation is upstream of the controller and must be untouched.
	var jOn, jOff strings.Builder
	if err := sloOn.WriteJSON(&jOn); err != nil {
		t.Fatal(err)
	}
	if err := sloOff.WriteJSON(&jOff); err != nil {
		t.Fatal(err)
	}
	if jOn.String() != jOff.String() {
		t.Fatal("slo status diverged between armed and off")
	}

	// The stores match series-for-series outside "arm.control.*" (the state,
	// signal, and knob series an idle controller still writes).
	stripDump := func(dump []tsdb.SeriesDump) []tsdb.SeriesDump {
		out := make([]tsdb.SeriesDump, 0, len(dump))
		for _, d := range dump {
			if strings.HasPrefix(d.Name, "arm.control.") {
				continue
			}
			out = append(out, d)
		}
		return out
	}
	dOn, dOff := stripDump(tsOn.Dump()), stripDump(tsOff.Dump())
	if !reflect.DeepEqual(dOn, dOff) {
		for i := range dOn {
			if i < len(dOff) && !reflect.DeepEqual(dOn[i], dOff[i]) {
				t.Errorf("series %q diverged between armed and off", dOn[i].Name)
			}
		}
		t.Fatalf("tsdb contents diverged outside arm.control.* (%d vs %d series)", len(dOn), len(dOff))
	}

	// The idle controller still published its knob series (full provenance
	// even when nothing fires), at the untouched default values.
	if v, ok := tsOn.ValueAt("arm.control.knob."+control.KnobDelayedBudget, sOn.Counters().CPs); !ok ||
		v != float64(DefaultTunables().DelayedFreeBudgetPerCP) {
		t.Errorf("idle knob series delayed_budget = %v,%v", v, ok)
	}
	if _, ok := tsOff.ValueAt("arm.control.knob."+control.KnobDelayedBudget, sOff.Counters().CPs); ok {
		t.Error("Control=nil wrote control series")
	}
}
