package wafl

import (
	"fmt"
	"sort"
	"time"

	"waflfs/internal/aa"
	"waflfs/internal/block"
	"waflfs/internal/device"
	"waflfs/internal/faultinject"
	"waflfs/internal/obs/optrace"
)

// System is the client-facing facade: it accepts LUN reads and writes,
// buffers modifications, and flushes them in consistency points (§2.1:
// "WAFL collects the results of thousands of such modifying operations and
// efficiently flushes the changes to persistent storage"). It also owns the
// CPU cost accounting the experiments measure.
type System struct {
	Agg *Aggregate
	tun Tunables

	// pending holds the coalesced dirty blocks of the current CP, per LUN.
	pending map[*LUN]map[uint64]struct{}
	// pendingBlocks counts dirty (lun, lba) pairs across the buffer.
	pendingBlocks int
	opsSinceCP    int

	c Counters
	// cpWall accumulates the modeled flush wall-clock (CPStats.FlushWall)
	// across CPs. Kept out of Counters: it is the one quantity that is
	// *supposed* to shrink with Tunables.Workers, while every Counters field
	// stays worker-count invariant. Under Tunables.Pipeline each boundary
	// contributes max(alloc wall, flush wall) instead of the flush wall
	// alone (see pipeline.go).
	cpWall time.Duration
	// pipe is the pipelined-CP state (Tunables.Pipeline; see pipeline.go).
	// Zero-valued and untouched on the classic path.
	pipe cpPipeline
	// obsMark is the (DeviceBusy + CPUTime) total already folded into the
	// tracer's modeled clock; both terms are worker-count invariant, so
	// trace timestamps are too.
	obsMark time.Duration
	// act is the closed-loop controller's knob surface (see actuator.go).
	act sysActuator
}

// deviceStatser is satisfied by all concrete device models.
type deviceStatser interface{ Stats() device.DiskStats }

// Counters are the cumulative measurement counters; experiments snapshot
// them before and after a run and subtract.
type Counters struct {
	Ops    uint64 // all client operations
	ModOps uint64 // modifying operations
	CPs    uint64

	CPUTime       time.Duration // WAFL code-path CPU (base + metafile + cache)
	CacheCPUTime  time.Duration // the cache-maintenance share of CPUTime
	MetafilePages uint64        // bitmap-metafile pages written back
	TopAABlocks   uint64        // TopAA metafile blocks written
	DeviceBusy    time.Duration // total device time (writes, parity, reads)
	BlocksWritten uint64        // physical blocks allocated and flushed
	BlocksFreed   uint64
}

// Sub returns c - o field-wise.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Ops:           c.Ops - o.Ops,
		ModOps:        c.ModOps - o.ModOps,
		CPs:           c.CPs - o.CPs,
		CPUTime:       c.CPUTime - o.CPUTime,
		CacheCPUTime:  c.CacheCPUTime - o.CacheCPUTime,
		MetafilePages: c.MetafilePages - o.MetafilePages,
		TopAABlocks:   c.TopAABlocks - o.TopAABlocks,
		DeviceBusy:    c.DeviceBusy - o.DeviceBusy,
		BlocksWritten: c.BlocksWritten - o.BlocksWritten,
		BlocksFreed:   c.BlocksFreed - o.BlocksFreed,
	}
}

// CPUPerOp returns the mean WAFL code-path cost per operation.
func (c Counters) CPUPerOp() time.Duration {
	if c.Ops == 0 {
		return 0
	}
	return c.CPUTime / time.Duration(c.Ops)
}

// NewSystem builds a System over a fresh aggregate.
func NewSystem(specs []GroupSpec, vols []VolSpec, tun Tunables, seed int64) *System {
	ag := NewAggregate(specs, tun, seed)
	for _, vs := range vols {
		ag.AddVolume(vs)
	}
	s := &System{
		Agg:     ag,
		tun:     ag.tun,
		pending: make(map[*LUN]map[uint64]struct{}),
	}
	s.act.s = s
	s.registerSystemObs()
	if o := &ag.obsOpts; o.Control != nil && o.TSDB != nil {
		// The closed-loop controller needs the System's knob surface, so it
		// arms here rather than in initObs; the control.* counter views
		// registered there read through ag.ctl nil-safely either way.
		ag.ctl = o.Control.Engine(o.Name, o.TSDB, &s.act)
		if o.OpTrace != nil {
			// Actuation records link to a representative sampled trace from
			// the triggering signal's volume.
			ag.ctl.SetExemplarSource(o.OpTrace)
		}
	}
	return s
}

// Counters returns the cumulative counters.
func (s *System) Counters() Counters { return s.c }

// Write records a client write of nblocks logical blocks of l starting at
// lba. The blocks become dirty in the current CP; allocation happens when
// the CP commits, as in WAFL. Overwrites of the same block within one CP
// coalesce.
func (s *System) Write(l *LUN, lba uint64, nblocks int) {
	if lba+uint64(nblocks) > l.Blocks() {
		panic(fmt.Sprintf("wafl: write [%d,%d) beyond LUN %q size %d", lba, lba+uint64(nblocks), l.Name, l.Blocks()))
	}
	m, ok := s.pending[l]
	if !ok {
		m = make(map[uint64]struct{})
		s.pending[l] = m
	}
	for i := 0; i < nblocks; i++ {
		if _, dup := m[lba+uint64(i)]; !dup {
			m[lba+uint64(i)] = struct{}{}
			s.pendingBlocks++
		}
	}
	s.c.Ops++
	s.c.ModOps++
	s.c.CPUTime += s.tun.CPUBasePerOp
	s.opsSinceCP++
	if s.opsSinceCP >= s.tun.CPEveryOps {
		s.CP()
	}
}

// Read services a client read of nblocks logical blocks, charging the
// owning devices. Logically consecutive blocks whose physical VBNs are also
// consecutive coalesce into one device I/O — the read-side payoff of long
// write chains ("writing logically sequential blocks of the file system to
// consecutive blocks of a storage device ... improves subsequent sequential
// read performance because the blocks can be read with a single I/O",
// §2.4). Unwritten blocks read as zeroes and touch no device.
func (s *System) Read(l *LUN, lba uint64, nblocks int) {
	if lba+uint64(nblocks) > l.Blocks() {
		panic(fmt.Sprintf("wafl: read [%d,%d) beyond LUN %q size %d", lba, lba+uint64(nblocks), l.Name, l.Blocks()))
	}
	s.c.Ops++
	s.c.CPUTime += s.tun.CPUBasePerOp
	busyBefore := s.c.DeviceBusy
	// Op tracing: every read draws its deterministic per-volume sequence
	// number (nil-safe no-op when tracing is off). Device-leaf durations are
	// collected only when tracing is armed — pure observation, no modeled
	// cost.
	sp := l.vol.space
	tid, seq, sampled := sp.tr.Begin(optrace.KindRead)
	var leafBusy map[string]time.Duration
	if sp.tr != nil {
		leafBusy = make(map[string]time.Duration)
	}
	// Gather the op's physical blocks and coalesce per device, exactly as a
	// RAID read engine does: striped sequential data becomes one contiguous
	// DBN chain per device.
	var poolRun []block.VBN
	perDev := make(map[devKey][]uint64)
	for i := 0; i < nblocks; i++ {
		p := l.Phys(lba + uint64(i))
		if p == block.InvalidVBN {
			continue
		}
		if s.Agg.pool != nil && s.Agg.pool.Contains(p) {
			poolRun = append(poolRun, p)
			continue
		}
		g := s.Agg.groupOf(p)
		d, dbn := g.geo.Locate(p)
		perDev[devKey{g, d}] = append(perDev[devKey{g, d}], dbn)
	}
	// Pool blocks: one range GET per contiguous VBN run.
	sortVBNs(poolRun)
	for i := 0; i < len(poolRun); {
		j := i + 1
		for j < len(poolRun) && poolRun[j] == poolRun[j-1]+1 {
			j++
		}
		d := s.Agg.pool.read(uint64(j - i))
		s.c.DeviceBusy += d
		if leafBusy != nil {
			leafBusy["pool"] += d
		}
		i = j
	}
	for key, dbns := range perDev {
		sortUint64s(dbns)
		for i := 0; i < len(dbns); {
			j := i + 1
			for j < len(dbns) && dbns[j] == dbns[j-1]+1 {
				j++
			}
			start, n := dbns[i], uint64(j-i)
			var d time.Duration
			if key.g.azcs {
				diskStart := device.DataToDiskDBN(start)
				diskLen := device.DataToDiskDBN(start+n-1) - diskStart + 1
				d = key.g.devices[key.d].Read(diskLen)
			} else {
				d = key.g.devices[key.d].Read(n)
			}
			s.c.DeviceBusy += d
			if leafBusy != nil {
				leafBusy[fmt.Sprintf("rg%d.dev%d", key.g.Index, key.d)] += d
			}
			i = j
		}
	}
	// Latency SLI: a read op's modeled latency is its base CPU charge plus
	// the device time it just accrued — both worker-invariant. The same two
	// quantities feed the attribution accumulators, so per-stage attributed
	// time reconciles with the histogram total exactly.
	delta := s.c.DeviceBusy - busyBefore
	lat := uint64(s.tun.CPUBasePerOp + delta)
	sp.lat.Observe(lat)
	sp.attr[optrace.StageBase] += uint64(s.tun.CPUBasePerOp)
	sp.attr[optrace.StageDevice] += uint64(delta)
	if rec, slow := sp.tr.Decide(sampled, lat); rec {
		// perDev map iteration above is order-free (per-device totals are
		// independent); the trace's leaf spans sort by label so the recorded
		// tree is deterministic.
		labels := make([]string, 0, len(leafBusy))
		for lb := range leafBusy {
			labels = append(labels, lb)
		}
		sort.Strings(labels)
		leaves := make([]optrace.Span, 0, len(labels))
		for _, lb := range labels {
			leaves = append(leaves, optrace.Span{Name: lb, DurNS: uint64(leafBusy[lb])})
		}
		sp.tr.Add(optrace.Trace{
			ID: tid, Kind: optrace.KindRead.String(), Seq: seq, CP: s.c.CPs,
			AtNS: int64(s.c.DeviceBusy + s.c.CPUTime), LatNS: lat, Slow: slow,
			Spans: []optrace.Span{
				{Name: optrace.StageBase.String(), DurNS: uint64(s.tun.CPUBasePerOp)},
				{Name: optrace.StageDevice.String(), DurNS: uint64(delta), Children: leaves},
			},
		})
	}
}

// devKey identifies one data device for read coalescing.
type devKey struct {
	g *Group
	d int
}

func sortVBNs(xs []block.VBN) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// CP commits the current consistency point: dirty blocks get their dual
// VBNs (virtual from each volume's HBPS-guided allocator, physical from the
// tetris round-robin over RAID groups), previous block versions are freed
// (COW), tetrises are flushed, caches updated, metafiles written back.
func (s *System) CP() CPStats {
	if s.tun.Pipeline {
		return s.cpPipelined()
	}
	cacheOpsBefore := s.cacheOps()
	scanBefore := s.virtScanBlocks()
	s.Agg.cpOrd = s.c.CPs + 1 // provenance records carry the CP being built
	s.Agg.st.BeginCP()
	s.Agg.faults.BeginCP()
	s.Agg.faults.EnterPhase(faultinject.PhaseAlloc)

	// Phase 1: write allocation + COW frees, volume by volume. The pending
	// map is iterated in sorted (volume, LUN) order: map order would assign
	// VBNs to LUNs differently run to run whenever more than one LUN is
	// dirty, leaking nondeterminism into every downstream read and free.
	luns := make([]*LUN, 0, len(s.pending))
	for l := range s.pending {
		luns = append(luns, l)
	}
	sort.Slice(luns, func(i, j int) bool {
		if luns[i].vol.Name != luns[j].vol.Name {
			return luns[i].vol.Name < luns[j].vol.Name
		}
		return luns[i].Name < luns[j].Name
	})
	volBlocks := make(map[*FlexVol]uint64, len(s.Agg.vols))
	var totalBlocks uint64
	// Op tracing, write side: the blocks a volume commits this CP share one
	// modeled latency (the SLI below), so one trace candidate per (volume,
	// CP) stands for the whole batch. Begin draws the volume's deterministic
	// write sequence number before its first allocation; while the volume
	// allocates, the sampled trace ID rides along in curTID so its
	// pick-provenance records cross-reference the trace.
	type writeCand struct {
		id, seq      uint64
		sampled      bool
		stalls0      uint64
		replenishes0 uint64
		stallBusy0   time.Duration
		refillBusy0  time.Duration
	}
	cands := make(map[*FlexVol]*writeCand)
	for _, l := range luns {
		dirty := s.pending[l]
		n := len(dirty)
		if n == 0 {
			continue
		}
		vol := l.vol
		if sp := vol.space; sp.tr != nil {
			if _, ok := cands[vol]; !ok {
				id, seq, smp := sp.tr.Begin(optrace.KindWrite)
				cands[vol] = &writeCand{
					id: id, seq: seq, sampled: smp,
					stalls0: sp.as.stalls, replenishes0: sp.replenishes,
					stallBusy0: sp.as.stallBusy, refillBusy0: sp.as.refillBusy,
				}
				if smp {
					sp.curTID = id
				}
			}
		}
		volBlocks[vol] += uint64(n)
		totalBlocks += uint64(n)
		virt := vol.space.allocate(n)
		var phys []block.VBN
		if s.tun.FlashPool {
			phys = s.Agg.AllocatePhysicalPreferring(aa.MediaSSD, n)
		} else {
			phys = s.Agg.AllocatePhysical(n)
		}
		if len(virt) < n {
			panic(fmt.Sprintf("wafl: volume %q out of virtual space", vol.Name))
		}
		if len(phys) < n {
			panic("wafl: aggregate out of physical space")
		}
		// Deterministic iteration: sort the dirty LBAs.
		lbas := make([]uint64, 0, n)
		for lba := range dirty {
			lbas = append(lbas, lba)
		}
		sortUint64s(lbas)
		for i, lba := range lbas {
			vol.refNew(virt[i])
			old, wasWritten := l.install(lba, blockPtr{virt: virt[i], phys: phys[i]})
			if wasWritten {
				// COW: drop the active image's reference; the old pair is
				// freed unless a snapshot still holds it.
				s.unref(vol, old)
			}
		}
		s.c.BlocksWritten += uint64(n)
		s.Agg.st.Emit("cp.alloc", vol.space.shard, l.Name, 0, int64(n))
		delete(s.pending, l)
	}
	s.pendingBlocks = 0
	s.opsSinceCP = 0
	for vol := range cands {
		vol.space.curTID = 0
	}

	// Phase 1.5: apply queued delayed frees, most-pending-AA-first.
	s.Agg.faults.EnterPhase(faultinject.PhaseDelayedFree)
	for _, v := range s.Agg.vols {
		freed, aas := v.space.reclaimDelayedFrees(s.tun.DelayedFreeBudgetPerCP)
		if freed > 0 {
			s.Agg.st.Emit("cp.delayed_free", v.space.shard, "reclaim", 0, int64(freed))
			s.Agg.st.Emit("cp.delayed_free", v.space.shard, "aas_processed", 0, int64(aas))
		}
	}

	// Phase 2: flush. When traces are pending, snapshot per-group device
	// busy so their flush-time deltas can become device leaf spans.
	var gBusy []time.Duration
	if len(cands) > 0 {
		gBusy = make([]time.Duration, len(s.Agg.groups))
		for i, g := range s.Agg.groups {
			gBusy[i] = g.deviceBusy
		}
	}
	st := s.Agg.CommitCP()
	s.c.CPs++
	s.c.DeviceBusy += st.DeviceBusy
	pages := uint64(st.MetafilePagesAggregate + st.MetafilePagesVols)
	s.c.MetafilePages += pages
	s.c.TopAABlocks += uint64(st.TopAABlocks)
	s.c.CPUTime += time.Duration(pages) * s.tun.CPUPerMetafilePage
	scanCPU := time.Duration(s.virtScanBlocks()-scanBefore) * s.tun.CPUPerVirtAllocScan
	s.c.CPUTime += scanCPU
	cacheCPU := time.Duration(s.cacheOps()-cacheOpsBefore) * s.tun.CPUPerCacheOp
	s.c.CPUTime += cacheCPU
	s.c.CacheCPUTime += cacheCPU
	s.cpWall += st.FlushWall

	// Latency SLI, write side: every block committed this CP shares the
	// CP's worker-invariant modeled cost (device time, metafile and
	// virtual-scan CPU, cache CPU) evenly, on top of the per-op base CPU
	// charge. FlushWall is deliberately excluded: it varies with worker
	// width, and the SLO engine requires invariant inputs.
	//
	// The per-block share is split by stage in the same proportions as the
	// CP cost it came from, with the device stage absorbing the integer
	// rounding remainder: the stages then sum to perBlock exactly, so the
	// attribution accumulators reconcile with the histogram total to the
	// nanosecond (optrace.attr_coverage == 1.0). The float64 scaling is
	// deterministic — IEEE ops on worker-invariant integers.
	var perBlock uint64
	if totalBlocks > 0 {
		metaNS := time.Duration(pages) * s.tun.CPUPerMetafilePage
		cpCost := st.DeviceBusy + metaNS + scanCPU + cacheCPU
		cpPer := uint64(cpCost) / totalBlocks
		base := uint64(s.tun.CPUBasePerOp)
		perBlock = base + cpPer
		var metaPer, scanPer, cachePer, devPer uint64
		if cpCost > 0 {
			fc := float64(cpPer) / float64(cpCost)
			metaPer = uint64(fc * float64(metaNS))
			scanPer = uint64(fc * float64(scanCPU))
			cachePer = uint64(fc * float64(cacheCPU))
			devPer = cpPer - metaPer - scanPer - cachePer
		}
		for _, v := range s.Agg.vols {
			if n := volBlocks[v]; n > 0 {
				sp := v.space
				sp.lat.ObserveN(perBlock, n)
				sp.attr[optrace.StageBase] += n * base
				sp.attr[optrace.StageDevice] += n * devPer
				sp.attr[optrace.StageMetafile] += n * metaPer
				sp.attr[optrace.StageScan] += n * scanPer
				sp.attr[optrace.StageCache] += n * cachePer
			}
		}
		// Record the pending write traces: one per sampled (volume, CP)
		// batch, span durations from the same stage split the accumulators
		// used, plus a zero-duration allocator annotation (pick provenance,
		// stall/refill activity) and per-group flush leaf spans scaled to
		// the op's device share.
		for _, v := range s.Agg.vols {
			c := cands[v]
			if c == nil || volBlocks[v] == 0 {
				continue
			}
			sp := v.space
			rec, slow := sp.tr.Decide(c.sampled, perBlock)
			if !rec {
				continue
			}
			var flushTotal time.Duration
			for gi, g := range s.Agg.groups {
				flushTotal += g.deviceBusy - gBusy[gi]
			}
			var leaves []optrace.Span
			if devPer > 0 && flushTotal > 0 {
				for gi, g := range s.Agg.groups {
					if d := g.deviceBusy - gBusy[gi]; d > 0 {
						leaves = append(leaves, optrace.Span{
							Name:  fmt.Sprintf("rg%d", g.Index),
							DurNS: uint64(float64(devPer) * float64(d) / float64(flushTotal)),
						})
					}
				}
			}
			pk := sp.lastPick
			alloc := optrace.Span{
				Name: "alloc",
				Detail: fmt.Sprintf("aa=%d score=%d runner_up=%d reason=%s stalls=%d refills=%d",
					pk.aa, pk.score, pk.runner, pk.reason,
					sp.as.stalls-c.stalls0, sp.replenishes-c.replenishes0),
			}
			if d := sp.as.stallBusy - c.stallBusy0; d > 0 {
				alloc.Children = append(alloc.Children, optrace.Span{
					Name: "stall", Detail: fmt.Sprintf("busy_ns=%d", d)})
			}
			if d := sp.as.refillBusy - c.refillBusy0; d > 0 {
				alloc.Children = append(alloc.Children, optrace.Span{
					Name: "refill", Detail: fmt.Sprintf("busy_ns=%d", d)})
			}
			sp.tr.Add(optrace.Trace{
				ID: c.id, Kind: optrace.KindWrite.String(), Seq: c.seq, CP: s.c.CPs,
				AtNS:  int64(s.c.DeviceBusy + s.c.CPUTime),
				LatNS: perBlock, Blocks: volBlocks[v], Slow: slow,
				Spans: []optrace.Span{
					{Name: optrace.StageBase.String(), DurNS: base},
					alloc,
					{Name: optrace.StageDevice.String(), DurNS: devPer, Children: leaves},
					{Name: optrace.StageMetafile.String(), DurNS: metaPer},
					{Name: optrace.StageScan.String(), DurNS: scanPer},
					{Name: optrace.StageCache.String(), DurNS: cachePer},
				},
			})
		}
	}

	// Advance the tracer's modeled clock by the worker-invariant time this
	// CP (and the client ops since the last one) accrued, then record the
	// per-CP metric row.
	tot := s.c.DeviceBusy + s.c.CPUTime
	s.Agg.st.Advance(tot - s.obsMark)
	s.obsMark = tot
	s.runWatchdogs()
	if rec := s.Agg.obsOpts.CSV; rec != nil {
		rec.Record(s.Agg.obsOpts.Name, s.c.CPs, s.Agg.reg.Snapshot())
	}
	if l := s.Agg.obsOpts.Live; l != nil { // guard: don't snapshot when unused
		l.Publish(s.Agg.obsOpts.Name, s.Agg.reg.Snapshot())
	}
	s.maybeFragScan()
	if ts := s.Agg.obsOpts.TSDB; ts != nil {
		// Sample every registered metric into the per-CP time-series ring,
		// stamped with the worker-invariant modeled clock. StableSnapshot
		// excludes volatile metrics, so the stored series are byte-identical
		// across worker widths.
		ts.Sample(s.Agg.obsOpts.Name, s.c.CPs, tot, s.Agg.reg.StableSnapshot())
	}
	if e := s.Agg.sloEng; e != nil {
		// Evaluate the SLO portfolio against the series sampled above. The
		// alert state for this CP lands in the store immediately; the
		// slo.* scalar counters appear in CSV/live rows at the next CP.
		e.Evaluate(s.c.CPs, tot)
	}
	if c := s.Agg.ctl; c != nil {
		// Close the loop: the controller reads the series sampled above
		// (including the alert states the SLO engine just wrote) and
		// actuates knobs that take effect from the next CP on. Inputs and
		// knob trajectory are worker-invariant, so the actuation stream is
		// byte-identical at any worker width.
		c.Evaluate(s.c.CPs, tot)
	}
	return st
}

// CPFlushWall returns the cumulative modeled wall-clock of CP flush phases:
// each CP contributes the makespan of its per-group (and pool) flush times
// over Tunables.Workers rather than their serial sum. Compare runs with
// Workers=1 vs Workers=N to see the concurrent-flush payoff.
func (s *System) CPFlushWall() time.Duration { return s.cpWall }

// virtScanBlocks sums the virtual allocation cursors' cumulative sweep
// lengths across volumes.
func (s *System) virtScanBlocks() uint64 {
	var n uint64
	for _, v := range s.Agg.vols {
		n += v.space.scannedBlocks
	}
	return n
}

// PunchHoles deallocates every written LUN block whose LBA the predicate
// selects, freeing both its virtual and physical VBNs (the effect of a SCSI
// UNMAP or of deleting file ranges). It must be called between CPs — with
// dirty buffers pending or a pipelined generation still flushing it returns
// ErrCPInProgress; the score updates batch into the next CP as usual.
// Returns the number of blocks freed.
func (s *System) PunchHoles(l *LUN, select_ func(lba uint64) bool) (int, error) {
	if s.pendingBlocks > 0 || s.pipe.inFlight {
		return 0, ErrCPInProgress
	}
	freed := 0
	for lba := range l.blocks {
		p := l.blocks[lba]
		if p.phys == block.InvalidVBN || !select_(uint64(lba)) {
			continue
		}
		if s.unref(l.vol, p) {
			freed++
		}
		l.blocks[lba] = blockPtr{virt: block.InvalidVBN, phys: block.InvalidVBN}
	}
	return freed, nil
}

// cacheOps sums the cumulative AA-cache maintenance operations across all
// caches.
func (s *System) cacheOps() uint64 {
	var n uint64
	for _, g := range s.Agg.groups {
		n += g.cacheOps
	}
	for _, v := range s.Agg.vols {
		n += v.space.cacheOps
	}
	if s.Agg.pool != nil {
		n += s.Agg.pool.space.cacheOps
	}
	return n
}

// DeviceBusyTimes returns each data device's cumulative busy time, grouped
// by RAID group — the per-device service demands the MVA model consumes.
func (s *System) DeviceBusyTimes() [][]time.Duration {
	out := make([][]time.Duration, len(s.Agg.groups))
	for gi, g := range s.Agg.groups {
		times := make([]time.Duration, 0, len(g.devices)+1)
		for _, d := range g.devices {
			if st, ok := d.(deviceStatser); ok {
				times = append(times, st.Stats().BusyTime)
			}
		}
		if st, ok := g.parity.(deviceStatser); ok {
			times = append(times, st.Stats().BusyTime)
		}
		out[gi] = times
	}
	return out
}

// WriteAmplification averages FTL write amplification over all SSD groups
// (0 if the aggregate has none).
func (s *System) WriteAmplification() float64 {
	var sum float64
	var n int
	for _, g := range s.Agg.groups {
		if wa := g.WriteAmplification(); wa > 0 {
			sum += wa
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func sortUint64s(xs []uint64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// ResetMetrics zeroes the measurement counters of every group and volume
// allocator (the cumulative Counters are unaffected; snapshot those with
// Counters and subtract).
func (s *System) ResetMetrics() {
	for _, g := range s.Agg.groups {
		g.ResetMetrics()
	}
	for _, v := range s.Agg.vols {
		v.ResetMetrics()
	}
}

// FTLTotals sums FTL accounting across every SSD data device in the
// aggregate, so experiments can compute write amplification over a
// measurement window by delta.
func (s *System) FTLTotals() device.FTLStats {
	var t device.FTLStats
	for _, g := range s.Agg.groups {
		gt := g.FTLTotals()
		t.HostWrites += gt.HostWrites
		t.NANDWrites += gt.NANDWrites
		t.Relocated += gt.Relocated
		t.Erases += gt.Erases
		t.Trims += gt.Trims
	}
	return t
}
