package wafl

import (
	"fmt"
	"math/rand"
	"time"

	"waflfs/internal/aa"
	"waflfs/internal/bitmap"
	"waflfs/internal/block"
	"waflfs/internal/device"
	"waflfs/internal/heapcache"
	"waflfs/internal/obs"
	"waflfs/internal/obs/picks"
	"waflfs/internal/raid"
)

// Device abstracts the per-drive cost models in package device.
type Device interface {
	// WriteChain services one write I/O of n consecutive blocks at start.
	WriteChain(start, n uint64) time.Duration
	// Read services one read I/O of n consecutive blocks.
	Read(n uint64) time.Duration
}

// trimmer is implemented by devices that accept deallocations (SSDs).
type trimmer interface {
	Trim(start, n uint64)
}

// Group is the runtime state of one RAID group: geometry, AA topology, the
// RAID-aware AA cache, the device models, and the allocator cursor.
type Group struct {
	Index int
	Spec  GroupSpec

	geo  raid.Geometry
	topo *aa.Striped

	cache        *heapcache.Cache
	cacheEnabled bool
	seedOnly     bool // cache holds only a TopAA seed; background fill pending

	// Striped allocator hot path (AllocShards > 1, see allocctx.go): sh
	// stripes the heap into per-shard pick queues; as holds the shard
	// ledgers and the modeled busy vectors. sh is nil on the classic path.
	sh *heapcache.Sharded
	as *allocState

	devices []Device // data devices, index-aligned with geometry
	parity  Device   // one model standing in for the parity device(s)
	ssds    []*device.SSD
	azcs    bool

	// Allocation cursor: the AA currently being filled, stripe-major.
	curAA     aa.ID
	curValid  bool
	curStripe uint64
	curEnd    uint64
	curWrote  bool // at least one block assigned from the current AA

	// deltas accumulates per-AA free-count changes since the last CP
	// (allocations negative, frees positive).
	deltas map[aa.ID]int64
	// cpWrites collects the physical VBNs allocated since the last CP.
	cpWrites []block.VBN

	// Pipelined-CP double buffering (see system.go cpPipelined): at seal,
	// deltas/cpWrites/pendingCS swap into these banks while the open
	// generation keeps accumulating into fresh ones; the banks flush and
	// fold when the sealed generation commits. Nil/empty on the classic
	// path.
	flushDeltas map[aa.ID]int64
	flushWrites []block.VBN
	flushCS     []uint64

	raidStats *raid.Stats
	rng       *rand.Rand

	// pendingCS queues out-of-band AZCS checksum-block positions (disk
	// DBNs) accrued at AA switches; they are charged after the CP's data
	// chains so device write pointers see writes in issue order.
	pendingCS []uint64

	// Measurement counters.
	pickedScoreSum   float64 // sum of (score/BlocksPerAA) at AA pick time
	pickedCount      uint64
	cacheOps         uint64 // AA-cache maintenance operations
	azcsSeqWrites    uint64
	azcsRandomWrites uint64
	deviceBusy       time.Duration // busy time charged during CP flushes

	// Observability handles (nil-safe; set by Aggregate.registerGroupObs).
	st     *obs.SysTracer
	scored *obs.Counter

	// Allocation-decision provenance and watchdog hooks (nil when off;
	// set by Aggregate.registerGroupObs). cpNow points at the aggregate's
	// current CP ordinal so pick records carry it; wdCursor rotates the
	// watchdog's score-sample window across the group's AAs.
	pr       *picks.Ring
	cpNow    *uint64
	wd       *watchdogState
	wdCursor int
}

// buildGroup constructs the runtime for one spec at the given VBN offset.
func buildGroup(index int, spec GroupSpec, startVBN block.VBN, tun Tunables, rng *rand.Rand) *Group {
	geo := raid.Geometry{
		DataDevices:     spec.DataDevices,
		ParityDevices:   spec.ParityDevices,
		BlocksPerDevice: spec.BlocksPerDevice,
		StartVBN:        startVBN,
	}
	if err := geo.Validate(); err != nil {
		panic(err)
	}
	stripes := spec.StripesPerAA
	if stripes == 0 {
		stripes = aa.StripesPerAA(aa.SizingParams{
			Media:            spec.Media,
			EraseBlockBlocks: spec.EraseBlockBlocks,
			ZoneBlocks:       spec.ZoneBlocks,
			AZCS:             spec.AZCS,
		})
	}
	if stripes > geo.Stripes() {
		stripes = geo.Stripes()
	}
	topo := aa.NewStriped(geo, stripes)

	g := &Group{
		Index:        index,
		Spec:         spec,
		geo:          geo,
		topo:         topo,
		cacheEnabled: tun.AggregateCacheEnabled,
		azcs:         spec.AZCS,
		deltas:       make(map[aa.ID]int64),
		as:           newAllocState(tun),
		raidStats:    raid.NewStats(geo),
		rng:          rng,
	}
	g.buildDevices()
	if f := tun.Faults; f != nil && f.DeviceReadErrEvery > 0 {
		// Wrap every device model so each injects a recoverable media error
		// (plus its RAID-reconstruction penalty) on a per-device read
		// schedule — worker-count invariant because the counters are owned
		// by the device, not the caller.
		wrap := func(d Device) Device {
			inner, ok := d.(interface {
				WriteChain(start, n uint64) time.Duration
				Read(n uint64) time.Duration
				Stats() device.DiskStats
			})
			if !ok {
				return d
			}
			return &device.FaultyDisk{Inner: inner, Every: f.DeviceReadErrEvery, Penalty: f.DeviceReadPenalty}
		}
		for d := range g.devices {
			g.devices[d] = wrap(g.devices[d])
		}
		g.parity = wrap(g.parity)
	}

	// A fresh file system builds its cache from the (all-free) bitmap.
	scores := make([]uint64, topo.NumAAs())
	for id := range scores {
		scores[id] = aaBlockCount(topo, aa.ID(id))
	}
	g.cache = heapcache.NewFromScores(scores)
	g.resetShardCache()
	return g
}

// resetShardCache (re)builds the shard queues around the current cache
// object and drops all ledger state. Called wherever the cache is replaced
// wholesale (fresh build, remount, repair) — the Sharded wrapper holds a
// pointer to the shared heap and must never outlive it.
func (g *Group) resetShardCache() {
	g.as.clearLedgers()
	if g.as.sharded() && g.cacheEnabled {
		g.sh = heapcache.NewSharded(g.cache, g.as.shards, g.as.batch)
	} else {
		g.sh = nil
	}
}

// restageShards rebuilds the shard queues from the current shared heap
// WITHOUT touching ledger state — for passes that flushed the queues to
// operate on the complete heap (segment cleaning) while frees noted since
// the last CP are still pending in the ledgers.
func (g *Group) restageShards() {
	if g.as.sharded() && g.cacheEnabled {
		if g.sh != nil {
			// Relocation writes mid-pass may have re-staged entries into the
			// old wrapper; return them so the rebuild tracks every AA.
			g.sh.FlushAll()
		}
		g.sh = heapcache.NewSharded(g.cache, g.as.shards, g.as.batch)
	}
}

// pendingDelta is the total pending score delta for id: the shared map
// plus every shard ledger plus the sealed flush bank (the quantity the
// scrub invariant subtracts). Including the sealed bank keeps the scrub
// and watchdog invariants valid mid-pipeline.
func (g *Group) pendingDelta(id aa.ID) int64 {
	return g.as.pending(id, g.deltas) + g.flushDeltas[id]
}

func (g *Group) buildDevices() {
	spec := g.Spec
	devBlocks := spec.BlocksPerDevice
	if g.azcs {
		// With AZCS the drive stores interleaved checksum blocks; round the
		// on-disk span up to whole AZCS regions so the final region's
		// checksum block is addressable.
		lastDisk := device.DataToDiskDBN(devBlocks - 1)
		devBlocks = (lastDisk/block.AZCSRegionBlocks + 1) * block.AZCSRegionBlocks
	}
	mk := func() Device {
		switch spec.Media {
		case aa.MediaSSD:
			cfg := device.DefaultSSDConfig(devBlocks)
			if spec.EraseBlockBlocks > 0 {
				cfg.FTL.PagesPerEraseBlock = spec.EraseBlockBlocks
			}
			if spec.Overprovision > 0 {
				cfg.FTL.Overprovision = spec.Overprovision
			}
			ssd := device.NewSSD(cfg)
			g.ssds = append(g.ssds, ssd)
			return ssd
		case aa.MediaSMR:
			zone := spec.ZoneBlocks
			if zone == 0 {
				zone = 16384
			}
			return device.NewSMR(devBlocks, zone)
		default:
			return device.DefaultHDD()
		}
	}
	g.devices = make([]Device, spec.DataDevices)
	for d := range g.devices {
		g.devices[d] = mk()
	}
	g.parity = mk()
	if spec.Media == aa.MediaSSD {
		// The parity model was appended to ssds by mk; parity WA is not a
		// data-path metric, so drop it from the WA census.
		g.ssds = g.ssds[:len(g.ssds)-1]
	}
}

// Geometry returns the group's RAID geometry.
func (g *Group) Geometry() raid.Geometry { return g.geo }

// Topology returns the group's AA topology.
func (g *Group) Topology() *aa.Striped { return g.topo }

// Cache returns the RAID-aware AA cache.
func (g *Group) Cache() *heapcache.Cache { return g.cache }

// RAIDStats returns the cumulative tetris accounting.
func (g *Group) RAIDStats() *raid.Stats { return g.raidStats }

// Devices returns the data-device models (for demand measurement).
func (g *Group) Devices() []Device { return g.devices }

// WriteAmplification averages the FTL write amplification across the
// group's data SSDs; it returns 0 for non-SSD groups.
func (g *Group) WriteAmplification() float64 {
	if len(g.ssds) == 0 {
		return 0
	}
	var s float64
	for _, d := range g.ssds {
		s += d.WriteAmplification()
	}
	return s / float64(len(g.ssds))
}

// bestScore returns the best available AA score for eligibility decisions:
// the held AA's last known score, or the cache top. With the striped path
// active the best entry may sit in a shard queue rather than the shared
// heap, so the scan spans both.
func (g *Group) bestScore() (uint64, bool) {
	if g.sh != nil {
		if e, ok := g.sh.Best(); ok {
			return e.Score, true
		}
		return 0, false
	}
	if e, ok := g.cache.Best(); ok {
		return e.Score, true
	}
	return 0, false
}

// eligible reports whether the allocator should write to this group given
// the fragmentation-bias threshold (§3.3.1).
func (g *Group) eligible(minFraction float64) bool {
	if !g.cacheEnabled || minFraction <= 0 {
		return true
	}
	if g.curValid {
		return true // keep filling the AA we already committed to
	}
	s, ok := g.bestScore()
	if !ok {
		return false
	}
	return float64(s) >= minFraction*float64(g.topo.BlocksPerAA())
}

// pickAA selects the next AA to fill: the cache's best when enabled,
// uniformly random otherwise (the paper's baseline).
func (g *Group) pickAA(bm *bitmap.Bitmap) bool {
	if g.sh != nil {
		return g.pickAASharded(bm)
	}
	var id aa.ID
	var score uint64
	if g.cacheEnabled {
		e, ok := g.cache.PopBest()
		if !ok {
			g.st.Emit("alloc.phys", g.Index, "cache_empty", 0, 0)
			return false
		}
		g.cacheOps++
		g.as.picks++
		g.as.pickBusy[0] += g.as.opCost // shared critical section: one vector
		if e.Score == 0 {
			// Even the best AA has no free blocks: the group is full.
			g.cache.Insert(e.ID, 0)
			g.cacheOps++
			g.st.Emit("alloc.phys", g.Index, "cache_exhausted", 0, 0)
			return false
		}
		id, score = e.ID, e.Score
		g.st.Emit("alloc.phys", g.Index, "cache_hit", 0, int64(score))
		if g.wd != nil && g.wd.enabled {
			g.wd.pickCheckGroup(g, bm, id, score)
		}
		if g.pr != nil {
			runner := int64(-1)
			if e2, ok := g.cache.Best(); ok { // best remaining after the pop
				runner = int64(e2.Score)
			}
			g.pr.Record(*g.cpNow, uint32(id), int64(score), runner, g.cache.Len(), picks.HeapTop, 0)
		}
	} else {
		// Random selection; retry a bounded number of times to find an AA
		// with any free space, then fall back to a linear sweep.
		n := g.topo.NumAAs()
		found := false
		for try := 0; try < 16 && !found; try++ {
			id = aa.ID(g.rng.Intn(n))
			score = aa.Score(g.topo, bm, id)
			g.scored.Inc()
			found = score > 0
		}
		if !found {
			start := g.rng.Intn(n)
			for off := 0; off < n; off++ {
				id = aa.ID((start + off) % n)
				score = aa.Score(g.topo, bm, id)
				g.scored.Inc()
				if score > 0 {
					found = true
					break
				}
			}
		}
		if !found {
			return false
		}
		g.st.Emit("alloc.phys", g.Index, "random_pick", 0, int64(score))
		if g.pr != nil {
			g.pr.Record(*g.cpNow, uint32(id), int64(score), -1, 0, picks.BitmapFallback, 0)
		}
	}
	g.curAA = id
	g.curValid = true
	g.curWrote = false
	g.curStripe, g.curEnd = g.topo.StripeRange(id)
	g.pickedScoreSum += float64(score) / float64(aaBlockCount(g.topo, id))
	g.pickedCount++
	return true
}

// pickAASharded is the striped pick path: pop the fixed shard's queue
// front, staging the next batch ahead of exhaustion so refills hide behind
// ongoing picks. The shard assignment is seq%shards — worker-independent —
// and every queue/stage mutation happens in pick order, so the pick stream
// is bit-identical at any worker width.
func (g *Group) pickAASharded(bm *bitmap.Bitmap) bool {
	as := g.as
	shard := as.nextShard()
	reason := picks.ShardLocal
	e, ok := g.sh.Pop(shard)
	if !ok {
		// Stall: queue and standby batch are both dry. Refill synchronously
		// from the shared heap; this cost serializes (every worker would
		// contend on the shared structure), unlike pipelined staging.
		reason = picks.Refill
		as.stalls++
		n := g.sh.Stage(shard)
		g.cacheOps += uint64(n)
		as.stallBusy += time.Duration(n+1) * as.opCost
		if e, ok = g.sh.Pop(shard); !ok {
			// The shared heap is dry, but other shards may still hoard
			// free AAs (shards × batch can exceed the group's AA count).
			// Rebalance: return every shard's stock and restage this one.
			if g.sh.HeldCount() > 0 {
				n = g.sh.FlushAll() + g.sh.Stage(shard)
				g.cacheOps += uint64(n)
				as.stallBusy += time.Duration(n) * as.opCost
				e, ok = g.sh.Pop(shard)
			}
			if !ok {
				g.st.Emit("alloc.phys", g.Index, "cache_empty", 0, 0)
				return false
			}
		}
	}
	if e.Score == 0 {
		// The shard's front is empty — but that is only the shard-local
		// view. Return every shard's stock to the shared heap and restage,
		// so an AA whose score rose since staging — or a free AA hoarded by
		// another shard — is found before the group is declared full (the
		// classic path's cache_exhausted).
		g.cache.Insert(e.ID, 0)
		n := g.sh.FlushAll() + 1
		n += g.sh.Stage(shard)
		g.cacheOps += uint64(n)
		as.stallBusy += time.Duration(n) * as.opCost
		as.stalls++
		reason = picks.Refill
		if e, ok = g.sh.Pop(shard); !ok || e.Score == 0 {
			if ok {
				g.cache.Insert(e.ID, 0)
				g.cacheOps++
			}
			g.st.Emit("alloc.phys", g.Index, "cache_exhausted", 0, 0)
			return false
		}
	}
	id, score := e.ID, e.Score
	g.cacheOps++
	as.picks++
	if reason == picks.ShardLocal {
		as.localPicks++
	}
	as.pickBusy[shard] += as.opCost
	g.st.Emit("alloc.phys", g.Index, "shard_hit", 0, int64(score))
	if g.wd != nil && g.wd.enabled {
		g.wd.pickCheckGroup(g, bm, id, score)
	}
	if g.pr != nil {
		runner := int64(-1)
		if e2, ok := g.sh.Peek(shard); ok {
			runner = int64(e2.Score)
		} else if e2, ok := g.cache.Best(); ok {
			runner = int64(e2.Score)
		}
		g.pr.Record(*g.cpNow, uint32(id), int64(score), runner, g.sh.Len(shard)+g.cache.Len(), reason, 0)
	}
	// Pipelined refill: the shard is running low, so stage the next batch
	// now — the eventual drain swaps a ready batch in instead of stalling.
	if g.sh.Low(shard) {
		n := g.sh.Stage(shard)
		g.cacheOps += uint64(n)
		as.staged += uint64(n)
		as.refillBusy += time.Duration(n) * as.opCost
	}
	as.curShard = shard
	g.curAA = id
	g.curValid = true
	g.curWrote = false
	g.curStripe, g.curEnd = g.topo.StripeRange(id)
	g.pickedScoreSum += float64(score) / float64(aaBlockCount(g.topo, id))
	g.pickedCount++
	return true
}

// aaBlockCount returns the capacity of AA id, accounting for a truncated
// final AA.
func aaBlockCount(t *aa.Striped, id aa.ID) uint64 { return aa.Capacity(t, id) }

// finishAA returns the drained AA to the cache with its current score.
func (g *Group) finishAA(bm *bitmap.Bitmap) {
	if !g.curValid {
		return
	}
	if g.azcs && g.curWrote {
		g.queueAZCSBoundaries(g.curAA)
	}
	if g.cacheEnabled {
		g.cache.Insert(g.curAA, aa.Score(g.topo, bm, g.curAA))
		g.scored.Inc()
		g.cacheOps++
		g.as.clearPending(g.curAA, g.deltas) // the fresh score already reflects them
		delete(g.flushDeltas, g.curAA)       // ditto for a sealed delta mid-pipeline
	}
	g.curValid = false
}

// allocateTetris assigns up to max free physical VBNs from the next tetris
// of the current AA, stripe-major (stripe by stripe across devices, which
// yields full stripes and per-device chains). It returns the VBNs assigned;
// an empty result with more==false means the group is exhausted for now.
func (g *Group) allocateTetris(bm *bitmap.Bitmap, max int) (vbns []block.VBN, more bool) {
	if max <= 0 {
		return nil, true
	}
	for !g.curValid {
		if !g.pickAA(bm) {
			return nil, false
		}
	}
	// One tetris: up to StripesPerTetris stripes from the cursor.
	end := g.curStripe + block.StripesPerTetris
	if end > g.curEnd {
		end = g.curEnd
	}
	for s := g.curStripe; s < end && len(vbns) < max; s++ {
		for d := 0; d < g.geo.DataDevices; d++ {
			if len(vbns) >= max {
				// Mid-stripe stop: resume at this stripe next call.
				end = s
				break
			}
			v := g.geo.VBNOf(d, s)
			if bm.Set(v) {
				vbns = append(vbns, v)
				g.as.noteAlloc(g.curAA, g.deltas)
			}
		}
	}
	g.curStripe = end
	if len(vbns) > 0 {
		g.curWrote = true
	}
	if g.curStripe >= g.curEnd {
		g.finishAA(bm)
	}
	g.cpWrites = append(g.cpWrites, vbns...)
	return vbns, true
}

// free returns a physical VBN in this group to the free pool.
func (g *Group) free(bm *bitmap.Bitmap, v block.VBN, trim bool) {
	if !bm.Clear(v) {
		panic(fmt.Sprintf("wafl: double free of physical %v", v))
	}
	g.as.noteFree(g.topo.AAOf(v), g.deltas)
	if trim {
		d, dbn := g.geo.Locate(v)
		if g.azcs {
			dbn = device.DataToDiskDBN(dbn)
		}
		if tr, ok := g.devices[d].(trimmer); ok {
			tr.Trim(dbn, 1)
		}
	}
}

// flushCP classifies this CP's writes into tetrises, charges the device
// models (data chains first, then any queued out-of-band AZCS checksum
// writes), and returns the time the flush kept the group's devices busy.
func (g *Group) flushCP() time.Duration {
	if len(g.cpWrites) == 0 && len(g.pendingCS) == 0 {
		return 0
	}
	var busy time.Duration
	tetrises := raid.BuildTetrises(g.geo, g.cpWrites)
	g.cpWrites = g.cpWrites[:0]
	for i := range tetrises {
		t := &tetrises[i]
		g.raidStats.Add(t)
		for _, c := range t.Chains {
			busy += g.chargeChain(c)
		}
		// Parity devices rewrite one block per touched stripe; for
		// AA-directed writes these are contiguous runs.
		if g.geo.ParityDevices > 0 && t.StripesTouched > 0 {
			busy += g.parity.WriteChain(t.Tetris*block.StripesPerTetris, uint64(t.ParityWriteBlocks))
			if t.ParityReadBlocks > 0 {
				busy += g.parity.Read(uint64(t.ParityReadBlocks))
			}
		}
	}
	for _, cs := range g.pendingCS {
		for d := range g.devices {
			g.azcsRandomWrites++
			busy += g.devices[d].WriteChain(cs, 1)
		}
	}
	g.pendingCS = g.pendingCS[:0]
	g.deviceBusy += busy
	return busy
}

// sealCP closes the open generation for a pipelined CP: shard ledgers fold
// into the shared delta map (the classic deterministic order), then the
// delta map, the CP's write set, and the queued AZCS checksum positions all
// swap into the flush banks while fresh open structures take their place.
func (g *Group) sealCP() {
	g.as.fold(g.deltas)
	g.flushDeltas = g.deltas
	g.deltas = make(map[aa.ID]int64)
	g.flushWrites = g.cpWrites
	g.cpWrites = nil
	g.flushCS = g.pendingCS
	g.pendingCS = nil
}

// flushSealedCP is flushCP over the sealed generation's banks: it charges
// the device models for the writes sealed one generation ago while the open
// generation keeps allocating.
func (g *Group) flushSealedCP() time.Duration {
	if len(g.flushWrites) == 0 && len(g.flushCS) == 0 {
		return 0
	}
	var busy time.Duration
	tetrises := raid.BuildTetrises(g.geo, g.flushWrites)
	g.flushWrites = g.flushWrites[:0]
	for i := range tetrises {
		t := &tetrises[i]
		g.raidStats.Add(t)
		for _, c := range t.Chains {
			busy += g.chargeChain(c)
		}
		if g.geo.ParityDevices > 0 && t.StripesTouched > 0 {
			busy += g.parity.WriteChain(t.Tetris*block.StripesPerTetris, uint64(t.ParityWriteBlocks))
			if t.ParityReadBlocks > 0 {
				busy += g.parity.Read(uint64(t.ParityReadBlocks))
			}
		}
	}
	for _, cs := range g.flushCS {
		for d := range g.devices {
			g.azcsRandomWrites++
			busy += g.devices[d].WriteChain(cs, 1)
		}
	}
	g.flushCS = g.flushCS[:0]
	g.deviceBusy += busy
	return busy
}

// chargeChain costs one data-device write chain. Under AZCS the chain is
// mapped to its on-disk span, which naturally includes the interior
// checksum blocks: they are written as part of the sequential sweep
// (§3.2.4). Partial regions at the *ends* of the chain are not charged
// here — within an AA the next chain continues where this one stopped, so
// the straddled region's checksum block still goes out sequentially once
// the region completes. The nonsequential checksum writes the paper warns
// about arise at AA boundaries and are charged by chargeAZCSBoundaries.
func (g *Group) chargeChain(c raid.Chain) time.Duration {
	dev := g.devices[c.Device]
	if !g.azcs {
		return dev.WriteChain(c.Start, c.Len)
	}
	diskStart := device.DataToDiskDBN(c.Start)
	diskEnd := device.DataToDiskDBN(c.Start + c.Len - 1)
	diskLen := diskEnd - diskStart + 1
	g.azcsSeqWrites += diskLen - c.Len // interior checksum blocks swept
	return dev.WriteChain(diskStart, diskLen)
}

// queueAZCSBoundaries records the out-of-band checksum-block updates an AA
// switch causes when the AA's on-disk span does not start and end on AZCS
// region boundaries (§3.2.4, Fig. 4 B vs C): the straddled regions' data is
// split across AAs written at different times, so their shared checksum
// block must be updated with a separate random write. The writes are issued
// by flushCP after the CP's data chains.
func (g *Group) queueAZCSBoundaries(id aa.ID) {
	from, to := g.topo.StripeRange(id)
	if to == from {
		return
	}
	diskStart := device.DataToDiskDBN(from)
	diskEnd := device.DataToDiskDBN(to-1) + 1
	if diskStart%block.AZCSRegionBlocks != 0 {
		g.pendingCS = append(g.pendingCS,
			diskStart/block.AZCSRegionBlocks*block.AZCSRegionBlocks+block.AZCSRegionDataBlocks)
	}
	if diskEnd%block.AZCSRegionBlocks != 0 {
		g.pendingCS = append(g.pendingCS,
			diskEnd/block.AZCSRegionBlocks*block.AZCSRegionBlocks+block.AZCSRegionDataBlocks)
	}
}

// applyCPDeltas folds the batched score changes into the AA cache at the CP
// boundary (§3.3).
func (g *Group) applyCPDeltas() {
	// Fold the shard ledgers into the shared delta map first: shard-index
	// order, IDs sorted within each shard, so the merged totals — and the
	// heap updates below — are identical at any worker width.
	g.as.fold(g.deltas)
	if !g.cacheEnabled {
		for id := range g.deltas {
			delete(g.deltas, id)
		}
		return
	}
	// Sorted order keeps the heap's tie-break (insertion sequence) — and
	// hence pick order — identical run to run.
	var folds int64
	for _, id := range sortedIDs(g.deltas) {
		d := g.deltas[id]
		if g.curValid && id == g.curAA {
			continue // still held by the allocator; folded in at finishAA
		}
		if !g.cache.Tracked(id) {
			continue // seed-only cache: background fill will insert it
		}
		s := int64(g.cache.Score(id)) + d
		if s < 0 {
			s = 0
		}
		g.cache.Update(id, uint64(s))
		g.cacheOps++
		folds++
		delete(g.deltas, id)
	}
	g.st.Emit("cp.fold.phys", g.Index, "heap_updates", 0, folds)
}

// applyFlushDeltas folds the sealed generation's delta bank into the AA
// cache when its flush commits. Deltas the fold cannot apply yet — the
// allocator's in-flight AA, or an AA a seed-only cache does not track —
// merge back into the open map, so finishAA / the background fill settle
// them exactly as they settle classic deltas.
func (g *Group) applyFlushDeltas() {
	if len(g.flushDeltas) == 0 {
		return
	}
	if !g.cacheEnabled {
		for id := range g.flushDeltas {
			delete(g.flushDeltas, id)
		}
		return
	}
	var folds int64
	for _, id := range sortedIDs(g.flushDeltas) {
		d := g.flushDeltas[id]
		delete(g.flushDeltas, id)
		if (g.curValid && id == g.curAA) || !g.cache.Tracked(id) {
			g.deltas[id] += d
			continue
		}
		s := int64(g.cache.Score(id)) + d
		if s < 0 {
			s = 0
		}
		g.cache.Update(id, uint64(s))
		g.cacheOps++
		folds++
	}
	g.st.Emit("cp.fold.phys", g.Index, "heap_updates", 0, folds)
}

// GroupMetrics is a snapshot of the measurement counters.
type GroupMetrics struct {
	PickedScoreFraction float64 // mean free fraction of AAs at pick time
	CacheOps            uint64
	AZCSSequential      uint64
	AZCSRandom          uint64
	DeviceBusy          time.Duration
	WriteAmplification  float64
}

// Metrics returns the group's measurement counters.
func (g *Group) Metrics() GroupMetrics {
	m := GroupMetrics{
		CacheOps:           g.cacheOps,
		AZCSSequential:     g.azcsSeqWrites,
		AZCSRandom:         g.azcsRandomWrites,
		DeviceBusy:         g.deviceBusy,
		WriteAmplification: g.WriteAmplification(),
	}
	if g.pickedCount > 0 {
		m.PickedScoreFraction = g.pickedScoreSum / float64(g.pickedCount)
	}
	return m
}

// ResetMetrics zeroes the measurement counters (used between the aging and
// measurement phases of an experiment).
func (g *Group) ResetMetrics() {
	g.pickedScoreSum, g.pickedCount = 0, 0
	g.cacheOps = 0
	g.azcsSeqWrites, g.azcsRandomWrites = 0, 0
	g.deviceBusy = 0
	g.as.resetCounters()
}

// FTLTotals sums FTL accounting across the group's SSD data devices.
func (g *Group) FTLTotals() device.FTLStats {
	var t device.FTLStats
	for _, d := range g.ssds {
		st := d.FTL.Stats()
		t.HostWrites += st.HostWrites
		t.NANDWrites += st.NANDWrites
		t.Relocated += st.Relocated
		t.Erases += st.Erases
		t.Trims += st.Trims
	}
	return t
}
