package wafl

import (
	"fmt"

	"waflfs/internal/aa"
	"waflfs/internal/block"
	"waflfs/internal/obs/fragscan"
)

// Allocation-quality scanning. With ObsOptions.Frag set, every CP boundary
// (and any on-demand System.FragScan call) runs the fragscan analyzer over
// each space the aggregate owns: one RAID-aware target per group, one HBPS
// target per volume, and one for the object pool. The scans read bitmaps
// through the cheap hooks only — no ChargeScan, no counter increments — so
// enabling them changes no modeled clock and no allocator decision, and the
// recorded streams stay byte-identical at any worker count.

// fragMark remembers a space's picked-quality counters as of its previous
// scan so each report carries the picks of its own CP window.
type fragMark struct {
	sum   float64
	count uint64
}

// pickedDelta converts absolute picked counters into a since-last-scan
// window, tolerating counter resets (ResetMetrics zeroes the sums).
func (ag *Aggregate) pickedDelta(space string, sum float64, count uint64) (uint64, float64) {
	if ag.fragMarks == nil {
		ag.fragMarks = make(map[string]fragMark)
	}
	last := ag.fragMarks[space]
	if count < last.count {
		last = fragMark{}
	}
	ag.fragMarks[space] = fragMark{sum: sum, count: count}
	picks := count - last.count
	if picks == 0 {
		return 0, 0
	}
	return picks, (sum - last.sum) / float64(picks)
}

// fragTargets builds one scan target per space, in a fixed order (groups by
// index, volumes in creation order, then the pool) so recorded sequence
// numbers are deterministic.
func (ag *Aggregate) fragTargets() []fragscan.Target {
	name := ag.obsOpts.Name
	workers := ag.workers()
	var out []fragscan.Target
	for _, g := range ag.groups {
		spans := make([]block.Range, g.geo.DataDevices)
		for d := range spans {
			spans[d] = g.geo.DeviceRange(d)
		}
		t := fragscan.Target{
			Space:       fmt.Sprintf("%s.rg%d", name, g.Index),
			Kind:        fragscan.KindRAID,
			Topo:        g.topo,
			Bits:        ag.bm,
			DeviceSpans: spans,
			CacheBins:   heapBins(g, fragscan.DefaultAABuckets),
			Workers:     workers,
		}
		t.Picks, t.PickedFreeFrac = ag.pickedDelta(t.Space, g.pickedScoreSum, g.pickedCount)
		out = append(out, t)
	}
	for _, v := range ag.vols {
		out = append(out, ag.agnosticTarget(name+".vol."+v.Name, v.space))
	}
	if ag.pool != nil {
		out = append(out, ag.agnosticTarget(name+".pool", ag.pool.space))
	}
	return out
}

func (ag *Aggregate) agnosticTarget(space string, s *agnosticSpace) fragscan.Target {
	bins := s.cache.BinSnapshot()
	cacheBins := make([]uint64, len(bins))
	for i, c := range bins {
		cacheBins[i] = uint64(c)
	}
	t := fragscan.Target{
		Space:     space,
		Kind:      fragscan.KindHBPS,
		Topo:      s.topo,
		Bits:      s.bm,
		CacheBins: cacheBins,
		Workers:   ag.workers(),
	}
	t.Picks, t.PickedFreeFrac = ag.pickedDelta(space, s.pickedScoreSum, s.pickedCount)
	return t
}

// heapBins buckets the heapcache's cached scores by free fraction — the
// cache's coarse view of the same distribution fragscan derives from the
// bitmap. Bucketing makes the result independent of internal heap order.
func heapBins(g *Group, buckets int) []uint64 {
	bins := make([]uint64, buckets)
	for _, e := range g.cache.Entries() {
		cap := aa.Capacity(g.topo, e.ID)
		if cap == 0 {
			continue
		}
		b := int(float64(e.Score) / float64(cap) * float64(buckets))
		if b >= buckets {
			b = buckets - 1
		}
		bins[b]++
	}
	return bins
}

// FragScan scans every space at the given CP ordinal, records the reports
// into ObsOptions.Frag (when set), and returns them in target order.
func (ag *Aggregate) FragScan(cp uint64) []fragscan.Report {
	targets := ag.fragTargets()
	reports := make([]fragscan.Report, len(targets))
	for i, t := range targets {
		reports[i] = fragscan.Scan(t, cp)
	}
	if rec := ag.obsOpts.Frag; rec != nil {
		for _, rep := range reports {
			rec.Record(rep)
		}
	}
	return reports
}

// FragScan runs an on-demand allocation-quality scan of every space,
// stamped with the current CP count. CP-boundary scans use the same path.
func (s *System) FragScan() []fragscan.Report {
	return s.Agg.FragScan(s.c.CPs)
}

// maybeFragScan is the CP-boundary hook: scan when a frag recorder or a
// time-series store is attached and this CP ordinal matches the FragEvery
// cadence. With a store attached, each report's headline numbers — the
// per-AA free-fraction deciles, overall free fraction, and pick-weighted
// free fraction — feed per-space series the live viewer renders.
func (s *System) maybeFragScan() {
	o := &s.Agg.obsOpts
	if o.Frag == nil && o.TSDB == nil {
		return
	}
	if o.FragEvery > 1 && s.c.CPs%uint64(o.FragEvery) != 0 {
		return
	}
	reports := s.Agg.FragScan(s.c.CPs)
	if ts := o.TSDB; ts != nil {
		at := s.obsMark
		for _, rep := range reports {
			ts.Observe(rep.Space+".frag.p10", s.c.CPs, at, rep.Deciles[1])
			ts.Observe(rep.Space+".frag.p50", s.c.CPs, at, rep.Deciles[5])
			ts.Observe(rep.Space+".frag.p90", s.c.CPs, at, rep.Deciles[9])
			ts.Observe(rep.Space+".frag.free_frac", s.c.CPs, at, rep.FreeFrac())
			ts.Observe(rep.Space+".frag.picked_free_frac", s.c.CPs, at, rep.PickedFreeFrac)
		}
	}
}
