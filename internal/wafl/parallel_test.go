package wafl

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"waflfs/internal/aa"
)

// lifecycleResult captures every observable of one full system lifecycle
// that must be bit-identical at any worker count. FlushWall is excluded on
// purpose: it is the one quantity the Workers knob is supposed to change.
type lifecycleResult struct {
	Counters     Counters
	GroupMetrics []GroupMetrics
	VolMetrics   SpaceMetrics
	MountTop     MountStats
	MountWalk    MountStats
	BitmapUsed   uint64
}

// runLifecycle drives fill + churn + CPs + seeded remount + background fill
// + fallback remount under the given worker count and returns the
// observables plus the modeled CP flush wall-clock.
func runLifecycle(workers int, seed int64) (lifecycleResult, time.Duration) {
	tun := DefaultTunables()
	tun.Workers = workers
	tun.CPEveryOps = 512
	s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 16 * aa.RAIDAgnosticBlocks}}, tun, seed)
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 120000)
	for lba := uint64(0); lba < 120000; lba++ {
		s.Write(lun, lba, 1)
	}
	rng := rand.New(rand.NewSource(seed + 100))
	for i := 0; i < 40000; i++ {
		s.Write(lun, uint64(rng.Intn(120000)), 1)
	}
	s.CP()

	res := lifecycleResult{}
	res.MountTop = s.Agg.Remount(true)
	for i := 0; i < 5000; i++ {
		s.Write(lun, uint64(rng.Intn(120000)), 1)
	}
	s.CP()
	s.Agg.CompleteBackgroundFill()
	s.CP()
	res.MountWalk = s.Agg.Remount(false)

	res.Counters = s.Counters()
	for _, g := range s.Agg.Groups() {
		res.GroupMetrics = append(res.GroupMetrics, g.Metrics())
	}
	res.VolMetrics = s.Agg.Vols()[0].Metrics()
	res.BitmapUsed = s.Agg.Bitmap().Used()
	return res, s.CPFlushWall()
}

// The determinism contract of the tentpole: every measured counter — CPU,
// device busy, metafile pages, mount I/O, cache ops — is bit-identical
// whether the CP flushes, cache rebuilds, and mount walks run serially or
// across 8 workers.
func TestCPAndMountSerialEquivalence(t *testing.T) {
	serial, wall1 := runLifecycle(1, 42)
	for _, workers := range []int{2, 8} {
		got, _ := runLifecycle(workers, 42)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d: observables differ from serial run:\nserial: %+v\ngot:    %+v",
				workers, serial, got)
		}
	}
	if wall1 == 0 {
		t.Fatal("serial lifecycle accumulated no CP flush wall-clock")
	}
}

// The modeled payoff: with groups flushing concurrently, the CP flush
// wall-clock (makespan over groups) must shrink versus the serial sum.
// testSpecs has two equal groups, so 8 workers should approach 2x.
func TestCPFlushWallShrinksWithWorkers(t *testing.T) {
	serial, wall1 := runLifecycle(1, 7)
	par, wall8 := runLifecycle(8, 7)
	if serial.Counters != par.Counters {
		t.Fatalf("counters diverged: %+v vs %+v", serial.Counters, par.Counters)
	}
	if wall8 >= wall1 {
		t.Fatalf("flush wall did not shrink: workers=1 %v, workers=8 %v", wall1, wall8)
	}
	speedup := float64(wall1) / float64(wall8)
	if speedup < 1.5 {
		t.Fatalf("modeled CP speedup %.2fx with 2 equal groups, want >= 1.5x", speedup)
	}
}

// benchmarkParallelCP drives repeated write-batch + CP cycles over an
// 8-group aggregate and reports the modeled CP flush wall-clock and the
// modeled speedup (serial device-busy sum over makespan). The host wall
// times are dominated by write allocation, which is serial either way; the
// modeled metrics isolate the flush fan-out the worker knob controls.
func benchmarkParallelCP(b *testing.B, workers int) {
	tun := DefaultTunables()
	tun.Workers = workers
	tun.CPEveryOps = 1 << 30 // CP only when the benchmark says so
	specs := make([]GroupSpec, 8)
	for i := range specs {
		specs[i] = GroupSpec{DataDevices: 6, ParityDevices: 1, BlocksPerDevice: 1 << 15,
			Media: aa.MediaHDD, StripesPerAA: 256}
	}
	s := NewSystem(specs, []VolSpec{{Name: "v", Blocks: 1 << 21}}, tun, 7)
	lun := s.Agg.Vols()[0].CreateLUN("l", 1<<19)
	rng := rand.New(rand.NewSource(8))
	for lba := uint64(0); lba < 1<<17; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()

	var busy, wall time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8192; j++ {
			s.Write(lun, uint64(rng.Intn(1<<19)), 1)
		}
		st := s.CP()
		busy += st.DeviceBusy
		wall += st.FlushWall
	}
	b.StopTimer()
	if wall > 0 {
		b.ReportMetric(float64(busy)/float64(wall), "modeled-speedup")
		b.ReportMetric(float64(wall)/float64(b.N)/float64(time.Millisecond), "modeled-cp-wall-ms/op")
	}
}

func BenchmarkParallelCP1(b *testing.B) { benchmarkParallelCP(b, 1) }
func BenchmarkParallelCP8(b *testing.B) { benchmarkParallelCP(b, 8) }
