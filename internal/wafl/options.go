// Package wafl is the core of the reproduction: the write allocator and the
// file-system layering it serves. It ties together the substrates — bitmap
// metafiles, RAID geometry, device models, allocation-area topologies, the
// two AA cache types, and the TopAA metafile — into an Aggregate hosting
// FlexVol volumes, exactly as §2 and §3 of the paper describe.
//
// The package is a simulation of the allocation paths, not a data path: no
// user data is stored, but every allocation, free, consistency point,
// tetris, metafile update, and device cost is modeled and accounted, which
// is what the paper's evaluation measures.
package wafl

import (
	"time"

	"waflfs/internal/aa"
	"waflfs/internal/faultinject"
)

// GroupSpec describes one RAID group of an aggregate.
type GroupSpec struct {
	// DataDevices and ParityDevices define the RAID geometry.
	DataDevices   int
	ParityDevices int
	// BlocksPerDevice is the per-device capacity in 4KiB blocks.
	BlocksPerDevice uint64
	// Media selects the device model and default AA sizing.
	Media aa.Media
	// StripesPerAA overrides the media-derived AA size when non-zero.
	StripesPerAA uint64
	// EraseBlockBlocks is the SSD erase-unit size (MediaSSD only); 0 means
	// the device-model default.
	EraseBlockBlocks uint64
	// ZoneBlocks is the shingle-zone size (MediaSMR only); 0 means the
	// default of 16384 blocks (64MiB).
	ZoneBlocks uint64
	// AZCS enables advanced zone checksums on this group's devices.
	AZCS bool
	// Overprovision overrides the SSD overprovisioning fraction when > 0.
	Overprovision float64
}

// VolSpec describes one FlexVol volume.
type VolSpec struct {
	// Name identifies the volume (used as its TopAA metafile key).
	Name string
	// Blocks is the virtual VBN space size.
	Blocks uint64
}

// Tunables collects the allocator policy switches and the cost constants
// the CPU model uses. Zero values select the defaults.
type Tunables struct {
	// AggregateCacheEnabled enables AA caches for physical VBN selection.
	// When false the allocator picks uniformly random AAs with free space,
	// the paper's baseline ("randomly selected AAs", §4.1.1).
	AggregateCacheEnabled bool
	// VolCacheEnabled likewise for FlexVol virtual VBN selection (§4.1.2).
	VolCacheEnabled bool
	// MinAAScoreFraction: a RAID group whose best AA scores below this
	// fraction of a full AA is skipped by the allocator while other groups
	// remain eligible ("when to stop ... writing to that RAID group",
	// §3.3.1). Zero disables the bias.
	MinAAScoreFraction float64
	// DelayedVirtFrees queues virtual-VBN frees per AA, scored by an HBPS
	// (the "delayed-free scores" use of §3.3.2), and applies them at CP in
	// most-pending-first order under DelayedFreeBudgetPerCP.
	DelayedVirtFrees bool
	// DelayedFreeBudgetPerCP caps blocks reclaimed per CP (0 = unlimited).
	DelayedFreeBudgetPerCP int

	// FlashPool directs new writes to SSD RAID groups first (the hot
	// tier of a mixed SSD+HDD aggregate, §2.1), spilling to other media
	// only when flash is short on space. Use System.Demote to move cold
	// data to the HDD groups.
	FlashPool bool

	// TrimOnFree forwards block frees to SSD FTLs as deallocations.
	// Disabled by default: the paper's write-amplification argument
	// depends on freed-but-not-trimmed blocks looking live to the FTL.
	TrimOnFree bool

	// CPUBasePerOp is the fixed WAFL code-path cost per client operation.
	CPUBasePerOp time.Duration
	// CPUPerMetafilePage is the processing cost of updating and writing
	// back one dirty bitmap-metafile page at a CP; fewer dirtied pages per
	// operation is the benefit of colocated virtual VBNs (§2.5).
	CPUPerMetafilePage time.Duration
	// CPUPerCacheOp is the cost of one AA-cache maintenance operation
	// (heap update, HBPS update/pop); the paper measures cache maintenance
	// at ~0.002% of cycles (§4.1.2).
	CPUPerCacheOp time.Duration
	// CPUPerVirtAllocScan is the per-position cost of the virtual
	// allocation cursor's bitmap sweep. Allocating from an AA with free
	// fraction f sweeps 1/f positions per block, so picking emptier
	// virtual AAs directly reduces this term — the computational
	// amortization §4.1.2 measures as 309µs/op vs 293µs/op.
	CPUPerVirtAllocScan time.Duration

	// CPEveryOps triggers a consistency point after this many modifying
	// operations. CPs in WAFL are triggered by timers and dirty-buffer
	// thresholds; an op-count trigger is equivalent for steady workloads.
	CPEveryOps int

	// Workers bounds the fan-out of the deterministic work pool used for CP
	// flushes, cache rebuilds, and mount-time bitmap walks: 0 selects
	// min(GOMAXPROCS, 8), 1 forces serial execution. Every measured counter
	// is identical for every value (see internal/parallel); only the modeled
	// CPStats.FlushWall shrinks as workers increase.
	Workers int

	// AllocShards stripes the allocation hot path into per-worker shard
	// queues fed from the shared heap/HBPS in bounded batches, with
	// per-shard delta ledgers folded deterministically at CP boundaries
	// (see allocctx.go). 0 or 1 keeps the classic shared pick path —
	// including every modeled cost and metric byte-for-byte — so the knob
	// is an opt-in for the striped allocator experiments.
	AllocShards int
	// AllocBatch bounds each shard queue and standby batch; 0 selects 8.
	// Larger batches stage less often but widen the near-best window.
	AllocBatch int

	// Pipeline overlaps consecutive consistency points the way production
	// WAFL does: writes allocate into CP n+1 while CP n flushes, so the
	// modeled sustained-write wall per generation is max(alloc, flush)
	// instead of their sum. Delta ledgers are double-buffered (sealed
	// generation vs open generation) and delayed frees carry a second,
	// sealed queue so frees landing mid-flush credit the correct CP (see
	// system.go cpPipelined and DESIGN.md §12). False keeps the classic
	// stop-the-world CP byte-for-byte.
	Pipeline bool

	// Obs configures the observability layer (metric export, CP-phase
	// tracing, per-CP CSV). Nil keeps every sink off; the hot paths then pay
	// only nil-checks. See obs.go.
	Obs *ObsOptions

	// Faults arms a deterministic fault-injection plan: CP crash-points,
	// torn/stale/damaged TopAA metafiles, and device read errors (see
	// internal/faultinject). Nil disables injection entirely — the CP
	// pipeline then pays only nil-receiver calls.
	Faults *faultinject.Plan
}

// Defaults fills zero fields with production-flavoured values.
func (t Tunables) Defaults() Tunables {
	if t.CPUBasePerOp == 0 {
		t.CPUBasePerOp = 210 * time.Microsecond
	}
	if t.CPUPerVirtAllocScan == 0 {
		t.CPUPerVirtAllocScan = 30 * time.Microsecond
	}
	if t.CPUPerMetafilePage == 0 {
		t.CPUPerMetafilePage = 40 * time.Microsecond
	}
	if t.CPUPerCacheOp == 0 {
		t.CPUPerCacheOp = 120 * time.Nanosecond
	}
	if t.CPEveryOps == 0 {
		t.CPEveryOps = 4096
	}
	if t.MinAAScoreFraction < 0 {
		t.MinAAScoreFraction = 0
	}
	return t
}

// DefaultTunables returns the standard configuration with both caches on.
func DefaultTunables() Tunables {
	return Tunables{AggregateCacheEnabled: true, VolCacheEnabled: true}.Defaults()
}
