package wafl

import (
	"waflfs/internal/aa"
	"waflfs/internal/block"
	"waflfs/internal/device"
)

// Flash Pool (§2.1): an aggregate composed of one or more RAID groups of
// SSDs together with several RAID groups of HDDs, storing hot data and
// metadata on the faster media. Each media class keeps its own AA caches
// and sizing; this file adds the placement policy on top:
//
//   - with Tunables.FlashPool set, new writes (the hot data) are allocated
//     from SSD groups, falling back to the other groups only when flash is
//     short on space;
//   - Demote moves cold LUN ranges to the HDD groups through the normal
//     allocator, so demoted data lands in the emptiest HDD AAs as long
//     sequential chains.

// AllocatePhysicalPreferring allocates like AllocatePhysical but tries
// groups of the preferred media first, spilling to the remaining groups
// only for whatever those could not supply.
func (ag *Aggregate) AllocatePhysicalPreferring(media aa.Media, n int) []block.VBN {
	out := ag.allocateFromMedia(media, n, true)
	if len(out) < n {
		out = append(out, ag.allocateFromMedia(media, n-len(out), false)...)
	}
	return out
}

// allocateFromMedia runs the tetris round-robin restricted to groups whose
// media matches (or doesn't, when match is false).
func (ag *Aggregate) allocateFromMedia(media aa.Media, n int, match bool) []block.VBN {
	out := make([]block.VBN, 0, n)
	for len(out) < n {
		anyAlive := false
		for i := range ag.groups {
			g := ag.groups[(ag.nextRR+i)%len(ag.groups)]
			if (g.Spec.Media == media) != match {
				continue
			}
			vbns, more := g.allocateTetris(ag.bm, n-len(out))
			out = append(out, vbns...)
			if more {
				anyAlive = true
			}
			if len(out) >= n {
				break
			}
		}
		ag.nextRR = (ag.nextRR + 1) % len(ag.groups)
		if !anyAlive {
			break
		}
	}
	return out
}

// Demote moves every written block of l selected by the predicate from SSD
// groups to HDD groups: new HDD VBNs come from the normal AA-cache-guided
// allocator (so cold data lands in the emptiest HDD AAs and flushes as long
// chains at the next CP), the flash copies are read and freed, and every
// referent — active image and snapshots — is repointed. Must run at a CP
// boundary. Returns the number of blocks demoted.
func (s *System) Demote(l *LUN, select_ func(lba uint64) bool) int {
	if s.pendingBlocks > 0 {
		panic("wafl: Demote must run at a CP boundary")
	}
	reverse := s.buildReverseMap()
	var move []block.VBN
	seen := make(map[block.VBN]bool)
	for lba := range l.blocks {
		p := l.blocks[lba].phys
		if p == block.InvalidVBN || !select_(uint64(lba)) {
			continue
		}
		if s.Agg.pool != nil && s.Agg.pool.Contains(p) {
			continue
		}
		if s.Agg.groupOf(p).Spec.Media != aa.MediaSSD {
			continue // already on capacity media
		}
		if !seen[p] {
			seen[p] = true
			move = append(move, p)
		}
	}
	if len(move) == 0 {
		return 0
	}
	newVBNs := s.Agg.allocateFromMedia(aa.MediaHDD, len(move), true)
	if len(newVBNs) < len(move) {
		panic("wafl: HDD tier out of space during demotion")
	}
	for i, old := range move {
		g := s.Agg.groupOf(old)
		d, dbn := g.geo.Locate(old)
		if g.azcs {
			dbn = device.DataToDiskDBN(dbn)
		}
		_ = dbn
		s.c.DeviceBusy += g.devices[d].Read(1)
		for _, slot := range reverse[old] {
			slot.phys = newVBNs[i]
		}
		s.Agg.FreePhysical(old)
	}
	return len(move)
}

// MediaUsage reports the used fraction of each media class's capacity.
func (ag *Aggregate) MediaUsage() map[aa.Media]float64 {
	used := make(map[aa.Media]uint64)
	total := make(map[aa.Media]uint64)
	for _, g := range ag.groups {
		r := g.geo.VBNRange()
		used[g.Spec.Media] += ag.bm.CountUsed(r)
		total[g.Spec.Media] += r.Len()
	}
	out := make(map[aa.Media]float64, len(total))
	for m, t := range total {
		out[m] = float64(used[m]) / float64(t)
	}
	return out
}
