package wafl

import (
	"fmt"
	"sort"
	"time"

	"waflfs/internal/aa"
	"waflfs/internal/block"
	"waflfs/internal/faultinject"
	"waflfs/internal/obs/optrace"
	"waflfs/internal/parallel"
)

// Pipelined consistency points (Tunables.Pipeline). Production WAFL never
// stops the world for a CP: while CP n's dirty data drains to disk, the
// frontend keeps accepting writes that allocate into CP n+1. This file
// models that overlap on the deterministic clock. Each CP boundary:
//
//  1. allocates the pending writes into the OPEN generation (the classic
//     phase-1 mechanics, byte for byte),
//  2. if a generation is in flight, commits it — flush, cache fold,
//     metafile write-back — from the SEALED banks (CommitPipelinedCP),
//  3. seals the open generation: delta ledgers, write sets, AZCS queues,
//     pool banks, and delayed-free queues all swap into the flush banks
//     while fresh open structures take their place,
//  4. charges the modeled wall max(alloc_open, flush_sealed) instead of
//     their sum — the overlap win the cp.pipeline.* metrics expose.
//
// Every measured counter stays worker-count invariant; only the modeled
// walls (alloc via parallel.Makespan, flush via CPStats.FlushWall) vary
// with Tunables.Workers, exactly like the classic FlushWall. The final
// generation stays in flight until the next boundary — callers reading
// artifacts (snapshots, refcount checks, benches) must Drain() first.

// pipeCand is a pending write-trace candidate carried from a generation's
// alloc phase to its flush — the pipelined analogue of CP()'s writeCand.
type pipeCand struct {
	id, seq      uint64
	sampled      bool
	stalls0      uint64
	replenishes0 uint64
	stallBusy0   time.Duration
	refillBusy0  time.Duration
}

// pipeGen is the metadata of a sealed generation, captured at seal so its
// flush can attribute latency and traces to the CP the writes belong to.
type pipeGen struct {
	// ord is the CP ordinal this generation commits as.
	ord         uint64
	volBlocks   map[*FlexVol]uint64
	totalBlocks uint64
	cands       map[*FlexVol]*pipeCand
	// allocScan/allocCache are the CPU charges of the generation's alloc
	// phase, carried here so the flush-time latency SLI covers the whole
	// generation cost.
	allocScan  time.Duration
	allocCache time.Duration
	// allocWall is the modeled wall-clock of the alloc phase.
	allocWall time.Duration
}

// cpPipeline is the System's pipelined-CP state plus the cp.pipeline.*
// accumulators. Zero-valued (and untouched) when Pipeline is off.
type cpPipeline struct {
	inFlight bool
	gen      pipeGen

	// generations counts sealed generations (worker-invariant).
	generations uint64
	// Wall accumulators (worker-sensitive, exported as volatile metrics):
	// serialWall is what a stop-the-world schedule would have cost
	// (alloc + flush per generation), pipedWall what the overlap costs
	// (max per generation). Their ratio is the overlap gain.
	allocWall  time.Duration
	flushWall  time.Duration
	pipedWall  time.Duration
	serialWall time.Duration
}

// PipelineStats is a snapshot of the pipelined-CP accounting.
type PipelineStats struct {
	// Generations counts sealed generations.
	Generations uint64
	// AllocWall/FlushWall are the summed per-generation modeled walls.
	AllocWall time.Duration
	FlushWall time.Duration
	// PipelinedWall is Σ max(alloc, flush) — the modeled sustained-write
	// wall with the overlap. SerialWall is Σ (alloc + flush) — what the
	// stop-the-world schedule would have cost.
	PipelinedWall time.Duration
	SerialWall    time.Duration
}

// OverlapGain returns SerialWall / PipelinedWall (0 when nothing ran):
// ≥ 1 always, 2 at perfect alloc/flush balance.
func (p PipelineStats) OverlapGain() float64 {
	if p.PipelinedWall == 0 {
		return 0
	}
	return float64(p.SerialWall) / float64(p.PipelinedWall)
}

// PipelineStats returns the pipelined-CP accounting.
func (s *System) PipelineStats() PipelineStats {
	return PipelineStats{
		Generations:   s.pipe.generations,
		AllocWall:     s.pipe.allocWall,
		FlushWall:     s.pipe.flushWall,
		PipelinedWall: s.pipe.pipedWall,
		SerialWall:    s.pipe.serialWall,
	}
}

// InFlight reports whether a sealed generation is still awaiting its flush
// (Drain commits it).
func (s *System) InFlight() bool { return s.pipe.inFlight }

// cpPipelined is the pipelined CP boundary (see the file comment for the
// stage order). It returns the CPStats of the generation that COMMITTED at
// this boundary — zero at the first boundary, when nothing was in flight.
func (s *System) cpPipelined() CPStats {
	cacheOpsBefore := s.cacheOps()
	scanBefore := s.virtScanBlocks()
	ord := s.c.CPs + 1
	if s.pipe.inFlight {
		ord = s.c.CPs + 2 // the in-flight generation commits first
	}
	s.Agg.cpOrd = ord
	s.Agg.st.BeginCP()
	s.Agg.faults.BeginCP()
	if s.pipe.inFlight {
		s.Agg.faults.EnterPhase(faultinject.PhaseOverlapAlloc)
	} else {
		s.Agg.faults.EnterPhase(faultinject.PhaseAlloc)
	}

	// Open-generation allocation: identical mechanics to classic phase 1
	// (sorted LUN order, trace candidates, dual-VBN assignment, COW frees).
	luns := make([]*LUN, 0, len(s.pending))
	for l := range s.pending {
		luns = append(luns, l)
	}
	sort.Slice(luns, func(i, j int) bool {
		if luns[i].vol.Name != luns[j].vol.Name {
			return luns[i].vol.Name < luns[j].vol.Name
		}
		return luns[i].Name < luns[j].Name
	})
	volBlocks := make(map[*FlexVol]uint64, len(s.Agg.vols))
	var totalBlocks uint64
	cands := make(map[*FlexVol]*pipeCand)
	for _, l := range luns {
		dirty := s.pending[l]
		n := len(dirty)
		if n == 0 {
			continue
		}
		vol := l.vol
		if sp := vol.space; sp.tr != nil {
			if _, ok := cands[vol]; !ok {
				id, seq, smp := sp.tr.Begin(optrace.KindWrite)
				cands[vol] = &pipeCand{
					id: id, seq: seq, sampled: smp,
					stalls0: sp.as.stalls, replenishes0: sp.replenishes,
					stallBusy0: sp.as.stallBusy, refillBusy0: sp.as.refillBusy,
				}
				if smp {
					sp.curTID = id
				}
			}
		}
		volBlocks[vol] += uint64(n)
		totalBlocks += uint64(n)
		virt := vol.space.allocate(n)
		var phys []block.VBN
		if s.tun.FlashPool {
			phys = s.Agg.AllocatePhysicalPreferring(aa.MediaSSD, n)
		} else {
			phys = s.Agg.AllocatePhysical(n)
		}
		if len(virt) < n {
			panic(fmt.Sprintf("wafl: volume %q out of virtual space", vol.Name))
		}
		if len(phys) < n {
			panic("wafl: aggregate out of physical space")
		}
		lbas := make([]uint64, 0, n)
		for lba := range dirty {
			lbas = append(lbas, lba)
		}
		sortUint64s(lbas)
		for i, lba := range lbas {
			vol.refNew(virt[i])
			old, wasWritten := l.install(lba, blockPtr{virt: virt[i], phys: phys[i]})
			if wasWritten {
				s.unref(vol, old)
			}
		}
		s.c.BlocksWritten += uint64(n)
		s.Agg.st.Emit("cp.alloc", vol.space.shard, l.Name, 0, int64(n))
		delete(s.pending, l)
	}
	s.pendingBlocks = 0
	s.opsSinceCP = 0
	for vol := range cands {
		vol.space.curTID = 0
	}

	// Charge the alloc phase's CPU now (worker-invariant), but carry the
	// amounts in the generation so its flush-time SLI covers them.
	allocScan := time.Duration(s.virtScanBlocks()-scanBefore) * s.tun.CPUPerVirtAllocScan
	allocCache := time.Duration(s.cacheOps()-cacheOpsBefore) * s.tun.CPUPerCacheOp
	s.c.CPUTime += allocScan + allocCache
	s.c.CacheCPUTime += allocCache

	// Modeled alloc wall: each volume's allocation work (its blocks at the
	// base per-op cost) is volume-local, so it fans out over the work pool
	// the way the flush fans out over groups.
	volBusy := make([]time.Duration, 0, len(s.Agg.vols))
	for _, v := range s.Agg.vols {
		if n := volBlocks[v]; n > 0 {
			volBusy = append(volBusy, time.Duration(n)*s.tun.CPUBasePerOp)
		}
	}
	allocWall := parallel.Makespan(volBusy, s.Agg.workers())

	// Commit the in-flight generation while (logically) the allocation
	// above was running — the overlap the wall accounting below models.
	var st CPStats
	var flushWall time.Duration
	committed := s.pipe.inFlight
	if committed {
		st = s.flushGeneration()
		flushWall = st.FlushWall
	}

	// Seal the generation just allocated; it flushes at the next boundary.
	s.sealGeneration(pipeGen{
		ord: s.c.CPs + 1, volBlocks: volBlocks, totalBlocks: totalBlocks,
		cands: cands, allocScan: allocScan, allocCache: allocCache,
		allocWall: allocWall,
	})

	// The boundary's modeled wall is max(alloc, flush), not their sum.
	wall := allocWall
	if flushWall > wall {
		wall = flushWall
	}
	s.cpWall += wall
	s.pipe.allocWall += allocWall
	s.pipe.flushWall += flushWall
	s.pipe.pipedWall += wall
	s.pipe.serialWall += allocWall + flushWall

	if committed {
		s.pipeTail()
	}
	return st
}

// sealGeneration swaps every open bank into the flush banks: group and
// space delta ledgers (shard ledgers folded first, classic order), write
// sets, AZCS queues, the pool's tiered-block bank, and the delayed-free
// queues (the sealed queue absorbs the open one — including any budget
// carryover already waiting there). Shard staging generations advance so
// the watchdog can pin held batches to the generation they predate.
func (s *System) sealGeneration(gen pipeGen) {
	for _, g := range s.Agg.groups {
		g.sealCP()
		if g.sh != nil {
			g.sh.AdvanceGen()
		}
	}
	for _, v := range s.Agg.vols {
		sp := v.space
		sp.sealCPDeltas()
		if sp.delayed != nil {
			if sp.delayedSealed == nil {
				sp.delayedSealed = newDelayedFrees()
			}
			sp.delayedSealed.absorb(sp.delayed)
		}
		if sp.sh != nil {
			sp.sh.AdvanceGen()
		}
	}
	if p := s.Agg.pool; p != nil {
		p.sealCP()
		p.space.sealCPDeltas()
		if p.space.sh != nil {
			p.space.sh.AdvanceGen()
		}
	}
	s.pipe.gen = gen
	s.pipe.inFlight = true
	s.pipe.generations++
}

// flushGeneration commits the sealed generation: sealed delayed frees are
// reclaimed into the flush banks, the banks flush and fold with the classic
// phase structure, and the generation's latency SLI and write traces are
// attributed using the metadata captured at seal plus the flush-measured
// costs — so attr coverage reconciles exactly, as on the classic path.
func (s *System) flushGeneration() CPStats {
	gen := s.pipe.gen
	s.Agg.faults.EnterPhase(faultinject.PhaseOverlapFlush)
	for _, v := range s.Agg.vols {
		freed, aas := v.space.reclaimSealedFrees(s.tun.DelayedFreeBudgetPerCP)
		if freed > 0 {
			s.Agg.st.Emit("cp.delayed_free", v.space.shard, "reclaim", 0, int64(freed))
			s.Agg.st.Emit("cp.delayed_free", v.space.shard, "aas_processed", 0, int64(aas))
		}
	}

	var gBusy []time.Duration
	if len(gen.cands) > 0 {
		gBusy = make([]time.Duration, len(s.Agg.groups))
		for i, g := range s.Agg.groups {
			gBusy[i] = g.deviceBusy
		}
	}
	cacheOpsBefore := s.cacheOps()
	st := s.Agg.CommitPipelinedCP()
	s.c.CPs++
	s.c.DeviceBusy += st.DeviceBusy
	pages := uint64(st.MetafilePagesAggregate + st.MetafilePagesVols)
	s.c.MetafilePages += pages
	s.c.TopAABlocks += uint64(st.TopAABlocks)
	metaNS := time.Duration(pages) * s.tun.CPUPerMetafilePage
	s.c.CPUTime += metaNS
	foldCache := time.Duration(s.cacheOps()-cacheOpsBefore) * s.tun.CPUPerCacheOp
	s.c.CPUTime += foldCache
	s.c.CacheCPUTime += foldCache

	// Latency SLI for the committed generation: same worker-invariant cost
	// split as the classic CP, with the alloc-phase CPU carried over from
	// seal time and the fold CPU measured here.
	if gen.totalBlocks > 0 {
		cpCost := st.DeviceBusy + metaNS + gen.allocScan + gen.allocCache + foldCache
		cpPer := uint64(cpCost) / gen.totalBlocks
		base := uint64(s.tun.CPUBasePerOp)
		perBlock := base + cpPer
		var metaPer, scanPer, cachePer, devPer uint64
		if cpCost > 0 {
			fc := float64(cpPer) / float64(cpCost)
			metaPer = uint64(fc * float64(metaNS))
			scanPer = uint64(fc * float64(gen.allocScan))
			cachePer = uint64(fc * float64(gen.allocCache+foldCache))
			devPer = cpPer - metaPer - scanPer - cachePer
		}
		for _, v := range s.Agg.vols {
			if n := gen.volBlocks[v]; n > 0 {
				sp := v.space
				sp.lat.ObserveN(perBlock, n)
				sp.attr[optrace.StageBase] += n * base
				sp.attr[optrace.StageDevice] += n * devPer
				sp.attr[optrace.StageMetafile] += n * metaPer
				sp.attr[optrace.StageScan] += n * scanPer
				sp.attr[optrace.StageCache] += n * cachePer
			}
		}
		for _, v := range s.Agg.vols {
			c := gen.cands[v]
			if c == nil || gen.volBlocks[v] == 0 {
				continue
			}
			sp := v.space
			rec, slow := sp.tr.Decide(c.sampled, perBlock)
			if !rec {
				continue
			}
			var flushTotal time.Duration
			for gi, g := range s.Agg.groups {
				flushTotal += g.deviceBusy - gBusy[gi]
			}
			var leaves []optrace.Span
			if devPer > 0 && flushTotal > 0 {
				for gi, g := range s.Agg.groups {
					if d := g.deviceBusy - gBusy[gi]; d > 0 {
						leaves = append(leaves, optrace.Span{
							Name:  fmt.Sprintf("rg%d", g.Index),
							DurNS: uint64(float64(devPer) * float64(d) / float64(flushTotal)),
						})
					}
				}
			}
			pk := sp.lastPick
			alloc := optrace.Span{
				Name: "alloc",
				Detail: fmt.Sprintf("aa=%d score=%d runner_up=%d reason=%s stalls=%d refills=%d",
					pk.aa, pk.score, pk.runner, pk.reason,
					sp.as.stalls-c.stalls0, sp.replenishes-c.replenishes0),
			}
			if d := sp.as.stallBusy - c.stallBusy0; d > 0 {
				alloc.Children = append(alloc.Children, optrace.Span{
					Name: "stall", Detail: fmt.Sprintf("busy_ns=%d", d)})
			}
			if d := sp.as.refillBusy - c.refillBusy0; d > 0 {
				alloc.Children = append(alloc.Children, optrace.Span{
					Name: "refill", Detail: fmt.Sprintf("busy_ns=%d", d)})
			}
			sp.tr.Add(optrace.Trace{
				ID: c.id, Kind: optrace.KindWrite.String(), Seq: c.seq, CP: s.c.CPs,
				AtNS:  int64(s.c.DeviceBusy + s.c.CPUTime),
				LatNS: perBlock, Blocks: gen.volBlocks[v], Slow: slow,
				Spans: []optrace.Span{
					{Name: optrace.StageBase.String(), DurNS: base},
					alloc,
					{Name: optrace.StageDevice.String(), DurNS: devPer, Children: leaves},
					{Name: optrace.StageMetafile.String(), DurNS: metaPer},
					{Name: optrace.StageScan.String(), DurNS: scanPer},
					{Name: optrace.StageCache.String(), DurNS: cachePer},
				},
			})
		}
	}
	s.pipe.gen = pipeGen{}
	s.pipe.inFlight = false
	return st
}

// Drain commits the in-flight generation of a pipelined System, with no
// new allocation to overlap it — a quiesce point. No-op (zero CPStats)
// when nothing is in flight, including on the classic path. Callers must
// Drain before reading artifacts that assume all CPs have committed:
// snapshots at a boundary, refcount checks, bench counters, remounts.
func (s *System) Drain() CPStats {
	if !s.pipe.inFlight {
		return CPStats{}
	}
	s.Agg.cpOrd = s.c.CPs + 1
	s.Agg.st.BeginCP()
	s.Agg.faults.BeginCP()
	st := s.flushGeneration()
	s.cpWall += st.FlushWall
	s.pipe.flushWall += st.FlushWall
	s.pipe.pipedWall += st.FlushWall
	s.pipe.serialWall += st.FlushWall
	s.pipeTail()
	return st
}

// pipeTail is the classic CP tail (modeled-clock advance, watchdogs, CSV,
// live publish, frag scan, tsdb sample, SLO evaluation), run once per
// COMMITTED generation so the per-CP streams stay one row per CP ordinal.
func (s *System) pipeTail() {
	tot := s.c.DeviceBusy + s.c.CPUTime
	s.Agg.st.Advance(tot - s.obsMark)
	s.obsMark = tot
	s.runWatchdogs()
	if rec := s.Agg.obsOpts.CSV; rec != nil {
		rec.Record(s.Agg.obsOpts.Name, s.c.CPs, s.Agg.reg.Snapshot())
	}
	if l := s.Agg.obsOpts.Live; l != nil {
		l.Publish(s.Agg.obsOpts.Name, s.Agg.reg.Snapshot())
	}
	s.maybeFragScan()
	if ts := s.Agg.obsOpts.TSDB; ts != nil {
		ts.Sample(s.Agg.obsOpts.Name, s.c.CPs, tot, s.Agg.reg.StableSnapshot())
	}
	if e := s.Agg.sloEng; e != nil {
		e.Evaluate(s.c.CPs, tot)
	}
	if c := s.Agg.ctl; c != nil {
		c.Evaluate(s.c.CPs, tot)
	}
}
