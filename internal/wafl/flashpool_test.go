package wafl

import (
	"math/rand"
	"testing"

	"waflfs/internal/aa"
	"waflfs/internal/block"
)

// flashPoolSystem: one SSD group (hot tier) + two HDD groups (capacity).
func flashPoolSystem(t *testing.T) (*System, *LUN) {
	t.Helper()
	tun := DefaultTunables()
	tun.FlashPool = true
	tun.CPEveryOps = 256
	specs := []GroupSpec{
		{DataDevices: 3, ParityDevices: 1, BlocksPerDevice: 1 << 15, Media: aa.MediaSSD, EraseBlockBlocks: 512, StripesPerAA: 1024},
		{DataDevices: 3, ParityDevices: 1, BlocksPerDevice: 1 << 16, Media: aa.MediaHDD, StripesPerAA: 1024},
		{DataDevices: 3, ParityDevices: 1, BlocksPerDevice: 1 << 16, Media: aa.MediaHDD, StripesPerAA: 1024},
	}
	s := NewSystem(specs, []VolSpec{{Name: "v", Blocks: 16 * aa.RAIDAgnosticBlocks}}, tun, 17)
	lun := s.Agg.Vols()[0].CreateLUN("l", 200000)
	return s, lun
}

func mediaOf(s *System, v block.VBN) aa.Media {
	return s.Agg.groupOf(v).Spec.Media
}

func TestFlashPoolWritesLandOnSSD(t *testing.T) {
	s, lun := flashPoolSystem(t)
	for lba := uint64(0); lba < 30000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	// Everything fits on flash (96k blocks), so every write is there.
	for _, lba := range []uint64{0, 15000, 29999} {
		if m := mediaOf(s, lun.Phys(lba)); m != aa.MediaSSD {
			t.Fatalf("lba %d on %s, want SSD", lba, m)
		}
	}
	usage := s.Agg.MediaUsage()
	if usage[aa.MediaHDD] != 0 {
		t.Fatalf("HDD usage = %.3f before spill", usage[aa.MediaHDD])
	}
}

func TestFlashPoolSpillsWhenFlashFull(t *testing.T) {
	s, lun := flashPoolSystem(t)
	// SSD tier holds 3*32768 = 98304 blocks; write more than that.
	for lba := uint64(0); lba < 150000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	usage := s.Agg.MediaUsage()
	if usage[aa.MediaSSD] < 0.99 {
		t.Fatalf("SSD usage = %.3f, want full before spilling", usage[aa.MediaSSD])
	}
	if usage[aa.MediaHDD] == 0 {
		t.Fatal("no spill to HDD despite full flash")
	}
	checkConsistency(t, s)
}

func TestDemoteMovesColdToHDD(t *testing.T) {
	s, lun := flashPoolSystem(t)
	for lba := uint64(0); lba < 40000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	// Demote the cold first half.
	moved := s.Demote(lun, func(lba uint64) bool { return lba < 20000 })
	if moved != 20000 {
		t.Fatalf("demoted %d", moved)
	}
	s.CP()
	if m := mediaOf(s, lun.Phys(0)); m != aa.MediaHDD {
		t.Fatalf("demoted block on %s", m)
	}
	if m := mediaOf(s, lun.Phys(30000)); m != aa.MediaSSD {
		t.Fatalf("hot block on %s", m)
	}
	// Flash space was released.
	usage := s.Agg.MediaUsage()
	if usage[aa.MediaSSD] > 0.25 {
		t.Fatalf("SSD usage %.3f after demotion", usage[aa.MediaSSD])
	}
	// Demoting again is a no-op (already on HDD).
	if again := s.Demote(lun, func(lba uint64) bool { return lba < 20000 }); again != 0 {
		t.Fatalf("re-demotion moved %d", again)
	}
	checkConsistency(t, s)
}

func TestDemoteLandsInLongHDDChains(t *testing.T) {
	s, lun := flashPoolSystem(t)
	for lba := uint64(0); lba < 30000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	s.Demote(lun, func(lba uint64) bool { return true })
	s.CP()
	// Demoted data went through the AA-cache allocator: full stripes on
	// the HDD groups, not scattered blocks.
	for _, g := range s.Agg.Groups()[1:] {
		st := g.RAIDStats()
		if st.BlocksWritten == 0 {
			continue
		}
		if st.FullStripeFraction() < 0.9 {
			t.Fatalf("HDD group %d full-stripe fraction %.3f on demotion",
				g.Index, st.FullStripeFraction())
		}
	}
}

func TestDemoteWithSnapshotRepointsBoth(t *testing.T) {
	s, lun := flashPoolSystem(t)
	for lba := uint64(0); lba < 10000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	s.CreateSnapshot(lun, "pin")
	moved := s.Demote(lun, func(lba uint64) bool { return lba < 5000 })
	if moved != 5000 {
		t.Fatalf("moved %d (shared blocks must move once)", moved)
	}
	s.CP()
	sn := lun.Snapshot("pin")
	for lba := 0; lba < 5000; lba++ {
		if sn.blocks[lba].phys != lun.blocks[lba].phys {
			t.Fatalf("lba %d snapshot/active diverged", lba)
		}
	}
	if err := s.Agg.Vols()[0].CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
}

func TestFlashPoolChurnStaysConsistent(t *testing.T) {
	s, lun := flashPoolSystem(t)
	rng := rand.New(rand.NewSource(18))
	for lba := uint64(0); lba < 120000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	s.Demote(lun, func(lba uint64) bool { return rng.Float64() < 0.5 })
	s.CP()
	for i := 0; i < 30000; i++ {
		s.Write(lun, uint64(rng.Intn(120000)), 1)
	}
	s.CP()
	checkConsistency(t, s)
	c := s.Counters()
	if c.BlocksWritten-c.BlocksFreed != s.Agg.bm.Used() {
		t.Fatalf("conservation broken")
	}
}
