package wafl

import (
	"math/rand"
	"strings"
	"testing"

	"waflfs/internal/aa"
	"waflfs/internal/block"
)

// watchdogSystem builds a small system with the online watchdogs armed at
// full sample width, fills a volume, and commits one CP so caches, deltas,
// and delayed-free queues all hold settled state.
func watchdogSystem(t *testing.T, strict bool) (*System, *LUN) {
	t.Helper()
	tun := DefaultTunables()
	tun.CPEveryOps = 1 << 30
	tun.DelayedVirtFrees = true
	tun.Obs = &ObsOptions{
		Name:            "wd",
		Watchdogs:       true,
		WatchdogSample:  1 << 20, // cover every AA each CP
		StrictWatchdogs: strict,
	}
	s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 16 * aa.RAIDAgnosticBlocks}}, tun, 7)
	lun := s.Agg.Vols()[0].CreateLUN("l", 20000)
	for lba := uint64(0); lba < 20000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	return s, lun
}

func wdValue(t *testing.T, s *System, name string) uint64 {
	t.Helper()
	n, ok := s.Registry().Value(name)
	if !ok {
		t.Fatalf("metric %q not registered", name)
	}
	return n
}

// A healthy workload — overwrites, delayed frees, remounts — must run under
// strict watchdogs (any violation would panic) while all three monitor
// classes actually perform checks.
func TestWatchdogCleanRunStrict(t *testing.T) {
	s, lun := watchdogSystem(t, true)
	rng := rand.New(rand.NewSource(3))
	for cp := 0; cp < 6; cp++ {
		for i := 0; i < 3000; i++ {
			s.Write(lun, uint64(rng.Intn(20000)), 1)
		}
		s.CP()
	}
	s.Agg.Remount(true)
	for i := 0; i < 1000; i++ {
		s.Write(lun, uint64(rng.Intn(20000)), 1)
	}
	s.CP()

	for _, m := range []string{
		"watchdog.checks",
		"watchdog.conservation_checks",
		"watchdog.score_checks",
		"watchdog.pick_checks",
	} {
		if wdValue(t, s, m) == 0 {
			t.Errorf("%s = 0, want > 0", m)
		}
	}
	if n := wdValue(t, s, "watchdog.violations"); n != 0 {
		t.Errorf("watchdog.violations = %d: %v", n, s.Agg.WatchdogViolations())
	}
}

// Seeded corruption of a heap-cached AA score must trip the score (or
// pick-floor) monitor on the next CP — the tamper test proving the
// watchdogs actually read the state they claim to guard.
func TestWatchdogFiresOnHeapScoreCorruption(t *testing.T) {
	s, lun := watchdogSystem(t, false)
	g := s.Agg.groups[0]
	entries := g.cache.Entries()
	if len(entries) == 0 {
		t.Fatal("group cache is empty")
	}
	e := entries[len(entries)/2]
	g.cache.Update(e.ID, e.Score+97) // cached score no longer bitmap-derived

	for i := 0; i < 500; i++ {
		s.Write(lun, uint64(i), 1)
	}
	s.CP()

	if n := wdValue(t, s, "watchdog.violations"); n == 0 {
		t.Fatal("corrupted heap score went undetected")
	}
	if wdValue(t, s, "watchdog.score_violations")+wdValue(t, s, "watchdog.pick_violations") == 0 {
		t.Error("violation not attributed to the score or pick-floor class")
	}
	if len(s.Agg.WatchdogViolations()) == 0 {
		t.Error("violation log is empty")
	}
}

// Seeded corruption of an HBPS listed placement must trip the score (or
// pick-floor) monitor: the listed bin no longer matches the bitmap-derived
// score's bin.
func TestWatchdogFiresOnHBPSCorruption(t *testing.T) {
	s, lun := watchdogSystem(t, false)
	sp := s.Agg.vols[0].space
	l := sp.cache.ListLen()
	if l == 0 {
		t.Fatal("HBPS list is empty")
	}
	id, _ := sp.cache.ListedAt(l - 1)
	real := sp.aaScore(id) - uint32(sp.deltas[id])
	// Move the item far enough that its bin changes; it stays listed.
	sp.cache.Update(id, real, real/2+1)

	for i := 0; i < 500; i++ {
		s.Write(lun, uint64(i), 1)
	}
	s.CP()

	if n := wdValue(t, s, "watchdog.violations"); n == 0 {
		t.Fatal("corrupted HBPS placement went undetected")
	}
	if wdValue(t, s, "watchdog.score_violations")+wdValue(t, s, "watchdog.pick_violations") == 0 {
		t.Error("violation not attributed to the score or pick-floor class")
	}
}

// A bitmap bit set behind the allocator's back breaks free-block
// conservation: used blocks no longer equal refcounted plus delayed.
func TestWatchdogFiresOnConservationBreak(t *testing.T) {
	s, _ := watchdogSystem(t, false)
	v := s.Agg.vols[0]
	space := v.space.topo.Space()
	leaked := block.InvalidVBN
	for p := space.Start; p < space.End; p++ {
		if !v.bm.Test(p) {
			leaked = p
			break
		}
	}
	if leaked == block.InvalidVBN {
		t.Fatal("volume has no free block to leak")
	}
	v.bm.Set(leaked)
	s.CP()

	if n := wdValue(t, s, "watchdog.conservation_violations"); n == 0 {
		t.Fatal("leaked block went undetected")
	}
}

// StrictWatchdogs promotes the first violation to a panic naming the
// watchdog, so tests fail hard at the exact CP the invariant broke.
func TestWatchdogStrictPanics(t *testing.T) {
	s, lun := watchdogSystem(t, true)
	g := s.Agg.groups[0]
	entries := g.cache.Entries()
	if len(entries) == 0 {
		t.Fatal("group cache is empty")
	}
	e := entries[len(entries)/2]
	g.cache.Update(e.ID, e.Score+31)

	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("strict watchdog did not panic on corruption")
		}
		msg, ok := rec.(string)
		if !ok || !strings.Contains(msg, "watchdog") {
			t.Fatalf("panic value = %v, want a watchdog message", rec)
		}
	}()
	for i := 0; i < 500; i++ {
		s.Write(lun, uint64(i), 1)
	}
	s.CP()
}
