package wafl

import (
	"fmt"
	"math/rand"

	"waflfs/internal/bitmap"
	"waflfs/internal/block"
)

// FlexVol is one virtualized volume hosted in an aggregate (§2.1). It owns
// a flat virtual VBN space with its own bitmap metafiles and RAID-agnostic
// AA cache; data blocks additionally occupy physical VBNs in the aggregate.
type FlexVol struct {
	Name string

	bm    *bitmap.Bitmap
	space *agnosticSpace
	luns  map[string]*LUN
	// rc counts references (active image + snapshots) per written pair,
	// keyed by virtual VBN; see snapshot.go.
	rc map[block.VBN]int32
}

func newFlexVol(spec VolSpec, tun Tunables, rng *rand.Rand) *FlexVol {
	if spec.Blocks == 0 {
		panic("wafl: zero-size FlexVol")
	}
	bm := bitmap.New(spec.Blocks)
	v := &FlexVol{
		Name:  spec.Name,
		bm:    bm,
		space: newAgnosticSpace(spec.Name, block.R(0, block.VBN(spec.Blocks)), bm, tun, tun.VolCacheEnabled, rng),
		luns:  make(map[string]*LUN),
	}
	if tun.DelayedVirtFrees {
		v.space.delayed = newDelayedFrees()
	}
	return v
}

// Blocks returns the virtual VBN space size.
func (v *FlexVol) Blocks() uint64 { return v.bm.Size() }

// Bitmap exposes the volume's bitmap metafile (read-mostly; used by
// experiments and the fsinspect tool).
func (v *FlexVol) Bitmap() *bitmap.Bitmap { return v.bm }

// UsedFraction returns the fraction of virtual VBNs allocated.
func (v *FlexVol) UsedFraction() float64 {
	return float64(v.bm.Used()) / float64(v.bm.Size())
}

// CreateLUN provisions a LUN of the given size in blocks. Space is consumed
// lazily as blocks are written (thin provisioning, §3.3.2).
func (v *FlexVol) CreateLUN(name string, blocks uint64) *LUN {
	if _, dup := v.luns[name]; dup {
		panic(fmt.Sprintf("wafl: duplicate LUN %q in %s", name, v.Name))
	}
	l := &LUN{Name: name, vol: v, blocks: make([]blockPtr, blocks)}
	for i := range l.blocks {
		l.blocks[i] = blockPtr{virt: block.InvalidVBN, phys: block.InvalidVBN}
	}
	v.luns[name] = l
	return l
}

// LUN returns the named LUN, or nil.
func (v *FlexVol) LUN(name string) *LUN { return v.luns[name] }

// blockPtr is the dual address of one written LUN block: its virtual VBN in
// the volume and its physical VBN in the aggregate (§2.1: "it must allocate
// both a physical block number and a virtual block number").
type blockPtr struct {
	virt block.VBN
	phys block.VBN
}

// LUN is a block device exported from a FlexVol: a flat array of logical
// blocks, each holding a (virtual, physical) VBN pair once written. Client
// overwrites allocate fresh VBNs and free the old ones — the COW behaviour
// that fragments free space (§2.2).
type LUN struct {
	Name   string
	vol    *FlexVol
	blocks []blockPtr
	snaps  map[string]*Snapshot
}

// Blocks returns the LUN's logical size in blocks.
func (l *LUN) Blocks() uint64 { return uint64(len(l.blocks)) }

// Written reports whether logical block lba has ever been written.
func (l *LUN) Written(lba uint64) bool {
	return l.blocks[lba].virt != block.InvalidVBN
}

// Phys returns the physical VBN backing lba (InvalidVBN if unwritten).
func (l *LUN) Phys(lba uint64) block.VBN { return l.blocks[lba].phys }

// Virt returns the virtual VBN backing lba (InvalidVBN if unwritten).
func (l *LUN) Virt(lba uint64) block.VBN { return l.blocks[lba].virt }

// install points lba at a fresh (virt, phys) pair and returns the previous
// pair for freeing (ok=false if the block was unwritten).
func (l *LUN) install(lba uint64, p blockPtr) (old blockPtr, ok bool) {
	old = l.blocks[lba]
	l.blocks[lba] = p
	return old, old.virt != block.InvalidVBN
}

// Metrics returns the volume allocator's measurement counters.
func (v *FlexVol) Metrics() SpaceMetrics { return v.space.metrics() }

// ResetMetrics zeroes the volume allocator's measurement counters.
func (v *FlexVol) ResetMetrics() { v.space.resetMetrics() }
