package wafl

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"waflfs/internal/aa"
	"waflfs/internal/obs/optrace"
)

func pipelinedSystem(t *testing.T, budget int) (*System, *LUN) {
	t.Helper()
	tun := DefaultTunables()
	tun.Pipeline = true
	tun.DelayedVirtFrees = true
	tun.DelayedFreeBudgetPerCP = budget
	tun.CPEveryOps = 128
	tun.Obs = &ObsOptions{Name: "pipe", Watchdogs: true}
	s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 8 * aa.RAIDAgnosticBlocks}}, tun, 21)
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 50000)
	for lba := uint64(0); lba < 20000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	s.Drain() // start each test at a quiesced boundary
	return s, lun
}

// A pipelined run ends with one generation in flight; Drain commits it and
// restores every boundary invariant (bitmaps, refcounts, scrub).
func TestPipelinedDrainRestoresInvariants(t *testing.T) {
	s, lun := pipelinedSystem(t, 0)
	vol := s.Agg.Vols()[0]
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		s.Write(lun, uint64(rng.Intn(50000)), 1)
	}
	s.CP()
	if !s.InFlight() {
		t.Fatal("no generation in flight after pipelined CP")
	}
	st := s.Drain()
	if st.DeviceBusy == 0 {
		t.Fatal("Drain committed nothing")
	}
	if s.InFlight() {
		t.Fatal("still in flight after Drain")
	}
	if vol.PendingFrees() != 0 {
		t.Fatalf("pending frees after unlimited-budget Drain: %d", vol.PendingFrees())
	}
	if err := vol.CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
	if rep := s.Agg.Scrub(); !rep.Clean() {
		t.Fatalf("scrub after Drain: %v", rep)
	}
	if g := s.PipelineStats(); g.Generations == 0 || g.PipelinedWall == 0 {
		t.Fatalf("pipeline stats empty: %+v", g)
	}
}

// The pipelined and classic paths converge to the same logical filesystem
// state: same space usage, same written-block totals, clean invariants —
// the same workload differs only in when generations commit.
func TestPipelinedMatchesClassicFinalState(t *testing.T) {
	run := func(pipeline bool) *System {
		tun := DefaultTunables()
		tun.Pipeline = pipeline
		tun.DelayedVirtFrees = true
		tun.CPEveryOps = 1 << 30
		s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 8 * aa.RAIDAgnosticBlocks}}, tun, 3)
		lun := s.Agg.Vols()[0].CreateLUN("lun0", 40000)
		rng := rand.New(rand.NewSource(11))
		for lba := uint64(0); lba < 30000; lba++ {
			s.Write(lun, lba, 1)
			if s.pendingBlocks >= 4096 {
				s.CP()
			}
		}
		for i := 0; i < 15000; i++ {
			s.Write(lun, uint64(rng.Intn(30000)), 1)
			if s.pendingBlocks >= 4096 {
				s.CP()
			}
		}
		s.CP()
		s.Drain()
		return s
	}
	classic, piped := run(false), run(true)
	if a, b := classic.Agg.Bitmap().Used(), piped.Agg.Bitmap().Used(); a != b {
		t.Errorf("aggregate used diverged: classic %d, pipelined %d", a, b)
	}
	cc, pc := classic.Counters(), piped.Counters()
	if cc.BlocksWritten != pc.BlocksWritten || cc.BlocksFreed != pc.BlocksFreed || cc.Ops != pc.Ops {
		t.Errorf("counters diverged: classic %+v, pipelined %+v", cc, pc)
	}
	for _, s := range []*System{classic, piped} {
		if err := s.Agg.Vols()[0].CheckRefcounts(); err != nil {
			t.Fatal(err)
		}
		if rep := s.Agg.Scrub(); !rep.Clean() {
			t.Fatalf("scrub: %v", rep)
		}
	}
	if piped.PipelineStats().Generations == 0 {
		t.Fatal("pipelined run sealed no generations")
	}
	if classic.PipelineStats().Generations != 0 {
		t.Fatal("classic run touched the pipeline state")
	}
}

// The serial-equivalence contract extends to pipelined CPs: with every
// sink enabled and pipelining on, stable snapshots, trace events, CSV,
// tsdb, SLO, and optrace streams are byte-identical at Workers=1 and 8.
func TestPipelinedSerialEquivalence(t *testing.T) {
	s1, _, tr1, csv1, frag1, cps1 := obsRunMode(t, 1, true)
	s8, _, tr8, csv8, frag8, cps8 := obsRunMode(t, 8, true)

	if len(cps1) != len(cps8) {
		t.Fatalf("CP counts diverged: %d vs %d", len(cps1), len(cps8))
	}
	for i := range cps1 {
		a, b := cps1[i], cps8[i]
		a.FlushWall, b.FlushWall = 0, 0
		if a != b {
			t.Fatalf("CP %d stats diverged: %+v vs %+v", i, a, b)
		}
	}
	snap1 := s1.Registry().StableSnapshot()
	snap8 := s8.Registry().StableSnapshot()
	if !reflect.DeepEqual(snap1, snap8) {
		for i := range snap1.Metrics {
			if i < len(snap8.Metrics) && !reflect.DeepEqual(snap1.Metrics[i], snap8.Metrics[i]) {
				t.Errorf("metric %q: workers=1 %+v, workers=8 %+v",
					snap1.Metrics[i].Name, snap1.Metrics[i], snap8.Metrics[i])
			}
		}
		t.Fatalf("stable snapshots diverged (%d vs %d metrics)", len(snap1.Metrics), len(snap8.Metrics))
	}
	if n := snap1.Counter("cp.pipeline.generations"); n == 0 {
		t.Fatal("cp.pipeline.generations = 0 in a pipelined run")
	}
	if !reflect.DeepEqual(tr1.Events(), tr8.Events()) {
		t.Fatal("trace events diverged across worker counts")
	}
	if csv1.String() != csv8.String() {
		t.Fatal("per-CP CSV output diverged across worker counts")
	}
	if !reflect.DeepEqual(frag1.Reports(), frag8.Reports()) {
		t.Fatal("fragscan reports diverged across worker counts")
	}
	var tj1, tj8 strings.Builder
	if err := s1.Agg.obsOpts.TSDB.WriteJSON(&tj1); err != nil {
		t.Fatal(err)
	}
	if err := s8.Agg.obsOpts.TSDB.WriteJSON(&tj8); err != nil {
		t.Fatal(err)
	}
	if tj1.String() != tj8.String() {
		t.Fatal("tsdb JSON diverged across worker counts")
	}
	var sj1, sj8 strings.Builder
	if err := s1.Agg.obsOpts.SLO.WriteJSON(&sj1); err != nil {
		t.Fatal(err)
	}
	if err := s8.Agg.obsOpts.SLO.WriteJSON(&sj8); err != nil {
		t.Fatal(err)
	}
	if sj1.String() != sj8.String() {
		t.Fatal("slo status diverged across worker counts")
	}
	var oj1, oj8 strings.Builder
	if err := s1.Agg.obsOpts.OpTrace.WriteJSON(&oj1, optrace.Filter{}); err != nil {
		t.Fatal(err)
	}
	if err := s8.Agg.obsOpts.OpTrace.WriteJSON(&oj8, optrace.Filter{}); err != nil {
		t.Fatal(err)
	}
	if oj1.String() != oj8.String() {
		t.Fatal("optrace JSON diverged across worker counts")
	}
	for i, s := range []*System{s1, s8} {
		reg := s.Registry()
		if n, _ := reg.Value("watchdog.gen_checks"); n == 0 {
			t.Errorf("system %d: watchdog.gen_checks = 0 in a pipelined run", i)
		}
		if n, _ := reg.Value("watchdog.dfgen_checks"); n == 0 {
			t.Errorf("system %d: watchdog.dfgen_checks = 0 in a pipelined run", i)
		}
		if n, _ := reg.Value("watchdog.violations"); n != 0 {
			t.Errorf("system %d: watchdog.violations = %d: %v", i, n, s.Agg.WatchdogViolations())
		}
	}
}

// Overlapping alloc with flush must beat the stop-the-world schedule: the
// modeled sustained-write wall is Σ max(alloc, flush) against Σ (alloc +
// flush), and at 8 workers a steady stream of full generations keeps both
// sides busy enough for ≥1.3× — the artifact's cp.pipeline.overlap_gain
// floor.
func TestPipelineOverlapGain(t *testing.T) {
	tun := DefaultTunables()
	tun.Pipeline = true
	tun.Workers = 8
	tun.CPEveryOps = 1 << 30
	vols := []VolSpec{
		{Name: "v0", Blocks: 8 * aa.RAIDAgnosticBlocks},
		{Name: "v1", Blocks: 8 * aa.RAIDAgnosticBlocks},
		{Name: "v2", Blocks: 8 * aa.RAIDAgnosticBlocks},
		{Name: "v3", Blocks: 8 * aa.RAIDAgnosticBlocks},
	}
	s := NewSystem(testSpecs(), vols, tun, 17)
	luns := make([]*LUN, len(vols))
	for i, v := range s.Agg.Vols() {
		luns[i] = v.CreateLUN("l", 40000)
	}
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 12; round++ {
		for i := 0; i < 4000; i++ {
			s.Write(luns[rng.Intn(len(luns))], uint64(rng.Intn(40000)), 1)
		}
		s.CP()
	}
	s.Drain()
	ps := s.PipelineStats()
	if ps.Generations != 12 {
		t.Fatalf("generations = %d, want 12", ps.Generations)
	}
	if gain := ps.OverlapGain(); gain < 1.3 {
		t.Errorf("overlap gain %.3f < 1.3 (alloc %v, flush %v)", gain, ps.AllocWall, ps.FlushWall)
	}
}

// Satellite: a tight DelayedFreeBudgetPerCP leaves frees in the sealed
// queue at every flush; the next seal's absorb must carry them over with
// HBPS scores intact, and the backlog still fully drains.
func TestPipelinedDelayedFreeCarryover(t *testing.T) {
	s, lun := pipelinedSystem(t, 256)
	vol := s.Agg.Vols()[0]
	freed, err := s.PunchHoles(lun, func(lba uint64) bool { return lba < 8000 })
	if err != nil || freed != 8000 {
		t.Fatalf("punched %d, err %v", freed, err)
	}
	if vol.PendingFrees() != 8000 {
		t.Fatalf("pending = %d", vol.PendingFrees())
	}
	// Keep writing across many boundaries: each flush reclaims ≤ budget
	// (whole AAs, small overshoot) and carries the rest into the next
	// generation's sealed queue.
	rng := rand.New(rand.NewSource(5))
	prev := vol.PendingFrees()
	for i := 0; prev > 0 && i < 200; i++ {
		for j := 0; j < 64; j++ {
			s.Write(lun, 10000+uint64(rng.Intn(10000)), 1)
		}
		s.CP()
		cur := vol.PendingFrees()
		// Overwrites queue new frees, so only bound the reclaim side.
		if drained := prev - cur; drained > 256+int(aa.RAIDAgnosticBlocks) {
			t.Fatalf("boundary drained %d, budget 256", drained)
		}
		prev = cur
	}
	// Unlimited boundaries to drain the tail, then quiesce.
	s.tun.DelayedFreeBudgetPerCP = 0
	s.Agg.tun.DelayedFreeBudgetPerCP = 0
	s.CP()
	s.Drain()
	if got := vol.PendingFrees(); got != 0 {
		t.Fatalf("pending after drain = %d", got)
	}
	if err := vol.CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
	if rep := s.Agg.Scrub(); !rep.Clean() {
		t.Fatalf("scrub: %v", rep)
	}
	if n, _ := s.Registry().Value("watchdog.violations"); n != 0 {
		t.Fatalf("watchdog violations: %v", s.Agg.WatchdogViolations())
	}
}

// Tamper tests: each generation watchdog class fires on the state it pins.
func TestWatchdogGenTamperFires(t *testing.T) {
	mk := func() (*System, *LUN) {
		tun := DefaultTunables()
		tun.Pipeline = true
		tun.CPEveryOps = 1 << 30
		tun.Obs = &ObsOptions{Name: "tamper", Watchdogs: true}
		s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 8 * aa.RAIDAgnosticBlocks}}, tun, 9)
		return s, s.Agg.Vols()[0].CreateLUN("l", 20000)
	}
	viol := func(s *System, class string) uint64 {
		n, _ := s.Registry().Value(class)
		return n
	}

	// Sealed-bank residue with no generation in flight.
	s, lun := mk()
	for lba := uint64(0); lba < 2000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	s.Drain()
	g := s.Agg.groups[0]
	g.flushDeltas = map[aa.ID]int64{3: 1} // dropped-generation residue
	s.runWatchdogs()
	if viol(s, "watchdog.gen_violations") == 0 {
		t.Error("sealed-bank residue did not fire gen_violations")
	}
	g.flushDeltas = nil

	// In-flight sealed write freed under the generation's feet.
	s, lun = mk()
	for lba := uint64(0); lba < 2000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP() // gen in flight, flushWrites populated
	var tampered bool
	for _, g := range s.Agg.groups {
		if len(g.flushWrites) > 0 {
			s.Agg.bm.Clear(g.flushWrites[0])
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no sealed writes to tamper")
	}
	s.runWatchdogs()
	if viol(s, "watchdog.gen_violations") == 0 {
		t.Error("freed in-flight write did not fire gen_violations")
	}

	// Shard batch stamped with a future generation.
	tun := DefaultTunables()
	tun.Pipeline = true
	tun.AllocShards = 4
	tun.CPEveryOps = 1 << 30
	tun.Obs = &ObsOptions{Name: "tamper", Watchdogs: true}
	s = NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 8 * aa.RAIDAgnosticBlocks}}, tun, 9)
	lun = s.Agg.Vols()[0].CreateLUN("l", 20000)
	for lba := uint64(0); lba < 4000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	tampered = false
	for _, g := range s.Agg.groups {
		if g.sh != nil && g.sh.TamperHeldGen() {
			tampered = true
			break
		}
	}
	if !tampered {
		for _, v := range s.Agg.vols {
			if v.space.sh != nil && v.space.sh.TamperHeldGen() {
				tampered = true
				break
			}
		}
	}
	if !tampered {
		t.Skip("no held shard batches to tamper")
	}
	s.runWatchdogs()
	if viol(s, "watchdog.gen_violations") == 0 {
		t.Error("future-generation shard batch did not fire gen_violations")
	}
}

func TestWatchdogDFGenTamperFires(t *testing.T) {
	s, lun := pipelinedSystem(t, 256)
	vol := s.Agg.Vols()[0]
	if _, err := s.PunchHoles(lun, func(lba uint64) bool { return lba < 4000 }); err != nil {
		t.Fatal(err)
	}
	s.Write(lun, 0, 1)
	s.CP() // seals the queue; carryover guaranteed by the tight budget
	sp := vol.space
	if sp.delayedSealed == nil || sp.delayedSealed.count == 0 {
		t.Fatal("no sealed delayed frees to tamper")
	}
	sp.delayedSealed.count++ // queue count decoupled from its lists
	s.runWatchdogs()
	if n, _ := s.Registry().Value("watchdog.dfgen_violations"); n == 0 {
		t.Error("count/queue mismatch did not fire dfgen_violations")
	}
	sp.delayedSealed.count--

	// Conservation across generations: a sealed free double-counted.
	s2, lun2 := pipelinedSystem(t, 256)
	if _, err := s2.PunchHoles(lun2, func(lba uint64) bool { return lba < 4000 }); err != nil {
		t.Fatal(err)
	}
	s2.Write(lun2, 0, 1)
	s2.CP()
	sp2 := s2.Agg.Vols()[0].space
	if sp2.delayedSealed == nil || sp2.delayedSealed.count == 0 {
		t.Fatal("no sealed delayed frees")
	}
	for id, vs := range sp2.delayedSealed.pending {
		sp2.delayedSealed.pending[id] = vs[:len(vs)-1]
		sp2.delayedSealed.count--
		break
	}
	s2.runWatchdogs()
	nCons, _ := s2.Registry().Value("watchdog.conservation_violations")
	nDF, _ := s2.Registry().Value("watchdog.dfgen_violations")
	if nCons == 0 && nDF == 0 {
		t.Error("lost sealed free fired neither conservation nor dfgen violations")
	}
}
