package wafl

import (
	"fmt"
	"strings"
	"time"

	"waflfs/internal/control"
	"waflfs/internal/obs"
	"waflfs/internal/obs/fragscan"
	"waflfs/internal/obs/optrace"
	"waflfs/internal/obs/picks"
	"waflfs/internal/obs/slo"
	"waflfs/internal/obs/tsdb"
	"waflfs/internal/parallel"
)

// Observability wiring. Every Aggregate owns a private obs.Registry holding
// read-through views over the plain counters the simulation already keeps
// (System.Counters, group/space measurement fields, cache Metrics, device
// stats). There is exactly one accounting path — the registry never stores a
// second copy of any number — so CPStats/Counters and the metric snapshots
// cannot drift; CountersFromSnapshot plus the derived-view tests prove it.
//
// Determinism contract: all registered metrics except those marked volatile
// (flush wall-clock, pool occupancy) are worker-count invariant, so
// Registry().StableSnapshot() is DeepEqual across runs with different
// Tunables.Workers; trace events carry only worker-invariant payloads and
// modeled-clock timestamps advanced by worker-invariant quantities, so the
// canonical event sequence is DeepEqual too (see obs_test.go).

// ObsOptions enables the observability layer for a System/Aggregate via
// Tunables.Obs. The zero value (and a nil pointer) keeps everything off:
// the private registry still exists (registration is construction-time
// work), but no tracer events, no CSV rows, no export mirroring, and no
// per-I/O device histograms — the hot paths then pay only nil-checks.
type ObsOptions struct {
	// Name labels this system in the export registry (metric prefix), CSV
	// rows, and trace events. Defaults to "wafl". Experiment arms sharing an
	// Export registry must use distinct names, or the collision-suffix
	// ("#2") assignment follows construction order.
	Name string
	// Export, when non-nil, receives every metric of the private registry
	// under the prefix Name+"." (shared instruments, not copies) — the
	// registry waflbench serves over -metrics-addr.
	Export *obs.Registry
	// Tracer, when non-nil, records CP-phase spans, mount-shard spans, and
	// allocator decision events.
	Tracer *obs.Tracer
	// CSV, when non-nil, receives one row per non-volatile metric at the end
	// of every consistency point.
	CSV *obs.CSVRecorder
	// DeviceHistograms attaches a per-I/O service-time histogram to every
	// device model (one metric per device; sizeable cardinality, off by
	// default).
	DeviceHistograms bool
	// Frag, when non-nil, receives an allocation-quality scan of every
	// space (RAID groups, volumes, object pool) at each CP boundary. The
	// scans are purely observational — no modeled cost is charged.
	Frag *fragscan.Recorder
	// FragEvery scans every Nth CP (≤1 = every CP). On-demand scans via
	// System.FragScan are unaffected.
	FragEvery int
	// TSDB, when non-nil, receives a fixed-memory time series: every
	// non-volatile metric sampled at each CP boundary under
	// "<Name>.<metric>", plus per-space fragmentation deciles when the CP
	// fragscan hook runs. Timestamps are the modeled clock, so the stored
	// series are byte-identical at any worker width.
	TSDB *tsdb.Store
	// Picks, when non-nil, receives one PickRecord per AA pick into
	// bounded per-space rings named like fragscan's streams
	// ("<Name>.rg<N>", "<Name>.vol.<v>", "<Name>.pool").
	Picks *picks.Recorder
	// Live, when non-nil, receives the registry's full snapshot under Name
	// at every CP boundary. The snapshot is taken on the CP thread, where
	// the read-through closures are race-free, so HTTP handlers can serve
	// it while the next CP is in flight (see obs.LatestHandler).
	Live *obs.Latest
	// Watchdogs enables the per-CP online invariant monitors (free-block
	// conservation, rotating cached-score spot checks, pick-quality
	// floors; see watchdog.go). Violations bump watchdog.* counters.
	Watchdogs bool
	// WatchdogSample is the rotating per-space sample size of the
	// cached-score spot check (≤0 selects 8). Larger values trade CP-time
	// popcounts for faster full coverage.
	WatchdogSample int
	// StrictWatchdogs promotes any watchdog violation to a panic — tests
	// use it to turn the monitors into hard failures.
	StrictWatchdogs bool
	// OpTrace, when non-nil, samples read/write ops into request-scoped
	// span trees: deterministic trace IDs, allocator-pick annotations, and
	// per-stage CP cost attribution that reconciles exactly with the
	// vol.<name>.lat_ns histograms. Rings are named like the pick streams
	// ("<Name>.vol.<v>"); per-stage accumulators surface as
	// vol.<name>.attr.<stage>_ns counters (and hence tsdb series). When SLO
	// is also armed, transitions carry worst-bucket trace exemplars.
	OpTrace *optrace.Recorder
	// SLO, when non-nil together with TSDB, evaluates the set's spec
	// portfolio for this system at every CP boundary: error budgets and
	// burn rates are computed from the TSDB series over modeled-clock
	// windows, and the resulting alert states are written back as
	// "<Name>.slo.*" series. Scalar totals surface as slo.* metrics. The
	// set may be shared across systems (arms); totals then aggregate.
	SLO *slo.Set
	// Control, when non-nil together with TSDB, arms the closed-loop
	// controller for this system: the policy portfolio is evaluated at
	// every CP boundary on the modeled clock, immediately after the SLO
	// engine, reading "<Name>.*" series (including the slo.* alert states
	// written that same CP) and actuating the System's bounded knob
	// surface (delayed-free budget, alloc batch, fragscan stride, scrub
	// kicks). Decisions land in a bounded provenance ring; per-knob values
	// are written back as "<Name>.control.knob.*" series and scalar totals
	// surface as control.* metrics. The set may be shared across systems
	// (arms); totals then aggregate. Clean runs with the default portfolio
	// actuate nothing and stay byte-identical to Control=nil.
	Control *control.Set
}

func (o *ObsOptions) normalized() ObsOptions {
	var out ObsOptions
	if o != nil {
		out = *o
	}
	if out.Name == "" {
		out.Name = "wafl"
	}
	return out
}

// poolShard is the trace shard index of the object pool's agnostic space,
// kept clear of volume indexes (volumes may be added after the pool).
const poolShard = 1 << 20

// cpTotals accumulates the CPStats of every CommitCP — the single write
// point the cp.* registry metrics read through.
type cpTotals struct {
	cps         uint64
	pagesAgg    uint64
	pagesVols   uint64
	deviceBusy  time.Duration
	flushWall   time.Duration
	topAABlocks uint64
}

func (t *cpTotals) add(st CPStats) {
	t.cps++
	t.pagesAgg += uint64(st.MetafilePagesAggregate)
	t.pagesVols += uint64(st.MetafilePagesVols)
	t.deviceBusy += st.DeviceBusy
	t.flushWall += st.FlushWall
	t.topAABlocks += uint64(st.TopAABlocks)
}

// mountTotals likewise accumulates MountStats across Remounts.
type mountTotals struct {
	mounts           uint64
	topAABlockReads  uint64
	bitmapPagesRead  uint64
	cacheInserts     uint64
	fallbacks        uint64
	reconstructed    uint64
	missingFallbacks uint64
	staleFallbacks   uint64
	tornFallbacks    uint64
	damageFallbacks  uint64
}

func (t *mountTotals) add(ms MountStats) {
	t.mounts++
	t.topAABlockReads += ms.TopAABlockReads
	t.bitmapPagesRead += ms.BitmapPagesRead
	t.cacheInserts += ms.CacheInserts
	t.fallbacks += uint64(ms.Fallbacks)
	t.reconstructed += uint64(ms.Reconstructed)
	t.missingFallbacks += uint64(ms.MissingFallbacks)
	t.staleFallbacks += uint64(ms.StaleFallbacks)
	t.tornFallbacks += uint64(ms.TornFallbacks)
	t.damageFallbacks += uint64(ms.DamageFallbacks)
}

// scrubTotals accumulates ScrubReport outcomes across Scrub calls.
type scrubTotals struct {
	scrubs    uint64
	checked   uint64
	divergent uint64
}

func (t *scrubTotals) add(r ScrubReport) {
	t.scrubs++
	t.checked += uint64(len(r.Spaces))
	t.divergent += uint64(len(r.Divergent()))
}

// initObs builds the aggregate's private registry, tracer handle, and pool
// instruments, and registers the aggregate-wide metric views. Called once
// from NewAggregate after the bitmap exists.
func (ag *Aggregate) initObs() {
	o := ag.tun.Obs.normalized()
	ag.obsOpts = o
	ag.reg = obs.NewRegistry()
	if o.Export != nil {
		ag.reg.MirrorTo(o.Export, o.Name+".")
	}
	ag.st = o.Tracer.Sys(o.Name)

	ag.scoredAAs = ag.reg.Counter("aa.scored")
	ag.pobs = &parallel.Obs{
		Fanouts:   ag.reg.Counter("parallel.fanouts"),
		Items:     ag.reg.Counter("parallel.items"),
		Width:     ag.reg.Histogram("parallel.fanout_width", obs.FanoutBuckets),
		Occupancy: ag.reg.VolatileCounter("parallel.occupancy"),
	}

	ag.reg.CounterFunc("cp.count", func() uint64 { return ag.cpTot.cps })
	ag.reg.CounterFunc("cp.metafile_pages_agg", func() uint64 { return ag.cpTot.pagesAgg })
	ag.reg.CounterFunc("cp.metafile_pages_vols", func() uint64 { return ag.cpTot.pagesVols })
	ag.reg.CounterFunc("cp.device_busy_ns", func() uint64 { return uint64(ag.cpTot.deviceBusy) })
	ag.reg.VolatileCounterFunc("cp.flush_wall_ns", func() uint64 { return uint64(ag.cpTot.flushWall) })
	ag.reg.CounterFunc("cp.topaa_blocks", func() uint64 { return ag.cpTot.topAABlocks })

	ag.reg.CounterFunc("mount.count", func() uint64 { return ag.mountTot.mounts })
	ag.reg.CounterFunc("mount.topaa_block_reads", func() uint64 { return ag.mountTot.topAABlockReads })
	ag.reg.CounterFunc("mount.bitmap_pages_read", func() uint64 { return ag.mountTot.bitmapPagesRead })
	ag.reg.CounterFunc("mount.cache_inserts", func() uint64 { return ag.mountTot.cacheInserts })
	ag.reg.CounterFunc("mount.fallbacks", func() uint64 { return ag.mountTot.fallbacks })
	ag.reg.CounterFunc("mount.reconstructed", func() uint64 { return ag.mountTot.reconstructed })
	ag.reg.CounterFunc("mount.missing_fallbacks", func() uint64 { return ag.mountTot.missingFallbacks })
	ag.reg.CounterFunc("mount.stale_fallbacks", func() uint64 { return ag.mountTot.staleFallbacks })
	ag.reg.CounterFunc("mount.torn_fallbacks", func() uint64 { return ag.mountTot.tornFallbacks })
	ag.reg.CounterFunc("mount.damage_fallbacks", func() uint64 { return ag.mountTot.damageFallbacks })

	ag.initWatchdogs(o)

	// Pick-provenance views: read through the rings registered by
	// registerGroupObs/registerSpaceObs (the slice is filled after initObs
	// returns; the closures evaluate at snapshot time).
	ag.reg.CounterFunc("picks.recorded", func() uint64 {
		var n uint64
		for _, r := range ag.pickRings {
			n += r.Recorded()
		}
		return n
	})
	ag.reg.CounterFunc("picks.dropped", func() uint64 {
		var n uint64
		for _, r := range ag.pickRings {
			n += r.Dropped()
		}
		return n
	})
	for _, reason := range picks.Reasons() {
		reason := reason
		ag.reg.CounterFunc("picks."+string(reason), func() uint64 {
			var n uint64
			for _, r := range ag.pickRings {
				n += r.ReasonCount(reason)
			}
			return n
		})
	}

	// Op-trace views: read through this arm's rings (filled by
	// registerSpaceObs), registered unconditionally like slo.* so the
	// metric set does not depend on arming.
	ag.reg.CounterFunc("optrace.sampled_ops", func() uint64 {
		var n uint64
		for _, r := range ag.otRings {
			n += r.Sampled()
		}
		return n
	})
	ag.reg.CounterFunc("optrace.slow_sampled", func() uint64 {
		var n uint64
		for _, r := range ag.otRings {
			n += r.SlowSampled()
		}
		return n
	})
	ag.reg.CounterFunc("optrace.dropped", func() uint64 {
		var n uint64
		for _, r := range ag.otRings {
			n += r.Dropped()
		}
		return n
	})

	ag.reg.CounterFunc("scrub.count", func() uint64 { return ag.scrubTot.scrubs })
	ag.reg.CounterFunc("scrub.spaces_checked", func() uint64 { return ag.scrubTot.checked })
	ag.reg.CounterFunc("scrub.divergent", func() uint64 { return ag.scrubTot.divergent })

	ag.reg.CounterFunc("topaa.block_reads", func() uint64 { r, _ := ag.store.Stats(); return r })
	ag.reg.CounterFunc("topaa.block_writes", func() uint64 { _, w := ag.store.Stats(); return w })
	ag.reg.CounterFunc("topaa.reconstructions", func() uint64 { return ag.store.Recovery().Reconstructions })
	ag.reg.CounterFunc("topaa.save_errors", func() uint64 { return ag.store.Recovery().SaveErrors })
	ag.reg.CounterFunc("topaa.stale_loads", func() uint64 { return ag.store.Recovery().StaleLoads })
	ag.reg.CounterFunc("topaa.torn_loads", func() uint64 { return ag.store.Recovery().TornLoads })
	ag.reg.CounterFunc("topaa.damaged_loads", func() uint64 { return ag.store.Recovery().DamagedLoads })
	ag.reg.CounterFunc("faults.crashes", func() uint64 { return ag.faults.Crashes() })

	// Modeled pick wall at the configured worker width. Volatile: like
	// cp.flush_wall_ns it shrinks as Workers grows, while every alloc.*
	// input underneath it stays worker-invariant.
	ag.reg.VolatileCounterFunc("alloc.pick_wall_ns", func() uint64 {
		return uint64(ag.AllocPickWall(ag.workers()))
	})

	// SLO engine: System.CP calls Evaluate after the tsdb Sample for the
	// same CP, so CSV/live rows see the slo.* counters with a one-CP lag.
	// The counters are registered unconditionally (nil engine reads 0) so
	// the metric set does not depend on arming.
	if o.SLO != nil && o.TSDB != nil {
		ag.sloEng = o.SLO.Engine(o.Name, o.TSDB)
		if o.OpTrace != nil {
			// SLO transitions link to a representative sampled trace from
			// the transitioning space's worst latency bucket.
			ag.sloEng.SetExemplarSource(o.OpTrace)
		}
	}
	ag.reg.CounterFunc("slo.evaluations", func() uint64 { return ag.sloEng.Evaluations() })
	ag.reg.CounterFunc("slo.warns", func() uint64 { return ag.sloEng.Warns() })
	ag.reg.CounterFunc("slo.pages", func() uint64 { return ag.sloEng.Pages() })
	ag.reg.CounterFunc("slo.transitions", func() uint64 { return ag.sloEng.Transitions() })

	// Closed-loop controller scalars. The engine itself is armed from
	// NewSystem (it actuates the System's knob surface, which does not
	// exist yet here); these views are registered unconditionally like the
	// slo.* block above — a nil engine reads 0.
	ag.reg.CounterFunc("control.evaluations", func() uint64 { return ag.ctl.Evaluations() })
	ag.reg.CounterFunc("control.actuations", func() uint64 { return ag.ctl.Actuations() })
	ag.reg.CounterFunc("control.suppressed", func() uint64 { return ag.ctl.Suppressed() })
	ag.reg.CounterFunc("control.transitions", func() uint64 { return ag.ctl.Transitions() })

	ag.reg.CounterFunc("agg.bitmap.pages_dirtied", func() uint64 { return ag.bm.Stats().PagesDirtied })
	ag.reg.CounterFunc("agg.bitmap.pages_flushed", func() uint64 { return ag.bm.Stats().PagesFlushed })
	ag.reg.CounterFunc("agg.bitmap.page_reads", func() uint64 { return ag.bm.Stats().PageReads })
	ag.reg.GaugeFunc("agg.used_blocks", func() int64 { return int64(ag.bm.Used()) })
	ag.reg.GaugeFunc("agg.blocks", func() int64 { return int64(ag.bm.Size()) })
}

// Registry returns the aggregate's metric registry.
func (ag *Aggregate) Registry() *obs.Registry { return ag.reg }

// Registry returns the system's metric registry.
func (s *System) Registry() *obs.Registry { return s.Agg.reg }

// registerGroupObs exposes one RAID group's counters under rg<N>.* and
// hands the group its tracer handle. Heap metrics read through the current
// cache object, so they reset when a remount rebuilds the cache (exporters
// treat that as a counter reset).
func (ag *Aggregate) registerGroupObs(g *Group) {
	g.st = ag.st
	g.scored = ag.scoredAAs
	if rec := ag.obsOpts.Picks; rec != nil {
		g.pr = rec.Space(ag.obsOpts.Name + "." + topaaGroupKey(g.Index))
		ag.pickRings = append(ag.pickRings, g.pr)
		g.cpNow = &ag.cpOrd
	}
	if ag.wd.enabled {
		g.wd = &ag.wd
	}
	p := fmt.Sprintf("rg%d.", g.Index)
	ag.reg.CounterFunc(p+"picks", func() uint64 { return g.pickedCount })
	ag.reg.CounterFunc(p+"cache_ops", func() uint64 { return g.cacheOps })
	ag.reg.CounterFunc(p+"azcs.seq_writes", func() uint64 { return g.azcsSeqWrites })
	ag.reg.CounterFunc(p+"azcs.random_writes", func() uint64 { return g.azcsRandomWrites })
	ag.reg.CounterFunc(p+"device_busy_ns", func() uint64 { return uint64(g.deviceBusy) })
	ag.reg.CounterFunc(p+"heap.updates", func() uint64 { return g.cache.Metrics().Updates })
	ag.reg.CounterFunc(p+"heap.pops", func() uint64 { return g.cache.Metrics().Pops })
	ag.reg.CounterFunc(p+"heap.inserts", func() uint64 { return g.cache.Metrics().Inserts })
	ag.reg.CounterFunc(p+"heap.swaps", func() uint64 { return g.cache.Metrics().Swaps })
	ag.reg.GaugeFunc(p+"heap.size", func() int64 { return int64(g.cache.Len()) })
	ag.registerAllocObs(p, g.as)
	if ag.obsOpts.DeviceHistograms {
		for d, dev := range g.devices {
			if bo, ok := dev.(interface{ SetBusyHist(*obs.Histogram) }); ok {
				bo.SetBusyHist(ag.reg.Histogram(fmt.Sprintf("rg%d.dev%d.busy_ns", g.Index, d), obs.DurationBuckets))
			}
		}
		if bo, ok := g.parity.(interface{ SetBusyHist(*obs.Histogram) }); ok {
			bo.SetBusyHist(ag.reg.Histogram(fmt.Sprintf("rg%d.parity.busy_ns", g.Index), obs.DurationBuckets))
		}
	}
}

// registerSpaceObs exposes one agnostic space's counters under the given
// prefix ("vol.<name>." or "pool.") and hands it its tracer handle, trace
// shard, and scoring instruments. HBPS metrics read through the current
// cache object (reset on remount, like the heap metrics).
func (ag *Aggregate) registerSpaceObs(sp *agnosticSpace, prefix string, shard int) {
	sp.st = ag.st
	sp.shard = shard
	sp.pobs = ag.pobs
	sp.scored = ag.scoredAAs
	if rec := ag.obsOpts.Picks; rec != nil {
		sp.pr = rec.Space(ag.obsOpts.Name + "." + strings.TrimSuffix(prefix, "."))
		ag.pickRings = append(ag.pickRings, sp.pr)
		sp.cpNow = &ag.cpOrd
	}
	if ag.wd.enabled {
		sp.wd = &ag.wd
	}
	if strings.HasPrefix(prefix, "vol.") {
		// Per-volume modeled op-latency histogram — the latency SLI. Fixed
		// 1-2-5 buckets so the tsdb can keep cumulative per-bucket counter
		// series (Config.HistBuckets) for windowed burn-rate queries.
		sp.lat = ag.reg.Histogram(prefix+"lat_ns", obs.LatencyBuckets)
		// Per-stage latency attribution: always-on accumulators whose sum
		// equals the histogram's observed total exactly (see System.CP and
		// System.Read), surfaced as vol.<name>.attr.<stage>_ns counters and
		// hence tsdb series — the "where do the nanoseconds go" profile.
		for _, stage := range optrace.Stages() {
			stage := stage
			ag.reg.CounterFunc(prefix+"attr."+stage.String()+"_ns", func() uint64 {
				return sp.attr[stage]
			})
		}
		if rec := ag.obsOpts.OpTrace; rec != nil {
			sp.tr = rec.Space(ag.obsOpts.Name + "." + strings.TrimSuffix(prefix, "."))
			ag.otRings = append(ag.otRings, sp.tr)
		}
	}
	ag.reg.CounterFunc(prefix+"picks", func() uint64 { return sp.pickedCount })
	ag.reg.CounterFunc(prefix+"cache_ops", func() uint64 { return sp.cacheOps })
	ag.reg.CounterFunc(prefix+"replenishes", func() uint64 { return sp.replenishes })
	ag.reg.CounterFunc(prefix+"scanned_blocks", func() uint64 { return sp.scannedBlocks })
	ag.reg.CounterFunc(prefix+"allocated_blocks", func() uint64 { return sp.allocatedBlocks })
	ag.reg.CounterFunc(prefix+"hbps.updates", func() uint64 { return sp.cache.Metrics().Updates })
	ag.reg.CounterFunc(prefix+"hbps.bin_migrations", func() uint64 { return sp.cache.Metrics().BinMigrations })
	ag.reg.CounterFunc(prefix+"hbps.evictions", func() uint64 { return sp.cache.Metrics().Evictions })
	ag.reg.CounterFunc(prefix+"hbps.pops", func() uint64 { return sp.cache.Metrics().Pops })
	ag.registerAllocObs(prefix, sp.as)
	if sp.delayed != nil {
		// Pending spans both generations under pipelined CPs: the open queue
		// plus whatever the sealed queue's budget has not yet reclaimed.
		ag.reg.GaugeFunc(prefix+"delayed.pending", func() int64 {
			n := int64(sp.delayed.count)
			if sp.delayedSealed != nil {
				n += int64(sp.delayedSealed.count)
			}
			return n
		})
		ag.reg.CounterFunc(prefix+"delayed.hbps_pops", func() uint64 { return sp.delayed.cache.Metrics().Pops })
		ag.reg.CounterFunc(prefix+"delayed.hbps_replenishes", func() uint64 { return sp.delayed.cache.Metrics().Replenishes })
	}
}

// registerAllocObs exposes one space's striped-allocator counters under
// <prefix>alloc.*. All are worker-invariant (the busy vectors are modeled on
// the CP thread); the classic path keeps them registered but near-zero —
// pick_busy_ns then equals picks × CPUPerCacheOp on one vector.
func (ag *Aggregate) registerAllocObs(prefix string, as *allocState) {
	ag.reg.CounterFunc(prefix+"alloc.picks", func() uint64 { return as.picks })
	ag.reg.CounterFunc(prefix+"alloc.local_picks", func() uint64 { return as.localPicks })
	ag.reg.CounterFunc(prefix+"alloc.refill_stalls", func() uint64 { return as.stalls })
	ag.reg.CounterFunc(prefix+"alloc.staged_entries", func() uint64 { return as.staged })
	ag.reg.CounterFunc(prefix+"alloc.dup_skips", func() uint64 { return as.dupSkips })
	ag.reg.CounterFunc(prefix+"alloc.ledger_folds", func() uint64 { return as.folds })
	ag.reg.CounterFunc(prefix+"alloc.pick_busy_ns", func() uint64 { return uint64(as.busyTotal()) })
	ag.reg.CounterFunc(prefix+"alloc.refill_busy_ns", func() uint64 { return uint64(as.refillBusy) })
	ag.reg.CounterFunc(prefix+"alloc.stall_busy_ns", func() uint64 { return uint64(as.stallBusy) })
}

// registerSystemObs exposes the System's cumulative counters under wafl.*.
// These are the derived views CountersFromSnapshot reconstructs.
func (s *System) registerSystemObs() {
	reg := s.Agg.reg
	reg.CounterFunc("wafl.ops", func() uint64 { return s.c.Ops })
	reg.CounterFunc("wafl.mod_ops", func() uint64 { return s.c.ModOps })
	reg.CounterFunc("wafl.cps", func() uint64 { return s.c.CPs })
	reg.CounterFunc("wafl.cpu_ns", func() uint64 { return uint64(s.c.CPUTime) })
	reg.CounterFunc("wafl.cache_cpu_ns", func() uint64 { return uint64(s.c.CacheCPUTime) })
	reg.CounterFunc("wafl.metafile_pages", func() uint64 { return s.c.MetafilePages })
	reg.CounterFunc("wafl.topaa_blocks", func() uint64 { return s.c.TopAABlocks })
	reg.CounterFunc("wafl.device_busy_ns", func() uint64 { return uint64(s.c.DeviceBusy) })
	reg.CounterFunc("wafl.blocks_written", func() uint64 { return s.c.BlocksWritten })
	reg.CounterFunc("wafl.blocks_freed", func() uint64 { return s.c.BlocksFreed })
	reg.VolatileCounterFunc("wafl.cp_flush_wall_ns", func() uint64 { return uint64(s.cpWall) })
	// Pipelined-CP accounting. Generations is worker-invariant; the wall
	// accumulators are modeled makespans and vary with Workers, so they are
	// volatile (excluded from StableSnapshot) like cp_flush_wall_ns.
	reg.CounterFunc("cp.pipeline.generations", func() uint64 { return s.pipe.generations })
	reg.VolatileCounterFunc("cp.pipeline.alloc_wall_ns", func() uint64 { return uint64(s.pipe.allocWall) })
	reg.VolatileCounterFunc("cp.pipeline.flush_wall_ns", func() uint64 { return uint64(s.pipe.flushWall) })
	reg.VolatileCounterFunc("cp.pipeline.pipelined_wall_ns", func() uint64 { return uint64(s.pipe.pipedWall) })
	reg.VolatileCounterFunc("cp.pipeline.serial_wall_ns", func() uint64 { return uint64(s.pipe.serialWall) })
}

// CountersFromSnapshot reconstructs the cumulative Counters from a registry
// snapshot. The derived-view equivalence test asserts this equals
// System.Counters() exactly — the registry and the struct can never drift
// because both read the same storage.
func CountersFromSnapshot(snap obs.Snapshot) Counters {
	return Counters{
		Ops:           snap.Counter("wafl.ops"),
		ModOps:        snap.Counter("wafl.mod_ops"),
		CPs:           snap.Counter("wafl.cps"),
		CPUTime:       time.Duration(snap.Counter("wafl.cpu_ns")),
		CacheCPUTime:  time.Duration(snap.Counter("wafl.cache_cpu_ns")),
		MetafilePages: snap.Counter("wafl.metafile_pages"),
		TopAABlocks:   snap.Counter("wafl.topaa_blocks"),
		DeviceBusy:    time.Duration(snap.Counter("wafl.device_busy_ns")),
		BlocksWritten: snap.Counter("wafl.blocks_written"),
		BlocksFreed:   snap.Counter("wafl.blocks_freed"),
	}
}

// CPStatsFromRegistry reconstructs the cumulative CP totals from the
// registry — the sum of every CPStats CommitCP has returned.
func CPStatsFromRegistry(reg *obs.Registry) CPStats {
	snap := reg.Snapshot()
	return CPStats{
		MetafilePagesAggregate: int(snap.Counter("cp.metafile_pages_agg")),
		MetafilePagesVols:      int(snap.Counter("cp.metafile_pages_vols")),
		DeviceBusy:             time.Duration(snap.Counter("cp.device_busy_ns")),
		FlushWall:              time.Duration(snap.Counter("cp.flush_wall_ns")),
		TopAABlocks:            int(snap.Counter("cp.topaa_blocks")),
	}
}
