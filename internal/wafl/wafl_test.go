package wafl

import (
	"math/rand"
	"testing"

	"waflfs/internal/aa"
	"waflfs/internal/block"
)

// testSpecs returns a small all-HDD aggregate: 2 groups x (3+1) x 64k
// blocks/device with 256-stripe AAs (so each group has 256 AAs of 768
// blocks).
func testSpecs() []GroupSpec {
	return []GroupSpec{
		{DataDevices: 3, ParityDevices: 1, BlocksPerDevice: 1 << 16, Media: aa.MediaHDD, StripesPerAA: 256},
		{DataDevices: 3, ParityDevices: 1, BlocksPerDevice: 1 << 16, Media: aa.MediaHDD, StripesPerAA: 256},
	}
}

func testSystem(t *testing.T, tun Tunables) *System {
	t.Helper()
	tun.CPEveryOps = 64
	vols := []VolSpec{{Name: "vol0", Blocks: 4 * aa.RAIDAgnosticBlocks}}
	return NewSystem(testSpecs(), vols, tun, 1)
}

// checkConsistency verifies the cross-module invariants that must hold at
// every CP boundary.
func checkConsistency(t *testing.T, s *System) {
	t.Helper()
	ag := s.Agg
	// Aggregate used == sum of LUN-held physical blocks.
	var held uint64
	for _, v := range ag.vols {
		var volHeld uint64
		for _, l := range v.luns {
			for _, p := range l.blocks {
				if p.phys != block.InvalidVBN {
					held++
					volHeld++
					if !ag.bm.Test(p.phys) {
						t.Fatalf("LUN holds unallocated physical %v", p.phys)
					}
					if !v.bm.Test(p.virt) {
						t.Fatalf("LUN holds unallocated virtual %v", p.virt)
					}
				}
			}
		}
		if v.bm.Used() != volHeld {
			t.Fatalf("vol %s bitmap used %d, LUNs hold %d", v.Name, v.bm.Used(), volHeld)
		}
	}
	if ag.bm.Used() != held {
		t.Fatalf("aggregate used %d, LUNs hold %d", ag.bm.Used(), held)
	}
	// Heap caches agree with bitmaps for all settled AAs.
	for _, g := range ag.groups {
		if !g.cacheEnabled || g.seedOnly {
			continue
		}
		if err := g.cache.CheckInvariants(); err != nil {
			t.Fatalf("group %d heap: %v", g.Index, err)
		}
		for id := 0; id < g.topo.NumAAs(); id++ {
			aid := aa.ID(id)
			if g.curValid && aid == g.curAA {
				continue
			}
			if !g.cache.Tracked(aid) {
				if g.sh != nil && g.sh.Holds(aid) {
					// Staged in a shard queue at its frozen score; the scrub
					// verifies it against the bitmap net of pending deltas.
					continue
				}
				t.Fatalf("group %d AA %d untracked at CP boundary", g.Index, id)
			}
			want := aa.Score(g.topo, ag.bm, aid)
			if got := g.cache.Score(aid); got != want {
				t.Fatalf("group %d AA %d cached score %d, bitmap %d", g.Index, id, got, want)
			}
		}
	}
	// HBPS histograms agree with the volume bitmaps.
	for _, v := range ag.vols {
		sp := v.space
		if !sp.cacheEnabled {
			continue
		}
		if err := sp.cache.CheckInvariants(); err != nil {
			t.Fatalf("vol %s hbps: %v", v.Name, err)
		}
		census := make([]uint32, sp.cache.NumBins())
		for id := 0; id < sp.topo.NumAAs(); id++ {
			census[sp.cache.Bin(sp.aaScore(aa.ID(id)))]++
		}
		for b := range census {
			if sp.cache.BinCount(b) != census[b] {
				t.Fatalf("vol %s bin %d count %d, census %d", v.Name, b, sp.cache.BinCount(b), census[b])
			}
		}
	}
}

func TestBasicWriteCP(t *testing.T) {
	s := testSystem(t, DefaultTunables())
	vol := s.Agg.Vols()[0]
	lun := vol.CreateLUN("lun0", 10000)

	for lba := uint64(0); lba < 100; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	for lba := uint64(0); lba < 100; lba++ {
		if !lun.Written(lba) {
			t.Fatalf("lba %d unwritten after CP", lba)
		}
	}
	if lun.Written(100) {
		t.Fatal("lba 100 spuriously written")
	}
	if s.Agg.bm.Used() != 100 || vol.bm.Used() != 100 {
		t.Fatalf("used: agg=%d vol=%d", s.Agg.bm.Used(), vol.bm.Used())
	}
	checkConsistency(t, s)
	c := s.Counters()
	if c.BlocksWritten != 100 || c.BlocksFreed != 0 {
		t.Fatalf("counters = %+v", c)
	}
	if c.CPs < 1 {
		t.Fatal("no CP recorded")
	}
}

func TestOverwriteIsCOW(t *testing.T) {
	s := testSystem(t, DefaultTunables())
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 1000)
	s.Write(lun, 5, 1)
	s.CP()
	firstPhys, firstVirt := lun.Phys(5), lun.Virt(5)
	s.Write(lun, 5, 1)
	s.CP()
	if lun.Phys(5) == firstPhys || lun.Virt(5) == firstVirt {
		t.Fatal("overwrite reused the same VBNs (not copy-on-write)")
	}
	if s.Agg.bm.Test(firstPhys) {
		t.Fatal("old physical block not freed")
	}
	if s.Agg.Vols()[0].bm.Test(firstVirt) {
		t.Fatal("old virtual block not freed")
	}
	if s.Counters().BlocksFreed != 1 {
		t.Fatalf("freed = %d", s.Counters().BlocksFreed)
	}
	checkConsistency(t, s)
}

func TestCPCoalescesOverwrites(t *testing.T) {
	s := testSystem(t, DefaultTunables())
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 1000)
	// 10 writes to the same LBA within one CP allocate one block.
	for i := 0; i < 10; i++ {
		s.Write(lun, 7, 1)
	}
	s.CP()
	if s.Counters().BlocksWritten != 1 {
		t.Fatalf("blocks written = %d, want 1 (coalesced)", s.Counters().BlocksWritten)
	}
}

func TestAutomaticCPTrigger(t *testing.T) {
	tun := DefaultTunables()
	s := testSystem(t, tun) // CPEveryOps = 64
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 100000)
	for lba := uint64(0); lba < 200; lba++ {
		s.Write(lun, lba, 1)
	}
	if s.Counters().CPs < 3 {
		t.Fatalf("CPs = %d, want >= 3 from op-count trigger", s.Counters().CPs)
	}
}

func TestWriteBeyondLUNPanics(t *testing.T) {
	s := testSystem(t, DefaultTunables())
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 10)
	for name, f := range map[string]func(){
		"write": func() { s.Write(lun, 9, 2) },
		"read":  func() { s.Read(lun, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s beyond LUN did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestReadChargesDevices(t *testing.T) {
	s := testSystem(t, DefaultTunables())
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 1000)
	s.Write(lun, 0, 1)
	s.CP()
	before := s.Counters().DeviceBusy
	s.Read(lun, 0, 1)
	if s.Counters().DeviceBusy <= before {
		t.Fatal("read did not charge device time")
	}
	// Reading an unwritten block touches no device.
	before = s.Counters().DeviceBusy
	s.Read(lun, 500, 1)
	if s.Counters().DeviceBusy != before {
		t.Fatal("unwritten read charged device time")
	}
}

func TestRandomChurnKeepsInvariants(t *testing.T) {
	s := testSystem(t, DefaultTunables())
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 20000)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		s.Write(lun, uint64(rng.Intn(20000)), 1+rng.Intn(2))
	}
	s.CP()
	checkConsistency(t, s)
	// Free-space totals: writes minus frees equals used.
	c := s.Counters()
	if c.BlocksWritten-c.BlocksFreed != s.Agg.bm.Used() {
		t.Fatalf("written %d - freed %d != used %d", c.BlocksWritten, c.BlocksFreed, s.Agg.bm.Used())
	}
}

func TestChurnWithCachesDisabled(t *testing.T) {
	tun := Tunables{AggregateCacheEnabled: false, VolCacheEnabled: false}
	s := testSystem(t, tun)
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 20000)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10000; i++ {
		s.Write(lun, uint64(rng.Intn(20000)), 1)
	}
	s.CP()
	// Bitmap/LUN consistency still holds (cache checks skip disabled caches).
	checkConsistency(t, s)
	if s.Agg.bm.Used() == 0 {
		t.Fatal("nothing allocated")
	}
}

func TestRoundRobinSpreadsAcrossGroups(t *testing.T) {
	s := testSystem(t, DefaultTunables())
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 100000)
	for lba := uint64(0); lba < 60000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	b0 := s.Agg.groups[0].raidStats.BlocksWritten
	b1 := s.Agg.groups[1].raidStats.BlocksWritten
	if b0 == 0 || b1 == 0 {
		t.Fatalf("group block counts: %d %d", b0, b1)
	}
	ratio := float64(b0) / float64(b1)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("uneven spread across identical groups: %d vs %d", b0, b1)
	}
}

func TestFullStripesOnFreshSystem(t *testing.T) {
	// Sequential writes on an unaged system should produce overwhelmingly
	// full stripe writes. Use production-sized CP batches: the only
	// partial stripes should be the one at each CP boundary per group.
	tun := DefaultTunables()
	tun.CPEveryOps = 2048
	vols := []VolSpec{{Name: "vol0", Blocks: 4 * aa.RAIDAgnosticBlocks}}
	s := NewSystem(testSpecs(), vols, tun, 1)
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 100000)
	for lba := uint64(0); lba < 30000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	for _, g := range s.Agg.groups {
		st := g.raidStats
		if st.FullStripeFraction() < 0.95 {
			t.Fatalf("group %d full-stripe fraction %.3f on fresh system",
				g.Index, st.FullStripeFraction())
		}
		if st.ParityReadBlocks > st.BlocksWritten/10 {
			t.Fatalf("group %d parity reads %d excessive", g.Index, st.ParityReadBlocks)
		}
	}
}

func TestCacheGuidesToEmptierAAs(t *testing.T) {
	// Age a system, then compare the average picked-AA free fraction with
	// the cache on vs off. This is the mechanism behind Fig. 6: 61% free
	// picks with the cache vs 46% (the aggregate average) without.
	age := func(tun Tunables) (*System, *LUN) {
		tun.CPEveryOps = 256
		s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 16 * aa.RAIDAgnosticBlocks}}, tun, 3)
		lun := s.Agg.Vols()[0].CreateLUN("lun0", 200000)
		// Fill ~50% of the aggregate then churn.
		for lba := uint64(0); lba < 200000; lba++ {
			s.Write(lun, lba, 1)
		}
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 300000; i++ {
			s.Write(lun, uint64(rng.Intn(200000)), 1)
		}
		s.CP()
		return s, lun
	}

	measure := func(tun Tunables) float64 {
		s, lun := age(tun)
		for _, g := range s.Agg.groups {
			g.ResetMetrics()
		}
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 50000; i++ {
			s.Write(lun, uint64(rng.Intn(200000)), 1)
		}
		s.CP()
		var sum float64
		var n int
		for _, g := range s.Agg.groups {
			m := g.Metrics()
			if m.PickedScoreFraction > 0 {
				sum += m.PickedScoreFraction
				n++
			}
		}
		return sum / float64(n)
	}

	on := measure(DefaultTunables())
	off := measure(Tunables{AggregateCacheEnabled: false, VolCacheEnabled: true})
	if on <= off {
		t.Fatalf("cache-on picked fraction %.3f <= cache-off %.3f", on, off)
	}
	t.Logf("picked free fraction: cache on %.3f, off %.3f", on, off)
}

func TestFragmentationBiasDirectsWritesToEmptierGroup(t *testing.T) {
	// Age only group 0, then verify group 1 receives more blocks — the
	// §4.2 behaviour.
	tun := DefaultTunables()
	tun.MinAAScoreFraction = 0.05
	tun.CPEveryOps = 256
	s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 16 * aa.RAIDAgnosticBlocks}}, tun, 9)
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 150000)

	// Phase 1: fill most of group 0's share by writing while group 1 is
	// "absent" — simulate by writing everything, then freeing all blocks
	// that landed in group 1 and churning group 0.
	for lba := uint64(0); lba < 150000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	g1range := s.Agg.groups[1].geo.VBNRange()
	rng := rand.New(rand.NewSource(10))
	// Free every LUN block on group 1 (fresh group) and every second block
	// on group 0 randomly (fragmenting it).
	vol := s.Agg.Vols()[0]
	for lba := uint64(0); lba < 150000; lba++ {
		p := lun.Phys(lba)
		if p == block.InvalidVBN {
			continue
		}
		if g1range.Contains(p) || rng.Intn(2) == 0 {
			vol.space.free(lun.Virt(lba))
			s.Agg.FreePhysical(p)
			lun.blocks[lba] = blockPtr{virt: block.InvalidVBN, phys: block.InvalidVBN}
		}
	}
	s.CP()
	checkConsistency(t, s)

	for _, g := range s.Agg.groups {
		g.ResetMetrics()
	}
	pre0 := s.Agg.groups[0].raidStats.BlocksWritten
	pre1 := s.Agg.groups[1].raidStats.BlocksWritten

	// Phase 2: new writes should be biased toward the fresh group 1.
	for i := 0; i < 40000; i++ {
		s.Write(lun, uint64(rng.Intn(150000)), 1)
	}
	s.CP()
	d0 := s.Agg.groups[0].raidStats.BlocksWritten - pre0
	d1 := s.Agg.groups[1].raidStats.BlocksWritten - pre1
	if d1 <= d0 {
		t.Fatalf("fresh group got %d blocks, aged group %d — no bias", d1, d0)
	}
	t.Logf("blocks: aged group %d, fresh group %d", d0, d1)
}
