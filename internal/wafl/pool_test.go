package wafl

import (
	"math/rand"
	"testing"

	"waflfs/internal/aa"
	"waflfs/internal/block"
)

func pooledSystem(t *testing.T) (*System, *LUN, *Pool) {
	t.Helper()
	tun := DefaultTunables()
	tun.CPEveryOps = 256
	s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 8 * aa.RAIDAgnosticBlocks}}, tun, 5)
	pool := s.Agg.AddObjectPool(PoolSpec{Blocks: 4 * aa.RAIDAgnosticBlocks})
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 60000)
	for lba := uint64(0); lba < 60000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	return s, lun, pool
}

func TestAddObjectPoolGrowsSpace(t *testing.T) {
	tun := DefaultTunables()
	s := NewSystem(testSpecs(), nil, tun, 1)
	before := s.Agg.Blocks()
	pool := s.Agg.AddObjectPool(PoolSpec{Blocks: 2 * aa.RAIDAgnosticBlocks})
	if s.Agg.Blocks() != before+2*aa.RAIDAgnosticBlocks {
		t.Fatalf("aggregate = %d blocks", s.Agg.Blocks())
	}
	if pool.Range().Start != block.VBN(before) {
		t.Fatalf("pool range = %v", pool.Range())
	}
	// Double-attach and RAID growth after pool are rejected.
	for name, f := range map[string]func(){
		"second pool":      func() { s.Agg.AddObjectPool(PoolSpec{Blocks: 1024}) },
		"group after pool": func() { s.Agg.AddGroup(testSpecs()[0]) },
		"zero pool":        func() { NewSystem(testSpecs(), nil, tun, 1).Agg.AddObjectPool(PoolSpec{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTierOutMovesColdBlocks(t *testing.T) {
	s, lun, pool := pooledSystem(t)
	groupUsedBefore := s.Agg.bm.CountUsed(s.Agg.groups[0].geo.VBNRange()) +
		s.Agg.bm.CountUsed(s.Agg.groups[1].geo.VBNRange())

	// Tier out the cold first half.
	moved := s.TierOut(lun, func(lba uint64) bool { return lba < 30000 })
	if moved != 30000 {
		t.Fatalf("tiered %d", moved)
	}
	s.CP() // charges the object PUTs

	// Pointers now land in the pool; group space was released.
	if !pool.Contains(lun.Phys(0)) {
		t.Fatalf("lba 0 phys %v not in pool %v", lun.Phys(0), pool.Range())
	}
	if pool.Contains(lun.Phys(40000)) {
		t.Fatal("hot block tiered out")
	}
	groupUsedAfter := s.Agg.bm.CountUsed(s.Agg.groups[0].geo.VBNRange()) +
		s.Agg.bm.CountUsed(s.Agg.groups[1].geo.VBNRange())
	if groupUsedAfter != groupUsedBefore-30000 {
		t.Fatalf("group used %d -> %d", groupUsedBefore, groupUsedAfter)
	}
	st := pool.Stats()
	if st.BlocksTiered != 30000 {
		t.Fatalf("pool stats = %+v", st)
	}
	// 30000 blocks in 1024-block objects: 30 PUTs.
	if st.Puts != 30 {
		t.Fatalf("puts = %d", st.Puts)
	}
	checkConsistency(t, s)
}

func TestPoolAllocationIsColocated(t *testing.T) {
	s, lun, pool := pooledSystem(t)
	s.TierOut(lun, func(lba uint64) bool { return lba < 10000 })
	s.CP()
	// HBPS-guided sequential allocation within the pool's AAs: the tiered
	// blocks occupy a tight VBN range (minimal metafile blocks touched).
	lo, hi := block.InvalidVBN, block.VBN(0)
	for lba := uint64(0); lba < 10000; lba++ {
		p := lun.Phys(lba)
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if span := uint64(hi - lo + 1); span > 16384 {
		t.Fatalf("tiered blocks span %d VBNs for 10000 blocks", span)
	}
	_ = pool
}

func TestPoolReadsChargeGets(t *testing.T) {
	s, lun, pool := pooledSystem(t)
	s.TierOut(lun, func(lba uint64) bool { return lba < 1000 })
	s.CP()
	before := pool.Stats()
	s.Read(lun, 0, 4) // 4 tiered blocks, physically contiguous: one range GET
	if got := pool.Stats(); got.Gets != before.Gets+1 || got.BlocksFetched != before.BlocksFetched+4 {
		t.Fatalf("gets = %d blocks = %d", got.Gets, got.BlocksFetched)
	}
	// Hot reads don't touch the pool.
	after := pool.Stats().Gets
	s.Read(lun, 50000, 1)
	if pool.Stats().Gets != after {
		t.Fatal("hot read hit the pool")
	}
}

func TestPoolOverwriteFreesPoolBlock(t *testing.T) {
	s, lun, pool := pooledSystem(t)
	s.TierOut(lun, func(lba uint64) bool { return lba < 1000 })
	s.CP()
	cold := lun.Phys(5)
	if !pool.Contains(cold) {
		t.Fatal("setup: lba 5 not tiered")
	}
	// Overwriting a tiered block writes the new version to the performance
	// tier and frees the pool block.
	s.Write(lun, 5, 1)
	s.CP()
	if pool.Contains(lun.Phys(5)) {
		t.Fatal("overwrite landed in the pool")
	}
	if s.Agg.bm.Test(cold) {
		t.Fatal("old pool block not freed")
	}
	checkConsistency(t, s)
}

func TestPoolSurvivesRemount(t *testing.T) {
	s, lun, pool := pooledSystem(t)
	s.TierOut(lun, func(lba uint64) bool { return lba%3 == 0 })
	s.CP()
	ms := s.Agg.Remount(true)
	if ms.Fallbacks != 0 {
		t.Fatalf("fallbacks = %d", ms.Fallbacks)
	}
	// Pool TopAA adds 2 block reads: groups + vol + pool.
	want := uint64(len(s.Agg.groups)) + 2 + 2
	if ms.TopAABlockReads != want {
		t.Fatalf("TopAA reads = %d, want %d", ms.TopAABlockReads, want)
	}
	// Tiering continues after remount.
	n := s.TierOut(lun, func(lba uint64) bool { return lba%3 == 1 })
	if n == 0 {
		t.Fatal("no blocks tiered after remount")
	}
	s.CP()
	checkConsistency(t, s)
	_ = pool
}

func TestTierOutWithSnapshotsRepointsAll(t *testing.T) {
	s, lun, pool := pooledSystem(t)
	s.CreateSnapshot(lun, "pin")
	s.TierOut(lun, func(lba uint64) bool { return lba < 2000 })
	s.CP()
	// Snapshot and active image share the tiered block: both must point at
	// the same pool VBN (moved once, not duplicated).
	sn := lun.Snapshot("pin")
	for lba := 0; lba < 2000; lba++ {
		if sn.blocks[lba].phys != lun.blocks[lba].phys {
			t.Fatalf("lba %d: snapshot %v != active %v", lba, sn.blocks[lba].phys, lun.blocks[lba].phys)
		}
		if !pool.Contains(sn.blocks[lba].phys) {
			t.Fatalf("lba %d not tiered", lba)
		}
	}
	if pool.Stats().BlocksTiered != 2000 {
		t.Fatalf("tiered = %d, want 2000 (shared blocks move once)", pool.Stats().BlocksTiered)
	}
	if err := s.Agg.Vols()[0].CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomChurnWithPool(t *testing.T) {
	s, lun, _ := pooledSystem(t)
	rng := rand.New(rand.NewSource(12))
	s.TierOut(lun, func(lba uint64) bool { return rng.Float64() < 0.3 })
	s.CP()
	for i := 0; i < 20000; i++ {
		s.Write(lun, uint64(rng.Intn(60000)), 1)
	}
	s.CP()
	checkConsistency(t, s)
	c := s.Counters()
	if c.BlocksWritten-c.BlocksFreed != s.Agg.bm.Used() {
		t.Fatalf("conservation: written %d - freed %d != used %d",
			c.BlocksWritten, c.BlocksFreed, s.Agg.bm.Used())
	}
}
