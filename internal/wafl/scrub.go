package wafl

import (
	"fmt"

	"waflfs/internal/aa"
	"waflfs/internal/heapcache"
	"waflfs/internal/parallel"
)

// Mount-time scrub ("wafliron-lite", §3.4): after a Remount rebuilds the AA
// caches — from TopAA metafile seeds, RAID-reconstructed blocks, or bitmap
// walks — Scrub re-derives every cached score from the bitmap metafiles, the
// ground truth shadow paging keeps consistent across any crash, and reports
// each space's agreement. A divergence means a recovery path produced a cache
// that silently disagrees with the file system's real free space: the failure
// class the crash-matrix experiment exists to prove absent.
//
// The scrub is purely observational (no modeled CPU or device cost) and
// accounts for in-flight allocator state, so it is also valid mid-workload:
// between CPs the invariant is bitmapScore == cacheScore + pendingDelta for
// every tracked AA, because allocations and frees move the bitmap and the
// delta together while cache scores fold only at the CP boundary.

// SpaceScrub is one space's verification result.
type SpaceScrub struct {
	// Space names the scrubbed space: a group's TopAA key ("rg<N>"), a
	// volume name, or the object pool's key.
	Space string
	// Checked counts the cache entries (RAID-aware) or tracked AAs
	// (RAID-agnostic) whose scores were re-derived from the bitmap.
	Checked int
	// Divergence is empty when the cache agrees with the bitmap, else a
	// description of the first disagreement found — a silent-divergence
	// failure.
	Divergence string
}

// ScrubReport collects every space's scrub result, in deterministic order
// (groups by index, then volumes in creation order, then the pool).
type ScrubReport struct {
	Spaces []SpaceScrub
}

// Clean reports whether no space diverged.
func (r ScrubReport) Clean() bool { return len(r.Divergent()) == 0 }

// Divergent returns the spaces whose caches disagree with the bitmap.
func (r ScrubReport) Divergent() []SpaceScrub {
	var out []SpaceScrub
	for _, s := range r.Spaces {
		if s.Divergence != "" {
			out = append(out, s)
		}
	}
	return out
}

// String summarizes the report in one line.
func (r ScrubReport) String() string {
	div := r.Divergent()
	if len(div) == 0 {
		total := 0
		for _, s := range r.Spaces {
			total += s.Checked
		}
		return fmt.Sprintf("scrub clean: %d spaces, %d scores verified", len(r.Spaces), total)
	}
	return fmt.Sprintf("scrub DIVERGENT: %d/%d spaces (first: %s: %s)",
		len(div), len(r.Spaces), div[0].Space, div[0].Divergence)
}

// Scrub verifies every AA cache against the bitmap metafiles. Results land in
// index-owned slots and merge in order, so the report is identical at any
// worker count. Spaces with caching disabled are reported with zero checks
// (there is no cache to diverge).
func (ag *Aggregate) Scrub() ScrubReport {
	workers := ag.workers()

	groupResults := make([]SpaceScrub, len(ag.groups))
	parallel.ForEachObs(workers, len(ag.groups), ag.pobs, func(i int) {
		groupResults[i] = ag.scrubGroup(ag.groups[i])
	})

	spaces := make([]*agnosticSpace, 0, len(ag.vols)+1)
	names := make([]string, 0, len(ag.vols)+1)
	for _, v := range ag.vols {
		spaces = append(spaces, v.space)
		names = append(names, v.Name)
	}
	if ag.pool != nil {
		spaces = append(spaces, ag.pool.space)
		names = append(names, poolTopAAKey)
	}
	spaceResults := make([]SpaceScrub, len(spaces))
	parallel.ForEachObs(workers, len(spaces), ag.pobs, func(i int) {
		spaceResults[i] = ag.scrubSpace(names[i], spaces[i])
	})

	var r ScrubReport
	r.Spaces = append(r.Spaces, groupResults...)
	r.Spaces = append(r.Spaces, spaceResults...)
	for _, s := range r.Spaces {
		kind := "clean"
		if s.Divergence != "" {
			kind = "divergent"
		}
		ag.st.Emit("scrub.space", 0, kind, 0, int64(s.Checked))
	}
	ag.scrubTot.add(r)
	return r
}

// scrubGroup re-derives every heap-cache entry's score from the bitmap:
// expected == popcount(free) - pendingDelta. A seed-only cache (TopAA seed,
// background fill pending) holds a subset, so only membership scores are
// checked; a fully built cache must also track every AA not held by the
// allocation cursor.
func (ag *Aggregate) scrubGroup(g *Group) SpaceScrub {
	s := SpaceScrub{Space: topaaGroupKey(g.Index)}
	if !g.cacheEnabled {
		return s
	}
	for _, e := range g.cache.TopK(g.cache.Len()) {
		want := int64(aa.Score(g.topo, ag.bm, e.ID)) - g.pendingDelta(e.ID)
		if int64(e.Score) != want {
			s.Divergence = fmt.Sprintf("AA %d: cached score %d, bitmap-derived %d", e.ID, e.Score, want)
			return s
		}
		s.Checked++
	}
	held := 0
	if g.sh != nil {
		// Striped path: entries staged in shard queues are untracked in the
		// shared heap but obey the same invariant at their frozen scores.
		divergence := ""
		g.sh.Each(func(shard int, e heapcache.Entry) {
			if divergence != "" {
				return
			}
			want := int64(aa.Score(g.topo, ag.bm, e.ID)) - g.pendingDelta(e.ID)
			if int64(e.Score) != want {
				divergence = fmt.Sprintf("shard %d AA %d: staged score %d, bitmap-derived %d",
					shard, e.ID, e.Score, want)
				return
			}
			s.Checked++
		})
		if divergence != "" {
			s.Divergence = divergence
			return s
		}
		held = g.sh.HeldCount()
	}
	if !g.seedOnly {
		wantLen := g.topo.NumAAs() - held
		if g.curValid {
			wantLen-- // held by the allocation cursor, reinserted at finishAA
		}
		if g.cache.Len() != wantLen {
			s.Divergence = fmt.Sprintf("cache tracks %d AAs, want %d (+%d staged in shard queues)",
				g.cache.Len(), wantLen, held)
		}
	}
	return s
}

// scrubSpace verifies an HBPS against a bitmap-derived census: every AA's
// expected score (popcount - pendingDelta) is binned, the per-bin counts must
// match the histogram exactly, and every listed AA must sit in the list
// segment of its expected bin. A popped current AA stays histogram-tracked at
// its pop-time score, which equals bitmap - delta throughout (allocations
// move both together), so no special case is needed.
func (ag *Aggregate) scrubSpace(name string, sp *agnosticSpace) SpaceScrub {
	s := SpaceScrub{Space: name}
	if !sp.cacheEnabled {
		return s
	}
	n := sp.topo.NumAAs()
	if got := sp.cache.Total(); got != uint64(n) {
		s.Divergence = fmt.Sprintf("HBPS tracks %d AAs, want %d", got, n)
		return s
	}
	census := make([]uint64, sp.cache.NumBins())
	for id := 0; id < n; id++ {
		want := int64(sp.aaScore(aa.ID(id))) - sp.pendingDelta(aa.ID(id))
		if want < 0 {
			s.Divergence = fmt.Sprintf("AA %d: bitmap-derived score %d is negative", id, want)
			return s
		}
		census[sp.cache.Bin(uint32(want))]++
		s.Checked++
	}
	for b := range census {
		if got := uint64(sp.cache.BinCount(b)); got != census[b] {
			s.Divergence = fmt.Sprintf("bin %d: histogram count %d, bitmap census %d", b, got, census[b])
			return s
		}
	}
	sp.cache.EachListed(func(id aa.ID, b int) {
		if s.Divergence != "" {
			return
		}
		want := int64(sp.aaScore(id)) - sp.pendingDelta(id)
		if wb := sp.cache.Bin(uint32(want)); wb != b {
			s.Divergence = fmt.Sprintf("listed AA %d in bin %d, bitmap-derived bin %d", id, b, wb)
		}
	})
	return s
}
