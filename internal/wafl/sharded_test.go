package wafl

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"waflfs/internal/aa"
	"waflfs/internal/obs"
	"waflfs/internal/obs/picks"
)

// shardedRun drives a fill + churn + remount workload with the striped
// allocator enabled (AllocShards > 1), every deterministic sink on, and the
// watchdogs strict — any invariant violation panics the test. Mid-workload
// scrubs exercise the ledger-aware invariant while deltas are pending.
func shardedRun(t *testing.T, workers, shards, batch int) (*System, *obs.Tracer, *strings.Builder) {
	t.Helper()
	tracer := obs.NewTracer()
	var csv strings.Builder
	rec := obs.NewCSVRecorder(&csv)
	tun := DefaultTunables()
	tun.Workers = workers
	tun.AllocShards = shards
	tun.AllocBatch = batch
	tun.CPEveryOps = 1 << 30
	tun.DelayedVirtFrees = true
	tun.Obs = &ObsOptions{
		Name:            "striped",
		Tracer:          tracer,
		CSV:             rec,
		Picks:           picks.NewRecorder(picks.DefaultConfig()),
		Watchdogs:       true,
		StrictWatchdogs: true,
	}
	s := NewSystem(testSpecs(),
		[]VolSpec{{Name: "va", Blocks: 16 * aa.RAIDAgnosticBlocks}},
		tun, 11)
	lun := s.Agg.Vols()[0].CreateLUN("lun", 40000)

	for lba := uint64(0); lba < 40000; lba++ {
		s.Write(lun, lba, 1)
		if s.pendingBlocks >= 8192 {
			s.CP()
		}
	}
	if r := s.Agg.Scrub(); !r.Clean() {
		t.Fatalf("mid-workload scrub diverged: %s", r)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 15000; i++ {
		s.Write(lun, uint64(rng.Intn(40000)), 1)
		if s.pendingBlocks >= 8192 {
			s.CP()
		}
	}
	s.CP()
	s.Agg.Remount(true)
	s.Agg.CompleteBackgroundFill()
	if r := s.Agg.Scrub(); !r.Clean() {
		t.Fatalf("post-remount scrub diverged: %s", r)
	}
	for i := 0; i < 3000; i++ {
		s.Write(lun, uint64(rng.Intn(40000)), 1)
	}
	s.CP()
	if r := s.Agg.Scrub(); !r.Clean() {
		t.Fatalf("final scrub diverged: %s", r)
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("csv flush: %v", err)
	}
	return s, tracer, &csv
}

// The striped allocator preserves the worker-width determinism contract:
// with AllocShards=8 every stable metric, trace event, CSV row, and
// allocation profile is bit-identical at Workers=1 and Workers=8. The shard
// assignment is keyed by (space, pick sequence), never by worker identity.
func TestShardedSerialEquivalence(t *testing.T) {
	s1, tr1, csv1 := shardedRun(t, 1, 8, 4)
	s8, tr8, csv8 := shardedRun(t, 8, 8, 4)

	snap1 := s1.Registry().StableSnapshot()
	snap8 := s8.Registry().StableSnapshot()
	if !reflect.DeepEqual(snap1, snap8) {
		for i := range snap1.Metrics {
			if i < len(snap8.Metrics) && !reflect.DeepEqual(snap1.Metrics[i], snap8.Metrics[i]) {
				t.Errorf("metric %q: workers=1 %+v, workers=8 %+v",
					snap1.Metrics[i].Name, snap1.Metrics[i], snap8.Metrics[i])
			}
		}
		t.Fatalf("stable snapshots diverged (%d vs %d metrics)", len(snap1.Metrics), len(snap8.Metrics))
	}

	ev1, ev8 := tr1.Events(), tr8.Events()
	if len(ev1) == 0 {
		t.Fatal("tracer recorded no events")
	}
	if !reflect.DeepEqual(ev1, ev8) {
		n := len(ev1)
		if len(ev8) < n {
			n = len(ev8)
		}
		for i := 0; i < n; i++ {
			if ev1[i] != ev8[i] {
				t.Fatalf("event %d diverged:\nworkers=1: %+v\nworkers=8: %+v", i, ev1[i], ev8[i])
			}
		}
		t.Fatalf("event counts diverged: %d vs %d", len(ev1), len(ev8))
	}

	if csv1.String() != csv8.String() {
		t.Fatal("per-CP CSV output diverged across worker counts")
	}

	// The full allocation profile — per-shard busy vectors included — is
	// worker-invariant; only AllocPickWall's schedule depends on W.
	if p1, p8 := s1.Agg.AllocProfiles(), s8.Agg.AllocProfiles(); !reflect.DeepEqual(p1, p8) {
		t.Fatalf("alloc profiles diverged:\nworkers=1: %+v\nworkers=8: %+v", p1, p8)
	}
}

// Refill under pressure: a tiny batch with churn forces the pipeline through
// every path — pipelined stages, standby swaps, synchronous stalls — while
// strict watchdogs and mid-workload scrubs hold. The shared structures must
// never be bypassed into the bitmap fallback.
func TestShardedRefillUnderPressure(t *testing.T) {
	// No remount in this run: remount rebuilds the Sharded wrappers, which
	// would zero the swap counters this test asserts on.
	tun := DefaultTunables()
	tun.AllocShards = 4
	tun.AllocBatch = 2
	tun.CPEveryOps = 1 << 30
	tun.Obs = &ObsOptions{
		Name:            "pressure",
		Picks:           picks.NewRecorder(picks.DefaultConfig()),
		Watchdogs:       true,
		StrictWatchdogs: true,
	}
	s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 16 * aa.RAIDAgnosticBlocks}}, tun, 11)
	lun := s.Agg.Vols()[0].CreateLUN("lun", 40000)
	rng := rand.New(rand.NewSource(7))
	for lba := uint64(0); lba < 40000; lba++ {
		s.Write(lun, lba, 1)
		if s.pendingBlocks >= 8192 {
			s.CP()
		}
	}
	for i := 0; i < 15000; i++ {
		s.Write(lun, uint64(rng.Intn(40000)), 1)
		if s.pendingBlocks >= 8192 {
			s.CP()
		}
	}
	s.CP()
	if r := s.Agg.Scrub(); !r.Clean() {
		t.Fatalf("scrub diverged under refill pressure: %s", r)
	}

	var picksTot, local, staged, stalls uint64
	for _, p := range s.Agg.AllocProfiles() {
		picksTot += p.Picks
		local += p.LocalPicks
		staged += p.Staged
		stalls += p.Stalls
	}
	if picksTot == 0 || local == 0 {
		t.Fatalf("striped path unused: picks=%d local=%d", picksTot, local)
	}
	if staged == 0 {
		t.Errorf("pipelined refill never staged (staged=%d)", staged)
	}
	var swaps uint64
	for _, g := range s.Agg.groups {
		if g.sh != nil {
			swaps += g.sh.Metrics().Swaps
		}
	}
	if swaps == 0 {
		t.Errorf("standby batches never swapped in (swaps=%d)", swaps)
	}
	if n, ok := s.Registry().Value("picks." + string(picks.ShardLocal)); !ok || n == 0 {
		t.Errorf("picks.shard_local = %d,%v, want > 0", n, ok)
	}
	if n, _ := s.Registry().Value("picks." + string(picks.BitmapFallback)); n != 0 {
		t.Errorf("picks.bitmap_fallback = %d, want 0 (cache path bypassed)", n)
	}
	if n, ok := s.Registry().Value("watchdog.ledger_checks"); !ok || n == 0 {
		t.Errorf("watchdog.ledger_checks = %d,%v, want > 0", n, ok)
	}
	if n, _ := s.Registry().Value("watchdog.violations"); n != 0 {
		t.Errorf("watchdog.violations = %d, want 0: %v", n, s.Agg.WatchdogViolations())
	}

	// The modeled pick wall must shrink when shard-local picks spread over
	// more workers, and never below the serial time divided by the width.
	w1, w8 := s.Agg.AllocPickWall(1), s.Agg.AllocPickWall(8)
	if !(w8 < w1) {
		t.Errorf("AllocPickWall: w8=%v not < w1=%v under pressure", w8, w1)
	}
	_ = stalls
}

// A tampered frozen score in a shard queue is exactly the "stale merge"
// failure the ledger watchdog class exists to catch: the next watchdog pass
// must flag it, and a scrub must report the divergence.
func TestShardedWatchdogCatchesTamperedHeldScore(t *testing.T) {
	tun := DefaultTunables()
	tun.AllocShards = 4
	tun.CPEveryOps = 1 << 30
	tun.Obs = &ObsOptions{Name: "tamper", Watchdogs: true}
	s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 16 * aa.RAIDAgnosticBlocks}}, tun, 3)
	lun := s.Agg.Vols()[0].CreateLUN("lun", 20000)
	for lba := uint64(0); lba < 20000; lba++ {
		s.Write(lun, lba, 1)
		if s.pendingBlocks >= 8192 {
			s.CP()
		}
	}
	s.CP()
	s.runWatchdogs()
	if n, _ := s.Registry().Value("watchdog.ledger_violations"); n != 0 {
		t.Fatalf("pre-tamper ledger violations = %d, want 0: %v", n, s.Agg.WatchdogViolations())
	}

	tampered := false
	for _, g := range s.Agg.groups {
		if g.sh != nil && g.sh.TamperHeldScore(3) {
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no shard queue held an entry to tamper with")
	}
	s.runWatchdogs()
	if n, _ := s.Registry().Value("watchdog.ledger_violations"); n == 0 {
		t.Error("tampered held score not flagged by the ledger watchdog")
	}
	if r := s.Agg.Scrub(); r.Clean() {
		t.Error("scrub reported clean over a tampered shard queue")
	}
}

// Ledger residue after the CP fold — a delta that never merged — must be
// flagged for both cache kinds (group ledgers and agnostic-space ledgers).
func TestShardedWatchdogCatchesLedgerResidue(t *testing.T) {
	tun := DefaultTunables()
	tun.AllocShards = 4
	tun.CPEveryOps = 1 << 30
	tun.Obs = &ObsOptions{Name: "residue", Watchdogs: true}
	s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 16 * aa.RAIDAgnosticBlocks}}, tun, 3)
	lun := s.Agg.Vols()[0].CreateLUN("lun", 12000)
	for lba := uint64(0); lba < 12000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()

	g := s.Agg.groups[0]
	g.as.ledgers[1][aa.ID(0)] = 5
	s.runWatchdogs()
	n, _ := s.Registry().Value("watchdog.ledger_violations")
	if n == 0 {
		t.Error("group ledger residue not flagged after the CP fold")
	}
	delete(g.as.ledgers[1], aa.ID(0))

	sp := s.Agg.Vols()[0].space
	sp.as.ledgers[2][aa.ID(1)] = -2
	s.runWatchdogs()
	if n2, _ := s.Registry().Value("watchdog.ledger_violations"); n2 <= n {
		t.Error("space ledger residue not flagged after the CP fold")
	}
}

// Segment cleaning interoperates with the striped path: the shard queues
// flush back so the cleaner pops the true best AAs, and the restaged queues
// still satisfy the scrub invariant — including with frees pending in the
// ledgers from the churn since the last CP.
func TestShardedCleanerRoundTrip(t *testing.T) {
	tun := DefaultTunables()
	tun.AllocShards = 4
	tun.AllocBatch = 4
	tun.Obs = &ObsOptions{Name: "clean", Watchdogs: true, StrictWatchdogs: true}
	s, lun := agedSystem(t, tun, 9)
	rng := rand.New(rand.NewSource(1))
	st := s.CleanBestAAs(s.Agg.groups[0], 8)
	if st.AAsCleaned+st.AlreadyEmpty == 0 {
		t.Fatalf("cleaner did nothing: %+v", st)
	}
	if r := s.Agg.Scrub(); !r.Clean() {
		t.Fatalf("scrub diverged after cleaning: %s", r)
	}
	for i := 0; i < 5000; i++ {
		s.Write(lun, uint64(rng.Intn(int(lun.Blocks()))), 1)
	}
	s.CP()
	checkConsistency(t, s)
	if r := s.Agg.Scrub(); !r.Clean() {
		t.Fatalf("scrub diverged after post-clean churn: %s", r)
	}
}
