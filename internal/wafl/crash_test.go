package wafl

import (
	"math/rand"
	"reflect"
	"testing"

	"waflfs/internal/aa"
	"waflfs/internal/faultinject"
)

// crashedSystem builds a system with the plan armed (and an object pool, so
// every CP phase occurs), lands a clean CP, churns, then runs the CP the
// plan crashes. The caller remounts and inspects recovery.
func crashedSystem(t *testing.T, plan *faultinject.Plan, workers int) (*System, *LUN) {
	t.Helper()
	tun := DefaultTunables()
	tun.CPEveryOps = 1 << 30 // CPs driven explicitly
	tun.Workers = workers
	tun.Faults = plan
	s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 16 * aa.RAIDAgnosticBlocks}}, tun, 7)
	s.Agg.AddObjectPool(PoolSpec{Blocks: 2 * aa.RAIDAgnosticBlocks})
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 60000)
	for lba := uint64(0); lba < 60000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP() // CP 1: clean; every metafile lands
	s.TierOut(lun, func(lba uint64) bool { return lba < 4096 })
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		s.Write(lun, uint64(rng.Intn(60000)), 1)
	}
	s.CP() // CP 2: the plan's crash point fires
	return s, lun
}

// spacesOf counts the AA-cache spaces a remount rebuilds.
func spacesOf(s *System) int {
	return len(s.Agg.groups) + len(s.Agg.vols) + 1 // +1: the pool
}

func TestCrashAtEveryPhaseRecoversWithoutDivergence(t *testing.T) {
	for _, phase := range faultinject.CPPhases() {
		phase := phase
		t.Run(phase, func(t *testing.T) {
			plan := &faultinject.Plan{Seed: 3, CrashPhase: phase, CrashCP: 2, Fault: faultinject.FaultTorn}
			s, lun := crashedSystem(t, plan, 0)
			if !s.Agg.Injector().Crashed() {
				t.Fatalf("crash point %q never fired", phase)
			}
			ms := s.Agg.Remount(true)
			if got := ms.MissingFallbacks + ms.StaleFallbacks + ms.TornFallbacks + ms.DamageFallbacks; got != ms.Fallbacks {
				t.Fatalf("fallback classes sum to %d, Fallbacks = %d", got, ms.Fallbacks)
			}
			switch phase {
			case faultinject.PhaseAlloc:
				// Crash before any save: every metafile is stale or torn.
				if ms.Fallbacks != spacesOf(s) {
					t.Fatalf("alloc-phase crash: fallbacks = %d, want %d", ms.Fallbacks, spacesOf(s))
				}
			case faultinject.PhaseCommit:
				// Crash after all saves: a clean CP.
				if ms.Fallbacks != 0 {
					t.Fatalf("commit-phase crash: fallbacks = %d, want 0", ms.Fallbacks)
				}
			}
			if rep := s.Agg.Scrub(); !rep.Clean() {
				t.Fatalf("scrub after recovery: %s", rep)
			}
			// The recovered system keeps working: background fill, more
			// writes, a clean CP, and a still-clean scrub.
			s.Agg.CompleteBackgroundFill()
			for i := 0; i < 2000; i++ {
				s.Write(lun, uint64(i*7%60000), 1)
			}
			s.CP()
			if s.Agg.Injector().Crashes() != 1 {
				t.Fatalf("crashes = %d after recovery, want 1", s.Agg.Injector().Crashes())
			}
			if rep := s.Agg.Scrub(); !rep.Clean() {
				t.Fatalf("scrub after post-recovery CP: %s", rep)
			}
		})
	}
}

func TestCrashRecoveryWithMediaDamage(t *testing.T) {
	cases := []struct {
		fault faultinject.Kind
		// reconstructed+fallback expectations are load-order dependent, so
		// only the invariants are pinned here.
	}{
		{faultinject.FaultBitRot},
		{faultinject.FaultBitRotMulti},
		{faultinject.FaultReadErr},
		{faultinject.FaultReadErrHard},
	}
	for _, tc := range cases {
		t.Run(tc.fault.String(), func(t *testing.T) {
			plan := &faultinject.Plan{Seed: 5, CrashPhase: faultinject.PhaseTopAAVols, CrashCP: 2, Fault: tc.fault}
			s, _ := crashedSystem(t, plan, 0)
			dmg, err := s.Agg.ApplyPlannedDamage()
			if err != nil {
				t.Fatal(err)
			}
			if dmg.Target == "" {
				t.Fatal("no damage target chosen")
			}
			ms := s.Agg.Remount(true)
			switch tc.fault {
			case faultinject.FaultBitRot, faultinject.FaultReadErr:
				// One bad chunk: parity rebuilds it unless the metafile was
				// already a fallback for staleness.
				if ms.Reconstructed+ms.Fallbacks == 0 {
					t.Fatal("single-chunk damage left no trace in MountStats")
				}
				if ms.DamageFallbacks != 0 {
					t.Fatalf("single-chunk damage classified as unrecoverable: %+v", ms)
				}
			case faultinject.FaultBitRotMulti, faultinject.FaultReadErrHard:
				// Beyond single-parity reconstruction: the damaged space must
				// have fallen back (unless staleness got there first).
				if ms.Fallbacks == 0 {
					t.Fatalf("multi-chunk damage produced no fallback: %+v", ms)
				}
			}
			if rep := s.Agg.Scrub(); !rep.Clean() {
				t.Fatalf("scrub after damage recovery: %s", rep)
			}
		})
	}
}

// TestCrashRecoveryDeterministicAcrossWorkers pins the PR's determinism
// contract: MountStats, the scrub report, and the store's recovery counters
// are byte-identical at any worker width.
func TestCrashRecoveryDeterministicAcrossWorkers(t *testing.T) {
	type outcome struct {
		Stats MountStats
		Scrub ScrubReport
		Rec   interface{}
	}
	run := func(workers int) outcome {
		plan := &faultinject.Plan{Seed: 11, CrashPhase: faultinject.PhaseFlush, CrashCP: 2, Fault: faultinject.FaultBitRot}
		s, _ := crashedSystem(t, plan, workers)
		if _, err := s.Agg.ApplyPlannedDamage(); err != nil {
			t.Fatal(err)
		}
		ms := s.Agg.Remount(true)
		return outcome{Stats: ms, Scrub: s.Agg.Scrub(), Rec: s.Agg.Store().Recovery()}
	}
	serial := run(1)
	wide := run(8)
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("recovery diverged across worker widths:\n 1: %+v\n 8: %+v", serial, wide)
	}
	if serial.Stats.Fallbacks == 0 && serial.Stats.Reconstructed == 0 {
		t.Fatal("scenario exercised no recovery path")
	}
}

// TestMountStatsPinsFailedProbeCharges is the regression pin for the
// probe-charging bugfix: a missing metafile costs one block read, so a
// first-boot mount (no CP yet) charges exactly one read per space.
func TestMountStatsPinsFailedProbeCharges(t *testing.T) {
	tun := DefaultTunables()
	tun.CPEveryOps = 1 << 30
	s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 16 * aa.RAIDAgnosticBlocks}}, tun, 9)
	s.Agg.AddObjectPool(PoolSpec{Blocks: 2 * aa.RAIDAgnosticBlocks})

	ms := s.Agg.Remount(true)
	if want := uint64(spacesOf(s)); ms.TopAABlockReads != want {
		t.Fatalf("first-boot TopAA reads = %d, want %d (one failed probe per space)", ms.TopAABlockReads, want)
	}
	if ms.MissingFallbacks != spacesOf(s) || ms.Fallbacks != spacesOf(s) {
		t.Fatalf("first-boot fallbacks = %+v, want all %d missing", ms, spacesOf(s))
	}

	// After a CP every metafile exists: 1 block per group, 2 per agnostic
	// space (HBPS pages), and zero failed probes.
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 30000)
	for lba := uint64(0); lba < 30000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	ms = s.Agg.Remount(true)
	want := uint64(len(s.Agg.groups)) + 2*uint64(len(s.Agg.vols)) + 2
	if ms.TopAABlockReads != want {
		t.Fatalf("seeded-mount TopAA reads = %d, want %d", ms.TopAABlockReads, want)
	}
	if ms.Fallbacks != 0 {
		t.Fatalf("seeded mount fell back: %+v", ms)
	}
}

// TestScrubDetectsDivergence proves the scrub is a real oracle: a cache
// score that disagrees with the bitmap is reported, for both cache types.
func TestScrubDetectsDivergence(t *testing.T) {
	s, _ := agedSystem(t, DefaultTunables(), 6)
	if rep := s.Agg.Scrub(); !rep.Clean() {
		t.Fatalf("baseline scrub not clean: %s", rep)
	}

	// Heap cache: shift one tracked AA's score.
	g := s.Agg.groups[0]
	e, ok := g.cache.Best()
	if !ok {
		t.Fatal("empty group cache")
	}
	g.cache.Update(e.ID, e.Score+1)
	rep := s.Agg.Scrub()
	if rep.Clean() {
		t.Fatal("scrub missed a heap-cache divergence")
	}
	if div := rep.Divergent(); div[0].Space != topaaGroupKey(0) {
		t.Fatalf("divergence attributed to %q, want %q", div[0].Space, topaaGroupKey(0))
	}
	g.cache.Update(e.ID, e.Score) // restore

	// HBPS: pretend a delta exists that the bitmap never saw (large enough
	// to cross a histogram bin boundary).
	sp := s.Agg.vols[0].space
	sp.deltas[aa.ID(0)] += 4096
	rep = s.Agg.Scrub()
	if rep.Clean() {
		t.Fatal("scrub missed an HBPS divergence")
	}
	if div := rep.Divergent(); div[0].Space != "v" {
		t.Fatalf("divergence attributed to %q, want %q", div[0].Space, "v")
	}
	delete(sp.deltas, aa.ID(0))
	if rep := s.Agg.Scrub(); !rep.Clean() {
		t.Fatalf("scrub not clean after restore: %s", rep)
	}
}
