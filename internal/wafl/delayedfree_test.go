package wafl

import (
	"math/rand"
	"testing"

	"waflfs/internal/aa"
)

func delayedSystem(t *testing.T, budget int) (*System, *LUN) {
	t.Helper()
	tun := DefaultTunables()
	tun.DelayedVirtFrees = true
	tun.DelayedFreeBudgetPerCP = budget
	tun.CPEveryOps = 128
	s := NewSystem(testSpecs(), []VolSpec{{Name: "v", Blocks: 8 * aa.RAIDAgnosticBlocks}}, tun, 21)
	lun := s.Agg.Vols()[0].CreateLUN("lun0", 50000)
	for lba := uint64(0); lba < 20000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	return s, lun
}

func TestDelayedFreesReclaimAtCP(t *testing.T) {
	s, lun := delayedSystem(t, 0) // unlimited budget: all reclaimed each CP
	vol := s.Agg.Vols()[0]
	// Overwrites queue frees that the same CP then reclaims.
	for lba := uint64(0); lba < 5000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	if got := vol.PendingFrees(); got != 0 {
		t.Fatalf("pending after unlimited-budget CP = %d", got)
	}
	// Usage back to steady state: overwrites net zero.
	if vol.bm.Used() != 20000 {
		t.Fatalf("vol used = %d", vol.bm.Used())
	}
	if err := vol.CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
}

func TestDelayedFreesRespectBudget(t *testing.T) {
	s, lun := delayedSystem(t, 512)
	vol := s.Agg.Vols()[0]
	// Generate a burst of frees far above the per-CP budget.
	freed, err := s.PunchHoles(lun, func(lba uint64) bool { return lba < 10000 })
	if err != nil || freed != 10000 {
		t.Fatalf("punched %d, err %v", freed, err)
	}
	if vol.PendingFrees() != 10000 {
		t.Fatalf("pending = %d", vol.PendingFrees())
	}
	// Blocks pending free stay allocated (not yet reusable).
	if vol.bm.Used() != 20000 {
		t.Fatalf("vol used = %d before reclaim", vol.bm.Used())
	}
	// Each CP drains at most ~budget blocks (whole AAs at a time, so a
	// little overshoot is allowed — one AA beyond the budget boundary).
	prev := vol.PendingFrees()
	for i := 0; prev > 0 && i < 100; i++ {
		s.CP()
		cur := vol.PendingFrees()
		drained := prev - cur
		if cur > 0 && drained > 512+int(aa.RAIDAgnosticBlocks) {
			t.Fatalf("CP drained %d, budget 512", drained)
		}
		if drained == 0 && cur > 0 {
			t.Fatalf("CP made no reclaim progress at %d pending", cur)
		}
		prev = cur
	}
	if prev != 0 {
		t.Fatalf("pending never drained: %d", prev)
	}
	if vol.bm.Used() != 10000 {
		t.Fatalf("vol used = %d after drain", vol.bm.Used())
	}
	if err := vol.CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
}

// The point of HBPS-ordered reclamation: under a budget, the AAs with the
// most pending frees are processed first, so early CPs reclaim many blocks
// per metafile page touched.
func TestDelayedFreesProcessDensestAAFirst(t *testing.T) {
	s, lun := delayedSystem(t, 1000)
	vol := s.Agg.Vols()[0]
	// Extend the fill past one 32k-block AA so dense and scattered frees
	// land in different AAs (LBAs map to virtual VBNs roughly in order).
	for lba := uint64(20000); lba < 50000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	for vol.PendingFrees() > 0 {
		s.CP()
	}
	// Dense frees in the first AA; scattered frees in the second.
	s.PunchHoles(lun, func(lba uint64) bool {
		return lba < 3000 || (lba >= 34000 && lba%100 == 0)
	})
	dense := vol.space.topo.AAOf(0) // the AA holding the dense frees
	pendingDense := len(vol.space.delayed.pending[dense])
	if pendingDense < 2000 {
		t.Fatalf("setup: dense AA has %d pending", pendingDense)
	}
	// One budgeted CP must clear the dense AA before the scattered ones.
	s.CP()
	if got := len(vol.space.delayed.pending[dense]); got != 0 {
		t.Fatalf("dense AA still has %d pending after budgeted CP", got)
	}
	if vol.PendingFrees() == 0 {
		t.Fatal("scattered frees should still be pending under the budget")
	}
	// Drain fully and verify consistency.
	for vol.PendingFrees() > 0 {
		s.CP()
	}
	if err := vol.CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
}

func TestDelayedFreesWithSnapshots(t *testing.T) {
	s, lun := delayedSystem(t, 0)
	vol := s.Agg.Vols()[0]
	s.CreateSnapshot(lun, "snap")
	for lba := uint64(0); lba < 5000; lba++ {
		s.Write(lun, lba, 1)
	}
	s.CP()
	// Snapshot-held blocks must not be queued for free.
	if vol.PendingFrees() != 0 {
		t.Fatalf("pending = %d", vol.PendingFrees())
	}
	if vol.bm.Used() != 25000 {
		t.Fatalf("used = %d (20000 live + 5000 snapshot)", vol.bm.Used())
	}
	s.DeleteSnapshot(lun, "snap")
	s.CP()
	if vol.bm.Used() != 20000 {
		t.Fatalf("used = %d after snapshot delete reclaim", vol.bm.Used())
	}
	if err := vol.CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
}

func TestDelayedFreesRandomChurnConsistent(t *testing.T) {
	s, lun := delayedSystem(t, 777)
	vol := s.Agg.Vols()[0]
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 30000; i++ {
		s.Write(lun, uint64(rng.Intn(50000)), 1)
	}
	s.CP()
	for vol.PendingFrees() > 0 {
		s.CP()
	}
	if err := vol.CheckRefcounts(); err != nil {
		t.Fatal(err)
	}
	// Aggregate-side accounting still balances.
	c := s.Counters()
	if c.BlocksWritten-c.BlocksFreed != s.Agg.bm.Used() {
		t.Fatalf("written %d - freed %d != agg used %d",
			c.BlocksWritten, c.BlocksFreed, s.Agg.bm.Used())
	}
}
