package wafl

import (
	"math/rand"
	"testing"

	"waflfs/internal/aa"
	"waflfs/internal/block"
)

func TestCleanBestAAsProducesEmptyAAs(t *testing.T) {
	s, lun := agedSystem(t, DefaultTunables(), 20)
	g := s.Agg.groups[0]

	// Count completely empty AAs before and after.
	countEmpty := func() int {
		n := 0
		for id := 0; id < g.topo.NumAAs(); id++ {
			if aa.Score(g.topo, s.Agg.bm, aa.ID(id)) == aaBlockCount(g.topo, aa.ID(id)) {
				n++
			}
		}
		return n
	}
	before := countEmpty()
	st := s.CleanBestAAs(g, 8)
	after := countEmpty()

	if st.AAsCleaned+st.AlreadyEmpty != 8 {
		t.Fatalf("stats = %+v", st)
	}
	if after < before+st.AAsCleaned {
		t.Fatalf("empty AAs %d -> %d after cleaning %d", before, after, st.AAsCleaned)
	}
	// Relocation preserved every LUN block and all invariants.
	s.CP()
	checkConsistency(t, s)
	// Reads of relocated blocks still resolve.
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 1000; i++ {
		s.Read(lun, uint64(rng.Intn(int(lun.Blocks()))), 1)
	}
}

func TestCleanerRelocatesOnlyUsedBlocks(t *testing.T) {
	s, _ := agedSystem(t, DefaultTunables(), 22)
	g := s.Agg.groups[1]
	usedBefore := s.Agg.bm.Used()
	st := s.CleanBestAAs(g, 4)
	if s.Agg.bm.Used() != usedBefore {
		t.Fatalf("cleaning changed used count: %d -> %d", usedBefore, s.Agg.bm.Used())
	}
	if st.BlocksRelocated == 0 && st.AlreadyEmpty == 0 {
		t.Fatalf("cleaner did nothing: %+v", st)
	}
}

func TestCleanerRequiresCPBoundary(t *testing.T) {
	s, lun := agedSystem(t, DefaultTunables(), 23)
	s.Write(lun, 1, 1) // dirty buffer
	defer func() {
		if recover() == nil {
			t.Fatal("cleaning with pending writes did not panic")
		}
	}()
	s.CleanBestAAs(s.Agg.groups[0], 1)
}

func TestCleanerRequiresCache(t *testing.T) {
	tun := Tunables{AggregateCacheEnabled: false, VolCacheEnabled: true}
	s := testSystem(t, tun)
	defer func() {
		if recover() == nil {
			t.Fatal("cleaning without cache did not panic")
		}
	}()
	s.CleanBestAAs(s.Agg.groups[0], 1)
}

func TestCleanerOnFreshSystemIsNoop(t *testing.T) {
	s := testSystem(t, DefaultTunables())
	st := s.CleanBestAAs(s.Agg.groups[0], 3)
	if st.AAsCleaned != 0 || st.AlreadyEmpty != 3 || st.BlocksRelocated != 0 {
		t.Fatalf("fresh clean stats = %+v", st)
	}
}

func TestInvertRuns(t *testing.T) {
	space := block.R(10, 100)
	free := []block.Range{block.R(10, 20), block.R(50, 60)}
	used := invertRuns(free, space)
	want := []block.Range{block.R(20, 50), block.R(60, 100)}
	if len(used) != len(want) {
		t.Fatalf("used = %v", used)
	}
	for i := range want {
		if used[i] != want[i] {
			t.Fatalf("used[%d] = %v, want %v", i, used[i], want[i])
		}
	}
	// All free: no used runs. All used: one run.
	if got := invertRuns([]block.Range{space}, space); len(got) != 0 {
		t.Fatalf("all-free: %v", got)
	}
	if got := invertRuns(nil, space); len(got) != 1 || got[0] != space {
		t.Fatalf("all-used: %v", got)
	}
}
