package wafl

import (
	"fmt"
	"time"

	"waflfs/internal/aa"
	"waflfs/internal/parallel"
)

// Per-worker allocation contexts (the striped allocator hot path).
//
// With AllocShards > 1 every space (RAID group or virtual space) routes its
// picks through per-shard queues (heapcache.Sharded / hbps.Sharded) and
// accumulates its score deltas in per-shard ledgers instead of the shared
// delta map. The shard for each pick is seq % shards — a fixed assignment
// keyed by (space, pick sequence), independent of the Workers knob — so the
// pick stream, every staged batch, and every folded delta are bit-identical
// at any worker width. Ledgers fold into the shared delta map in
// shard-index order (IDs sorted within a shard) at the head of
// applyCPDeltas, so the CP-boundary fold observes exactly the totals the
// classic path would have accumulated.
//
// Contention is modeled, not measured: picks execute serially on the CP
// thread (like FlushWall's flush tasks), and each shard's pick time
// accrues to a per-shard busy vector. AllocPickWall schedules those
// vectors over W workers via parallel.Makespan — shard-local picks
// parallelize, synchronous stall refills serialize, and pipelined staging
// is hidden behind ongoing picks. The classic path charges all picks to a
// single vector, which is what makes the shared-vs-striped walls
// comparable. One pick's critical section and one staging move both cost
// CPUPerCacheOp, the same unit the cache-maintenance accounting uses.
const defaultAllocBatch = 8

type allocState struct {
	shards int
	batch  int
	opCost time.Duration

	seq      uint64 // picks issued; shard = seq % shards
	curShard int    // shard of the in-flight pick (noteAlloc target)

	// ledgers[s] holds shard s's pending score deltas (frees positive,
	// allocations negative), folded into the shared delta map at CP
	// boundaries. Classic mode (shards == 1 via AllocShards ≤ 1) bypasses
	// the ledgers entirely — deltas go straight to the shared map.
	ledgers []map[aa.ID]int64

	pickBusy   []time.Duration // modeled shard-local pick time
	refillBusy time.Duration   // pipelined staging (hidden behind picks)
	stallBusy  time.Duration   // synchronous refills (serialize)

	picks      uint64 // all picks through this state
	localPicks uint64 // picks served shard-locally (no shared touch)
	stalls     uint64 // synchronous refills on an empty shard
	staged     uint64 // entries moved shared→shard by pipelined staging
	dupSkips   uint64 // duplicate IDs discarded while staging (HBPS)
	folds      uint64 // ledger entries folded at CP boundaries
}

func newAllocState(tun Tunables) *allocState {
	n := tun.AllocShards
	if n < 1 {
		n = 1
	}
	b := tun.AllocBatch
	if b <= 0 {
		b = defaultAllocBatch
	}
	as := &allocState{
		shards:   n,
		batch:    b,
		opCost:   tun.CPUPerCacheOp,
		ledgers:  make([]map[aa.ID]int64, n),
		pickBusy: make([]time.Duration, n),
	}
	for i := range as.ledgers {
		as.ledgers[i] = make(map[aa.ID]int64)
	}
	return as
}

// sharded reports whether the striped pick path is active.
func (as *allocState) sharded() bool { return as.shards > 1 }

// nextShard returns the fixed shard for the next pick and advances the
// sequence. Keyed by pick ordinal only, so any worker width replays the
// same assignment.
func (as *allocState) nextShard() int {
	s := int(as.seq % uint64(as.shards))
	as.seq++
	return s
}

// note records one score delta: shard-local ledger when striped (the
// in-flight pick's shard for allocations; id-keyed for frees so a block
// freed between CPs lands in a deterministic ledger regardless of which
// pick is in flight), shared map otherwise.
func (as *allocState) noteAlloc(id aa.ID, deltas map[aa.ID]int64) {
	if as.sharded() {
		as.ledgers[as.curShard][id]--
		return
	}
	deltas[id]--
}

func (as *allocState) noteFree(id aa.ID, deltas map[aa.ID]int64) {
	if as.sharded() {
		as.ledgers[int(uint64(id)%uint64(as.shards))][id]++
		return
	}
	deltas[id]++
}

// pending returns the total pending delta for id: the shared map plus
// every shard ledger. This is the quantity the scrub/watchdog invariant
// uses — cachedScore == bitmapScore − pending — and it holds mid-CP for
// staged entries exactly because bitmap and delta mutations move together.
func (as *allocState) pending(id aa.ID, deltas map[aa.ID]int64) int64 {
	d := deltas[id]
	if as.sharded() {
		for _, l := range as.ledgers {
			d += l[id]
		}
	}
	return d
}

// clearPending discards every pending delta for id (the score was just
// recomputed from the bitmap, e.g. finishAA or a cleaning pass).
func (as *allocState) clearPending(id aa.ID, deltas map[aa.ID]int64) {
	delete(deltas, id)
	if as.sharded() {
		for _, l := range as.ledgers {
			delete(l, id)
		}
	}
}

// fold merges every shard ledger into the shared delta map and empties the
// ledgers: shard-index order, IDs sorted within each shard, so the merged
// map is identical at any worker width. Returns entries folded.
func (as *allocState) fold(deltas map[aa.ID]int64) int {
	if !as.sharded() {
		return 0
	}
	n := 0
	for s, l := range as.ledgers {
		if len(l) == 0 {
			continue
		}
		for _, id := range sortedIDs(l) {
			if d := deltas[id] + l[id]; d == 0 {
				delete(deltas, id)
			} else {
				deltas[id] = d
			}
			n++
		}
		as.ledgers[s] = make(map[aa.ID]int64)
	}
	as.folds += uint64(n)
	return n
}

// resetCounters zeroes the profile counters and busy vectors (ResetMetrics:
// the boundary between an experiment's aging and measurement phases).
func (as *allocState) resetCounters() {
	for i := range as.pickBusy {
		as.pickBusy[i] = 0
	}
	as.refillBusy, as.stallBusy = 0, 0
	as.picks, as.localPicks, as.stalls, as.staged, as.dupSkips, as.folds = 0, 0, 0, 0, 0, 0
}

// clearLedgers drops all ledger state (remount, repair, replenish — paths
// that rebuild scores from the bitmap and discard pending deltas).
func (as *allocState) clearLedgers() {
	if !as.sharded() {
		return
	}
	for i := range as.ledgers {
		as.ledgers[i] = make(map[aa.ID]int64)
	}
}

// residue returns the first ledger entry in deterministic order, for the
// post-fold watchdog: after applyCPDeltas every ledger must be empty.
func (as *allocState) residue() (shard int, id aa.ID, d int64, ok bool) {
	if !as.sharded() {
		return 0, 0, 0, false
	}
	for s, l := range as.ledgers {
		if len(l) == 0 {
			continue
		}
		ids := sortedIDs(l)
		return s, ids[0], l[ids[0]], true
	}
	return 0, 0, 0, false
}

// busyTotal sums the per-shard pick vectors (the serial pick time).
func (as *allocState) busyTotal() time.Duration {
	var t time.Duration
	for _, d := range as.pickBusy {
		t += d
	}
	return t
}

// AllocProfile is one space's striped-allocator profile.
type AllocProfile struct {
	// Space names the profiled space ("rg<N>", "vol.<name>", "pool").
	Space string
	// Shards is the stripe width (1 = classic shared path).
	Shards int
	// Picks counts all picks; LocalPicks the shard-local subset.
	Picks, LocalPicks uint64
	// Stalls counts synchronous refills; Staged the pipelined entries.
	Stalls, Staged uint64
	// DupSkips counts duplicates discarded while staging (HBPS only).
	DupSkips uint64
	// ShardBusy is the per-shard modeled pick time (len == Shards).
	ShardBusy []time.Duration
	// RefillBusy is pipelined staging time (hidden behind picks);
	// StallBusy is synchronous refill time (serializes).
	RefillBusy, StallBusy time.Duration
}

// AllocProfiles returns every space's allocation profile in canonical
// order: groups by index, volumes by creation order, then the pool.
func (ag *Aggregate) AllocProfiles() []AllocProfile {
	var out []AllocProfile
	add := func(name string, as *allocState) {
		out = append(out, AllocProfile{
			Space:      name,
			Shards:     as.shards,
			Picks:      as.picks,
			LocalPicks: as.localPicks,
			Stalls:     as.stalls,
			Staged:     as.staged,
			DupSkips:   as.dupSkips,
			ShardBusy:  append([]time.Duration(nil), as.pickBusy...),
			RefillBusy: as.refillBusy,
			StallBusy:  as.stallBusy,
		})
	}
	for _, g := range ag.groups {
		add(fmt.Sprintf("rg%d", g.Index), g.as)
	}
	for _, v := range ag.vols {
		add("vol."+v.Name, v.space.as)
	}
	if ag.pool != nil {
		add("pool", ag.pool.space.as)
	}
	return out
}

// AllocPickWall is the modeled wall-clock of the aggregate's pick workload
// at the given worker width: every space's per-shard busy vectors schedule
// over the workers (parallel.Makespan's deterministic greedy order, the
// same model FlushWall uses), and synchronous stalls — which contend on
// the shared structures — serialize on top. The classic path charges all
// picks to one vector per space, so shared-vs-striped walls compare
// directly. Pipelined staging time is excluded: it is the latency the
// refill pipeline hides behind ongoing picks.
func (ag *Aggregate) AllocPickWall(workers int) time.Duration {
	var tasks []time.Duration
	var stalls time.Duration
	collect := func(as *allocState) {
		for _, d := range as.pickBusy {
			if d > 0 {
				tasks = append(tasks, d)
			}
		}
		stalls += as.stallBusy
	}
	for _, g := range ag.groups {
		collect(g.as)
	}
	for _, v := range ag.vols {
		collect(v.space.as)
	}
	if ag.pool != nil {
		collect(ag.pool.space.as)
	}
	return parallel.Makespan(tasks, workers) + stalls
}
