// Package sim turns measured per-operation service demands into the
// latency-versus-throughput curves the paper's evaluation plots.
//
// The paper drives a storage server from closed-loop Fibre Channel clients
// at increasing load levels (§4.1). We reproduce that with exact Mean Value
// Analysis (MVA) of a closed product-form queueing network: each storage
// device and the CPU are service centers whose per-operation demands are
// *measured* by running the actual allocator, bitmap, RAID, and device
// models over the workload; MVA then yields throughput and response time
// for each client population. The hockey-stick shape of latency versus
// achieved throughput — and where the knee falls — depends only on those
// demands, which is precisely the quantity the AA cache changes.
package sim

import (
	"fmt"
	"time"

	"waflfs/internal/parallel"
)

// Center is one queueing service center.
type Center struct {
	// Name identifies the center in results ("cpu", "rg0/d3", ...).
	Name string
	// Demand is the total service demand one operation places on this
	// center. For a resource with internal parallelism (a multi-core CPU),
	// divide the raw demand by the parallelism before building the center.
	Demand time.Duration
	// Delay marks a pure delay center (no queueing), e.g. network RTT.
	Delay bool
}

// Result is the MVA solution for one client population.
type Result struct {
	Clients    int
	Throughput float64       // operations per second
	Latency    time.Duration // mean response time per operation
	// Utilization per center, same order as the input.
	Utilization []float64
	// QueueLen per center (mean number of ops at the center).
	QueueLen []float64
}

// Solve runs exact MVA for the given centers, per-client think time, and
// client count, returning the steady-state throughput and latency.
func Solve(centers []Center, think time.Duration, clients int) Result {
	if clients <= 0 {
		panic(fmt.Sprintf("sim: %d clients", clients))
	}
	k := len(centers)
	d := make([]float64, k) // demands in seconds
	for i, c := range centers {
		if c.Demand < 0 {
			panic(fmt.Sprintf("sim: negative demand at %s", c.Name))
		}
		d[i] = c.Demand.Seconds()
	}
	z := think.Seconds()

	q := make([]float64, k) // queue lengths, updated per population
	var x float64
	for n := 1; n <= clients; n++ {
		// Response time per center.
		var rTotal float64
		r := make([]float64, k)
		for i := range centers {
			if centers[i].Delay {
				r[i] = d[i]
			} else {
				r[i] = d[i] * (1 + q[i])
			}
			rTotal += r[i]
		}
		x = float64(n) / (z + rTotal)
		for i := range q {
			q[i] = x * r[i]
		}
	}
	res := Result{
		Clients:     clients,
		Throughput:  x,
		Utilization: make([]float64, k),
		QueueLen:    append([]float64(nil), q...),
	}
	var rTotal float64
	for i := range centers {
		res.Utilization[i] = x * d[i]
		if res.Utilization[i] > 1 {
			res.Utilization[i] = 1
		}
	}
	// Response time from the interactive response time law.
	rTotal = float64(clients)/x - z
	res.Latency = time.Duration(rTotal * float64(time.Second))
	return res
}

// Sweep solves for each client count and returns results in order; the
// experiment harness plots latency against achieved throughput from these.
func Sweep(centers []Center, think time.Duration, clientCounts []int) []Result {
	return SweepParallel(centers, think, clientCounts, 1)
}

// SweepParallel is Sweep with the per-population solves fanned across the
// deterministic work pool. Each Solve reads only the shared centers and
// recurs over its own population, so every point is independent and the
// ordered result slice is identical at any worker count.
func SweepParallel(centers []Center, think time.Duration, clientCounts []int, workers int) []Result {
	return parallel.Map(workers, len(clientCounts), func(i int) Result {
		return Solve(centers, think, clientCounts[i])
	})
}

// Bottleneck returns the index and utilization of the most utilized center.
func Bottleneck(r Result) (int, float64) {
	best, bestU := -1, -1.0
	for i, u := range r.Utilization {
		if u > bestU {
			best, bestU = i, u
		}
	}
	return best, bestU
}
