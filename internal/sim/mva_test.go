package sim

import (
	"math"
	"testing"
	"time"
)

func TestSingleClientLatencyIsDemand(t *testing.T) {
	centers := []Center{
		{Name: "cpu", Demand: 100 * time.Microsecond},
		{Name: "disk", Demand: 400 * time.Microsecond},
	}
	r := Solve(centers, time.Millisecond, 1)
	// One client never queues: latency = sum of demands.
	if d := r.Latency - 500*time.Microsecond; d > time.Nanosecond || d < -time.Nanosecond {
		t.Fatalf("latency = %v", r.Latency)
	}
	wantX := 1.0 / (0.0015)
	if math.Abs(r.Throughput-wantX) > 1e-6 {
		t.Fatalf("throughput = %v, want %v", r.Throughput, wantX)
	}
}

func TestThroughputSaturatesAtBottleneck(t *testing.T) {
	centers := []Center{
		{Name: "cpu", Demand: 100 * time.Microsecond},
		{Name: "disk", Demand: 500 * time.Microsecond},
	}
	r := Solve(centers, time.Millisecond, 200)
	// Asymptote: 1/Dmax = 2000 ops/s.
	if r.Throughput > 2000.000001 {
		t.Fatalf("throughput %v exceeds bottleneck bound", r.Throughput)
	}
	if r.Throughput < 1900 {
		t.Fatalf("throughput %v far below saturation", r.Throughput)
	}
	idx, u := Bottleneck(r)
	if centers[idx].Name != "disk" || u < 0.95 {
		t.Fatalf("bottleneck = %s at %v", centers[idx].Name, u)
	}
}

func TestLatencyMonotonicInLoad(t *testing.T) {
	centers := []Center{{Name: "c", Demand: 200 * time.Microsecond}}
	var prev time.Duration
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		r := Solve(centers, 500*time.Microsecond, n)
		if r.Latency < prev {
			t.Fatalf("latency decreased at N=%d: %v < %v", n, r.Latency, prev)
		}
		prev = r.Latency
	}
}

func TestLowerDemandDominates(t *testing.T) {
	// The core comparison the experiments rely on: a configuration with
	// uniformly lower demands achieves >= throughput and <= latency at
	// every load level.
	fast := []Center{{Name: "d", Demand: 300 * time.Microsecond}}
	slow := []Center{{Name: "d", Demand: 400 * time.Microsecond}}
	for _, n := range []int{1, 4, 16, 64, 256} {
		rf := Solve(fast, time.Millisecond, n)
		rs := Solve(slow, time.Millisecond, n)
		if rf.Throughput < rs.Throughput || rf.Latency > rs.Latency {
			t.Fatalf("N=%d: fast (%v, %v) not dominating slow (%v, %v)",
				n, rf.Throughput, rf.Latency, rs.Throughput, rs.Latency)
		}
	}
}

func TestDelayCenterDoesNotQueue(t *testing.T) {
	queueing := []Center{{Name: "q", Demand: 500 * time.Microsecond}}
	delay := []Center{{Name: "d", Demand: 500 * time.Microsecond, Delay: true}}
	rq := Solve(queueing, 0, 50)
	rd := Solve(delay, 0, 50)
	if rd.Latency >= rq.Latency {
		t.Fatalf("delay center latency %v >= queueing %v", rd.Latency, rq.Latency)
	}
	// A pure delay center's latency stays at its demand.
	if rd.Latency != 500*time.Microsecond {
		t.Fatalf("delay latency = %v", rd.Latency)
	}
}

func TestSweep(t *testing.T) {
	centers := []Center{{Name: "c", Demand: time.Millisecond}}
	rs := Sweep(centers, time.Millisecond, []int{1, 2, 4})
	if len(rs) != 3 || rs[0].Clients != 1 || rs[2].Clients != 4 {
		t.Fatalf("sweep = %+v", rs)
	}
}

func TestSolvePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero clients":    func() { Solve([]Center{{Demand: 1}}, 0, 0) },
		"negative demand": func() { Solve([]Center{{Demand: -1}}, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Sanity: utilization law holds (U = X*D, capped at 1).
func TestUtilizationLaw(t *testing.T) {
	centers := []Center{
		{Name: "a", Demand: 100 * time.Microsecond},
		{Name: "b", Demand: 300 * time.Microsecond},
	}
	r := Solve(centers, 2*time.Millisecond, 10)
	for i, c := range centers {
		want := r.Throughput * c.Demand.Seconds()
		if want > 1 {
			want = 1
		}
		if math.Abs(r.Utilization[i]-want) > 1e-9 {
			t.Fatalf("center %d utilization %v, want %v", i, r.Utilization[i], want)
		}
	}
}
