package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"waflfs/internal/stats"
)

// Discrete-event simulation of the same closed queueing network Solve
// analyzes. Where MVA yields exact mean values for the product-form model,
// the DES draws exponential service and think times and measures the full
// response-time distribution — percentiles the paper's latency plots imply
// but means cannot show. The two agree on means (see TestDESMatchesMVA),
// which cross-validates both implementations.

// DESConfig configures one simulation run.
type DESConfig struct {
	// Centers visited by every operation, in order. Delay centers never
	// queue; queueing centers are FCFS single servers.
	Centers []Center
	// Think is the mean client think time (exponential).
	Think time.Duration
	// Clients is the closed population.
	Clients int
	// Ops ends the run after this many completed operations (after warm-up).
	Ops int
	// Warmup operations are discarded before measurement starts.
	Warmup int
	// Seed drives all randomness.
	Seed int64
}

// DESResult summarizes a run.
type DESResult struct {
	Throughput  float64 // completed ops per second of simulated time
	MeanLatency time.Duration
	P50, P95    time.Duration
	Completed   int
}

type desEvent struct {
	at     float64 // simulated seconds
	client int
	stage  int // index of the center the client is arriving at; len = think done
	seq    uint64
}

type desEventQueue []desEvent

func (q desEventQueue) Len() int { return len(q) }
func (q desEventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q desEventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *desEventQueue) Push(x interface{}) { *q = append(*q, x.(desEvent)) }
func (q *desEventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Simulate runs the closed-loop discrete-event model.
func Simulate(cfg DESConfig) DESResult {
	if cfg.Clients <= 0 || cfg.Ops <= 0 {
		panic(fmt.Sprintf("sim: DES needs clients (%d) and ops (%d)", cfg.Clients, cfg.Ops))
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = cfg.Ops / 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := len(cfg.Centers)
	demand := make([]float64, k)
	for i, c := range cfg.Centers {
		demand[i] = c.Demand.Seconds()
	}
	think := cfg.Think.Seconds()

	// Per-center FCFS state: the time its single server frees up.
	serverFree := make([]float64, k)
	opStart := make([]float64, cfg.Clients)

	q := &desEventQueue{}
	var seq uint64
	push := func(at float64, client, stage int) {
		seq++
		heap.Push(q, desEvent{at: at, client: client, stage: stage, seq: seq})
	}
	exp := func(mean float64) float64 {
		if mean <= 0 {
			return 0
		}
		return rng.ExpFloat64() * mean
	}

	// All clients start thinking at time zero.
	for c := 0; c < cfg.Clients; c++ {
		push(exp(think), c, 0)
	}

	var (
		now       float64
		completed int
		measured  int
		latSum    float64
		lats      []float64
		measStart float64
	)
	target := cfg.Warmup + cfg.Ops
	for completed < target && q.Len() > 0 {
		e := heap.Pop(q).(desEvent)
		now = e.at
		if e.stage == 0 {
			opStart[e.client] = now
		}
		if e.stage == k {
			// Operation complete.
			completed++
			if completed == cfg.Warmup {
				measStart = now
			}
			if completed > cfg.Warmup {
				measured++
				l := now - opStart[e.client]
				latSum += l
				lats = append(lats, l)
			}
			push(now+exp(think), e.client, 0)
			continue
		}
		// Arrive at center e.stage.
		if cfg.Centers[e.stage].Delay {
			push(now+exp(demand[e.stage]), e.client, e.stage+1)
			continue
		}
		start := now
		if serverFree[e.stage] > start {
			start = serverFree[e.stage]
		}
		done := start + exp(demand[e.stage])
		serverFree[e.stage] = done
		push(done, e.client, e.stage+1)
	}

	res := DESResult{Completed: measured}
	if measured == 0 {
		return res
	}
	elapsed := now - measStart
	if elapsed > 0 {
		res.Throughput = float64(measured) / elapsed
	}
	res.MeanLatency = time.Duration(latSum / float64(measured) * float64(time.Second))
	// One Summarize sorts the latencies once for every quantile we serve,
	// instead of the old per-percentile copy-and-sort.
	sum := stats.Summarize(lats)
	res.P50 = desSeconds(sum.Percentile(50))
	res.P95 = desSeconds(sum.Percentile(95))
	return res
}

func desSeconds(secs float64) time.Duration {
	return time.Duration(secs * float64(time.Second))
}
