package sim

import (
	"math"
	"testing"
	"time"
)

func TestDESSingleClientMatchesDemands(t *testing.T) {
	centers := []Center{
		{Name: "cpu", Demand: 100 * time.Microsecond},
		{Name: "disk", Demand: 400 * time.Microsecond},
	}
	r := Simulate(DESConfig{Centers: centers, Think: time.Millisecond, Clients: 1, Ops: 50000, Seed: 1})
	// One client never queues: mean latency = sum of mean demands (500µs),
	// within sampling error of the exponential draws.
	want := 500 * time.Microsecond
	if ratio := float64(r.MeanLatency) / float64(want); ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("mean latency = %v, want ~%v", r.MeanLatency, want)
	}
	if r.Completed != 50000 {
		t.Fatalf("completed = %d", r.Completed)
	}
}

// The DES and the exact MVA describe the same product-form network, so
// their means must agree across load levels.
func TestDESMatchesMVA(t *testing.T) {
	centers := []Center{
		{Name: "cpu", Demand: 80 * time.Microsecond},
		{Name: "d0", Demand: 250 * time.Microsecond},
		{Name: "d1", Demand: 200 * time.Microsecond},
	}
	think := 2 * time.Millisecond
	for _, n := range []int{1, 4, 16, 64} {
		mva := Solve(centers, think, n)
		des := Simulate(DESConfig{Centers: centers, Think: think, Clients: n, Ops: 60000, Seed: int64(n)})
		xRatio := des.Throughput / mva.Throughput
		if xRatio < 0.93 || xRatio > 1.07 {
			t.Fatalf("N=%d: DES throughput %.0f vs MVA %.0f (ratio %.3f)",
				n, des.Throughput, mva.Throughput, xRatio)
		}
		lRatio := float64(des.MeanLatency) / float64(mva.Latency)
		if lRatio < 0.90 || lRatio > 1.10 {
			t.Fatalf("N=%d: DES latency %v vs MVA %v (ratio %.3f)",
				n, des.MeanLatency, mva.Latency, lRatio)
		}
	}
}

func TestDESPercentilesOrdered(t *testing.T) {
	centers := []Center{{Name: "d", Demand: 300 * time.Microsecond}}
	r := Simulate(DESConfig{Centers: centers, Think: time.Millisecond, Clients: 16, Ops: 40000, Seed: 7})
	if !(r.P50 <= r.P95) {
		t.Fatalf("P50 %v > P95 %v", r.P50, r.P95)
	}
	if r.P50 > r.MeanLatency*3 || r.P95 < r.MeanLatency/3 {
		t.Fatalf("implausible percentiles: mean %v p50 %v p95 %v", r.MeanLatency, r.P50, r.P95)
	}
	// Under load, the exponential tail makes P95 clearly exceed the mean.
	if float64(r.P95) < 1.2*float64(r.MeanLatency) {
		t.Fatalf("P95 %v not in the tail of mean %v", r.P95, r.MeanLatency)
	}
}

func TestDESDelayCenters(t *testing.T) {
	queueing := Simulate(DESConfig{
		Centers: []Center{{Name: "q", Demand: 500 * time.Microsecond}},
		Think:   0, Clients: 32, Ops: 30000, Seed: 3,
	})
	delay := Simulate(DESConfig{
		Centers: []Center{{Name: "d", Demand: 500 * time.Microsecond, Delay: true}},
		Think:   0, Clients: 32, Ops: 30000, Seed: 3,
	})
	if delay.MeanLatency >= queueing.MeanLatency/4 {
		t.Fatalf("delay center latency %v vs queueing %v — no queueing contrast",
			delay.MeanLatency, queueing.MeanLatency)
	}
}

func TestDESDeterministic(t *testing.T) {
	cfg := DESConfig{
		Centers: []Center{{Name: "c", Demand: time.Millisecond}},
		Think:   time.Millisecond, Clients: 8, Ops: 5000, Seed: 42,
	}
	a, b := Simulate(cfg), Simulate(cfg)
	if a.MeanLatency != b.MeanLatency || a.Throughput != b.Throughput {
		t.Fatal("same seed produced different results")
	}
	cfg.Seed = 43
	c := Simulate(cfg)
	if math.Abs(float64(a.MeanLatency-c.MeanLatency)) == 0 {
		t.Log("different seeds coincidentally equal (unlikely but not fatal)")
	}
}

func TestDESPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"no clients": func() { Simulate(DESConfig{Centers: nil, Clients: 0, Ops: 10}) },
		"no ops":     func() { Simulate(DESConfig{Centers: nil, Clients: 1, Ops: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkDES(b *testing.B) {
	centers := []Center{
		{Name: "cpu", Demand: 80 * time.Microsecond},
		{Name: "d0", Demand: 250 * time.Microsecond},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(DESConfig{Centers: centers, Think: time.Millisecond, Clients: 32, Ops: 10000, Seed: int64(i)})
	}
}
