package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile sorted its input")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range percentile did not panic")
		}
	}()
	Percentile(xs, 101)
}

func TestSummaryMatchesPercentile(t *testing.T) {
	xs := []float64{9, 1, 7, 3, 5, 2, 8, 4, 6}
	s := Summarize(xs)
	for _, p := range []float64{0, 10, 25, 50, 75, 90, 95, 100} {
		if got, want := s.Percentile(p), Percentile(xs, p); got != want {
			t.Fatalf("Summary.Percentile(%v) = %v, want %v", p, got, want)
		}
	}
	if s.Mean() != Mean(xs) {
		t.Fatalf("Summary.Mean = %v, want %v", s.Mean(), Mean(xs))
	}
	if math.Abs(s.Stddev()-Stddev(xs)) > 1e-12 {
		t.Fatalf("Summary.Stddev = %v, want %v", s.Stddev(), Stddev(xs))
	}
	if s.Min() != 1 || s.Max() != 9 || s.N() != 9 {
		t.Fatalf("min/max/n = %v/%v/%d", s.Min(), s.Max(), s.N())
	}
	// Summarize must not mutate its input.
	if xs[0] != 9 {
		t.Fatal("Summarize sorted its input")
	}
}

func TestSummaryEmptyAndPanics(t *testing.T) {
	var empty Summary
	if empty.Mean() != 0 || empty.Percentile(50) != 0 || empty.Min() != 0 ||
		empty.Max() != 0 || empty.Stddev() != 0 || empty.N() != 0 {
		t.Fatal("zero Summary must read zero")
	}
	if Summarize(nil).Percentile(99) != 0 {
		t.Fatal("empty Summarize percentile")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range percentile did not panic")
		}
	}()
	Summarize([]float64{1}).Percentile(-1)
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{3}) != 0 {
		t.Fatal("single-element stddev")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("Stddev = %v", got)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	if len(s.X) != 2 || s.Y[1] != 20 {
		t.Fatalf("series = %+v", s)
	}
}

func TestTable(t *testing.T) {
	tb := Table{Title: "demo", Columns: []string{"name", "value"}}
	tb.AddRow("alpha", 1.25)
	tb.AddRow("b", "raw")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "alpha") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
	// Columns align: both data rows start "name-width" apart.
	if !strings.HasPrefix(lines[2], "alpha  ") || !strings.HasPrefix(lines[3], "b      ") {
		t.Fatalf("alignment broken:\n%s", out)
	}
}

func TestRatios(t *testing.T) {
	if Ratio(10, 4) != 2.5 || Ratio(1, 0) != 0 {
		t.Fatal("Ratio wrong")
	}
	if PercentChange(100, 124) != 24 {
		t.Fatalf("PercentChange = %v", PercentChange(100, 124))
	}
	if PercentChange(0, 5) != 0 {
		t.Fatal("PercentChange zero base")
	}
}
