// Package stats provides the small numeric helpers the experiment
// harnesses use to summarize measurements: means, percentiles, and
// formatted series output matching the rows/curves the paper reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Summary is a one-time-sorted view of a sample set. Percentile sorts a
// fresh copy on every call, which is wasteful when a harness asks for
// several quantiles of the same data; Summarize sorts once and then serves
// Mean/Percentile/Min/Max/Stddev in O(1)/O(1)/O(n) without re-sorting.
type Summary struct {
	sorted []float64
	mean   float64
}

// Summarize copies and sorts xs once. The input slice is not modified.
func Summarize(xs []float64) Summary {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{sorted: sorted, mean: Mean(sorted)}
}

// N returns the sample count.
func (s Summary) N() int { return len(s.sorted) }

// Mean returns the arithmetic mean (0 for an empty summary).
func (s Summary) Mean() float64 { return s.mean }

// Min returns the smallest sample (0 for an empty summary).
func (s Summary) Min() float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sorted[0]
}

// Max returns the largest sample (0 for an empty summary).
func (s Summary) Max() float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sorted[len(s.sorted)-1]
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest rank,
// matching the package-level Percentile but without the per-call sort.
func (s Summary) Percentile(p float64) float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	rank := int(math.Ceil(p/100*float64(len(s.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s.sorted) {
		rank = len(s.sorted) - 1
	}
	return s.sorted[rank]
}

// Stddev returns the population standard deviation.
func (s Summary) Stddev() float64 {
	if len(s.sorted) < 2 {
		return 0
	}
	var acc float64
	for _, x := range s.sorted {
		acc += (x - s.mean) * (x - s.mean)
	}
	return math.Sqrt(acc / float64(len(s.sorted)))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Series is a labeled sequence of (x, y) points — one curve of a figure.
type Series struct {
	Label  string
	X, Y   []float64
	XLabel string
	YLabel string
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table renders rows of named columns with aligned widths, the output
// format of the benchmark harness.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row; cells may be any fmt value.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Ratio returns a/b, or 0 when b is 0; a convenience for improvement
// factors in EXPERIMENTS.md reporting.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// PercentChange returns (new-old)/old in percent, or 0 when old is 0.
func PercentChange(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}
