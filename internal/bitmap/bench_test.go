package bitmap

import (
	"math/rand"
	"testing"

	"waflfs/internal/block"
)

// benchSink defeats dead-code elimination of the measured calls.
var benchSink uint64

// populatedBitmap builds an n-bit bitmap with roughly frac of its bits set
// at random positions, flushed so the benchmarks start clean.
func populatedBitmap(n uint64, frac float64, seed int64) *Bitmap {
	b := New(n)
	rng := rand.New(rand.NewSource(seed))
	for i := uint64(0); i < uint64(float64(n)*frac); i++ {
		b.Set(block.VBN(rng.Int63n(int64(n))))
	}
	b.Flush()
	return b
}

// BenchmarkCountUsed measures the popcount walk behind AA scoring — the
// inner loop of every cache rebuild and mount-time fallback.
func BenchmarkCountUsed(b *testing.B) {
	bm := populatedBitmap(1<<22, 0.5, 1)
	r := block.R(0, block.VBN(bm.Size()))
	b.SetBytes(int64(bm.Size() / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = bm.CountUsed(r)
	}
}

// BenchmarkNextFree measures the allocation cursor's word-level scan on a
// nearly full space, where most words must be skipped.
func BenchmarkNextFree(b *testing.B) {
	bm := populatedBitmap(1<<22, 0.95, 2)
	r := block.R(0, block.VBN(bm.Size()))
	b.ResetTimer()
	v := block.VBN(0)
	for i := 0; i < b.N; i++ {
		nv, ok := bm.NextFree(v, r)
		if !ok {
			v = 0
			continue
		}
		benchSink = uint64(nv)
		v = nv + 1
		if uint64(v) >= bm.Size() {
			v = 0
		}
	}
}

// BenchmarkBulkRange measures SetRange/ClearRange over one AA-sized run
// (32k blocks) — the bulk path snapshots and zone resets use.
func BenchmarkBulkRange(b *testing.B) {
	bm := New(1 << 22)
	r := block.R(0, block.VBN(block.BitsPerBitmapBlock))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			benchSink = bm.SetRange(r)
		} else {
			benchSink = bm.ClearRange(r)
		}
	}
}
