package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"waflfs/internal/block"
)

func TestNewAllFree(t *testing.T) {
	b := New(100000)
	if b.Size() != 100000 || b.Used() != 0 || b.Free() != 100000 {
		t.Fatalf("fresh bitmap: size=%d used=%d free=%d", b.Size(), b.Used(), b.Free())
	}
	if b.DirtyPages() != 0 {
		t.Fatalf("fresh bitmap has %d dirty pages", b.DirtyPages())
	}
	for _, v := range []block.VBN{0, 1, 63, 64, 99999} {
		if b.Test(v) {
			t.Errorf("block %v allocated in fresh bitmap", v)
		}
	}
}

func TestSetClearTest(t *testing.T) {
	b := New(1 << 16)
	if !b.Set(5) {
		t.Fatal("Set(5) reported no change")
	}
	if b.Set(5) {
		t.Fatal("second Set(5) reported change")
	}
	if !b.Test(5) {
		t.Fatal("Test(5) false after Set")
	}
	if b.Used() != 1 {
		t.Fatalf("Used = %d", b.Used())
	}
	if !b.Clear(5) {
		t.Fatal("Clear(5) reported no change")
	}
	if b.Clear(5) {
		t.Fatal("second Clear(5) reported change")
	}
	if b.Used() != 0 || b.Test(5) {
		t.Fatal("Clear did not free the block")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for name, f := range map[string]func(){
		"Test": func() { b.Test(10) },
		"Set":  func() { b.Set(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(10) on size-10 bitmap did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCountUsedWordBoundaries(t *testing.T) {
	b := New(256)
	for _, v := range []block.VBN{0, 63, 64, 127, 128, 200, 255} {
		b.Set(v)
	}
	cases := []struct {
		r    block.Range
		want uint64
	}{
		{block.R(0, 256), 7},
		{block.R(0, 64), 2},
		{block.R(63, 65), 2},
		{block.R(64, 128), 2},
		{block.R(1, 63), 0},
		{block.R(128, 129), 1},
		{block.R(255, 256), 1},
		{block.R(10, 10), 0},
	}
	for _, c := range cases {
		if got := b.CountUsed(c.r); got != c.want {
			t.Errorf("CountUsed(%v) = %d, want %d", c.r, got, c.want)
		}
		if got := b.CountFree(c.r); got != c.r.Len()-c.want {
			t.Errorf("CountFree(%v) = %d, want %d", c.r, got, c.r.Len()-c.want)
		}
	}
}

func TestCountClampsToSize(t *testing.T) {
	b := New(100)
	b.Set(99)
	if got := b.CountUsed(block.R(0, 1000)); got != 1 {
		t.Fatalf("CountUsed over-extended range = %d", got)
	}
	if got := b.CountFree(block.R(0, 1000)); got != 99 {
		t.Fatalf("CountFree over-extended range = %d", got)
	}
}

// Property: CountUsed over a random range matches a naive per-bit count
// after random mutations.
func TestCountMatchesNaive(t *testing.T) {
	const n = 5000
	rng := rand.New(rand.NewSource(1))
	b := New(n)
	ref := make([]bool, n)
	for i := 0; i < 20000; i++ {
		v := block.VBN(rng.Intn(n))
		if rng.Intn(2) == 0 {
			b.Set(v)
			ref[v] = true
		} else {
			b.Clear(v)
			ref[v] = false
		}
	}
	var refUsed uint64
	for _, u := range ref {
		if u {
			refUsed++
		}
	}
	if b.Used() != refUsed {
		t.Fatalf("Used = %d, naive = %d", b.Used(), refUsed)
	}
	for i := 0; i < 500; i++ {
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo)
		r := block.R(block.VBN(lo), block.VBN(hi))
		var want uint64
		for v := lo; v < hi; v++ {
			if ref[v] {
				want++
			}
		}
		if got := b.CountUsed(r); got != want {
			t.Fatalf("CountUsed(%v) = %d, naive = %d", r, got, want)
		}
	}
}

func TestNextFreeNextUsed(t *testing.T) {
	b := New(200)
	full := block.R(0, 200)
	b.SetRange(block.R(0, 100))
	v, ok := b.NextFree(0, full)
	if !ok || v != 100 {
		t.Fatalf("NextFree(0) = %v,%v", v, ok)
	}
	v, ok = b.NextUsed(50, full)
	if !ok || v != 50 {
		t.Fatalf("NextUsed(50) = %v,%v", v, ok)
	}
	if _, ok = b.NextUsed(100, full); ok {
		t.Fatal("NextUsed(100) should fail")
	}
	if _, ok = b.NextFree(0, block.R(0, 100)); ok {
		t.Fatal("NextFree in fully used subrange should fail")
	}
	// Range-restricted scan starts at range start.
	v, ok = b.NextFree(0, block.R(150, 160))
	if !ok || v != 150 {
		t.Fatalf("NextFree range-start = %v,%v", v, ok)
	}
}

func TestNextFreeWordEdges(t *testing.T) {
	b := New(192)
	// Fill word 0 and word 1 entirely; leave bit 128 free.
	b.SetRange(block.R(0, 128))
	v, ok := b.NextFree(0, block.R(0, 192))
	if !ok || v != 128 {
		t.Fatalf("NextFree across words = %v,%v", v, ok)
	}
	// Free exactly the last bit of a word.
	b.Clear(63)
	v, ok = b.NextFree(0, block.R(0, 192))
	if !ok || v != 63 {
		t.Fatalf("NextFree last-bit-of-word = %v,%v", v, ok)
	}
}

func TestFreeRuns(t *testing.T) {
	b := New(100)
	b.SetRange(block.R(10, 20))
	b.SetRange(block.R(30, 31))
	runs := b.FreeRuns(block.R(0, 100))
	want := []block.Range{block.R(0, 10), block.R(20, 30), block.R(31, 100)}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Errorf("run[%d] = %v, want %v", i, runs[i], want[i])
		}
	}
	if got := b.LongestFreeRun(block.R(0, 100)); got != 69 {
		t.Errorf("LongestFreeRun = %d, want 69", got)
	}
	// Fully used range has no runs.
	if runs := b.FreeRuns(block.R(10, 20)); len(runs) != 0 {
		t.Errorf("FreeRuns of used range = %v", runs)
	}
}

// Property: FreeRuns lengths sum to CountFree and runs are maximal (bounded
// by used blocks or range edges).
func TestFreeRunsProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(1000)
		b := New(uint64(n))
		for i := 0; i < n/2; i++ {
			b.Set(block.VBN(rng.Intn(n)))
		}
		r := block.R(0, block.VBN(n))
		runs := b.FreeRuns(r)
		var sum uint64
		prevEnd := block.VBN(0)
		for _, run := range runs {
			if run.Len() == 0 {
				return false
			}
			if run.Start < prevEnd {
				return false // overlapping or unordered
			}
			// Maximality: block before and after the run must be used
			// (or out of range).
			if run.Start > 0 && !b.Test(run.Start-1) {
				return false
			}
			if uint64(run.End) < uint64(n) && !b.Test(run.End) {
				return false
			}
			sum += run.Len()
			prevEnd = run.End
		}
		return sum == b.CountFree(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyPageTracking(t *testing.T) {
	b := New(3 * block.BitsPerBitmapBlock)
	b.Set(0)
	b.Set(1)
	b.Set(block.BitsPerBitmapBlock) // page 1
	if got := b.DirtyPages(); got != 2 {
		t.Fatalf("DirtyPages = %d, want 2", got)
	}
	// A no-op Set must not dirty a page.
	b.Set(0)
	if got := b.DirtyPages(); got != 2 {
		t.Fatalf("DirtyPages after no-op = %d", got)
	}
	if n := b.Flush(); n != 2 {
		t.Fatalf("Flush = %d", n)
	}
	if b.DirtyPages() != 0 {
		t.Fatal("dirty set not reset by Flush")
	}
	// Re-dirty after flush counts again.
	b.Clear(1)
	if got := b.DirtyPages(); got != 1 {
		t.Fatalf("DirtyPages after re-dirty = %d", got)
	}
	st := b.Stats()
	if st.PagesDirtied != 3 || st.PagesFlushed != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestChargeScan(t *testing.T) {
	b := New(5 * block.BitsPerBitmapBlock)
	if n := b.ChargeScan(block.R(0, block.VBN(b.Size()))); n != 5 {
		t.Fatalf("full scan = %d pages", n)
	}
	if n := b.ChargeScan(block.R(1, 2)); n != 1 {
		t.Fatalf("tiny scan = %d pages", n)
	}
	if n := b.ChargeScan(block.R(0, block.BitsPerBitmapBlock+1)); n != 2 {
		t.Fatalf("straddling scan = %d pages", n)
	}
	if n := b.ChargeScan(block.R(7, 7)); n != 0 {
		t.Fatalf("empty scan = %d pages", n)
	}
	if st := b.Stats(); st.PageReads != 8 {
		t.Fatalf("PageReads = %d", st.PageReads)
	}
}

func TestSetClearRange(t *testing.T) {
	b := New(1000)
	if n := b.SetRange(block.R(100, 200)); n != 100 {
		t.Fatalf("SetRange = %d", n)
	}
	if n := b.SetRange(block.R(150, 250)); n != 50 {
		t.Fatalf("overlapping SetRange = %d", n)
	}
	if b.Used() != 150 {
		t.Fatalf("Used = %d", b.Used())
	}
	if n := b.ClearRange(block.R(0, 1000)); n != 150 {
		t.Fatalf("ClearRange = %d", n)
	}
	if b.Used() != 0 {
		t.Fatalf("Used after ClearRange = %d", b.Used())
	}
}

func TestClone(t *testing.T) {
	b := New(1000)
	b.SetRange(block.R(0, 500))
	c := b.Clone()
	if c.Used() != 500 || c.DirtyPages() != b.DirtyPages() {
		t.Fatal("clone state mismatch")
	}
	c.Set(600)
	if b.Test(600) {
		t.Fatal("clone mutation leaked into original")
	}
	b.Clear(0)
	if !c.Test(0) {
		t.Fatal("original mutation leaked into clone")
	}
}

// Property: Used() is always consistent with CountUsed over the whole range.
func TestUsedInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		b := New(4096)
		for _, op := range ops {
			v := block.VBN(op % 4096)
			if op%2 == 0 {
				b.Set(v)
			} else {
				b.Clear(v)
			}
		}
		return b.Used() == b.CountUsed(block.R(0, 4096))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCountFreeAA(b *testing.B) {
	// Score one RAID-agnostic AA (32k blocks) — the hot primitive behind
	// batched AA score updates.
	bm := New(1 << 20)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1<<19; i++ {
		bm.Set(block.VBN(rng.Intn(1 << 20)))
	}
	r := block.R(0, block.BitsPerBitmapBlock)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bm.CountFree(r)
	}
}

func BenchmarkSetClear(b *testing.B) {
	bm := New(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := block.VBN(i & (1<<20 - 1))
		bm.Set(v)
		bm.Clear(v)
	}
}

func TestGrow(t *testing.T) {
	b := New(2 * block.BitsPerBitmapBlock)
	b.Set(5)
	b.Flush()
	oldSize := b.Size()
	b.Grow(oldSize + 3*block.BitsPerBitmapBlock)
	if b.Size() != oldSize+3*block.BitsPerBitmapBlock {
		t.Fatalf("size = %d", b.Size())
	}
	// Existing state survives; new space is free and usable.
	if !b.Test(5) {
		t.Fatal("existing bit lost by grow")
	}
	if b.Test(block.VBN(oldSize)) {
		t.Fatal("grown space not free")
	}
	b.Set(block.VBN(oldSize + 7))
	if b.Used() != 2 {
		t.Fatalf("used = %d", b.Used())
	}
	// The new metafile pages are dirty (they must be persisted).
	if b.DirtyPages() < 3 {
		t.Fatalf("dirty pages = %d after grow", b.DirtyPages())
	}
	// Counting over the grown range works.
	if got := b.CountFree(block.R(block.VBN(oldSize), block.VBN(b.Size()))); got != 3*block.BitsPerBitmapBlock-1 {
		t.Fatalf("grown free = %d", got)
	}
	// Same-size grow is a no-op; shrink panics.
	dirty := b.DirtyPages()
	b.Grow(b.Size())
	if b.DirtyPages() != dirty {
		t.Fatal("no-op grow dirtied pages")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shrink did not panic")
		}
	}()
	b.Grow(1)
}

// Property: the word-level bulk SetRange/ClearRange agree exactly with the
// per-bit loops on counts, content, and dirty pages.
func TestBulkRangeMatchesPerBit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 3 * block.BitsPerBitmapBlock
		fast := New(n)
		slow := New(n)
		perBit := func(b *Bitmap, r block.Range, set bool) uint64 {
			var changed uint64
			for v := r.Start; v < r.End && uint64(v) < b.Size(); v++ {
				if set && b.Set(v) {
					changed++
				}
				if !set && b.Clear(v) {
					changed++
				}
			}
			return changed
		}
		for i := 0; i < 40; i++ {
			lo := rng.Intn(n)
			ln := rng.Intn(n / 4)
			r := block.R(block.VBN(lo), block.VBN(lo+ln))
			set := rng.Intn(2) == 0
			var cf, cs uint64
			if set {
				cf = fast.SetRange(r)
			} else {
				cf = fast.ClearRange(r)
			}
			cs = perBit(slow, r, set)
			if cf != cs || fast.Used() != slow.Used() {
				return false
			}
			if fast.DirtyPages() != slow.DirtyPages() {
				return false
			}
		}
		// Content identical.
		for i := 0; i < 500; i++ {
			v := block.VBN(rng.Intn(n))
			if fast.Test(v) != slow.Test(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetRangeBulk(b *testing.B) {
	bm := New(1 << 22)
	r := block.R(100, 100+block.BitsPerBitmapBlock)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.SetRange(r)
		bm.ClearRange(r)
	}
}

func TestFreeWord(t *testing.T) {
	b := New(200)
	for _, v := range []block.VBN{0, 3, 64, 70, 130, 199} {
		b.Set(v)
	}
	// Every offset and width must agree with per-bit Test.
	for start := block.VBN(0); start < 210; start++ {
		for _, n := range []uint{1, 7, 32, 63, 64} {
			w := b.FreeWord(start, n)
			for i := uint(0); i < 64; i++ {
				v := start + block.VBN(i)
				want := i < n && uint64(v) < b.Size() && !b.Test(v)
				if got := w&(1<<i) != 0; got != want {
					t.Fatalf("FreeWord(%d,%d) bit %d = %v, want %v", start, n, i, got, want)
				}
			}
		}
	}
	if got := b.FreeWord(100, 0); got != 0 {
		t.Errorf("FreeWord(_, 0) = %#x, want 0", got)
	}
}

func TestForEachFreeRunMatchesFreeRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := New(4096)
	for i := 0; i < 1500; i++ {
		b.Set(block.VBN(rng.Intn(4096)))
	}
	for _, r := range []block.Range{block.R(0, 4096), block.R(100, 3000), block.R(63, 65)} {
		want := b.FreeRuns(r)
		var got []block.Range
		b.ForEachFreeRun(r, func(run block.Range) bool {
			got = append(got, run)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("range %v: %d runs vs %d", r, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("range %v run %d: %v vs %v", r, i, got[i], want[i])
			}
		}
		// Early termination stops after the first run.
		calls := 0
		b.ForEachFreeRun(r, func(block.Range) bool { calls++; return false })
		if len(want) > 0 && calls != 1 {
			t.Fatalf("range %v: early-stop walk made %d calls", r, calls)
		}
	}
}
