// Package bitmap implements WAFL-style bitmap metafiles.
//
// WAFL stores free-space information in internal files called bitmap
// metafiles, which are flat and indexed by VBN: the i-th bit tracks the
// state of the i-th block of the file system (§2.5 of the paper). One 4KiB
// metafile block holds 32k bits.
//
// Beyond the bit operations themselves, this package provides the two
// facilities the paper's algorithms are built on:
//
//   - popcount range scans, used to compute AA scores ("the number of free
//     blocks in the AA, computed by consulting bitmap metafiles", §3.3); and
//   - dirty metafile-page accounting, used to measure how many metafile
//     blocks a consistency point must write back. Minimizing I/O to metafile
//     blocks is the explicit goal of RAID-agnostic allocation (§2.5), so the
//     experiments need this number.
//
// A Bitmap is not safe for concurrent mutation; WAFL serializes bitmap
// updates within a consistency point, and this library follows that model.
package bitmap

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"waflfs/internal/block"
)

const (
	wordBits = 64
	// wordsPerPage is the number of 64-bit words per 4KiB metafile block.
	wordsPerPage = block.BitsPerBitmapBlock / wordBits
)

// Bitmap tracks the allocated/free state of every block in one flat VBN
// space. Bit value 1 means allocated (in use); 0 means free, matching the
// convention that a freshly created file system is all zeroes.
type Bitmap struct {
	nbits uint64
	words []uint64
	used  uint64

	// dirty marks metafile pages (4KiB blocks of the bitmap itself) whose
	// contents changed since the last Flush. The page index of VBN v is
	// v / 32768.
	dirty map[uint64]struct{}

	// Counters for the experiment harnesses.
	totalDirtied uint64 // pages ever marked dirty (including re-dirtying after flush)
	totalFlushed uint64 // pages written back by Flush
	// totalReads counts metafile page reads charged by scans. It is atomic
	// because parallel mount-walk shards charge the shared aggregate bitmap
	// concurrently; all other state keeps the single-mutator model.
	totalReads atomic.Uint64
}

// New creates a bitmap covering n blocks, all free.
func New(n uint64) *Bitmap {
	nw := (n + wordBits - 1) / wordBits
	return &Bitmap{
		nbits: n,
		words: make([]uint64, nw),
		dirty: make(map[uint64]struct{}),
	}
}

// Size returns the number of blocks tracked.
func (b *Bitmap) Size() uint64 { return b.nbits }

// Used returns the number of allocated blocks.
func (b *Bitmap) Used() uint64 { return b.used }

// Free returns the number of free blocks.
func (b *Bitmap) Free() uint64 { return b.nbits - b.used }

// Pages returns the number of 4KiB metafile blocks backing the bitmap.
func (b *Bitmap) Pages() uint64 {
	return (b.nbits + block.BitsPerBitmapBlock - 1) / block.BitsPerBitmapBlock
}

func (b *Bitmap) check(v block.VBN) {
	if uint64(v) >= b.nbits {
		panic(fmt.Sprintf("bitmap: VBN %d out of range [0,%d)", uint64(v), b.nbits))
	}
}

// Test reports whether block v is allocated.
func (b *Bitmap) Test(v block.VBN) bool {
	b.check(v)
	return b.words[uint64(v)/wordBits]&(1<<(uint64(v)%wordBits)) != 0
}

func (b *Bitmap) markDirty(v block.VBN) {
	page := v.BitmapBlock()
	if _, ok := b.dirty[page]; !ok {
		b.dirty[page] = struct{}{}
		b.totalDirtied++
	}
}

// Set marks block v allocated. It returns true if the bit changed, false if
// the block was already allocated. The containing metafile page is marked
// dirty only when the bit actually changes.
func (b *Bitmap) Set(v block.VBN) bool {
	b.check(v)
	w, m := uint64(v)/wordBits, uint64(1)<<(uint64(v)%wordBits)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.used++
	b.markDirty(v)
	return true
}

// Clear marks block v free. It returns true if the bit changed.
func (b *Bitmap) Clear(v block.VBN) bool {
	b.check(v)
	w, m := uint64(v)/wordBits, uint64(1)<<(uint64(v)%wordBits)
	if b.words[w]&m == 0 {
		return false
	}
	b.words[w] &^= m
	b.used--
	b.markDirty(v)
	return true
}

// SetRange marks every block in r allocated and returns the number of bits
// that changed. It works a word at a time — the bulk path used when seeding
// aged file systems and applying large free batches.
func (b *Bitmap) SetRange(r block.Range) uint64 {
	return b.bulk(r, true)
}

// ClearRange marks every block in r free and returns the number of bits that
// changed.
func (b *Bitmap) ClearRange(r block.Range) uint64 {
	return b.bulk(r, false)
}

// bulk applies one bit value across r word-at-a-time, maintaining the used
// count and dirty-page set from the per-word change masks.
func (b *Bitmap) bulk(r block.Range, set bool) uint64 {
	r = b.clampRange(r)
	if r.Len() == 0 {
		return 0
	}
	start, end := uint64(r.Start), uint64(r.End)
	var changed uint64
	for w := start / wordBits; w <= (end-1)/wordBits; w++ {
		lo, hi := w*wordBits, (w+1)*wordBits
		mask := ^uint64(0)
		if start > lo {
			mask &= maskFrom(start - lo)
		}
		if end < hi {
			mask &= maskUpto(end - lo)
		}
		var delta uint64
		if set {
			delta = mask &^ b.words[w] // bits that flip 0->1
			b.words[w] |= mask
			b.used += uint64(bits.OnesCount64(delta))
		} else {
			delta = mask & b.words[w] // bits that flip 1->0
			b.words[w] &^= mask
			b.used -= uint64(bits.OnesCount64(delta))
		}
		if delta != 0 {
			changed += uint64(bits.OnesCount64(delta))
			b.markDirty(block.VBN(lo))
		}
	}
	return changed
}

// clampRange truncates r to the bitmap's extent.
func (b *Bitmap) clampRange(r block.Range) block.Range {
	if uint64(r.End) > b.nbits {
		r.End = block.VBN(b.nbits)
	}
	if r.Start > r.End {
		r.Start = r.End
	}
	return r
}

// CountUsed returns the number of allocated blocks in r, using word-level
// popcount. This is the primitive behind AA score computation.
func (b *Bitmap) CountUsed(r block.Range) uint64 {
	r = b.clampRange(r)
	if r.Len() == 0 {
		return 0
	}
	start, end := uint64(r.Start), uint64(r.End)
	firstWord, lastWord := start/wordBits, (end-1)/wordBits
	var n uint64
	if firstWord == lastWord {
		mask := maskRange(start%wordBits, (end-1)%wordBits+1)
		return uint64(bits.OnesCount64(b.words[firstWord] & mask))
	}
	n += uint64(bits.OnesCount64(b.words[firstWord] & maskFrom(start%wordBits)))
	for w := firstWord + 1; w < lastWord; w++ {
		n += uint64(bits.OnesCount64(b.words[w]))
	}
	n += uint64(bits.OnesCount64(b.words[lastWord] & maskUpto((end-1)%wordBits+1)))
	return n
}

// CountFree returns the number of free blocks in r. For an allocation area
// this is exactly the paper's "AA score".
func (b *Bitmap) CountFree(r block.Range) uint64 {
	r = b.clampRange(r)
	return r.Len() - b.CountUsed(r)
}

// maskFrom returns a word mask with bits [from, 64) set.
func maskFrom(from uint64) uint64 { return ^uint64(0) << from }

// maskUpto returns a word mask with bits [0, upto) set.
func maskUpto(upto uint64) uint64 {
	if upto >= wordBits {
		return ^uint64(0)
	}
	return (uint64(1) << upto) - 1
}

// maskRange returns a word mask with bits [from, upto) set.
func maskRange(from, upto uint64) uint64 { return maskFrom(from) & maskUpto(upto) }

// NextFree returns the first free block at or after v within r, or
// (InvalidVBN, false) if none exists. The scan is word-at-a-time.
func (b *Bitmap) NextFree(v block.VBN, r block.Range) (block.VBN, bool) {
	return b.scan(v, r, false)
}

// NextUsed returns the first allocated block at or after v within r.
func (b *Bitmap) NextUsed(v block.VBN, r block.Range) (block.VBN, bool) {
	return b.scan(v, r, true)
}

func (b *Bitmap) scan(v block.VBN, r block.Range, wantSet bool) (block.VBN, bool) {
	r = b.clampRange(r)
	if v < r.Start {
		v = r.Start
	}
	if v >= r.End {
		return block.InvalidVBN, false
	}
	pos, end := uint64(v), uint64(r.End)
	for pos < end {
		w := b.words[pos/wordBits]
		if !wantSet {
			w = ^w
		}
		w &= maskFrom(pos % wordBits)
		if rem := end - (pos / wordBits * wordBits); rem < wordBits {
			w &= maskUpto(rem)
		}
		if w != 0 {
			bit := uint64(bits.TrailingZeros64(w))
			found := pos/wordBits*wordBits + bit
			if found < end {
				return block.VBN(found), true
			}
			return block.InvalidVBN, false
		}
		pos = (pos/wordBits + 1) * wordBits
	}
	return block.InvalidVBN, false
}

// ForEachFreeRun calls fn for each maximal run of contiguous free blocks
// within r, in ascending order, without allocating — the scan hook the
// fragscan analyzer builds its run-length histograms on. fn returning false
// stops the walk.
func (b *Bitmap) ForEachFreeRun(r block.Range, fn func(run block.Range) bool) {
	r = b.clampRange(r)
	pos := r.Start
	for {
		start, ok := b.NextFree(pos, r)
		if !ok {
			return
		}
		endUsed, ok := b.NextUsed(start, r)
		if !ok {
			fn(block.Range{Start: start, End: r.End})
			return
		}
		if !fn(block.Range{Start: start, End: endUsed}) {
			return
		}
		pos = endUsed
	}
}

// FreeRuns returns the maximal runs of contiguous free blocks within r, in
// ascending order. Runs of contiguous free space on a device are what permit
// the long write chains of §2.4; the RAID layer uses this to cost writes.
func (b *Bitmap) FreeRuns(r block.Range) []block.Range {
	var runs []block.Range
	b.ForEachFreeRun(r, func(run block.Range) bool {
		runs = append(runs, run)
		return true
	})
	return runs
}

// LongestFreeRun returns the length of the longest contiguous free run in r.
func (b *Bitmap) LongestFreeRun(r block.Range) uint64 {
	var best uint64
	b.ForEachFreeRun(r, func(run block.Range) bool {
		if l := run.Len(); l > best {
			best = l
		}
		return true
	})
	return best
}

// FreeWord returns an n-bit word (n ≤ 64) whose bit i is set when block
// start+i is free; positions at or beyond the bitmap's end read as
// allocated. One call yields the free state of up to 64 consecutive VBNs,
// which is how stripe-fullness analysis transposes per-device scans without
// per-bit Test calls.
func (b *Bitmap) FreeWord(start block.VBN, n uint) uint64 {
	if n == 0 {
		return 0
	}
	if n > wordBits {
		n = wordBits
	}
	pos := uint64(start)
	if pos >= b.nbits {
		return 0
	}
	off := pos % wordBits
	w := ^b.words[pos/wordBits] >> off
	if off != 0 && pos/wordBits+1 < uint64(len(b.words)) {
		w |= ^b.words[pos/wordBits+1] << (wordBits - off)
	}
	valid := uint64(n)
	if pos+valid > b.nbits {
		valid = b.nbits - pos
	}
	return w & maskUpto(valid)
}

// DirtyPages returns the number of metafile pages modified since the last
// Flush. This is the per-CP metafile write I/O the paper's RAID-agnostic AA
// selection minimizes (§2.5).
func (b *Bitmap) DirtyPages() int { return len(b.dirty) }

// DirtyPageList returns the sorted-unspecified set of dirty page indices.
func (b *Bitmap) DirtyPageList() []uint64 {
	out := make([]uint64, 0, len(b.dirty))
	for p := range b.dirty {
		out = append(out, p)
	}
	return out
}

// Flush simulates writing all dirty metafile pages back to storage at a CP
// boundary. It returns the number of pages written and resets the dirty set.
func (b *Bitmap) Flush() int {
	n := len(b.dirty)
	b.totalFlushed += uint64(n)
	if n > 0 {
		b.dirty = make(map[uint64]struct{})
	}
	return n
}

// ChargeScan records that a linear walk read the metafile pages covering r.
// Rebuilding AA caches without a TopAA metafile requires such a walk (§3.4);
// the Fig. 10 experiment charges its cost through this counter.
func (b *Bitmap) ChargeScan(r block.Range) uint64 {
	r = b.clampRange(r)
	if r.Len() == 0 {
		return 0
	}
	first := r.Start.BitmapBlock()
	last := (r.End - 1).BitmapBlock()
	n := last - first + 1
	b.totalReads.Add(n)
	return n
}

// Stats is a snapshot of the bitmap's accounting counters.
type Stats struct {
	PagesDirtied uint64 // pages marked dirty over the bitmap's lifetime
	PagesFlushed uint64 // pages written back by Flush
	PageReads    uint64 // pages read by charged scans
}

// Stats returns the lifetime counters.
func (b *Bitmap) Stats() Stats {
	return Stats{PagesDirtied: b.totalDirtied, PagesFlushed: b.totalFlushed, PageReads: b.totalReads.Load()}
}

// Grow extends the bitmap to track n blocks (n must not shrink it). The new
// blocks start free; the metafile pages that come into existence are marked
// dirty so the next CP persists them. This is the path behind growing an
// aggregate by adding RAID groups (§4.2).
func (b *Bitmap) Grow(n uint64) {
	if n < b.nbits {
		panic(fmt.Sprintf("bitmap: Grow(%d) would shrink %d-block bitmap", n, b.nbits))
	}
	if n == b.nbits {
		return
	}
	oldPages := b.Pages()
	nw := (n + wordBits - 1) / wordBits
	for uint64(len(b.words)) < nw {
		b.words = append(b.words, 0)
	}
	b.nbits = n
	for p := oldPages; p < b.Pages(); p++ {
		if _, ok := b.dirty[p]; !ok {
			b.dirty[p] = struct{}{}
			b.totalDirtied++
		}
	}
}

// Clone returns a deep copy of the bitmap including dirty state. It exists
// so experiments can snapshot an aged file system and replay different
// policies against identical fragmentation.
func (b *Bitmap) Clone() *Bitmap {
	nb := &Bitmap{
		nbits: b.nbits,
		words: append([]uint64(nil), b.words...),
		used:  b.used,
		dirty: make(map[uint64]struct{}, len(b.dirty)),
	}
	for p := range b.dirty {
		nb.dirty[p] = struct{}{}
	}
	return nb
}
