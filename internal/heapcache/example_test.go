package heapcache_test

import (
	"fmt"

	"waflfs/internal/aa"
	"waflfs/internal/heapcache"
)

// Example shows the RAID-aware AA cache: heapify all AA scores, serve the
// best to the write allocator, and apply the CP's batched deltas.
func Example() {
	// A tiny RAID group with four AAs, scored from the bitmap.
	c := heapcache.NewFromScores([]uint64{1200, 4096, 37, 2048})

	best, _ := c.PopBest()
	fmt.Printf("write to AA %d (%d free blocks)\n", best.ID, best.Score)

	// The allocator drained it; at the CP boundary it returns with its new
	// score while frees elsewhere arrive as batched deltas.
	c.Insert(best.ID, 0)
	c.ApplyDeltas(map[aa.ID]int64{2: +500})

	for _, e := range c.TopK(2) {
		fmt.Printf("AA %d: %d\n", e.ID, e.Score)
	}

	// Output:
	// write to AA 1 (4096 free blocks)
	// AA 3: 2048
	// AA 0: 1200
}
