package heapcache

import "waflfs/internal/aa"

// Sharded stripes a Cache into per-shard pick queues so steady-state picks
// touch only shard-local state. Each shard owns a bounded FIFO queue of
// entries staged out of the shared heap in best-first batches, plus one
// standby batch ("staged") that a refill pipeline fills ahead of
// exhaustion: when the queue drains, the standby batch swaps in without
// touching the shared heap on the pick path.
//
// Held entries (queued or staged) are popped out of the shared heap, so
// they are untracked there and their scores are frozen at stage time. The
// wafl layer's CP fold skips untracked IDs without deleting their pending
// deltas, which preserves the scrub invariant for every held entry:
//
//	frozenScore == bitmapScore - pendingDelta
//
// because bitmap mutations and delta mutations always move together.
//
// Sharded is deterministic and, like Cache, not safe for concurrent use:
// the shard index models a per-worker context, but callers drive it from
// one goroutine with a fixed pick→shard assignment.
type Sharded struct {
	shared *Cache
	shards int
	batch  int
	low    int

	queues [][]Entry
	staged [][]Entry

	// gen is the current CP generation; queueGen/stagedGen record the
	// generation each shard's batch was staged under. Pipelined CPs advance
	// gen at each seal so the watchdog can assert no held batch predates
	// the sealed generation (holds must never survive a full CP cycle
	// without either being consumed or flushed shared-ward).
	gen       uint64
	queueGen  []uint64
	stagedGen []uint64

	m ShardedMetrics
}

// ShardedMetrics counts shard-queue traffic since construction.
type ShardedMetrics struct {
	// LocalPops counts picks served from a shard queue.
	LocalPops uint64
	// Staged counts entries moved shared→standby by Stage.
	Staged uint64
	// StageCalls counts Stage invocations.
	StageCalls uint64
	// Swaps counts standby batches swapped in when a queue drained —
	// each one is a refill that cost the pick path nothing.
	Swaps uint64
	// Flushes counts entries returned shared-ward by FlushShard.
	Flushes uint64
}

// NewSharded wraps shared with n per-shard queues of at most batch entries
// each and stages every shard's initial batch immediately, so the first
// picks are already shard-local. Construction-time staging is setup cost;
// callers charge only the staging they invoke.
func NewSharded(shared *Cache, n, batch int) *Sharded {
	if n < 1 {
		n = 1
	}
	if batch < 1 {
		batch = 1
	}
	s := &Sharded{
		shared:    shared,
		shards:    n,
		batch:     batch,
		low:       batch / 2,
		queues:    make([][]Entry, n),
		staged:    make([][]Entry, n),
		queueGen:  make([]uint64, n),
		stagedGen: make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		s.queues[i] = s.popBatch()
	}
	return s
}

// popBatch pops up to batch best entries from the shared heap. The batch is
// descending by heap order, so the queue front is always the shard's best.
func (s *Sharded) popBatch() []Entry {
	var out []Entry
	for len(out) < s.batch {
		e, ok := s.shared.PopBest()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out
}

// Shards returns the stripe width.
func (s *Sharded) Shards() int { return s.shards }

// Metrics returns a copy of the traffic counters.
func (s *Sharded) Metrics() ShardedMetrics { return s.m }

// Pop removes and returns the shard's best held entry. When the queue has
// drained it swaps the standby batch in first; only if both are empty does
// it report false, signalling the caller to refill synchronously (a stall).
func (s *Sharded) Pop(shard int) (Entry, bool) {
	if len(s.queues[shard]) == 0 && len(s.staged[shard]) > 0 {
		s.queues[shard], s.staged[shard] = s.staged[shard], nil
		s.queueGen[shard] = s.stagedGen[shard]
		s.m.Swaps++
	}
	q := s.queues[shard]
	if len(q) == 0 {
		return Entry{}, false
	}
	e := q[0]
	s.queues[shard] = q[1:]
	s.m.LocalPops++
	return e, true
}

// Peek returns the shard's next entry without consuming it.
func (s *Sharded) Peek(shard int) (Entry, bool) {
	if q := s.queues[shard]; len(q) > 0 {
		return q[0], true
	}
	if st := s.staged[shard]; len(st) > 0 {
		return st[0], true
	}
	return Entry{}, false
}

// Low reports whether the shard should be refilled ahead of exhaustion: no
// standby batch, queue at or below half a batch, and the shared heap still
// has entries to stage.
func (s *Sharded) Low(shard int) bool {
	return len(s.staged[shard]) == 0 && len(s.queues[shard]) <= s.low && s.shared.Len() > 0
}

// Stage tops the shard's standby batch up to batch entries from the shared
// heap, best-first, and returns the number of entries moved.
func (s *Sharded) Stage(shard int) int {
	n := 0
	for len(s.staged[shard]) < s.batch {
		e, ok := s.shared.PopBest()
		if !ok {
			break
		}
		s.staged[shard] = append(s.staged[shard], e)
		n++
	}
	if n > 0 {
		s.stagedGen[shard] = s.gen
	}
	s.m.StageCalls++
	s.m.Staged += uint64(n)
	return n
}

// AdvanceGen bumps the generation stamp pipelined CPs seal under. Held
// batches keep the generation they were staged at; the watchdog asserts
// held gen ≤ current gen and, in pipelined mode, that no batch lags more
// than one generation behind.
func (s *Sharded) AdvanceGen() { s.gen++ }

// Gen returns the current staging generation.
func (s *Sharded) Gen() uint64 { return s.gen }

// HeldGens visits the generation stamp of every non-empty held batch in
// shard order, queue before standby.
func (s *Sharded) HeldGens(yield func(shard int, gen uint64)) {
	for i := 0; i < s.shards; i++ {
		if len(s.queues[i]) > 0 {
			yield(i, s.queueGen[i])
		}
		if len(s.staged[i]) > 0 {
			yield(i, s.stagedGen[i])
		}
	}
}

// TamperHeldGen is a fault-injection hook for watchdog tests: it stamps the
// first non-empty held batch with a generation ahead of the current one and
// reports whether a batch was found. Production code never calls it.
func (s *Sharded) TamperHeldGen() bool {
	for i := 0; i < s.shards; i++ {
		if len(s.queues[i]) > 0 {
			s.queueGen[i] = s.gen + 1
			return true
		}
		if len(s.staged[i]) > 0 {
			s.stagedGen[i] = s.gen + 1
			return true
		}
	}
	return false
}

// FlushShard returns every entry the shard holds to the shared heap at its
// frozen score and returns the count. Used when the shard-local view goes
// stale (a zero-score front) or a pass needs the shared heap complete.
func (s *Sharded) FlushShard(shard int) int {
	n := 0
	for _, e := range s.queues[shard] {
		s.shared.Insert(e.ID, e.Score)
		n++
	}
	for _, e := range s.staged[shard] {
		s.shared.Insert(e.ID, e.Score)
		n++
	}
	s.queues[shard] = nil
	s.staged[shard] = nil
	s.m.Flushes += uint64(n)
	return n
}

// FlushAll flushes every shard. Returns the total entries returned.
func (s *Sharded) FlushAll() int {
	n := 0
	for i := 0; i < s.shards; i++ {
		n += s.FlushShard(i)
	}
	return n
}

// Len returns the number of entries the shard holds (queue + standby).
func (s *Sharded) Len(shard int) int {
	return len(s.queues[shard]) + len(s.staged[shard])
}

// HeldCount returns the total entries held across all shards.
func (s *Sharded) HeldCount() int {
	n := 0
	for i := 0; i < s.shards; i++ {
		n += s.Len(i)
	}
	return n
}

// Holds reports whether any shard holds id.
func (s *Sharded) Holds(id aa.ID) bool {
	for i := 0; i < s.shards; i++ {
		for _, e := range s.queues[i] {
			if e.ID == id {
				return true
			}
		}
		for _, e := range s.staged[i] {
			if e.ID == id {
				return true
			}
		}
	}
	return false
}

// Each visits every held entry in shard order, queue before standby.
func (s *Sharded) Each(yield func(shard int, e Entry)) {
	for i := 0; i < s.shards; i++ {
		for _, e := range s.queues[i] {
			yield(i, e)
		}
		for _, e := range s.staged[i] {
			yield(i, e)
		}
	}
}

// Best returns the best entry across every shard and the shared heap. The
// held set is bounded by 2×batch×shards, so a full scan stays cheap.
func (s *Sharded) Best() (Entry, bool) {
	best, ok := s.shared.Best()
	s.Each(func(_ int, e Entry) {
		if !ok || higher(e, best) {
			best, ok = e, true
		}
	})
	return best, ok
}

// TamperHeldScore is a fault-injection hook for watchdog tests: it adds
// delta to the frozen score of the first held entry and reports whether an
// entry was found. Production code never calls it.
func (s *Sharded) TamperHeldScore(delta int64) bool {
	for i := 0; i < s.shards; i++ {
		if len(s.queues[i]) > 0 {
			s.queues[i][0].Score = uint64(int64(s.queues[i][0].Score) + delta)
			return true
		}
		if len(s.staged[i]) > 0 {
			s.staged[i][0].Score = uint64(int64(s.staged[i][0].Score) + delta)
			return true
		}
	}
	return false
}

// CheckInvariants validates the shard structures: no entry held twice, no
// held entry still tracked in the shared heap, batch bounds respected, and
// the shared heap's own invariants. Panics on violation (test use).
func (s *Sharded) CheckInvariants() {
	seen := make(map[aa.ID]bool)
	s.Each(func(shard int, e Entry) {
		if seen[e.ID] {
			panic("heapcache: sharded: entry held twice")
		}
		seen[e.ID] = true
		if s.shared.Tracked(e.ID) {
			panic("heapcache: sharded: held entry still tracked in shared heap")
		}
	})
	for i := 0; i < s.shards; i++ {
		if len(s.queues[i]) > s.batch || len(s.staged[i]) > s.batch {
			panic("heapcache: sharded: batch bound exceeded")
		}
	}
	s.shared.CheckInvariants()
}
