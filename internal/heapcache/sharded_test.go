package heapcache

import (
	"testing"

	"waflfs/internal/aa"
)

func newShardedFixture(t *testing.T, n int, shards, batch int) (*Cache, *Sharded) {
	t.Helper()
	scores := make([]uint64, n)
	for i := range scores {
		scores[i] = uint64(1000 - i) // descending: best is ID 0
	}
	c := NewFromScores(scores)
	s := NewSharded(c, shards, batch)
	s.CheckInvariants()
	return c, s
}

func TestShardedInitialStaging(t *testing.T) {
	c, s := newShardedFixture(t, 64, 4, 8)
	if got := s.HeldCount(); got != 32 {
		t.Fatalf("held %d entries after construction, want 32", got)
	}
	if got := c.Len(); got != 32 {
		t.Fatalf("shared heap holds %d, want 32", got)
	}
	// Initial batches are dealt best-first shard by shard: shard 0 gets the
	// global best.
	e, ok := s.Peek(0)
	if !ok || e.ID != 0 || e.Score != 1000 {
		t.Fatalf("shard 0 front = %+v,%v, want ID 0 score 1000", e, ok)
	}
	// Every held ID must be untracked in the shared heap.
	s.Each(func(_ int, e Entry) {
		if c.Tracked(e.ID) {
			t.Fatalf("held AA %d still tracked in shared heap", e.ID)
		}
	})
}

func TestShardedPopIsQueueOrdered(t *testing.T) {
	_, s := newShardedFixture(t, 64, 2, 4)
	var last uint64 = 1 << 62
	for i := 0; i < 4; i++ {
		e, ok := s.Pop(0)
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if e.Score > last {
			t.Fatalf("pop %d: score %d rose above %d — batch not best-first", i, e.Score, last)
		}
		last = e.Score
	}
	s.CheckInvariants()
}

func TestShardedSwapHidesRefill(t *testing.T) {
	_, s := newShardedFixture(t, 64, 2, 4)
	// Stage a standby batch, then drain the queue: the next pop must swap
	// the standby batch in rather than fail.
	if n := s.Stage(0); n != 4 {
		t.Fatalf("staged %d, want 4", n)
	}
	for i := 0; i < 4; i++ {
		if _, ok := s.Pop(0); !ok {
			t.Fatalf("queue pop %d failed", i)
		}
	}
	before := s.Metrics().Swaps
	e, ok := s.Pop(0)
	if !ok {
		t.Fatal("pop after drain failed despite standby batch")
	}
	if s.Metrics().Swaps != before+1 {
		t.Fatalf("swap count %d, want %d", s.Metrics().Swaps, before+1)
	}
	if e.Score == 0 {
		t.Fatalf("swapped-in front has zero score: %+v", e)
	}
	s.CheckInvariants()
}

func TestShardedLowAndStall(t *testing.T) {
	_, s := newShardedFixture(t, 64, 2, 4)
	if s.Low(0) {
		t.Fatal("full queue reported low")
	}
	s.Pop(0)
	s.Pop(0)
	if !s.Low(0) { // 2 left == batch/2, no standby
		t.Fatal("half-drained queue with no standby not reported low")
	}
	s.Stage(0)
	if s.Low(0) {
		t.Fatal("queue with standby batch reported low")
	}
	// Exhaust queue + standby: Pop must finally report a stall.
	for {
		if _, ok := s.Pop(1); !ok {
			break
		}
	}
	if _, ok := s.Pop(1); ok {
		t.Fatal("pop succeeded on exhausted shard")
	}
	s.CheckInvariants()
}

func TestShardedFlushRestoresShared(t *testing.T) {
	c, s := newShardedFixture(t, 32, 4, 4)
	held := s.HeldCount()
	if n := s.FlushAll(); n != held {
		t.Fatalf("flushed %d, want %d", n, held)
	}
	if c.Len() != 32 {
		t.Fatalf("shared heap has %d after flush, want 32", c.Len())
	}
	if s.HeldCount() != 0 {
		t.Fatal("entries still held after FlushAll")
	}
	// Frozen scores were preserved.
	for id := aa.ID(0); id < 32; id++ {
		if got := c.Score(id); got != uint64(1000-int(id)) {
			t.Fatalf("AA %d score %d after flush, want %d", id, got, 1000-int(id))
		}
	}
	s.CheckInvariants()
}

func TestShardedBestSpansHeldAndShared(t *testing.T) {
	_, s := newShardedFixture(t, 64, 4, 8)
	e, ok := s.Best()
	if !ok || e.ID != 0 {
		t.Fatalf("Best = %+v,%v, want global best ID 0", e, ok)
	}
	// Consume the best few; Best must keep tracking the true max.
	s.Pop(0)
	e, ok = s.Best()
	if !ok || e.Score != 999 {
		t.Fatalf("Best after pop = %+v,%v, want score 999", e, ok)
	}
}

func TestShardedTamperBreaksInvariant(t *testing.T) {
	c, s := newShardedFixture(t, 16, 2, 4)
	if !s.TamperHeldScore(+7) {
		t.Fatal("tamper found no held entry")
	}
	e, _ := s.Peek(0)
	if e.Score != 1007 {
		t.Fatalf("tampered front score %d, want 1007", e.Score)
	}
	_ = c
}
