// Package heapcache implements the RAID-aware allocation-area cache: an
// in-memory max-heap of all AAs in a RAID group sorted by score (§3.3.1 of
// the paper).
//
// The heap is rebalanced at the end of each consistency point after the
// batched score updates for AAs whose blocks were allocated or freed. The
// memory cost — one entry per AA — is justified for RAID groups because
// selecting the single best AA has a large effect on full-stripe writes and
// write-chain length; the RAID-agnostic case uses package hbps instead.
//
// The cache supports partial population so that a TopAA metafile can seed
// it with the 512 best AAs at mount time while a background walk inserts the
// rest (§3.4).
package heapcache

import (
	"fmt"

	"waflfs/internal/aa"
)

// Entry pairs an allocation area with its score (free-block count).
type Entry struct {
	ID    aa.ID
	Score uint64
}

// Cache is an indexed max-heap over AA scores. The zero value is not usable;
// call New.
type Cache struct {
	heap []Entry
	// pos maps AA id -> index in heap, or -1 when the AA is not tracked.
	pos []int32

	m Metrics
}

// Metrics counts the structural work the heap has done since construction
// (bulk heapify in NewFromScores is not counted). Swaps is the rebalance
// cost: one sift step moved an entry. The observability layer exposes these
// per RAID group.
type Metrics struct {
	Inserts uint64
	Updates uint64
	Pops    uint64
	Removes uint64
	Swaps   uint64
}

// Ops sums the logical operations (not swaps).
func (m Metrics) Ops() uint64 { return m.Inserts + m.Updates + m.Pops + m.Removes }

// Metrics returns the cache's operation counters.
func (c *Cache) Metrics() Metrics { return c.m }

// New creates an empty cache able to track AAs with ids in [0, numAAs).
func New(numAAs int) *Cache {
	if numAAs <= 0 {
		panic("heapcache: numAAs must be positive")
	}
	c := &Cache{pos: make([]int32, numAAs)}
	for i := range c.pos {
		c.pos[i] = -1
	}
	return c
}

// NewFromScores builds a fully populated cache from a score-per-AA slice in
// O(n) (heapify), as a cache rebuild from a bitmap walk does.
func NewFromScores(scores []uint64) *Cache {
	c := New(len(scores))
	c.heap = make([]Entry, len(scores))
	for i, s := range scores {
		c.heap[i] = Entry{ID: aa.ID(i), Score: s}
		c.pos[i] = int32(i)
	}
	for i := len(c.heap)/2 - 1; i >= 0; i-- {
		c.siftDown(i)
	}
	c.m = Metrics{} // bulk heapify is construction, not operational work
	return c
}

// Len returns the number of AAs currently tracked.
func (c *Cache) Len() int { return len(c.heap) }

// Capacity returns the AA id space size.
func (c *Cache) Capacity() int { return len(c.pos) }

// Tracked reports whether AA id is in the heap.
func (c *Cache) Tracked(id aa.ID) bool {
	return int(id) < len(c.pos) && c.pos[id] >= 0
}

// Entries returns a copy of every tracked (AA, score) pair in internal heap
// order. This is the cheap O(n) enumeration hook analytics use to histogram
// the cache's view of AA scores without disturbing heap invariants; callers
// that need a deterministic ranking should sort or use TopK.
func (c *Cache) Entries() []Entry {
	return append([]Entry(nil), c.heap...)
}

// Score returns the cached score of AA id; it panics if untracked.
func (c *Cache) Score(id aa.ID) uint64 {
	c.mustTracked(id)
	return c.heap[c.pos[id]].Score
}

func (c *Cache) mustTracked(id aa.ID) {
	if !c.Tracked(id) {
		panic(fmt.Sprintf("heapcache: AA %d not tracked", id))
	}
}

// Insert adds AA id with the given score, or updates it if already present.
func (c *Cache) Insert(id aa.ID, score uint64) {
	if int(id) >= len(c.pos) {
		panic(fmt.Sprintf("heapcache: AA %d outside capacity %d", id, len(c.pos)))
	}
	if c.Tracked(id) {
		c.Update(id, score)
		return
	}
	c.m.Inserts++
	c.heap = append(c.heap, Entry{ID: id, Score: score})
	c.pos[id] = int32(len(c.heap) - 1)
	c.siftUp(len(c.heap) - 1)
}

// Update changes the score of a tracked AA and restores the heap property.
func (c *Cache) Update(id aa.ID, score uint64) {
	c.mustTracked(id)
	c.m.Updates++
	i := int(c.pos[id])
	old := c.heap[i].Score
	c.heap[i].Score = score
	switch {
	case score > old:
		c.siftUp(i)
	case score < old:
		c.siftDown(i)
	}
}

// Best returns the AA with the maximum score without removing it.
func (c *Cache) Best() (Entry, bool) {
	if len(c.heap) == 0 {
		return Entry{}, false
	}
	return c.heap[0], true
}

// Second returns the runner-up: the best AA the allocator would have
// picked had Best been absent. In a binary max-heap that is the higher of
// the root's two children. The provenance layer records it alongside each
// pick; it equals Best() observed immediately after a PopBest.
func (c *Cache) Second() (Entry, bool) {
	switch len(c.heap) {
	case 0, 1:
		return Entry{}, false
	case 2:
		return c.heap[1], true
	}
	if higher(c.heap[2], c.heap[1]) {
		return c.heap[2], true
	}
	return c.heap[1], true
}

// PopBest removes and returns the maximum-score AA. The write allocator
// pops the AA it is about to fill and re-inserts it (with its reduced
// score) at the CP boundary.
func (c *Cache) PopBest() (Entry, bool) {
	if len(c.heap) == 0 {
		return Entry{}, false
	}
	top := c.heap[0]
	c.m.Pops++
	c.remove(0)
	return top, true
}

// Remove drops AA id from the heap (e.g. when an AA leaves the file system
// after a shrink). It panics if untracked.
func (c *Cache) Remove(id aa.ID) {
	c.mustTracked(id)
	c.m.Removes++
	c.remove(int(c.pos[id]))
}

func (c *Cache) remove(i int) {
	last := len(c.heap) - 1
	c.pos[c.heap[i].ID] = -1
	if i != last {
		c.heap[i] = c.heap[last]
		c.pos[c.heap[i].ID] = int32(i)
	}
	c.heap = c.heap[:last]
	if i < len(c.heap) {
		c.siftDown(i)
		c.siftUp(i)
	}
}

// ApplyDeltas applies a batch of score deltas (allocations negative, frees
// positive) and rebalances, as happens at the end of each consistency
// point. AAs not yet tracked are ignored (they will be inserted by the
// background rebuild with their then-current score).
func (c *Cache) ApplyDeltas(deltas map[aa.ID]int64) {
	for id, d := range deltas {
		if !c.Tracked(id) {
			continue
		}
		s := int64(c.Score(id)) + d
		if s < 0 {
			s = 0
		}
		c.Update(id, uint64(s))
	}
}

// TopK returns the k highest-scoring entries in descending score order
// without disturbing the heap. This is the export path for the RAID-aware
// TopAA metafile, which persists the 512 best AAs (§3.4).
func (c *Cache) TopK(k int) []Entry {
	if k <= 0 || len(c.heap) == 0 {
		return nil
	}
	if k > len(c.heap) {
		k = len(c.heap)
	}
	// Partial heap traversal using a candidate max-heap of heap indices.
	type cand struct{ idx int }
	cands := []cand{{0}}
	less := func(a, b cand) bool { return higher(c.heap[b.idx], c.heap[a.idx]) }
	pop := func() cand {
		best := 0
		for i := 1; i < len(cands); i++ {
			if less(cands[best], cands[i]) {
				best = i
			}
		}
		out := cands[best]
		cands[best] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]
		return out
	}
	out := make([]Entry, 0, k)
	for len(out) < k && len(cands) > 0 {
		top := pop()
		out = append(out, c.heap[top.idx])
		if l := 2*top.idx + 1; l < len(c.heap) {
			cands = append(cands, cand{l})
		}
		if r := 2*top.idx + 2; r < len(c.heap) {
			cands = append(cands, cand{r})
		}
	}
	return out
}

// higher reports whether a has strictly higher priority than b: greater
// score, with ties broken toward the lower AA id. The tie-break matters on
// fresh or freshly cleaned storage, where many AAs share a score: WAFL
// consumes them in block-number order, which keeps device access sequential
// (and, on SMR, in shingle-zone order).
func higher(a, b Entry) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

func (c *Cache) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !higher(c.heap[i], c.heap[parent]) {
			return
		}
		c.swap(parent, i)
		i = parent
	}
}

func (c *Cache) siftDown(i int) {
	n := len(c.heap)
	for {
		l, r, largest := 2*i+1, 2*i+2, i
		if l < n && higher(c.heap[l], c.heap[largest]) {
			largest = l
		}
		if r < n && higher(c.heap[r], c.heap[largest]) {
			largest = r
		}
		if largest == i {
			return
		}
		c.swap(i, largest)
		i = largest
	}
}

func (c *Cache) swap(i, j int) {
	c.m.Swaps++
	c.heap[i], c.heap[j] = c.heap[j], c.heap[i]
	c.pos[c.heap[i].ID] = int32(i)
	c.pos[c.heap[j].ID] = int32(j)
}

// CheckInvariants verifies the heap property and the position index; it is
// used by tests and returns a descriptive error on violation.
func (c *Cache) CheckInvariants() error {
	for i := 1; i < len(c.heap); i++ {
		parent := (i - 1) / 2
		if higher(c.heap[i], c.heap[parent]) {
			return fmt.Errorf("heap property violated at %d (parent %d): %v outranks %v",
				i, parent, c.heap[i], c.heap[parent])
		}
	}
	seen := 0
	for id, p := range c.pos {
		if p < 0 {
			continue
		}
		seen++
		if int(p) >= len(c.heap) || c.heap[p].ID != aa.ID(id) {
			return fmt.Errorf("position index broken for AA %d", id)
		}
	}
	if seen != len(c.heap) {
		return fmt.Errorf("pos index tracks %d entries, heap has %d", seen, len(c.heap))
	}
	return nil
}
