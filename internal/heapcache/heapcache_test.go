package heapcache

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"waflfs/internal/aa"
)

func TestEmpty(t *testing.T) {
	c := New(10)
	if _, ok := c.Best(); ok {
		t.Fatal("Best on empty returned ok")
	}
	if _, ok := c.PopBest(); ok {
		t.Fatal("PopBest on empty returned ok")
	}
	if c.Len() != 0 || c.Capacity() != 10 {
		t.Fatalf("len=%d cap=%d", c.Len(), c.Capacity())
	}
}

func TestInsertBest(t *testing.T) {
	c := New(10)
	c.Insert(3, 100)
	c.Insert(7, 500)
	c.Insert(1, 300)
	best, ok := c.Best()
	if !ok || best.ID != 7 || best.Score != 500 {
		t.Fatalf("Best = %+v", best)
	}
	if c.Score(1) != 300 {
		t.Fatalf("Score(1) = %d", c.Score(1))
	}
	if !c.Tracked(3) || c.Tracked(4) {
		t.Fatal("Tracked wrong")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertExistingUpdates(t *testing.T) {
	c := New(4)
	c.Insert(0, 10)
	c.Insert(0, 99)
	if c.Len() != 1 || c.Score(0) != 99 {
		t.Fatalf("len=%d score=%d", c.Len(), c.Score(0))
	}
}

func TestPopBestDrainsInOrder(t *testing.T) {
	scores := []uint64{5, 9, 1, 7, 3, 9, 0, 2}
	c := NewFromScores(scores)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for {
		e, ok := c.PopBest()
		if !ok {
			break
		}
		got = append(got, e.Score)
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	want := append([]uint64(nil), scores...)
	sort.Slice(want, func(i, j int) bool { return want[i] > want[j] })
	if len(got) != len(want) {
		t.Fatalf("drained %d entries", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

func TestUpdateMoves(t *testing.T) {
	c := NewFromScores([]uint64{10, 20, 30})
	c.Update(0, 100)
	if best, _ := c.Best(); best.ID != 0 {
		t.Fatalf("Best after raise = %+v", best)
	}
	c.Update(0, 1)
	if best, _ := c.Best(); best.ID != 2 {
		t.Fatalf("Best after drop = %+v", best)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemove(t *testing.T) {
	c := NewFromScores([]uint64{10, 20, 30, 40})
	c.Remove(3)
	if c.Tracked(3) {
		t.Fatal("removed AA still tracked")
	}
	if best, _ := c.Best(); best.ID != 2 {
		t.Fatalf("Best after remove = %+v", best)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUntrackedPanics(t *testing.T) {
	c := New(4)
	for name, f := range map[string]func(){
		"Score":     func() { c.Score(0) },
		"Update":    func() { c.Update(0, 1) },
		"Remove":    func() { c.Remove(0) },
		"InsertOOB": func() { c.Insert(4, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestApplyDeltas(t *testing.T) {
	c := NewFromScores([]uint64{100, 200, 300})
	c.ApplyDeltas(map[aa.ID]int64{
		0: +50,  // freed blocks
		2: -250, // allocated blocks
		1: -300, // clamps at zero
	})
	if c.Score(0) != 150 || c.Score(2) != 50 || c.Score(1) != 0 {
		t.Fatalf("scores = %d %d %d", c.Score(0), c.Score(1), c.Score(2))
	}
	if best, _ := c.Best(); best.ID != 0 {
		t.Fatalf("Best = %+v", best)
	}
	// Deltas for untracked AAs are ignored.
	c2 := New(5)
	c2.Insert(0, 10)
	c2.ApplyDeltas(map[aa.ID]int64{4: 100})
	if c2.Tracked(4) {
		t.Fatal("delta inserted untracked AA")
	}
}

func TestTopK(t *testing.T) {
	scores := make([]uint64, 100)
	rng := rand.New(rand.NewSource(5))
	for i := range scores {
		scores[i] = uint64(rng.Intn(10000))
	}
	c := NewFromScores(scores)
	top := c.TopK(10)
	if len(top) != 10 {
		t.Fatalf("TopK returned %d", len(top))
	}
	sorted := append([]uint64(nil), scores...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	for i, e := range top {
		if e.Score != sorted[i] {
			t.Fatalf("TopK[%d].Score = %d, want %d", i, e.Score, sorted[i])
		}
	}
	// TopK must not disturb the heap.
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := c.TopK(1000); len(got) != 100 {
		t.Fatalf("TopK over-ask returned %d", len(got))
	}
	if got := c.TopK(0); got != nil {
		t.Fatalf("TopK(0) = %v", got)
	}
}

// Property: after an arbitrary sequence of operations, Best() returns a
// maximal score and invariants hold.
func TestRandomOperations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 200
		c := New(n)
		ref := make(map[aa.ID]uint64)
		for i := 0; i < 2000; i++ {
			id := aa.ID(rng.Intn(n))
			switch rng.Intn(4) {
			case 0:
				s := uint64(rng.Intn(32768))
				c.Insert(id, s)
				ref[id] = s
			case 1:
				if _, ok := ref[id]; ok {
					s := uint64(rng.Intn(32768))
					c.Update(id, s)
					ref[id] = s
				}
			case 2:
				if _, ok := ref[id]; ok {
					c.Remove(id)
					delete(ref, id)
				}
			case 3:
				if e, ok := c.PopBest(); ok {
					var max uint64
					for _, s := range ref {
						if s > max {
							max = s
						}
					}
					if e.Score != max {
						return false
					}
					delete(ref, e.ID)
				}
			}
		}
		if c.CheckInvariants() != nil {
			return false
		}
		if c.Len() != len(ref) {
			return false
		}
		if e, ok := c.Best(); ok {
			var max uint64
			for _, s := range ref {
				if s > max {
					max = s
				}
			}
			if e.Score != max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The paper's sizing example: a RAID group of 16TiB devices has ~1M
// default-sized AAs and the cache costs ~1MiB. Verify we can build and
// operate at that scale quickly.
func TestMillionAAs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 1 << 20
	scores := make([]uint64, n)
	rng := rand.New(rand.NewSource(1))
	for i := range scores {
		scores[i] = uint64(rng.Intn(4096 * 14))
	}
	c := NewFromScores(scores)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		e, _ := c.PopBest()
		c.Insert(e.ID, e.Score/2)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUpdateRebalance(b *testing.B) {
	const n = 1 << 20
	scores := make([]uint64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range scores {
		scores[i] = uint64(rng.Intn(57344))
	}
	c := NewFromScores(scores)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := aa.ID(i & (n - 1))
		c.Update(id, uint64(rng.Intn(57344)))
	}
}

func BenchmarkPopReinsert(b *testing.B) {
	c := NewFromScores(make([]uint64, 1<<20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _ := c.PopBest()
		c.Insert(e.ID, e.Score+1)
	}
}

// Second must always equal Best observed after popping the best — the
// runner-up contract the pick-provenance layer relies on.
func TestSecondMatchesBestAfterPop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New(64)
	for id := 0; id < 64; id++ {
		c.Insert(aa.ID(id), uint64(rng.Intn(1000)))
	}
	for c.Len() > 0 {
		second, okSecond := c.Second()
		if _, ok := c.PopBest(); !ok {
			t.Fatal("PopBest failed on non-empty heap")
		}
		next, okNext := c.Best()
		if okSecond != okNext || second != next {
			t.Fatalf("Second() = %+v,%v but Best() after pop = %+v,%v",
				second, okSecond, next, okNext)
		}
	}
	if _, ok := c.Second(); ok {
		t.Fatal("Second() on empty heap reported an entry")
	}
}
