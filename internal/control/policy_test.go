package control

import (
	"strings"
	"testing"
)

func TestParsePoliciesCanonicalRoundTrip(t *testing.T) {
	in := "name=shed,signal=slo.latency.vol.*.burn_fast,op=>,value=2.0,hold=3," +
		"action=delayed_budget,step=-25%,min=256"
	pols, err := ParsePolicies(in)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(pols) != 1 {
		t.Fatalf("got %d policies, want 1", len(pols))
	}
	p := pols[0]
	if p.Name != "shed" || p.Signal != "slo.latency.vol.*.burn_fast" || p.Op != ">" ||
		p.Value != 2.0 || p.Hold != 3 || p.Action != KnobDelayedBudget ||
		p.Step.Amount != -25 || !p.Step.Percent || p.Min != 256 || p.Max != 0 {
		t.Fatalf("unexpected policy: %+v", p)
	}
	// Canonical form is pinned: this exact rendering is what ActuationRecord
	// carries and what the fuzz target round-trips.
	want := "name=shed,signal=slo.latency.vol.*.burn_fast,op=>,value=2,hold=3," +
		"action=delayed_budget,step=-25%,min=256"
	if got := p.String(); got != want {
		t.Fatalf("canonical form:\n got %q\nwant %q", got, want)
	}
	again, err := ParsePolicies(p.String())
	if err != nil {
		t.Fatalf("reparse canonical: %v", err)
	}
	if FormatPolicies(again) != want {
		t.Fatalf("round trip drifted: %q", FormatPolicies(again))
	}
}

func TestParsePoliciesDefaults(t *testing.T) {
	pols, err := ParsePolicies("default")
	if err != nil {
		t.Fatalf("parse default: %v", err)
	}
	if len(pols) != len(DefaultPolicies()) {
		t.Fatalf("default expanded to %d policies", len(pols))
	}
	// The stock portfolio must itself round-trip through the canonical form.
	s := FormatPolicies(pols)
	again, err := ParsePolicies(s)
	if err != nil {
		t.Fatalf("reparse defaults %q: %v", s, err)
	}
	if FormatPolicies(again) != s {
		t.Fatalf("defaults round trip drifted:\n %q\n %q", s, FormatPolicies(again))
	}
	// And a mixed string of default plus an extra clause keeps both.
	mixed, err := ParsePolicies("default;name=x,signal=cp.count,value=5,action=frag_every,step=+1")
	if err != nil {
		t.Fatalf("parse mixed: %v", err)
	}
	if len(mixed) != len(pols)+1 {
		t.Fatalf("mixed expanded to %d policies", len(mixed))
	}
	// Normalization filled the optional fields.
	last := mixed[len(mixed)-1]
	if last.Op != ">" || last.Hold != 3 {
		t.Fatalf("normalize failed: %+v", last)
	}
}

func TestParsePoliciesErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"semicolons only":  " ; ; ",
		"bad field":        "name=x,signal",
		"unknown key":      "name=x,signal=a.b,action=frag_every,step=+1,bogus=1",
		"bad op":           "name=x,signal=a.b,op=>=,value=1,action=frag_every,step=+1",
		"zero step":        "name=x,signal=a.b,value=1,action=frag_every,step=0",
		"unknown action":   "name=x,signal=a.b,value=1,action=warp_drive,step=+1",
		"bad action char":  "name=x,signal=a.b,value=1,action=frag_every,step=+1x",
		"empty segment":    "name=x,signal=a..b,value=1,action=frag_every,step=+1",
		"partial wildcard": "name=x,signal=a.b*,value=1,action=frag_every,step=+1",
		"reserved name":    "name=knob,signal=a.b,value=1,action=frag_every,step=+1",
		"min gt max":       "name=x,signal=a.b,value=1,action=frag_every,step=+1,min=9,max=3",
		"negative min":     "name=x,signal=a.b,value=1,action=frag_every,step=+1,min=-1",
		"nan value":        "name=x,signal=a.b,value=NaN,action=frag_every,step=+1",
		"inf step":         "name=x,signal=a.b,value=1,action=frag_every,step=+Inf",
		"zero hold":        "name=x,signal=a.b,value=1,hold=-1,action=frag_every,step=+1",
		"dup names":        "name=x,signal=a.b,value=1,action=frag_every,step=+1;name=x,signal=c.d,value=1,action=frag_every,step=+1",
	}
	for label, in := range cases {
		if _, err := ParsePolicies(in); err == nil {
			t.Errorf("%s: ParsePolicies(%q) succeeded, want error", label, in)
		}
	}
}

func TestStepApplyAndFormat(t *testing.T) {
	cases := []struct {
		st   Step
		old  float64
		want float64
		str  string
	}{
		{Step{Amount: 8}, 16, 24, "+8"},
		{Step{Amount: -64}, 100, 36, "-64"},
		{Step{Amount: -50, Percent: true}, 8192, 4096, "-50%"},
		{Step{Amount: 25, Percent: true}, 100, 125, "+25%"},
	}
	for _, c := range cases {
		if got := c.st.apply(c.old); got != c.want {
			t.Errorf("%v.apply(%v) = %v, want %v", c.st, c.old, got, c.want)
		}
		if got := c.st.format(); got != c.str {
			t.Errorf("%v.format() = %q, want %q", c.st, got, c.str)
		}
		back, err := parseStep(c.str)
		if err != nil || back != c.st {
			t.Errorf("parseStep(%q) = %v, %v; want %v", c.str, back, err, c.st)
		}
	}
}

func TestMatchSignal(t *testing.T) {
	caps, ok := matchSignal("slo.latency.vol.*.state", "slo.latency.vol.v3.state")
	if !ok || len(caps) != 1 || caps[0] != "v3" {
		t.Fatalf("match: caps=%v ok=%v", caps, ok)
	}
	if _, ok := matchSignal("slo.latency.vol.*.state", "slo.latency.vol.v3.burn_fast"); ok {
		t.Fatal("mismatched tail matched")
	}
	if _, ok := matchSignal("a.*", "a.b.c"); ok {
		t.Fatal("'*' matched more than one segment")
	}
	if _, ok := matchSignal("a.b", "a.b"); !ok {
		t.Fatal("literal match failed")
	}
	if sp := spaceOf("slo.latency.vol.v3.state"); sp != "vol.v3" {
		t.Fatalf("spaceOf = %q", sp)
	}
	if sp := spaceOf("cp.count"); sp != "" {
		t.Fatalf("spaceOf non-vol = %q", sp)
	}
}

func FuzzParseControlPolicy(f *testing.F) {
	f.Add("default")
	f.Add(FormatPolicies(DefaultPolicies()))
	f.Add("name=shed,signal=slo.latency.vol.*.burn_fast,op=>,value=2.0,hold=3,action=delayed_budget,step=-25%,min=256")
	f.Add("signal=cp.count,value=5,action=frag_every,step=+1")
	f.Add("name=a,signal=x.*.y,op=<,value=-1e9,hold=1,action=alloc_batch,step=+100%,max=64")
	f.Add("name=k,signal=slo.recovery.state,value=1.5,action=scrub_kick,step=0.5")
	f.Add("name=x,signal=a.b,value=0x1p-2,action=frag_every,step=-1;default")
	f.Fuzz(func(t *testing.T, input string) {
		pols, err := ParsePolicies(input)
		if err != nil {
			return // invalid input is fine; it must just not panic
		}
		// Accepted input must render canonically and re-parse to the exact
		// same canonical form (parse∘format is idempotent).
		canon := FormatPolicies(pols)
		again, err := ParsePolicies(canon)
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v", canon, err)
		}
		if got := FormatPolicies(again); got != canon {
			t.Fatalf("canonical round trip drifted:\n %q\n %q", canon, got)
		}
		for _, p := range again {
			if err := p.validate(); err != nil {
				t.Fatalf("reparsed policy invalid: %v", err)
			}
		}
		if strings.Count(canon, ";") != len(pols)-1 {
			t.Fatalf("clause count mismatch: %q for %d policies", canon, len(pols))
		}
	})
}
