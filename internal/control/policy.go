// Package control closes the loop the observability stack left open: a
// deterministic controller, evaluated once per CP boundary on the modeled
// clock, reads signals from the tsdb series rings (SLO alert states and
// burn rates, delayed-free backlogs, allocator counters — anything the
// store samples) and actuates a bounded set of runtime knobs through an
// Actuator. Policies are declarative clause strings in the repo's
// key=value convention; every decision, fired or suppressed, lands in a
// bounded ring of ActuationRecords so the controller is itself fully
// observable (/debug/control, control.* counters, per-knob series).
//
// Everything here reads only worker-invariant inputs (CP counter, modeled
// time, stable-snapshot-derived series, knob values the controller itself
// set), so actuation streams are byte-identical at any worker width.
package control

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Knob names the controller may actuate. The Actuator implementation
// (wafl's System) owns the hard per-knob bounds; the policy layer only
// validates that an action names a known knob.
const (
	// KnobDelayedBudget is the per-CP delayed-free reclamation budget
	// (Tunables.DelayedFreeBudgetPerCP): shedding it defers metafile-page
	// work out of hot CPs.
	KnobDelayedBudget = "delayed_budget"
	// KnobAllocBatch is the striped allocator's shard batch / refill
	// low-water (Tunables.AllocBatch).
	KnobAllocBatch = "alloc_batch"
	// KnobScrubKick is an impulse counter: raising it runs one on-demand
	// Aggregate.Scrub per increment.
	KnobScrubKick = "scrub_kick"
	// KnobFragEvery is the fragscan sampling period in CPs
	// (ObsOptions.FragEvery): raising it samples shallower.
	KnobFragEvery = "frag_every"
)

// KnownActions lists every actuatable knob, sorted.
func KnownActions() []string {
	return []string{KnobAllocBatch, KnobDelayedBudget, KnobFragEvery, KnobScrubKick}
}

func knownAction(a string) bool {
	for _, k := range KnownActions() {
		if a == k {
			return true
		}
	}
	return false
}

// Step is one actuation increment: absolute ("+8", "-64") or relative to
// the knob's current value ("-25%", "+50%").
type Step struct {
	Amount  float64
	Percent bool
}

// apply returns the stepped (pre-clamp, pre-round) target value.
func (st Step) apply(old float64) float64 {
	if st.Percent {
		return old + old*st.Amount/100
	}
	return old + st.Amount
}

func (st Step) format() string {
	s := strconv.FormatFloat(st.Amount, 'g', -1, 64)
	if st.Amount >= 0 {
		s = "+" + s
	}
	if st.Percent {
		s += "%"
	}
	return s
}

func parseStep(v string) (Step, error) {
	var st Step
	if rest, ok := strings.CutSuffix(v, "%"); ok {
		st.Percent = true
		v = rest
	}
	amt, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return st, err
	}
	st.Amount = amt
	return st, nil
}

// Policy is one declarative control rule: when the signal series breaches
// the threshold for Hold consecutive CP evaluations, step the action knob,
// bounded by Min/Max (on top of the knob's own hard clamps).
type Policy struct {
	Name   string
	Signal string // series suffix pattern under "<sys>."; '*' matches one dot-segment
	Op     string // ">" or "<"
	Value  float64
	Hold   int // consecutive breach evals before acting; also the calm count per downgrade
	Action string
	Step   Step
	Min    float64 // 0 = no policy floor (the knob's hard floor still applies)
	Max    float64 // 0 = no policy ceiling
}

// reservedNames collide with the scalar control.* registry counters and
// the "<sys>.control.knob.*" series namespace.
var reservedNames = map[string]bool{
	"evaluations": true, "actuations": true, "suppressed": true,
	"transitions": true, "knob": true,
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.', r == '-':
		default:
			return false
		}
	}
	return true
}

func validPattern(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.', r == '-', r == '*':
		default:
			return false
		}
	}
	return true
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// normalize fills unset optional fields with defaults.
func (p *Policy) normalize() {
	if p.Name == "" {
		p.Name = p.Action
	}
	if p.Op == "" {
		p.Op = ">"
	}
	if p.Hold == 0 {
		p.Hold = 3
	}
}

func (p *Policy) validate() error {
	if !validName(p.Name) {
		return fmt.Errorf("invalid name %q", p.Name)
	}
	if reservedNames[p.Name] {
		return fmt.Errorf("name %q is reserved", p.Name)
	}
	if !validPattern(p.Signal) {
		return fmt.Errorf("invalid signal %q", p.Signal)
	}
	for _, seg := range strings.Split(p.Signal, ".") {
		if seg == "" {
			return fmt.Errorf("signal %q has an empty segment", p.Signal)
		}
		if seg != "*" && strings.Contains(seg, "*") {
			return fmt.Errorf("signal %q: '*' must span a whole segment", p.Signal)
		}
	}
	if p.Op != ">" && p.Op != "<" {
		return fmt.Errorf("op %q must be > or <", p.Op)
	}
	if !finite(p.Value) {
		return fmt.Errorf("value %v must be finite", p.Value)
	}
	if p.Hold < 1 {
		return fmt.Errorf("hold %d must be >= 1", p.Hold)
	}
	if !knownAction(p.Action) {
		return fmt.Errorf("unknown action %q", p.Action)
	}
	if p.Step.Amount == 0 || !finite(p.Step.Amount) {
		return fmt.Errorf("step must be a nonzero finite amount")
	}
	if !finite(p.Min) || !finite(p.Max) || p.Min < 0 || p.Max < 0 {
		return fmt.Errorf("min/max must be finite and >= 0")
	}
	if p.Min != 0 && p.Max != 0 && p.Min > p.Max {
		return fmt.Errorf("min %v exceeds max %v", p.Min, p.Max)
	}
	return nil
}

// DefaultPolicies is the stock portfolio, driven entirely off the SLO
// engine's alert-state series so the controller inherits its multi-window
// hysteresis: a clean run (every state 0) can never actuate, while a
// latency warn sheds delayed-free budget and widens the allocator batch,
// a stall warn backs fragscan sampling off, and a recovery page kicks an
// on-demand scrub of every AA cache.
func DefaultPolicies() []Policy {
	return []Policy{
		{Name: "latency_shed", Signal: "slo.latency.vol.*.state", Op: ">", Value: 0.5,
			Hold: 2, Action: KnobDelayedBudget, Step: Step{Amount: -50, Percent: true}, Min: 256},
		{Name: "latency_batch", Signal: "slo.latency.vol.*.state", Op: ">", Value: 0.5,
			Hold: 2, Action: KnobAllocBatch, Step: Step{Amount: 8}, Max: 64},
		{Name: "stall_backoff", Signal: "slo.stall.vol.*.state", Op: ">", Value: 0.5,
			Hold: 2, Action: KnobFragEvery, Step: Step{Amount: 2}, Max: 8},
		{Name: "recovery_scrub", Signal: "slo.recovery.state", Op: ">", Value: 1.5,
			Hold: 1, Action: KnobScrubKick, Step: Step{Amount: 1}, Max: 8},
	}
}

// ParsePolicies parses a waflbench-style policy string: clauses separated
// by ';', each either the literal "default" (expanding DefaultPolicies) or
// a comma-separated list of key=value fields:
//
//	name=shed,signal=slo.latency.vol.*.burn_fast,op=>,value=2.0,hold=3,
//	action=delayed_budget,step=-25%,min=256
//
// Policy names must be unique across the whole string.
func ParsePolicies(input string) ([]Policy, error) {
	var out []Policy
	for _, clause := range strings.Split(input, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if clause == "default" {
			out = append(out, DefaultPolicies()...)
			continue
		}
		p, err := parseClause(clause)
		if err != nil {
			return nil, fmt.Errorf("control: clause %q: %w", clause, err)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("control: empty policy")
	}
	seen := make(map[string]bool, len(out))
	for _, p := range out {
		if seen[p.Name] {
			return nil, fmt.Errorf("control: duplicate policy name %q", p.Name)
		}
		seen[p.Name] = true
	}
	return out, nil
}

func parseClause(clause string) (Policy, error) {
	var p Policy
	for _, field := range strings.Split(clause, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return p, fmt.Errorf("field %q is not key=value", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "name":
			p.Name = val
		case "signal":
			p.Signal = val
		case "op":
			p.Op = val
		case "value":
			p.Value, err = strconv.ParseFloat(val, 64)
		case "hold":
			p.Hold, err = strconv.Atoi(val)
		case "action":
			p.Action = val
		case "step":
			p.Step, err = parseStep(val)
		case "min":
			p.Min, err = strconv.ParseFloat(val, 64)
		case "max":
			p.Max, err = strconv.ParseFloat(val, 64)
		default:
			return p, fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return p, fmt.Errorf("field %q: %w", field, err)
		}
	}
	p.normalize()
	if err := p.validate(); err != nil {
		return p, err
	}
	return p, nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// String renders the policy in the canonical parseable form.
func (p Policy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "name=%s,signal=%s,op=%s,value=%s,hold=%d,action=%s,step=%s",
		p.Name, p.Signal, p.Op, formatFloat(p.Value), p.Hold, p.Action, p.Step.format())
	if p.Min != 0 {
		fmt.Fprintf(&b, ",min=%s", formatFloat(p.Min))
	}
	if p.Max != 0 {
		fmt.Fprintf(&b, ",max=%s", formatFloat(p.Max))
	}
	return b.String()
}

// FormatPolicies renders policies in the canonical form accepted by
// ParsePolicies.
func FormatPolicies(pols []Policy) string {
	parts := make([]string, len(pols))
	for i, p := range pols {
		parts[i] = p.String()
	}
	return strings.Join(parts, ";")
}
