package control

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"waflfs/internal/obs/tsdb"
)

// Set holds one policy portfolio and the engines it has spawned, one per
// system (arm). A Set is shared across every arm of an experiment run so
// artifact gates can split actuation totals by arm-name prefix. All
// methods are nil-safe.
type Set struct {
	mu      sync.Mutex
	pols    []Policy
	engines map[string]*Engine
	order   []string
}

// NewSet builds a set from a portfolio; policies are normalized in place.
func NewSet(pols []Policy) *Set {
	if len(pols) == 0 {
		return nil
	}
	s := &Set{pols: append([]Policy(nil), pols...), engines: map[string]*Engine{}}
	for i := range s.pols {
		s.pols[i].normalize()
	}
	return s
}

// Policies returns the normalized portfolio.
func (s *Set) Policies() []Policy {
	if s == nil {
		return nil
	}
	return append([]Policy(nil), s.pols...)
}

// Engine returns the engine for sys, creating one bound to the given
// store and actuator on first use. A later call with the same sys and
// store rebinds the actuator but keeps the engine (systems are re-armed
// on remount with a fresh knob surface but the same store, so instance
// state and the decision log survive); a different store replaces the
// engine entirely.
func (s *Set) Engine(sys string, store *tsdb.Store, act Actuator) *Engine {
	if s == nil || store == nil || act == nil {
		return nil
	}
	e := NewEngine(sys, s.pols, store, act)
	if e == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.engines[sys]; ok && prev.store == store {
		prev.setActuator(act)
		return prev
	}
	if _, ok := s.engines[sys]; !ok {
		s.order = append(s.order, sys)
	}
	s.engines[sys] = e
	return e
}

func (s *Set) sorted() []*Engine {
	names := append([]string(nil), s.order...)
	sort.Strings(names)
	out := make([]*Engine, 0, len(names))
	for _, n := range names {
		out = append(out, s.engines[n])
	}
	return out
}

// Totals aggregates actuation activity across engines.
type Totals struct {
	Systems     int    `json:"systems"`
	Instances   int    `json:"instances"`
	Evaluations uint64 `json:"evaluations"`
	Actuations  uint64 `json:"actuations"`
	Suppressed  uint64 `json:"suppressed"`
	Transitions uint64 `json:"transitions"`
	ActiveArmed int    `json:"active_armed"`
	ActiveActed int    `json:"active_acted"`
}

func (t *Totals) absorb(e *Engine) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t.Systems++
	t.Instances += len(e.insts)
	t.Evaluations += e.evals
	t.Actuations += e.acts
	t.Suppressed += e.suppr
	t.Transitions += e.trans
	for _, in := range e.insts {
		switch in.state {
		case StateArmed:
			t.ActiveArmed++
		case StateActed:
			t.ActiveActed++
		}
	}
}

// Totals sums actuation activity over every system in the set.
func (s *Set) Totals() Totals {
	return s.TotalsWhere(func(string) bool { return true })
}

// TotalsWhere sums actuation activity over systems whose name passes the
// filter — the artifact gate uses this to split crash arms from clean.
func (s *Set) TotalsWhere(match func(sys string) bool) Totals {
	var t Totals
	if s == nil {
		return t
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.sorted() {
		if match(e.sys) {
			t.absorb(e)
		}
	}
	return t
}

// Status reports every engine, sorted by system name.
func (s *Set) Status() []SystemStatus {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	engines := s.sorted()
	s.mu.Unlock()
	out := make([]SystemStatus, 0, len(engines))
	for _, e := range engines {
		out = append(out, e.Status())
	}
	return out
}

// statusDoc is the /debug/control document shape.
type statusDoc struct {
	Totals  Totals         `json:"totals"`
	Systems []SystemStatus `json:"systems"`
}

// WriteJSON writes the full deterministic status document: totals plus
// per-system knob values, instance states, decision records, and
// transition logs. Byte-identical for identical evaluation histories, so
// the serial-equivalence test compares it directly across worker widths.
func (s *Set) WriteJSON(w io.Writer) error {
	doc := statusDoc{Systems: []SystemStatus{}}
	if s != nil {
		doc.Totals = s.Totals()
		doc.Systems = s.Status()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
