package control

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"waflfs/internal/obs/tsdb"
)

// State is the actuation level of one policy instance, mirroring the SLO
// engine's ok→warn→page machine: a breach arms the instance immediately,
// Hold consecutive breaches fire the knob (acted), and Hold consecutive
// calm evaluations step back down one level — so a signal oscillating
// around its threshold cannot flap the knob every CP.
type State int

const (
	StateOK State = iota
	StateArmed
	StateActed
)

func (s State) String() string {
	switch s {
	case StateArmed:
		return "armed"
	case StateActed:
		return "acted"
	default:
		return "ok"
	}
}

// MarshalJSON renders the state as its name so status documents read
// "acted" instead of 2.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(s.String())), nil
}

// KnobSpec is an Actuator's metadata for one knob: hard clamps and the
// largest absolute change one actuation may apply. Policy min/max narrow
// the clamps further; they can never widen them.
type KnobSpec struct {
	Name    string  `json:"name"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	MaxStep float64 `json:"max_step"` // 0 = unlimited
}

// Actuator is the bounded surface the controller may touch. wafl's System
// implements it over the runtime allocator/CP knobs. Knob values are
// integral in practice; SetKnob receives a pre-rounded, pre-clamped value
// and returns what was actually applied (ok=false rejects the actuation).
type Actuator interface {
	Knobs() []KnobSpec
	Knob(name string) (float64, bool)
	SetKnob(name string, v float64) (float64, bool)
}

// ExemplarSource resolves a space name ("<sys>.vol.<name>") to a
// representative trace, exactly as in the SLO engine; optrace's Recorder
// implements it. Actuation records on volume-scoped signals then link
// straight to a worst-op trace in /debug/optrace.
type ExemplarSource interface {
	Exemplar(space string) (id, latNS uint64, ok bool)
}

// Transition is one state-machine edge, stamped with the modeled clock.
type Transition struct {
	CP       uint64        `json:"cp"`
	At       time.Duration `json:"at_ns"`
	Instance string        `json:"instance"`
	From     State         `json:"from"`
	To       State         `json:"to"`
}

// ActuationRecord is the full provenance of one actuation decision —
// fired or suppressed — kept in a bounded per-engine ring.
type ActuationRecord struct {
	CP       uint64        `json:"cp"`
	At       time.Duration `json:"at_ns"`
	Policy   string        `json:"policy"` // canonical clause
	Instance string        `json:"instance"`
	Signal   string        `json:"signal"` // full series name read
	Value    float64       `json:"value"`  // signal value at decision time
	Knob     string        `json:"knob"`
	Old      float64       `json:"old"`
	New      float64       `json:"new"`
	Fired    bool          `json:"fired"`
	// Reason is "applied" for fired records; suppressed records carry why
	// the knob did not move ("clamped", "no_knob", "rejected").
	Reason string `json:"reason"`
	// ExemplarTrace/ExemplarLatNS reference a representative sampled op
	// trace from the signal's volume at decision time, when an
	// ExemplarSource is wired; 0 otherwise.
	ExemplarTrace uint64 `json:"exemplar_trace,omitempty"`
	ExemplarLatNS uint64 `json:"exemplar_lat_ns,omitempty"`
}

// maxTransitions and maxRecords bound the per-engine logs.
const (
	maxTransitions = 128
	maxRecords     = 128
)

// flapWindow is how many trailing transitions of one instance must
// alternate armed↔acted (with no ok between) to flag it as flapping.
const flapWindow = 4

// instance is one live rule: a policy bound to a concrete signal series.
type instance struct {
	pol    *Policy
	name   string // policy name, plus ".<captures>" for wildcard signals
	series string // full series name under "<sys>."
	space  string // "vol.<name>" when extractable from the signal; exemplar key

	state  State
	streak int // consecutive breach evals since the last fire/calm
	calm   int // consecutive calm evals toward the next downgrade

	sinceCP   uint64
	lastValue float64
}

// Engine evaluates a policy portfolio for one system (arm) against its
// tsdb store and actuator. All methods are nil-safe; evaluation is
// deterministic given the store contents and the knob trajectory, which
// the engine itself drives — so the actuation stream is byte-identical at
// any worker width.
type Engine struct {
	mu    sync.Mutex
	sys   string
	store *tsdb.Store
	act   Actuator
	pols  []Policy

	insts   []*instance
	instKey int // store.NumSeries() at last expansion

	evals, acts, suppr, trans uint64
	translog                  []Transition
	records                   []ActuationRecord
	exem                      ExemplarSource
	// knobCache is the knob values as of the last Evaluate. Status reads
	// it instead of the live actuator so HTTP handlers never race the CP
	// thread's knob mutations.
	knobCache []KnobStatus
}

// NewEngine builds an engine for one system. Returns nil when there is
// nothing to do (no policies, store, or actuator), which every method
// tolerates.
func NewEngine(sys string, pols []Policy, store *tsdb.Store, act Actuator) *Engine {
	if len(pols) == 0 || store == nil || act == nil {
		return nil
	}
	e := &Engine{sys: sys, store: store, act: act, pols: append([]Policy(nil), pols...)}
	for i := range e.pols {
		e.pols[i].normalize()
	}
	e.instKey = -1 // force expansion on first Evaluate
	return e
}

// SetExemplarSource wires a trace exemplar source: subsequent actuation
// records on volume-scoped signals carry a representative trace ID.
// Nil-safe.
func (e *Engine) SetExemplarSource(src ExemplarSource) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.exem = src
	e.mu.Unlock()
}

// setActuator rebinds the knob surface — used when a system is re-armed
// (fresh System, same store) so instance state survives while actuation
// lands on the live knobs.
func (e *Engine) setActuator(act Actuator) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.act = act
	e.mu.Unlock()
}

// matchSignal matches a policy signal pattern against a series suffix
// segment-wise: '*' matches exactly one dot-segment. Returns the wildcard
// captures when the suffix matches.
func matchSignal(pattern, suffix string) ([]string, bool) {
	ps := strings.Split(pattern, ".")
	ss := strings.Split(suffix, ".")
	if len(ps) != len(ss) {
		return nil, false
	}
	var caps []string
	for i, p := range ps {
		if p == "*" {
			caps = append(caps, ss[i])
			continue
		}
		if p != ss[i] {
			return nil, false
		}
	}
	return caps, true
}

// spaceOf extracts the "vol.<name>" space from a series suffix, if any,
// for the exemplar join.
func spaceOf(suffix string) string {
	segs := strings.Split(suffix, ".")
	for i, s := range segs {
		if s == "vol" && i+1 < len(segs) {
			return "vol." + segs[i+1]
		}
	}
	return ""
}

// expand resolves signal patterns against the store's current series list.
// Called whenever the series count changes (series are only ever added);
// existing instances keep their state across expansions.
func (e *Engine) expand() {
	old := make(map[string]*instance, len(e.insts))
	for _, in := range e.insts {
		old[in.name] = in
	}
	e.insts = e.insts[:0]
	sysPrefix := e.sys + "."
	names := e.store.SeriesWithPrefix(sysPrefix)
	for i := range e.pols {
		pol := &e.pols[i]
		for _, series := range names {
			suffix := series[len(sysPrefix):]
			caps, ok := matchSignal(pol.Signal, suffix)
			if !ok {
				continue
			}
			name := pol.Name
			if len(caps) > 0 {
				name += "." + strings.Join(caps, ".")
			}
			in := &instance{pol: pol, name: name, series: series, space: spaceOf(suffix)}
			if prev, ok := old[in.name]; ok {
				in.state, in.streak, in.calm = prev.state, prev.streak, prev.calm
				in.sinceCP = prev.sinceCP
			}
			e.insts = append(e.insts, in)
		}
	}
	sort.Slice(e.insts, func(i, j int) bool { return e.insts[i].name < e.insts[j].name })
}

// Evaluate runs every policy instance against the signal values at (cp,
// at), actuates where the hysteresis allows, and writes the resulting
// state/signal series (plus one series per knob) back into the store
// under "<sys>.control.*". Call once per CP, after the store's Sample and
// the SLO engine's Evaluate for the same CP — the alert-state series the
// default portfolio reads are then current.
func (e *Engine) Evaluate(cp uint64, at time.Duration) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := e.store.NumSeries(); n != e.instKey {
		e.expand()
		e.instKey = n
	}
	for _, in := range e.insts {
		e.evalInstance(in, cp, at)
	}
	e.knobCache = e.knobCache[:0]
	for _, k := range e.act.Knobs() {
		if v, ok := e.act.Knob(k.Name); ok {
			e.store.Observe(e.sys+".control.knob."+k.Name, cp, at, v)
			e.knobCache = append(e.knobCache, KnobStatus{KnobSpec: k, Value: v})
		}
	}
}

func (e *Engine) evalInstance(in *instance, cp uint64, at time.Duration) {
	e.evals++
	v, _ := e.store.ValueAt(in.series, cp)
	in.lastValue = v
	breach := (in.pol.Op == ">" && v > in.pol.Value) ||
		(in.pol.Op == "<" && v < in.pol.Value)
	if breach {
		in.calm = 0
		in.streak++
		if in.state == StateOK {
			e.transition(in, cp, at, StateArmed)
		}
		if in.streak >= in.pol.Hold {
			// The hold streak resets on every attempt, fired or suppressed,
			// so re-fires are rate-limited to one per Hold breaches — the
			// temporal half of the step-size limit.
			e.actuate(in, cp, at, v)
			in.streak = 0
		}
	} else {
		in.streak = 0
		if in.state != StateOK {
			in.calm++
			if in.calm >= in.pol.Hold {
				e.transition(in, cp, at, in.state-1)
				in.calm = 0
			}
		} else {
			in.calm = 0
		}
	}
	base := e.sys + ".control." + in.name
	e.store.Observe(base+".state", cp, at, float64(in.state))
	e.store.Observe(base+".signal", cp, at, v)
}

func (e *Engine) knobSpec(name string) (KnobSpec, bool) {
	for _, k := range e.act.Knobs() {
		if k.Name == name {
			return k, true
		}
	}
	return KnobSpec{}, false
}

// actuate attempts one knob step: the policy step is clamped by the
// knob's MaxStep, then by the intersection of the knob's hard bounds and
// the policy's min/max, then rounded (knobs are integral). A target equal
// to the current value is a suppressed decision; both outcomes emit an
// ActuationRecord.
func (e *Engine) actuate(in *instance, cp uint64, at time.Duration, v float64) {
	rec := ActuationRecord{
		CP: cp, At: at, Policy: in.pol.String(), Instance: in.name,
		Signal: in.series, Value: v, Knob: in.pol.Action,
	}
	if e.exem != nil && in.space != "" {
		if id, lat, ok := e.exem.Exemplar(e.sys + "." + in.space); ok {
			rec.ExemplarTrace, rec.ExemplarLatNS = id, lat
		}
	}
	old, ok := e.act.Knob(in.pol.Action)
	if !ok {
		rec.Reason = "no_knob"
		e.suppress(rec)
		return
	}
	rec.Old, rec.New = old, old
	k, _ := e.knobSpec(in.pol.Action)
	target := in.pol.Step.apply(old)
	if k.MaxStep > 0 && math.Abs(target-old) > k.MaxStep {
		if target > old {
			target = old + k.MaxStep
		} else {
			target = old - k.MaxStep
		}
	}
	lo, hi := k.Min, k.Max
	if in.pol.Min != 0 && in.pol.Min > lo {
		lo = in.pol.Min
	}
	if in.pol.Max != 0 && in.pol.Max < hi {
		hi = in.pol.Max
	}
	if target < lo {
		target = lo
	}
	if target > hi {
		target = hi
	}
	target = math.Round(target)
	if target == old {
		rec.Reason = "clamped"
		e.suppress(rec)
		return
	}
	applied, ok := e.act.SetKnob(in.pol.Action, target)
	if !ok {
		rec.Reason = "rejected"
		e.suppress(rec)
		return
	}
	rec.New, rec.Fired, rec.Reason = applied, true, "applied"
	e.acts++
	e.pushRecord(rec)
	if in.state != StateActed {
		e.transition(in, cp, at, StateActed)
	}
}

func (e *Engine) suppress(rec ActuationRecord) {
	e.suppr++
	e.pushRecord(rec)
}

func (e *Engine) pushRecord(rec ActuationRecord) {
	if len(e.records) >= maxRecords {
		copy(e.records, e.records[1:])
		e.records = e.records[:maxRecords-1]
	}
	e.records = append(e.records, rec)
}

func (e *Engine) transition(in *instance, cp uint64, at time.Duration, to State) {
	tr := Transition{CP: cp, At: at, Instance: in.name, From: in.state, To: to}
	if len(e.translog) >= maxTransitions {
		copy(e.translog, e.translog[1:])
		e.translog = e.translog[:maxTransitions-1]
	}
	e.translog = append(e.translog, tr)
	e.trans++
	in.state = to
	in.sinceCP = cp
}

// flapping reports whether an instance's trailing transitions alternate
// armed↔acted with no ok between — the signature of a knob-chasing
// oscillation the hysteresis failed to damp (wafltop -snapshot exits
// nonzero on it).
func (e *Engine) flapping(name string) bool {
	var tos []State
	for _, tr := range e.translog {
		if tr.Instance == name {
			tos = append(tos, tr.To)
		}
	}
	if len(tos) < flapWindow {
		return false
	}
	tos = tos[len(tos)-flapWindow:]
	for i, to := range tos {
		if to == StateOK {
			return false
		}
		if i > 0 && to == tos[i-1] {
			return false
		}
	}
	return true
}

// Counter accessors feed the control.* registry metrics; all nil-safe.

func (e *Engine) Evaluations() uint64 { return e.counter(func(e *Engine) uint64 { return e.evals }) }
func (e *Engine) Actuations() uint64  { return e.counter(func(e *Engine) uint64 { return e.acts }) }
func (e *Engine) Suppressed() uint64  { return e.counter(func(e *Engine) uint64 { return e.suppr }) }
func (e *Engine) Transitions() uint64 { return e.counter(func(e *Engine) uint64 { return e.trans }) }

func (e *Engine) counter(f func(*Engine) uint64) uint64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return f(e)
}

// InstanceStatus is the reported state of one policy instance.
type InstanceStatus struct {
	Name     string  `json:"name"`
	Policy   string  `json:"policy"`
	Signal   string  `json:"signal"`
	State    string  `json:"state"`
	SinceCP  uint64  `json:"since_cp"`
	Value    float64 `json:"value"`
	Streak   int     `json:"streak"`
	Flapping bool    `json:"flapping"`
}

// KnobStatus is one knob's current value and bounds.
type KnobStatus struct {
	KnobSpec
	Value float64 `json:"value"`
}

// SystemStatus is one engine's full report.
type SystemStatus struct {
	System      string            `json:"system"`
	Evaluations uint64            `json:"evaluations"`
	Actuations  uint64            `json:"actuations"`
	Suppressed  uint64            `json:"suppressed"`
	Knobs       []KnobStatus      `json:"knobs"`
	Instances   []InstanceStatus  `json:"instances"`
	Records     []ActuationRecord `json:"records,omitempty"`
	Transitions []Transition      `json:"transitions,omitempty"`
}

// Flapping reports whether any instance is mid-flap.
func (st SystemStatus) Flapping() bool {
	for _, in := range st.Instances {
		if in.Flapping {
			return true
		}
	}
	return false
}

// Status snapshots the engine; instance and knob order is deterministic.
func (e *Engine) Status() SystemStatus {
	if e == nil {
		return SystemStatus{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := SystemStatus{
		System:      e.sys,
		Evaluations: e.evals,
		Actuations:  e.acts,
		Suppressed:  e.suppr,
		Records:     append([]ActuationRecord(nil), e.records...),
		Transitions: append([]Transition(nil), e.translog...),
	}
	st.Knobs = append(st.Knobs, e.knobCache...)
	for _, in := range e.insts {
		st.Instances = append(st.Instances, InstanceStatus{
			Name: in.name, Policy: in.pol.Name, Signal: in.series,
			State: in.state.String(), SinceCP: in.sinceCP,
			Value: in.lastValue, Streak: in.streak,
			Flapping: e.flapping(in.name),
		})
	}
	return st
}
