package control

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"waflfs/internal/obs/tsdb"
)

// fakeActuator is an in-memory knob surface with the same clamp semantics
// as wafl's: SetKnob stores the pre-clamped value the engine hands it.
type fakeActuator struct {
	specs  []KnobSpec
	vals   map[string]float64
	reject map[string]bool
	sets   []string
}

func newFakeActuator() *fakeActuator {
	return &fakeActuator{
		specs: []KnobSpec{
			{Name: KnobAllocBatch, Min: 1, Max: 1024, MaxStep: 64},
			{Name: KnobDelayedBudget, Min: 0, Max: 1 << 20, MaxStep: 1 << 16},
			{Name: KnobFragEvery, Min: 1, Max: 1024, MaxStep: 16},
		},
		vals: map[string]float64{
			KnobAllocBatch:    8,
			KnobDelayedBudget: 8192,
			KnobFragEvery:     1,
		},
		reject: map[string]bool{},
	}
}

func (a *fakeActuator) Knobs() []KnobSpec { return append([]KnobSpec(nil), a.specs...) }

func (a *fakeActuator) Knob(name string) (float64, bool) {
	v, ok := a.vals[name]
	return v, ok
}

func (a *fakeActuator) SetKnob(name string, v float64) (float64, bool) {
	if a.reject[name] {
		return a.vals[name], false
	}
	if _, ok := a.vals[name]; !ok {
		return 0, false
	}
	a.vals[name] = v
	a.sets = append(a.sets, name)
	return v, true
}

func testStore() *tsdb.Store { return tsdb.NewStore(tsdb.Config{Capacity: 64}) }

const ms = time.Millisecond

// drive observes the signal value then evaluates, like the CP tail does.
func drive(e *Engine, store *tsdb.Store, series string, cp uint64, v float64) {
	store.Observe(series, cp, time.Duration(cp)*ms, v)
	e.Evaluate(cp, time.Duration(cp)*ms)
}

func TestEngineHysteresisAndActuation(t *testing.T) {
	store := testStore()
	act := newFakeActuator()
	pols, err := ParsePolicies(
		"name=shed,signal=slo.latency.vol.*.burn_fast,value=2,hold=3,action=delayed_budget,step=-50%,min=512")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine("w", pols, store, act)
	series := "w.slo.latency.vol.v0.burn_fast"

	// Signal below threshold: instance materializes, stays ok, no actuation.
	drive(e, store, series, 1, 1.0)
	st := e.Status()
	if len(st.Instances) != 1 || st.Instances[0].Name != "shed.v0" {
		t.Fatalf("instances: %+v", st.Instances)
	}
	if st.Instances[0].State != "ok" || e.Actuations() != 0 {
		t.Fatalf("unexpected early actuation: %+v", st)
	}

	// Two breaches: armed but held.
	drive(e, store, series, 2, 3.0)
	drive(e, store, series, 3, 3.0)
	if s := e.Status().Instances[0].State; s != "armed" {
		t.Fatalf("state after 2 breaches = %s", s)
	}
	if e.Actuations() != 0 {
		t.Fatal("actuated before hold satisfied")
	}

	// Third consecutive breach fires: 8192 → 4096.
	drive(e, store, series, 4, 3.0)
	if e.Actuations() != 1 || act.vals[KnobDelayedBudget] != 4096 {
		t.Fatalf("acts=%d budget=%v", e.Actuations(), act.vals[KnobDelayedBudget])
	}
	if s := e.Status().Instances[0].State; s != "acted" {
		t.Fatalf("state after fire = %s", s)
	}

	// Re-fires are rate-limited to one per Hold breaches.
	drive(e, store, series, 5, 3.0)
	drive(e, store, series, 6, 3.0)
	if e.Actuations() != 1 {
		t.Fatalf("refired too early: %d", e.Actuations())
	}
	drive(e, store, series, 7, 3.0)
	if e.Actuations() != 2 || act.vals[KnobDelayedBudget] != 2048 {
		t.Fatalf("acts=%d budget=%v", e.Actuations(), act.vals[KnobDelayedBudget])
	}

	// Calm evaluations step back down one level per Hold.
	for cp := uint64(8); cp <= 10; cp++ {
		drive(e, store, series, cp, 0.5)
	}
	if s := e.Status().Instances[0].State; s != "armed" {
		t.Fatalf("state after hold calm = %s", s)
	}
	for cp := uint64(11); cp <= 13; cp++ {
		drive(e, store, series, cp, 0.5)
	}
	if s := e.Status().Instances[0].State; s != "ok" {
		t.Fatalf("state after 2x hold calm = %s", s)
	}

	// Decision provenance: records carry the canonical clause and knob move.
	recs := e.Status().Records
	if len(recs) != 2 || !recs[0].Fired || recs[0].Old != 8192 || recs[0].New != 4096 {
		t.Fatalf("records: %+v", recs)
	}
	if !strings.HasPrefix(recs[0].Policy, "name=shed,") || recs[0].Reason != "applied" {
		t.Fatalf("record provenance: %+v", recs[0])
	}

	// State/signal/knob series were written back into the store.
	for _, name := range []string{
		"w.control.shed.v0.state", "w.control.shed.v0.signal", "w.control.knob.delayed_budget",
	} {
		if _, ok := store.ValueAt(name, 7); !ok {
			t.Fatalf("missing series %s", name)
		}
	}
	if v, _ := store.ValueAt("w.control.knob.delayed_budget", 7); v != 2048 {
		t.Fatalf("knob series at cp7 = %v", v)
	}
}

func TestEngineClampsAndSuppression(t *testing.T) {
	store := testStore()
	act := newFakeActuator()
	act.vals[KnobDelayedBudget] = 600
	pols, _ := ParsePolicies(
		"name=shed,signal=x.sig,value=1,hold=1,action=delayed_budget,step=-50%,min=512")
	e := NewEngine("w", pols, store, act)

	// 600 → 300 clamps to the policy floor 512.
	drive(e, store, "w.x.sig", 1, 5)
	if act.vals[KnobDelayedBudget] != 512 {
		t.Fatalf("budget = %v, want 512", act.vals[KnobDelayedBudget])
	}
	// At the floor the target equals the current value: suppressed, with a
	// provenance record saying why.
	drive(e, store, "w.x.sig", 2, 5)
	if e.Actuations() != 1 || e.Suppressed() != 1 {
		t.Fatalf("acts=%d suppr=%d", e.Actuations(), e.Suppressed())
	}
	recs := e.Status().Records
	last := recs[len(recs)-1]
	if last.Fired || last.Reason != "clamped" || last.Old != 512 || last.New != 512 {
		t.Fatalf("suppressed record: %+v", last)
	}

	// MaxStep bounds a single move: +1000 on alloc_batch moves only 64.
	pols2, _ := ParsePolicies("name=grow,signal=x.sig,value=1,hold=1,action=alloc_batch,step=+1000")
	act2 := newFakeActuator()
	e2 := NewEngine("w", pols2, store, act2)
	e2.Evaluate(3, 3*ms)
	if act2.vals[KnobAllocBatch] != 72 {
		t.Fatalf("alloc_batch = %v, want 72", act2.vals[KnobAllocBatch])
	}

	// Rejected SetKnob is a suppressed decision, not a fire.
	act3 := newFakeActuator()
	act3.reject[KnobAllocBatch] = true
	e3 := NewEngine("w", pols2, store, act3)
	e3.Evaluate(4, 4*ms)
	if e3.Actuations() != 0 || e3.Suppressed() != 1 {
		t.Fatalf("rejected: acts=%d suppr=%d", e3.Actuations(), e3.Suppressed())
	}
	recs3 := e3.Status().Records
	if recs3[len(recs3)-1].Reason != "rejected" {
		t.Fatalf("reject record: %+v", recs3[len(recs3)-1])
	}

	// A policy naming a knob the actuator lacks suppresses with no_knob.
	pols4, _ := ParsePolicies("name=k,signal=x.sig,value=1,hold=1,action=scrub_kick,step=+1")
	e4 := NewEngine("w", pols4, store, newFakeActuator()) // fake has no scrub_kick
	e4.Evaluate(5, 5*ms)
	recs4 := e4.Status().Records
	if len(recs4) != 1 || recs4[0].Reason != "no_knob" {
		t.Fatalf("no_knob record: %+v", recs4)
	}
}

func TestEngineWildcardExpansion(t *testing.T) {
	store := testStore()
	act := newFakeActuator()
	pols, _ := ParsePolicies("name=p,signal=slo.latency.vol.*.state,value=0.5,hold=2,action=alloc_batch,step=+8,max=64")
	e := NewEngine("w", pols, store, act)

	store.Observe("w.slo.latency.vol.a.state", 1, 1*ms, 1)
	e.Evaluate(1, 1*ms)
	if n := len(e.Status().Instances); n != 1 {
		t.Fatalf("instances = %d", n)
	}
	// A new matching series appears: expansion picks it up and preserves the
	// first instance's armed state (streak survives by name).
	store.Observe("w.slo.latency.vol.a.state", 2, 2*ms, 1)
	store.Observe("w.slo.latency.vol.b.state", 2, 2*ms, 0)
	e.Evaluate(2, 2*ms)
	st := e.Status()
	if len(st.Instances) != 2 || st.Instances[0].Name != "p.a" || st.Instances[1].Name != "p.b" {
		t.Fatalf("instances: %+v", st.Instances)
	}
	// Instance a breached at cp1 and cp2 — hold=2 satisfied across the
	// expansion, so the knob fired exactly once.
	if e.Actuations() != 1 || act.vals[KnobAllocBatch] != 16 {
		t.Fatalf("acts=%d batch=%v", e.Actuations(), act.vals[KnobAllocBatch])
	}
	if st.Instances[1].State != "ok" {
		t.Fatalf("instance b: %+v", st.Instances[1])
	}
}

func TestEngineFlapDetection(t *testing.T) {
	store := testStore()
	act := newFakeActuator()
	// hold=1 with an oscillating signal is the worst case the hysteresis
	// can't damp: armed→acted→armed→acted with no ok between.
	pols, _ := ParsePolicies("name=f,signal=x.sig,value=1,hold=1,action=alloc_batch,step=+8")
	e := NewEngine("w", pols, store, act)
	vals := []float64{5, 0, 5, 0, 5, 0, 5}
	for i, v := range vals {
		drive(e, store, "w.x.sig", uint64(i+1), v)
	}
	st := e.Status()
	if !st.Instances[0].Flapping || !st.Flapping() {
		t.Fatalf("flap not detected: %+v", st.Instances[0])
	}

	// A monotone breach-then-calm history is not a flap.
	store2 := testStore()
	e2 := NewEngine("w", pols, store2, newFakeActuator())
	for i, v := range []float64{5, 5, 5, 0, 0, 0, 0} {
		drive(e2, store2, "w.x.sig", uint64(i+1), v)
	}
	if e2.Status().Flapping() {
		t.Fatal("monotone history flagged as flap")
	}
}

func TestSetTotalsAndWriteJSON(t *testing.T) {
	set := NewSet(DefaultPolicies())
	if set == nil {
		t.Fatal("nil set")
	}
	storeA, storeB := testStore(), testStore()
	ea := set.Engine("a", storeA, newFakeActuator())
	eb := set.Engine("b", storeB, newFakeActuator())
	if ea == nil || eb == nil {
		t.Fatal("nil engines")
	}
	// Same sys+store rebinds, preserving the engine.
	if again := set.Engine("a", storeA, newFakeActuator()); again != ea {
		t.Fatal("re-arm replaced engine despite same store")
	}
	ea.Evaluate(1, 1*ms)
	eb.Evaluate(1, 1*ms)
	tot := set.Totals()
	if tot.Systems != 2 {
		t.Fatalf("totals: %+v", tot)
	}
	if only := set.TotalsWhere(func(s string) bool { return s == "a" }); only.Systems != 1 {
		t.Fatalf("filtered totals: %+v", only)
	}
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"totals"`, `"systems"`, `"evaluations"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteJSON missing %s:\n%s", want, out)
		}
	}
	var buf2 bytes.Buffer
	if err := set.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("WriteJSON not deterministic")
	}
	// Nil set still writes a valid document.
	var nilBuf bytes.Buffer
	if err := (*Set)(nil).WriteJSON(&nilBuf); err != nil {
		t.Fatal(err)
	}
}

func TestEngineNilSafety(t *testing.T) {
	var e *Engine
	e.Evaluate(1, 1*ms)
	e.SetExemplarSource(nil)
	e.setActuator(nil)
	if e.Evaluations()+e.Actuations()+e.Suppressed()+e.Transitions() != 0 {
		t.Fatal("nil engine counted")
	}
	if st := e.Status(); st.System != "" {
		t.Fatalf("nil status: %+v", st)
	}
	if NewEngine("w", nil, testStore(), newFakeActuator()) != nil {
		t.Fatal("engine with no policies")
	}
	var s *Set
	if s.Engine("w", testStore(), newFakeActuator()) != nil {
		t.Fatal("nil set produced engine")
	}
	if tot := s.Totals(); tot.Systems != 0 {
		t.Fatal("nil set totals")
	}
}
