// Package picks records allocation-decision provenance: one compact record
// per AA pick, answering "why was this AA chosen over its alternatives" for
// both cache flavors (the RAID-aware max-heap and the RAID-agnostic HBPS)
// and the bitmap-fallback baselines.
//
// Records land in bounded per-space rings — fixed memory however long the
// run — with a monotonic per-space sequence number, so the surviving tail
// replays in canonical order. Picks within a space are serial (the CP
// pipeline allocates space by space) and concurrent experiment arms use
// disjoint space names, so the streams are byte-identical at any worker
// width; the per-ring locks exist only so live HTTP endpoints can read
// while a run records.
//
// Like the rest of obs, nil *Recorder and nil *Ring are valid no-op
// receivers: a disabled pick site pays one nil check.
package picks

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Reason classifies why an AA pick site chose its AA.
type Reason string

const (
	// HeapTop: the RAID-aware max-heap's best entry.
	HeapTop Reason = "heap_top"
	// HBPSBin: popped from the HBPS list front (best listed bin).
	HBPSBin Reason = "hbps_bin"
	// Refill: the HBPS list ran dry and was replenished from a bitmap walk
	// before the pop.
	Refill Reason = "refill"
	// BitmapFallback: caching disabled; the pick came from a random/linear
	// bitmap scan (the paper's baseline).
	BitmapFallback Reason = "bitmap_fallback"
	// ShardLocal: served from a per-worker shard queue without touching the
	// shared heap/HBPS — the striped allocator's contention-free fast path.
	ShardLocal Reason = "shard_local"
)

// Reasons returns every Reason in fixed order.
func Reasons() []Reason {
	return []Reason{HeapTop, HBPSBin, Refill, BitmapFallback, ShardLocal}
}

// PickRecord is one allocation decision.
type PickRecord struct {
	// Space names the picking space, matching fragscan's stream names:
	// "<arm>.rg<N>", "<arm>.vol.<name>", "<arm>.pool".
	Space string `json:"space"`
	// CP is the consistency-point ordinal being built when the pick
	// happened (picks occur inside CP processing).
	CP uint64 `json:"cp"`
	// Seq is the monotonic per-space pick ordinal, starting at 1. Gaps
	// never occur; a ring that wrapped simply no longer holds the low Seqs.
	Seq uint64 `json:"seq"`
	// AA is the chosen allocation area's ID.
	AA uint32 `json:"aa"`
	// Score is the chosen AA's score at pick time (free blocks): the cached
	// score for heap picks, the bitmap-derived score for HBPS and fallback
	// picks.
	Score int64 `json:"score"`
	// RunnerUp is the best alternative's score: the heap's next-best entry,
	// or the bin floor (a lower bound) of the HBPS's next listed AA. -1
	// when there was no alternative to compare (empty cache, fallback
	// scan).
	RunnerUp int64 `json:"runner_up"`
	// Depth is the cache depth remaining after the pick: heap length or
	// HBPS list length. 0 for fallback picks.
	Depth  int    `json:"depth"`
	Reason Reason `json:"reason"`
	// TraceID is the optrace ID of the op the pick served, when that op was
	// sampled; 0 otherwise. Lets /debug/picks and /debug/optrace
	// cross-reference the same allocation decision.
	TraceID uint64 `json:"trace_id,omitempty"`
}

// Config parameterizes a Recorder.
type Config struct {
	// Capacity is the per-space ring bound (≥1).
	Capacity int
}

// DefaultConfig keeps the last 4096 picks per space.
func DefaultConfig() Config { return Config{Capacity: 4096} }

// Recorder hands out one bounded Ring per space.
type Recorder struct {
	mu       sync.Mutex
	capacity int
	rings    map[string]*Ring
}

// NewRecorder creates an empty recorder. Capacity ≤ 0 selects the default.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultConfig().Capacity
	}
	return &Recorder{capacity: cfg.Capacity, rings: make(map[string]*Ring)}
}

// Space returns the named space's ring, creating it on first use. A nil
// recorder returns a nil ring (whose Record is a no-op).
func (r *Recorder) Space(name string) *Ring {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.rings[name]
	if g == nil {
		g = &Ring{space: name, buf: make([]PickRecord, 0, r.capacity)}
		r.rings[name] = g
	}
	return g
}

// Spaces returns every space name with a ring, sorted.
func (r *Recorder) Spaces() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.rings))
	for n := range r.rings {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Records returns the named space's surviving records, oldest first.
func (r *Recorder) Records(space string) []PickRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	g := r.rings[space]
	r.mu.Unlock()
	return g.Records()
}

// All returns every surviving record across spaces in canonical
// (Space, Seq) order — the replayable provenance stream.
func (r *Recorder) All() []PickRecord {
	var out []PickRecord
	for _, sp := range r.Spaces() {
		out = append(out, r.Records(sp)...)
	}
	return out
}

// TotalRecorded sums Recorded over all rings.
func (r *Recorder) TotalRecorded() uint64 {
	var n uint64
	for _, sp := range r.Spaces() {
		n += r.Space(sp).Recorded()
	}
	return n
}

// TotalDropped sums Dropped over all rings.
func (r *Recorder) TotalDropped() uint64 {
	var n uint64
	for _, sp := range r.Spaces() {
		n += r.Space(sp).Dropped()
	}
	return n
}

// spaceDump is one ring in the JSON document.
type spaceDump struct {
	Space    string            `json:"space"`
	Recorded uint64            `json:"recorded"`
	Dropped  uint64            `json:"dropped"`
	Reasons  map[Reason]uint64 `json:"reasons"`
	Records  []PickRecord      `json:"records"`
}

// WriteJSON writes every ring as one deterministic JSON document:
// {"spaces":[{"space":...,"recorded":N,"dropped":N,"reasons":{...},
// "records":[...]}]}.
func (r *Recorder) WriteJSON(w io.Writer) error {
	doc := struct {
		Spaces []spaceDump `json:"spaces"`
	}{Spaces: []spaceDump{}}
	for _, sp := range r.Spaces() {
		g := r.Space(sp)
		d := spaceDump{
			Space:    sp,
			Recorded: g.Recorded(),
			Dropped:  g.Dropped(),
			Reasons:  make(map[Reason]uint64),
			Records:  g.Records(),
		}
		if d.Records == nil {
			d.Records = []PickRecord{}
		}
		for _, reason := range Reasons() {
			if n := g.ReasonCount(reason); n > 0 {
				d.Reasons[reason] = n
			}
		}
		doc.Spaces = append(doc.Spaces, d)
	}
	return json.NewEncoder(w).Encode(doc)
}

// Ring is one space's bounded pick history.
type Ring struct {
	mu      sync.Mutex
	space   string
	buf     []PickRecord // cap fixed at Recorder capacity
	head    int          // index of the oldest record once full
	seq     uint64       // total records ever (next Seq - 1)
	dropped uint64
	reasons [5]uint64 // indexed parallel to Reasons()
}

func reasonIndex(reason Reason) int {
	switch reason {
	case HeapTop:
		return 0
	case HBPSBin:
		return 1
	case Refill:
		return 2
	case ShardLocal:
		return 4
	default:
		return 3
	}
}

// Record appends one pick. No-op on a nil ring — the disabled-path cost at
// every pick site is this one branch.
// tid is the optrace ID of the sampled op being served (0 when unsampled or
// tracing is off).
func (g *Ring) Record(cp uint64, id uint32, score, runnerUp int64, depth int, reason Reason, tid uint64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.seq++
	rec := PickRecord{
		Space: g.space, CP: cp, Seq: g.seq,
		AA: id, Score: score, RunnerUp: runnerUp, Depth: depth, Reason: reason,
		TraceID: tid,
	}
	g.reasons[reasonIndex(reason)]++
	if len(g.buf) < cap(g.buf) {
		g.buf = append(g.buf, rec)
	} else {
		g.buf[g.head] = rec
		g.head = (g.head + 1) % len(g.buf)
		g.dropped++
	}
	g.mu.Unlock()
}

// Records returns the surviving records, oldest first (ascending Seq).
func (g *Ring) Records() []PickRecord {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.buf) == 0 {
		return nil
	}
	out := make([]PickRecord, 0, len(g.buf))
	out = append(out, g.buf[g.head:]...)
	out = append(out, g.buf[:g.head]...)
	return out
}

// Recorded returns the total records ever appended (dropped included).
func (g *Ring) Recorded() uint64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.seq
}

// Dropped returns how many old records the ring overwrote.
func (g *Ring) Dropped() uint64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.dropped
}

// ReasonCount returns how many records carried the given reason.
func (g *Ring) ReasonCount(reason Reason) uint64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.reasons[reasonIndex(reason)]
}
