package picks

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRingBoundAndCanonicalOrder(t *testing.T) {
	r := NewRecorder(Config{Capacity: 4})
	g := r.Space("arm.rg0")
	for i := 0; i < 10; i++ {
		g.Record(uint64(i/3+1), uint32(i), int64(100-i), int64(99-i), 4, HeapTop, 0)
	}
	recs := g.Records()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d records, capacity 4", len(recs))
	}
	// The surviving tail is the newest 4 picks, ascending Seq with no gaps.
	for i, rec := range recs {
		if want := uint64(7 + i); rec.Seq != want {
			t.Errorf("record %d Seq = %d, want %d", i, rec.Seq, want)
		}
		if rec.Space != "arm.rg0" {
			t.Errorf("record %d space = %q", i, rec.Space)
		}
	}
	if g.Recorded() != 10 || g.Dropped() != 6 {
		t.Fatalf("recorded/dropped = %d/%d, want 10/6", g.Recorded(), g.Dropped())
	}
	if g.ReasonCount(HeapTop) != 10 || g.ReasonCount(Refill) != 0 {
		t.Fatalf("reason counts wrong: heap_top %d, refill %d",
			g.ReasonCount(HeapTop), g.ReasonCount(Refill))
	}
}

func TestRecorderAllSortsBySpaceThenSeq(t *testing.T) {
	r := NewRecorder(Config{Capacity: 8})
	r.Space("b").Record(1, 1, 10, -1, 0, BitmapFallback, 0)
	r.Space("a").Record(1, 2, 20, 15, 3, HBPSBin, 0)
	r.Space("a").Record(2, 3, 30, 25, 2, Refill, 0)
	all := r.All()
	if len(all) != 3 {
		t.Fatalf("All returned %d records", len(all))
	}
	if all[0].Space != "a" || all[0].Seq != 1 ||
		all[1].Space != "a" || all[1].Seq != 2 ||
		all[2].Space != "b" || all[2].Seq != 1 {
		t.Fatalf("canonical order violated: %+v", all)
	}
	if r.TotalRecorded() != 3 || r.TotalDropped() != 0 {
		t.Fatalf("totals = %d/%d", r.TotalRecorded(), r.TotalDropped())
	}
}

func TestSpaceReturnsSameRing(t *testing.T) {
	r := NewRecorder(DefaultConfig())
	if r.Space("x") != r.Space("x") {
		t.Fatal("Space handed out two rings for one name")
	}
}

func TestNilRecorderAndRingAreSafe(t *testing.T) {
	var r *Recorder
	g := r.Space("x")
	if g != nil {
		t.Fatal("nil recorder returned a live ring")
	}
	g.Record(1, 1, 1, 1, 1, HeapTop, 0) // must not panic
	if g.Records() != nil || g.Recorded() != 0 || g.Dropped() != 0 || g.ReasonCount(HeapTop) != 0 {
		t.Fatal("nil ring leaked state")
	}
	if r.Spaces() != nil || r.Records("x") != nil || r.All() != nil {
		t.Fatal("nil recorder leaked state")
	}
}

func TestWriteJSONShape(t *testing.T) {
	r := NewRecorder(Config{Capacity: 2})
	r.Space("arm.vol.va").Record(3, 7, 1000, 900, 5, HBPSBin, 77)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		Spaces []struct {
			Space    string            `json:"space"`
			Recorded uint64            `json:"recorded"`
			Reasons  map[string]uint64 `json:"reasons"`
			Records  []PickRecord      `json:"records"`
		} `json:"spaces"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(doc.Spaces) != 1 || doc.Spaces[0].Space != "arm.vol.va" ||
		doc.Spaces[0].Recorded != 1 || doc.Spaces[0].Reasons["hbps_bin"] != 1 ||
		len(doc.Spaces[0].Records) != 1 || doc.Spaces[0].Records[0].Score != 1000 ||
		doc.Spaces[0].Records[0].TraceID != 77 {
		t.Fatalf("unexpected document: %s", buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"trace_id":77`)) {
		t.Fatalf("trace_id missing from JSON: %s", buf.String())
	}
}
