package obs

import (
	"errors"
	"testing"
)

// Registering a name under a different instrument kind must surface as a
// returned error from the Try* guard path — and as an immediate panic (with
// the same error) from the convenience methods, never a deferred failure.
func TestKindMismatchIsReturnedError(t *testing.T) {
	r := NewRegistry()
	c, err := r.TryCounter("x")
	if err != nil || c == nil {
		t.Fatalf("TryCounter on fresh name: %v", err)
	}
	c.Add(2)

	if _, err := r.TryGauge("x"); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("TryGauge on counter name: err = %v, want ErrKindMismatch", err)
	}
	if _, err := r.TryHistogram("x", DurationBuckets); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("TryHistogram on counter name: err = %v, want ErrKindMismatch", err)
	}

	// Same name, same kind: fetches the existing instrument, no error.
	again, err := r.TryCounter("x")
	if err != nil || again != c {
		t.Fatalf("TryCounter re-registration: got %p,%v want the original %p", again, err, c)
	}
	if again.Value() != 2 {
		t.Fatalf("re-fetched counter value = %d, want 2", again.Value())
	}

	// The read-through variants share the same guard.
	r.CounterFunc("fn", func() uint64 { return 1 })
	if _, err := r.TryGauge("fn"); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("TryGauge on CounterFunc name: err = %v", err)
	}
}

func TestKindMismatchPanicCarriesError(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("Gauge on a counter name did not panic")
		}
		err, ok := rec.(error)
		if !ok || !errors.Is(err, ErrKindMismatch) {
			t.Fatalf("panic value = %v, want an error wrapping ErrKindMismatch", rec)
		}
	}()
	r.Gauge("x")
}
