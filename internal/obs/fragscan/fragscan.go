// Package fragscan computes allocation-quality analytics over block number
// spaces: free-extent run-length histograms, per-AA free-fraction
// distributions (deciles plus heatmap rows keyed by (space, AA-bucket, CP)),
// stripe fullness for RAID-aware spaces, and picked-AA-quality series.
//
// These are the quantities the paper's evaluation (§4) is judged on — % free
// of picked AAs, contiguity of free space, full-stripe opportunity — and the
// quantities related log-structured work identifies as the predictors of
// write amplification. The analyzer is purely observational: it reads
// bitmaps through the cheap scan hooks (bitmap.ForEachFreeRun,
// bitmap.FreeWord, aa.Scores, hbps.BinSnapshot, heapcache.Entries) and never
// charges modeled scan cost or touches an allocator counter, so enabling it
// cannot perturb an experiment's modeled clocks.
//
// Determinism contract: for a fixed workload and seed, scans, recorded
// report sequences, and serialized CSV/JSON output are byte-identical at any
// worker count, matching the rest of internal/obs.
package fragscan

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"sync"

	"waflfs/internal/aa"
	"waflfs/internal/bitmap"
	"waflfs/internal/block"
)

// Kind distinguishes the two space families of §3.
type Kind string

const (
	// KindRAID marks a RAID-aware space (striped AAs, heapcache-backed).
	KindRAID Kind = "raid"
	// KindHBPS marks a RAID-agnostic space (linear AAs, HBPS-backed).
	KindHBPS Kind = "hbps"
)

// DefaultAABuckets is the width of the per-AA free-fraction heatmap row:
// bucket b counts AAs with free fraction in [b/10, (b+1)/10).
const DefaultAABuckets = 10

// DefaultRunBounds are the inclusive upper bounds of the free-run-length
// histogram, in blocks: powers of two up to 64Ki blocks (256 MiB of 4KiB
// blocks), plus an implicit +Inf bucket.
func DefaultRunBounds() []uint64 {
	bounds := make([]uint64, 17)
	for i := range bounds {
		bounds[i] = 1 << i
	}
	return bounds
}

// Target describes one number space to scan. The zero value of the optional
// fields is safe: no device spans means run analysis covers the whole space
// as one extent stream and stripe fullness is skipped; zero Picks means no
// picked-quality series this window.
type Target struct {
	// Space names the report stream, e.g. "arm.rg0" or "arm.vol.va".
	Space string
	// Kind is KindRAID or KindHBPS.
	Kind Kind
	// Topo is the AA topology of the space.
	Topo aa.Topology
	// Bits is the bitmap backing the space.
	Bits *bitmap.Bitmap
	// DeviceSpans, for RAID spaces, holds one VBN range per data device,
	// all the same length, with stripe s at offset s within each span.
	// Runs are measured per device and stripe fullness is computed by
	// transposing 64-stripe chunks across devices.
	DeviceSpans []block.Range
	// Picks and PickedFreeFrac describe allocator picks since the last
	// scan of this space: how many AAs were picked and their mean free
	// fraction at pick time (§4.2's "% free of picked AAs").
	Picks          uint64
	PickedFreeFrac float64
	// CacheBins is an optional snapshot of the space's cache-side score
	// histogram (hbps.BinSnapshot, or a bucketed heapcache.Entries view)
	// to contrast the cache's coarse view with bitmap truth.
	CacheBins []uint64
	// Workers is the parallel width for AA scoring (0 = serial).
	Workers int
}

// Report is one scan of one space at one CP.
type Report struct {
	Space string `json:"space"`
	CP    uint64 `json:"cp"`
	// Seq disambiguates multiple scans of the same space at the same CP,
	// in record order.
	Seq  int  `json:"seq"`
	Kind Kind `json:"kind"`

	Blocks uint64 `json:"blocks"`
	Free   uint64 `json:"free"`

	// Free-extent run-length histogram: RunCounts[i] counts maximal free
	// runs of length ≤ RunBounds[i] (last entry is the +Inf bucket).
	RunBounds  []uint64 `json:"run_bounds"`
	RunCounts  []uint64 `json:"run_counts"`
	Runs       uint64   `json:"runs"`
	LongestRun uint64   `json:"longest_run"`
	MeanRun    float64  `json:"mean_run"`

	// Deciles of the per-AA free fraction: min, p10..p90, max.
	Deciles []float64 `json:"deciles"`
	// AAHist is the heatmap row: AAHist[b] counts AAs whose free fraction
	// falls in bucket b of DefaultAABuckets equal-width buckets.
	AAHist []uint64 `json:"aa_hist"`

	// StripeHist, for RAID spaces, counts stripes by how many of their
	// data blocks are free: len(DeviceSpans)+1 entries.
	StripeHist []uint64 `json:"stripe_hist,omitempty"`
	// FreeStripeFrac is the fraction of stripes with every data block
	// free — the full-stripe-write opportunity.
	FreeStripeFrac float64 `json:"free_stripe_frac"`

	CacheBins      []uint64 `json:"cache_bins,omitempty"`
	Picks          uint64   `json:"picks"`
	PickedFreeFrac float64  `json:"picked_free_frac"`
}

// FreeFrac returns the overall free fraction of the space.
func (r Report) FreeFrac() float64 {
	if r.Blocks == 0 {
		return 0
	}
	return float64(r.Free) / float64(r.Blocks)
}

// Scan analyzes one space. It only reads: no scan cost is charged to the
// bitmap and no allocator state changes, so modeled clocks are unaffected.
func Scan(t Target, cp uint64) Report {
	rep := Report{
		Space:          t.Space,
		CP:             cp,
		Kind:           t.Kind,
		RunBounds:      DefaultRunBounds(),
		CacheBins:      t.CacheBins,
		Picks:          t.Picks,
		PickedFreeFrac: t.PickedFreeFrac,
	}
	rep.RunCounts = make([]uint64, len(rep.RunBounds)+1)

	// Per-AA free fractions: parallel popcount scoring (index-owned slots,
	// deterministic at any width), then capacity-normalized.
	scores := aa.Scores(t.Topo, t.Bits, t.Workers)
	fracs := make([]float64, len(scores))
	for id, s := range scores {
		cap := aa.Capacity(t.Topo, aa.ID(id))
		rep.Blocks += cap
		rep.Free += s
		if cap > 0 {
			fracs[id] = float64(s) / float64(cap)
		}
	}
	rep.AAHist = make([]uint64, DefaultAABuckets)
	for _, f := range fracs {
		b := int(f * DefaultAABuckets)
		if b >= DefaultAABuckets {
			b = DefaultAABuckets - 1
		}
		rep.AAHist[b]++
	}
	rep.Deciles = deciles(fracs)

	// Free-extent runs, measured per device span so a run never crosses a
	// device boundary; HBPS spaces use the whole space as one stream.
	spans := t.DeviceSpans
	if len(spans) == 0 {
		spans = []block.Range{t.Topo.Space()}
	}
	var runBlocks uint64
	for _, sp := range spans {
		t.Bits.ForEachFreeRun(sp, func(run block.Range) bool {
			l := run.Len()
			rep.Runs++
			runBlocks += l
			if l > rep.LongestRun {
				rep.LongestRun = l
			}
			rep.RunCounts[runBucket(rep.RunBounds, l)]++
			return true
		})
	}
	if rep.Runs > 0 {
		rep.MeanRun = float64(runBlocks) / float64(rep.Runs)
	}

	if t.Kind == KindRAID && len(t.DeviceSpans) > 0 {
		rep.StripeHist, rep.FreeStripeFrac = stripeFullness(t.Bits, t.DeviceSpans)
	}
	return rep
}

func runBucket(bounds []uint64, l uint64) int {
	i := sort.Search(len(bounds), func(i int) bool { return bounds[i] >= l })
	return i // len(bounds) = +Inf bucket
}

// deciles returns min, p10..p90, max of vs (11 entries) by nearest-rank on
// the sorted values; empty input yields 11 zeros.
func deciles(vs []float64) []float64 {
	out := make([]float64, 11)
	if len(vs) == 0 {
		return out
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	for i := range out {
		out[i] = sorted[i*(len(sorted)-1)/10]
	}
	return out
}

// stripeFullness transposes per-device free bits into per-stripe free-block
// counts, 64 stripes at a time: one FreeWord call per device per chunk
// instead of one bitmap.Test per block.
func stripeFullness(bm *bitmap.Bitmap, spans []block.Range) ([]uint64, float64) {
	stripes := spans[0].Len()
	for _, sp := range spans {
		if sp.Len() != stripes {
			return nil, 0 // heterogeneous spans: not a striped layout
		}
	}
	hist := make([]uint64, len(spans)+1)
	if stripes == 0 {
		return hist, 0
	}
	var acc [64]uint8
	for base := uint64(0); base < stripes; base += 64 {
		n := stripes - base
		if n > 64 {
			n = 64
		}
		for i := uint64(0); i < n; i++ {
			acc[i] = 0
		}
		for _, sp := range spans {
			w := bm.FreeWord(sp.Start+block.VBN(base), uint(n))
			for w != 0 {
				acc[bits.TrailingZeros64(w)]++
				w &= w - 1
			}
		}
		for i := uint64(0); i < n; i++ {
			hist[acc[i]]++
		}
	}
	return hist, float64(hist[len(spans)]) / float64(stripes)
}

// Recorder accumulates reports from concurrent systems (experiment arms each
// scan at their own CP boundaries) and serializes them canonically: sorted
// by (Space, CP, Seq), so output is byte-identical at any worker count.
type Recorder struct {
	mu   sync.Mutex
	rows []Report
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record stores one report, assigning its Seq. Nil-safe.
func (r *Recorder) Record(rep Report) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, old := range r.rows {
		if old.Space == rep.Space && old.CP == rep.CP {
			rep.Seq++
		}
	}
	r.rows = append(r.rows, rep)
}

// Len returns the number of recorded reports.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.rows)
}

// Reports returns a copy of all reports in canonical (Space, CP, Seq) order.
func (r *Recorder) Reports() []Report {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Report(nil), r.rows...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Space != b.Space {
			return a.Space < b.Space
		}
		if a.CP != b.CP {
			return a.CP < b.CP
		}
		return a.Seq < b.Seq
	})
	return out
}

// Last returns the most recent report for the named space, by (CP, Seq).
func (r *Recorder) Last(space string) (Report, bool) {
	if r == nil {
		return Report{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var best Report
	found := false
	for _, rep := range r.rows {
		if rep.Space != space {
			continue
		}
		if !found || rep.CP > best.CP || (rep.CP == best.CP && rep.Seq > best.Seq) {
			best, found = rep, true
		}
	}
	return best, found
}

// CSVHeader is the first line of WriteCSV output: tidy long format, one
// observation per row.
const CSVHeader = "space,cp,series,key,value"

// WriteCSV serializes every report in canonical order as tidy rows
// (space, cp, series, key, value). Series:
//
//	scalar     key ∈ {blocks, free, free_frac, runs, longest_run,
//	           mean_run, free_stripe_frac, picks, picked_free_frac}
//	run_le     key = run-length bound in blocks ("inf" for overflow)
//	aa_bucket  key = free-fraction bucket index — the heatmap row keyed
//	           by (space, AA-bucket, CP)
//	decile     key = percentile (0, 10, …, 100) of per-AA free fraction
//	stripe_free key = free data blocks per stripe (RAID spaces)
//	cache_bin  key = cache histogram bin index (when snapshotted)
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, CSVHeader+"\n"); err != nil {
		return err
	}
	for _, rep := range r.Reports() {
		if err := writeReportCSV(w, rep); err != nil {
			return err
		}
	}
	return nil
}

func writeReportCSV(w io.Writer, rep Report) error {
	row := func(series, key string, val string) error {
		_, err := fmt.Fprintf(w, "%s,%d,%s,%s,%s\n", rep.Space, rep.CP, series, key, val)
		return err
	}
	u := strconv.FormatUint
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	scalars := []struct {
		key string
		val string
	}{
		{"blocks", u(rep.Blocks, 10)},
		{"free", u(rep.Free, 10)},
		{"free_frac", f(rep.FreeFrac())},
		{"runs", u(rep.Runs, 10)},
		{"longest_run", u(rep.LongestRun, 10)},
		{"mean_run", f(rep.MeanRun)},
		{"picks", u(rep.Picks, 10)},
		{"picked_free_frac", f(rep.PickedFreeFrac)},
	}
	for _, s := range scalars {
		if err := row("scalar", s.key, s.val); err != nil {
			return err
		}
	}
	if rep.StripeHist != nil {
		if err := row("scalar", "free_stripe_frac", f(rep.FreeStripeFrac)); err != nil {
			return err
		}
	}
	for i, c := range rep.RunCounts {
		key := "inf"
		if i < len(rep.RunBounds) {
			key = u(rep.RunBounds[i], 10)
		}
		if err := row("run_le", key, u(c, 10)); err != nil {
			return err
		}
	}
	for b, c := range rep.AAHist {
		if err := row("aa_bucket", strconv.Itoa(b), u(c, 10)); err != nil {
			return err
		}
	}
	for i, d := range rep.Deciles {
		if err := row("decile", strconv.Itoa(i*10), f(d)); err != nil {
			return err
		}
	}
	for n, c := range rep.StripeHist {
		if err := row("stripe_free", strconv.Itoa(n), u(c, 10)); err != nil {
			return err
		}
	}
	for b, c := range rep.CacheBins {
		if err := row("cache_bin", strconv.Itoa(b), u(c, 10)); err != nil {
			return err
		}
	}
	return nil
}

// Summary condenses a space's report stream: final-scan state plus
// pick-weighted quality across the whole stream.
type Summary struct {
	Space          string  `json:"space"`
	Scans          int     `json:"scans"`
	FreeFrac       float64 `json:"free_frac"`        // final scan
	MeanRun        float64 `json:"mean_run"`         // final scan
	LongestRun     uint64  `json:"longest_run"`      // final scan
	FreeStripeFrac float64 `json:"free_stripe_frac"` // final scan (RAID)
	MedianAAFrac   float64 `json:"median_aa_frac"`   // final scan decile 50
	Picks          uint64  `json:"picks"`            // total across scans
	PickedFreeFrac float64 `json:"picked_free_frac"` // pick-weighted mean
}

// Summaries returns one Summary per space, sorted by space name.
func (r *Recorder) Summaries() []Summary {
	byspace := map[string]*Summary{}
	var order []string
	for _, rep := range r.Reports() { // canonical order: last report wins
		s := byspace[rep.Space]
		if s == nil {
			s = &Summary{Space: rep.Space}
			byspace[rep.Space] = s
			order = append(order, rep.Space)
		}
		s.Scans++
		s.FreeFrac = rep.FreeFrac()
		s.MeanRun = rep.MeanRun
		s.LongestRun = rep.LongestRun
		s.FreeStripeFrac = rep.FreeStripeFrac
		s.MedianAAFrac = rep.Deciles[5]
		s.Picks += rep.Picks
		s.PickedFreeFrac += rep.PickedFreeFrac * float64(rep.Picks)
	}
	sort.Strings(order)
	out := make([]Summary, 0, len(order))
	for _, name := range order {
		s := byspace[name]
		if s.Picks > 0 {
			s.PickedFreeFrac /= float64(s.Picks)
		} else {
			s.PickedFreeFrac = 0
		}
		out = append(out, *s)
	}
	return out
}
