package fragscan

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"waflfs/internal/aa"
	"waflfs/internal/bitmap"
	"waflfs/internal/block"
)

// A fresh space: one run spanning everything, all AAs fully free.
func TestScanFreshSpace(t *testing.T) {
	bm := bitmap.New(256)
	rep := Scan(Target{
		Space: "s", Kind: KindHBPS,
		Topo: aa.NewLinear(block.R(0, 256), 64), Bits: bm,
	}, 1)
	if rep.Blocks != 256 || rep.Free != 256 || rep.FreeFrac() != 1 {
		t.Fatalf("totals: %+v", rep)
	}
	if rep.Runs != 1 || rep.LongestRun != 256 || rep.MeanRun != 256 {
		t.Fatalf("runs: %+v", rep)
	}
	for i, d := range rep.Deciles {
		if d != 1 {
			t.Fatalf("decile %d = %v, want 1", i, d)
		}
	}
	wantHist := make([]uint64, DefaultAABuckets)
	wantHist[DefaultAABuckets-1] = 4
	if !reflect.DeepEqual(rep.AAHist, wantHist) {
		t.Fatalf("AAHist = %v, want %v", rep.AAHist, wantHist)
	}
	// 256 = 2^8 lands in the first bucket with bound >= 256.
	if rep.RunCounts[8] != 1 {
		t.Fatalf("RunCounts = %v, want single run at bucket 8", rep.RunCounts)
	}
}

// Known allocation pattern: AA0 fully used, AA1 alternating, AA2-3 free.
func TestScanKnownPattern(t *testing.T) {
	bm := bitmap.New(256)
	bm.SetRange(block.R(0, 64))
	for v := block.VBN(64); v < 128; v += 2 {
		bm.Set(v)
	}
	rep := Scan(Target{
		Space: "s", Kind: KindHBPS,
		Topo: aa.NewLinear(block.R(0, 256), 64), Bits: bm,
	}, 2)
	if rep.Free != 32+128 {
		t.Fatalf("free = %d, want 160", rep.Free)
	}
	// 32 single-block runs in AA1; the last one merges with AA2-3's 128
	// free blocks (runs don't observe AA boundaries): 31 runs of length 1
	// plus one run of 129.
	if rep.Runs != 32 || rep.LongestRun != 129 {
		t.Fatalf("runs=%d longest=%d, want 32/129", rep.Runs, rep.LongestRun)
	}
	if rep.RunCounts[0] != 31 { // bound 1
		t.Fatalf("RunCounts[<=1] = %d, want 31", rep.RunCounts[0])
	}
	// Per-AA fractions 0, 0.5, 1, 1: min 0, median 0.5..1 band, max 1.
	if rep.Deciles[0] != 0 || rep.Deciles[10] != 1 {
		t.Fatalf("deciles = %v", rep.Deciles)
	}
	if rep.AAHist[0] != 1 || rep.AAHist[5] != 1 || rep.AAHist[DefaultAABuckets-1] != 2 {
		t.Fatalf("AAHist = %v", rep.AAHist)
	}
}

// Stripe fullness transposes per-device spans: with 2 devices of 64
// stripes, allocating device 0's stripe 3 leaves 63 fully-free stripes.
func TestScanStripeFullness(t *testing.T) {
	bm := bitmap.New(128)
	bm.Set(3) // device 0, stripe 3
	rep := Scan(Target{
		Space: "s", Kind: KindRAID,
		Topo:        aa.NewLinear(block.R(0, 128), 64),
		Bits:        bm,
		DeviceSpans: []block.Range{block.R(0, 64), block.R(64, 128)},
	}, 1)
	if len(rep.StripeHist) != 3 {
		t.Fatalf("StripeHist = %v", rep.StripeHist)
	}
	if rep.StripeHist[2] != 63 || rep.StripeHist[1] != 1 || rep.StripeHist[0] != 0 {
		t.Fatalf("StripeHist = %v, want [0 1 63]", rep.StripeHist)
	}
	if want := 63.0 / 64.0; rep.FreeStripeFrac != want {
		t.Fatalf("FreeStripeFrac = %v, want %v", rep.FreeStripeFrac, want)
	}
	// Runs are per device span: device 0 has runs [0,3) and [4,64).
	if rep.Runs != 3 || rep.LongestRun != 64 {
		t.Fatalf("runs=%d longest=%d, want 3/64", rep.Runs, rep.LongestRun)
	}
}

// Scans must be identical at any worker width.
func TestScanWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	bm := bitmap.New(1 << 16)
	for i := 0; i < 1<<15; i++ {
		bm.Set(block.VBN(rng.Intn(1 << 16)))
	}
	mk := func(workers int) Report {
		return Scan(Target{
			Space: "s", Kind: KindHBPS,
			Topo: aa.NewLinear(block.R(0, 1<<16), 4096), Bits: bm,
			Workers: workers,
		}, 7)
	}
	if r1, r8 := mk(1), mk(8); !reflect.DeepEqual(r1, r8) {
		t.Fatalf("worker divergence:\n1: %+v\n8: %+v", r1, r8)
	}
}

// Recorder: canonical (Space, CP, Seq) ordering regardless of record order,
// Seq assignment for same-(space,cp) scans, Last, and CSV shape.
func TestRecorderOrderingAndCSV(t *testing.T) {
	rec := NewRecorder()
	mk := func(space string, cp uint64) Report {
		return Report{Space: space, CP: cp, Kind: KindHBPS,
			RunBounds: []uint64{1}, RunCounts: []uint64{0, 0},
			Deciles: make([]float64, 11), AAHist: make([]uint64, DefaultAABuckets)}
	}
	rec.Record(mk("b", 2))
	rec.Record(mk("a", 5))
	rec.Record(mk("b", 1))
	rec.Record(mk("b", 2)) // same (space, cp): Seq 1
	rec.Record(mk("a", 3))

	reps := rec.Reports()
	wantOrder := []struct {
		space string
		cp    uint64
		seq   int
	}{{"a", 3, 0}, {"a", 5, 0}, {"b", 1, 0}, {"b", 2, 0}, {"b", 2, 1}}
	if len(reps) != len(wantOrder) {
		t.Fatalf("got %d reports", len(reps))
	}
	for i, w := range wantOrder {
		if reps[i].Space != w.space || reps[i].CP != w.cp || reps[i].Seq != w.seq {
			t.Fatalf("report %d = (%s,%d,%d), want %+v", i, reps[i].Space, reps[i].CP, reps[i].Seq, w)
		}
	}
	if last, ok := rec.Last("b"); !ok || last.CP != 2 || last.Seq != 1 {
		t.Fatalf("Last(b) = %+v,%v", last, ok)
	}
	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if lines[0] != CSVHeader {
		t.Fatalf("header = %q", lines[0])
	}
	// Rows per report: 8 scalars + 2 run_le + 10 aa_bucket + 11 decile.
	if want := 1 + 5*(8+2+10+11); len(lines) != want {
		t.Fatalf("%d CSV lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[1], "a,3,scalar,blocks,") {
		t.Fatalf("first data row = %q", lines[1])
	}
}

// The heatmap row key (space, AA-bucket, CP) appears literally in CSV.
func TestCSVHeatmapRows(t *testing.T) {
	rec := NewRecorder()
	bm := bitmap.New(128)
	bm.SetRange(block.R(0, 64))
	rec.Record(Scan(Target{Space: "hm", Kind: KindHBPS,
		Topo: aa.NewLinear(block.R(0, 128), 64), Bits: bm}, 4))
	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hm,4,aa_bucket,0,1\n") ||
		!strings.Contains(sb.String(), "hm,4,aa_bucket,9,1\n") {
		t.Fatalf("heatmap rows missing:\n%s", sb.String())
	}
}

// Summaries: final-scan state, pick-weighted picked quality.
func TestSummaries(t *testing.T) {
	rec := NewRecorder()
	base := Report{Kind: KindHBPS, RunBounds: []uint64{1}, RunCounts: []uint64{0, 0},
		Deciles: make([]float64, 11), AAHist: make([]uint64, DefaultAABuckets)}
	r1 := base
	r1.Space, r1.CP, r1.Blocks, r1.Free, r1.Picks, r1.PickedFreeFrac = "x", 1, 100, 80, 4, 0.5
	r2 := base
	r2.Space, r2.CP, r2.Blocks, r2.Free, r2.Picks, r2.PickedFreeFrac = "x", 2, 100, 60, 12, 0.75
	r2.Deciles[5] = 0.6
	rec.Record(r1)
	rec.Record(r2)

	sums := rec.Summaries()
	if len(sums) != 1 {
		t.Fatalf("%d summaries", len(sums))
	}
	s := sums[0]
	if s.Space != "x" || s.Scans != 2 || s.FreeFrac != 0.6 || s.MedianAAFrac != 0.6 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Picks != 16 {
		t.Fatalf("picks = %d", s.Picks)
	}
	if want := (0.5*4 + 0.75*12) / 16; s.PickedFreeFrac != want {
		t.Fatalf("picked = %v, want %v", s.PickedFreeFrac, want)
	}
}
