package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// sanitizeProm maps a registry metric name onto the Prometheus name charset
// [a-zA-Z0-9_:]; dots, dashes, '#' and anything else become underscores.
func sanitizeProm(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4). Output is deterministic: metrics appear in
// snapshot (name-sorted) order.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, m := range snap.Metrics {
		name := sanitizeProm(m.Name)
		switch {
		case m.Kind == KindCounter:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, m.Value)
		case m.Kind == KindGauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", name, name, m.Gauge)
		case m.Kind == KindHistogram && m.Hist != nil:
			fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
			cum := uint64(0)
			for i, bound := range m.Hist.Bounds {
				cum += m.Hist.Counts[i]
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum)
			}
			cum += m.Hist.Counts[len(m.Hist.Bounds)]
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(bw, "%s_sum %d\n", name, m.Hist.Sum)
			fmt.Fprintf(bw, "%s_count %d\n", name, m.Hist.Count)
		}
	}
	return bw.Flush()
}

// Handler serves the registry in the Prometheus text format on every path
// (conventionally scraped at /metrics).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Snapshot())
	})
}
