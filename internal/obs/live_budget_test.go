package obs_test

import (
	"testing"

	"waflfs/internal/obs"
	"waflfs/internal/obs/picks"
	"waflfs/internal/obs/tsdb"
)

// The PR-5 sinks sit on the allocation and CP hot paths behind nil-safe
// receivers, so the disabled state must cost one predictable branch — the
// same budget TestCounterHotPathBudget enforces for counters and tracers.
func TestLiveSinkDisabledPathBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion; skipped in -short")
	}
	cases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"nil-ring-record", func(b *testing.B) {
			var r *picks.Ring
			for i := 0; i < b.N; i++ {
				r.Record(uint64(i), 1, 100, 90, 8, picks.HeapTop, 0)
			}
		}},
		{"nil-store-observe", func(b *testing.B) {
			var s *tsdb.Store
			for i := 0; i < b.N; i++ {
				s.Observe("x", uint64(i), 0, 1)
			}
		}},
		{"nil-latest-publish", func(b *testing.B) {
			var l *obs.Latest
			for i := 0; i < b.N; i++ {
				l.Publish("x", obs.Snapshot{})
			}
		}},
	}
	for _, tc := range cases {
		r := testing.Benchmark(tc.fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if ns >= 10 {
			t.Errorf("%s = %v ns/op, want < 10", tc.name, ns)
		}
	}
}
