package obs

import (
	"math/rand"
	"testing"

	"waflfs/internal/stats"
)

// Quantile estimates must track exact stats.Summary percentiles on known
// distributions, within one bucket width (the information the histogram
// retains).
func TestHistogramQuantileVsSummary(t *testing.T) {
	bounds := make([]uint64, 20)
	for i := range bounds {
		bounds[i] = uint64(i+1) * 50 // 50, 100, ..., 1000
	}
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		name string
		gen  func() uint64
		n    int
	}{
		{"uniform", func() uint64 { return uint64(rng.Intn(1000)) + 1 }, 20000},
		{"bimodal", func() uint64 {
			if rng.Intn(2) == 0 {
				return uint64(rng.Intn(100)) + 1
			}
			return uint64(rng.Intn(100)) + 800
		}, 20000},
		{"skewed", func() uint64 {
			v := rng.ExpFloat64() * 150
			if v > 999 {
				v = 999
			}
			return uint64(v) + 1
		}, 20000},
	}
	for _, tc := range cases {
		h := NewHistogram(bounds)
		var samples []float64
		for i := 0; i < tc.n; i++ {
			v := tc.gen()
			h.Observe(v)
			samples = append(samples, float64(v))
		}
		sum := stats.Summarize(samples)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			got := h.Quantile(q)
			want := sum.Percentile(q * 100)
			if diff := got - want; diff > 50 || diff < -50 {
				t.Errorf("%s q%.2f: histogram %.1f vs exact %.1f (> one bucket width apart)",
					tc.name, q, got, want)
			}
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v, want 0", got)
	}
	h := NewHistogram([]uint64{10, 20})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	// All mass in the +Inf bucket clamps to the highest finite bound.
	h.Observe(1000)
	if got := h.Quantile(0.99); got != 20 {
		t.Errorf("overflow quantile = %v, want clamp to 20", got)
	}
	// Out-of-range q clamps instead of panicking.
	h2 := NewHistogram([]uint64{10})
	h2.Observe(5)
	if got := h2.Quantile(-1); got < 0 || got > 10 {
		t.Errorf("q=-1 -> %v, want within bucket", got)
	}
	if got := h2.Quantile(2); got < 0 || got > 10 {
		t.Errorf("q=2 -> %v, want within bucket", got)
	}
	// A point mass interpolates within its bucket and never leaves it.
	h3 := NewHistogram([]uint64{10, 20, 30})
	for i := 0; i < 100; i++ {
		h3.Observe(15)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := h3.Quantile(q); got < 10 || got > 20 {
			t.Errorf("point-mass q%.1f = %v, outside (10,20]", q, got)
		}
	}
}
