// Package obs is the repo's structured observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms), a span/event
// tracer driven by the simulation's modeled clock, and exporters for the
// Prometheus text format, per-CP CSV time series, and JSON snapshots.
//
// Two properties are load-bearing:
//
//   - Zero-overhead off switch. Every instrument type is nil-safe: calling
//     Add/Observe/Emit on a nil *Counter, *Histogram, or *SysTracer is a
//     single branch and no allocation, so instrumentation sites can hold
//     possibly-nil pointers and the default (observability off) costs
//     nothing measurable (see BenchmarkCounterHotPath).
//
//   - Determinism. Snapshots are ordered by metric name, counter and
//     histogram updates are commutative atomics, and tracer events sort into
//     a canonical order, so a run at Workers=8 produces bit-identical
//     stable snapshots and event sequences to the same run at Workers=1.
//     Metrics whose value legitimately depends on the worker count (modeled
//     flush wall-clock, pool slot accounting) are registered as volatile and
//     excluded from StableSnapshot.
package obs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is unusable;
// obtain one from Registry.Counter. All methods are nil-safe no-ops so
// disabled instrumentation costs one branch.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// AddDuration adds a non-negative duration, counted in nanoseconds.
func (c *Counter) AddDuration(d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.v.Add(uint64(d))
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 instrument.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current gauge value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram over uint64 samples. Bounds are
// inclusive upper bounds in ascending order; an implicit +Inf bucket catches
// the overflow. Observations are two atomic adds plus a small binary search:
// no allocation on the hot path.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64
	count  atomic.Uint64
}

// NewHistogram builds a histogram with the given ascending bucket bounds.
func NewHistogram(bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{
		bounds: append([]uint64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// DurationBuckets is the standard bucket layout for modeled latencies, in
// nanoseconds: 1µs to 10s in decades.
var DurationBuckets = []uint64{
	1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000,
}

// LatencyBuckets is the finer 1-2-5 layout for per-volume modeled op
// latencies, in nanoseconds: 1µs to 10s. The SLO engine snaps latency
// thresholds to these bounds, so the resolution here bounds how precisely a
// latency objective can be stated.
var LatencyBuckets = []uint64{
	1_000, 2_000, 5_000,
	10_000, 20_000, 50_000,
	100_000, 200_000, 500_000,
	1_000_000, 2_000_000, 5_000_000,
	10_000_000, 20_000_000, 50_000_000,
	100_000_000, 200_000_000, 500_000_000,
	1_000_000_000, 2_000_000_000, 5_000_000_000, 10_000_000_000,
}

// FanoutBuckets is the standard bucket layout for work-pool fan-out widths.
var FanoutBuckets = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveN records n identical samples of value v — how a CP attributes one
// amortized per-block cost to every block it flushed without n binary
// searches. Equivalent to calling Observe(v) n times.
func (h *Histogram) ObserveN(v uint64, n uint64) {
	if h == nil || n == 0 {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(n)
	h.sum.Add(v * n)
	h.count.Add(n)
}

// ObserveDuration records a non-negative duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil || d < 0 {
		return
	}
	h.Observe(uint64(d))
}

// Value snapshots the histogram.
func (h *Histogram) Value() HistValue {
	if h == nil {
		return HistValue{}
	}
	hv := HistValue{
		Bounds: append([]uint64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		hv.Counts[i] = h.counts[i].Load()
	}
	return hv
}

// HistValue is the exported state of a histogram.
type HistValue struct {
	// Bounds are the inclusive upper bucket bounds, ascending.
	Bounds []uint64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the +Inf bucket.
	Counts []uint64 `json:"counts"`
	Sum    uint64   `json:"sum"`
	Count  uint64   `json:"count"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the recorded samples by
// linear interpolation within the containing bucket, assuming samples are
// uniformly spread over each bucket's (lower, upper] range. Samples landing
// in the +Inf bucket are clamped to the highest finite bound, so tail
// quantiles are a lower bound once the histogram overflows. Returns 0 for
// an empty histogram.
func (hv HistValue) Quantile(q float64) float64 {
	if hv.Count == 0 || len(hv.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(hv.Count)
	var cum uint64
	for i, c := range hv.Counts {
		if c == 0 {
			continue
		}
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(hv.Bounds) { // +Inf bucket: clamp
			return float64(hv.Bounds[len(hv.Bounds)-1])
		}
		var lo float64
		if i > 0 {
			lo = float64(hv.Bounds[i-1])
		}
		hi := float64(hv.Bounds[i])
		frac := (rank - float64(cum-c)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	return float64(hv.Bounds[len(hv.Bounds)-1])
}

// Quantile estimates the q-quantile of the live histogram; see
// HistValue.Quantile. Returns 0 for nil or empty histograms.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Value().Quantile(q)
}

// Kind names in snapshots.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Metric is one named instrument's snapshot.
type Metric struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Value uint64 `json:"value,omitempty"` // counters
	Gauge int64  `json:"gauge,omitempty"` // gauges
	// Hist is set for histograms only.
	Hist *HistValue `json:"hist,omitempty"`
	// Volatile marks metrics whose value legitimately varies with the
	// worker count; StableSnapshot excludes them.
	Volatile bool `json:"volatile,omitempty"`
}

// Snapshot is a point-in-time view of a registry, ordered by metric name.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Get returns the named metric from the snapshot.
func (s Snapshot) Get(name string) (Metric, bool) {
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Name >= name })
	if i < len(s.Metrics) && s.Metrics[i].Name == name {
		return s.Metrics[i], true
	}
	return Metric{}, false
}

// Counter returns the named counter's value (0 when absent).
func (s Snapshot) Counter(name string) uint64 {
	m, _ := s.Get(name)
	return m.Value
}

type entry struct {
	name     string
	kind     string
	volatile bool

	c   *Counter
	g   *Gauge
	h   *Histogram
	cfn func() uint64 // counter-valued read-through
	gfn func() int64  // gauge-valued read-through
}

func (e *entry) snapshot() Metric {
	m := Metric{Name: e.name, Kind: e.kind, Volatile: e.volatile}
	switch {
	case e.c != nil:
		m.Value = e.c.Value()
	case e.cfn != nil:
		m.Value = e.cfn()
	case e.g != nil:
		m.Gauge = e.g.Value()
	case e.gfn != nil:
		m.Gauge = e.gfn()
	case e.h != nil:
		hv := e.h.Value()
		m.Hist = &hv
	}
	return m
}

// Registry names and snapshots a set of instruments. Registration is
// idempotent by name (re-registering returns the existing instrument);
// snapshots are deterministic: sorted by name, with read-through functions
// evaluated at snapshot time.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry

	// mirror, when set, receives a prefixed alias of every entry registered
	// here — how per-System registries feed a shared export registry without
	// double accounting (the alias shares the underlying instrument).
	mirror       *Registry
	mirrorPrefix string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// MirrorTo makes every current and future entry of r also visible in dst
// under prefix+name. The mirrored entries share the underlying instruments,
// so there is exactly one accounting path. Name collisions in dst get a
// deterministic "#2", "#3", ... suffix.
func (r *Registry) MirrorTo(dst *Registry, prefix string) {
	if dst == nil {
		return
	}
	r.mu.Lock()
	r.mirror, r.mirrorPrefix = dst, prefix
	existing := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		existing = append(existing, e)
	}
	r.mu.Unlock()
	sort.Slice(existing, func(i, j int) bool { return existing[i].name < existing[j].name })
	for _, e := range existing {
		dst.attach(prefix+e.name, e)
	}
}

func (r *Registry) attach(name string, src *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	final := name
	for n := 2; ; n++ {
		if _, taken := r.entries[final]; !taken {
			break
		}
		final = fmt.Sprintf("%s#%d", name, n)
	}
	alias := *src
	alias.name = final
	r.entries[final] = &alias
}

// ErrKindMismatch reports a metric name re-registered as a different
// instrument kind. tryRegister (and the Try* registration methods) return
// it wrapped with the name and both kinds; the panicking convenience
// methods panic with the same error at the registration site, never later.
var ErrKindMismatch = errors.New("metric kind mismatch")

// register adds e under its name, or returns the existing entry of the same
// kind. A kind mismatch panics: the no-argument convenience methods treat
// it as a programming error. Callers that need to propagate the condition
// use the Try* variants instead.
func (r *Registry) register(e *entry) *entry {
	got, err := r.tryRegister(e)
	if err != nil {
		panic(err)
	}
	return got
}

// tryRegister is register's guard path: a kind mismatch is a returned
// error, not a panic.
func (r *Registry) tryRegister(e *entry) (*entry, error) {
	r.mu.Lock()
	if old, ok := r.entries[e.name]; ok {
		r.mu.Unlock()
		if old.kind != e.kind {
			return nil, fmt.Errorf("obs: %q re-registered as %s (was %s): %w",
				e.name, e.kind, old.kind, ErrKindMismatch)
		}
		return old, nil
	}
	r.entries[e.name] = e
	mirror, prefix := r.mirror, r.mirrorPrefix
	r.mu.Unlock()
	if mirror != nil {
		mirror.attach(prefix+e.name, e)
	}
	return e, nil
}

// TryCounter registers (or fetches) a counter, reporting a kind mismatch
// as an error (wrapping ErrKindMismatch) instead of panicking.
func (r *Registry) TryCounter(name string) (*Counter, error) {
	e, err := r.tryRegister(&entry{name: name, kind: KindCounter, c: &Counter{}})
	if err != nil {
		return nil, err
	}
	return e.c, nil
}

// TryGauge registers (or fetches) a gauge, reporting a kind mismatch as an
// error instead of panicking.
func (r *Registry) TryGauge(name string) (*Gauge, error) {
	e, err := r.tryRegister(&entry{name: name, kind: KindGauge, g: &Gauge{}})
	if err != nil {
		return nil, err
	}
	return e.g, nil
}

// TryHistogram registers (or fetches) a histogram, reporting a kind
// mismatch as an error instead of panicking.
func (r *Registry) TryHistogram(name string, bounds []uint64) (*Histogram, error) {
	e, err := r.tryRegister(&entry{name: name, kind: KindHistogram, h: NewHistogram(bounds)})
	if err != nil {
		return nil, err
	}
	return e.h, nil
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name string) *Counter {
	return r.register(&entry{name: name, kind: KindCounter, c: &Counter{}}).c
}

// VolatileCounter registers a counter excluded from StableSnapshot.
func (r *Registry) VolatileCounter(name string) *Counter {
	return r.register(&entry{name: name, kind: KindCounter, volatile: true, c: &Counter{}}).c
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name string) *Gauge {
	return r.register(&entry{name: name, kind: KindGauge, g: &Gauge{}}).g
}

// Histogram registers (or fetches) a histogram with the given bounds.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	return r.register(&entry{name: name, kind: KindHistogram, h: NewHistogram(bounds)}).h
}

// CounterFunc registers a read-through counter: fn is evaluated at snapshot
// time. This is how existing accounting fields become registry views without
// a second accounting path that could drift.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.register(&entry{name: name, kind: KindCounter, cfn: fn})
}

// VolatileCounterFunc is CounterFunc for worker-count-dependent values.
func (r *Registry) VolatileCounterFunc(name string, fn func() uint64) {
	r.register(&entry{name: name, kind: KindCounter, volatile: true, cfn: fn})
}

// GaugeFunc registers a read-through gauge.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.register(&entry{name: name, kind: KindGauge, gfn: fn})
}

// Value returns the current counter value of the named metric.
func (r *Registry) Value(name string) (uint64, bool) {
	r.mu.Lock()
	e, ok := r.entries[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	m := e.snapshot()
	return m.Value, true
}

// Snapshot returns every metric, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	return r.snapshot(true)
}

// StableSnapshot returns every non-volatile metric, sorted by name. Two runs
// of the same workload at different worker counts produce DeepEqual stable
// snapshots — the registry's determinism contract.
func (r *Registry) StableSnapshot() Snapshot {
	return r.snapshot(false)
}

func (r *Registry) snapshot(includeVolatile bool) Snapshot {
	r.mu.Lock()
	es := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		if !includeVolatile && e.volatile {
			continue
		}
		es = append(es, e)
	}
	r.mu.Unlock()
	sort.Slice(es, func(i, j int) bool { return es[i].name < es[j].name })
	snap := Snapshot{Metrics: make([]Metric, len(es))}
	for i, e := range es {
		snap.Metrics[i] = e.snapshot()
	}
	return snap
}
