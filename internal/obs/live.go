package obs

import (
	"net/http"
	"sort"
	"sync"
)

// Latest is a published-snapshot holder for serving metrics while the
// simulation is mutating them. Registry read-through instruments evaluate
// their closures at snapshot time, so scraping a live registry from an
// HTTP handler races with the CP thread that owns the underlying fields.
// Latest inverts the flow: each system publishes its own registry snapshot
// from its own goroutine at every CP boundary — where the reads are
// single-threaded by construction — and scrapers only ever see whole,
// CP-boundary-consistent snapshots. The served view lags the live state by
// at most one CP.
//
// Like the other sinks, a nil *Latest is a valid no-op receiver.
type Latest struct {
	mu    sync.Mutex
	snaps map[string]Snapshot
}

// NewLatest creates an empty holder.
func NewLatest() *Latest { return &Latest{snaps: make(map[string]Snapshot)} }

// Publish replaces the named system's snapshot. No-op on a nil holder.
func (l *Latest) Publish(sys string, snap Snapshot) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.snaps[sys] = snap
	l.mu.Unlock()
}

// NumSystems returns how many systems have published (0 for nil).
func (l *Latest) NumSystems() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.snaps)
}

// Snapshot merges every published snapshot into one view with each metric
// under "<sys>.<name>", sorted by name — the same naming an export-mirror
// registry produces for the same systems.
func (l *Latest) Snapshot() Snapshot {
	if l == nil {
		return Snapshot{}
	}
	l.mu.Lock()
	var ms []Metric
	for sys, snap := range l.snaps {
		for _, m := range snap.Metrics {
			m.Name = sys + "." + m.Name
			ms = append(ms, m)
		}
	}
	l.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	return Snapshot{Metrics: ms}
}

// LatestHandler serves the merged published snapshot in the Prometheus text
// format — the tear-free counterpart of Handler for scraping while CPs are
// in flight.
func LatestHandler(l *Latest) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, l.Snapshot())
	})
}
