package optrace

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// FormatTraceID renders a trace ID the way every surface prints it:
// zero-padded lowercase hex with an 0x prefix, e.g. 0x00c0ffee00c0ffee.
func FormatTraceID(id uint64) string {
	return fmt.Sprintf("0x%016x", id)
}

// ParseTraceID parses a trace ID as printed by FormatTraceID (0x hex, any
// width) or as the plain decimal JSON encoding. The zero ID is rejected —
// recorded traces are never 0, so 0 only ever means "no filter".
func ParseTraceID(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	base := 10
	if rest, ok := strings.CutPrefix(s, "0x"); ok {
		s, base = rest, 16
	} else if rest, ok := strings.CutPrefix(s, "0X"); ok {
		s, base = rest, 16
	}
	id, err := strconv.ParseUint(s, base, 64)
	if err != nil {
		return 0, fmt.Errorf("optrace: bad trace id %q: %v", s, err)
	}
	if id == 0 {
		return 0, fmt.Errorf("optrace: trace id 0 is reserved")
	}
	return id, nil
}

// ParseConfig parses the -optrace flag spec: comma-separated key=value
// pairs "rate=N[,slow=D][,cap=N][,seed=N]", where slow takes a
// time.ParseDuration string. Omitted keys keep their Config defaults; the
// bare spec "default" (or "") selects DefaultConfig.
func ParseConfig(spec string) (Config, error) {
	cfg := DefaultConfig()
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "default" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Config{}, fmt.Errorf("optrace: bad spec element %q (want key=value)", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "rate":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return Config{}, fmt.Errorf("optrace: bad rate %q (want positive integer)", val)
			}
			cfg.Rate = n
		case "slow":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return Config{}, fmt.Errorf("optrace: bad slow threshold %q (want positive duration)", val)
			}
			cfg.SlowNS = uint64(d)
		case "cap":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return Config{}, fmt.Errorf("optrace: bad cap %q (want positive integer)", val)
			}
			cfg.Capacity = n
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("optrace: bad seed %q (want integer)", val)
			}
			cfg.Seed = n
		default:
			return Config{}, fmt.Errorf("optrace: unknown spec key %q", key)
		}
	}
	return cfg, nil
}

// String renders the config in canonical spec form, parseable by
// ParseConfig: ParseConfig(c.String()) round-trips any normalized config.
func (c Config) String() string {
	c = c.normalized()
	return fmt.Sprintf("rate=%d,slow=%s,cap=%d,seed=%d",
		c.Rate, time.Duration(c.SlowNS), c.Capacity, c.Seed)
}
