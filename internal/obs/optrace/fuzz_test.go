package optrace

import "testing"

// FuzzParseOptrace drives both user-facing parsers (trace IDs from
// /debug/optrace query strings, -optrace flag specs) with arbitrary input:
// no panics, and every accepted value must round-trip through its canonical
// formatter.
func FuzzParseOptrace(f *testing.F) {
	f.Add("0xdeadbeef")
	f.Add("12345")
	f.Add("rate=8,slow=5ms,cap=64,seed=42")
	f.Add("default")
	f.Add("rate=1")
	f.Add("slow=20ms")
	f.Fuzz(func(t *testing.T, s string) {
		if id, err := ParseTraceID(s); err == nil {
			if id == 0 {
				t.Fatalf("ParseTraceID(%q) accepted the reserved zero id", s)
			}
			rt, err := ParseTraceID(FormatTraceID(id))
			if err != nil || rt != id {
				t.Fatalf("trace id %q -> %#x did not round trip (got %#x, %v)", s, id, rt, err)
			}
		}
		if cfg, err := ParseConfig(s); err == nil {
			if cfg.Rate <= 0 || cfg.Capacity <= 0 || cfg.SlowNS == 0 {
				t.Fatalf("ParseConfig(%q) accepted a non-positive field: %+v", s, cfg)
			}
			rt, err := ParseConfig(cfg.String())
			if err != nil || rt != cfg {
				t.Fatalf("config %q -> %+v did not round trip (got %+v, %v)", s, cfg, rt, err)
			}
		}
	})
}
