// Package optrace records request-scoped span trees on the modeled clock:
// each sampled read/write op gets a deterministic trace ID and a tree of
// stage spans (base CPU, allocator pick, CP cost attribution, device-busy
// leaves) whose durations reconcile exactly with the per-volume latency
// histograms — the "why was this op slow" companion to the SLO engine's
// "that it was slow".
//
// Sampling is deterministic and worker-count invariant: every op of a kind
// draws a monotonic per-volume sequence number, the trace ID is a pure
// splitmix64-style hash of (seed, space, kind, seq), and an op is recorded
// either because the rate sampler selected its sequence number (1-in-Rate)
// or because its latency crossed the slow threshold (the "always sample the
// top histogram buckets" rule). Traces land in bounded per-volume rings
// with oldest-first eviction, so the surviving tail is a pure function of
// the workload at any worker width.
//
// Like the rest of obs, nil *Recorder and nil *Ring are valid no-op
// receivers: a disabled tap pays one nil check.
package optrace

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"waflfs/internal/obs"
)

// Stage indexes the latency-attribution stages. The per-volume accumulated
// nanoseconds of every stage sum exactly to the volume's lat_ns histogram
// total — the reconciliation the optrace.attr_coverage artifact gate pins.
type Stage int

const (
	// StageBase is the per-op WAFL code-path base CPU charge.
	StageBase Stage = iota
	// StageDevice is device time: read I/O for reads, the op's share of the
	// CP's flush device time for writes.
	StageDevice
	// StageMetafile is the write share of bitmap-metafile page writeback CPU.
	StageMetafile
	// StageScan is the write share of virtual-allocation cursor sweep CPU.
	StageScan
	// StageCache is the write share of AA-cache maintenance CPU.
	StageCache
	// NumStages bounds per-stage accumulator arrays.
	NumStages
)

func (s Stage) String() string {
	switch s {
	case StageBase:
		return "base_cpu"
	case StageDevice:
		return "device"
	case StageMetafile:
		return "metafile"
	case StageScan:
		return "scan"
	case StageCache:
		return "cache"
	}
	return "unknown"
}

// Stages returns every Stage in fixed order.
func Stages() []Stage {
	return []Stage{StageBase, StageDevice, StageMetafile, StageScan, StageCache}
}

// Kind labels an op's direction.
type Kind int

const (
	KindRead Kind = iota
	KindWrite
	numKinds
)

func (k Kind) String() string {
	if k == KindWrite {
		return "write"
	}
	return "read"
}

// Span is one node of a trace's span tree. Zero-duration spans are
// informational annotations (pick provenance, stall counts): they carry no
// attributed time and never win the critical path.
type Span struct {
	Name     string `json:"name"`
	DurNS    uint64 `json:"dur_ns"`
	Detail   string `json:"detail,omitempty"`
	Children []Span `json:"children,omitempty"`
}

// Trace is one sampled op: identity, modeled timing, and the span tree.
type Trace struct {
	// ID is the deterministic nonzero trace ID (see TraceID).
	ID uint64 `json:"id"`
	// Space names the owning volume ring, matching the pick-provenance and
	// fragscan stream names: "<arm>.vol.<name>".
	Space string `json:"space"`
	Kind  string `json:"kind"`
	// Seq is the per-(space, kind) op ordinal, starting at 1.
	Seq uint64 `json:"seq"`
	// CP is the consistency point the op belongs to: the CP that committed a
	// write batch, or the newest committed CP at read time.
	CP uint64 `json:"cp"`
	// AtNS is the modeled clock (cumulative device busy + CPU) at record.
	AtNS int64 `json:"at_ns"`
	// LatNS is the op's modeled latency — the value observed into the
	// volume's lat_ns histogram.
	LatNS uint64 `json:"lat_ns"`
	// Blocks is the number of blocks sharing this latency (write traces
	// stand for a volume's whole CP commit batch); 0 for reads.
	Blocks uint64 `json:"blocks,omitempty"`
	// Slow marks traces recorded by the slow gate rather than (only) the
	// rate sampler.
	Slow  bool   `json:"slow,omitempty"`
	Spans []Span `json:"spans"`
}

// CriticalPath walks the span tree root-to-leaf, descending into the
// largest-duration child at every level (first wins ties; zero-duration
// annotation spans never win). The returned chain is the op's dominant
// cost path — e.g. op → device → rg1.
func (t *Trace) CriticalPath() []Span {
	var path []Span
	nodes := t.Spans
	for len(nodes) > 0 {
		best := -1
		for i := range nodes {
			if nodes[i].DurNS > 0 && (best < 0 || nodes[i].DurNS > nodes[best].DurNS) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		path = append(path, nodes[best])
		nodes = nodes[best].Children
	}
	return path
}

// Exemplar references one representative recorded trace for a histogram
// bucket: the newest recorded trace whose latency landed in the bucket.
type Exemplar struct {
	// LeNS is the bucket's upper bound in nanoseconds; 0 marks the overflow
	// (+inf) bucket.
	LeNS  uint64 `json:"le_ns,omitempty"`
	ID    uint64 `json:"id"`
	LatNS uint64 `json:"lat_ns"`
	CP    uint64 `json:"cp"`
}

// Config parameterizes a Recorder.
type Config struct {
	// Rate samples 1 op in Rate per (volume, kind) sequence; ≤0 selects 16.
	Rate int
	// SlowNS always-samples ops at or above this modeled latency, whatever
	// the rate sampler said; ≤0 selects 20ms — the default SLO latency
	// threshold, which lands in the top decades of obs.LatencyBuckets.
	SlowNS uint64
	// Capacity is the per-volume trace-ring bound; ≤0 selects 256.
	Capacity int
	// Seed folds into every trace ID so distinct runs produce distinct IDs.
	Seed int64
}

// DefaultConfig returns the stock sampling parameters.
func DefaultConfig() Config {
	return Config{Rate: 16, SlowNS: 20_000_000, Capacity: 256}
}

func (c Config) normalized() Config {
	d := DefaultConfig()
	if c.Rate <= 0 {
		c.Rate = d.Rate
	}
	if c.SlowNS == 0 {
		c.SlowNS = d.SlowNS
	}
	if c.Capacity <= 0 {
		c.Capacity = d.Capacity
	}
	return c
}

// splitmix64 is the SplitMix64 finalizer — a cheap, high-quality bijection.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// TraceID returns the deterministic nonzero trace ID of op seq of the given
// kind in the named space under the given seed — a pure function, so any
// party can recompute an op's ID without the recorder.
func TraceID(seed int64, space string, kind Kind, seq uint64) uint64 {
	id := splitmix64(splitmix64(uint64(seed)) ^ fnv64(space) ^ uint64(kind)<<56 ^ seq)
	if id == 0 {
		id = 1
	}
	return id
}

// Recorder hands out one bounded trace Ring per volume space.
type Recorder struct {
	mu    sync.Mutex
	cfg   Config
	rings map[string]*Ring
}

// NewRecorder creates an empty recorder; zero Config fields select defaults.
func NewRecorder(cfg Config) *Recorder {
	return &Recorder{cfg: cfg.normalized(), rings: make(map[string]*Ring)}
}

// Config returns the normalized sampling parameters.
func (r *Recorder) Config() Config {
	if r == nil {
		return Config{}
	}
	return r.cfg
}

// Space returns the named space's ring, creating it on first use. A nil
// recorder returns a nil ring (whose methods are no-ops).
func (r *Recorder) Space(name string) *Ring {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.rings[name]
	if g == nil {
		g = &Ring{
			space: name, rate: uint64(r.cfg.Rate), slowNS: r.cfg.SlowNS,
			seed:      r.cfg.Seed,
			buf:       make([]Trace, 0, r.cfg.Capacity),
			exemplars: make([]Exemplar, len(obs.LatencyBuckets)+1),
		}
		r.rings[name] = g
	}
	return g
}

// Spaces returns every space name with a ring, sorted.
func (r *Recorder) Spaces() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.rings))
	for n := range r.rings {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Traces returns the named space's surviving traces, oldest first.
func (r *Recorder) Traces(space string) []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	g := r.rings[space]
	r.mu.Unlock()
	return g.Traces()
}

// Find returns the surviving trace with the given ID, if any.
func (r *Recorder) Find(id uint64) (Trace, bool) {
	for _, sp := range r.Spaces() {
		for _, t := range r.Traces(sp) {
			if t.ID == id {
				return t, true
			}
		}
	}
	return Trace{}, false
}

// TotalSampled sums recorded traces over all rings (dropped included).
func (r *Recorder) TotalSampled() uint64 {
	var n uint64
	for _, sp := range r.Spaces() {
		n += r.Space(sp).Sampled()
	}
	return n
}

// TotalSlowSampled sums slow-gate recordings over all rings.
func (r *Recorder) TotalSlowSampled() uint64 {
	var n uint64
	for _, sp := range r.Spaces() {
		n += r.Space(sp).SlowSampled()
	}
	return n
}

// TotalDropped sums ring evictions over all rings.
func (r *Recorder) TotalDropped() uint64 {
	var n uint64
	for _, sp := range r.Spaces() {
		n += r.Space(sp).Dropped()
	}
	return n
}

// Exemplar returns the representative trace of the named space's worst
// populated latency bucket — the op the SLO transition log links to. The
// result is a pure function of the recorded stream, so it is identical at
// any worker width.
func (r *Recorder) Exemplar(space string) (id, latNS uint64, ok bool) {
	if r == nil {
		return 0, 0, false
	}
	r.mu.Lock()
	g := r.rings[space]
	r.mu.Unlock()
	if g == nil {
		return 0, 0, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := len(g.exemplars) - 1; i >= 0; i-- {
		if ex := g.exemplars[i]; ex.ID != 0 {
			return ex.ID, ex.LatNS, true
		}
	}
	return 0, 0, false
}

// Filter selects traces for WriteJSON. The zero value selects everything.
type Filter struct {
	// Space keeps only spaces whose name contains this substring.
	Space string
	// MinLatNS keeps only traces at or above this latency.
	MinLatNS uint64
	// ID keeps only the trace with this exact ID (0 = all).
	ID uint64
	// Limit keeps only the newest N matching traces per space (≤0 = all).
	Limit int
}

func (f Filter) match(t *Trace) bool {
	if f.MinLatNS > 0 && t.LatNS < f.MinLatNS {
		return false
	}
	if f.ID != 0 && t.ID != f.ID {
		return false
	}
	return true
}

// spaceDump is one ring in the JSON document.
type spaceDump struct {
	Space       string     `json:"space"`
	Sampled     uint64     `json:"sampled"`
	SlowSampled uint64     `json:"slow_sampled"`
	Dropped     uint64     `json:"dropped"`
	Exemplars   []Exemplar `json:"exemplars"`
	Traces      []Trace    `json:"traces"`
}

// WriteJSON writes the matching rings as one deterministic JSON document:
// {"sampled":N,"slow_sampled":N,"dropped":N,"spaces":[...]}, spaces sorted,
// traces oldest first.
func (r *Recorder) WriteJSON(w io.Writer, f Filter) error {
	doc := struct {
		Sampled     uint64      `json:"sampled"`
		SlowSampled uint64      `json:"slow_sampled"`
		Dropped     uint64      `json:"dropped"`
		Spaces      []spaceDump `json:"spaces"`
	}{Spaces: []spaceDump{}}
	for _, sp := range r.Spaces() {
		if f.Space != "" && !strings.Contains(sp, f.Space) {
			continue
		}
		g := r.Space(sp)
		d := spaceDump{
			Space:       sp,
			Sampled:     g.Sampled(),
			SlowSampled: g.SlowSampled(),
			Dropped:     g.Dropped(),
			Exemplars:   g.Exemplars(),
			Traces:      []Trace{},
		}
		for _, t := range g.Traces() {
			t := t
			if f.match(&t) {
				d.Traces = append(d.Traces, t)
			}
		}
		if f.Limit > 0 && len(d.Traces) > f.Limit {
			d.Traces = d.Traces[len(d.Traces)-f.Limit:]
		}
		doc.Spaces = append(doc.Spaces, d)
		doc.Sampled += d.Sampled
		doc.SlowSampled += d.SlowSampled
		doc.Dropped += d.Dropped
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// CollapsedEvents renders every surviving trace's critical path as one
// synthetic timed span for obs.WriteCollapsed: the stack is
// "<space>;op.<kind>;<path frames>" and the value is the op's modeled
// latency, so a flamegraph shows where slow ops' nanoseconds go, split by
// volume, direction, and dominant stage.
func (r *Recorder) CollapsedEvents() []obs.Event {
	var evs []obs.Event
	for _, sp := range r.Spaces() {
		for _, t := range r.Traces(sp) {
			frames := make([]string, 0, 4)
			for _, s := range t.CriticalPath() {
				frames = append(frames, s.Name)
			}
			if len(frames) == 0 {
				continue
			}
			evs = append(evs, obs.Event{
				Sys:   t.Space,
				CP:    t.CP,
				Phase: "op." + t.Kind,
				Name:  strings.Join(frames, ";"),
				Dur:   time.Duration(t.LatNS),
			})
		}
	}
	return evs
}

// Ring is one volume's bounded trace history plus its sampling state.
type Ring struct {
	mu     sync.Mutex
	space  string
	rate   uint64
	slowNS uint64
	seed   int64

	buf  []Trace // cap fixed at Recorder capacity
	head int     // index of the oldest trace once full

	seqs        [numKinds]uint64
	sampled     uint64
	slowSampled uint64
	dropped     uint64
	exemplars   []Exemplar // len(obs.LatencyBuckets)+1, indexed by bucket
}

// Begin draws the next op sequence number for the kind and returns the op's
// deterministic trace ID plus whether the rate sampler selected it. Call
// exactly once per op in the op's serial order (ops within a volume are
// serial at any worker width). Nil-safe: returns (0, 0, false).
func (g *Ring) Begin(kind Kind) (id, seq uint64, sampled bool) {
	if g == nil {
		return 0, 0, false
	}
	g.mu.Lock()
	g.seqs[kind]++
	seq = g.seqs[kind]
	g.mu.Unlock()
	return TraceID(g.seed, g.space, kind, seq), seq, seq%g.rate == 0
}

// Decide reports whether an op with the given rate-sampling decision and
// final latency should be recorded, and whether the slow gate (rather than
// the rate sampler alone) fired. Nil-safe: returns (false, false). Callers
// use it to skip span-tree construction for unrecorded ops.
func (g *Ring) Decide(sampled bool, latNS uint64) (record, slow bool) {
	if g == nil {
		return false, false
	}
	slow = latNS >= g.slowNS
	return sampled || slow, slow
}

// Add records one trace (its Slow field should carry Decide's slow result).
// The ring evicts oldest-first at capacity; exemplars index the trace by
// its latency bucket.
func (g *Ring) Add(t Trace) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if t.Space == "" {
		t.Space = g.space
	}
	g.sampled++
	if t.Slow {
		g.slowSampled++
	}
	b := sort.Search(len(obs.LatencyBuckets), func(i int) bool { return t.LatNS <= obs.LatencyBuckets[i] })
	ex := Exemplar{ID: t.ID, LatNS: t.LatNS, CP: t.CP}
	if b < len(obs.LatencyBuckets) {
		ex.LeNS = obs.LatencyBuckets[b]
	}
	g.exemplars[b] = ex
	if len(g.buf) < cap(g.buf) {
		g.buf = append(g.buf, t)
	} else {
		g.buf[g.head] = t
		g.head = (g.head + 1) % len(g.buf)
		g.dropped++
	}
	g.mu.Unlock()
}

// Traces returns the surviving traces, oldest first.
func (g *Ring) Traces() []Trace {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.buf) == 0 {
		return nil
	}
	out := make([]Trace, 0, len(g.buf))
	out = append(out, g.buf[g.head:]...)
	out = append(out, g.buf[:g.head]...)
	return out
}

// Exemplars returns the populated bucket exemplars, ascending by bucket.
func (g *Ring) Exemplars() []Exemplar {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := []Exemplar{}
	for _, ex := range g.exemplars {
		if ex.ID != 0 {
			out = append(out, ex)
		}
	}
	return out
}

// Sampled returns the total traces ever recorded (dropped included).
func (g *Ring) Sampled() uint64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sampled
}

// SlowSampled returns how many recordings the slow gate fired for.
func (g *Ring) SlowSampled() uint64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.slowSampled
}

// Dropped returns how many old traces the ring overwrote.
func (g *Ring) Dropped() uint64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.dropped
}
