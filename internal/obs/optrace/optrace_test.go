package optrace

import (
	"bytes"
	"strings"
	"testing"

	"waflfs/internal/obs"
)

func TestTraceIDDeterministicAndNonzero(t *testing.T) {
	a := TraceID(11, "arm.vol.va", KindWrite, 7)
	b := TraceID(11, "arm.vol.va", KindWrite, 7)
	if a != b {
		t.Fatalf("trace id not deterministic: %#x vs %#x", a, b)
	}
	if a == 0 {
		t.Fatalf("trace id must be nonzero")
	}
	if TraceID(11, "arm.vol.vb", KindWrite, 7) == a {
		t.Fatalf("distinct spaces must yield distinct ids")
	}
	if TraceID(11, "arm.vol.va", KindRead, 7) == a {
		t.Fatalf("distinct kinds must yield distinct ids")
	}
	if TraceID(12, "arm.vol.va", KindWrite, 7) == a {
		t.Fatalf("distinct seeds must yield distinct ids")
	}
}

func TestRingSamplingAndEviction(t *testing.T) {
	r := NewRecorder(Config{Rate: 4, SlowNS: 1000, Capacity: 3, Seed: 1})
	g := r.Space("s.vol.v")
	var recorded []uint64
	for i := 0; i < 20; i++ {
		id, seq, sampled := g.Begin(KindWrite)
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
		if sampled != (seq%4 == 0) {
			t.Fatalf("seq %d: sampled = %v", seq, sampled)
		}
		lat := uint64(100) // below slow threshold
		rec, slow := g.Decide(sampled, lat)
		if slow {
			t.Fatalf("seq %d: unexpectedly slow", seq)
		}
		if rec != sampled {
			t.Fatalf("seq %d: record = %v, want %v", seq, rec, sampled)
		}
		if rec {
			g.Add(Trace{ID: id, Space: "s.vol.v", Kind: "write", Seq: seq, LatNS: lat})
			recorded = append(recorded, seq)
		}
	}
	if g.Sampled() != 5 { // seqs 4,8,12,16,20
		t.Fatalf("sampled = %d, want 5", g.Sampled())
	}
	if g.Dropped() != 2 { // capacity 3
		t.Fatalf("dropped = %d, want 2", g.Dropped())
	}
	got := g.Traces()
	if len(got) != 3 {
		t.Fatalf("surviving traces = %d, want 3", len(got))
	}
	// Oldest-first eviction keeps the newest 3: seqs 12, 16, 20.
	for i, want := range recorded[len(recorded)-3:] {
		if got[i].Seq != want {
			t.Fatalf("trace[%d].Seq = %d, want %d", i, got[i].Seq, want)
		}
	}
}

func TestSlowGateOverridesRate(t *testing.T) {
	r := NewRecorder(Config{Rate: 1000, SlowNS: 5000, Capacity: 8, Seed: 1})
	g := r.Space("s.vol.v")
	_, _, sampled := g.Begin(KindRead)
	if sampled {
		t.Fatalf("seq 1 should not be rate-sampled at rate 1000")
	}
	rec, slow := g.Decide(sampled, 5000)
	if !rec || !slow {
		t.Fatalf("latency at threshold must record via slow gate (rec=%v slow=%v)", rec, slow)
	}
	rec, slow = g.Decide(sampled, 4999)
	if rec || slow {
		t.Fatalf("latency below threshold must not record (rec=%v slow=%v)", rec, slow)
	}
}

func TestExemplarTracksWorstBucket(t *testing.T) {
	r := NewRecorder(Config{Rate: 1, Capacity: 8, Seed: 3})
	g := r.Space("s.vol.v")
	add := func(id, lat uint64) {
		g.Add(Trace{ID: id, Space: "s.vol.v", Kind: "write", LatNS: lat})
	}
	add(10, 2_000)
	add(11, 40_000_000) // slower bucket
	add(12, 3_000)      // faster again: worst bucket keeps id 11
	id, lat, ok := r.Exemplar("s.vol.v")
	if !ok || id != 11 || lat != 40_000_000 {
		t.Fatalf("Exemplar = (%d, %d, %v), want (11, 40000000, true)", id, lat, ok)
	}
	if _, _, ok := r.Exemplar("s.vol.missing"); ok {
		t.Fatalf("missing space must report no exemplar")
	}
	exs := g.Exemplars()
	if len(exs) != 3 {
		t.Fatalf("exemplars = %d, want 3 populated buckets", len(exs))
	}
	for i := 1; i < len(exs); i++ {
		if exs[i-1].LeNS >= exs[i].LeNS && exs[i].LeNS != 0 {
			t.Fatalf("exemplars not ascending by bucket: %+v", exs)
		}
	}
}

func TestCriticalPathDescendsMaxChild(t *testing.T) {
	tr := Trace{Spans: []Span{
		{Name: "base_cpu", DurNS: 10},
		{Name: "alloc", DurNS: 0, Detail: "annotation"},
		{Name: "device", DurNS: 90, Children: []Span{
			{Name: "rg0", DurNS: 30},
			{Name: "rg1", DurNS: 60},
		}},
	}}
	path := tr.CriticalPath()
	want := []string{"device", "rg1"}
	if len(path) != len(want) {
		t.Fatalf("critical path len = %d, want %d (%+v)", len(path), len(want), path)
	}
	for i, n := range want {
		if path[i].Name != n {
			t.Fatalf("path[%d] = %q, want %q", i, path[i].Name, n)
		}
	}
}

func TestWriteJSONFiltersAndDeterminism(t *testing.T) {
	mk := func() *Recorder {
		r := NewRecorder(Config{Rate: 1, Capacity: 8, Seed: 5})
		for _, sp := range []string{"s.vol.vb", "s.vol.va"} {
			g := r.Space(sp)
			g.Add(Trace{ID: fnv64(sp) | 1, Space: sp, Kind: "write", Seq: 1, LatNS: 1_000_000,
				Spans: []Span{{Name: "device", DurNS: 1_000_000}}})
			g.Add(Trace{ID: fnv64(sp) | 2, Space: sp, Kind: "read", Seq: 1, LatNS: 50_000_000, Slow: true,
				Spans: []Span{{Name: "device", DurNS: 50_000_000}}})
		}
		return r
	}
	var a, b bytes.Buffer
	if err := mk().WriteJSON(&a, Filter{}); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteJSON(&b, Filter{}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("WriteJSON not deterministic")
	}
	if !strings.Contains(a.String(), `"spaces"`) || strings.Index(a.String(), "s.vol.va") > strings.Index(a.String(), "s.vol.vb") {
		t.Fatalf("spaces must be sorted:\n%s", a.String())
	}

	var f bytes.Buffer
	if err := mk().WriteJSON(&f, Filter{Space: "va", MinLatNS: 10_000_000}); err != nil {
		t.Fatal(err)
	}
	out := f.String()
	if strings.Contains(out, "s.vol.vb") {
		t.Fatalf("space filter leaked vb:\n%s", out)
	}
	if strings.Contains(out, `"kind": "write"`) {
		t.Fatalf("min-latency filter kept the fast trace:\n%s", out)
	}
	if !strings.Contains(out, `"kind": "read"`) {
		t.Fatalf("min-latency filter dropped the slow trace:\n%s", out)
	}
}

func TestCollapsedEvents(t *testing.T) {
	r := NewRecorder(Config{Rate: 1, Capacity: 8, Seed: 5})
	g := r.Space("s.vol.va")
	g.Add(Trace{ID: 9, Space: "s.vol.va", Kind: "write", CP: 3, LatNS: 500,
		Spans: []Span{
			{Name: "base_cpu", DurNS: 100},
			{Name: "device", DurNS: 400, Children: []Span{{Name: "rg0", DurNS: 400}}},
		}})
	evs := r.CollapsedEvents()
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1", len(evs))
	}
	e := evs[0]
	if e.Sys != "s.vol.va" || e.Phase != "op.write" || e.Name != "device;rg0" || int64(e.Dur) != 500 || e.CP != 3 {
		t.Fatalf("unexpected collapsed event: %+v", e)
	}
	var buf bytes.Buffer
	if n, err := obs.WriteCollapsed(&buf, evs); err != nil || n == 0 {
		t.Fatalf("WriteCollapsed: n=%d err=%v", n, err)
	}
	if !strings.Contains(buf.String(), "s.vol.va;op.write;device;rg0 500") {
		t.Fatalf("collapsed stack missing:\n%s", buf.String())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	var g *Ring
	if g := r.Space("x"); g != nil {
		t.Fatalf("nil recorder must return nil ring")
	}
	if id, seq, sampled := g.Begin(KindWrite); id != 0 || seq != 0 || sampled {
		t.Fatalf("nil ring Begin must be a no-op")
	}
	if rec, slow := g.Decide(true, 1); rec || slow {
		t.Fatalf("nil ring Decide must be a no-op")
	}
	g.Add(Trace{})
	if g.Traces() != nil || g.Sampled() != 0 {
		t.Fatalf("nil ring accessors must be zero")
	}
	if r.Spaces() != nil || r.TotalSampled() != 0 {
		t.Fatalf("nil recorder accessors must be zero")
	}
	if _, _, ok := r.Exemplar("x"); ok {
		t.Fatalf("nil recorder must report no exemplar")
	}
}

func TestParseTraceIDRoundTrip(t *testing.T) {
	for _, id := range []uint64{1, 0xdeadbeef, ^uint64(0)} {
		got, err := ParseTraceID(FormatTraceID(id))
		if err != nil || got != id {
			t.Fatalf("round trip %#x: got %#x err %v", id, got, err)
		}
	}
	if got, err := ParseTraceID("12345"); err != nil || got != 12345 {
		t.Fatalf("decimal parse: got %d err %v", got, err)
	}
	for _, bad := range []string{"", "0", "0x0", "zz", "0xzz", "-3", "1.5"} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Fatalf("ParseTraceID(%q) should fail", bad)
		}
	}
}

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig("rate=8,slow=5ms,cap=64,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Rate: 8, SlowNS: 5_000_000, Capacity: 64, Seed: 42}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
	if def, err := ParseConfig("default"); err != nil || def != DefaultConfig() {
		t.Fatalf("default spec: %+v err %v", def, err)
	}
	if rt, err := ParseConfig(cfg.String()); err != nil || rt != cfg {
		t.Fatalf("String round trip: %+v err %v", rt, err)
	}
	for _, bad := range []string{"rate=0", "rate=x", "slow=-1s", "slow=fast", "cap=0", "seed=x", "bogus=1", "rate"} {
		if _, err := ParseConfig(bad); err == nil {
			t.Fatalf("ParseConfig(%q) should fail", bad)
		}
	}
}
