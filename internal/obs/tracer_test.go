package obs

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	st := tr.Sys("x")
	st.BeginCP()
	st.Advance(time.Second)
	st.Emit("cp.flush", 0, "group_flush", time.Millisecond, 1)
	if st.Clock() != 0 || tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must be a no-op")
	}
}

func TestTracerCanonicalOrder(t *testing.T) {
	tr := NewTracer()
	st := tr.Sys("a")
	st.BeginCP()
	// Emit shards out of order, as a parallel pool might.
	st.Emit("cp.flush", 2, "group_flush", 30, 0)
	st.Emit("cp.flush", 0, "group_flush", 10, 0)
	st.Emit("cp.flush", 0, "group_flush", 11, 0) // second event on shard 0
	st.Emit("cp.flush", 1, "group_flush", 20, 0)
	st.Advance(60)
	st.BeginCP()
	st.Emit("cp.alloc", 0, "vol", 0, 5)

	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	// Canonical: cp1 shard0 seq0, shard0 seq1, shard1, shard2, then cp2.
	wantDur := []time.Duration{10, 11, 20, 30, 0}
	for i, ev := range evs {
		if ev.Dur != wantDur[i] {
			t.Fatalf("event %d dur = %d, want %d (order wrong: %+v)", i, ev.Dur, wantDur[i], evs)
		}
	}
	if evs[4].CP != 2 || evs[4].At != 60 {
		t.Fatalf("cp2 event = %+v, want CP=2 At=60", evs[4])
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("per-shard seq = %d,%d, want 0,1", evs[0].Seq, evs[1].Seq)
	}
}

// TestTracerParallelDeterminism emits the same per-shard event sequences
// from concurrent goroutines twice and checks the canonical orders match —
// the property CP flush shards rely on.
func TestTracerParallelDeterminism(t *testing.T) {
	run := func() []Event {
		tr := NewTracer()
		st := tr.Sys("sys")
		st.BeginCP()
		var wg sync.WaitGroup
		for shard := 0; shard < 8; shard++ {
			wg.Add(1)
			go func(shard int) {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					st.Emit("cp.fold", shard, "update", 0, int64(shard*10+i))
				}
			}(shard)
		}
		wg.Wait()
		return tr.Events()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("canonical event order differs between identical concurrent runs")
	}
	if len(a) != 40 {
		t.Fatalf("got %d events, want 40", len(a))
	}
}
