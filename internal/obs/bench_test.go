package obs

import (
	"testing"
)

// BenchmarkCounterHotPath measures the two states the instrumentation sites
// see: observability off (nil receiver — must be ~free, < 10 ns/op) and on
// (atomic add, < 100 ns/op). TestCounterHotPathBudget enforces the targets.
func BenchmarkCounterHotPath(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var c *Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		c := NewRegistry().Counter("bench.ops")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
		if c.Value() == 0 {
			b.Fatal("counter did not count")
		}
	})
	b.Run("tracer-disabled", func(b *testing.B) {
		var st *SysTracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st.Emit("alloc.phys", 0, "cache_hit", 0, 1)
		}
	})
	b.Run("histogram-enabled", func(b *testing.B) {
		h := NewHistogram(DurationBuckets)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(uint64(i) & 0xfffff)
		}
	})
}

// TestCounterHotPathBudget asserts the ISSUE's ns/op targets using the
// benchmark runner, so a regression fails tier-1 rather than only showing up
// in benchmark logs. Budgets are generous vs. typical results (sub-ns
// disabled, a few ns enabled) to stay robust on slow CI hosts.
func TestCounterHotPathBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion; skipped in -short")
	}
	disabled := testing.Benchmark(func(b *testing.B) {
		var c *Counter
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	if ns := perOp(disabled); ns >= 10 {
		t.Errorf("disabled counter hot path = %v ns/op, want < 10", ns)
	}
	enabled := testing.Benchmark(func(b *testing.B) {
		c := NewRegistry().Counter("bench.ops")
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	if ns := perOp(enabled); ns >= 100 {
		t.Errorf("enabled counter hot path = %v ns/op, want < 100", ns)
	}
}

func perOp(r testing.BenchmarkResult) float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}
