package obs

import (
	"bytes"
	"reflect"
	"testing"
)

// scriptedRegistry builds the tiny scripted run used by the golden tests.
func scriptedRegistry() *Registry {
	r := NewRegistry()
	r.Counter("wafl.ops").Add(120)
	r.Counter("wafl.cp.count").Add(3)
	r.Gauge("rg0.heap.size").Set(14)
	r.VolatileCounter("wafl.cp.flush_wall_ns").Add(5000)
	h := r.Histogram("rg0.dev0.busy_ns", []uint64{1000, 10000})
	h.Observe(500)
	h.Observe(500)
	h.Observe(20000)
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, scriptedRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE rg0_dev0_busy_ns histogram
rg0_dev0_busy_ns_bucket{le="1000"} 2
rg0_dev0_busy_ns_bucket{le="10000"} 2
rg0_dev0_busy_ns_bucket{le="+Inf"} 3
rg0_dev0_busy_ns_sum 21000
rg0_dev0_busy_ns_count 3
# TYPE rg0_heap_size gauge
rg0_heap_size 14
# TYPE wafl_cp_count counter
wafl_cp_count 3
# TYPE wafl_cp_flush_wall_ns counter
wafl_cp_flush_wall_ns 5000
# TYPE wafl_ops counter
wafl_ops 120
`
	if got := buf.String(); got != want {
		t.Fatalf("prometheus output not byte-stable:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	rec := NewCSVRecorder(&buf)
	r := scriptedRegistry()
	// Record in scrambled arm/CP order — concurrent arms interleave
	// arbitrarily — and expect Flush to impose the canonical (sys, cp)
	// order on the byte stream.
	rec.Record("armB", 1, r.Snapshot())
	rec.Record("armA", 1, r.Snapshot())
	r.Counter("wafl.ops").Add(30)
	rec.Record("armA", 2, r.Snapshot())
	if buf.Len() != 0 {
		t.Fatalf("Record must buffer, but %d bytes reached the writer", buf.Len())
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `sys,cp,metric,kind,value
armA,1,rg0.dev0.busy_ns.sum,histogram,21000
armA,1,rg0.dev0.busy_ns.count,histogram,3
armA,1,rg0.heap.size,gauge,14
armA,1,wafl.cp.count,counter,3
armA,1,wafl.ops,counter,120
armA,2,rg0.dev0.busy_ns.sum,histogram,21000
armA,2,rg0.dev0.busy_ns.count,histogram,3
armA,2,rg0.heap.size,gauge,14
armA,2,wafl.cp.count,counter,3
armA,2,wafl.ops,counter,150
armB,1,rg0.dev0.busy_ns.sum,histogram,21000
armB,1,rg0.dev0.busy_ns.count,histogram,3
armB,1,rg0.heap.size,gauge,14
armB,1,wafl.cp.count,counter,3
armB,1,wafl.ops,counter,120
`
	if got := buf.String(); got != want {
		t.Fatalf("csv output not byte-stable:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if rec.Rows() != 15 {
		t.Fatalf("rows = %d, want 15", rec.Rows())
	}
	if rec.Err() != nil {
		t.Fatalf("unexpected recorder error: %v", rec.Err())
	}
}

func TestCSVIncludesVolatileWhenAsked(t *testing.T) {
	var buf bytes.Buffer
	rec := NewCSVRecorder(&buf).IncludeVolatile()
	rec.Record("a", 1, scriptedRegistry().Snapshot())
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("wafl.cp.flush_wall_ns")) {
		t.Fatal("IncludeVolatile must emit volatile metrics")
	}
}

func TestCSVQuoting(t *testing.T) {
	var buf bytes.Buffer
	rec := NewCSVRecorder(&buf)
	r := NewRegistry()
	r.Counter("x").Add(1)
	rec.Record(`arm,"1"`, 1, r.Snapshot())
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "sys,cp,metric,kind,value\n\"arm,\"\"1\"\"\",1,x,counter,1\n"
	if got := buf.String(); got != want {
		t.Fatalf("quoting wrong:\n got %q\nwant %q", got, want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	snap := scriptedRegistry().Snapshot()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "fsinspect", snap); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "fsinspect" {
		t.Fatalf("name = %q", back.Name)
	}
	if !reflect.DeepEqual(back.Snapshot, snap) {
		t.Fatalf("JSON round trip changed the snapshot:\n got %+v\nwant %+v", back.Snapshot, snap)
	}
}
