package tsdb

import (
	"testing"
	"time"

	"waflfs/internal/obs"
)

// monotone fills a counter-like series: value cp*10 at each CP 1..n.
func monotone(s *Store, name string, n uint64) {
	for cp := uint64(1); cp <= n; cp++ {
		s.Observe(name, cp, time.Duration(cp), float64(cp*10))
	}
}

func TestWindowStatsFullResolution(t *testing.T) {
	s := NewStore(Config{Capacity: 16})
	monotone(s, "x", 8)
	w, ok := s.WindowStats("x", 3, 5)
	if !ok {
		t.Fatal("no window")
	}
	if w.Points != 3 || w.CPFirst != 3 || w.CPLast != 5 {
		t.Fatalf("coverage = %d points [%d,%d], want 3 points [3,5]", w.Points, w.CPFirst, w.CPLast)
	}
	if w.Min != 30 || w.Max != 50 || w.Sum != 120 || w.Count != 3 {
		t.Fatalf("stats = min %v max %v sum %v count %d", w.Min, w.Max, w.Sum, w.Count)
	}
	if w.FirstMin != 30 || w.LastMax != 50 {
		t.Fatalf("FirstMin/LastMax = %v/%v, want 30/50", w.FirstMin, w.LastMax)
	}
	if w.AtLast != 5 {
		t.Fatalf("AtLast = %v, want 5", w.AtLast)
	}
}

// A window spanning folded points: capacity 4 over 8 CPs leaves
// [1..4][5..6][7][8]. Querying [2,5] must pull in both folds whole and
// report the widened coverage.
func TestWindowStatsSpansFoldedPoints(t *testing.T) {
	s := NewStore(Config{Capacity: 4})
	monotone(s, "x", 8)
	w, ok := s.WindowStats("x", 2, 5)
	if !ok {
		t.Fatal("no window")
	}
	if w.Points != 2 || w.CPFirst != 1 || w.CPLast != 6 {
		t.Fatalf("coverage = %d points [%d,%d], want 2 points [1,6] (folds included whole)",
			w.Points, w.CPFirst, w.CPLast)
	}
	if w.FirstMin != 10 || w.LastMax != 60 {
		t.Fatalf("FirstMin/LastMax = %v/%v, want 10/60", w.FirstMin, w.LastMax)
	}
	if w.Count != 6 || w.Sum != 10+20+30+40+50+60 {
		t.Fatalf("count/sum = %d/%v", w.Count, w.Sum)
	}
}

// A window that only partially intersects the retained ring: the leading
// edge clamps to the first retained point, the trailing edge past the newest
// CP clamps to the newest.
func TestWindowStatsPartialCoverage(t *testing.T) {
	s := NewStore(Config{Capacity: 4})
	monotone(s, "x", 8) // ring: [1..4][5..6][7][8]
	if _, ok := s.WindowStats("x", 9, 20); ok {
		t.Fatal("window beyond newest CP should be empty")
	}
	w, ok := s.WindowStats("x", 7, 20)
	if !ok || w.Points != 2 || w.CPFirst != 7 || w.CPLast != 8 {
		t.Fatalf("tail clamp = ok %v, %d points [%d,%d]", ok, w.Points, w.CPFirst, w.CPLast)
	}
	w, ok = s.WindowStats("x", 0, 1)
	if !ok || w.Points != 1 || w.CPFirst != 1 || w.CPLast != 4 {
		t.Fatalf("head clamp = ok %v, %d points [%d,%d]", ok, w.Points, w.CPFirst, w.CPLast)
	}
	if _, ok := s.WindowStats("y", 1, 8); ok {
		t.Fatal("unknown series should not return a window")
	}
	if _, ok := s.WindowStats("x", 5, 4); ok {
		t.Fatal("inverted window should be empty")
	}
}

func TestValueAtAndCounterDelta(t *testing.T) {
	s := NewStore(Config{Capacity: 4})
	monotone(s, "x", 8) // ring: [1..4][5..6][7][8]

	cases := []struct {
		cp   uint64
		want float64
	}{
		{0, 0},  // before the series: counters start at zero
		{4, 40}, // fold boundary: exact (Max of [1..4])
		{2, 10}, // inside a fold: conservative start-of-fold value
		{6, 60},
		{7, 70},
		{8, 80},
		{99, 80}, // past the end: newest value
	}
	for _, c := range cases {
		got, ok := s.ValueAt("x", c.cp)
		if !ok || got != c.want {
			t.Errorf("ValueAt(%d) = %v,%v, want %v", c.cp, got, ok, c.want)
		}
	}
	if _, ok := s.ValueAt("y", 1); ok {
		t.Error("ValueAt on unknown series should report !ok")
	}

	// Delta over the whole run is exact regardless of folding.
	if d, ok := s.CounterDelta("x", 0, 8); !ok || d != 80 {
		t.Errorf("CounterDelta(0,8) = %v,%v, want 80", d, ok)
	}
	// Both endpoints on retained boundaries: exact.
	if d, ok := s.CounterDelta("x", 4, 7); !ok || d != 30 {
		t.Errorf("CounterDelta(4,7) = %v,%v, want 30", d, ok)
	}
	// Endpoint inside a fold resolves to the fold's start.
	if d, ok := s.CounterDelta("x", 5, 8); !ok || d != 30 {
		t.Errorf("CounterDelta(5,8) = %v,%v, want 30 (from folds to 50)", d, ok)
	}
}

// Histogram bucket series: with a HistBuckets filter the store keeps one
// cumulative counter series per finite bound, enabling windowed
// threshold-exceed queries by delta.
func TestSampleHistogramBucketSeries(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("lat_ns", []uint64{10, 100, 1000})
	h.Observe(5)
	h.Observe(50)
	h.ObserveN(500, 3)

	s := NewStore(Config{Capacity: 8, HistBuckets: SuffixFilter(".lat_ns")})
	s.Sample("arm", 1, time.Nanosecond, reg.StableSnapshot())
	h.ObserveN(5000, 2) // +Inf bucket
	s.Sample("arm", 2, 2*time.Nanosecond, reg.StableSnapshot())

	wantAt2 := map[string]float64{
		"arm.lat_ns.le_10":   1,
		"arm.lat_ns.le_100":  2,
		"arm.lat_ns.le_1000": 5,
		"arm.lat_ns.count":   7,
	}
	for name, want := range wantAt2 {
		if v, ok := s.ValueAt(name, 2); !ok || v != want {
			t.Errorf("%s at cp2 = %v,%v, want %v", name, v, ok, want)
		}
	}
	// Threshold-exceed over (1,2]: samples above 1000 = count − le_1000.
	cd := func(name string) float64 {
		d, _ := s.CounterDelta(name, 1, 2)
		return d
	}
	if bad := cd("arm.lat_ns.count") - cd("arm.lat_ns.le_1000"); bad != 2 {
		t.Errorf("windowed above-threshold = %v, want 2", bad)
	}

	// Without the filter no bucket series exist.
	s2 := NewStore(Config{Capacity: 8})
	s2.Sample("arm", 1, time.Nanosecond, reg.StableSnapshot())
	if pts := s2.Points("arm.lat_ns.le_10"); pts != nil {
		t.Errorf("unexpected bucket series without filter: %+v", pts)
	}
}
