package tsdb

import (
	"testing"
	"time"

	"waflfs/internal/obs"
)

// monotone fills a counter-like series: value cp*10 at each CP 1..n.
func monotone(s *Store, name string, n uint64) {
	for cp := uint64(1); cp <= n; cp++ {
		s.Observe(name, cp, time.Duration(cp), float64(cp*10))
	}
}

func TestWindowStatsFullResolution(t *testing.T) {
	s := NewStore(Config{Capacity: 16})
	monotone(s, "x", 8)
	w, ok := s.WindowStats("x", 3, 5)
	if !ok {
		t.Fatal("no window")
	}
	if w.Points != 3 || w.CPFirst != 3 || w.CPLast != 5 {
		t.Fatalf("coverage = %d points [%d,%d], want 3 points [3,5]", w.Points, w.CPFirst, w.CPLast)
	}
	if w.Min != 30 || w.Max != 50 || w.Sum != 120 || w.Count != 3 {
		t.Fatalf("stats = min %v max %v sum %v count %d", w.Min, w.Max, w.Sum, w.Count)
	}
	if w.FirstMin != 30 || w.LastMax != 50 {
		t.Fatalf("FirstMin/LastMax = %v/%v, want 30/50", w.FirstMin, w.LastMax)
	}
	if w.AtLast != 5 {
		t.Fatalf("AtLast = %v, want 5", w.AtLast)
	}
}

// A window spanning folded points: capacity 4 over 8 CPs leaves
// [1..4][5..6][7][8]. Querying [2,5] must pull in both folds whole and
// report the widened coverage.
func TestWindowStatsSpansFoldedPoints(t *testing.T) {
	s := NewStore(Config{Capacity: 4})
	monotone(s, "x", 8)
	w, ok := s.WindowStats("x", 2, 5)
	if !ok {
		t.Fatal("no window")
	}
	if w.Points != 2 || w.CPFirst != 1 || w.CPLast != 6 {
		t.Fatalf("coverage = %d points [%d,%d], want 2 points [1,6] (folds included whole)",
			w.Points, w.CPFirst, w.CPLast)
	}
	if w.FirstMin != 10 || w.LastMax != 60 {
		t.Fatalf("FirstMin/LastMax = %v/%v, want 10/60", w.FirstMin, w.LastMax)
	}
	if w.Count != 6 || w.Sum != 10+20+30+40+50+60 {
		t.Fatalf("count/sum = %d/%v", w.Count, w.Sum)
	}
}

// A window that only partially intersects the retained ring: the leading
// edge clamps to the first retained point, the trailing edge past the newest
// CP clamps to the newest.
func TestWindowStatsPartialCoverage(t *testing.T) {
	s := NewStore(Config{Capacity: 4})
	monotone(s, "x", 8) // ring: [1..4][5..6][7][8]
	if _, ok := s.WindowStats("x", 9, 20); ok {
		t.Fatal("window beyond newest CP should be empty")
	}
	w, ok := s.WindowStats("x", 7, 20)
	if !ok || w.Points != 2 || w.CPFirst != 7 || w.CPLast != 8 {
		t.Fatalf("tail clamp = ok %v, %d points [%d,%d]", ok, w.Points, w.CPFirst, w.CPLast)
	}
	w, ok = s.WindowStats("x", 0, 1)
	if !ok || w.Points != 1 || w.CPFirst != 1 || w.CPLast != 4 {
		t.Fatalf("head clamp = ok %v, %d points [%d,%d]", ok, w.Points, w.CPFirst, w.CPLast)
	}
	if _, ok := s.WindowStats("y", 1, 8); ok {
		t.Fatal("unknown series should not return a window")
	}
	if _, ok := s.WindowStats("x", 5, 4); ok {
		t.Fatal("inverted window should be empty")
	}
}

func TestValueAtAndCounterDelta(t *testing.T) {
	s := NewStore(Config{Capacity: 4})
	monotone(s, "x", 8) // ring: [1..4][5..6][7][8]

	cases := []struct {
		cp   uint64
		want float64
	}{
		{0, 0},  // before the series: counters start at zero
		{4, 40}, // fold boundary: exact (Max of [1..4])
		{2, 10}, // inside a fold: conservative start-of-fold value
		{6, 60},
		{7, 70},
		{8, 80},
		{99, 80}, // past the end: newest value
	}
	for _, c := range cases {
		got, ok := s.ValueAt("x", c.cp)
		if !ok || got != c.want {
			t.Errorf("ValueAt(%d) = %v,%v, want %v", c.cp, got, ok, c.want)
		}
	}
	if _, ok := s.ValueAt("y", 1); ok {
		t.Error("ValueAt on unknown series should report !ok")
	}

	// Delta over the whole run is exact regardless of folding.
	if d, ok := s.CounterDelta("x", 0, 8); !ok || d != 80 {
		t.Errorf("CounterDelta(0,8) = %v,%v, want 80", d, ok)
	}
	// Both endpoints on retained boundaries: exact.
	if d, ok := s.CounterDelta("x", 4, 7); !ok || d != 30 {
		t.Errorf("CounterDelta(4,7) = %v,%v, want 30", d, ok)
	}
	// Endpoint inside a fold resolves to the fold's start.
	if d, ok := s.CounterDelta("x", 5, 8); !ok || d != 30 {
		t.Errorf("CounterDelta(5,8) = %v,%v, want 30 (from folds to 50)", d, ok)
	}
}

// Zero-length windows (fromCP == toCP) are legal: at full resolution they
// cover exactly one CP; inside a folded range they widen to the whole fold;
// before the series' first sample they are empty.
func TestWindowStatsZeroLength(t *testing.T) {
	s := NewStore(Config{Capacity: 16})
	monotone(s, "x", 8)
	w, ok := s.WindowStats("x", 5, 5)
	if !ok || w.Points != 1 || w.CPFirst != 5 || w.CPLast != 5 {
		t.Fatalf("full-res [5,5] = ok %v, %d points [%d,%d], want 1 point [5,5]",
			ok, w.Points, w.CPFirst, w.CPLast)
	}
	if w.Sum != 50 || w.Count != 1 || w.Min != 50 || w.Max != 50 {
		t.Fatalf("full-res [5,5] stats = min %v max %v sum %v count %d", w.Min, w.Max, w.Sum, w.Count)
	}

	f := NewStore(Config{Capacity: 4})
	monotone(f, "x", 8) // ring: [1..4][5..6][7][8]
	w, ok = f.WindowStats("x", 2, 2)
	if !ok || w.Points != 1 || w.CPFirst != 1 || w.CPLast != 4 {
		t.Fatalf("folded [2,2] = ok %v, %d points [%d,%d], want the whole [1,4] fold",
			ok, w.Points, w.CPFirst, w.CPLast)
	}

	if _, ok := f.WindowStats("x", 0, 0); ok {
		t.Fatal("[0,0] before the first sample should be empty")
	}
}

// Window edges landing exactly on fold boundaries: a start on a fold's last
// CP pulls that fold in whole (CPLast >= fromCP matches it), while a start
// on the next fold's first CP is exact.
func TestWindowStatsStartOnFoldBoundary(t *testing.T) {
	s := NewStore(Config{Capacity: 4})
	monotone(s, "x", 8) // ring: [1..4][5..6][7][8]

	w, ok := s.WindowStats("x", 4, 7)
	if !ok || w.Points != 3 || w.CPFirst != 1 || w.CPLast != 7 {
		t.Fatalf("[4,7] = ok %v, %d points [%d,%d], want 3 points [1,7] ([1..4] included whole)",
			ok, w.Points, w.CPFirst, w.CPLast)
	}
	if w.Count != 7 || w.Sum != 10+20+30+40+50+60+70 {
		t.Fatalf("[4,7] count/sum = %d/%v", w.Count, w.Sum)
	}

	w, ok = s.WindowStats("x", 5, 7)
	if !ok || w.Points != 2 || w.CPFirst != 5 || w.CPLast != 7 {
		t.Fatalf("[5,7] = ok %v, %d points [%d,%d], want exact 2 points [5,7]",
			ok, w.Points, w.CPFirst, w.CPLast)
	}
	if w.Count != 3 || w.Sum != 50+60+70 {
		t.Fatalf("[5,7] count/sum = %d/%v", w.Count, w.Sum)
	}
}

// CounterDelta across a counter reset: the series drops, the delta clamps
// to zero rather than going negative — a reset reads as "no increase", not
// an error, so burn-rate math never sees negative rates.
func TestCounterDeltaAcrossReset(t *testing.T) {
	s := NewStore(Config{Capacity: 16})
	s.Observe("x", 1, time.Duration(1), 100)
	s.Observe("x", 2, time.Duration(2), 200)
	s.Observe("x", 3, time.Duration(3), 5) // reset: process restarted
	s.Observe("x", 4, time.Duration(4), 30)

	if d, ok := s.CounterDelta("x", 2, 3); !ok || d != 0 {
		t.Errorf("delta across reset = %v,%v, want 0,true (clamped)", d, ok)
	}
	if d, ok := s.CounterDelta("x", 1, 4); !ok || d != 0 {
		t.Errorf("delta spanning reset = %v,%v, want 0,true (30 < 100 clamps)", d, ok)
	}
	// After the reset the series is monotone again; deltas resume.
	if d, ok := s.CounterDelta("x", 3, 4); !ok || d != 25 {
		t.Errorf("post-reset delta = %v,%v, want 25", d, ok)
	}
	// Zero-length delta is always zero.
	if d, ok := s.CounterDelta("x", 2, 2); !ok || d != 0 {
		t.Errorf("zero-length delta = %v,%v, want 0,true", d, ok)
	}
}

// Histogram bucket series: with a HistBuckets filter the store keeps one
// cumulative counter series per finite bound, enabling windowed
// threshold-exceed queries by delta.
func TestSampleHistogramBucketSeries(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("lat_ns", []uint64{10, 100, 1000})
	h.Observe(5)
	h.Observe(50)
	h.ObserveN(500, 3)

	s := NewStore(Config{Capacity: 8, HistBuckets: SuffixFilter(".lat_ns")})
	s.Sample("arm", 1, time.Nanosecond, reg.StableSnapshot())
	h.ObserveN(5000, 2) // +Inf bucket
	s.Sample("arm", 2, 2*time.Nanosecond, reg.StableSnapshot())

	wantAt2 := map[string]float64{
		"arm.lat_ns.le_10":   1,
		"arm.lat_ns.le_100":  2,
		"arm.lat_ns.le_1000": 5,
		"arm.lat_ns.count":   7,
	}
	for name, want := range wantAt2 {
		if v, ok := s.ValueAt(name, 2); !ok || v != want {
			t.Errorf("%s at cp2 = %v,%v, want %v", name, v, ok, want)
		}
	}
	// Threshold-exceed over (1,2]: samples above 1000 = count − le_1000.
	cd := func(name string) float64 {
		d, _ := s.CounterDelta(name, 1, 2)
		return d
	}
	if bad := cd("arm.lat_ns.count") - cd("arm.lat_ns.le_1000"); bad != 2 {
		t.Errorf("windowed above-threshold = %v, want 2", bad)
	}

	// Without the filter no bucket series exist.
	s2 := NewStore(Config{Capacity: 8})
	s2.Sample("arm", 1, time.Nanosecond, reg.StableSnapshot())
	if pts := s2.Points("arm.lat_ns.le_10"); pts != nil {
		t.Errorf("unexpected bucket series without filter: %+v", pts)
	}
}

// The double-wrap regression: after the ring folds twice, old history is
// held in two-deep folded points ([1..8] at capacity 8). A window starting
// exactly on a fold boundary must stay exact — CounterDelta endpoints on
// retained boundaries resolve precisely, endpoints inside a fold resolve
// conservatively to the fold's start, and WindowStats includes folded
// points whole. These exact values are pinned because the SLO burn-rate
// and controller signal reads depend on them.
func TestWindowQueriesAfterDoubleWrap(t *testing.T) {
	s := NewStore(Config{Capacity: 8})
	for cp := uint64(1); cp <= 20; cp++ {
		s.Observe("x", cp, time.Duration(cp)*time.Millisecond, float64(cp))
	}
	// Fold trace at capacity 8: add 9 folds to pairs, add 13 folds again
	// (second wrap), add 17 folds a third time. Final ring:
	//   [1..8] [9..12] [13,14] [15,16] 17 18 19 20
	pts := s.Points("x")
	if len(pts) != 8 {
		t.Fatalf("ring length = %d, want 8", len(pts))
	}
	wantRanges := [][2]uint64{{1, 8}, {9, 12}, {13, 14}, {15, 16}, {17, 17}, {18, 18}, {19, 19}, {20, 20}}
	for i, r := range wantRanges {
		if pts[i].CPFirst != r[0] || pts[i].CPLast != r[1] {
			t.Fatalf("point %d spans [%d,%d], want [%d,%d]", i, pts[i].CPFirst, pts[i].CPLast, r[0], r[1])
		}
	}

	// ValueAt on fold boundaries is exact; inside a fold it returns the
	// fold's starting value (newest exactly-known value at-or-before cp).
	valueAt := []struct {
		cp   uint64
		want float64
	}{{0, 0}, {1, 1}, {7, 1}, {8, 8}, {9, 9}, {10, 9}, {11, 9}, {12, 12}, {13, 13}, {20, 20}}
	for _, c := range valueAt {
		if v, ok := s.ValueAt("x", c.cp); !ok || v != c.want {
			t.Errorf("ValueAt(%d) = %v,%v, want %v", c.cp, v, ok, c.want)
		}
	}

	// CounterDelta with both endpoints on fold boundaries is exact even
	// across two folds; endpoints inside a fold clamp conservatively.
	deltas := []struct {
		from, to uint64
		want     float64
	}{
		{8, 20, 12}, // boundary → live point: exact
		{9, 12, 3},  // fold start (conservative 9) → fold end (exact 12)
		{10, 11, 0}, // both inside one fold: conservative zero
		{1, 8, 7},   // within the deepest fold, boundary to boundary
		{12, 13, 1}, // fold end → next fold start
		{0, 20, 20}, // before first sample → 0 baseline
		{16, 18, 2}, // second-wrap fold boundary into singles
	}
	for _, c := range deltas {
		if d, ok := s.CounterDelta("x", c.from, c.to); !ok || d != c.want {
			t.Errorf("CounterDelta(%d,%d) = %v,%v, want %v", c.from, c.to, d, ok, c.want)
		}
	}

	// Window starting exactly on the second wrap's fold boundary (cp 9).
	w, ok := s.WindowStats("x", 9, 20)
	if !ok || w.Points != 7 || w.CPFirst != 9 || w.CPLast != 20 {
		t.Fatalf("[9,20] = ok %v, %d points [%d,%d], want 7 points [9,20]", ok, w.Points, w.CPFirst, w.CPLast)
	}
	if w.Count != 12 || w.Sum != 174 || w.Min != 9 || w.Max != 20 {
		t.Fatalf("[9,20] count/sum/min/max = %d/%v/%v/%v", w.Count, w.Sum, w.Min, w.Max)
	}
	if w.FirstMin != 9 || w.LastMax != 20 {
		t.Fatalf("[9,20] FirstMin/LastMax = %v/%v, want 9/20", w.FirstMin, w.LastMax)
	}

	// Exactly one folded point, boundary to boundary.
	w, ok = s.WindowStats("x", 9, 12)
	if !ok || w.Points != 1 || w.CPFirst != 9 || w.CPLast != 12 || w.Count != 4 || w.Sum != 42 {
		t.Fatalf("[9,12] = %+v ok=%v, want 1 whole folded point", w, ok)
	}

	// A window reaching into a fold includes it whole: coverage widens.
	w, ok = s.WindowStats("x", 10, 13)
	if !ok || w.Points != 2 || w.CPFirst != 9 || w.CPLast != 14 {
		t.Fatalf("[10,13] = ok %v, %d points [%d,%d], want 2 points [9,14]", ok, w.Points, w.CPFirst, w.CPLast)
	}
	if w.Count != 6 || w.Sum != 69 || w.FirstMin != 9 || w.LastMax != 14 {
		t.Fatalf("[10,13] count/sum/FirstMin/LastMax = %d/%v/%v/%v", w.Count, w.Sum, w.FirstMin, w.LastMax)
	}

	// The deepest (twice-folded) point, addressed exactly.
	w, ok = s.WindowStats("x", 1, 8)
	if !ok || w.Points != 1 || w.CPFirst != 1 || w.CPLast != 8 || w.Count != 8 || w.Sum != 36 {
		t.Fatalf("[1,8] = %+v ok=%v, want the whole twice-folded point", w, ok)
	}

	// Beyond the newest point: no intersection.
	if _, ok := s.WindowStats("x", 21, 30); ok {
		t.Fatal("[21,30] intersected nothing but reported ok")
	}
}
