// Package tsdb is a fixed-memory, deterministic per-CP time-series store
// for the observability layer: one bounded ring of points per metric,
// sampled from the registry's stable snapshot at every consistency-point
// boundary. When a ring fills, adjacent points are pairwise merged
// (min/max/sum/count fold, CP-range union), halving the occupancy — so the
// store's footprint is a fixed bound independent of run length, and older
// history degrades gracefully into coarser aggregates instead of being
// dropped.
//
// Timestamps are the simulation's modeled clock (worker-invariant
// DeviceBusy+CPUTime), never the host clock, and samples are taken from
// stable (volatile-excluded) snapshots only — so two runs of the same
// workload at different worker widths produce byte-identical stores, the
// same determinism contract the CSV recorder keeps.
//
// Like the rest of obs, a nil *Store is a valid no-op receiver: the CP
// boundary pays one nil check when the store is disabled.
package tsdb

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"

	"waflfs/internal/obs"
)

// Config parameterizes a Store.
type Config struct {
	// Capacity is the maximum number of points retained per series (≥1).
	// Once full, adjacent points merge pairwise and recording continues.
	Capacity int
}

// DefaultConfig holds 512 points per series — at one sample per CP that is
// 512 CPs of full resolution, then progressively coarser aggregates.
func DefaultConfig() Config { return Config{Capacity: 512} }

// Point is one ring entry: a single CP sample, or the fold of a contiguous
// CP range after downsampling.
type Point struct {
	// CPFirst..CPLast is the (inclusive) CP-ordinal range folded into this
	// point; equal for a full-resolution sample.
	CPFirst uint64 `json:"cp_first"`
	CPLast  uint64 `json:"cp_last"`
	// At is the modeled-clock timestamp of the newest folded sample.
	At time.Duration `json:"at_ns"`

	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Count uint64  `json:"count"`
}

// Avg returns the mean of the folded samples.
func (p Point) Avg() float64 {
	if p.Count == 0 {
		return 0
	}
	return p.Sum / float64(p.Count)
}

func merge(a, b Point) Point {
	out := Point{
		CPFirst: a.CPFirst,
		CPLast:  b.CPLast,
		At:      b.At,
		Min:     a.Min,
		Max:     a.Max,
		Sum:     a.Sum + b.Sum,
		Count:   a.Count + b.Count,
	}
	if b.Min < out.Min {
		out.Min = b.Min
	}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	return out
}

type series struct {
	pts []Point // len ≤ cap(pts) == Config.Capacity, allocated once
}

// add appends a full-resolution point, downsampling first if the ring is
// at capacity. The backing array never grows past the configured capacity.
func (se *series) add(capacity int, p Point) {
	if len(se.pts) == capacity {
		if capacity == 1 {
			se.pts[0] = merge(se.pts[0], p)
			return
		}
		half := len(se.pts) / 2
		for i := 0; i < half; i++ {
			se.pts[i] = merge(se.pts[2*i], se.pts[2*i+1])
		}
		if len(se.pts)%2 == 1 {
			se.pts[half] = se.pts[len(se.pts)-1]
			half++
		}
		se.pts = se.pts[:half]
	}
	se.pts = append(se.pts, p)
}

// Store holds one bounded ring per series. Safe for concurrent use: the CP
// boundary records while live HTTP endpoints read.
type Store struct {
	mu       sync.Mutex
	capacity int
	series   map[string]*series
}

// NewStore creates an empty store. Capacity ≤ 0 selects the default.
func NewStore(cfg Config) *Store {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultConfig().Capacity
	}
	return &Store{capacity: cfg.Capacity, series: make(map[string]*series)}
}

// Capacity returns the per-series point bound.
func (s *Store) Capacity() int {
	if s == nil {
		return 0
	}
	return s.capacity
}

// Observe records one sample of the named series at the given CP ordinal
// and modeled timestamp. No-op on a nil store.
func (s *Store) Observe(name string, cp uint64, at time.Duration, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.observeLocked(name, cp, at, v)
	s.mu.Unlock()
}

func (s *Store) observeLocked(name string, cp uint64, at time.Duration, v float64) {
	se := s.series[name]
	if se == nil {
		se = &series{pts: make([]Point, 0, s.capacity)}
		s.series[name] = se
	}
	se.add(s.capacity, Point{CPFirst: cp, CPLast: cp, At: at, Min: v, Max: v, Sum: v, Count: 1})
}

// Sample records every non-volatile metric of a registry snapshot under
// "<sys>.<metric>" (histograms split into ".sum" and ".count"). Callers
// pass StableSnapshot so the stored values are worker-invariant. No-op on
// a nil store.
func (s *Store) Sample(sys string, cp uint64, at time.Duration, snap obs.Snapshot) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range snap.Metrics {
		if m.Volatile {
			continue
		}
		name := sys + "." + m.Name
		switch {
		case m.Hist != nil:
			s.observeLocked(name+".sum", cp, at, float64(m.Hist.Sum))
			s.observeLocked(name+".count", cp, at, float64(m.Hist.Count))
		case m.Kind == obs.KindGauge:
			s.observeLocked(name, cp, at, float64(m.Gauge))
		default:
			s.observeLocked(name, cp, at, float64(m.Value))
		}
	}
}

// NumSeries returns the number of distinct series recorded.
func (s *Store) NumSeries() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.series)
}

// SeriesNames returns every series name, sorted.
func (s *Store) SeriesNames() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.series))
	for n := range s.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Points returns a copy of the named series' ring, oldest first.
func (s *Store) Points(name string) []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	se := s.series[name]
	if se == nil {
		return nil
	}
	return append([]Point(nil), se.pts...)
}

// SeriesDump is one series in a Dump, ordered by name across the dump.
type SeriesDump struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Dump returns every series with its points, sorted by name — the
// deterministic whole-store view the equivalence tests and the JSON
// endpoint share.
func (s *Store) Dump() []SeriesDump {
	if s == nil {
		return nil
	}
	names := s.SeriesNames()
	out := make([]SeriesDump, 0, len(names))
	for _, n := range names {
		out = append(out, SeriesDump{Name: n, Points: s.Points(n)})
	}
	return out
}

// WriteJSON writes the whole store as a single deterministic JSON document:
// {"capacity":C,"series":[{"name":...,"points":[...]}]}.
func (s *Store) WriteJSON(w io.Writer) error {
	doc := struct {
		Capacity int          `json:"capacity"`
		Series   []SeriesDump `json:"series"`
	}{Capacity: s.Capacity(), Series: s.Dump()}
	if doc.Series == nil {
		doc.Series = []SeriesDump{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
