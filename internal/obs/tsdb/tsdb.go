// Package tsdb is a fixed-memory, deterministic per-CP time-series store
// for the observability layer: one bounded ring of points per metric,
// sampled from the registry's stable snapshot at every consistency-point
// boundary. When a ring fills, adjacent points are pairwise merged
// (min/max/sum/count fold, CP-range union), halving the occupancy — so the
// store's footprint is a fixed bound independent of run length, and older
// history degrades gracefully into coarser aggregates instead of being
// dropped.
//
// Timestamps are the simulation's modeled clock (worker-invariant
// DeviceBusy+CPUTime), never the host clock, and samples are taken from
// stable (volatile-excluded) snapshots only — so two runs of the same
// workload at different worker widths produce byte-identical stores, the
// same determinism contract the CSV recorder keeps.
//
// Like the rest of obs, a nil *Store is a valid no-op receiver: the CP
// boundary pays one nil check when the store is disabled.
package tsdb

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"waflfs/internal/obs"
)

// Config parameterizes a Store.
type Config struct {
	// Capacity is the maximum number of points retained per series (≥1).
	// Once full, adjacent points merge pairwise and recording continues.
	Capacity int
	// HistBuckets, when non-nil, selects histogram metrics whose cumulative
	// per-bucket counts are additionally stored as one "<name>.le_<bound>"
	// counter series per finite bound (the metric name passed in carries the
	// "<sys>." prefix). The SLO engine needs these to answer windowed
	// percentile and threshold-exceed queries; the default nil keeps the
	// compact ".sum"/".count" pair only.
	HistBuckets func(metric string) bool
}

// SuffixFilter returns a HistBuckets predicate selecting metrics with the
// given name suffix.
func SuffixFilter(suffix string) func(string) bool {
	return func(name string) bool { return strings.HasSuffix(name, suffix) }
}

// DefaultConfig holds 512 points per series — at one sample per CP that is
// 512 CPs of full resolution, then progressively coarser aggregates.
func DefaultConfig() Config { return Config{Capacity: 512} }

// Point is one ring entry: a single CP sample, or the fold of a contiguous
// CP range after downsampling.
type Point struct {
	// CPFirst..CPLast is the (inclusive) CP-ordinal range folded into this
	// point; equal for a full-resolution sample.
	CPFirst uint64 `json:"cp_first"`
	CPLast  uint64 `json:"cp_last"`
	// At is the modeled-clock timestamp of the newest folded sample.
	At time.Duration `json:"at_ns"`

	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Count uint64  `json:"count"`
}

// Avg returns the mean of the folded samples.
func (p Point) Avg() float64 {
	if p.Count == 0 {
		return 0
	}
	return p.Sum / float64(p.Count)
}

func merge(a, b Point) Point {
	out := Point{
		CPFirst: a.CPFirst,
		CPLast:  b.CPLast,
		At:      b.At,
		Min:     a.Min,
		Max:     a.Max,
		Sum:     a.Sum + b.Sum,
		Count:   a.Count + b.Count,
	}
	if b.Min < out.Min {
		out.Min = b.Min
	}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	return out
}

type series struct {
	pts []Point // len ≤ Config.Capacity; grows lazily via append
}

// add appends a full-resolution point, downsampling first if the ring is at
// capacity. The backing array grows lazily (short-lived series stay small)
// and its length never exceeds the configured capacity. Because folds merge
// rather than drop, the first retained point always begins at the series'
// first recorded CP — retained history spans the whole run at degrading
// resolution, which the window queries below rely on.
func (se *series) add(capacity int, p Point) {
	if len(se.pts) == capacity {
		if capacity == 1 {
			se.pts[0] = merge(se.pts[0], p)
			return
		}
		half := len(se.pts) / 2
		for i := 0; i < half; i++ {
			se.pts[i] = merge(se.pts[2*i], se.pts[2*i+1])
		}
		if len(se.pts)%2 == 1 {
			se.pts[half] = se.pts[len(se.pts)-1]
			half++
		}
		se.pts = se.pts[:half]
	}
	se.pts = append(se.pts, p)
}

// Store holds one bounded ring per series. Safe for concurrent use: the CP
// boundary records while live HTTP endpoints read.
type Store struct {
	mu          sync.Mutex
	capacity    int
	histBuckets func(string) bool
	series      map[string]*series
}

// NewStore creates an empty store. Capacity ≤ 0 selects the default.
func NewStore(cfg Config) *Store {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultConfig().Capacity
	}
	return &Store{capacity: cfg.Capacity, histBuckets: cfg.HistBuckets, series: make(map[string]*series)}
}

// Capacity returns the per-series point bound.
func (s *Store) Capacity() int {
	if s == nil {
		return 0
	}
	return s.capacity
}

// Observe records one sample of the named series at the given CP ordinal
// and modeled timestamp. No-op on a nil store.
func (s *Store) Observe(name string, cp uint64, at time.Duration, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.observeLocked(name, cp, at, v)
	s.mu.Unlock()
}

func (s *Store) observeLocked(name string, cp uint64, at time.Duration, v float64) {
	se := s.series[name]
	if se == nil {
		se = &series{}
		s.series[name] = se
	}
	se.add(s.capacity, Point{CPFirst: cp, CPLast: cp, At: at, Min: v, Max: v, Sum: v, Count: 1})
}

// Sample records every non-volatile metric of a registry snapshot under
// "<sys>.<metric>" (histograms split into ".sum" and ".count"). Callers
// pass StableSnapshot so the stored values are worker-invariant. No-op on
// a nil store.
func (s *Store) Sample(sys string, cp uint64, at time.Duration, snap obs.Snapshot) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range snap.Metrics {
		if m.Volatile {
			continue
		}
		name := sys + "." + m.Name
		switch {
		case m.Hist != nil:
			s.observeLocked(name+".sum", cp, at, float64(m.Hist.Sum))
			s.observeLocked(name+".count", cp, at, float64(m.Hist.Count))
			if s.histBuckets != nil && s.histBuckets(name) {
				// Cumulative per-bucket counters, one series per finite
				// bound, so windowed queries can reconstruct the histogram
				// of any CP range by delta.
				var cum uint64
				for i, b := range m.Hist.Bounds {
					cum += m.Hist.Counts[i]
					s.observeLocked(name+".le_"+strconv.FormatUint(b, 10), cp, at, float64(cum))
				}
			}
		case m.Kind == obs.KindGauge:
			s.observeLocked(name, cp, at, float64(m.Gauge))
		default:
			s.observeLocked(name, cp, at, float64(m.Value))
		}
	}
}

// Window aggregates the retained points of one series over a CP range.
type Window struct {
	// Points is how many ring points intersected the window.
	Points int
	// CPFirst..CPLast is the CP range the intersecting points actually
	// cover, clamped to retained resolution (a folded point is included
	// whole when any of its range intersects the query).
	CPFirst, CPLast uint64
	// AtLast is the modeled timestamp of the newest intersecting point.
	AtLast time.Duration

	Min, Max, Sum float64
	Count         uint64
	// FirstMin is the Min of the oldest intersecting point and LastMax the
	// Max of the newest. For a monotone (counter) series these are exact
	// even across folds: within a folded point the minimum is the value at
	// CPFirst and the maximum the value at CPLast, so LastMax−FirstMin is
	// the increase over the covered range.
	FirstMin, LastMax float64
}

// WindowStats aggregates the named series over the CP range [fromCP, toCP]
// (inclusive). Folded points are included whenever their CP range intersects
// the query, so the returned coverage (CPFirst..CPLast) can be wider than
// asked once downsampling has coarsened old history. Returns ok=false when
// the series is unknown or no retained point intersects.
func (s *Store) WindowStats(name string, fromCP, toCP uint64) (Window, bool) {
	if s == nil {
		return Window{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	se := s.series[name]
	if se == nil || len(se.pts) == 0 || fromCP > toCP {
		return Window{}, false
	}
	// Points are ordered by CP; find the first with CPLast >= fromCP and
	// take every one with CPFirst <= toCP from there.
	lo := sort.Search(len(se.pts), func(i int) bool { return se.pts[i].CPLast >= fromCP })
	var w Window
	for i := lo; i < len(se.pts) && se.pts[i].CPFirst <= toCP; i++ {
		p := se.pts[i]
		if w.Points == 0 {
			w = Window{CPFirst: p.CPFirst, Min: p.Min, Max: p.Max, FirstMin: p.Min}
		} else {
			if p.Min < w.Min {
				w.Min = p.Min
			}
			if p.Max > w.Max {
				w.Max = p.Max
			}
		}
		w.Points++
		w.CPLast = p.CPLast
		w.AtLast = p.At
		w.Sum += p.Sum
		w.Count += p.Count
		w.LastMax = p.Max
	}
	return w, w.Points > 0
}

// ValueAt returns a monotone (counter) series' value at-or-before the given
// CP. Exact at retained point boundaries; inside a folded range it returns
// the fold's starting value (the newest exactly-known value ≤ cp). A cp
// before the series' first sample returns 0 — counters start at zero, and
// folding never discards the front of a series, so the first retained point
// is the true beginning. ok=false only when the series is unknown.
func (s *Store) ValueAt(name string, cp uint64) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	se := s.series[name]
	if se == nil || len(se.pts) == 0 {
		return 0, false
	}
	pts := se.pts
	if cp < pts[0].CPFirst {
		return 0, true
	}
	// Last point with CPFirst <= cp.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].CPFirst > cp }) - 1
	if cp >= pts[i].CPLast {
		return pts[i].Max, true
	}
	return pts[i].Min, true
}

// CounterDelta returns the increase of a monotone (counter) series over the
// half-open CP window (fromCP, toCP]: ValueAt(toCP) − ValueAt(fromCP),
// clamped at 0. Exact whenever both endpoints land on retained point
// boundaries (always true until folding coarsens them); endpoints inside a
// folded range resolve conservatively to the fold's starting value.
func (s *Store) CounterDelta(name string, fromCP, toCP uint64) (float64, bool) {
	v1, ok := s.ValueAt(name, toCP)
	if !ok {
		return 0, false
	}
	v0, _ := s.ValueAt(name, fromCP)
	if v1 < v0 {
		return 0, true
	}
	return v1 - v0, true
}

// NumSeries returns the number of distinct series recorded.
func (s *Store) NumSeries() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.series)
}

// SeriesWithPrefix returns every series name with the given prefix, sorted —
// how the SLO engine discovers per-volume SLI series under one system.
func (s *Store) SeriesWithPrefix(prefix string) []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for n := range s.series {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// SeriesNames returns every series name, sorted.
func (s *Store) SeriesNames() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.series))
	for n := range s.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Points returns a copy of the named series' ring, oldest first.
func (s *Store) Points(name string) []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	se := s.series[name]
	if se == nil {
		return nil
	}
	return append([]Point(nil), se.pts...)
}

// SeriesDump is one series in a Dump, ordered by name across the dump.
type SeriesDump struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Dump returns every series with its points, sorted by name — the
// deterministic whole-store view the equivalence tests and the JSON
// endpoint share.
func (s *Store) Dump() []SeriesDump {
	if s == nil {
		return nil
	}
	names := s.SeriesNames()
	out := make([]SeriesDump, 0, len(names))
	for _, n := range names {
		out = append(out, SeriesDump{Name: n, Points: s.Points(n)})
	}
	return out
}

// WriteJSON writes the whole store as a single deterministic JSON document:
// {"capacity":C,"series":[{"name":...,"points":[...]}]}.
func (s *Store) WriteJSON(w io.Writer) error {
	doc := struct {
		Capacity int          `json:"capacity"`
		Series   []SeriesDump `json:"series"`
	}{Capacity: s.Capacity(), Series: s.Dump()}
	if doc.Series == nil {
		doc.Series = []SeriesDump{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
