package tsdb

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"waflfs/internal/obs"
)

func TestObserveBelowCapacityKeepsFullResolution(t *testing.T) {
	s := NewStore(Config{Capacity: 8})
	for cp := uint64(1); cp <= 5; cp++ {
		s.Observe("x", cp, time.Duration(cp), float64(cp*10))
	}
	pts := s.Points("x")
	if len(pts) != 5 {
		t.Fatalf("len = %d, want 5", len(pts))
	}
	for i, p := range pts {
		cp := uint64(i + 1)
		want := Point{CPFirst: cp, CPLast: cp, At: time.Duration(cp),
			Min: float64(cp * 10), Max: float64(cp * 10), Sum: float64(cp * 10), Count: 1}
		if p != want {
			t.Errorf("point %d = %+v, want %+v", i, p, want)
		}
	}
}

// Capacity 1 is the degenerate ring: every sample folds into the single
// slot, accumulating min/max/sum/count over the whole run.
func TestCapacityOneFoldsEverything(t *testing.T) {
	s := NewStore(Config{Capacity: 1})
	vals := []float64{7, 3, 9, 5}
	for i, v := range vals {
		s.Observe("x", uint64(i+1), time.Duration(i+1), v)
	}
	pts := s.Points("x")
	if len(pts) != 1 {
		t.Fatalf("len = %d, want 1", len(pts))
	}
	want := Point{CPFirst: 1, CPLast: 4, At: 4, Min: 3, Max: 9, Sum: 24, Count: 4}
	if pts[0] != want {
		t.Fatalf("point = %+v, want %+v", pts[0], want)
	}
}

// An exact-multiple wrap: capacity 4, 8 samples. The first wrap (sample 5)
// folds 1..4 into two points; the second (sample 7) folds again. The final
// structure is fully determined.
func TestExactMultipleWrap(t *testing.T) {
	s := NewStore(Config{Capacity: 4})
	for cp := uint64(1); cp <= 8; cp++ {
		s.Observe("x", cp, time.Duration(cp), float64(cp))
	}
	pts := s.Points("x")
	want := []Point{
		{CPFirst: 1, CPLast: 4, At: 4, Min: 1, Max: 4, Sum: 10, Count: 4},
		{CPFirst: 5, CPLast: 6, At: 6, Min: 5, Max: 6, Sum: 11, Count: 2},
		{CPFirst: 7, CPLast: 7, At: 7, Min: 7, Max: 7, Sum: 7, Count: 1},
		{CPFirst: 8, CPLast: 8, At: 8, Min: 8, Max: 8, Sum: 8, Count: 1},
	}
	if !reflect.DeepEqual(pts, want) {
		t.Fatalf("points = %+v\nwant %+v", pts, want)
	}
	// No sample is ever lost to a wrap: the counts still cover every CP.
	var n uint64
	for _, p := range pts {
		n += p.Count
	}
	if n != 8 {
		t.Fatalf("folded count = %d, want 8", n)
	}
}

// Odd-capacity wrap exercises the carried unpaired point.
func TestOddCapacityWrapCarriesTail(t *testing.T) {
	s := NewStore(Config{Capacity: 3})
	for cp := uint64(1); cp <= 4; cp++ {
		s.Observe("x", cp, time.Duration(cp), float64(cp))
	}
	want := []Point{
		{CPFirst: 1, CPLast: 2, At: 2, Min: 1, Max: 2, Sum: 3, Count: 2},
		{CPFirst: 3, CPLast: 3, At: 3, Min: 3, Max: 3, Sum: 3, Count: 1},
		{CPFirst: 4, CPLast: 4, At: 4, Min: 4, Max: 4, Sum: 4, Count: 1},
	}
	if got := s.Points("x"); !reflect.DeepEqual(got, want) {
		t.Fatalf("points = %+v\nwant %+v", got, want)
	}
}

// The memory bound: however long the run, a series holds at most Capacity
// points and its backing array never grows past that bound (it is allocated
// lazily, so short-lived series stay small).
func TestMemoryBoundIndependentOfRunLength(t *testing.T) {
	const capacity = 16
	s := NewStore(Config{Capacity: capacity})
	for cp := uint64(1); cp <= 100000; cp++ {
		s.Observe("x", cp, time.Duration(cp), float64(cp%97))
	}
	se := s.series["x"]
	if len(se.pts) > capacity {
		t.Fatalf("series holds %d points, bound is %d", len(se.pts), capacity)
	}
	if got := cap(se.pts); got > capacity {
		t.Fatalf("backing array capacity = %d, bound is %d", got, capacity)
	}
	// Nothing was dropped, only folded.
	var n uint64
	for _, p := range se.pts {
		n += p.Count
	}
	if n != 100000 {
		t.Fatalf("folded count = %d, want 100000", n)
	}
}

func TestSampleRecordsSnapshotKinds(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c").Add(3)
	reg.Gauge("g").Set(-2)
	reg.Histogram("h", []uint64{10, 100}).Observe(7)
	reg.VolatileCounter("vol").Add(99)

	s := NewStore(Config{Capacity: 4})
	s.Sample("arm", 1, 5*time.Nanosecond, reg.StableSnapshot())

	checks := map[string]float64{
		"arm.c":       3,
		"arm.g":       -2,
		"arm.h.sum":   7,
		"arm.h.count": 1,
	}
	for name, want := range checks {
		pts := s.Points(name)
		if len(pts) != 1 || pts[0].Sum != want {
			t.Errorf("%s = %+v, want one point with value %v", name, pts, want)
		}
	}
	if pts := s.Points("arm.vol"); pts != nil {
		t.Errorf("volatile metric sampled: %+v", pts)
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	s.Observe("x", 1, 0, 1)
	s.Sample("arm", 1, 0, obs.Snapshot{})
	if s.NumSeries() != 0 || s.Points("x") != nil || s.SeriesNames() != nil || s.Dump() != nil {
		t.Fatal("nil store leaked state")
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("nil WriteJSON wrote nothing")
	}
}

func TestWriteJSONDeterministicOrder(t *testing.T) {
	build := func(order []string) string {
		s := NewStore(Config{Capacity: 4})
		for i, n := range order {
			s.Observe(n, uint64(i+1), time.Duration(i), float64(i))
		}
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.String()
	}
	a := build([]string{"b", "a", "c"})
	// Same samples, different insertion order — but per-series content must
	// match, so reuse identical (name, cp, value) tuples.
	s := NewStore(Config{Capacity: 4})
	s.Observe("c", 3, 2, 2)
	s.Observe("a", 2, 1, 1)
	s.Observe("b", 1, 0, 0)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if a != buf.String() {
		t.Fatalf("insertion order leaked into JSON:\n%s\nvs\n%s", a, buf.String())
	}
}
