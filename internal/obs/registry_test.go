package obs

import (
	"reflect"
	"testing"
	"time"
)

func TestNilSafeInstruments(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(5)
	c.Inc()
	c.AddDuration(time.Second)
	g.Set(3)
	g.Add(1)
	h.Observe(7)
	h.ObserveDuration(time.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Value().Count != 0 {
		t.Fatal("nil instruments must read zero")
	}
}

func TestRegistryIdempotentAndSorted(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("b.ops")
	c2 := r.Counter("b.ops")
	if c1 != c2 {
		t.Fatal("re-registering a counter must return the same instrument")
	}
	c1.Add(7)
	r.Gauge("a.depth").Set(-2)
	r.Histogram("c.lat", []uint64{10, 100}).Observe(42)
	r.CounterFunc("a.derived", func() uint64 { return 11 })

	snap := r.Snapshot()
	var names []string
	for _, m := range snap.Metrics {
		names = append(names, m.Name)
	}
	want := []string{"a.depth", "a.derived", "b.ops", "c.lat"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("snapshot order = %v, want %v", names, want)
	}
	if v := snap.Counter("b.ops"); v != 7 {
		t.Fatalf("b.ops = %d, want 7", v)
	}
	if v := snap.Counter("a.derived"); v != 11 {
		t.Fatalf("a.derived = %d, want 11", v)
	}
	if m, ok := snap.Get("a.depth"); !ok || m.Gauge != -2 {
		t.Fatalf("a.depth = %+v, want gauge -2", m)
	}
	if m, ok := snap.Get("c.lat"); !ok || m.Hist.Count != 1 || m.Hist.Counts[1] != 1 {
		t.Fatalf("c.lat = %+v, want one sample in bucket le=100", m)
	}
	if _, ok := snap.Get("missing"); ok {
		t.Fatal("Get must miss on absent names")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("x")
}

func TestStableSnapshotExcludesVolatile(t *testing.T) {
	r := NewRegistry()
	r.Counter("stable").Add(1)
	r.VolatileCounter("wall").Add(99)
	r.VolatileCounterFunc("wall2", func() uint64 { return 5 })
	full, stable := r.Snapshot(), r.StableSnapshot()
	if len(full.Metrics) != 3 || len(stable.Metrics) != 1 {
		t.Fatalf("full=%d stable=%d, want 3/1", len(full.Metrics), len(stable.Metrics))
	}
	if stable.Metrics[0].Name != "stable" {
		t.Fatalf("stable snapshot kept %q", stable.Metrics[0].Name)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	for _, v := range []uint64{0, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	hv := h.Value()
	wantCounts := []uint64{2, 2, 0, 1} // le=10: {0,10}; le=100: {11,100}; le=1000: {}; +Inf: {5000}
	if !reflect.DeepEqual(hv.Counts, wantCounts) {
		t.Fatalf("counts = %v, want %v", hv.Counts, wantCounts)
	}
	if hv.Sum != 5121 || hv.Count != 5 {
		t.Fatalf("sum/count = %d/%d, want 5121/5", hv.Sum, hv.Count)
	}
}

func TestMirrorSharesInstruments(t *testing.T) {
	export := NewRegistry()
	priv := NewRegistry()
	priv.MirrorTo(export, "arm1.")
	c := priv.Counter("ops") // registered after MirrorTo
	priv.MirrorTo(export, "arm1.")
	c.Add(3)

	if v, ok := export.Value("arm1.ops"); !ok || v != 3 {
		t.Fatalf("export arm1.ops = %d,%v, want 3,true", v, ok)
	}
	// A second MirrorTo must not have double-registered: the duplicate alias
	// gets a deterministic suffix, and the original keeps reading through.
	c.Add(1)
	if v, _ := export.Value("arm1.ops"); v != 4 {
		t.Fatalf("export arm1.ops = %d, want 4 (shared instrument)", v)
	}

	// Pre-existing entries are mirrored too.
	priv2 := NewRegistry()
	c2 := priv2.Counter("ops")
	c2.Add(9)
	priv2.MirrorTo(export, "arm2.")
	if v, ok := export.Value("arm2.ops"); !ok || v != 9 {
		t.Fatalf("export arm2.ops = %d,%v, want 9,true", v, ok)
	}
}

func TestValueLookup(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(2)
	if v, ok := r.Value("hits"); !ok || v != 2 {
		t.Fatalf("Value(hits) = %d,%v", v, ok)
	}
	if _, ok := r.Value("absent"); ok {
		t.Fatal("Value must miss on absent names")
	}
}
