package obs

import (
	"strings"
	"sync"
	"testing"
)

// Concurrent experiment arms recording interleaved CPs must flush exactly
// the stream a serial recording would produce: canonical (sys, cp) order,
// independent of goroutine scheduling. Run under -race this also audits the
// recorder's locking.
func TestCSVRecorderConcurrentArms(t *testing.T) {
	arms := []string{"armA", "armB", "armC", "armD"}
	const cps = 50

	snapshotFor := func(arm string, cp uint64) Snapshot {
		reg := NewRegistry()
		c := reg.Counter(arm + ".ops")
		c.Add(cp * 10)
		reg.Gauge(arm + ".depth").Set(int64(cp))
		return reg.Snapshot()
	}

	// Serial reference: arms recorded one after another.
	var want strings.Builder
	ref := NewCSVRecorder(&want)
	for _, arm := range arms {
		for cp := uint64(1); cp <= cps; cp++ {
			ref.Record(arm, cp, snapshotFor(arm, cp))
		}
	}
	if err := ref.Flush(); err != nil {
		t.Fatalf("reference flush: %v", err)
	}

	// Concurrent run: one goroutine per arm, racing Record calls.
	var got strings.Builder
	rec := NewCSVRecorder(&got)
	var wg sync.WaitGroup
	for _, arm := range arms {
		wg.Add(1)
		go func(arm string) {
			defer wg.Done()
			for cp := uint64(1); cp <= cps; cp++ {
				rec.Record(arm, cp, snapshotFor(arm, cp))
			}
		}(arm)
	}
	wg.Wait()
	if err := rec.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	if got.String() != want.String() {
		t.Fatal("concurrent-arm CSV diverged from serial reference")
	}
	if rec.Rows() != uint64(len(arms))*cps*2 {
		t.Fatalf("rows = %d, want %d", rec.Rows(), len(arms)*cps*2)
	}
	if !strings.HasPrefix(got.String(), CSVHeader) {
		t.Fatal("missing header")
	}
}
