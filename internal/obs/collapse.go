package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteCollapsed folds timed trace spans into the collapsed-stack format
// consumed by standard flamegraph tooling (flamegraph.pl, speedscope,
// inferno): one "frame1;frame2;... value" line per unique stack, values in
// nanoseconds of modeled time. The synthetic stack is Sys;Phase;Name, so a
// flamegraph shows modeled CP time split by arm, then phase, then event
// kind. Point events (Dur == 0) carry no time and are skipped; lines are
// sorted for byte-stable output. Returns the number of stacks written.
func WriteCollapsed(w io.Writer, events []Event) (int, error) {
	agg := make(map[string]time.Duration)
	for _, ev := range events {
		if ev.Dur <= 0 {
			continue
		}
		agg[ev.Sys+";"+ev.Phase+";"+ev.Name] += ev.Dur
	}
	stacks := make([]string, 0, len(agg))
	for s := range agg {
		stacks = append(stacks, s)
	}
	sort.Strings(stacks)
	for _, s := range stacks {
		if _, err := fmt.Fprintf(w, "%s %d\n", s, agg[s].Nanoseconds()); err != nil {
			return 0, err
		}
	}
	return len(stacks), nil
}
