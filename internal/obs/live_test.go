package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestLatestMergesPublishedSnapshots(t *testing.T) {
	l := NewLatest()
	if l.NumSystems() != 0 {
		t.Fatalf("fresh holder reports %d systems", l.NumSystems())
	}
	l.Publish("b", Snapshot{Metrics: []Metric{
		{Name: "ops", Kind: KindCounter, Value: 2},
	}})
	l.Publish("a", Snapshot{Metrics: []Metric{
		{Name: "ops", Kind: KindCounter, Value: 1},
	}})
	// Re-publish replaces, never appends.
	l.Publish("b", Snapshot{Metrics: []Metric{
		{Name: "ops", Kind: KindCounter, Value: 7},
	}})
	if l.NumSystems() != 2 {
		t.Fatalf("NumSystems = %d, want 2", l.NumSystems())
	}
	snap := l.Snapshot()
	if len(snap.Metrics) != 2 {
		t.Fatalf("merged %d metrics, want 2", len(snap.Metrics))
	}
	if snap.Metrics[0].Name != "a.ops" || snap.Metrics[0].Value != 1 {
		t.Errorf("metric[0] = %+v, want a.ops=1", snap.Metrics[0])
	}
	if snap.Metrics[1].Name != "b.ops" || snap.Metrics[1].Value != 7 {
		t.Errorf("metric[1] = %+v, want latest b.ops=7", snap.Metrics[1])
	}
}

func TestLatestNilSafe(t *testing.T) {
	var l *Latest
	l.Publish("x", Snapshot{Metrics: []Metric{{Name: "n"}}})
	if l.NumSystems() != 0 {
		t.Error("nil holder claims published systems")
	}
	if got := l.Snapshot(); len(got.Metrics) != 0 {
		t.Errorf("nil holder snapshot has %d metrics", len(got.Metrics))
	}
}

func TestLatestHandlerServesPrometheus(t *testing.T) {
	l := NewLatest()
	l.Publish("sys", Snapshot{Metrics: []Metric{
		{Name: "wafl.cps", Kind: KindCounter, Value: 3},
	}})
	rr := httptest.NewRecorder()
	LatestHandler(l).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "sys_wafl_cps 3") {
		t.Errorf("body missing published metric:\n%s", rr.Body.String())
	}
}
