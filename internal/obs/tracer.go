package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one trace record: a CP phase span, a mount-time rebuild shard, or
// an allocator decision. Timestamps come from the modeled clock (cumulative
// worker-invariant simulated time), never the host clock, so traces are
// reproducible and comparable across worker counts.
type Event struct {
	// Sys names the emitting system (experiment arm label or "wafl").
	Sys string `json:"sys"`
	// CP is the consistency-point ordinal at emission time (0 before the
	// first CP, e.g. for mount events).
	CP uint64 `json:"cp"`
	// Phase groups events: "cp.alloc", "cp.flush", "cp.fold", "cp.metafile",
	// "cp.topaa", "cp.delayed_free", "alloc.phys", "alloc.virt", "mount.group",
	// "mount.space", ...
	Phase string `json:"phase"`
	// Shard is the deterministic shard index within the phase (RAID-group
	// index, volume index, ...; -1 for aggregate-wide events).
	Shard int `json:"shard"`
	// Seq orders events within (Sys, CP, Phase, Shard); assigned under the
	// tracer lock in emission order, which is deterministic per shard.
	Seq int `json:"seq"`
	// Name is the event kind within the phase ("cache_hit", "group_flush",
	// "heap_rebalance", ...).
	Name string `json:"name"`
	// At is the modeled-clock timestamp.
	At time.Duration `json:"at_ns"`
	// Dur is the modeled duration for span-like events (0 for point events).
	Dur time.Duration `json:"dur_ns,omitempty"`
	// Value carries the event's payload (score, blocks, update count, ...).
	Value int64 `json:"value,omitempty"`
}

type seqKey struct {
	sys   string
	cp    uint64
	phase string
	shard int
}

// Tracer collects events from one or more systems. It is safe for
// concurrent use: events emitted from parallel shards carry deterministic
// (Phase, Shard, Seq) coordinates, and Events returns the canonical order,
// so traces from Workers=1 and Workers=8 runs compare DeepEqual.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	seq    map[seqKey]int
}

// NewTracer creates an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{seq: make(map[seqKey]int)}
}

// Sys returns a per-system handle with its own CP ordinal and modeled
// clock. Returns nil (a valid no-op handle) if t is nil.
func (t *Tracer) Sys(name string) *SysTracer {
	if t == nil {
		return nil
	}
	return &SysTracer{t: t, sys: name}
}

// Len reports the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of all events in canonical order: sorted by
// (Sys, CP, Phase, Shard, Seq). This order is independent of the
// interleaving of parallel shards during recording.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	evs := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Sys != b.Sys {
			return a.Sys < b.Sys
		}
		if a.CP != b.CP {
			return a.CP < b.CP
		}
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Seq < b.Seq
	})
	return evs
}

// WriteJSONL writes the canonical event sequence as JSON Lines.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SysTracer is a per-system emission handle. The CP ordinal and modeled
// clock are written only from the system's serial sections (BeginCP /
// Advance run between parallel phases); Emit may be called from parallel
// shards and is serialized by the shared tracer lock. All methods are
// nil-safe so instrumentation sites need no enablement checks.
type SysTracer struct {
	t     *Tracer
	sys   string
	cp    uint64
	clock time.Duration
}

// BeginCP advances the CP ordinal; call at the start of each CP.
func (s *SysTracer) BeginCP() {
	if s == nil {
		return
	}
	s.cp++
}

// Advance moves the modeled clock forward by d. The caller must advance by
// worker-invariant quantities only (device busy time, modeled CPU) — never
// by makespans — or timestamps would differ across worker counts.
func (s *SysTracer) Advance(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.clock += d
}

// Clock returns the current modeled-clock reading.
func (s *SysTracer) Clock() time.Duration {
	if s == nil {
		return 0
	}
	return s.clock
}

// Emit records one event at the current CP and modeled clock.
func (s *SysTracer) Emit(phase string, shard int, name string, dur time.Duration, value int64) {
	if s == nil {
		return
	}
	k := seqKey{sys: s.sys, cp: s.cp, phase: phase, shard: shard}
	s.t.mu.Lock()
	seq := s.t.seq[k]
	s.t.seq[k] = seq + 1
	s.t.events = append(s.t.events, Event{
		Sys:   s.sys,
		CP:    s.cp,
		Phase: phase,
		Shard: shard,
		Seq:   seq,
		Name:  name,
		At:    s.clock,
		Dur:   dur,
		Value: value,
	})
	s.t.mu.Unlock()
}
