package obs

import (
	"strings"
	"testing"
	"time"
)

func TestWriteCollapsed(t *testing.T) {
	events := []Event{
		{Sys: "arm", Phase: "cp.flush", Name: "group_flush", Dur: 100 * time.Nanosecond},
		{Sys: "arm", Phase: "cp.flush", Name: "group_flush", Dur: 50 * time.Nanosecond},
		{Sys: "arm", Phase: "cp.fold", Name: "hbps_updates", Dur: 25 * time.Nanosecond},
		{Sys: "arm", Phase: "alloc.phys", Name: "cache_hit"}, // point event: skipped
		{Sys: "base", Phase: "cp.flush", Name: "group_flush", Dur: 10 * time.Nanosecond},
	}
	var sb strings.Builder
	n, err := WriteCollapsed(&sb, events)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("wrote %d stacks, want 3", n)
	}
	want := "arm;cp.flush;group_flush 150\narm;cp.fold;hbps_updates 25\nbase;cp.flush;group_flush 10\n"
	if sb.String() != want {
		t.Fatalf("collapsed output:\n%q\nwant:\n%q", sb.String(), want)
	}

	// Determinism: same events, permuted, must serialize identically.
	perm := []Event{events[4], events[2], events[0], events[3], events[1]}
	var sb2 strings.Builder
	if _, err := WriteCollapsed(&sb2, perm); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != sb.String() {
		t.Fatal("collapsed output depends on event order")
	}
}
