package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// CSVHeader is the first row a CSVRecorder writes: long/tidy format, one row
// per metric per consistency point.
const CSVHeader = "sys,cp,metric,kind,value\n"

// csvChunk is one Record call's worth of rows: all metrics of one system at
// one consistency point.
type csvChunk struct {
	sys  string
	cp   uint64
	rows string
	n    uint64
}

// CSVRecorder collects per-CP metric snapshots and writes them to w as a
// tidy CSV time series. Safe for concurrent use by multiple systems
// (experiment arms): Record buffers, and Flush writes every buffered chunk
// in canonical (sys, cp) order — like Tracer.Events, the byte stream is
// independent of how concurrent arms interleaved their Record calls, so
// runs at any worker count produce identical files. Histograms contribute
// two rows, <name>.sum and <name>.count, so the file stays rectangular.
//
// Write errors are sticky: the first one is kept, returned from Flush, and
// reported by Err.
type CSVRecorder struct {
	mu         sync.Mutex
	w          io.Writer
	chunks     []csvChunk
	wroteHead  bool
	err        error
	rowsOut    uint64
	volatileOK bool
}

// NewCSVRecorder creates a recorder writing to w. Volatile metrics are
// excluded by default so CSV output is worker-count invariant; see
// IncludeVolatile.
func NewCSVRecorder(w io.Writer) *CSVRecorder {
	return &CSVRecorder{w: w}
}

// IncludeVolatile makes subsequent Record calls emit volatile metrics too.
func (r *CSVRecorder) IncludeVolatile() *CSVRecorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.volatileOK = true
	r.mu.Unlock()
	return r
}

// Record buffers one row per metric in snap, tagged with the system name
// and CP ordinal. Nothing reaches the writer until Flush. Nil-safe.
func (r *CSVRecorder) Record(sys string, cp uint64, snap Snapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	prefix := csvField(sys) + "," + strconv.FormatUint(cp, 10) + ","
	rows := uint64(0)
	for _, m := range snap.Metrics {
		if m.Volatile && !r.volatileOK {
			continue
		}
		switch {
		case m.Kind == KindCounter:
			fmt.Fprintf(&b, "%s%s,counter,%d\n", prefix, csvField(m.Name), m.Value)
			rows++
		case m.Kind == KindGauge:
			fmt.Fprintf(&b, "%s%s,gauge,%d\n", prefix, csvField(m.Name), m.Gauge)
			rows++
		case m.Kind == KindHistogram && m.Hist != nil:
			fmt.Fprintf(&b, "%s%s.sum,histogram,%d\n", prefix, csvField(m.Name), m.Hist.Sum)
			fmt.Fprintf(&b, "%s%s.count,histogram,%d\n", prefix, csvField(m.Name), m.Hist.Count)
			rows += 2
		}
	}
	r.chunks = append(r.chunks, csvChunk{sys: sys, cp: cp, rows: b.String(), n: rows})
	r.rowsOut += rows
}

// Flush writes the header (once) and every buffered chunk in canonical
// (sys, cp) order, then drops the buffer. Call it after the run — flushing
// while systems are still recording would freeze an arbitrary prefix of
// the stream and forfeit the canonical ordering. Nil-safe.
func (r *CSVRecorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	sort.SliceStable(r.chunks, func(i, j int) bool {
		if r.chunks[i].sys != r.chunks[j].sys {
			return r.chunks[i].sys < r.chunks[j].sys
		}
		return r.chunks[i].cp < r.chunks[j].cp
	})
	var b strings.Builder
	if !r.wroteHead {
		b.WriteString(CSVHeader)
		r.wroteHead = true
	}
	for _, c := range r.chunks {
		b.WriteString(c.rows)
	}
	r.chunks = nil
	if _, err := io.WriteString(r.w, b.String()); err != nil {
		r.err = err
	}
	return r.err
}

// Rows reports the number of data rows recorded so far.
func (r *CSVRecorder) Rows() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rowsOut
}

// Err returns the first write error, if any.
func (r *CSVRecorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// csvField quotes a field if it contains a comma, quote, or newline.
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
