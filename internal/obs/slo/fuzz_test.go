package slo

import (
	"reflect"
	"testing"
)

// FuzzParseSLOSpec drives the spec parser with arbitrary input. Accepted
// specs must survive a canonical-form round trip: FormatSpecs output
// reparses to the identical portfolio. verify.sh runs this for a few
// seconds as a smoke.
func FuzzParseSLOSpec(f *testing.F) {
	f.Add("default")
	f.Add("default;name=x,kind=fallback,target=0.5")
	f.Add("name=slowvol,kind=latency,space=vol.db-*,target=0.995,threshold=10ms," +
		"page=14@15s/2m,warn=3@1m/10m,hold=2,min=32")
	f.Add("kind=stall,target=0.9")
	f.Add("kind=ratio,target=0.5,bad=picks.bitmap_fallback,total=picks.recorded")
	f.Add("kind=recovery,target=0.999,page=10@2s/4s,warn=9@2s/4s")
	f.Add("kind=latency,target=0.99,threshold=1h,page=1e300@1ns/1ns")
	f.Add(";;,=,@,/")
	f.Fuzz(func(t *testing.T, in string) {
		specs, err := ParseSpecs(in)
		if err != nil {
			return
		}
		if len(specs) == 0 {
			t.Fatalf("nil error with no specs for %q", in)
		}
		canon := FormatSpecs(specs)
		again, err := ParseSpecs(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, in, err)
		}
		if !reflect.DeepEqual(again, specs) {
			t.Fatalf("round trip drifted for %q:\n%+v\nvs\n%+v", in, specs, again)
		}
	})
}
