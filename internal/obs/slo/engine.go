package slo

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"waflfs/internal/obs"
	"waflfs/internal/obs/tsdb"
)

// State is the alert level of one SLO instance.
type State int

const (
	StateOK State = iota
	StateWarn
	StatePage
)

func (s State) String() string {
	switch s {
	case StateWarn:
		return "warn"
	case StatePage:
		return "page"
	default:
		return "ok"
	}
}

// MarshalJSON renders the state as its name so status documents read
// "page" instead of 2.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(s.String())), nil
}

// Transition is one state-machine edge, stamped with the modeled clock.
type Transition struct {
	CP       uint64        `json:"cp"`
	At       time.Duration `json:"at_ns"`
	Instance string        `json:"instance"`
	From     State         `json:"from"`
	To       State         `json:"to"`
	// ExemplarTrace/ExemplarLatNS reference a representative sampled op
	// trace from the instance's space (the worst-bucket exemplar at
	// transition time), when an ExemplarSource is wired; 0 otherwise. A page
	// in /debug/slo then links directly to a trace in /debug/optrace.
	ExemplarTrace uint64 `json:"exemplar_trace,omitempty"`
	ExemplarLatNS uint64 `json:"exemplar_lat_ns,omitempty"`
}

// ExemplarSource resolves a space name ("<sys>.vol.<name>") to a
// representative trace: ID and modeled latency of the space's current
// worst-bucket sampled op. internal/obs/optrace's Recorder implements it.
type ExemplarSource interface {
	Exemplar(space string) (id, latNS uint64, ok bool)
}

// maxTransitions bounds the per-engine transition log.
const maxTransitions = 128

// mark records one past evaluation point: windows are anchored to the
// newest mark at least a window-width of modeled time in the past, so a
// "30s window" means "since the CP boundary nearest 30s of modeled time
// ago" — exact at CP granularity, never interpolated.
type mark struct {
	cp uint64
	at time.Duration
}

// instance is one live alert: a spec bound to concrete series names
// (latency and stall specs fan out to one instance per matching space).
type instance struct {
	spec  *Spec
	name  string // spec name, plus ".<space>" for fanned-out kinds
	space string

	totalSeries string
	badSeries   string // direct bad counter; empty for latency
	leSeries    string // latency: cumulative bucket at the snapped threshold
	latBase     string // latency: "<sys>.<space>.lat_ns"
	bounds      []uint64

	state   State
	below   int // consecutive evals desiring a lower state
	sinceCP uint64

	burnFast, burnSlow float64
	budgetUsed         float64
	winBad, winTotal   float64
	pNs                float64
}

// Engine evaluates a spec portfolio for one system (arm) against its tsdb
// store. All methods are nil-safe; evaluation is deterministic given the
// store contents, which are themselves derived from stable snapshots on
// the modeled clock.
type Engine struct {
	mu    sync.Mutex
	sys   string
	store *tsdb.Store
	specs []Spec

	maxWin  time.Duration
	marks   []mark
	insts   []*instance
	instKey int // store.NumSeries() at last expansion

	evals, warns, pages, trans uint64
	translog                   []Transition
	exem                       ExemplarSource
}

// SetExemplarSource wires a trace exemplar source: subsequent transitions
// on space-scoped instances carry a representative trace ID. Nil-safe.
func (e *Engine) SetExemplarSource(src ExemplarSource) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.exem = src
	e.mu.Unlock()
}

// NewEngine builds an engine for one system. Returns nil when there is
// nothing to do (no specs or no store), which every method tolerates.
func NewEngine(sys string, specs []Spec, store *tsdb.Store) *Engine {
	if len(specs) == 0 || store == nil {
		return nil
	}
	e := &Engine{sys: sys, store: store, specs: append([]Spec(nil), specs...)}
	for i := range e.specs {
		e.specs[i].normalize()
		for _, w := range []time.Duration{e.specs[i].Page.Slow, e.specs[i].Warn.Slow} {
			if w > e.maxWin {
				e.maxWin = w
			}
		}
	}
	e.instKey = -1 // force expansion on first Evaluate
	return e
}

func matchSpace(pattern, space string) bool {
	if pattern == "*" || pattern == space {
		return true
	}
	if p, ok := strings.CutSuffix(pattern, "*"); ok {
		return strings.HasPrefix(space, p)
	}
	return false
}

// expand resolves wildcard spaces against the store's current series list.
// Called whenever the series count changes (series are only ever added);
// existing instances keep their alert state across expansions.
func (e *Engine) expand() {
	old := make(map[string]*instance, len(e.insts))
	for _, in := range e.insts {
		old[in.name] = in
	}
	e.insts = e.insts[:0]
	add := func(in *instance) {
		if prev, ok := old[in.name]; ok {
			in.state, in.below, in.sinceCP = prev.state, prev.below, prev.sinceCP
		}
		e.insts = append(e.insts, in)
	}
	sysPrefix := e.sys + "."
	for i := range e.specs {
		sp := &e.specs[i]
		switch sp.Kind {
		case Watchdog:
			add(&instance{spec: sp, name: sp.Name,
				badSeries:   sysPrefix + "watchdog.violations",
				totalSeries: sysPrefix + "watchdog.checks"})
		case Recovery:
			add(&instance{spec: sp, name: sp.Name,
				badSeries:   sysPrefix + "mount.fallbacks",
				totalSeries: sysPrefix + "mount.count"})
		case Fallback:
			add(&instance{spec: sp, name: sp.Name,
				badSeries:   sysPrefix + "picks.bitmap_fallback",
				totalSeries: sysPrefix + "picks.recorded"})
		case Ratio:
			add(&instance{spec: sp, name: sp.Name,
				badSeries:   sysPrefix + sp.Bad,
				totalSeries: sysPrefix + sp.Total})
		case Stall:
			for _, space := range e.spaces(".alloc.picks", sp.Space) {
				add(&instance{spec: sp, name: sp.Name + "." + space, space: space,
					badSeries:   sysPrefix + space + ".alloc.refill_stalls",
					totalSeries: sysPrefix + space + ".alloc.picks"})
			}
		case Latency:
			for _, space := range e.spaces(".lat_ns.count", sp.Space) {
				base := sysPrefix + space + ".lat_ns"
				bounds := e.bucketBounds(base)
				if len(bounds) == 0 {
					continue // histogram sampled without bucket series
				}
				// Snap the threshold up to the nearest bucket bound; ops in
				// the snapped bucket count as good, so the SLI is a slight
				// under-count of true threshold exceedances.
				snap := bounds[len(bounds)-1]
				for _, b := range bounds {
					if b >= uint64(sp.Threshold) {
						snap = b
						break
					}
				}
				add(&instance{spec: sp, name: sp.Name + "." + space, space: space,
					totalSeries: base + ".count",
					leSeries:    base + ".le_" + strconv.FormatUint(snap, 10),
					latBase:     base, bounds: bounds})
			}
		}
	}
	sort.Slice(e.insts, func(i, j int) bool { return e.insts[i].name < e.insts[j].name })
}

// spaces lists store spaces owning a series named <sys>.<space><suffix>
// and matching the spec's space pattern, sorted.
func (e *Engine) spaces(suffix, pattern string) []string {
	var out []string
	for _, name := range e.store.SeriesWithPrefix(e.sys + ".") {
		mid, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		space := strings.TrimPrefix(mid, e.sys+".")
		if validSpace(space) && matchSpace(pattern, space) {
			out = append(out, space)
		}
	}
	return out
}

// validSpace reports whether a candidate space extracted from a series name
// has the canonical registry shape: "rg<N>", "pool", or "vol.<name>" with a
// dot-free volume name. System names may nest as string prefixes of each
// other in a shared store ("ablate.bias0" prefixes "ablate.bias0.05"), so a
// sibling system's series would otherwise parse as a pseudo-space like
// "05.rg0" whenever the two systems' series coexist — which depends on arm
// interleaving. Shape-checking keeps the expanded instance set a function
// of this system's series alone.
func validSpace(space string) bool {
	if space == "pool" {
		return true
	}
	if rest, ok := strings.CutPrefix(space, "rg"); ok {
		if rest == "" {
			return false
		}
		for _, c := range rest {
			if c < '0' || c > '9' {
				return false
			}
		}
		return true
	}
	if rest, ok := strings.CutPrefix(space, "vol."); ok {
		return rest != "" && !strings.Contains(rest, ".")
	}
	return false
}

// bucketBounds discovers the finite histogram bounds for which the store
// keeps cumulative le_ counter series, ascending.
func (e *Engine) bucketBounds(latBase string) []uint64 {
	prefix := latBase + ".le_"
	var bounds []uint64
	for _, name := range e.store.SeriesWithPrefix(prefix) {
		b, err := strconv.ParseUint(name[len(prefix):], 10, 64)
		if err != nil {
			continue
		}
		bounds = append(bounds, b)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	return bounds
}

// Evaluate runs every instance against the trailing windows ending at
// (cp, at) and writes the resulting state/burn series back into the store
// under "<sys>.slo.<instance>.*". Call once per CP, after the store's
// Sample for the same CP.
func (e *Engine) Evaluate(cp uint64, at time.Duration) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := e.store.NumSeries(); n != e.instKey {
		e.expand()
		e.instKey = n
	}
	for _, in := range e.insts {
		e.evalInstance(in, cp, at)
	}
	e.marks = append(e.marks, mark{cp: cp, at: at})
	e.prune(at)
}

// baseline returns the CP anchoring a trailing window of width w ending
// at modeled time `at`: the newest past evaluation at least w old, or 0
// (run start) when the run is younger than the window.
func (e *Engine) baseline(at, w time.Duration) uint64 {
	cut := at - w
	var base uint64
	for _, m := range e.marks {
		if m.at > cut {
			break
		}
		base = m.cp
	}
	return base
}

func (e *Engine) prune(at time.Duration) {
	cut := at - e.maxWin
	idx := 0
	for i, m := range e.marks {
		if m.at > cut {
			break
		}
		idx = i
	}
	if idx > 0 {
		e.marks = append(e.marks[:0], e.marks[idx:]...)
	}
}

// badTotal returns the bad/total event deltas for an instance over
// (fromCP, toCP], clamped to 0 ≤ bad ≤ total.
func (e *Engine) badTotal(in *instance, fromCP, toCP uint64) (bad, total float64) {
	total, _ = e.store.CounterDelta(in.totalSeries, fromCP, toCP)
	if in.leSeries != "" {
		good, _ := e.store.CounterDelta(in.leSeries, fromCP, toCP)
		bad = total - good
	} else {
		bad, _ = e.store.CounterDelta(in.badSeries, fromCP, toCP)
	}
	if bad < 0 {
		bad = 0
	}
	if bad > total {
		bad = total
	}
	return bad, total
}

func (e *Engine) evalInstance(in *instance, cp uint64, at time.Duration) {
	e.evals++
	sp := in.spec
	denom := 1 - sp.Target
	burn := func(bad, total float64) float64 {
		if total <= 0 || denom <= 0 {
			return 0
		}
		return (bad / total) / denom
	}
	rate := func(w time.Duration) (float64, float64) {
		return e.badTotal(in, e.baseline(at, w), cp)
	}

	pfBad, pfTot := rate(sp.Page.Fast)
	psBad, psTot := rate(sp.Page.Slow)
	wfBad, wfTot := rate(sp.Warn.Fast)
	wsBad, wsTot := rate(sp.Warn.Slow)
	in.burnFast, in.burnSlow = burn(pfBad, pfTot), burn(psBad, psTot)
	in.winBad, in.winTotal = psBad, psTot

	allBad, allTot := e.badTotal(in, 0, cp)
	in.budgetUsed = burn(allBad, allTot)

	desired := StateOK
	switch {
	case psTot >= float64(sp.MinEvents) &&
		in.burnFast >= sp.Page.Burn && in.burnSlow >= sp.Page.Burn:
		desired = StatePage
	case wsTot >= float64(sp.MinEvents) &&
		burn(wfBad, wfTot) >= sp.Warn.Burn && burn(wsBad, wsTot) >= sp.Warn.Burn:
		desired = StateWarn
	}

	// Upgrades are immediate; downgrades wait for Hold consecutive calm
	// evaluations so a burn rate oscillating around the threshold cannot
	// flap the alert.
	switch {
	case desired > in.state:
		e.transition(in, cp, at, desired)
		in.below = 0
	case desired < in.state:
		in.below++
		if in.below >= sp.Hold {
			e.transition(in, cp, at, desired)
			in.below = 0
		}
	default:
		in.below = 0
	}

	base := e.sys + ".slo." + in.name
	e.store.Observe(base+".state", cp, at, float64(in.state))
	e.store.Observe(base+".burn_fast", cp, at, in.burnFast)
	e.store.Observe(base+".burn_slow", cp, at, in.burnSlow)
	e.store.Observe(base+".budget_used", cp, at, in.budgetUsed)
	if in.leSeries != "" {
		in.pNs = e.windowQuantile(in, cp, at)
		e.store.Observe(base+".p_ns", cp, at, in.pNs)
	}
}

// windowQuantile reconstructs the latency distribution over the page slow
// window from per-bucket counter deltas and reports the target quantile.
func (e *Engine) windowQuantile(in *instance, cp uint64, at time.Duration) float64 {
	from := e.baseline(at, in.spec.Page.Slow)
	hv := obs.HistValue{
		Bounds: in.bounds,
		Counts: make([]uint64, len(in.bounds)+1),
	}
	var prev float64
	for i, b := range in.bounds {
		cum, _ := e.store.CounterDelta(in.latBase+".le_"+strconv.FormatUint(b, 10), from, cp)
		d := cum - prev
		if d < 0 {
			d = 0
		}
		hv.Counts[i] = uint64(d)
		prev = cum
	}
	total, _ := e.store.CounterDelta(in.totalSeries, from, cp)
	if inf := total - prev; inf > 0 {
		hv.Counts[len(in.bounds)] = uint64(inf)
	}
	for _, c := range hv.Counts {
		hv.Count += c
	}
	return hv.Quantile(in.spec.Target)
}

func (e *Engine) transition(in *instance, cp uint64, at time.Duration, to State) {
	tr := Transition{CP: cp, At: at, Instance: in.name, From: in.state, To: to}
	if e.exem != nil && in.space != "" {
		if id, lat, ok := e.exem.Exemplar(e.sys + "." + in.space); ok {
			tr.ExemplarTrace, tr.ExemplarLatNS = id, lat
		}
	}
	if len(e.translog) >= maxTransitions {
		copy(e.translog, e.translog[1:])
		e.translog = e.translog[:maxTransitions-1]
	}
	e.translog = append(e.translog, tr)
	e.trans++
	switch to {
	case StateWarn:
		e.warns++
	case StatePage:
		e.pages++
	}
	in.state = to
	in.sinceCP = cp
}

// Counter accessors feed the slo.* registry metrics; all nil-safe.

func (e *Engine) Evaluations() uint64 { return e.counter(func(e *Engine) uint64 { return e.evals }) }
func (e *Engine) Warns() uint64       { return e.counter(func(e *Engine) uint64 { return e.warns }) }
func (e *Engine) Pages() uint64       { return e.counter(func(e *Engine) uint64 { return e.pages }) }
func (e *Engine) Transitions() uint64 { return e.counter(func(e *Engine) uint64 { return e.trans }) }

func (e *Engine) counter(f func(*Engine) uint64) uint64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return f(e)
}

// Active counts instances currently in warn and page state.
func (e *Engine) Active() (warns, pages int) {
	if e == nil {
		return 0, 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, in := range e.insts {
		switch in.state {
		case StateWarn:
			warns++
		case StatePage:
			pages++
		}
	}
	return warns, pages
}

// InstanceStatus is the reported state of one alert instance.
type InstanceStatus struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	State       string  `json:"state"`
	SinceCP     uint64  `json:"since_cp"`
	Target      float64 `json:"target"`
	BurnFast    float64 `json:"burn_fast"`
	BurnSlow    float64 `json:"burn_slow"`
	BudgetUsed  float64 `json:"budget_used"`
	WindowBad   float64 `json:"window_bad"`
	WindowTotal float64 `json:"window_total"`
	PNs         float64 `json:"p_ns,omitempty"`
}

// SystemStatus is one engine's full report.
type SystemStatus struct {
	System      string           `json:"system"`
	Evaluations uint64           `json:"evaluations"`
	Warns       uint64           `json:"warns"`
	Pages       uint64           `json:"pages"`
	ActiveWarns int              `json:"active_warns"`
	ActivePages int              `json:"active_pages"`
	Instances   []InstanceStatus `json:"instances"`
	Transitions []Transition     `json:"transitions,omitempty"`
}

// Status snapshots the engine; instance order is deterministic.
func (e *Engine) Status() SystemStatus {
	if e == nil {
		return SystemStatus{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := SystemStatus{
		System:      e.sys,
		Evaluations: e.evals,
		Warns:       e.warns,
		Pages:       e.pages,
		Transitions: append([]Transition(nil), e.translog...),
	}
	for _, in := range e.insts {
		st.Instances = append(st.Instances, InstanceStatus{
			Name: in.name, Kind: string(in.spec.Kind), State: in.state.String(),
			SinceCP: in.sinceCP, Target: in.spec.Target,
			BurnFast: in.burnFast, BurnSlow: in.burnSlow,
			BudgetUsed: in.budgetUsed,
			WindowBad:  in.winBad, WindowTotal: in.winTotal, PNs: in.pNs,
		})
		switch in.state {
		case StateWarn:
			st.ActiveWarns++
		case StatePage:
			st.ActivePages++
		}
	}
	return st
}
