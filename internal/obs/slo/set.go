package slo

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"waflfs/internal/obs/tsdb"
)

// Set holds one spec portfolio and the engines it has spawned, one per
// system (arm). A Set is shared across every arm of an experiment run so
// artifact gates can split totals by arm-name prefix. All methods are
// nil-safe.
type Set struct {
	mu      sync.Mutex
	specs   []Spec
	engines map[string]*Engine
	order   []string
}

// NewSet builds a set from a portfolio; specs are normalized in place.
func NewSet(specs []Spec) *Set {
	if len(specs) == 0 {
		return nil
	}
	s := &Set{specs: append([]Spec(nil), specs...), engines: map[string]*Engine{}}
	for i := range s.specs {
		s.specs[i].normalize()
	}
	return s
}

// Specs returns the normalized portfolio.
func (s *Set) Specs() []Spec {
	if s == nil {
		return nil
	}
	return append([]Spec(nil), s.specs...)
}

// Engine returns the engine for sys, creating one bound to the given
// store on first use. A later call with the same sys replaces the engine
// (systems are re-armed on remount with a fresh registry but the same
// store, so the newest binding wins).
func (s *Set) Engine(sys string, store *tsdb.Store) *Engine {
	if s == nil || store == nil {
		return nil
	}
	e := NewEngine(sys, s.specs, store)
	if e == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.engines[sys]; ok && prev.store == store {
		return prev
	}
	if _, ok := s.engines[sys]; !ok {
		s.order = append(s.order, sys)
	}
	s.engines[sys] = e
	return e
}

func (s *Set) sorted() []*Engine {
	names := append([]string(nil), s.order...)
	sort.Strings(names)
	out := make([]*Engine, 0, len(names))
	for _, n := range names {
		out = append(out, s.engines[n])
	}
	return out
}

// Totals aggregates alert activity across engines.
type Totals struct {
	Systems     int    `json:"systems"`
	Instances   int    `json:"instances"`
	Evaluations uint64 `json:"evaluations"`
	Transitions uint64 `json:"transitions"`
	Warns       uint64 `json:"warns"`
	Pages       uint64 `json:"pages"`
	ActiveWarns int    `json:"active_warns"`
	ActivePages int    `json:"active_pages"`
}

func (t *Totals) absorb(e *Engine) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t.Systems++
	t.Instances += len(e.insts)
	t.Evaluations += e.evals
	t.Transitions += e.trans
	t.Warns += e.warns
	t.Pages += e.pages
	for _, in := range e.insts {
		switch in.state {
		case StateWarn:
			t.ActiveWarns++
		case StatePage:
			t.ActivePages++
		}
	}
}

// Totals sums alert activity over every system in the set.
func (s *Set) Totals() Totals {
	return s.TotalsWhere(func(string) bool { return true })
}

// TotalsWhere sums alert activity over systems whose name passes the
// filter — the artifact gate uses this to split crash arms from clean.
func (s *Set) TotalsWhere(match func(sys string) bool) Totals {
	var t Totals
	if s == nil {
		return t
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.sorted() {
		if match(e.sys) {
			t.absorb(e)
		}
	}
	return t
}

// Status reports every engine, sorted by system name.
func (s *Set) Status() []SystemStatus {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	engines := s.sorted()
	s.mu.Unlock()
	out := make([]SystemStatus, 0, len(engines))
	for _, e := range engines {
		out = append(out, e.Status())
	}
	return out
}

// statusDoc is the /debug/slo document shape.
type statusDoc struct {
	Totals  Totals         `json:"totals"`
	Systems []SystemStatus `json:"systems"`
}

// WriteJSON writes the full deterministic status document: totals plus
// per-system instance states and transition logs. Byte-identical for
// identical evaluation histories, so the serial-equivalence test compares
// it directly across worker widths.
func (s *Set) WriteJSON(w io.Writer) error {
	doc := statusDoc{Systems: []SystemStatus{}}
	if s != nil {
		doc.Totals = s.Totals()
		doc.Systems = s.Status()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
