package slo

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"waflfs/internal/obs/tsdb"
)

func TestParseSpecsDefault(t *testing.T) {
	specs, err := ParseSpecs("default")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(specs, DefaultSpecs()) {
		t.Fatalf("default expansion mismatch:\n%+v\nvs\n%+v", specs, DefaultSpecs())
	}
	var names []string
	for _, sp := range specs {
		names = append(names, sp.Name)
	}
	want := []string{"latency", "stall", "watchdog", "recovery"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("default names = %v, want %v", names, want)
	}
}

func TestParseSpecsCustom(t *testing.T) {
	in := "name=slowvol,kind=latency,space=vol.db-*,target=0.995,threshold=10ms," +
		"page=14@15s/2m,warn=3@1m/10m,hold=2,min=32"
	specs, err := ParseSpecs(in)
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Name: "slowvol", Kind: Latency, Space: "vol.db-*", Target: 0.995,
		Threshold: 10 * time.Millisecond,
		Page:      Window{Burn: 14, Fast: 15 * time.Second, Slow: 2 * time.Minute},
		Warn:      Window{Burn: 3, Fast: time.Minute, Slow: 10 * time.Minute},
		Hold:      2, MinEvents: 32}
	if len(specs) != 1 || specs[0] != want {
		t.Fatalf("parsed %+v, want %+v", specs, want)
	}
	// Canonical form round-trips.
	again, err := ParseSpecs(FormatSpecs(specs))
	if err != nil {
		t.Fatalf("reparse canonical form: %v", err)
	}
	if !reflect.DeepEqual(again, specs) {
		t.Fatalf("round trip changed spec: %+v vs %+v", again, specs)
	}
}

func TestParseSpecsDefaultsFill(t *testing.T) {
	specs, err := ParseSpecs("kind=stall,target=0.9")
	if err != nil {
		t.Fatal(err)
	}
	sp := specs[0]
	if sp.Name != "stall" || sp.Space != "*" || sp.Hold != 3 || sp.MinEvents != 1 {
		t.Fatalf("defaults not filled: %+v", sp)
	}
	if sp.Page != defaultPage || sp.Warn != defaultWarn {
		t.Fatalf("window defaults not filled: %+v", sp)
	}
}

func TestParseSpecsErrors(t *testing.T) {
	bad := []string{
		"",
		";;",
		"kind=bogus,target=0.5",
		"target=0.5", // no kind
		"kind=recovery,target=0",
		"kind=recovery,target=1",
		"kind=recovery,target=0.5,space=vol.*", // space on system-level kind
		"kind=recovery,target=0.5,threshold=10ms",   // threshold off-latency
		"kind=ratio,target=0.5",                     // missing bad/total
		"kind=recovery,target=0.5,bad=x,total=y",    // bad/total off-ratio
		"name=evaluations,kind=recovery,target=0.5", // reserved name
		"name=a;b,kind=recovery,target=0.5",         // invalid char via clause split
		"kind=recovery,target=0.5,page=0@1s/2s",     // zero burn
		"kind=recovery,target=0.5,page=1@5s/2s",     // fast > slow
		"kind=recovery,target=0.5,page=1@1s",        // malformed window
		"kind=recovery,target=0.5,hold=-1",
		"kind=recovery,target=0.5,junk=1",
		"kind=recovery",   // zero target
		"default;default", // duplicate names
	}
	for _, in := range bad {
		if specs, err := ParseSpecs(in); err == nil {
			t.Errorf("ParseSpecs(%q) accepted: %+v", in, specs)
		}
	}
}

// obsSeries writes one counter sample the way Sample would.
func obsSeries(s *tsdb.Store, name string, cp uint64, at time.Duration, v float64) {
	s.Observe(name, cp, at, v)
}

func recoverySpecs(t *testing.T, clause string) []Spec {
	t.Helper()
	specs, err := ParseSpecs(clause)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func TestEngineRecoveryPagesOnMountFallback(t *testing.T) {
	specs := recoverySpecs(t, "name=rec,kind=recovery,target=0.999,page=10@2s/4s,warn=9@2s/4s,hold=2,min=1")
	store := tsdb.NewStore(tsdb.Config{Capacity: 64})
	e := NewEngine("arm", specs, store)

	sec := func(n int) time.Duration { return time.Duration(n) * time.Second }
	fallbacks := func(cp uint64) float64 {
		if cp >= 2 {
			return 1
		}
		return 0
	}
	states := make([]float64, 0, 5)
	for cp := uint64(1); cp <= 5; cp++ {
		obsSeries(store, "arm.mount.count", cp, sec(int(cp)), float64(cp))
		obsSeries(store, "arm.mount.fallbacks", cp, sec(int(cp)), fallbacks(cp))
		e.Evaluate(cp, sec(int(cp)))
		v, ok := store.ValueAt("arm.slo.rec.state", cp)
		if !ok {
			t.Fatalf("no state series at cp %d", cp)
		}
		states = append(states, v)
	}
	// cp1 clean; the cp2 fallback pages immediately (both windows still span
	// the whole run); the windows slide past the event at cp4 but hysteresis
	// holds the page until two calm evals have passed (cp5).
	want := []float64{0, 2, 2, 2, 0}
	if !reflect.DeepEqual(states, want) {
		t.Fatalf("state series = %v, want %v", states, want)
	}
	if got := e.Pages(); got != 1 {
		t.Fatalf("pages = %d, want 1", got)
	}
	if got := e.Transitions(); got != 2 {
		t.Fatalf("transitions = %d, want 2", got)
	}
	st := e.Status()
	if len(st.Transitions) != 2 ||
		st.Transitions[0].To != StatePage || st.Transitions[0].CP != 2 ||
		st.Transitions[1].To != StateOK || st.Transitions[1].CP != 5 {
		t.Fatalf("transition log = %+v", st.Transitions)
	}
	if st.Instances[0].State != "ok" || st.Instances[0].SinceCP != 5 {
		t.Fatalf("instance status = %+v", st.Instances[0])
	}
}

func TestEngineLatencyThresholdSnapAndQuantile(t *testing.T) {
	specs := recoverySpecs(t, "name=lat,kind=latency,space=vol.*,target=0.9,threshold=500ns,page=5@2s/4s,warn=2@2s/4s,hold=3,min=1")
	store := tsdb.NewStore(tsdb.Config{Capacity: 64})
	e := NewEngine("arm", specs, store)

	base := "arm.vol.v0.lat_ns"
	write := func(cp uint64, at time.Duration, le10, le100, le1000, count float64) {
		obsSeries(store, base+".le_10", cp, at, le10)
		obsSeries(store, base+".le_100", cp, at, le100)
		obsSeries(store, base+".le_1000", cp, at, le1000)
		obsSeries(store, base+".count", cp, at, count)
	}
	// cp1: ten ops, all under the snapped 1000ns bound — clean.
	write(1, time.Second, 5, 8, 10, 10)
	e.Evaluate(1, time.Second)
	if v, _ := store.ValueAt("arm.slo.lat.vol.v0.state", 1); v != 0 {
		t.Fatalf("clean cp1 state = %v", v)
	}
	// cp2: ten more ops, every one above 1000ns. Bad fraction 0.5 over the
	// run → burn 0.5/0.1 = 5 on both windows → page.
	write(2, 2*time.Second, 5, 8, 10, 20)
	e.Evaluate(2, 2*time.Second)
	if v, _ := store.ValueAt("arm.slo.lat.vol.v0.state", 2); v != float64(StatePage) {
		t.Fatalf("cp2 state = %v, want page", v)
	}
	st := e.Status().Instances[0]
	if st.Name != "lat.vol.v0" || st.Kind != "latency" {
		t.Fatalf("instance = %+v", st)
	}
	if st.WindowBad != 10 || st.WindowTotal != 20 {
		t.Fatalf("window bad/total = %v/%v, want 10/20", st.WindowBad, st.WindowTotal)
	}
	// p90 over the window lands in the +Inf bucket and clamps to the top
	// finite bound.
	if st.PNs != 1000 {
		t.Fatalf("p_ns = %v, want 1000", st.PNs)
	}
	if v, _ := store.ValueAt("arm.slo.lat.vol.v0.p_ns", 2); v != 1000 {
		t.Fatalf("p_ns series = %v, want 1000", v)
	}
}

func TestEngineStallWildcardExpansion(t *testing.T) {
	specs := recoverySpecs(t, "name=st,kind=stall,space=vol.*,target=0.99")
	store := tsdb.NewStore(tsdb.Config{Capacity: 16})
	for _, space := range []string{"vol.b", "vol.a", "pool"} {
		obsSeries(store, "arm."+space+".alloc.picks", 1, time.Second, 100)
		obsSeries(store, "arm."+space+".alloc.refill_stalls", 1, time.Second, 0)
	}
	e := NewEngine("arm", specs, store)
	e.Evaluate(1, time.Second)
	st := e.Status()
	var names []string
	for _, in := range st.Instances {
		names = append(names, in.Name)
	}
	want := []string{"st.vol.a", "st.vol.b"} // pool excluded, sorted
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("instances = %v, want %v", names, want)
	}

	// A volume added later (series appear mid-run) joins at the next eval.
	obsSeries(store, "arm.vol.c.alloc.picks", 2, 2*time.Second, 50)
	e.Evaluate(2, 2*time.Second)
	if n := len(e.Status().Instances); n != 3 {
		t.Fatalf("instances after growth = %d, want 3", n)
	}
}

// A system whose name is a string prefix of another system sharing the
// store ("ablate.bias0" / "ablate.bias0.05") must not adopt the sibling's
// spaces as pseudo-spaces like "05.rg0" — whether that happens would
// otherwise depend on which arms' series coexist in the store, i.e. on
// experiment interleaving, breaking worker-width determinism.
func TestExpansionIgnoresPrefixNestedSiblingSystems(t *testing.T) {
	specs := recoverySpecs(t, "name=st,kind=stall,space=*,target=0.99")
	store := tsdb.NewStore(tsdb.Config{Capacity: 16})
	for _, sys := range []string{"ablate.bias0", "ablate.bias0.05"} {
		for _, space := range []string{"rg0", "vol.v", "pool"} {
			obsSeries(store, sys+"."+space+".alloc.picks", 1, time.Second, 100)
			obsSeries(store, sys+"."+space+".alloc.refill_stalls", 1, time.Second, 0)
		}
	}
	e := NewEngine("ablate.bias0", specs, store)
	e.Evaluate(1, time.Second)
	var names []string
	for _, in := range e.Status().Instances {
		names = append(names, in.Name)
	}
	want := []string{"st.pool", "st.rg0", "st.vol.v"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("instances = %v, want %v (sibling spaces leaked)", names, want)
	}
}

func TestSetTotalsSplitBySystemPrefix(t *testing.T) {
	set := NewSet(recoverySpecs(t, "name=rec,kind=recovery,target=0.999,min=1"))
	cleanStore := tsdb.NewStore(tsdb.Config{Capacity: 16})
	crashStore := tsdb.NewStore(tsdb.Config{Capacity: 16})
	clean := set.Engine("fig6.base", cleanStore)
	crash := set.Engine("crash.flush.torn", crashStore)

	for cp := uint64(1); cp <= 2; cp++ {
		at := time.Duration(cp) * time.Second
		obsSeries(cleanStore, "fig6.base.mount.count", cp, at, float64(cp))
		obsSeries(cleanStore, "fig6.base.mount.fallbacks", cp, at, 0)
		clean.Evaluate(cp, at)
		obsSeries(crashStore, "crash.flush.torn.mount.count", cp, at, float64(cp))
		obsSeries(crashStore, "crash.flush.torn.mount.fallbacks", cp, at, float64(cp-1))
		crash.Evaluate(cp, at)
	}

	tot := set.Totals()
	if tot.Systems != 2 || tot.Pages != 1 || tot.ActivePages != 1 {
		t.Fatalf("totals = %+v", tot)
	}
	crashTot := set.TotalsWhere(func(sys string) bool { return strings.HasPrefix(sys, "crash.") })
	if crashTot.Pages != 1 || crashTot.Systems != 1 {
		t.Fatalf("crash totals = %+v", crashTot)
	}
	cleanTot := set.TotalsWhere(func(sys string) bool { return !strings.HasPrefix(sys, "crash.") })
	if cleanTot.Pages != 0 || cleanTot.Warns != 0 || cleanTot.Systems != 1 {
		t.Fatalf("clean totals = %+v", cleanTot)
	}

	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{`"system": "crash.flush.torn"`, `"state": "page"`, `"totals"`} {
		if !strings.Contains(out, frag) {
			t.Errorf("status JSON missing %q:\n%s", frag, out)
		}
	}

	// Re-requesting an engine for the same (sys, store) returns the same
	// engine; totals don't double-count.
	if set.Engine("fig6.base", cleanStore) != clean {
		t.Fatal("engine identity lost on re-request")
	}
	if set.Totals().Systems != 2 {
		t.Fatal("re-request duplicated a system")
	}
}

func TestNilSafety(t *testing.T) {
	var e *Engine
	e.Evaluate(1, time.Second)
	if e.Evaluations() != 0 || e.Warns() != 0 || e.Pages() != 0 || e.Transitions() != 0 {
		t.Fatal("nil engine leaked counters")
	}
	if w, p := e.Active(); w != 0 || p != 0 {
		t.Fatal("nil engine active")
	}
	_ = e.Status()

	var s *Set
	if s.Engine("x", tsdb.NewStore(tsdb.Config{Capacity: 4})) != nil {
		t.Fatal("nil set produced engine")
	}
	if s.Totals() != (Totals{}) || s.Status() != nil || s.Specs() != nil {
		t.Fatal("nil set leaked state")
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil || buf.Len() == 0 {
		t.Fatalf("nil set WriteJSON: %v (%d bytes)", err, buf.Len())
	}
	if NewSet(nil) != nil {
		t.Fatal("empty NewSet should be nil")
	}
	if NewEngine("x", nil, nil) != nil {
		t.Fatal("empty NewEngine should be nil")
	}
}
