// Package slo layers declarative service-level objectives over the obs
// registry and tsdb series rings. A Spec names an SLI (per-volume modeled
// op latency, pick-stall rate, bitmap-fallback rate, watchdog violations,
// recovery fallbacks, or an arbitrary counter ratio), an objective, and a
// pair of Google-SRE-style multi-window burn-rate alert conditions. An
// Engine evaluates every spec at each CP boundary against the modeled
// clock, driving a deterministic ok→warn→page state machine with
// hysteresis; a Set aggregates engines across systems (arms) for the
// artifact gates and the /debug/slo endpoint.
//
// Everything here reads only worker-invariant inputs (CP counter, modeled
// time, stable-snapshot-derived tsdb series), so evaluation streams are
// byte-identical at any worker width.
package slo

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind selects the SLI a spec measures.
type Kind string

const (
	// Latency: fraction of modeled ops per volume completing under
	// Threshold, from the fixed-bucket lat_ns histograms. The threshold is
	// snapped up to the nearest bucket bound.
	Latency Kind = "latency"
	// Stall: fraction of allocator picks that did not hit a refill stall,
	// per space (volume or pool).
	Stall Kind = "stall"
	// Fallback: fraction of recorded picks not served by bitmap fallback.
	// Not in the defaults: cache-less arms legitimately run at 100%
	// fallback, so this SLI only makes sense on cache-enabled configs.
	Fallback Kind = "fallback"
	// Watchdog: fraction of invariant watchdog checks that passed.
	Watchdog Kind = "watchdog"
	// Recovery: fraction of mounts that did not fall back to a bitmap
	// scrub rebuild. This is the designed crash-paging signal.
	Recovery Kind = "recovery"
	// Ratio: explicit bad/total counter series suffixes.
	Ratio Kind = "ratio"
)

// Window is one burn-rate alert condition: alert when the error-budget
// burn rate is at least Burn over both the Fast and Slow trailing windows
// of modeled time.
type Window struct {
	Burn float64
	Fast time.Duration
	Slow time.Duration
}

// Spec is one declarative SLO.
type Spec struct {
	Name      string
	Kind      Kind
	Space     string // latency/stall: space selector ("vol.*", "pool", "*")
	Target    float64
	Threshold time.Duration // latency only
	Page      Window
	Warn      Window
	Hold      int    // consecutive below-level evals before downgrade
	MinEvents uint64 // slow-window event floor before alerting
	Bad       string // ratio: bad counter series suffix
	Total     string // ratio: total counter series suffix
}

// Default alert windows, in modeled time. The canonical SRE pairs
// (1h/5m etc.) assume wall-clock days; modeled runs compress to seconds
// of device+CPU time, so the pairs are scaled accordingly.
var (
	defaultPage = Window{Burn: 10, Fast: 30 * time.Second, Slow: 5 * time.Minute}
	defaultWarn = Window{Burn: 2, Fast: 150 * time.Second, Slow: 20 * time.Minute}
)

// DefaultSpecs is the stock portfolio: per-volume latency, per-space
// stalls, watchdog violations, and recovery fallbacks. Fallback rate is
// deliberately absent — see Kind Fallback.
func DefaultSpecs() []Spec {
	return []Spec{
		{Name: "latency", Kind: Latency, Space: "vol.*", Target: 0.99,
			Threshold: 20 * time.Millisecond, Page: defaultPage, Warn: defaultWarn,
			Hold: 3, MinEvents: 64},
		{Name: "stall", Kind: Stall, Space: "*", Target: 0.99,
			Page: defaultPage, Warn: defaultWarn, Hold: 3, MinEvents: 64},
		{Name: "watchdog", Kind: Watchdog, Target: 0.9999,
			Page: defaultPage, Warn: defaultWarn, Hold: 3, MinEvents: 1},
		{Name: "recovery", Kind: Recovery, Target: 0.999,
			Page: defaultPage, Warn: defaultWarn, Hold: 3, MinEvents: 1},
	}
}

// reservedNames collide with the scalar slo.* registry counters.
var reservedNames = map[string]bool{
	"evaluations": true, "warns": true, "pages": true, "transitions": true,
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.', r == '-':
		default:
			return false
		}
	}
	return true
}

func validPattern(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.', r == '-', r == '*':
		default:
			return false
		}
	}
	return true
}

func (k Kind) valid() bool {
	switch k {
	case Latency, Stall, Fallback, Watchdog, Recovery, Ratio:
		return true
	}
	return false
}

// spaced reports whether the kind fans out over spaces (one alert instance
// per matching volume/pool) rather than a single system-level instance.
func (k Kind) spaced() bool { return k == Latency || k == Stall }

// normalize fills unset optional fields with defaults.
func (s *Spec) normalize() {
	if s.Name == "" {
		s.Name = string(s.Kind)
	}
	if s.Space == "" && s.Kind.spaced() {
		if s.Kind == Latency {
			s.Space = "vol.*"
		} else {
			s.Space = "*"
		}
	}
	if s.Kind == Latency && s.Threshold == 0 {
		s.Threshold = 20 * time.Millisecond
	}
	if s.Page == (Window{}) {
		s.Page = defaultPage
	}
	if s.Warn == (Window{}) {
		s.Warn = defaultWarn
	}
	if s.Hold == 0 {
		s.Hold = 3
	}
	if s.MinEvents == 0 {
		s.MinEvents = 1
	}
}

func (w Window) validate(label string) error {
	if w.Burn <= 0 {
		return fmt.Errorf("%s burn %v must be > 0", label, w.Burn)
	}
	if w.Fast <= 0 || w.Slow <= 0 {
		return fmt.Errorf("%s windows must be > 0", label)
	}
	if w.Fast > w.Slow {
		return fmt.Errorf("%s fast window %v exceeds slow window %v", label, w.Fast, w.Slow)
	}
	return nil
}

func (s *Spec) validate() error {
	if !s.Kind.valid() {
		return fmt.Errorf("unknown kind %q", s.Kind)
	}
	if !validName(s.Name) {
		return fmt.Errorf("invalid name %q", s.Name)
	}
	if reservedNames[s.Name] {
		return fmt.Errorf("name %q is reserved", s.Name)
	}
	if !(s.Target > 0 && s.Target < 1) {
		return fmt.Errorf("target %v must be in (0,1)", s.Target)
	}
	if s.Kind.spaced() {
		if !validPattern(s.Space) {
			return fmt.Errorf("invalid space %q", s.Space)
		}
	} else if s.Space != "" {
		return fmt.Errorf("kind %s takes no space", s.Kind)
	}
	if s.Kind == Latency && s.Threshold <= 0 {
		return fmt.Errorf("latency threshold %v must be > 0", s.Threshold)
	}
	if s.Kind != Latency && s.Threshold != 0 {
		return fmt.Errorf("kind %s takes no threshold", s.Kind)
	}
	if s.Kind == Ratio {
		if !validName(s.Bad) || !validName(s.Total) {
			return fmt.Errorf("ratio needs bad= and total= series suffixes")
		}
	} else if s.Bad != "" || s.Total != "" {
		return fmt.Errorf("kind %s takes no bad/total", s.Kind)
	}
	if err := s.Page.validate("page"); err != nil {
		return err
	}
	if err := s.Warn.validate("warn"); err != nil {
		return err
	}
	if s.Hold < 1 {
		return fmt.Errorf("hold %d must be >= 1", s.Hold)
	}
	return nil
}

// ParseSpecs parses a waflbench-style spec string: clauses separated by
// ';', each either the literal "default" (expanding DefaultSpecs) or a
// comma-separated list of key=value fields:
//
//	name=slowvol,kind=latency,space=vol.*,target=0.995,threshold=10ms,
//	page=14@15s/2m,warn=3@1m/10m,hold=2,min=32
//
// Window values are "<burn>@<fast>/<slow>" with Go durations in modeled
// time. Spec names must be unique across the whole string.
func ParseSpecs(input string) ([]Spec, error) {
	var out []Spec
	for _, clause := range strings.Split(input, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if clause == "default" {
			out = append(out, DefaultSpecs()...)
			continue
		}
		sp, err := parseClause(clause)
		if err != nil {
			return nil, fmt.Errorf("slo: clause %q: %w", clause, err)
		}
		out = append(out, sp)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("slo: empty spec")
	}
	seen := make(map[string]bool, len(out))
	for _, sp := range out {
		if seen[sp.Name] {
			return nil, fmt.Errorf("slo: duplicate spec name %q", sp.Name)
		}
		seen[sp.Name] = true
	}
	return out, nil
}

func parseClause(clause string) (Spec, error) {
	var sp Spec
	for _, field := range strings.Split(clause, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return sp, fmt.Errorf("field %q is not key=value", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "name":
			sp.Name = val
		case "kind":
			sp.Kind = Kind(val)
		case "space":
			sp.Space = val
		case "target":
			sp.Target, err = strconv.ParseFloat(val, 64)
		case "threshold":
			sp.Threshold, err = time.ParseDuration(val)
		case "page":
			sp.Page, err = parseWindow(val)
		case "warn":
			sp.Warn, err = parseWindow(val)
		case "hold":
			sp.Hold, err = strconv.Atoi(val)
		case "min":
			sp.MinEvents, err = strconv.ParseUint(val, 10, 64)
		case "bad":
			sp.Bad = val
		case "total":
			sp.Total = val
		default:
			return sp, fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return sp, fmt.Errorf("field %q: %w", field, err)
		}
	}
	sp.normalize()
	if err := sp.validate(); err != nil {
		return sp, err
	}
	return sp, nil
}

func parseWindow(v string) (Window, error) {
	var w Window
	burnStr, rest, ok := strings.Cut(v, "@")
	if !ok {
		return w, fmt.Errorf("window %q is not burn@fast/slow", v)
	}
	burn, err := strconv.ParseFloat(burnStr, 64)
	if err != nil {
		return w, err
	}
	fastStr, slowStr, ok := strings.Cut(rest, "/")
	if !ok {
		return w, fmt.Errorf("window %q is not burn@fast/slow", v)
	}
	fast, err := time.ParseDuration(fastStr)
	if err != nil {
		return w, err
	}
	slow, err := time.ParseDuration(slowStr)
	if err != nil {
		return w, err
	}
	w = Window{Burn: burn, Fast: fast, Slow: slow}
	return w, nil
}

func (w Window) format() string {
	return strconv.FormatFloat(w.Burn, 'g', -1, 64) + "@" + w.Fast.String() + "/" + w.Slow.String()
}

// String renders the spec in the canonical parseable form.
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "name=%s,kind=%s", s.Name, s.Kind)
	if s.Space != "" {
		fmt.Fprintf(&b, ",space=%s", s.Space)
	}
	fmt.Fprintf(&b, ",target=%s", strconv.FormatFloat(s.Target, 'g', -1, 64))
	if s.Threshold != 0 {
		fmt.Fprintf(&b, ",threshold=%s", s.Threshold)
	}
	if s.Bad != "" {
		fmt.Fprintf(&b, ",bad=%s,total=%s", s.Bad, s.Total)
	}
	fmt.Fprintf(&b, ",page=%s,warn=%s,hold=%d,min=%d",
		s.Page.format(), s.Warn.format(), s.Hold, s.MinEvents)
	return b.String()
}

// FormatSpecs renders specs in the canonical form accepted by ParseSpecs.
func FormatSpecs(specs []Spec) string {
	parts := make([]string, len(specs))
	for i, sp := range specs {
		parts[i] = sp.String()
	}
	return strings.Join(parts, ";")
}
