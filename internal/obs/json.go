package obs

import (
	"encoding/json"
	"io"
)

// NamedSnapshot is the JSON dump format: a snapshot tagged with the system
// (or tool) that produced it.
type NamedSnapshot struct {
	Name     string   `json:"name"`
	Snapshot Snapshot `json:"snapshot"`
}

// WriteJSON writes a named snapshot as indented JSON.
func WriteJSON(w io.Writer, name string, snap Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(NamedSnapshot{Name: name, Snapshot: snap})
}

// ReadJSON parses a named snapshot written by WriteJSON. Round-tripping a
// snapshot through WriteJSON/ReadJSON preserves it exactly (DeepEqual).
func ReadJSON(r io.Reader) (NamedSnapshot, error) {
	var ns NamedSnapshot
	err := json.NewDecoder(r).Decode(&ns)
	return ns, err
}
