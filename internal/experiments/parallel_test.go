package experiments

import (
	"context"
	"io"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// The experiment drivers fan arms and sweep points across the work pool;
// these tests pin the determinism contract: the full result structs — every
// curve point, counter, and headline percentage — are bit-identical whether
// an experiment runs serially or across 8 workers.

func TestFig6WorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-arm experiment, skipped in -short")
	}
	serial := quickConfig()
	serial.Workers = 1
	par := quickConfig()
	par.Workers = 8
	a := RunFig6(serial, io.Discard)
	b := RunFig6(par, io.Discard)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fig6 results differ between workers=1 and workers=8:\n%+v\nvs\n%+v", a, b)
	}
}

func TestFig10WorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point experiment, skipped in -short")
	}
	serial := quickConfig()
	serial.Workers = 1
	par := quickConfig()
	par.Workers = 8
	a := RunFig10(serial, io.Discard)
	b := RunFig10(par, io.Discard)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fig10 results differ between workers=1 and workers=8:\n%+v\nvs\n%+v", a, b)
	}
}

// A canceled run must return the context error, print nothing for
// never-started experiments, and leave no pool goroutines behind.
func TestRunAllContextPreCanceledDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before any experiment can be claimed

	var out countingWriter
	cfg := quickConfig()
	cfg.Workers = 4
	err := RunAllContext(ctx, cfg, &out)
	if err == nil {
		t.Fatal("RunAllContext returned nil error for a pre-canceled context")
	}
	if out.n != 0 {
		t.Fatalf("pre-canceled run wrote %d bytes of report output, want 0", out.n)
	}

	// The pool must have drained: allow the runtime a moment to retire
	// worker goroutines, then require we are back at (or below) baseline.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines leaked after canceled run: %d before, %d after", before, got)
	}
}

type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
