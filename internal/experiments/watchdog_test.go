package experiments

import (
	"io"
	"strings"
	"testing"

	"waflfs/internal/obs"
	"waflfs/internal/obs/picks"
	"waflfs/internal/obs/tsdb"
)

// wdAudit sums every arm's watchdog check and violation counters and fails
// the test on any violation, printing the bounded violation log prefix the
// counters carry no detail for.
func wdAudit(t *testing.T, export *obs.Registry, label string) {
	t.Helper()
	var checks, violations uint64
	for _, m := range export.StableSnapshot().Metrics {
		switch {
		case strings.HasSuffix(m.Name, ".watchdog.checks"):
			checks += m.Value
		case strings.HasSuffix(m.Name, ".watchdog.violations"):
			if m.Value > 0 {
				t.Errorf("%s: %s = %d", label, m.Name, m.Value)
			}
			violations += m.Value
		}
	}
	if checks == 0 {
		t.Errorf("%s: watchdogs performed no checks", label)
	}
	if violations == 0 {
		t.Logf("%s: %d watchdog checks, 0 violations", label, checks)
	}
}

// The online watchdogs must stay silent across the real experiment drivers —
// heavy aging, concurrent arms, remounts, and crash recovery all running
// with conservation, score-sample, and pick-floor monitors armed.
func TestWatchdogsCleanAcrossExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runs := []struct {
		name string
		run  func(cfg Config)
	}{
		{"fig6", func(cfg Config) { RunFig6(cfg, io.Discard) }},
		{"fig10", func(cfg Config) { RunFig10(cfg, io.Discard) }},
		{"crash-matrix", func(cfg Config) { RunCrashMatrix(cfg, io.Discard) }},
	}
	for _, r := range runs {
		r := r
		t.Run(r.name, func(t *testing.T) {
			t.Parallel()
			export := obs.NewRegistry()
			cfg := quickConfig()
			cfg.Scale = 0.05
			cfg.Obs = &ObsSink{
				Export:    export,
				Watchdogs: true,
				TSDB:      tsdb.NewStore(tsdb.DefaultConfig()),
				Picks:     picks.NewRecorder(picks.DefaultConfig()),
			}
			r.run(cfg)
			wdAudit(t, export, r.name)
		})
	}
}
