package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"waflfs/internal/aa"
	"waflfs/internal/parallel"
	"waflfs/internal/stats"
	"waflfs/internal/wafl"
	"waflfs/internal/workload"
)

// Fig6Result holds everything §4.1 reports: the latency-vs-throughput
// curves for the cache configurations, the free-space quality of the
// allocator's picks, SSD write amplification, and the CPU economics of the
// FlexVol cache.
type Fig6Result struct {
	// Curves: "both caches", "aggregate AA cache" (FlexVol cache off),
	// "FlexVol AA cache" (aggregate cache off), and "no caches".
	Curves []Curve

	// Aggregate (physical) pick quality: mean free fraction of the AAs the
	// write allocator selected, with the RAID-aware cache on vs off.
	// Paper: 61% vs 46% (§4.1.1).
	AggPickedOn, AggPickedOff float64
	// FlexVol (virtual) pick quality with the HBPS cache on vs off.
	// Paper: 78% vs 61% (§4.1.2).
	VolPickedOn, VolPickedOff float64

	// SSD write amplification over the measurement window with the
	// aggregate cache on vs off. Paper: 1.46 vs 1.77 (§4.1.1).
	WAOn, WAOff float64

	// CPU per op with the FlexVol cache on vs off.
	// Paper: 293µs vs 309µs, a 5.7% reduction (§4.1.2).
	CPUPerOpVolOn, CPUPerOpVolOff time.Duration

	// CacheCPUFraction is cache-maintenance CPU over total CPU with both
	// caches enabled. Paper: ~0.002% per cache (§4.1.2).
	CacheCPUFraction float64

	// Peak-load comparisons (last sweep point).
	// Aggregate cache effect: "both" vs "FlexVol only". Paper: +24%
	// throughput, −18% latency.
	AggThroughputGainPct, AggLatencyChangePct float64
	// FlexVol cache effect: "both" vs "aggregate only". Paper: +8.0%
	// throughput, −8.6% latency.
	VolThroughputGainPct, VolLatencyChangePct float64
}

// fig6Spec builds the §4.1 configuration: a midrange all-SSD server,
// modeled as two RAID groups of (6+1) SSDs.
func fig6Spec(cfg Config) []wafl.GroupSpec {
	per := cfg.scaled(1<<18, 1<<15)
	g := wafl.GroupSpec{
		DataDevices:      6,
		ParityDevices:    1,
		BlocksPerDevice:  per,
		Media:            aa.MediaSSD,
		EraseBlockBlocks: 512, // 2MiB erase units
		Overprovision:    0.08,
	}
	return []wafl.GroupSpec{g, g}
}

type fig6Run struct {
	curve            Curve
	m                measurement
	wa               float64
	aggPick, volPick float64
	cpuPerOp         time.Duration
	cacheCPUFraction float64
}

func fig6RunOne(cfg Config, label string, aggCache, volCache bool) fig6Run {
	tun := cfg.tunablesNamed("fig6." + label)
	tun.AggregateCacheEnabled = aggCache
	tun.VolCacheEnabled = volCache

	specs := fig6Spec(cfg)
	aggBlocks := 2 * 6 * specs[0].BlocksPerDevice
	lunBlocks := uint64(float64(aggBlocks) * 0.55)
	// Thin provisioning (§3.3.2): the volume's virtual space is well over
	// twice its data, so the volume sits ~40% used and the HBPS has real
	// headroom to find empty virtual AAs.
	volBlocks := lunBlocks * 2

	s := wafl.NewSystem(specs, []wafl.VolSpec{{Name: "vol0", Blocks: volBlocks}}, tun, cfg.Seed)
	lun := s.Agg.Vols()[0].CreateLUN("lun0", lunBlocks)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	// Fill to 55% and thoroughly fragment with random overwrites (§4.1),
	// with free-space defragmentation disabled (the cleaner is never run).
	workload.Age(s, []*wafl.LUN{lun}, rng, 1.2)

	// Measurement window: 8KiB random overwrites.
	s.ResetMetrics()
	ftl0 := s.FTLTotals()
	ops := int(cfg.scaled(200_000, 20_000))
	m := measure(s, func() {
		workload.RandomOverwrite(s, []*wafl.LUN{lun}, rng, ops, 2)
		s.CP()
	})
	ftl1 := s.FTLTotals()

	r := fig6Run{curve: curveFrom(label, m, cfg), m: m}
	if dh := ftl1.HostWrites - ftl0.HostWrites; dh > 0 {
		r.wa = float64(ftl1.NANDWrites-ftl0.NANDWrites) / float64(dh)
	}
	var aggSum float64
	var aggN int
	for _, g := range s.Agg.Groups() {
		gm := g.Metrics()
		if gm.PickedScoreFraction > 0 {
			aggSum += gm.PickedScoreFraction
			aggN++
		}
	}
	if aggN > 0 {
		r.aggPick = aggSum / float64(aggN)
	}
	r.volPick = s.Agg.Vols()[0].Metrics().PickedScoreFraction
	r.cpuPerOp = m.Counters.CPUPerOp()
	if m.Counters.CPUTime > 0 {
		r.cacheCPUFraction = float64(m.Counters.CacheCPUTime) / float64(m.Counters.CPUTime)
	}
	return r
}

// RunFig6 regenerates Figure 6 and the §4.1 in-text metrics.
func RunFig6(cfg Config, w io.Writer) *Fig6Result {
	if cfg.DeviceParallel == 0 {
		cfg.DeviceParallel = 4 // enterprise SSDs service many commands at once
	}
	// The four cache configurations are independent arms — each builds its
	// own System and rng from cfg.Seed — so they fan out over the work pool
	// and land in fixed slots.
	arms := []struct {
		label    string
		agg, vol bool
	}{
		{"both", true, true},
		{"agg-only", true, false},
		{"vol-only", false, true},
		{"none", false, false},
	}
	runs := parallel.Map(cfg.Workers, len(arms), func(i int) fig6Run {
		return fig6RunOne(cfg, arms[i].label, arms[i].agg, arms[i].vol)
	})
	both, aggOnly, volOnly, neither := runs[0], runs[1], runs[2], runs[3]

	res := &Fig6Result{
		Curves:           []Curve{both.curve, aggOnly.curve, volOnly.curve, neither.curve},
		AggPickedOn:      both.aggPick,
		AggPickedOff:     volOnly.aggPick,
		VolPickedOn:      both.volPick,
		VolPickedOff:     aggOnly.volPick,
		WAOn:             both.wa,
		WAOff:            volOnly.wa,
		CPUPerOpVolOn:    both.cpuPerOp,
		CPUPerOpVolOff:   aggOnly.cpuPerOp,
		CacheCPUFraction: both.cacheCPUFraction,
	}
	bp, ap, vp := both.curve.Peak(), aggOnly.curve.Peak(), volOnly.curve.Peak()
	res.AggThroughputGainPct = gain(bp.Throughput, vp.Throughput)
	res.AggLatencyChangePct = gain(bp.LatencyMs, vp.LatencyMs)
	res.VolThroughputGainPct = gain(bp.Throughput, ap.Throughput)
	res.VolLatencyChangePct = gain(bp.LatencyMs, ap.LatencyMs)

	printCurves(w, "Fig 6: latency vs throughput (8KiB random overwrites, aged all-SSD aggregate)", res.Curves)
	tb := stats.Table{Title: "Fig 6 / §4.1 headline metrics", Columns: []string{"metric", "paper", "measured"}}
	tb.AddRow("picked AA free fraction, aggregate cache on", "61%", fmt.Sprintf("%.0f%%", 100*res.AggPickedOn))
	tb.AddRow("picked AA free fraction, aggregate cache off", "46%", fmt.Sprintf("%.0f%%", 100*res.AggPickedOff))
	tb.AddRow("picked AA free fraction, FlexVol cache on", "78%", fmt.Sprintf("%.0f%%", 100*res.VolPickedOn))
	tb.AddRow("picked AA free fraction, FlexVol cache off", "61%", fmt.Sprintf("%.0f%%", 100*res.VolPickedOff))
	tb.AddRow("SSD write amplification, aggregate cache on", "1.46", fmt.Sprintf("%.2f", res.WAOn))
	tb.AddRow("SSD write amplification, aggregate cache off", "1.77", fmt.Sprintf("%.2f", res.WAOff))
	tb.AddRow("aggregate cache peak throughput gain", "+24%", fmt.Sprintf("%+.1f%%", res.AggThroughputGainPct))
	tb.AddRow("aggregate cache peak latency change", "-18%", fmt.Sprintf("%+.1f%%", res.AggLatencyChangePct))
	tb.AddRow("FlexVol cache peak throughput gain", "+8.0%", fmt.Sprintf("%+.1f%%", res.VolThroughputGainPct))
	tb.AddRow("FlexVol cache peak latency change", "-8.6%", fmt.Sprintf("%+.1f%%", res.VolLatencyChangePct))
	tb.AddRow("CPU/op, FlexVol cache on", "293us", res.CPUPerOpVolOn.String())
	tb.AddRow("CPU/op, FlexVol cache off", "309us", res.CPUPerOpVolOff.String())
	tb.AddRow("CPU/op reduction from FlexVol cache", "5.7%",
		fmt.Sprintf("%.1f%%", -gain(float64(res.CPUPerOpVolOn), float64(res.CPUPerOpVolOff))))
	tb.AddRow("cache maintenance CPU fraction", "~0.004%", fmt.Sprintf("%.4f%%", 100*res.CacheCPUFraction))
	fmt.Fprintln(w, tb.String())
	return res
}
