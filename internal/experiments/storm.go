package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"waflfs/internal/aa"
	"waflfs/internal/control"
	"waflfs/internal/obs/slo"
	"waflfs/internal/obs/tsdb"
	"waflfs/internal/wafl"
	"waflfs/internal/workload"
)

// Adversarial aging + snapshot-storm benchmark: the same hostile workload —
// sustained overwrite churn with a snapshot created and an old one deleted
// every round, so each CP inherits a mass of delayed virtual frees well above
// the per-CP reclaim budget — runs twice. The static arm keeps its hand-set
// DelayedFreeBudgetPerCP for the whole run; the closed-loop arm carries the
// storm policy portfolio, whose backlog_shed clause watches the per-volume
// delayed-free backlog and halves the reclaim budget (floor 128) when the
// backlog holds above 1.5× budget for two consecutive CPs. Shedding defers
// bitmap-page reclaim CPU out of the storm window, so the closed arm's
// modeled wall (CPU + device busy) must come in at or under the static
// arm's — the do-some-good counterpart to the clean-run do-no-harm gate.

// StormBench is the two-arm comparison plus the closed arm's decision
// provenance totals.
type StormBench struct {
	// Rounds is the number of churn+snapshot rounds each arm ran.
	Rounds int
	// Budget is the hand-set per-CP delayed-free reclaim budget both arms
	// start from; BudgetEnd is the closed arm's final (possibly shed) value.
	Budget, BudgetEnd int
	// WallStatic / WallClosed are each arm's modeled wall: CPU time plus
	// device busy time.
	WallStatic, WallClosed time.Duration
	// PendingStatic / PendingClosed are the delayed-free backlogs left at
	// run end (the closed arm sheds reclaim, so its backlog is the larger).
	PendingStatic, PendingClosed uint64
	// Controller totals for the closed arm (the static arm has none).
	Evaluations, Actuations, Suppressed uint64
	// WrittenStatic / WrittenClosed fingerprint the workload: both arms
	// write the identical block stream regardless of controller action.
	WrittenStatic, WrittenClosed uint64
	// LastRecord is the closed arm's final actuation record rendered as
	// provenance ("cp=N policy clause old→new"), "" if nothing fired.
	LastRecord string
}

// Identical reports whether both arms saw the identical write stream.
func (b StormBench) Identical() bool { return b.WrittenStatic == b.WrittenClosed }

// stormRounds is the number of churn+snapshot rounds: enough CPs for the
// backlog to build, the hold to mature, and several shed steps to land.
const stormRounds = 16

// stormPolicies builds the storm portfolio around the configured budget: the
// guaranteed backlog_shed clause plus an SLO-burn clause that fires only if
// the latency SLI pages mid-storm. min=128 keeps every shed strictly below
// any reachable budget (so steps only ever decrease, never clamp upward) and
// clear of the knob's 0=unlimited sentinel.
func stormPolicies(budget int) *control.Set {
	spec := fmt.Sprintf(
		"name=backlog_shed,signal=vol.*.delayed.pending,op=>,value=%d,hold=2,action=delayed_budget,step=-50%%,min=128;"+
			"name=burn_shed,signal=slo.latency.vol.*.state,op=>,value=0.5,hold=2,action=delayed_budget,step=-25%%,min=128",
		budget*3/2)
	pols, err := control.ParsePolicies(spec)
	if err != nil {
		panic("experiments: storm portfolio invalid: " + err.Error())
	}
	return control.NewSet(pols)
}

// RunStorm ages one system per arm under the identical seeded storm and
// compares walls. Both arms use private sinks (their own tsdb and SLO set)
// so the storm's intentional backlog and latency pages never leak into the
// shared export registry or the artifact's clean-run SLO audit.
func RunStorm(cfg Config, w io.Writer) StormBench {
	budget := int(cfg.scaled(1500, 375))

	run := func(name string, ctl *control.Set) *wafl.System {
		tun := cfg.tunablesNamed(name)
		tun.DelayedVirtFrees = true
		tun.DelayedFreeBudgetPerCP = budget
		// CPs are driven explicitly: one per storm round.
		tun.CPEveryOps = 1 << 30
		// Private sinks: the controller needs a tsdb to read its signals
		// from, and the burn_shed clause needs the SLO state series.
		tun.Obs = &wafl.ObsOptions{
			Name:    name,
			TSDB:    tsdb.NewStore(tsdb.Config{Capacity: 256, HistBuckets: tsdb.SuffixFilter(".lat_ns")}),
			SLO:     slo.NewSet(slo.DefaultSpecs()),
			Control: ctl,
		}
		per := cfg.scaled(1<<17, 1<<16)
		spec := wafl.GroupSpec{DataDevices: 3, ParityDevices: 1, BlocksPerDevice: per,
			Media: aa.MediaHDD, StripesPerAA: 256}
		// Reclaim pops whole AAs, so the budget only bites when the backlog
		// spreads across many AAs: the LUNs span 4–8 virtual AAs (32k blocks
		// each) and the churn's COW frees scatter over all of them.
		vols := []wafl.VolSpec{
			{Name: "v0", Blocks: 16 * aa.RAIDAgnosticBlocks},
			{Name: "v1", Blocks: 16 * aa.RAIDAgnosticBlocks},
		}
		s := wafl.NewSystem([]wafl.GroupSpec{spec, spec}, vols, tun, cfg.Seed)
		lunBlocks := cfg.scaled(1<<18, 1<<17)
		luns := make([]*wafl.LUN, len(vols))
		for i, v := range s.Agg.Vols() {
			luns[i] = v.CreateLUN("l", lunBlocks)
			workload.SequentialFill(s, luns[i], 8)
			s.CP()
		}

		rng := rand.New(rand.NewSource(cfg.Seed))
		writes := int(cfg.scaled(6000, 1500))
		for round := 0; round < stormRounds; round++ {
			// Snapshot storm, at the CP boundary the previous round left: pin
			// the current state, then drop the snapshot from two rounds ago —
			// a mass free landing in the same delayed queue as the churn's.
			for i, l := range luns {
				if _, err := s.CreateSnapshot(l, fmt.Sprintf("s%d.%d", round, i)); err != nil {
					panic("experiments: storm snapshot: " + err.Error())
				}
				if round >= 2 {
					if _, err := s.DeleteSnapshot(l, fmt.Sprintf("s%d.%d", round-2, i)); err != nil {
						panic("experiments: storm snapshot delete: " + err.Error())
					}
				}
			}
			// Churn: every overwrite frees the old block into the delayed
			// queue, so frees per round outrun the reclaim budget.
			workload.RandomOverwrite(s, luns, rng, writes, 1)
			s.CP()
		}
		return s
	}

	static := run("storm.static", nil)
	ctl := stormPolicies(budget)
	closed := run("storm.closed", ctl)

	wall := func(s *wafl.System) time.Duration {
		c := s.Counters()
		return c.CPUTime + c.DeviceBusy
	}
	pending := func(s *wafl.System) uint64 {
		var n uint64
		for _, v := range s.Agg.Vols() {
			n += uint64(v.PendingFrees())
		}
		return n
	}
	tot := ctl.Totals()
	b := StormBench{
		Rounds:        stormRounds,
		Budget:        budget,
		BudgetEnd:     int(mustKnob(closed, control.KnobDelayedBudget)),
		WallStatic:    wall(static),
		WallClosed:    wall(closed),
		PendingStatic: pending(static),
		PendingClosed: pending(closed),
		Evaluations:   tot.Evaluations,
		Actuations:    tot.Actuations,
		Suppressed:    tot.Suppressed,
		WrittenStatic: static.Counters().BlocksWritten,
		WrittenClosed: closed.Counters().BlocksWritten,
	}
	for _, st := range ctl.Status() {
		for _, r := range st.Records {
			if r.Fired {
				b.LastRecord = fmt.Sprintf("cp=%d %s %s %.0f→%.0f", r.CP, r.Policy, r.Knob, r.Old, r.New)
			}
		}
	}

	fmt.Fprintln(w, "### storm — adversarial aging + snapshot storm: closed-loop vs static budget (modeled)")
	fmt.Fprintf(w, "  rounds: %d   budget: %d → %d (closed arm)   backlog at end: static %d, closed %d\n",
		b.Rounds, b.Budget, b.BudgetEnd, b.PendingStatic, b.PendingClosed)
	fmt.Fprintf(w, "  wall: static %v, closed-loop %v (%+.1f%%)\n",
		b.WallStatic, b.WallClosed, gain(float64(b.WallClosed), float64(b.WallStatic)))
	fmt.Fprintf(w, "  controller: %d evaluations, %d actuations, %d suppressed",
		b.Evaluations, b.Actuations, b.Suppressed)
	if b.LastRecord != "" {
		fmt.Fprintf(w, "   last: %s", b.LastRecord)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  written: static %d, closed %d (identical=%v)\n\n",
		b.WrittenStatic, b.WrittenClosed, b.Identical())
	return b
}

// mustKnob reads a knob off a system's actuator, 0 if absent.
func mustKnob(s *wafl.System, name string) float64 {
	v, _ := s.Actuator().Knob(name)
	return v
}
