package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"waflfs/internal/aa"
	"waflfs/internal/faultinject"
	"waflfs/internal/parallel"
	"waflfs/internal/stats"
	"waflfs/internal/wafl"
	"waflfs/internal/workload"
)

// Crash-recovery matrix: the paper's §3.4 recovery argument is that the
// TopAA metafile is advisory — any damage to it degrades mount performance
// (bitmap walk instead of a seeded load), never correctness, because the
// bitmap metafiles remain the CP-consistent ground truth. The matrix proves
// that across the whole failure surface: one cell per (CP phase to crash in)
// × (media fault to leave behind), each running fill → clean CP → churn →
// crashing CP → planned damage → remount → scrub → post-recovery CP →
// scrub. A cell fails on silent divergence: a rebuilt cache whose scores
// disagree with the bitmap without having been classified as a fallback.

// CrashCell is one (phase, fault) cell's outcome.
type CrashCell struct {
	Phase string
	Fault string
	// Crashed reports whether the second CP hit the crash point (always
	// true: every phase name in the matrix occurs in every CP).
	Crashed bool
	// Damage describes the media fault placed after the crash ("" = none).
	Damage string
	// Spaces is the number of AA-cache spaces remounted (groups + volumes).
	Spaces int
	// Mount outcome tallies across spaces (clean + reconstructed +
	// fallbacks == Spaces).
	CleanLoads    int
	Reconstructed int
	Fallbacks     int
	Stale         int
	Torn          int
	Damaged       int
	Missing       int
	// Divergent counts spaces whose post-recovery scrub disagreed with the
	// bitmap — silent divergence, the one unacceptable outcome. Both the
	// post-remount and post-CP scrubs accumulate here.
	Divergent int
	// FirstDivergence preserves the first scrub complaint for diagnosis.
	FirstDivergence string
}

func (c CrashCell) summary() string {
	if c.Divergent > 0 {
		return fmt.Sprintf("DIVERGENT×%d", c.Divergent)
	}
	s := fmt.Sprintf("%dc", c.CleanLoads)
	if c.Reconstructed > 0 {
		s += fmt.Sprintf(" %dr", c.Reconstructed)
	}
	if c.Fallbacks > 0 {
		s += fmt.Sprintf(" %df", c.Fallbacks)
	}
	return s
}

// CrashMatrixResult is the full phase × fault sweep.
type CrashMatrixResult struct {
	Phases []string
	Faults []string
	Cells  []CrashCell // row-major: phases × faults
}

// Divergent returns the cells with silent divergence (must be empty).
func (r *CrashMatrixResult) Divergent() []CrashCell {
	var out []CrashCell
	for _, c := range r.Cells {
		if c.Divergent > 0 {
			out = append(out, c)
		}
	}
	return out
}

// Totals sums the per-cell tallies.
func (r *CrashMatrixResult) Totals() CrashCell {
	var t CrashCell
	for _, c := range r.Cells {
		t.Spaces += c.Spaces
		t.CleanLoads += c.CleanLoads
		t.Reconstructed += c.Reconstructed
		t.Fallbacks += c.Fallbacks
		t.Stale += c.Stale
		t.Torn += c.Torn
		t.Damaged += c.Damaged
		t.Missing += c.Missing
		t.Divergent += c.Divergent
	}
	return t
}

// RunFaultScenario executes one crash-and-recover cycle under the given
// plan and verifies recovery with the mount-time scrub. The same routine
// backs every matrix cell and waflbench's -faults mode.
func RunFaultScenario(cfg Config, plan faultinject.Plan, name string) CrashCell {
	cell := CrashCell{Phase: plan.CrashPhase, Fault: plan.Fault.String()}
	tun := cfg.tunablesNamed(name)
	tun.Faults = &plan
	// CPs are driven explicitly so the crash lands in a known CP.
	tun.CPEveryOps = 1 << 30
	// Delayed virtual frees widen the surface the crash interrupts.
	tun.DelayedVirtFrees = true

	per := cfg.scaled(1<<13, 1<<10)
	// Small AAs keep the per-group AA count meaningful at tiny test scales.
	spec := wafl.GroupSpec{DataDevices: 3, ParityDevices: 1, BlocksPerDevice: per,
		Media: aa.MediaHDD, StripesPerAA: 64}
	volBlocks := uint64(4) * aa.RAIDAgnosticBlocks
	s := wafl.NewSystem([]wafl.GroupSpec{spec, spec},
		[]wafl.VolSpec{{Name: "v0", Blocks: volBlocks}, {Name: "v1", Blocks: volBlocks}},
		tun, plan.Seed)
	// An object pool brings the pool flush/save phase into every CP.
	s.Agg.AddObjectPool(wafl.PoolSpec{Blocks: 2 * aa.RAIDAgnosticBlocks})
	rng := rand.New(rand.NewSource(plan.Seed))
	// Thin provisioning: the LUNs are sized off physical capacity (the two
	// groups), not the larger virtual spaces.
	lunBlocks := uint64(float64(2*3*per) * 0.3)
	luns := []*wafl.LUN{
		s.Agg.Vols()[0].CreateLUN("l0", lunBlocks),
		s.Agg.Vols()[1].CreateLUN("l1", lunBlocks),
	}
	for _, l := range luns {
		workload.SequentialFill(s, l, 8)
	}
	s.CP() // CP 1: clean; every TopAA metafile lands.
	// Tier a cold range out so the pool's AA cache has real content.
	s.TierOut(luns[0], func(lba uint64) bool { return lba < lunBlocks/4 })

	// Churn so CP 2 re-scores every space: a metafile whose save the crash
	// drops is then genuinely stale, not coincidentally current.
	workload.RandomOverwrite(s, luns, rng, 512, 1)
	s.CP() // CP 2: the plan's crash point fires mid-pipeline.
	cell.Crashed = s.Agg.Injector().Crashed()

	// The dirty failover's media fault lands on the surviving metafiles.
	if dmg, err := s.Agg.ApplyPlannedDamage(); err == nil && dmg.Kind != faultinject.FaultNone {
		cell.Damage = dmg.String()
	}

	ms := s.Agg.Remount(true)
	cell.Spaces = len(s.Agg.Groups()) + len(s.Agg.Vols()) + 1 // +1: the pool
	cell.Reconstructed = ms.Reconstructed
	cell.Fallbacks = ms.Fallbacks
	cell.Stale = ms.StaleFallbacks
	cell.Torn = ms.TornFallbacks
	cell.Damaged = ms.DamageFallbacks
	cell.Missing = ms.MissingFallbacks
	cell.CleanLoads = cell.Spaces - ms.Fallbacks - ms.Reconstructed

	note := func(rep wafl.ScrubReport) {
		for _, d := range rep.Divergent() {
			cell.Divergent++
			if cell.FirstDivergence == "" {
				cell.FirstDivergence = d.Space + ": " + d.Divergence
			}
		}
	}
	note(s.Agg.Scrub())

	// Recovery must leave a writable system: finish the background fill the
	// seeded caches defer, then more churn, a clean CP (the injector
	// recovered at remount; the pinned crash CP is behind us), and a second
	// scrub over the post-recovery state.
	s.Agg.CompleteBackgroundFill()
	workload.RandomOverwrite(s, luns, rng, 256, 1)
	s.CP()
	note(s.Agg.Scrub())
	return cell
}

// RunCrashMatrix sweeps every CP phase × fault kind. Cells are independent
// systems fanned out over the work pool; the result is identical at any
// worker count.
func RunCrashMatrix(cfg Config, w io.Writer) *CrashMatrixResult {
	res := &CrashMatrixResult{Phases: faultinject.CPPhases()}
	for _, k := range faultinject.Kinds() {
		res.Faults = append(res.Faults, k.String())
	}

	type job struct {
		phase string
		fault faultinject.Kind
	}
	var jobs []job
	for _, p := range res.Phases {
		for _, k := range faultinject.Kinds() {
			jobs = append(jobs, job{p, k})
		}
	}
	res.Cells = parallel.Map(cfg.Workers, len(jobs), func(i int) CrashCell {
		j := jobs[i]
		plan := faultinject.Plan{
			Seed:       cfg.Seed + int64(i)*1001,
			CrashPhase: j.phase,
			CrashCP:    2,
			Fault:      j.fault,
		}
		return RunFaultScenario(cfg, plan, fmt.Sprintf("crash.%s.%s", j.phase, j.fault))
	})

	printCrashMatrix(w,
		"Crash matrix: mount outcomes after a crash at each CP phase × media fault (Nc clean, Nr reconstructed, Nf fallback)",
		res)
	return res
}

// printCrashMatrix renders a phase × fault sweep: the per-cell outcome
// table, the totals line, and the divergence report (shared by the classic
// and pipelined matrices).
func printCrashMatrix(w io.Writer, title string, res *CrashMatrixResult) {
	tb := stats.Table{
		Title:   title,
		Columns: append([]string{"crash phase"}, res.Faults...),
	}
	for pi, p := range res.Phases {
		row := []interface{}{p}
		for fi := range res.Faults {
			row = append(row, res.Cells[pi*len(res.Faults)+fi].summary())
		}
		tb.AddRow(row...)
	}
	fmt.Fprintln(w, tb.String())

	t := res.Totals()
	fmt.Fprintf(w, "cells: %d  spaces remounted: %d  clean: %d  reconstructed: %d  fallbacks: %d (stale %d, torn %d, damaged %d, missing %d)\n",
		len(res.Cells), t.Spaces, t.CleanLoads, t.Reconstructed, t.Fallbacks, t.Stale, t.Torn, t.Damaged, t.Missing)
	if div := res.Divergent(); len(div) > 0 {
		sort.Slice(div, func(i, j int) bool {
			return div[i].Phase+div[i].Fault < div[j].Phase+div[j].Fault
		})
		fmt.Fprintf(w, "SILENT DIVERGENCE in %d cells:\n", len(div))
		for _, c := range div {
			fmt.Fprintf(w, "  %s × %s: %s\n", c.Phase, c.Fault, c.FirstDivergence)
		}
	} else {
		fmt.Fprintln(w, "silent divergence: none — every cache either loaded clean, reconstructed, or fell back to the bitmap")
	}
	fmt.Fprintln(w)
}
